(** Ir.Bounds: symbolic loop-bound and cost analysis (DESIGN.md §13).

    The full soundness sweep (interpreter-measured trips vs static bounds
    over 50 fuzz seeds + the kernel corpus, decision parity, Psim
    head-to-head) lives in [bin/noelle_bounds.ml] behind [make bounds];
    these are the unit-level guarantees: exact closed forms for the
    counted-loop shapes, difference-constraint upper bounds for the
    non-affine ones, conservative tops, bottom-up cost composition,
    fingerprint-keyed caching through [Noelle.invalidate], and the
    [complexity] checker built on top. *)

open Helpers
open Ir

(** The single analyzed loop of [fname] in [src]. *)
let one_loop ?(fname = "main") src =
  let m = compile src in
  let s = Bounds.analyze (Irmod.func m fname) in
  match s.Bounds.floops with
  | [ lb ] -> (m, s, lb)
  | l -> Alcotest.failf "expected exactly one loop, got %d" (List.length l)

let trip_s = Bounds.trip_to_string

(* ------------------------------------------------------------------ *)
(* Exact affine trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_exact_const () =
  let _, s, lb =
    one_loop
      {|
int main() {
  int t = 0;
  for (int i = 0; i < 100; i++) { t = t + i; }
  print(t);
  return 0;
}
|}
  in
  checkb "origin is affine" (lb.Bounds.lorigin = Bounds.Affine);
  (* body runs 100 times; the header executes once more (the exit test) *)
  check (Alcotest.option Alcotest.int64) "liters = 100" (Some 100L)
    (Bounds.trip_const lb.Bounds.liters);
  check (Alcotest.option Alcotest.int64) "lheadx = 101" (Some 101L)
    (Bounds.trip_const lb.Bounds.lheadx);
  checkb "liters exact" (Bounds.trip_is_exact lb.Bounds.liters);
  (* the function cost is a known constant covering all 100 iterations *)
  (match Bounds.cost_const s.Bounds.fcost with
  | Some c -> checkb "fcost covers the loop body" (Int64.compare c 100L >= 0)
  | None -> Alcotest.fail "fcost should be constant");
  check (Alcotest.option Alcotest.int) "cost degree 0" (Some 0)
    (Bounds.cost_degree s.Bounds.fcost)

let test_exact_downward_and_step () =
  let _, _, lb =
    one_loop
      {|
int main() {
  int t = 0;
  for (int i = 90; i > 0; i = i - 3) { t = t + i; }
  print(t);
  return 0;
}
|}
  in
  (* 90, 87, ..., 3: thirty iterations *)
  check (Alcotest.option Alcotest.int64) "liters = 30" (Some 30L)
    (Bounds.trip_const lb.Bounds.liters);
  checkb "liters exact" (Bounds.trip_is_exact lb.Bounds.liters)

let test_exact_symbolic () =
  let m =
    compile
      {|
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() { print(work(8)); return 0; }
|}
  in
  let s = Bounds.analyze (Irmod.func m "work") in
  match s.Bounds.floops with
  | [ lb ] ->
    checkb "symbolic bound is exact" (Bounds.trip_is_exact lb.Bounds.liters);
    checkb "but has no constant value"
      (Bounds.trip_const lb.Bounds.liters = None);
    checkb "cost is a degree-1 polynomial in n"
      (Bounds.cost_degree s.Bounds.fcost = Some 1)
  | l -> Alcotest.failf "expected one loop in work, got %d" (List.length l)

let test_dowhile_latch_test () =
  let _, _, lb =
    one_loop
      {|
int main() {
  int i = 0;
  int t = 0;
  do { t = t + i; i = i + 1; } while (i < 10);
  print(t);
  return 0;
}
|}
  in
  (* latch-tested on the updated value: body and header both run
     exactly 10 times *)
  check (Alcotest.option Alcotest.int64)
    ("liters = 10 (got " ^ trip_s lb.Bounds.liters ^ ")")
    (Some 10L)
    (Bounds.trip_const lb.Bounds.liters);
  check (Alcotest.option Alcotest.int64) "lheadx = 10" (Some 10L)
    (Bounds.trip_const lb.Bounds.lheadx)

let test_dowhile_runs_at_least_once () =
  (* the condition is false on entry: a while loop would run zero times,
     the do-while still runs once — the [slo] clamp floor carries this *)
  let _, _, lb =
    one_loop
      {|
int main() {
  int i = 5;
  int t = 0;
  do { t = t + 1; i = i + 1; } while (i < 3);
  print(t);
  return 0;
}
|}
  in
  check (Alcotest.option Alcotest.int64)
    ("do-while clamps to one iteration (got " ^ trip_s lb.Bounds.liters ^ ")")
    (Some 1L)
    (Bounds.trip_const lb.Bounds.liters)

(* ------------------------------------------------------------------ *)
(* Difference-constraint upper bounds                                  *)
(* ------------------------------------------------------------------ *)

let test_diffcon_conditional_increment () =
  (* the counter advances by 1 or 2 depending on data: no Scev closed
     form, but minimum progress 1 per iteration bounds the trips *)
  let _, _, lb =
    one_loop
      {|
int main() {
  int i = 0;
  int t = 0;
  while (i < 10) {
    if (t - (t / 2) * 2 == 0) { i = i + 2; } else { i = i + 1; }
    t = t + 1;
  }
  print(t);
  return 0;
}
|}
  in
  checkb "origin is diffcon" (lb.Bounds.lorigin = Bounds.Diffcon);
  checkb
    ("upper, not exact (got " ^ trip_s lb.Bounds.lheadx ^ ")")
    (match lb.Bounds.lheadx with Bounds.Upper _ -> true | _ -> false);
  match Bounds.trip_const lb.Bounds.lheadx with
  | Some b ->
    (* worst case all steps are +1: 10 body iterations, 11 header
       executions; the abstraction may add slack but must stay sound
       and finite *)
    checkb "bound covers the slowest path" (Int64.compare b 11L >= 0);
    checkb "bound is not vacuous" (Int64.compare b 20L <= 0)
  | None -> Alcotest.fail "constant-progress loop should get a constant bound"

let test_unknown_is_conservative () =
  (* progress depends on a loaded value: no minimum step is provable *)
  let _, _, lb =
    one_loop
      {|
int a[4];
int main() {
  a[0] = 1;
  int i = 0;
  while (i < 10) { i = i + a[0]; }
  print(i);
  return 0;
}
|}
  in
  checkb
    ("data-dependent step degrades to Unknown (got "
    ^ trip_s lb.Bounds.lheadx ^ ")")
    (lb.Bounds.lheadx = Bounds.Unknown)

(* ------------------------------------------------------------------ *)
(* Unbounded: structurally exitless loops                              *)
(* ------------------------------------------------------------------ *)

let test_unbounded_structural () =
  let f = Func.create ~name:"spin" ~params:[] ~ret:Ty.I64 in
  let entry = Builder.add_block f ~label:"entry" in
  let body = Builder.add_block f ~label:"loop" in
  ignore (Builder.set_term f entry.Func.bid (Instr.Br body.Func.bid));
  ignore
    (Builder.add f body.Func.bid
       (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L))
       Ty.I64);
  ignore (Builder.set_term f body.Func.bid (Instr.Br body.Func.bid));
  let s = Bounds.analyze f in
  (match s.Bounds.floops with
  | [ lb ] ->
    checkb "no exit edges -> Unbounded" (lb.Bounds.lheadx = Bounds.Unbounded);
    checkb "origin structural" (lb.Bounds.lorigin = Bounds.Structural);
    checkb "loop cost is Cunbounded" (lb.Bounds.lcost = Bounds.Cunbounded)
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l));
  checkb "top poisons the function cost" (s.Bounds.fcost = Bounds.Cunbounded)

(* ------------------------------------------------------------------ *)
(* Cost composition over the loop forest                               *)
(* ------------------------------------------------------------------ *)

let test_cost_nest_composition () =
  let m =
    compile
      {|
int main() {
  int t = 0;
  for (int i = 0; i < 10; i++) {
    for (int j = 0; j < 20; j++) { t = t + j; }
  }
  print(t);
  return 0;
}
|}
  in
  let s = Bounds.analyze (Irmod.func m "main") in
  checki "two loops" 2 (List.length s.Bounds.floops);
  (* innermost-first ordering *)
  let inner = List.hd s.Bounds.floops and outer = List.nth s.Bounds.floops 1 in
  checkb "inner is deeper" (inner.Bounds.ldepth > outer.Bounds.ldepth);
  let const_of c =
    match Bounds.cost_const c with
    | Some v -> v
    | None -> Alcotest.fail "constant nest should have constant costs"
  in
  let ci = const_of inner.Bounds.lcost and co = const_of outer.Bounds.lcost in
  (* the outer loop pays for 10 full runs of the inner loop *)
  checkb "outer cost covers 10 inner invocations"
    (Int64.compare co (Int64.mul 10L ci) >= 0);
  checkb "inner covers its 20 iterations" (Int64.compare ci 20L >= 0)

let test_cost_symbolic_nest_degree () =
  let m =
    compile
      {|
int work(int n, int m) {
  int t = 0;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < m; j++) { t = t + j; }
  }
  return t;
}
int main() { print(work(3, 4)); return 0; }
|}
  in
  let s = Bounds.analyze (Irmod.func m "work") in
  check (Alcotest.option Alcotest.int) "n*m nest is a degree-2 polynomial"
    (Some 2)
    (Bounds.cost_degree s.Bounds.fcost)

(* ------------------------------------------------------------------ *)
(* Interpreter differential (unit-sized; the sweep is `make bounds`)   *)
(* ------------------------------------------------------------------ *)

let test_measured_matches_static () =
  let src =
    {|
int main() {
  int t = 0;
  for (int i = 0; i < 7; i++) { t = t + i; }
  int j = 0;
  do { t = t + 1; j = j + 1; } while (j < 5);
  print(t);
  return 0;
}
|}
  in
  let m = compile src in
  let f = Irmod.func m "main" in
  let s = Bounds.analyze f in
  let counts = Hashtbl.create 8 in
  let on_block (g : Func.t) bid =
    if g.Func.fname = "main" then
      Hashtbl.replace counts bid
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts bid))
  in
  ignore
    (Interp.run_state m ~configure:(fun st ->
         st.Interp.hooks.Interp.on_block <- Some on_block));
  checki "two loops analyzed" 2 (List.length s.Bounds.floops);
  List.iter
    (fun (lb : Bounds.loop_bound) ->
      let measured =
        Option.value ~default:0 (Hashtbl.find_opt counts lb.Bounds.lheader)
      in
      match Bounds.trip_const lb.Bounds.lheadx with
      | Some b ->
        checkb
          (Printf.sprintf "%s: static bound %Ld >= measured %d" lb.Bounds.lkey
             b measured)
          (Int64.compare b (Int64.of_int measured) >= 0);
        if Bounds.trip_is_exact lb.Bounds.lheadx then
          checki (lb.Bounds.lkey ^ ": exact bound met") (Int64.to_int b)
            measured
      | None -> Alcotest.failf "%s: expected a constant bound" lb.Bounds.lkey)
    s.Bounds.floops

(* ------------------------------------------------------------------ *)
(* Caching: fingerprint-keyed, incremental == from-scratch             *)
(* ------------------------------------------------------------------ *)

let render (s : Bounds.summary) =
  String.concat "\n" (List.map Bounds.loop_bound_to_string s.Bounds.floops)
  ^ "\n" ^ Bounds.cost_to_string s.Bounds.fcost

let test_cache_invalidate () =
  let m =
    compile
      {|
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() {
  int t = 0;
  for (int i = 0; i < 9; i++) { t = t + work(i); }
  print(t);
  return 0;
}
|}
  in
  let fns = Irmod.defined_functions m in
  let n1 = Noelle.create m in
  List.iter (fun f -> ignore (Noelle.bounds n1 f)) fns;
  (* mutate main only: work's fingerprint — and cached summary — survive *)
  let main = Irmod.func m "main" in
  ignore
    (Builder.add main (Func.entry main)
       (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L))
       Ty.I64);
  Noelle.Telemetry.install ();
  let kept =
    Fun.protect ~finally:Noelle.Telemetry.uninstall (fun () ->
        Noelle.invalidate n1;
        Option.value ~default:0L
          (List.assoc_opt "noelle.invalidate.kept" (Trace.counters ())))
  in
  checkb "untouched summary survived invalidate" (Int64.compare kept 0L > 0);
  let n2 = Noelle.create m in
  List.iter
    (fun f ->
      checks
        (f.Func.fname ^ ": incremental bounds == from-scratch")
        (render (Noelle.bounds n2 f))
        (render (Noelle.bounds n1 f)))
    fns

(* ------------------------------------------------------------------ *)
(* The complexity checker                                              *)
(* ------------------------------------------------------------------ *)

let complexity_diags ?(budget : int option) ?(unbounded = false) m =
  (match budget with
  | Some b -> Meta.set_int m.Irmod.meta "check.complexity.budget" b
  | None -> ());
  if unbounded then Meta.set m.Irmod.meta "check.complexity.flag-unbounded" "1";
  (Noelle.Check.run ~checks:[ "complexity" ] m).Noelle.Check.diags

let test_complexity_budget () =
  let src =
    {|
int main() {
  int t = 0;
  for (int i = 0; i < 100; i++) { t = t + i; }
  print(t);
  return 0;
}
|}
  in
  (* default budget (1e6): clean *)
  checki "clean at default budget" 0 (List.length (complexity_diags (compile src)));
  (* a 10-trip budget: the 101-header-execution loop is flagged *)
  match complexity_diags ~budget:10 (compile src) with
  | [ d ] ->
    checks "stable id" "complexity.budget" d.Noelle.Check.did;
    checkb "warning severity" (d.Noelle.Check.dsev = Noelle.Check.Warning);
    checkb "message names the loop"
      (let s = d.Noelle.Check.dmsg and sub = "for.header" in
       let sl = String.length sub and ml = String.length s in
       let rec go k = k + sl <= ml && (String.sub s k sl = sub || go (k + 1)) in
       go 0)
  | l -> Alcotest.failf "expected one diagnostic, got %d" (List.length l)

let test_complexity_unknown_never_flagged () =
  (* Unknown bound: a lint that fires on "I don't know" is noise *)
  let src =
    {|
int a[4];
int main() {
  a[0] = 1;
  int i = 0;
  while (i < 10) { i = i + a[0]; }
  print(i);
  return 0;
}
|}
  in
  checki "Unknown is never flagged" 0
    (List.length (complexity_diags ~budget:1 ~unbounded:true (compile src)))

let test_complexity_unbounded_flag () =
  let m = Irmod.create ~name:"spinmod" () in
  let f = Func.create ~name:"spin" ~params:[] ~ret:Ty.I64 in
  let entry = Builder.add_block f ~label:"entry" in
  let body = Builder.add_block f ~label:"loop" in
  ignore (Builder.set_term f entry.Func.bid (Instr.Br body.Func.bid));
  ignore
    (Builder.add f body.Func.bid
       (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L))
       Ty.I64);
  ignore (Builder.set_term f body.Func.bid (Instr.Br body.Func.bid));
  Irmod.add_func m f;
  checki "silent by default" 0 (List.length (complexity_diags m));
  match complexity_diags ~unbounded:true m with
  | [ d ] -> checks "stable id" "complexity.unbounded" d.Noelle.Check.did
  | l -> Alcotest.failf "expected one diagnostic, got %d" (List.length l)

let test_complexity_clean_on_corpus () =
  (* the pristine benchmark corpus must lint clean at the default budget:
     a checker that cries wolf on known-good code is dead on arrival *)
  each_kernel (fun k m ->
      checki
        (k.Bsuite.Kernels.kname ^ ": complexity-clean at default budget")
        0
        (List.length (complexity_diags m)))

(* ------------------------------------------------------------------ *)
(* The profile-free planner                                            *)
(* ------------------------------------------------------------------ *)

let test_planner_head_to_head () =
  let k =
    List.find
      (fun (k : Bsuite.Kernels.kernel) -> k.Bsuite.Kernels.kname = "histogram")
      Bsuite.Kernels.all
  in
  let m = Bsuite.Kernels.compile k in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let pairs =
    Ntools.Planner.head_to_head n m ~ncores:4 ~min_hotness:0.05
      ~min_work:20000.0
  in
  checkb "histogram has loops to plan" (pairs <> []);
  List.iter
    (fun (key, prof, stat) ->
      checkb (key ^ ": profile-free decision matches profile-driven")
        (Ntools.Planner.agree prof stat);
      checkb (key ^ ": chunk positive") (stat.Ntools.Planner.pd_chunk > 0);
      checkb (key ^ ": chunk within cores")
        (stat.Ntools.Planner.pd_chunk <= 4))
    pairs

let test_static_chunk_clamps () =
  (* 3 constant iterations on 8 cores: spawning 8 tasks is provably
     wasteful, the static planner clamps to the trip bound *)
  let m =
    compile
      {|
int a[8];
int main() {
  for (int i = 0; i < 3; i++) { a[i] = i; }
  print(a[2]);
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let f = Irmod.func m "main" in
  match Noelle.loops n f with
  | lp :: _ ->
    checki "chunk clamped to the trip bound" 3
      (Ntools.Parutil.static_chunk n f (Noelle.Loop.structure lp) ~ncores:8)
  | [] -> Alcotest.fail "expected a loop"

let suite =
  [
    tc "bounds: exact constant for-loop" test_exact_const;
    tc "bounds: exact downward stride-3" test_exact_downward_and_step;
    tc "bounds: exact symbolic bound" test_exact_symbolic;
    tc "bounds: do-while latch test" test_dowhile_latch_test;
    tc "bounds: do-while runs once" test_dowhile_runs_at_least_once;
    tc "bounds: diffcon conditional increment" test_diffcon_conditional_increment;
    tc "bounds: unknown is conservative" test_unknown_is_conservative;
    tc "bounds: structural unbounded" test_unbounded_structural;
    tc "bounds: cost nest composition" test_cost_nest_composition;
    tc "bounds: symbolic nest degree" test_cost_symbolic_nest_degree;
    tc "bounds: measured trips match static" test_measured_matches_static;
    tc "bounds: cache survives invalidate" test_cache_invalidate;
    tc "check: complexity budget" test_complexity_budget;
    tc "check: complexity never flags Unknown" test_complexity_unknown_never_flagged;
    tc "check: complexity unbounded flag" test_complexity_unbounded_flag;
    tc "check: complexity clean on corpus" test_complexity_clean_on_corpus;
    tc "planner: head-to-head agreement" test_planner_head_to_head;
    tc "planner: static chunk clamps" test_static_chunk_clamps;
  ]
