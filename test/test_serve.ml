(** Noelle.Serve: crash-consistent sharded artifact store, the serve
    loop, kill-and-recover soak, overload shedding (DESIGN.md §14). *)

open Helpers
open Ir
module Store = Serve.Store
module Workload = Serve.Workload

let tmp_root name = Filename.concat (Filename.get_temp_dir_name ()) ("noelle_serve_" ^ name)

let fresh_root name =
  let root = tmp_root name in
  Store.remove_tree root;
  root

let key ?(kind = "pdg") fn =
  { Store.kmod = "m"; kshard = "shard0"; kfn = fn; kkind = kind }

let corpus_src =
  {|
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() {
  int a[16];
  for (int i = 0; i < 16; i++) { a[i] = work(i); }
  int s = 0;
  for (int i = 0; i < 16; i++) { s = s + a[i]; }
  print(s);
  return 0;
}
|}

let mini_corpus () = [ ("m", compile ~name:"m" corpus_src) ]

(* ------------------------------------------------------------------ *)
(* Store unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let st = Store.open_store (fresh_root "rt") in
  Store.write st (key "f") ~fp:"aa" ~afp:"bb" ~payload:"1 2 mem\n3 4 ctrl";
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"bb" ~now:0 with
  | Store.Hit p -> checks "payload survives" "1 2 mem\n3 4 ctrl" p
  | _ -> Alcotest.fail "expected Hit");
  (* stale on code fingerprint, stale on analysis dependency *)
  (match Store.lookup st (key "f") ~fp:"zz" ~afp:"bb" ~now:0 with
  | Store.Miss_stale was -> checks "stamped-for fp" "aa" was
  | _ -> Alcotest.fail "expected Miss_stale on fp");
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"other" ~now:0 with
  | Store.Miss_stale _ -> ()
  | _ -> Alcotest.fail "expected Miss_stale on afp");
  (match Store.lookup st (key "g") ~fp:"aa" ~afp:"bb" ~now:0 with
  | Store.Miss_absent -> ()
  | _ -> Alcotest.fail "expected Miss_absent");
  Store.close st

let corrupt_file path f =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f s);
  close_out oc

let test_store_corrupt_quarantine () =
  let root = fresh_root "corrupt" in
  let st = Store.open_store root in
  Store.write st (key "f") ~fp:"aa" ~afp:"-" ~payload:"payload";
  let path = Filename.concat root "m/shard0/f.pdg.art" in
  (* flip one payload byte: checksum must catch it, lookup must
     quarantine-and-miss, and the quarantine dir must hold the evidence *)
  corrupt_file path (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b (String.length s - 1) 'X';
      Bytes.to_string b);
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"-" ~now:0 with
  | Store.Miss_corrupt why -> checks "reason" "payload checksum mismatch" why
  | _ -> Alcotest.fail "expected Miss_corrupt");
  checkb "artifact moved aside" (not (Sys.file_exists path));
  checki "quarantine holds it" 1
    (Array.length (Sys.readdir (Filename.concat root "quarantine")));
  checki "qcount" 1 st.Store.qcount;
  (* quarantined artifacts are out of service: next lookup is a plain miss *)
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"-" ~now:0 with
  | Store.Miss_absent -> ()
  | _ -> Alcotest.fail "expected Miss_absent after quarantine");
  Store.close st

let test_store_startup_sweep () =
  let root = fresh_root "sweep" in
  let st = Store.open_store root in
  Store.write st (key "f") ~fp:"aa" ~afp:"-" ~payload:"payload";
  Store.write st (key "g") ~fp:"cc" ~afp:"-" ~payload:"other";
  Store.close st;
  (* torn write shapes: one artifact truncated to zero length, one cut
     mid-payload — the reopen sweep must quarantine both, keep the rest *)
  corrupt_file (Filename.concat root "m/shard0/f.pdg.art") (fun _ -> "");
  let st = Store.open_store root in
  checki "zero-length quarantined at startup" 1 st.Store.last_recovery.Store.r_quarantined;
  checki "intact artifact survives" 1 st.Store.last_recovery.Store.r_live;
  Store.close st;
  corrupt_file (Filename.concat root "m/shard0/g.pdg.art") (fun s ->
      String.sub s 0 (String.length s - 3));
  let st = Store.open_store root in
  checki "truncated quarantined at startup" 1 st.Store.last_recovery.Store.r_quarantined;
  Store.close st

(** Kill at each of the three sub-points inside a write; recovery must
    yield byte-equivalent-or-recomputed state, never a torn artifact. *)
let test_store_kill_points () =
  List.iter
    (fun point ->
      let root = fresh_root (Printf.sprintf "kill%d" point) in
      let st = Store.open_store root in
      Store.write st (key "f") ~fp:"aa" ~afp:"-" ~payload:"original";
      Store.arm st Faultgen.Kill_mid_write ~seed:point ~now:0 ~stall_ticks:0;
      (match Store.write st (key "g") ~fp:"bb" ~afp:"-" ~payload:"victim" with
      | () -> Alcotest.fail "armed kill did not fire"
      | exception Store.Killed _ -> ());
      let st = Store.open_store root in
      checkb "recovery saw the pending intent"
        (st.Store.last_recovery.Store.r_pending >= 1);
      (* no torn temp file may survive *)
      checkb "no .tmp leftovers"
        (not (Sys.file_exists (Filename.concat root "m/shard0/g.pdg.art.tmp")));
      (* the victim is either absent (kill before rename) or fully valid
         (kill after rename): never corrupt, never half-written *)
      (match Store.lookup st (key "g") ~fp:"bb" ~afp:"-" ~now:0 with
      | Store.Miss_absent -> ()
      | Store.Hit p -> checks "post-rename artifact is complete" "victim" p
      | Store.Miss_corrupt why -> Alcotest.failf "torn artifact survived: %s" why
      | Store.Miss_stale _ -> Alcotest.fail "stale artifact after recovery");
      (* the unrelated artifact is untouched *)
      (match Store.lookup st (key "f") ~fp:"aa" ~afp:"-" ~now:0 with
      | Store.Hit p -> checks "bystander intact" "original" p
      | _ -> Alcotest.fail "bystander artifact lost");
      Store.close st)
    [ 0; 1; 2 ]

let test_store_stall_retry () =
  let root = fresh_root "stall" in
  let st = Store.open_store root in
  Store.write st (key "f") ~fp:"aa" ~afp:"-" ~payload:"p";
  Store.arm st Faultgen.Stall_shard ~seed:0 ~now:0 ~stall_ticks:5;
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"-" ~now:2 with
  | exception Store.Transient _ -> ()
  | _ -> Alcotest.fail "expected Transient while stalled");
  (* past the expiry tick the shard answers again *)
  (match Store.lookup st (key "f") ~fp:"aa" ~afp:"-" ~now:6 with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "expected Hit after stall expiry");
  Store.close st

(* ------------------------------------------------------------------ *)
(* Shared reconcile helper (satellite)                                 *)
(* ------------------------------------------------------------------ *)

let test_reconcile_artifact () =
  checkb "same fp keeps"
    (Noelle.reconcile_artifact ~current:(Some "x") ~stamped:"x" = `Keep);
  checkb "moved fp drops"
    (Noelle.reconcile_artifact ~current:(Some "y") ~stamped:"x" = `Drop);
  checkb "missing subject drops"
    (Noelle.reconcile_artifact ~current:None ~stamped:"x" = `Drop)

(* ------------------------------------------------------------------ *)
(* Workload generator                                                  *)
(* ------------------------------------------------------------------ *)

let test_workload_deterministic () =
  let mods = [ "a"; "b" ] in
  let w1 = Workload.generate ~seed:7 ~mods ~requests:50 in
  let w2 = Workload.generate ~seed:7 ~mods ~requests:50 in
  checkb "same seed, same stream" (w1.Workload.reqs = w2.Workload.reqs);
  let w3 = Workload.generate ~seed:8 ~mods ~requests:50 in
  checkb "different seed, different stream" (w1.Workload.reqs <> w3.Workload.reqs);
  checki "length" 50 (List.length w1.Workload.reqs);
  (* both request flavours appear *)
  checkb "has edits"
    (List.exists (function Workload.Edit _ -> true | _ -> false) w1.Workload.reqs);
  checkb "has queries"
    (List.exists (function Workload.Query _ -> true | _ -> false) w1.Workload.reqs)

(* ------------------------------------------------------------------ *)
(* Serve loop                                                          *)
(* ------------------------------------------------------------------ *)

let test_warm_store_hits () =
  let root = fresh_root "warm" in
  let w = Workload.generate ~seed:3 ~mods:[ "m" ] ~requests:30 in
  let sv = Serve.create ~root (mini_corpus ()) in
  let r1 = Serve.run sv w () in
  Serve.Store.close sv.Serve.store;
  (* fresh process, pristine corpus, warm store *)
  let sv2 = Serve.create ~root (mini_corpus ()) in
  let r2 = Serve.run sv2 w () in
  Serve.Store.close sv2.Serve.store;
  checki "all served (cold)" 30 r1.Serve.rserved;
  checki "all served (warm)" 30 r2.Serve.rserved;
  checkb "warm store answers more from disk" (r2.Serve.rhits > r1.Serve.rhits);
  checki "no shedding in closed loop" 0 (r1.Serve.rshed + r2.Serve.rshed);
  (* identical request streams over identical corpus state: answers match *)
  checkb "warm answers ≡ cold answers"
    (Serve.compare_answers r1.Serve.ranswers r2.Serve.ranswers = None)

let test_edit_invalidates () =
  let root = fresh_root "edit" in
  let sv = Serve.create ~root (mini_corpus ()) in
  let q = Workload.Query { qmod = "m"; qfn = 0; qkind = Workload.Qdeps } in
  let a1 = Serve.handle sv 0 q in
  let a2 = Serve.handle sv 1 q in
  checks "repeat query hits the store" "hit" a2.Serve.asource;
  checks "hit digest matches computed" a1.Serve.atext a2.Serve.atext;
  let e = Workload.Edit { emod = "m"; efn = 0; eseed = 42 } in
  ignore (Serve.handle sv 2 e);
  let a3 = Serve.handle sv 3 q in
  checks "post-edit query recomputes" "computed" a3.Serve.asource;
  checkb "post-edit digest moved" (a3.Serve.atext <> a1.Serve.atext);
  Serve.Store.close sv.Serve.store

(** An open breaker sheds dependence queries to degraded answers and
    must never persist them: overload cannot poison the store. *)
let test_shed_not_persisted () =
  let root = fresh_root "shed" in
  let sv = Serve.create ~root (mini_corpus ()) in
  sv.Serve.breaker_open <- true;
  let q = Workload.Query { qmod = "m"; qfn = 0; qkind = Workload.Qdeps } in
  let a = Serve.handle sv 0 q in
  checkb "shed answer marked degraded" a.Serve.adegraded;
  checks "source" "degraded" a.Serve.asource;
  checki "nothing written to the store" 0 (Store.artifact_count sv.Serve.store);
  (* breaker closed again: the exact answer is computed, persisted, and
     its dependences are a subset of the degraded superset *)
  sv.Serve.breaker_open <- false;
  let e = Serve.handle sv 1 q in
  checks "exact afterwards" "computed" e.Serve.asource;
  let sub = Noelle.Pdg.payload_deps e.Serve.apayload in
  let sup = Noelle.Pdg.payload_deps a.Serve.apayload in
  checkb "degraded is a conservative superset"
    (List.for_all (fun d -> List.mem d sup) sub);
  Serve.Store.close sv.Serve.store

let test_sink_skips_degraded () =
  let m = compile ~name:"m" corpus_src in
  (* budget 0: every alias query is over budget, the PDG is degraded *)
  let mgr = Noelle.create ~analysis_budget:0 m in
  let fired = ref 0 in
  Noelle.set_artifact_sink mgr
    (Some (fun ~kind:_ ~fn:_ ~fp:_ ~payload:_ -> incr fired));
  let f = Option.get (Irmod.func_opt m "main") in
  let p = Noelle.pdg mgr f in
  checkb "budget-0 build degraded" p.Noelle.Pdg.degraded;
  checki "degraded result never reaches the sink" 0 !fired;
  (* bounds are always sound: the sink fires *)
  ignore (Noelle.bounds mgr f);
  checki "bounds reach the sink" 1 !fired

let test_soak_mini () =
  let ok, stats, results =
    Serve.soak
      ~corpus_of:(fun () -> mini_corpus () @ [ ("n", compile ~name:"n" corpus_src) ])
      ~root:(fresh_root "soak") ~seeds:4 ~modules:2 ~requests:30
      ~progress:(fun _ -> ())
      ()
  in
  List.iter
    (fun r ->
      match r.Serve.smismatch with
      | None -> ()
      | Some m -> Alcotest.failf "seed %d: %s" r.Serve.sseed m)
    results;
  checkb "all seeds recovered ≡ cold" ok;
  checkb "kills actually fired" (stats.Serve.t_kills > 0);
  checki "every kill recovered" stats.Serve.t_kills stats.Serve.t_recoveries

let test_overload_gate () =
  let ok, r =
    Serve.overload
      ~corpus_of:(fun () -> mini_corpus ())
      ~root:(fresh_root "over") ~seed:1 ~modules:1 ~requests:120 ()
  in
  checkb "gate passes" ok;
  checkb "breaker opened" (r.Serve.rbreaker_opens >= 1);
  checkb "queries shed" (r.Serve.rshed > 0);
  checki "all requests served" 120 r.Serve.rserved;
  checki "no conservativeness violations" 0 (List.length r.Serve.rviolations);
  (* shed answers, and only shed answers, are flagged degraded *)
  List.iter
    (fun (a : Serve.answer) ->
      checkb "degraded iff shed" (a.Serve.adegraded = (a.Serve.asource = "degraded")))
    r.Serve.ranswers

(* ------------------------------------------------------------------ *)
(* Request-scoped observability                                        *)
(* ------------------------------------------------------------------ *)

(** Walk the trace of a multi-request workload: every span/event emitted
    while serving — store phases, manager demand entry points, Andersen /
    PDG / Bounds spans — must carry its request's correlation id. *)
let test_correlation_ids () =
  let module T = Noelle.Telemetry in
  T.install ();
  Fun.protect ~finally:(fun () -> T.uninstall (); T.reset ())
  @@ fun () ->
  let root = fresh_root "rid" in
  let w = Workload.generate ~seed:5 ~mods:[ "m" ] ~requests:25 in
  let sv = Serve.create ~root (mini_corpus ()) in
  let r = Serve.run sv w () in
  Serve.Store.close sv.Serve.store;
  checki "all served" 25 r.Serve.rserved;
  let evs = T.events () in
  checkb "trace nonempty" (evs <> []);
  let rid (e : Ir.Trace.event) = List.assoc_opt "rid" e.Ir.Trace.eargs in
  List.iter
    (fun (e : Ir.Trace.event) ->
      match rid e with
      | Some r ->
        checkb
          (Printf.sprintf "%s rid well-formed (%s)" e.Ir.Trace.ename r)
          (String.length r > 4 && String.sub r 0 4 = "req-")
      | None ->
        Alcotest.failf "event %s (cat %s) has no correlation id"
          e.Ir.Trace.ename e.Ir.Trace.ecat)
    evs;
  let rids = List.sort_uniq compare (List.filter_map rid evs) in
  checkb "multiple requests traced" (List.length rids >= 2);
  (* phase spans and deep analysis spans both present and stamped *)
  let has cat pfx =
    List.exists
      (fun (e : Ir.Trace.event) ->
        e.Ir.Trace.ecat = cat
        && String.length e.Ir.Trace.ename >= String.length pfx
        && String.sub e.Ir.Trace.ename 0 (String.length pfx) = pfx
        && rid e <> None)
      evs
  in
  checkb "store_lookup phase stamped" (has "serve" "serve.phase.store_lookup");
  checkb "recompute phase stamped" (has "serve" "serve.phase.recompute");
  checkb "analysis spans stamped" (has "analysis" "noelle.");
  (* per-kind latency histograms populated *)
  List.iter
    (fun kind ->
      match Ir.Trace.histogram ("serve.latency_us." ^ kind) with
      | Some h -> checkb (kind ^ " latencies observed") (h.Ir.Trace.hcount > 0)
      | None -> Alcotest.failf "no latency histogram for %s" kind)
    [ "edit"; "deps"; "bounds"; "loops" ]

(** Flight ring → dump → replay round-trip on a healthy server. *)
let test_flight_dump_replay () =
  let root = fresh_root "flight" in
  Ir.Trace.flight_reset ();
  let sv = Serve.create ~root (mini_corpus ()) in
  checkb "fresh root: nothing to replay" (sv.Serve.flight_replay = None);
  let q i k = Serve.handle sv i (Workload.Query { qmod = "m"; qfn = i; qkind = k }) in
  ignore (q 0 Workload.Qdeps);
  ignore (q 1 Workload.Qbounds);
  ignore (q 2 Workload.Qloops);
  Serve.Store.close sv.Serve.store;
  ignore (Serve.dump_flight root);
  match Serve.replay_flight root with
  | None -> Alcotest.fail "dump did not replay"
  | Some fi ->
    checkb "last request named" (fi.Serve.fi_req = Some (2, "req-2"));
    checkb "no kill recorded" (fi.Serve.fi_kill = None);
    checkb "waypoints retained" (fi.Serve.fi_events >= 3)

(** Deterministic kill forensics: at each kill sub-point the dumped
    flight ring must name the in-flight request and the exact point. *)
let test_flight_kill_forensics () =
  List.iter
    (fun point ->
      let root = fresh_root (Printf.sprintf "fkill%d" point) in
      Ir.Trace.flight_reset ();
      let sv = ref (Serve.create ~root (mini_corpus ())) in
      (* a compute query that writes through the sink, with a kill armed
         at sub-point [point] (arm seed = point, kill_point = seed mod 3) *)
      Store.arm (!sv).Serve.store Faultgen.Kill_mid_write ~seed:point ~now:0
        ~stall_ticks:0;
      let q = Workload.Query { qmod = "m"; qfn = 1; qkind = Workload.Qdeps } in
      (match Serve.handle !sv 7 q with
      | _ -> Alcotest.fail "armed kill did not fire"
      | exception Store.Killed msg ->
        checkb "kill names its point"
          (Scanf.sscanf msg "kill-mid-write@%d" (fun p -> p) = point));
      ignore (Serve.dump_flight root);
      sv := Serve.restart !sv ~root;
      (match (!sv).Serve.flight_replay with
      | None -> Alcotest.fail "recovery found no flight dump"
      | Some fi ->
        checkb
          (Printf.sprintf "point %d: in-flight request named" point)
          (fi.Serve.fi_req = Some (7, "req-7"));
        checkb
          (Printf.sprintf "point %d: kill point named with rid" point)
          (fi.Serve.fi_kill = Some (point, "req-7")));
      Serve.Store.close (!sv).Serve.store)
    [ 0; 1; 2 ]

let test_counters_registered () =
  Noelle.Telemetry.install ();
  let root = fresh_root "counters" in
  let sv = Serve.create ~root (mini_corpus ()) in
  ignore (Serve.run sv (Workload.generate ~seed:0 ~mods:[ "m" ] ~requests:10) ());
  Serve.Store.close sv.Serve.store;
  let names = List.map fst (Noelle.Telemetry.metrics ()) in
  List.iter
    (fun c -> checkb (c ^ " registered") (List.mem c names))
    [ "serve.requests"; "serve.queries"; "serve.edits"; "serve.store.hits";
      "serve.store.writes"; "serve.shed"; "serve.recoveries";
      "serve.quarantined" ];
  Noelle.Telemetry.uninstall ()

let suite =
  [
    Alcotest.test_case "store: write/lookup roundtrip + staleness" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store: corrupt artifact quarantined on lookup" `Quick
      test_store_corrupt_quarantine;
    Alcotest.test_case "store: startup sweep quarantines torn writes" `Quick
      test_store_startup_sweep;
    Alcotest.test_case "store: kill at every write sub-point recovers" `Quick
      test_store_kill_points;
    Alcotest.test_case "store: stalled shard is transient, then heals" `Quick
      test_store_stall_retry;
    Alcotest.test_case "reconcile_artifact: one audited keep/drop decision"
      `Quick test_reconcile_artifact;
    Alcotest.test_case "workload: deterministic from seed" `Quick
      test_workload_deterministic;
    Alcotest.test_case "serve: warm store answers from disk, identically"
      `Quick test_warm_store_hits;
    Alcotest.test_case "serve: edits invalidate stored artifacts" `Quick
      test_edit_invalidates;
    Alcotest.test_case "serve: shed answers conservative, never persisted"
      `Quick test_shed_not_persisted;
    Alcotest.test_case "serve: manager sink skips degraded results" `Quick
      test_sink_skips_degraded;
    Alcotest.test_case "serve: mini soak — recovered ≡ cold" `Quick
      test_soak_mini;
    Alcotest.test_case "serve: overload sheds, never wrong" `Quick
      test_overload_gate;
    Alcotest.test_case "serve: every traced event carries its rid" `Quick
      test_correlation_ids;
    Alcotest.test_case "serve: flight dump/replay round-trip" `Quick
      test_flight_dump_replay;
    Alcotest.test_case "serve: flight names request + kill point" `Quick
      test_flight_kill_forensics;
    Alcotest.test_case "serve: telemetry counters registered" `Quick
      test_counters_registered;
  ]
