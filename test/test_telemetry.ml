(** Noelle.Telemetry: the tracing/metrics spine.  Covers the span stack
    (nesting, ordering, depth), counter monotonicity, the no-op path when
    the sink is off, Chrome-trace export round-tripped through the repo's
    own JSON parser, Psim's structured task events, and the
    span-per-pass + gate-tag contract of the transactional pipeline. *)

open Helpers
module T = Noelle.Telemetry
module Trace = Ir.Trace

(** Run [f] with the sink installed, always disabling and resetting after,
    so telemetry state never leaks between tests (or into the no-op ones). *)
let traced f =
  T.install ();
  Fun.protect
    ~finally:(fun () ->
      T.uninstall ();
      T.reset ())
    f

(* a DOALL-parallelizable program: two independent counted loops *)
let loopy_src =
  {|
int main() {
  int *a = malloc(64);
  int s = 0;
  for (int i = 0; i < 64; i++) {
    a[i] = i * 3 - 1;
  }
  for (int i = 0; i < 64; i++) {
    s += a[i];
  }
  print(s);
  return 0;
}
|}

let find_event name =
  List.find_opt (fun (e : Trace.event) -> e.Trace.ename = name) (T.events ())

(* ------------------------------------------------------------------ *)
(* Core recording                                                      *)
(* ------------------------------------------------------------------ *)

let test_noop_path () =
  (* NOELLE_TRACE unset in the test environment: everything must be off *)
  checkb "sink off by default" (not (T.installed ()));
  T.incr "noop.counter";
  T.add "noop.counter" 7;
  T.observe "noop.hist" 5L;
  let v = T.span ~cat:"t" "noop.span" (fun () -> 41 + 1) in
  checki "span still runs its body" 42 v;
  T.instant "noop.instant";
  checki "no events recorded" 0 (List.length (T.events ()));
  checki "registry stays empty" 0 (List.length (T.metrics ()));
  checkb "counter reads back 0" (Int64.equal 0L (T.counter "noop.counter"))

let test_span_nesting () =
  traced @@ fun () ->
  let r =
    T.span ~cat:"outer" "a" (fun () ->
        let x = T.span ~cat:"inner" "b" (fun () -> 1) in
        let y = T.span ~cat:"inner" "c" (fun () -> 2) in
        x + y)
  in
  checki "value" 3 r;
  (* events close innermost-first: b, c, then a *)
  let names = List.map (fun (e : Trace.event) -> e.Trace.ename) (T.events ()) in
  checkb "close order b,c,a" (names = [ "b"; "c"; "a" ]);
  let get n = Option.get (find_event n) in
  checki "outer depth" 0 (get "a").Trace.edepth;
  checki "inner depth b" 1 (get "b").Trace.edepth;
  checki "inner depth c" 1 (get "c").Trace.edepth;
  let a = get "a" and b = get "b" and c = get "c" in
  checkb "children start inside parent" (b.Trace.ets >= a.Trace.ets && c.Trace.ets >= a.Trace.ets);
  checkb "parent spans its children"
    (a.Trace.ets +. a.Trace.edur >= c.Trace.ets +. c.Trace.edur);
  checkb "siblings ordered" (c.Trace.ets >= b.Trace.ets)

let test_span_exception_safe () =
  traced @@ fun () ->
  (match T.span "boom" (fun () -> failwith "kaput") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match find_event "boom" with
  | None -> Alcotest.fail "span not closed on exception"
  | Some e ->
    checkb "tagged raised" (List.mem_assoc "raised" e.Trace.eargs);
    checki "depth restored" 0
      (let s = Trace.begin_span "probe" in
       let d = s.Trace.sdepth in
       Trace.end_span s;
       d)

let test_counter_monotonic () =
  traced @@ fun () ->
  T.incr "m.c";
  T.add "m.c" 4;
  T.add "m.c" 0;
  T.add "m.c" (-3);
  checkb "adds accumulate, <=0 ignored" (Int64.equal 5L (T.counter "m.c"));
  T.set_gauge "m.g" 2.5;
  (match Trace.gauge "m.g" with
  | Some v -> checkb "gauge holds last value" (v = 2.5)
  | None -> Alcotest.fail "gauge missing");
  T.observe "m.h" 5L;
  T.observe "m.h" 1000L;
  T.observe "m.h" (-7L);
  match Trace.histogram "m.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    checki "observation count" 3 h.Trace.hcount;
    checkb "sum clamps negatives" (Int64.equal 1005L h.Trace.hsum);
    (* 5 lands in [4,8) = bucket 2; 1000 in [512,1024) = bucket 9; -7 in 0 *)
    checki "bucket 2" 1 h.Trace.hbuckets.(2);
    checki "bucket 9" 1 h.Trace.hbuckets.(9);
    checki "bucket 0" 1 h.Trace.hbuckets.(0)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_json_roundtrip () =
  traced @@ fun () ->
  T.span ~cat:"analysis" ~args:[ ("k", "v\"quoted\"\n") ] "weird \"name\"\ttab"
    (fun () -> ());
  T.instant ~cat:"mark" "i1";
  let s = T.to_chrome_json () in
  (* parse back with the repo's own JSON parser, not string matching *)
  let triples = T.validate_chrome_json s in
  checki "two events survive" 2 (List.length triples);
  checkb "escaped name round-trips"
    (List.exists (fun (n, c, ph) -> n = "weird \"name\"\ttab" && c = "analysis" && ph = "X")
       triples);
  checkb "instant present" (List.exists (fun (n, _, ph) -> n = "i1" && ph = "i") triples);
  let layers = T.layers_of triples in
  (* layers_of counts complete events only *)
  checkb "one analysis span" (layers = [ ("analysis", 1) ])

let test_metrics_roundtrip () =
  traced @@ fun () ->
  T.add "r.alpha" 3;
  T.add "r.beta" 10;
  T.observe "r.hist" 6L;
  let a = T.parse_metrics (T.metrics_to_json ()) in
  checkb "counter value parses" (List.assoc_opt "r.alpha" a = Some 3.0);
  checkb "histogram reports sum" (List.assoc_opt "r.hist" a = Some 6.0);
  (* now diff against a second dump with one changed, one new, one gone *)
  T.reset ();
  T.install ();
  T.add "r.alpha" 9;
  T.add "r.gamma" 1;
  let b = T.parse_metrics (T.metrics_to_json ()) in
  let deltas = T.diff_metrics a b in
  let find n = List.find (fun (d : T.delta) -> d.T.dname = n) deltas in
  checkb "changed" ((find "r.alpha").T.dafter = Some 9.0);
  checkb "disappeared" ((find "r.beta").T.dafter = None);
  checkb "appeared" ((find "r.gamma").T.dbefore = None)

(* ------------------------------------------------------------------ *)
(* Instrumented layers                                                 *)
(* ------------------------------------------------------------------ *)

let test_manager_hit_miss () =
  traced @@ fun () ->
  let m = compile loopy_src in
  let n = Noelle.create m in
  let f = Ir.Irmod.func m "main" in
  ignore (Noelle.pdg n f);
  ignore (Noelle.pdg n f);
  checkb "two queries" (Int64.equal 2L (T.counter "noelle.pdg.queries"));
  checkb "first query misses" (Int64.equal 1L (T.counter "noelle.pdg.miss"));
  checkb "second query hits" (Int64.equal 1L (T.counter "noelle.pdg.hit"));
  checkb "pdg span recorded with source tag"
    (List.exists
       (fun (e : Trace.event) ->
         e.Trace.ename = "noelle.pdg:main"
         && List.assoc_opt "source" e.Trace.eargs = Some "computed")
       (T.events ()))

let test_pipeline_span_per_pass () =
  traced @@ fun () ->
  let m = compile loopy_src in
  let report = Ntools.Passes.run_standard m in
  List.iter
    (fun (e : Noelle.Pipeline.entry) ->
      match find_event ("pass:" ^ e.Noelle.Pipeline.epass) with
      | None -> Alcotest.failf "no span for pass %s" e.Noelle.Pipeline.epass
      | Some ev ->
        checkb (e.Noelle.Pipeline.epass ^ " has outcome tag")
          (List.mem_assoc "outcome" ev.Trace.eargs);
        checkb (e.Noelle.Pipeline.epass ^ " has verify tag")
          (List.mem_assoc "verify" ev.Trace.eargs);
        checkb (e.Noelle.Pipeline.epass ^ " has differential tag")
          (List.mem_assoc "differential" ev.Trace.eargs))
    report.Noelle.Pipeline.entries;
  checkb "committed counter matches report"
    (Int64.equal
       (Int64.of_int
          (List.length
             (List.filter
                (fun (e : Noelle.Pipeline.entry) ->
                  match e.Noelle.Pipeline.eoutcome with
                  | Noelle.Pipeline.Committed _ -> true
                  | _ -> false)
                report.Noelle.Pipeline.entries)))
       (T.counter "pipeline.committed"))

let test_psim_events () =
  (* pure render round-trip: the structured events must reproduce the old
     string log byte for byte *)
  let log =
    [ Psim.Runtime.Task_died { tid = 2; attempt = 1; cycle = 431L };
      Psim.Runtime.Task_ok { tid = 2; attempt = 2 };
      Psim.Runtime.Section_abandoned { reason = "no luck" };
    ]
  in
  checks "render"
    "task 2 attempt 1: died at cycle 431\ntask 2 attempt 2: ok\ntask -1 attempt 0: section abandoned: no luck"
    (Psim.Runtime.dispositions_to_string log);
  (* a real resilient run under tracing: task swimlane events + counters *)
  traced @@ fun () ->
  let original = compile loopy_src in
  let m = compile loopy_src in
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 () in
  checkb "DOALL parallelized" (List.exists (fun (_, r) -> Result.is_ok r) results);
  let fault = Psim.Runtime.seeded_fault ~seed:1 () in
  let r = Psim.Runtime.run_resilient ~fault ~original m in
  checkb "stayed parallel" (r.Psim.Runtime.rmode = `Parallel);
  checkb "every task eventually ok"
    (List.exists
       (function Psim.Runtime.Task_ok _ -> true | _ -> false)
       r.Psim.Runtime.rtask_log);
  checkb "psim sections counted" (Int64.compare (T.counter "psim.sections") 0L > 0);
  let task_events =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ecat = "psim" && String.length e.Trace.ename > 5
        && String.sub e.Trace.ename 0 5 = "task:")
      (T.events ())
  in
  checkb "per-task swimlane events present" (task_events <> []);
  checkb "tasks ride their own tid rows"
    (List.for_all (fun (e : Trace.event) -> e.Trace.etid > 0) task_events);
  checkb "task events carry cycle counts"
    (List.for_all
       (fun (e : Trace.event) -> List.mem_assoc "cycles" e.Trace.eargs)
       task_events)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "no-op path when sink is off" test_noop_path;
    tc "span nesting and ordering" test_span_nesting;
    tc "span closes on exception" test_span_exception_safe;
    tc "counters, gauges, histograms" test_counter_monotonic;
    tc "Chrome JSON round-trip" test_chrome_json_roundtrip;
    tc "metrics dump parse and diff" test_metrics_roundtrip;
    tc "manager hit/miss attribution" test_manager_hit_miss;
    tc "pipeline span per pass with gate tags" test_pipeline_span_per_pass;
    tc "psim structured events and swimlanes" test_psim_events;
  ]
