(** Noelle.Telemetry: the tracing/metrics spine.  Covers the span stack
    (nesting, ordering, depth), counter monotonicity, the no-op path when
    the sink is off, Chrome-trace export round-tripped through the repo's
    own JSON parser, Psim's structured task events, and the
    span-per-pass + gate-tag contract of the transactional pipeline. *)

open Helpers
module T = Noelle.Telemetry
module Trace = Ir.Trace

(** Run [f] with the sink installed, always disabling and resetting after,
    so telemetry state never leaks between tests (or into the no-op ones). *)
let traced f =
  T.install ();
  Fun.protect
    ~finally:(fun () ->
      T.uninstall ();
      T.reset ())
    f

(* a DOALL-parallelizable program: two independent counted loops *)
let loopy_src =
  {|
int main() {
  int *a = malloc(64);
  int s = 0;
  for (int i = 0; i < 64; i++) {
    a[i] = i * 3 - 1;
  }
  for (int i = 0; i < 64; i++) {
    s += a[i];
  }
  print(s);
  return 0;
}
|}

let find_event name =
  List.find_opt (fun (e : Trace.event) -> e.Trace.ename = name) (T.events ())

(* ------------------------------------------------------------------ *)
(* Core recording                                                      *)
(* ------------------------------------------------------------------ *)

let test_noop_path () =
  (* NOELLE_TRACE unset in the test environment: everything must be off *)
  checkb "sink off by default" (not (T.installed ()));
  T.incr "noop.counter";
  T.add "noop.counter" 7;
  T.observe "noop.hist" 5L;
  let v = T.span ~cat:"t" "noop.span" (fun () -> 41 + 1) in
  checki "span still runs its body" 42 v;
  T.instant "noop.instant";
  checki "no events recorded" 0 (List.length (T.events ()));
  checki "registry stays empty" 0 (List.length (T.metrics ()));
  checkb "counter reads back 0" (Int64.equal 0L (T.counter "noop.counter"))

let test_span_nesting () =
  traced @@ fun () ->
  let r =
    T.span ~cat:"outer" "a" (fun () ->
        let x = T.span ~cat:"inner" "b" (fun () -> 1) in
        let y = T.span ~cat:"inner" "c" (fun () -> 2) in
        x + y)
  in
  checki "value" 3 r;
  (* events close innermost-first: b, c, then a *)
  let names = List.map (fun (e : Trace.event) -> e.Trace.ename) (T.events ()) in
  checkb "close order b,c,a" (names = [ "b"; "c"; "a" ]);
  let get n = Option.get (find_event n) in
  checki "outer depth" 0 (get "a").Trace.edepth;
  checki "inner depth b" 1 (get "b").Trace.edepth;
  checki "inner depth c" 1 (get "c").Trace.edepth;
  let a = get "a" and b = get "b" and c = get "c" in
  checkb "children start inside parent" (b.Trace.ets >= a.Trace.ets && c.Trace.ets >= a.Trace.ets);
  checkb "parent spans its children"
    (a.Trace.ets +. a.Trace.edur >= c.Trace.ets +. c.Trace.edur);
  checkb "siblings ordered" (c.Trace.ets >= b.Trace.ets)

let test_span_exception_safe () =
  traced @@ fun () ->
  (match T.span "boom" (fun () -> failwith "kaput") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match find_event "boom" with
  | None -> Alcotest.fail "span not closed on exception"
  | Some e ->
    checkb "tagged raised" (List.mem_assoc "raised" e.Trace.eargs);
    checki "depth restored" 0
      (let s = Trace.begin_span "probe" in
       let d = s.Trace.sdepth in
       Trace.end_span s;
       d)

let test_counter_monotonic () =
  traced @@ fun () ->
  T.incr "m.c";
  T.add "m.c" 4;
  T.add "m.c" 0;
  T.add "m.c" (-3);
  checkb "adds accumulate, <=0 ignored" (Int64.equal 5L (T.counter "m.c"));
  T.set_gauge "m.g" 2.5;
  (match Trace.gauge "m.g" with
  | Some v -> checkb "gauge holds last value" (v = 2.5)
  | None -> Alcotest.fail "gauge missing");
  T.observe "m.h" 5L;
  T.observe "m.h" 1000L;
  T.observe "m.h" (-7L);
  match Trace.histogram "m.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    checki "observation count" 3 h.Trace.hcount;
    checkb "sum clamps negatives" (Int64.equal 1005L h.Trace.hsum);
    (* HDR buckets: 5 < sub_count is exact (bucket 5); 1000 lands in
       [960,1024) = bucket 63; -7 clamps into bucket 0 *)
    checki "bucket 5" 1 h.Trace.hbuckets.(Trace.bucket_of 5L);
    checki "bucket of 5 is exact" 5 (Trace.bucket_of 5L);
    checki "bucket 63" 1 h.Trace.hbuckets.(63);
    checki "bucket of 1000" 63 (Trace.bucket_of 1000L);
    checki "bucket 0" 1 h.Trace.hbuckets.(0)

let test_hdr_buckets () =
  (* bucket geometry: lower bounds partition, widths within 12.5% *)
  for i = 0 to Trace.nbuckets - 2 do
    checkb
      (Printf.sprintf "bucket %d contiguous" i)
      (Int64.add (Trace.bucket_lower i) (Trace.bucket_width i)
      = Trace.bucket_lower (i + 1))
  done;
  List.iter
    (fun v ->
      let b = Trace.bucket_of v in
      let lo = Trace.bucket_lower b in
      let hi = Int64.add lo (Trace.bucket_width b) in
      checkb
        (Printf.sprintf "%Ld in its bucket" v)
        (Int64.compare lo v <= 0 && Int64.compare v hi < 0))
    [ 0L; 1L; 7L; 8L; 9L; 15L; 16L; 17L; 100L; 1000L; 65535L; 1_000_000L;
      123_456_789L ]

let test_quantile_accuracy () =
  traced @@ fun () ->
  (* known synthetic distribution: a deterministic LCG spanning five
     decades; the bucket-midpoint estimator must stay within 12.5%
     relative error of the exact order statistic *)
  let n = 10_000 in
  let s = ref 42L in
  let vals =
    Array.init n (fun _ ->
        s :=
          Int64.add (Int64.mul !s 6364136223846793005L) 1442695040888963407L;
        Int64.rem (Int64.shift_right_logical !s 33) 1_000_000L)
  in
  Array.iter (fun v -> T.observe "q.hist" v) vals;
  let sorted = Array.copy vals in
  Array.sort Int64.compare sorted;
  let h = Option.get (Trace.histogram "q.hist") in
  List.iter
    (fun q ->
      let exact =
        sorted.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      let est = T.quantile h q in
      let rel =
        Float.abs (Int64.to_float est -. Int64.to_float exact)
        /. Float.max 1.0 (Int64.to_float exact)
      in
      checkb
        (Printf.sprintf "p%g within 12.5%% (exact=%Ld est=%Ld rel=%.4f)"
           (q *. 100.) exact est rel)
        (rel <= 0.125))
    [ 0.5; 0.95; 0.99; 0.999 ];
  (* degenerate cases *)
  let e = { Trace.hcount = 0; hsum = 0L; hbuckets = Array.make Trace.nbuckets 0 } in
  checkb "empty histogram quantile is 0" (T.quantile e 0.99 = 0L)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_json_roundtrip () =
  traced @@ fun () ->
  T.span ~cat:"analysis" ~args:[ ("k", "v\"quoted\"\n") ] "weird \"name\"\ttab"
    (fun () -> ());
  T.instant ~cat:"mark" "i1";
  let s = T.to_chrome_json () in
  (* parse back with the repo's own JSON parser, not string matching *)
  let triples = T.validate_chrome_json s in
  checki "two events survive" 2 (List.length triples);
  checkb "escaped name round-trips"
    (List.exists (fun (n, c, ph) -> n = "weird \"name\"\ttab" && c = "analysis" && ph = "X")
       triples);
  checkb "instant present" (List.exists (fun (n, _, ph) -> n = "i1" && ph = "i") triples);
  let layers = T.layers_of triples in
  (* layers_of counts complete events only *)
  checkb "one analysis span" (layers = [ ("analysis", 1) ])

let test_metrics_roundtrip () =
  traced @@ fun () ->
  T.add "r.alpha" 3;
  T.add "r.beta" 10;
  T.observe "r.hist" 6L;
  let a = T.parse_metrics (T.metrics_to_json ()) in
  checkb "counter value parses" (List.assoc_opt "r.alpha" a = Some 3.0);
  checkb "histogram expands to .sum" (List.assoc_opt "r.hist.sum" a = Some 6.0);
  checkb "histogram expands to .count" (List.assoc_opt "r.hist.count" a = Some 1.0);
  checkb "histogram expands to .p99" (List.assoc_opt "r.hist.p99" a = Some 6.0);
  (* now diff against a second dump with one changed, one new, one gone *)
  T.reset ();
  T.install ();
  T.add "r.alpha" 9;
  T.add "r.gamma" 1;
  let b = T.parse_metrics (T.metrics_to_json ()) in
  let deltas = T.diff_metrics a b in
  let find n = List.find (fun (d : T.delta) -> d.T.dname = n) deltas in
  checkb "changed" ((find "r.alpha").T.dafter = Some 9.0);
  checkb "disappeared" ((find "r.beta").T.dafter = None);
  checkb "appeared" ((find "r.gamma").T.dbefore = None)

let test_hist_json_roundtrip () =
  traced @@ fun () ->
  (* empty histogram: registered (via a 0-observation? not possible) —
     emulate by observing then checking a sparse spread round-trips *)
  T.observe "h.sparse" 0L;
  T.observe "h.sparse" 7L;
  T.observe "h.sparse" 1_000_000L;
  let doc = T.Json.parse (T.metrics_to_json ()) in
  let h = Option.get (T.Json.member "h.sparse" doc) in
  checkb "type histogram"
    (Option.bind (T.Json.member "type" h) T.Json.to_string = Some "histogram");
  checkb "count" (Option.bind (T.Json.member "count" h) T.Json.to_num = Some 3.0);
  checkb "sum"
    (Option.bind (T.Json.member "sum" h) T.Json.to_num = Some 1_000_007.0);
  (* buckets keyed by lower bound; only populated ones serialized *)
  let buckets =
    match T.Json.member "buckets" h with Some (T.Json.Obj kvs) -> kvs | _ -> []
  in
  checki "exactly three sparse buckets" 3 (List.length buckets);
  checkb "unit bucket 0 present" (List.mem_assoc "0" buckets);
  checkb "unit bucket 7 present" (List.mem_assoc "7" buckets);
  List.iter
    (fun (k, v) ->
      let lo = Int64.of_string k in
      let b = Ir.Trace.bucket_of lo in
      checkb ("key is its bucket's lower bound: " ^ k)
        (Ir.Trace.bucket_lower b = lo);
      checkb ("bucket count 1: " ^ k) (T.Json.to_num v = Some 1.0))
    buckets;
  (* percentile members present and inside the value range *)
  (match Option.bind (T.Json.member "p999" h) T.Json.to_num with
  | Some p -> checkb "p999 near max" (p >= 900_000.0 && p <= 1_100_000.0)
  | None -> Alcotest.fail "p999 missing");
  (* a histogram-free dump still parses (no histogram members emitted) *)
  T.reset ();
  T.install ();
  T.add "h.only.counter" 1;
  let doc2 = T.Json.parse (T.metrics_to_json ()) in
  checkb "no stray histogram" (T.Json.member "h.sparse" doc2 = None)

let test_diff_metrics_histograms () =
  (* diff_metrics on histogram-bearing snapshots: count/sum deltas and
     quantile shifts must surface, not be skipped *)
  traced @@ fun () ->
  T.observe "d.lat" 100L;
  T.observe "d.lat" 100L;
  let a = T.parse_metrics (T.metrics_to_json ()) in
  T.reset ();
  T.install ();
  T.observe "d.lat" 100L;
  T.observe "d.lat" 100L;
  T.observe "d.lat" 100_000L;
  let b = T.parse_metrics (T.metrics_to_json ()) in
  let deltas = T.diff_metrics a b in
  let find n = List.find_opt (fun (d : T.delta) -> d.T.dname = n) deltas in
  (match find "d.lat.count" with
  | Some d -> checkb "count delta 2 -> 3" (d.T.dbefore = Some 2.0 && d.T.dafter = Some 3.0)
  | None -> Alcotest.fail "no count delta");
  (match find "d.lat.sum" with
  | Some d -> checkb "sum delta" (d.T.dafter = Some 100_200.0)
  | None -> Alcotest.fail "no sum delta");
  (match find "d.lat.p999" with
  | Some d ->
    checkb "p999 shifted up"
      (match (d.T.dbefore, d.T.dafter) with
      | Some x, Some y -> y > x
      | _ -> false)
  | None -> Alcotest.fail "no p999 shift");
  checkb "p50 stable, not reported" (find "d.lat.p50" = None)

(* ------------------------------------------------------------------ *)
(* Request context and flight recorder                                  *)
(* ------------------------------------------------------------------ *)

let test_request_context () =
  traced @@ fun () ->
  checkb "no ambient rid" (T.current_request () = None);
  T.with_request "req-7" (fun () ->
      checkb "rid ambient" (T.current_request () = Some "req-7");
      T.instant "inner.mark";
      T.span ~cat:"analysis" "inner.span" (fun () ->
          T.with_request "req-8" (fun () -> T.instant "nested.mark")));
  checkb "rid restored" (T.current_request () = None);
  T.instant "outer.mark";
  let rid name =
    Option.bind (find_event name) (fun e ->
        List.assoc_opt "rid" e.Trace.eargs)
  in
  checkb "instant stamped" (rid "inner.mark" = Some "req-7");
  checkb "span stamped at close" (rid "inner.span" = Some "req-7");
  checkb "nested override" (rid "nested.mark" = Some "req-8");
  checkb "outside unstamped" (rid "outer.mark" = None)

let test_flight_recorder () =
  (* always-on: works with the trace sink off *)
  Trace.flight_reset ();
  checkb "sink off" (not (T.installed ()));
  T.flight "f.a" ~args:[ ("k", "v") ];
  T.with_request "req-3" (fun () -> T.flight "f.b");
  let evs = T.flight_events () in
  checki "two waypoints" 2 (List.length evs);
  checkb "chronological" ((List.nth evs 0).Trace.fname = "f.a");
  checkb "rid captured" ((List.nth evs 1).Trace.frid = Some "req-3");
  checkb "args kept" ((List.nth evs 0).Trace.fargs = [ ("k", "v") ]);
  (* ring wraps at the cap, keeping the newest *)
  Trace.flight_reset ();
  for i = 0 to Trace.flight_cap + 9 do
    T.flight (Printf.sprintf "w%d" i)
  done;
  let evs = T.flight_events () in
  checki "capped" Trace.flight_cap (List.length evs);
  checkb "oldest evicted" ((List.hd evs).Trace.fname = "w10");
  checkb "newest kept"
    ((List.nth evs (Trace.flight_cap - 1)).Trace.fname
    = Printf.sprintf "w%d" (Trace.flight_cap + 9));
  (* JSON dump parses and reports the drop count *)
  let doc = T.Json.parse (T.flight_to_json ()) in
  checkb "dropped counted"
    (Option.bind (T.Json.member "dropped" doc) T.Json.to_num = Some 10.0);
  checki "events serialized" Trace.flight_cap
    (List.length
       (Option.get
          (Option.bind (T.Json.member "flightEvents" doc) T.Json.to_list)));
  Trace.flight_reset ();
  checki "reset empties" 0 (List.length (T.flight_events ()))

(* ------------------------------------------------------------------ *)
(* Instrumented layers                                                 *)
(* ------------------------------------------------------------------ *)

let test_manager_hit_miss () =
  traced @@ fun () ->
  let m = compile loopy_src in
  let n = Noelle.create m in
  let f = Ir.Irmod.func m "main" in
  ignore (Noelle.pdg n f);
  ignore (Noelle.pdg n f);
  checkb "two queries" (Int64.equal 2L (T.counter "noelle.pdg.queries"));
  checkb "first query misses" (Int64.equal 1L (T.counter "noelle.pdg.miss"));
  checkb "second query hits" (Int64.equal 1L (T.counter "noelle.pdg.hit"));
  checkb "pdg span recorded with source tag"
    (List.exists
       (fun (e : Trace.event) ->
         e.Trace.ename = "noelle.pdg:main"
         && List.assoc_opt "source" e.Trace.eargs = Some "computed")
       (T.events ()))

let test_pipeline_span_per_pass () =
  traced @@ fun () ->
  let m = compile loopy_src in
  let report = Ntools.Passes.run_standard m in
  List.iter
    (fun (e : Noelle.Pipeline.entry) ->
      match find_event ("pass:" ^ e.Noelle.Pipeline.epass) with
      | None -> Alcotest.failf "no span for pass %s" e.Noelle.Pipeline.epass
      | Some ev ->
        checkb (e.Noelle.Pipeline.epass ^ " has outcome tag")
          (List.mem_assoc "outcome" ev.Trace.eargs);
        checkb (e.Noelle.Pipeline.epass ^ " has verify tag")
          (List.mem_assoc "verify" ev.Trace.eargs);
        checkb (e.Noelle.Pipeline.epass ^ " has differential tag")
          (List.mem_assoc "differential" ev.Trace.eargs))
    report.Noelle.Pipeline.entries;
  checkb "committed counter matches report"
    (Int64.equal
       (Int64.of_int
          (List.length
             (List.filter
                (fun (e : Noelle.Pipeline.entry) ->
                  match e.Noelle.Pipeline.eoutcome with
                  | Noelle.Pipeline.Committed _ -> true
                  | _ -> false)
                report.Noelle.Pipeline.entries)))
       (T.counter "pipeline.committed"))

let test_psim_events () =
  (* pure render round-trip: the structured events must reproduce the old
     string log byte for byte *)
  let log =
    [ Psim.Runtime.Task_died { tid = 2; attempt = 1; cycle = 431L };
      Psim.Runtime.Task_ok { tid = 2; attempt = 2 };
      Psim.Runtime.Section_abandoned { reason = "no luck" };
    ]
  in
  checks "render"
    "task 2 attempt 1: died at cycle 431\ntask 2 attempt 2: ok\ntask -1 attempt 0: section abandoned: no luck"
    (Psim.Runtime.dispositions_to_string log);
  (* a real resilient run under tracing: task swimlane events + counters *)
  traced @@ fun () ->
  let original = compile loopy_src in
  let m = compile loopy_src in
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 () in
  checkb "DOALL parallelized" (List.exists (fun (_, r) -> Result.is_ok r) results);
  let fault = Psim.Runtime.seeded_fault ~seed:1 () in
  let r = Psim.Runtime.run_resilient ~fault ~original m in
  checkb "stayed parallel" (r.Psim.Runtime.rmode = `Parallel);
  checkb "every task eventually ok"
    (List.exists
       (function Psim.Runtime.Task_ok _ -> true | _ -> false)
       r.Psim.Runtime.rtask_log);
  checkb "psim sections counted" (Int64.compare (T.counter "psim.sections") 0L > 0);
  let task_events =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ecat = "psim" && String.length e.Trace.ename > 5
        && String.sub e.Trace.ename 0 5 = "task:")
      (T.events ())
  in
  checkb "per-task swimlane events present" (task_events <> []);
  checkb "tasks ride their own tid rows"
    (List.for_all (fun (e : Trace.event) -> e.Trace.etid > 0) task_events);
  checkb "task events carry cycle counts"
    (List.for_all
       (fun (e : Trace.event) -> List.mem_assoc "cycles" e.Trace.eargs)
       task_events)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "no-op path when sink is off" test_noop_path;
    tc "span nesting and ordering" test_span_nesting;
    tc "span closes on exception" test_span_exception_safe;
    tc "counters, gauges, histograms" test_counter_monotonic;
    tc "HDR bucket geometry" test_hdr_buckets;
    tc "quantile accuracy on synthetic distribution" test_quantile_accuracy;
    tc "Chrome JSON round-trip" test_chrome_json_roundtrip;
    tc "metrics dump parse and diff" test_metrics_roundtrip;
    tc "histogram JSON round-trip (sparse buckets)" test_hist_json_roundtrip;
    tc "diff_metrics reports histogram deltas" test_diff_metrics_histograms;
    tc "request context stamps correlation ids" test_request_context;
    tc "flight recorder ring" test_flight_recorder;
    tc "manager hit/miss attribution" test_manager_hit_miss;
    tc "pipeline span per pass with gate tags" test_pipeline_span_per_pass;
    tc "psim structured events and swimlanes" test_psim_events;
  ]
