(** Noelle.Trust: self-validating embedded analysis metadata —
    fingerprints, stamp verification, quarantine-and-recompute, strict
    mode, metadata fault injection, and the differential sweep proving
    that no stale or corrupt artifact ever changes a tool's output
    versus fresh recomputation. *)

open Helpers
open Ir
module Trust = Noelle.Trust
module Pdg = Noelle.Pdg
module Dep = Noelle.Depgraph

let loop_src =
  {|
int main() {
  int a[8];
  for (int i = 0; i < 8; i++) { a[i] = i; }
  int s = 0;
  for (int i = 0; i < 8; i++) { s = s + a[i]; }
  print(s);
  return 0;
}
|}

let two_fn_src =
  {|
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() { print(work(10)); return 0; }
|}

let edge_set (p : Pdg.t) =
  List.map
    (fun (e : Dep.edge) ->
      ((e.Dep.esrc, e.Dep.edst), (Dep.kind_to_string e.Dep.kind, e.Dep.must)))
    (Dep.edges p.Pdg.fdg)
  |> List.sort compare

let fresh_edge_set (m : Irmod.t) (f : Func.t) =
  edge_set (Pdg.build ~stack:(Andersen.noelle_stack m) m f)

let embed_pdgs m =
  let n = Noelle.create m in
  List.iter (fun f -> Pdg.embed (Noelle.pdg n f)) (Irmod.defined_functions m)

(* flip the fp= field of a stamp to a fingerprint no code ever had *)
let garble_fp meta key =
  match Meta.get meta key with
  | None -> Alcotest.failf "no stamp at %s" key
  | Some line ->
    let fields =
      List.map
        (fun kv ->
          if String.length kv >= 3 && String.sub kv 0 3 = "fp=" then
            "fp=0000000000000000"
          else kv)
        (String.split_on_char ' ' line)
    in
    Meta.set meta key (String.concat " " fields)

let roundtrip m = Parser.parse_module ~name:m.Irmod.mname (Printer.module_str m)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stability () =
  let m = compile loop_src in
  let m2 = roundtrip m in
  checks "func fp survives round trip"
    (Fingerprint.func_fp (Irmod.func m "main"))
    (Fingerprint.func_fp (Irmod.func m2 "main"));
  checks "module fp survives round trip" (Fingerprint.module_fp m)
    (Fingerprint.module_fp m2);
  (* metadata is deliberately outside the module fingerprint: stamping
     one artifact must not invalidate another's stamp *)
  let before = Fingerprint.module_fp m in
  Meta.set m.Irmod.meta "pdg.main.count" "0";
  checks "module fp ignores metadata" before (Fingerprint.module_fp m)

let test_fingerprint_tracks_code () =
  let m = compile loop_src in
  let f = Irmod.func m "main" in
  let before = Fingerprint.func_fp f in
  let first = List.hd (Func.block f (Func.entry f)).Func.insts in
  ignore
    (Builder.insert_before f ~before:first
       (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L))
       Ty.I64);
  checkb "func fp changes with the code" (before <> Fingerprint.func_fp f)

(* ------------------------------------------------------------------ *)
(* Stamp round trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_pdg_stamp_roundtrip () =
  let m = compile loop_src in
  embed_pdgs m;
  let m2 = roundtrip m in
  (match Trust.verify_artifact m2 (Trust.Pdg_artifact "main") with
  | Trust.Trusted s -> checks "producing tool recorded" "noelle-meta-pdg-embed" s.Trust.tool
  | v -> Alcotest.failf "expected trusted, got %s" (Trust.verdict_to_string v));
  match Pdg.of_embedded m2 (Irmod.func m2 "main") with
  | Some p ->
    Alcotest.(check (list (pair (pair int int) (pair string bool))))
      "reloaded edges match"
      (edge_set (Option.get (Pdg.of_embedded m (Irmod.func m "main"))))
      (edge_set p)
  | None -> Alcotest.fail "stamped artifact should reload"

let test_prof_arch_stamp_roundtrip () =
  let m = compile loop_src in
  let prof, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed prof m;
  Noelle.Arch.to_meta (Noelle.Arch.measure ()) m.Irmod.meta;
  embed_pdgs m;
  let m2 = roundtrip m in
  let events = Trust.audit m2 in
  checki "three artifacts" 3 (List.length events);
  List.iter
    (fun (e : Trust.event) ->
      match e.Trust.averdict with
      | Trust.Trusted _ -> ()
      | _ -> Alcotest.failf "after round trip: %s" (Trust.event_to_string e))
    events

let test_linker_preserves_stamps () =
  let lib = compile ~name:"lib" two_fn_src in
  (* keep only the helper in the library module, then embed its PDG *)
  Irmod.remove_func lib "main";
  embed_pdgs lib;
  let app = compile ~name:"app" {|int main() { print(2); return 0; }|} in
  let whole = Linker.link [ lib; app ] in
  match Trust.verify_artifact whole (Trust.Pdg_artifact "work") with
  | Trust.Trusted _ -> ()
  | v ->
    Alcotest.failf "stamp should survive linking, got %s" (Trust.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Staleness, quarantine, recompute                                    *)
(* ------------------------------------------------------------------ *)

let test_partial_staleness () =
  let m = compile two_fn_src in
  embed_pdgs m;
  (* transform only [work]: its artifact must go stale, main's must not *)
  let w = Irmod.func m "work" in
  let first = List.hd (Func.block w (Func.entry w)).Func.insts in
  ignore
    (Builder.insert_before w ~before:first
       (Instr.Bin (Instr.Add, Instr.Cint 5L, Instr.Cint 6L))
       Ty.I64);
  (match Trust.verify_artifact m (Trust.Pdg_artifact "work") with
  | Trust.Stale _ -> ()
  | v -> Alcotest.failf "work should be stale, got %s" (Trust.verdict_to_string v));
  (match Trust.verify_artifact m (Trust.Pdg_artifact "main") with
  | Trust.Trusted _ -> ()
  | v -> Alcotest.failf "main should stay trusted, got %s" (Trust.verdict_to_string v));
  (* reconcile quarantines exactly the stale one *)
  let evs = Trust.reconcile m in
  checki "one artifact quarantined" 1 (List.length evs);
  Alcotest.(check (list string)) "work quarantined" [ "work" ]
    (Trust.quarantined_pdg_functions m);
  checkb "main's artifact still live"
    (Trust.has_artifact m.Irmod.meta ~prefix:"pdg.main.")

let test_invalidate_kills_stale_reload () =
  (* the PR's motivating miscompile vector: transform, invalidate,
     re-request — the stale pre-transform PDG must NOT come back *)
  let m = compile loop_src in
  let n = Noelle.create m in
  let f = Irmod.func m "main" in
  let p0 = Noelle.pdg n f in
  Pdg.embed p0;
  let stale_edges = edge_set p0 in
  (* delete the store into a[i]: the dep structure changes for real *)
  let store =
    Func.fold_insts
      (fun acc (i : Instr.inst) ->
        match i.Instr.op with Instr.Store _ -> Some i | _ -> acc)
      None f
    |> Option.get
  in
  Builder.remove f store.Instr.id;
  Noelle.invalidate n;
  let p1 = Noelle.pdg n f in
  let got = edge_set p1 in
  checkb "stale edge set is gone" (got <> stale_edges);
  checkb "no edge touches the deleted instruction"
    (not
       (List.exists
          (fun ((s, d), _) -> s = store.Instr.id || d = store.Instr.id)
          got));
  Alcotest.(check (list (pair (pair int int) (pair string bool))))
    "recomputed PDG equals fresh analysis" (fresh_edge_set m f) got;
  (* invalidate logged the quarantine *)
  checkb "trust event recorded" (Noelle.trust_events n <> []);
  checkb "artifact quarantined, not live"
    (not (Trust.has_artifact m.Irmod.meta ~prefix:"pdg.main."))

let test_ghost_edges_rejected () =
  let m = compile loop_src in
  embed_pdgs m;
  let f = Irmod.func m "main" in
  (* retarget edge 0 to an instruction id that does not exist *)
  (match Meta.get m.Irmod.meta "pdg.main.0" with
  | Some line -> (
    match String.split_on_char ' ' line with
    | [ s; _; k; must ] ->
      Meta.set m.Irmod.meta "pdg.main.0"
        (Printf.sprintf "%s 999999 %s %s" s k must)
    | _ -> Alcotest.fail "unexpected edge encoding")
  | None -> Alcotest.fail "no embedded edge to tamper with");
  checkb "ghost edge rejects the artifact" (Pdg.of_embedded m f = None)

let test_unstamped_distrusted () =
  let m = compile loop_src in
  let f = Irmod.func m "main" in
  (* a legacy artifact: payload without any stamp *)
  Meta.set m.Irmod.meta "pdg.main.count" "0";
  Meta.set m.Irmod.meta "pdg.main.stats" "0 0";
  let n = Noelle.create m in
  let p = Noelle.pdg n f in
  Alcotest.(check (list (pair (pair int int) (pair string bool))))
    "recomputed, not the empty embedded graph" (fresh_edge_set m f) (edge_set p);
  (match Noelle.trust_events n with
  | [ e ] -> checks "unstamped diagnosed" "meta.unstamped" (Trust.check_id e.Trust.averdict)
  | evs -> Alcotest.failf "expected one trust event, got %d" (List.length evs));
  checki "no fast reload" 0 (Noelle.fast_reloads n)

let test_strict_mode_traps () =
  let m = compile loop_src in
  embed_pdgs m;
  garble_fp m.Irmod.meta "pdg.main.stamp";
  let n = Noelle.create ~trust_mode:Trust.Strict m in
  (match Noelle.pdg n (Irmod.func m "main") with
  | _ -> Alcotest.fail "strict mode should trap on a stale artifact"
  | exception Trust.Tainted _ -> ());
  (* degrade mode on the same tampering recovers by recomputation *)
  let m2 = compile loop_src in
  embed_pdgs m2;
  garble_fp m2.Irmod.meta "pdg.main.stamp";
  let n2 = Noelle.create m2 in
  let f2 = Irmod.func m2 "main" in
  Alcotest.(check (list (pair (pair int int) (pair string bool))))
    "degrade mode recomputes" (fresh_edge_set m2 f2)
    (edge_set (Noelle.pdg n2 f2))

let test_payload_tamper_is_corrupt () =
  let m = compile loop_src in
  embed_pdgs m;
  (match Meta.get m.Irmod.meta "pdg.main.count" with
  | Some c -> Meta.set m.Irmod.meta "pdg.main.count" (c ^ "0")
  | None -> Alcotest.fail "no count key");
  match Trust.verify_artifact m (Trust.Pdg_artifact "main") with
  | Trust.Corrupt _ -> ()
  | v -> Alcotest.failf "expected corrupt, got %s" (Trust.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Metadata fault injection                                            *)
(* ------------------------------------------------------------------ *)

let embed_all_artifacts m =
  let prof, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed prof m;
  embed_pdgs m;
  Noelle.Arch.to_meta (Noelle.Arch.measure ()) m.Irmod.meta

let expected_check_id = function
  | Faultgen.Stale_stamp -> "meta.stale"
  | _ -> "meta.corrupt"

let test_faultgen_metadata_kinds () =
  List.iter
    (fun kind ->
      let m = compile loop_src in
      embed_all_artifacts m;
      match Faultgen.inject_info ~kinds:[ kind ] ~seed:7 m with
      | None ->
        Alcotest.failf "no site for %s on a fully embedded module"
          (Faultgen.kind_to_string kind)
      | Some info ->
        let prefix = Option.get info.Faultgen.imeta in
        let failures = Trust.failures (Trust.audit m) in
        checki
          (Printf.sprintf "%s: exactly one artifact fails"
             (Faultgen.kind_to_string kind))
          1 (List.length failures);
        let e = List.hd failures in
        checks "detected at the planted artifact" prefix e.Trust.aprefix;
        checks "with the expected check id"
          (expected_check_id info.Faultgen.ikind)
          (Trust.check_id e.Trust.averdict))
    Faultgen.metadata_kinds

let test_check_meta_verify () =
  let m = compile loop_src in
  embed_pdgs m;
  garble_fp m.Irmod.meta "pdg.main.stamp";
  let diags = (Noelle.Check.run ~checks:[ "meta.verify" ] m).Noelle.Check.diags in
  match diags with
  | [ d ] ->
    checks "stable id" "meta.stale" d.Noelle.Check.did;
    checkb "stale PDG is an error" (d.Noelle.Check.dsev = Noelle.Check.Error);
    checks "located at the function" "main" d.Noelle.Check.dloc.Noelle.Check.lfunc
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_pipeline_verify_meta_gate () =
  let m =
    compile
      {|
int main() {
  int k = clock() + 3;
  int s = 0;
  for (int i = 0; i < 50; i++) { s = s + k * k + i; }
  print(s);
  return 0;
}
|}
  in
  embed_pdgs m;
  let report = Ntools.Passes.run_standard ~verify_meta:true m in
  checkb "pipeline final module OK" report.Noelle.Pipeline.final_ok;
  checkb "at least one pass committed"
    (Noelle.Pipeline.committed report <> []);
  (* a commit invalidated main's embedded PDG: the gate quarantined it *)
  checkb "the gate quarantined the stale artifact"
    (List.exists
       (fun (e : Noelle.Pipeline.entry) -> e.Noelle.Pipeline.emeta <> [])
       report.Noelle.Pipeline.entries
    || Trust.quarantined_pdg_functions m <> []);
  (* ... and run_standard re-embedded a fresh, trusted one at the end *)
  (match Trust.verify_artifact m (Trust.Pdg_artifact "main") with
  | Trust.Trusted s -> checks "re-embedded by the pipeline" "noelle-pipeline" s.Trust.tool
  | v -> Alcotest.failf "expected a re-embedded trusted PDG, got %s"
           (Trust.verdict_to_string v));
  checkb "final audit clean" (Trust.failures (Trust.audit m) = [])

(* ------------------------------------------------------------------ *)
(* The 50-seed metadata-corruption differential sweep                  *)
(* ------------------------------------------------------------------ *)

let test_metadata_sweep () =
  let fuel = 2_000_000 in
  let detected = ref 0 and skipped_prof = ref 0 in
  for seed = 0 to 49 do
    let name = Printf.sprintf "fuzz%d" seed in
    let m = Minic.Lower.compile ~name (Bsuite.Generator.program seed) in
    (* embed every artifact class (profiles only when the program runs
       to completion under the profiler) *)
    (match Noelle.Profiler.run ~fuel m with
    | prof, _ -> Noelle.Profiler.embed prof m
    | exception Interp.Trap _ -> incr skipped_prof);
    embed_pdgs m;
    Noelle.Arch.to_meta (Noelle.Arch.measure ()) m.Irmod.meta;
    let fns = Irmod.defined_functions m in
    (* pristine corpus: clean audit, fast-path reloads observed *)
    List.iter
      (fun (e : Trust.event) ->
        match e.Trust.averdict with
        | Trust.Trusted _ -> ()
        | _ -> Alcotest.failf "seed %d pristine: %s" seed (Trust.event_to_string e))
      (Trust.audit m);
    let n0 = Noelle.create m in
    List.iter (fun f -> ignore (Noelle.pdg n0 f)) fns;
    checki
      (Printf.sprintf "seed %d: every PDG fast-reloads" seed)
      (List.length fns) (Noelle.fast_reloads n0);
    checkb
      (Printf.sprintf "seed %d: no trust events on pristine corpus" seed)
      (Noelle.trust_events n0 = []);
    (* plant one metadata corruption *)
    let clean = Snapshot.copy_module m in
    match Faultgen.inject_info ~kinds:Faultgen.metadata_kinds ~seed m with
    | None -> Alcotest.failf "seed %d: no metadata fault site" seed
    | Some info ->
      incr detected;
      let prefix = Option.get info.Faultgen.imeta in
      (* detection: the planted artifact fails with a stable check id,
         and no other artifact is implicated *)
      let failures = Trust.failures (Trust.audit m) in
      (match failures with
      | [ e ] ->
        checks
          (Printf.sprintf "seed %d: detected at the planted artifact" seed)
          prefix e.Trust.aprefix;
        checks
          (Printf.sprintf "seed %d: stable check id" seed)
          (expected_check_id info.Faultgen.ikind)
          (Trust.check_id e.Trust.averdict)
      | es ->
        Alcotest.failf "seed %d (%s): expected exactly one failure, got %d" seed
          info.Faultgen.idesc (List.length es));
      (* zero divergence: quarantine-and-recompute over the corrupted
         module must agree with fresh analysis of a clean copy *)
      let n = Noelle.create m in
      List.iter
        (fun (f : Func.t) ->
          Alcotest.(check (list (pair (pair int int) (pair string bool))))
            (Printf.sprintf "seed %d %s: recompute == fresh" seed f.Func.fname)
            (fresh_edge_set clean (Irmod.func clean f.Func.fname))
            (edge_set (Noelle.pdg n f)))
        fns
  done;
  checki "all 50 seeds planted a fault" 50 !detected;
  (* the sweep only proves what it exercised: most seeds must profile *)
  checkb "majority of seeds carried profiles" (!skipped_prof < 25)

(* ------------------------------------------------------------------ *)
(* Torn on-disk artifacts (DESIGN.md §14)                              *)
(*                                                                     *)
(* The serve store persists Trust-stamped artifacts as files; a crash  *)
(* mid-write leaves zero-length or truncated files behind.  The stamp  *)
(* checksum must catch every such shape — a torn artifact may never    *)
(* verify, and must be quarantined, not served.                        *)
(* ------------------------------------------------------------------ *)

module Sstore = Serve.Store

let torn_root name =
  let root =
    Filename.concat (Filename.get_temp_dir_name ()) ("noelle_trust_" ^ name)
  in
  Sstore.remove_tree root;
  root

(** Exhaustive torn-write sweep: every proper prefix of a stamped
    artifact file — from zero-length up — must fail verification and be
    quarantined.  No prefix may ever verify as a Hit. *)
let test_torn_artifact_never_verifies () =
  let root = torn_root "torn" in
  let st = Sstore.open_store root in
  let key = { Sstore.kmod = "m"; kshard = "s"; kfn = "f"; kkind = "pdg" } in
  let payload = "0 1 mem true false\n2 3 ctrl true false" in
  Sstore.write st key ~fp:"abcd" ~afp:"eeff" ~payload;
  let path = Filename.concat root "m/s/f.pdg.art" in
  let full =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let n = String.length full in
  let corrupt = ref 0 in
  for cut = 0 to n - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    (match Sstore.lookup st key ~fp:"abcd" ~afp:"eeff" ~now:0 with
    | Sstore.Hit _ -> Alcotest.failf "torn artifact verified at cut=%d" cut
    | Sstore.Miss_stale _ -> Alcotest.failf "torn artifact stale (not corrupt) at cut=%d" cut
    | Sstore.Miss_absent -> Alcotest.failf "lookup lost the file at cut=%d" cut
    | Sstore.Miss_corrupt _ -> incr corrupt);
    checkb "torn file quarantined" (not (Sys.file_exists path))
  done;
  checki "every prefix (incl. zero-length) caught as corrupt" n !corrupt;
  checki "quarantine bookkeeping" n st.Sstore.qcount;
  (* quarantine-and-recompute: a fresh write fully heals the slot *)
  Sstore.write st key ~fp:"abcd" ~afp:"eeff" ~payload;
  (match Sstore.lookup st key ~fp:"abcd" ~afp:"eeff" ~now:0 with
  | Sstore.Hit p -> checks "recomputed artifact serves again" payload p
  | _ -> Alcotest.fail "recomputed artifact did not verify");
  Sstore.close st

(** The recovery journal tolerates a torn tail: committed intents are
    settled, uncommitted and garbled ones only trigger re-verification. *)
let test_journal_torn_tail () =
  let root = torn_root "journal" in
  let st = Sstore.open_store root in
  Sstore.close st;
  let oc = open_out_bin (Filename.concat root "journal") in
  (* committed write, garbage record, uncommitted write, torn tail
     (no trailing newline, record cut mid-path) *)
  output_string oc "W m/s/f.pdg.art\nC m/s/f.pdg.art\nQ garbage\nW m/s/g.pdg.art\nW m/";
  close_out oc;
  let st = Sstore.open_store root in
  checkb "reopen survives the torn journal"
    (st.Sstore.last_recovery.Sstore.r_pending >= 1);
  checki "nothing live, nothing falsely quarantined" 0
    st.Sstore.last_recovery.Sstore.r_quarantined;
  Sstore.close st

let suite =
  [
    tc "fingerprint stability" test_fingerprint_stability;
    tc "fingerprint tracks code" test_fingerprint_tracks_code;
    tc "pdg stamp round trip" test_pdg_stamp_roundtrip;
    tc "prof/arch stamp round trip" test_prof_arch_stamp_roundtrip;
    tc "linker preserves stamps" test_linker_preserves_stamps;
    tc "partial staleness" test_partial_staleness;
    tc "invalidate kills stale reload" test_invalidate_kills_stale_reload;
    tc "ghost edges rejected" test_ghost_edges_rejected;
    tc "unstamped distrusted" test_unstamped_distrusted;
    tc "strict mode traps" test_strict_mode_traps;
    tc "payload tamper is corrupt" test_payload_tamper_is_corrupt;
    tc "faultgen metadata kinds" test_faultgen_metadata_kinds;
    tc "check meta.verify" test_check_meta_verify;
    tc "pipeline verify-meta gate" test_pipeline_verify_meta_gate;
    tc "metadata-corruption sweep (50 seeds)" test_metadata_sweep;
    tc "torn artifact files never verify" test_torn_artifact_never_verifies;
    tc "recovery journal tolerates torn tail" test_journal_torn_tail;
  ]
