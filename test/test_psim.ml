(** Tests of the parallel runtime and simulator. *)

open Helpers
open Ir

(* hand-build a module that uses the runtime builtins directly *)
let parse = Parser.parse_module

let test_queues () =
  let m =
    parse
      {|
define void @producer(i64 %core, i64 %ncores, ptr %env) {
entry:
  %1 = load.i64 %env
  call.void @q_push(%1, 11)
  call.void @q_push(%1, 22)
  ret
}
define void @consumer(i64 %core, i64 %ncores, ptr %env) {
entry:
  %1 = load.i64 %env
  %2 = call.i64 @q_pop(%1)
  %3 = call.i64 @q_pop(%1)
  %4 = add %2, %3
  %5 = gep %env, 1
  store %4, %5
  ret
}
define i64 @main() {
entry:
  %1 = alloca 2
  %2 = call.i64 @q_new()
  store %2, %1
  call.void @task_submit(@consumer, 0, 2, %1)
  call.void @task_submit(@producer, 1, 2, %1)
  call.void @tasks_run()
  %8 = gep %1, 1
  %9 = load.i64 %8
  call.void @print(%9)
  ret 0
}
declare void @print(i64 %x)
declare i64 @q_new()
declare void @q_push(i64 %q, i64 %v)
declare i64 @q_pop(i64 %q)
declare void @task_submit(ptr %f, i64 %c, i64 %n, ptr %e)
declare void @tasks_run()
|}
  in
  Verify.verify_module m;
  (* consumer submitted FIRST: it must block until the producer runs *)
  let _, out, _, r = Psim.Runtime.run m in
  checks "fifo order through blocking" "33" (String.trim out);
  checki "one parallel section" 1 (Psim.Runtime.stats_sections r)

let test_signals () =
  let m =
    parse
      {|
define void @t(i64 %core, i64 %ncores, ptr %env) {
entry:
  %1 = load.i64 %env
  call.void @sig_wait(%1, %core)
  %3 = gep %env, 1
  %4 = load.i64 %3
  %5 = mul %4, 10
  %6 = add %5, %core
  store %6, %3
  %8 = add %core, 1
  call.void @sig_set(%1, %8)
  ret
}
define i64 @main() {
entry:
  %1 = alloca 2
  %2 = call.i64 @sig_new()
  store %2, %1
  %4 = gep %1, 1
  store 0, %4
  call.void @task_submit(@t, 2, 3, %1)
  call.void @task_submit(@t, 0, 3, %1)
  call.void @task_submit(@t, 1, 3, %1)
  call.void @tasks_run()
  %9 = load.i64 %4
  call.void @print(%9)
  ret 0
}
declare void @print(i64 %x)
declare i64 @sig_new()
declare void @sig_wait(i64 %s, i64 %v)
declare void @sig_set(i64 %s, i64 %v)
declare void @task_submit(ptr %f, i64 %c, i64 %n, ptr %e)
declare void @tasks_run()
|}
  in
  Verify.verify_module m;
  (* signals force execution order 0,1,2 regardless of submission order *)
  let _, out, _, _ = Psim.Runtime.run m in
  checks "signal-ordered" "12" (String.trim out)

let test_deadlock_detected () =
  let m =
    parse
      {|
define void @t(i64 %core, i64 %ncores, ptr %env) {
entry:
  %1 = load.i64 %env
  %2 = call.i64 @q_pop(%1)
  ret
}
define i64 @main() {
entry:
  %1 = alloca 1
  %2 = call.i64 @q_new()
  store %2, %1
  call.void @task_submit(@t, 0, 1, %1)
  call.void @tasks_run()
  ret 0
}
declare i64 @q_new()
declare i64 @q_pop(i64 %q)
declare void @task_submit(ptr %f, i64 %c, i64 %n, ptr %e)
declare void @tasks_run()
|}
  in
  match Psim.Runtime.run m with
  | exception Interp.Trap msg ->
    checkb "deadlock reported"
      (String.length msg >= 8 && String.sub msg 0 8 = "parallel")
  | _ -> Alcotest.fail "expected deadlock trap"

let test_clock_advances_with_latency () =
  (* popping a value stamps the consumer clock past the producer's *)
  let m =
    parse
      {|
define void @p(i64 %core, i64 %ncores, ptr %env) {
entry:
  %1 = load.i64 %env
  call.void @q_push(%1, 1)
  ret
}
define i64 @main() {
entry:
  %1 = alloca 1
  %2 = call.i64 @q_new()
  store %2, %1
  call.void @task_submit(@p, 0, 1, %1)
  call.void @tasks_run()
  ret 0
}
declare i64 @q_new()
declare void @q_push(i64 %q, i64 %v)
declare void @task_submit(ptr %f, i64 %c, i64 %n, ptr %e)
declare void @tasks_run()
|}
  in
  let _, _, cycles, _ = Psim.Runtime.run m in
  (* spawn + join costs dominate: at least 800 cycles *)
  checkb "spawn/join overhead accounted" (cycles >= 800L)

let test_models_sanity () =
  let p = Psim.Models.default_params in
  let seq = 120_000.0 in
  let doall = Psim.Models.doall_time p ~iters:10_000.0 ~work:12.0 in
  checkb "doall speedup near core count"
    (Psim.Models.speedup ~seq_time:seq ~par_time:doall > 7.0);
  let helix_bad = Psim.Models.helix_time p ~iters:10_000.0 ~work:12.0 ~seq:6.0 in
  checkb "helix chained by latency"
    (Psim.Models.speedup ~seq_time:seq ~par_time:helix_bad < 1.0);
  let helix_good = Psim.Models.helix_time p ~iters:10_000.0 ~work:1200.0 ~seq:6.0 in
  checkb "helix wins with heavy parallel work"
    (Psim.Models.speedup ~seq_time:(10_000.0 *. 1200.0) ~par_time:helix_good > 5.0);
  let dswp = Psim.Models.dswp_time p ~iters:10_000.0 ~stages:[ 6.0; 6.0 ] in
  checkb "2-stage dswp caps at ~2x"
    (let s = Psim.Models.speedup ~seq_time:seq ~par_time:dswp in
     s > 1.5 && s < 2.2);
  checkb "doall min iters positive" (Psim.Models.doall_min_iters p ~work:10.0 > 0.0)

let test_vec_masked_lane_waste () =
  let p = { Psim.Models.default_vec_params with Psim.Models.width = 8 } in
  let t d =
    Psim.Models.vec_time p ~iters:10_000.0 ~work:10.0 ~divergence:d
      ~strided_mem_ops:0 ~stride:1
  in
  (* masked-off lanes still occupy lane slots: more divergence, fewer
     effective lanes, strictly more time *)
  checkb "divergence shrinks effective width"
    (t 0.0 < t 0.25 && t 0.25 < t 0.5 && t 0.5 < t 0.875);
  (* a fully divergent body degenerates to one effective lane: no better
     than scalar (and setup/issue overhead makes it worse) *)
  checkb "full divergence degenerates to scalar"
    (t 1.0 >= 10_000.0 *. 10.0);
  (* gather/scatter penalty: strided accesses cost extra per group *)
  let unit =
    Psim.Models.vec_time p ~iters:10_000.0 ~work:10.0 ~divergence:0.0
      ~strided_mem_ops:3 ~stride:1
  and strided =
    Psim.Models.vec_time p ~iters:10_000.0 ~work:10.0 ~divergence:0.0
      ~strided_mem_ops:3 ~stride:4
  in
  checkb "non-unit stride pays gather penalty" (unit < strided)

let test_vec_epilogue_cost () =
  let p = { Psim.Models.default_vec_params with Psim.Models.width = 8 } in
  let t iters =
    Psim.Models.vec_time p ~iters ~work:10.0 ~divergence:0.0
      ~strided_mem_ops:0 ~stride:1
  in
  (* trip mod W leftover iterations run at full scalar cost: going from
     an exact multiple (80) to one extra iteration (81) costs a whole
     scalar body, not 1/8th of a group *)
  checkb "epilogue iterations cost scalar work" (t 81.0 -. t 80.0 >= 10.0);
  (* at trip mod W = 0 there is no epilogue term: 80 iterations cost
     exactly 10 groups + setup *)
  let expected_exact = (10.0 *. ((8.0 *. 10.0 /. 8.0) +. 2.0)) +. 16.0 in
  checkb "no epilogue at trip mod W = 0"
    (Float.abs (t 80.0 -. expected_exact) < 1e-9)

let test_vec_doall_crossover () =
  let dp = { Psim.Models.default_params with Psim.Models.cores = 12 } in
  let vp = { Psim.Models.default_vec_params with Psim.Models.width = 4 } in
  let vec iters =
    Psim.Models.vec_time vp ~iters ~work:20.0 ~divergence:0.0
      ~strided_mem_ops:0 ~stride:1
  and doall iters = Psim.Models.doall_time dp ~iters ~work:20.0 in
  (* small trips: DOALL's spawn/join overhead (400 cycles x 12 cores)
     swamps the parallel win while the vector setup is tiny *)
  checkb "vec wins at small trips" (vec 64.0 < doall 64.0);
  (* large trips: 12 cores beat 4 lanes once spawn cost is amortized *)
  checkb "doall wins at large trips" (doall 100_000.0 < vec 100_000.0);
  (* best_vec_width: wide lanes win long regular loops; the model never
     picks a width above the allowed maximum *)
  let best =
    Psim.Models.best_vec_width Psim.Models.default_vec_params ~max_width:16
      ~iters:(Some 10_000) ~work:20.0 ~divergence:0.0 ~strided_mem_ops:0
      ~stride:1
  in
  checki "wide lanes win regular loops" 16 best;
  let capped =
    Psim.Models.best_vec_width Psim.Models.default_vec_params ~max_width:8
      ~iters:(Some 10_000) ~work:20.0 ~divergence:0.0 ~strided_mem_ops:0
      ~stride:1
  in
  checki "width capped for 64-bit element bodies" 8 capped

let test_nested_sections () =
  (* a parallel section inside a function called from a task *)
  let src =
    {|
float out[1];
int main() {
  float acc = 0.0;
  for (int i = 0; i < 30000; i++) {
    float x = (float)(i % 64);
    acc += floor(x * 0.5 + x);
  }
  out[0] = acc;
  print((int)acc);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let p, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  ignore (Ntools.Doall.run n m ~ncores:4 ());
  let out, _ = run_parallel m in
  checks "4-core run" expected out;
  (* and with 12 cores on a re-transformed module *)
  let m2 = compile src in
  let p2, _ = Noelle.Profiler.run m2 in
  Noelle.Profiler.embed p2 m2;
  let n2 = Noelle.create m2 in
  ignore (Ntools.Doall.run n2 m2 ~ncores:12 ());
  let out12, c12 = run_parallel m2 in
  checks "12-core same answer" expected out12;
  let _, c4 = run_parallel m in
  checkb "more cores, fewer cycles" (c12 <= c4)

let suite =
  [
    tc "queues block and deliver" test_queues;
    tc "signals order execution" test_signals;
    tc "deadlock detected" test_deadlock_detected;
    tc "clock accounting" test_clock_advances_with_latency;
    tc "analytic models" test_models_sanity;
    tc "vec model: masked-lane waste" test_vec_masked_lane_waste;
    tc "vec model: epilogue cost" test_vec_epilogue_cost;
    tc "vec model: crossover vs DOALL" test_vec_doall_crossover;
    tc "core-count scaling" test_nested_sections;
  ]
