(** Tests of the ten custom tools: semantics preservation, expected
    transformations, and the properties the paper's evaluation measures. *)

open Helpers
open Ir

(* ------------------------------------------------------------------ *)
(* LICM                                                                *)
(* ------------------------------------------------------------------ *)

let test_licm_all_kernels () =
  each_kernel (fun k m ->
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      let n = Noelle.create m in
      ignore (Ntools.Licm.run n m);
      verifies ("licm " ^ k.Bsuite.Kernels.kname) m;
      checks (k.Bsuite.Kernels.kname ^ ": LICM preserves output") expected
        (output ~fuel:k.Bsuite.Kernels.fuel m))

let test_licm_hoists_more_than_baseline () =
  (* the loop stores through an argument pointer; hoisting the invariant
     load of @g requires disproving the alias, which only the NOELLE
     stack (Andersen) can do — the baseline AA must give up on arg vs
     global *)
  let src =
    {|
int g[1] = {21};
int fill(int *p, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    int k = g[0];       // invariant load: needs p-vs-@g disambiguation
    p[i] = k;
    s += k;
  }
  return s;
}
int main() {
  int *buf = malloc(50);
  print(fill(buf, 50));
  return 0;
}
|}
  in
  let m1 = compile src in
  let n = Noelle.create m1 in
  let s_noelle = Ntools.Licm.run n m1 in
  let m2 = compile src in
  let s_llvm = Ntools.Licm_llvm.run m2 in
  checkb "NOELLE LICM hoists more"
    (s_noelle.Ntools.Licm.hoisted > s_llvm.Ntools.Licm_llvm.hoisted);
  (* both preserve semantics *)
  checks "same output" (output m1) (output m2)

let test_licm_llvm_all_kernels () =
  each_kernel (fun k m ->
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      ignore (Ntools.Licm_llvm.run m);
      verifies ("licm-llvm " ^ k.Bsuite.Kernels.kname) m;
      checks (k.Bsuite.Kernels.kname ^ ": baseline LICM preserves output") expected
        (output ~fuel:k.Bsuite.Kernels.fuel m))

(* ------------------------------------------------------------------ *)
(* Dead function elimination                                           *)
(* ------------------------------------------------------------------ *)

let test_deadfunc () =
  let k = Option.get (Bsuite.Kernels.find "deadcalls") in
  let m = Bsuite.Kernels.compile k in
  let expected = output m in
  let n = Noelle.create m in
  let s = Ntools.Deadfunc.run n m () in
  verifies "deadfunc" m;
  checks "output preserved" expected (output m);
  checkb "removed the dead helpers"
    (List.mem "helper_dead1" s.Ntools.Deadfunc.removed
    && List.mem "helper_dead3" s.Ntools.Deadfunc.removed
    && List.mem "fhelper_dead" s.Ntools.Deadfunc.removed);
  checkb "kept the used ones"
    (not (List.mem "helper_used" s.Ntools.Deadfunc.removed));
  checkb "kept the address-taken indirect target"
    (not (List.mem "via_ptr" s.Ntools.Deadfunc.removed));
  checkb "removed unreferenced indirect candidate"
    (List.mem "dead_via_ptr" s.Ntools.Deadfunc.removed);
  checkb "binary size shrank (4.5)" (Ntools.Deadfunc.reduction s > 0.0)

(* ------------------------------------------------------------------ *)
(* Parallelizers: semantics on the whole corpus                        *)
(* ------------------------------------------------------------------ *)

let parallel_preserves name apply =
  each_kernel (fun k m ->
      (* PRVG-dependent outputs are schedule-stable here because tasks run
         deterministically, but skip the rand-driven kernel for HELIX/DSWP
         anyway: rand order is what those loops must NOT reorder *)
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      let _results = apply n m in
      verifies (name ^ " " ^ k.Bsuite.Kernels.kname) m;
      let got, _ = run_parallel ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
      checks
        (Printf.sprintf "%s: %s preserves output" k.Bsuite.Kernels.kname name)
        expected got)

let test_doall_corpus () =
  parallel_preserves "DOALL" (fun n m -> ignore (Ntools.Doall.run n m ~ncores:12 ()))

let test_helix_corpus () =
  parallel_preserves "HELIX" (fun n m -> ignore (Ntools.Helix.run n m ~ncores:12 ()))

let test_dswp_corpus () =
  parallel_preserves "DSWP" (fun n m -> ignore (Ntools.Dswp.run n m ()))

let test_doall_speedup () =
  let k = Option.get (Bsuite.Kernels.find "blackscholes") in
  let m = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel:k.Bsuite.Kernels.fuel m in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:12 () in
  checkb "parallelized at least one loop"
    (List.exists (fun (_, r) -> Result.is_ok r) results);
  let _, par = run_parallel ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checkb
    (Printf.sprintf "blackscholes DOALL speedup > 5 (got %.2f)"
       (Int64.to_float seq /. Int64.to_float par))
    (Int64.to_float seq /. Int64.to_float par > 5.0)

let test_doall_rejects_sequential () =
  let k = Option.get (Bsuite.Kernels.find "sha") in
  let m = Bsuite.Kernels.compile k in
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:12 () in
  (* the hash recurrence loop must not be DOALL'd *)
  checkb "sha recurrence rejected"
    (List.exists
       (fun (id, r) ->
         Result.is_error r && String.length id > 0)
       results)

let test_helix_speedup_on_recurrence () =
  let k = Option.get (Bsuite.Kernels.find "swaptions") in
  let m = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel:k.Bsuite.Kernels.fuel m in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  (* DOALL cannot touch it *)
  let m_doall = Bsuite.Kernels.compile k in
  let p2, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m_doall in
  Noelle.Profiler.embed p2 m_doall;
  let nd = Noelle.create m_doall in
  checkb "DOALL rejects the Monte-Carlo loop"
    (not
       (List.exists (fun (_, r) -> Result.is_ok r) (Ntools.Doall.run nd m_doall ())));
  (* HELIX can *)
  let n = Noelle.create m in
  let results = Ntools.Helix.run n m ~ncores:12 () in
  let ok =
    List.filter_map (fun (_, r) -> Result.to_option r) results
  in
  checkb "HELIX parallelizes it" (ok <> []);
  checkb "with a sequential segment"
    (List.exists (fun (s : Ntools.Helix.stats) -> s.Ntools.Helix.nsegments >= 1) ok);
  let _, par = run_parallel ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checkb
    (Printf.sprintf "HELIX speedup > 1.5 (got %.2f)"
       (Int64.to_float seq /. Int64.to_float par))
    (Int64.to_float seq /. Int64.to_float par > 1.5)

let test_dswp_pipeline () =
  let k = Option.get (Bsuite.Kernels.find "ferret") in
  let m = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel:k.Bsuite.Kernels.fuel m in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let results = Ntools.Dswp.run n m () in
  let ok = List.filter_map (fun (_, r) -> Result.to_option r) results in
  checkb "DSWP builds a pipeline" (ok <> []);
  checkb "with queues"
    (List.exists (fun (s : Ntools.Dswp.stats) -> s.Ntools.Dswp.nqueues >= 1) ok);
  let _, par = run_parallel ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checkb "not slower than 0.9x" (Int64.to_float seq /. Int64.to_float par > 0.9)

(* ------------------------------------------------------------------ *)
(* Perspective                                                          *)
(* ------------------------------------------------------------------ *)

let test_perspective () =
  let k = Option.get (Bsuite.Kernels.find "histogram") in
  let m = Bsuite.Kernels.compile k in
  let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  Ntools.Perspective.profile_conflicts ~fuel:k.Bsuite.Kernels.fuel m;
  (* DOALL alone must reject the histogram loop (apparent conflicts) *)
  let m2 = Bsuite.Kernels.compile k in
  let p2, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m2 in
  Noelle.Profiler.embed p2 m2;
  let n2 = Noelle.create m2 in
  let doall_oks =
    List.filter (fun (_, r) -> Result.is_ok r) (Ntools.Doall.run n2 m2 ())
  in
  (* the init and sum loops may be parallelized, but the update loop cannot *)
  checkb "DOALL cannot take the histogram update loop"
    (List.length doall_oks < 3);
  let n = Noelle.create m in
  let results = Ntools.Perspective.run n m ~ncores:12 () in
  let ok = List.filter_map (fun (_, r) -> Result.to_option r) results in
  checkb "Perspective speculates it" (ok <> []);
  checkb "speculation was needed"
    (List.exists (fun (s : Ntools.Perspective.stats) -> s.Ntools.Perspective.speculated_edges > 0) ok);
  verifies "perspective" m;
  let got, _ = run_parallel ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checks "outputs equal (speculation validated)" expected got

let test_memprofile_detects_conflicts () =
  (* a loop with a genuine cross-iteration dependence must be flagged *)
  let m =
    compile
      {|
int a[100];
int main() {
  a[0] = 1;
  for (int i = 1; i < 100; i++) { a[i] = a[i-1] + 1; }
  print(a[99]);
  return 0;
}
|}
  in
  Ntools.Perspective.profile_conflicts m;
  let n = Noelle.create m in
  let lp =
    List.find
      (fun lp ->
        Noelle.Profiler.available m |> ignore;
        (Noelle.Loop.structure lp).Noelle.Loopstructure.depth = 1)
      (Noelle.loops n (Irmod.func m "main"))
  in
  checkb "recurrence loop flagged as conflicting"
    (not (Ntools.Perspective.loop_is_clean m (Noelle.Loop.structure lp)))

(* ------------------------------------------------------------------ *)
(* Baseline auto-parallelizer                                          *)
(* ------------------------------------------------------------------ *)

let test_autopar_baseline_flat () =
  (* the gcc/icc stand-in finds (nearly) nothing on the corpus: the
     Figure 5 flat bars *)
  let total = ref 0 and ok = ref 0 in
  each_kernel (fun _k m ->
      let vs = Ntools.Autopar_baseline.run m in
      total := !total + List.length vs;
      ok := !ok + Ntools.Autopar_baseline.parallelized vs);
  checkb
    (Printf.sprintf "baseline parallelizes almost nothing (%d/%d)" !ok !total)
    (!ok * 20 < !total)

let test_autopar_accepts_canonical_dowhile () =
  (* a textbook do-while loop with provably private data is accepted, so
     the baseline is not a strawman *)
  let m =
    compile
      {|
int a[100];
int b[100];
int main() {
  int i = 0;
  do {
    a[i] = b[i] + 1;
    i++;
  } while (i < 100);
  print(a[5]);
  return 0;
}
|}
  in
  let vs = Ntools.Autopar_baseline.run m in
  checkb "canonical do-while accepted" (Ntools.Autopar_baseline.parallelized vs >= 1)

(* ------------------------------------------------------------------ *)
(* CARAT                                                               *)
(* ------------------------------------------------------------------ *)

let test_carat_preserves_and_guards () =
  let k = Option.get (Bsuite.Kernels.find "dijkstra") in
  let m = Bsuite.Kernels.compile k in
  let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
  let n = Noelle.create m in
  let s = Ntools.Carat.run n m in
  verifies "carat" m;
  checkb "some accesses guarded"
    (s.Ntools.Carat.guards_inserted + s.Ntools.Carat.range_guards > 0);
  checkb "some accesses proven safe" (s.Ntools.Carat.proven_safe > 0);
  let _, out, _, rt = Ntools.Toolrt.run ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checks "guarded program output" expected (String.trim out);
  checkb "guards executed dynamically" (rt.Ntools.Toolrt.guards_executed > 0L);
  checkb "no faults on a correct program" (Int64.equal rt.Ntools.Toolrt.guard_faults 0L)

let test_carat_catches_oob () =
  let m =
    compile
      {|
int main() {
  int *p = malloc(8);
  for (int i = 0; i < 8; i++) p[i] = i;
  free(p);
  print(p[3]);    // use after free
  return 0;
}
|}
  in
  let n = Noelle.create m in
  ignore (Ntools.Carat.run n m);
  match Ntools.Toolrt.run m with
  | exception Interp.Trap msg ->
    checkb "CARAT guard caught the bad access"
      (String.length msg >= 5 && String.sub msg 0 5 = "CARAT")
  | _ -> Alcotest.fail "expected a CARAT guard fault"

let test_carat_merges_range_guards () =
  let m =
    compile
      {|
int main() {
  int *buf = malloc(1000);
  int s = 0;
  for (int i = 0; i < 1000; i++) {
    buf[i] = i;
  }
  for (int i = 0; i < 1000; i++) {
    s += buf[i];
  }
  print(s);
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let s = Ntools.Carat.run n m in
  checkb "loop guards merged into range guards" (s.Ntools.Carat.range_guards >= 2);
  let _, out, _, rt = Ntools.Toolrt.run m in
  checks "output" "499500" (String.trim out);
  (* merged guards: dynamic count should be tiny compared to 2000 accesses *)
  checkb "few dynamic guards" (rt.Ntools.Toolrt.guards_executed < 100L)

(* ------------------------------------------------------------------ *)
(* COOS                                                                *)
(* ------------------------------------------------------------------ *)

let test_coos_bounds_gap () =
  let k = Option.get (Bsuite.Kernels.find "susan") in
  let m = Bsuite.Kernels.compile k in
  let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
  let n = Noelle.create m in
  let s = Ntools.Coos.run n m ~budget:400 () in
  verifies "coos" m;
  checkb "callbacks inserted" (s.Ntools.Coos.callbacks_inserted > 0);
  let _, out, _, rt = Ntools.Toolrt.run ~fuel:(3 * k.Bsuite.Kernels.fuel) m in
  checks "COOS preserves output" expected (String.trim out);
  checkb "callbacks fired" (rt.Ntools.Toolrt.callbacks > 0L);
  (* the max gap must be bounded: generously, budget * 4 accounts for
     block granularity and call boundaries *)
  checkb
    (Printf.sprintf "max gap %d bounded" rt.Ntools.Toolrt.max_gap)
    (rt.Ntools.Toolrt.max_gap <= 1600)

let test_coos_uninstrumented_has_big_gaps () =
  let k = Option.get (Bsuite.Kernels.find "susan") in
  let m = Bsuite.Kernels.compile k in
  let _, _, _, rt = Ntools.Toolrt.run ~fuel:k.Bsuite.Kernels.fuel m in
  (* without instrumentation no callback ever fires *)
  checkb "no callbacks" (Int64.equal rt.Ntools.Toolrt.callbacks 0L)

(* ------------------------------------------------------------------ *)
(* Time-Squeezer                                                       *)
(* ------------------------------------------------------------------ *)

let test_time_squeezer () =
  each_kernel (fun k m ->
      if k.Bsuite.Kernels.kname = "adpcm" || k.Bsuite.Kernels.kname = "dijkstra" then begin
        let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
        let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
        Noelle.Profiler.embed p m;
        let n = Noelle.create m in
        let s = Ntools.Timesqueezer.run n m in
        verifies ("time " ^ k.Bsuite.Kernels.kname) m;
        checks (k.Bsuite.Kernels.kname ^ ": TIME preserves output") expected
          (output ~fuel:k.Bsuite.Kernels.fuel m);
        checkb "estimated cycles do not regress"
          (s.Ntools.Timesqueezer.est_cycles_after
           <= s.Ntools.Timesqueezer.est_cycles_before +. 1e-6)
      end)

let test_time_swaps_cmps () =
  let m =
    compile
      {|
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (5 < i) s++;       // constant on the left: swap candidate
  }
  print(s);
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let s = Ntools.Timesqueezer.run n m in
  checkb "swapped the immediate-left compare" (s.Ntools.Timesqueezer.cmps_swapped >= 1);
  checks "semantics kept" "4" (output m)

(* ------------------------------------------------------------------ *)
(* PRVJeeves                                                           *)
(* ------------------------------------------------------------------ *)

let test_prvjeeves () =
  let k = Option.get (Bsuite.Kernels.find "montecarlo") in
  (* reference run with the costed runtime *)
  let m_ref = Bsuite.Kernels.compile k in
  let _, _, ref_cycles, _ = Ntools.Toolrt.run ~fuel:k.Bsuite.Kernels.fuel m_ref in
  let m = Bsuite.Kernels.compile k in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let s = Ntools.Prvjeeves.run n m () in
  verifies "prvj" m;
  checkb "found the rand sites" (List.length s.Ntools.Prvjeeves.sites = 2);
  checkb "replaced hot masked sites" (s.Ntools.Prvjeeves.changed >= 1);
  let _, _, new_cycles, _ = Ntools.Toolrt.run ~fuel:k.Bsuite.Kernels.fuel m in
  checkb
    (Printf.sprintf "cheaper generator saves cycles (%Ld -> %Ld)" ref_cycles new_cycles)
    (new_cycles < ref_cycles)

let test_prvj_keeps_cold_sites () =
  let m =
    compile
      {|
int main() {
  srand(1);
  int cold = rand() % 16;    // executed once: PRO prunes it
  print(cold);
  return 0;
}
|}
  in
  let p, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let s = Ntools.Prvjeeves.run n m () in
  checki "no change to cold sites" 0 s.Ntools.Prvjeeves.changed

let suite =
  [
    tc "LICM corpus" test_licm_all_kernels;
    tc "LICM beats baseline (fig 4)" test_licm_hoists_more_than_baseline;
    tc "LICM-llvm corpus" test_licm_llvm_all_kernels;
    tc "DEAD (4.5)" test_deadfunc;
    tc "DOALL corpus semantics" test_doall_corpus;
    tc "HELIX corpus semantics" test_helix_corpus;
    tc "DSWP corpus semantics" test_dswp_corpus;
    tc "DOALL speedup" test_doall_speedup;
    tc "DOALL rejects recurrences" test_doall_rejects_sequential;
    tc "HELIX on Monte-Carlo" test_helix_speedup_on_recurrence;
    tc "DSWP pipeline" test_dswp_pipeline;
    tc "Perspective speculates" test_perspective;
    tc "memory profile detects conflicts" test_memprofile_detects_conflicts;
    tc "autopar baseline flat (fig 5)" test_autopar_baseline_flat;
    tc "autopar accepts canonical" test_autopar_accepts_canonical_dowhile;
    tc "CARAT guards + preserves" test_carat_preserves_and_guards;
    tc "CARAT catches use-after-free" test_carat_catches_oob;
    tc "CARAT merges range guards" test_carat_merges_range_guards;
    tc "COOS bounds gaps" test_coos_bounds_gap;
    tc "COOS baseline has no callbacks" test_coos_uninstrumented_has_big_gaps;
    tc "TIME corpus" test_time_squeezer;
    tc "TIME swaps compares" test_time_swaps_cmps;
    tc "PRVJ saves cycles" test_prvjeeves;
    tc "PRVJ keeps cold sites" test_prvj_keeps_cold_sites;
  ]

(* ------------------------------------------------------------------ *)
(* Memory-object cloning (the paper's §4.4 future-work feature)        *)
(* ------------------------------------------------------------------ *)

let test_perspective_privatization () =
  let k = Option.get (Bsuite.Kernels.find "blocksort") in
  let m = Bsuite.Kernels.compile k in
  let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
  let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
  Noelle.Profiler.embed p m;
  (* plain DOALL must reject the scratch-buffer loop *)
  (let m0 = Bsuite.Kernels.compile k in
   let p0, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m0 in
   Noelle.Profiler.embed p0 m0;
   let n0 = Noelle.create m0 in
   let oks =
     List.filter (fun (_, r) -> Result.is_ok r) (Ntools.Doall.run n0 m0 ~ncores:12 ())
   in
   checkb "DOALL cannot take the scratch loop" (List.length oks <= 1));
  (* Perspective clones the scratch object *)
  Ntools.Perspective.profile_conflicts ~fuel:k.Bsuite.Kernels.fuel m;
  let ls_of lp = Noelle.Loop.structure lp in
  let n = Noelle.create m in
  let f = Irmod.func m "main" in
  checkb "profile marks tmp privatizable somewhere"
    (List.exists
       (fun lp -> List.mem "tmp" (Ntools.Perspective.loop_privatizable m (ls_of lp)))
       (Noelle.loops n f));
  let results = Ntools.Perspective.run n m ~ncores:12 () in
  let ok = List.filter_map (fun (_, r) -> Result.to_option r) results in
  checkb "Perspective privatized the scratch buffer"
    (List.exists
       (fun (s : Ntools.Perspective.stats) ->
         List.mem "tmp" s.Ntools.Perspective.cloned_objects)
       ok);
  verifies "perspective privatization" m;
  let got, par = run_parallel ~fuel:(4 * k.Bsuite.Kernels.fuel) m in
  checks "outputs identical with cloned objects" expected got;
  let m_ref = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel:k.Bsuite.Kernels.fuel m_ref in
  checkb
    (Printf.sprintf "cloning yields real speedup (%.2f)"
       (Int64.to_float seq /. Int64.to_float par))
    (Int64.to_float seq /. Int64.to_float par > 3.0)

let test_privatization_rejects_live_scratch () =
  (* if the scratch contents are read after the loop, cloning is illegal
     and the profile must say so *)
  let src =
    {|
int data[1024];
int tmp[16];
int out[64];
int main() {
  for (int i = 0; i < 1024; i++) data[i] = (i * 7) & 255;
  for (int b = 0; b < 64; b++) {
    for (int j = 0; j < 16; j++) tmp[j] = data[b*16 + j] * 2;
    out[b] = tmp[0];
  }
  int post = tmp[3];    // scratch content observed after the loop
  int s = post;
  for (int b = 0; b < 64; b++) s += out[b];
  print(s);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let p, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed p m;
  Ntools.Perspective.profile_conflicts m;
  let n = Noelle.create m in
  let f = Irmod.func m "main" in
  checkb "post-loop read poisons privatizability"
    (List.for_all
       (fun lp ->
         not
           (List.mem "tmp"
              (Ntools.Perspective.loop_privatizable m (Noelle.Loop.structure lp))))
       (Noelle.loops n f));
  ignore (Ntools.Perspective.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ());
  verifies "live-scratch program" m;
  let got, _ = run_parallel m in
  checks "still correct" expected got

(* ------------------------------------------------------------------ *)
(* VEC — predicated loop vectorization (DESIGN.md §16)                 *)
(* ------------------------------------------------------------------ *)

let vec_ok results = List.filter_map (fun (_, r) -> Result.to_option r) results

let test_vec_corpus () =
  each_kernel (fun k m ->
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      let n = Noelle.create m in
      ignore (Ntools.Vec.run n m ~only_best:false ());
      verifies ("vec " ^ k.Bsuite.Kernels.kname) m;
      checks (k.Bsuite.Kernels.kname ^ ": VEC preserves output") expected
        (output ~fuel:(4 * k.Bsuite.Kernels.fuel) m))

let test_vec_straightline () =
  (* trip 10 is not a multiple of any lane width: the widened loop takes
     the first 10/W groups and the scalar epilogue the remainder *)
  let src =
    {|
int a[10];
int main() {
  float s = 0.0;
  for (int i = 0; i < 10; i++) {
    a[i] = 3 * i + 1;
    s = s + 0.5 * i;
  }
  for (int i = 0; i < 10; i++) print(a[i]);
  print_float(s);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let n = Noelle.create m in
  let ok =
    vec_ok (Ntools.Vec.run n m ~only_best:false ~min_work:0.0 ())
  in
  checkb "at least one loop vectorized" (ok <> []);
  let s = List.hd ok in
  checkb "lane-group factor is a real width" (s.Ntools.Vec.width >= 2);
  checkb "straight-line body needs no predication"
    (not s.Ntools.Vec.if_converted);
  verifies "vec straightline" m;
  checks "output preserved across epilogue split" expected (output m)

let test_vec_if_converts_divergent () =
  (* dijkstra-style conditional minimum update: the body diverges, so
     vectorization must go through if-conversion (masked store) *)
  let src =
    {|
int d[64];
int main() {
  for (int i = 0; i < 64; i++) d[i] = 1000 - 7 * i;
  for (int j = 0; j < 64; j++) {
    int nd = 3 * j + 10;
    if (nd < d[j]) { d[j] = nd; }
  }
  int s = 0;
  for (int j = 0; j < 64; j++) s += d[j];
  print(s);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let n = Noelle.create m in
  let ok =
    vec_ok (Ntools.Vec.run n m ~only_best:false ~min_work:0.0 ())
  in
  checkb "divergent loop vectorized"
    (List.exists (fun (s : Ntools.Vec.stats) -> s.Ntools.Vec.if_converted) ok);
  checkb "masked the conditional store"
    (List.exists (fun (s : Ntools.Vec.stats) -> s.Ntools.Vec.masked > 0) ok);
  verifies "vec if-conversion" m;
  checks "output preserved under predication" expected (output m)

let test_vec_rejects_divergent_call () =
  (* a print on one arm is an observable side effect that predication
     cannot mask: the loop must be rejected, not silently reordered *)
  let src =
    {|
int main() {
  for (int i = 0; i < 100; i++) {
    if (i % 3 == 0) { print(i); }
  }
  return 0;
}
|}
  in
  let m = compile src in
  let n = Noelle.create m in
  let results = Ntools.Vec.run n m ~only_best:false ~min_work:0.0 () in
  checkb "divergent print rejected" (vec_ok results = []);
  checkb "rejection is reported"
    (List.exists (fun (_, r) -> Result.is_error r) results)

let test_vec_rejects_sequential () =
  (* loop-carried recurrence: lanes are not independent *)
  let src =
    {|
int main() {
  int x = 1;
  for (int i = 0; i < 50; i++) { x = (x * 3 + i) % 1000; }
  print(x);
  return 0;
}
|}
  in
  let m = compile src in
  let n = Noelle.create m in
  let results = Ntools.Vec.run n m ~only_best:false ~min_work:0.0 () in
  checkb "recurrence not vectorized" (vec_ok results = [])

let test_vec_trace_exact () =
  (* lane-serial groups + address-masked predication keep the observable
     event stream exact — not merely equivalent under a reorder license *)
  let k = Option.get (Bsuite.Kernels.find "dijkstra") in
  let m_ref = Bsuite.Kernels.compile k in
  let _, _, reference = Obs.run ~fuel:k.Bsuite.Kernels.fuel m_ref in
  let m = Bsuite.Kernels.compile k in
  let n = Noelle.create m in
  ignore (Ntools.Vec.run n m ~only_best:false ~min_work:0.0 ());
  let _, _, candidate = Obs.run ~fuel:(4 * k.Bsuite.Kernels.fuel) m in
  match Obs.check ~license:Obs.Exact ~reference ~candidate with
  | Ok () -> ()
  | Error (msg, _) -> Alcotest.failf "vec trace not exact: %s" msg

let suite_extra =
  [
    tc "PERS memory-object cloning" test_perspective_privatization;
    tc "PERS rejects live scratch" test_privatization_rejects_live_scratch;
    tc "VEC corpus semantics" test_vec_corpus;
    tc "VEC widened loop + epilogue" test_vec_straightline;
    tc "VEC if-converts divergence" test_vec_if_converts_divergent;
    tc "VEC rejects divergent print" test_vec_rejects_divergent_call;
    tc "VEC rejects recurrences" test_vec_rejects_sequential;
    tc "VEC trace-exact" test_vec_trace_exact;
  ]
