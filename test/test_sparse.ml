(** Differential tests for the sparse analysis engine (DESIGN.md §11).

    The worklist Andersen solver, the bucketed PDG builder and the
    fingerprint-keyed invalidation are performance features: each must be
    observationally identical to the slow path it replaces.  These tests
    enforce that over the kernel corpus and the 50-seed fuzz corpus:
    bit-identical points-to sets vs {!Ir.Andersen.solve_naive}, identical
    PDG edge sets vs the unbucketed builder, and identical post-invalidate
    artifacts vs a from-scratch manager. *)

open Helpers

let seeds n = List.init n (fun i -> i + 1)

let fuzz_module seed =
  Minic.Lower.compile
    ~name:(Printf.sprintf "fuzz%d" seed)
    (Bsuite.Generator.program seed)

(** Kernel corpus plus the 50-seed fuzz corpus, freshly compiled. *)
let corpus () =
  List.map
    (fun (k : Bsuite.Kernels.kernel) -> (k.Bsuite.Kernels.kname, Bsuite.Kernels.compile k))
    Bsuite.Kernels.all
  @ List.map (fun s -> (Printf.sprintf "seed%d" s, fuzz_module s)) (seeds 50)

(* ------------------------------------------------------------------ *)
(* Bitset units                                                         *)
(* ------------------------------------------------------------------ *)

let test_bitset () =
  let s = Ir.Bitset.create () in
  checkb "fresh set is empty" (Ir.Bitset.is_empty s);
  checkb "add 3 is new" (Ir.Bitset.add s 3);
  checkb "add 3 again is not" (not (Ir.Bitset.add s 3));
  (* force growth across several words *)
  checkb "add 200 is new" (Ir.Bitset.add s 200);
  checkb "mem 200" (Ir.Bitset.mem s 200);
  checkb "not mem 199" (not (Ir.Bitset.mem s 199));
  checki "cardinal" 2 (Ir.Bitset.cardinal s);
  checkb "elements sorted" (Ir.Bitset.elements s = [ 3; 200 ]);
  let t = Ir.Bitset.create () in
  ignore (Ir.Bitset.add t 3);
  ignore (Ir.Bitset.add t 7);
  let delta = Ir.Bitset.create () in
  let added = Ir.Bitset.union_into ~track:delta ~into:t s in
  checki "union adds only the fresh bit" 1 added;
  checkb "track mirrors exactly the fresh bits" (Ir.Bitset.elements delta = [ 200 ]);
  checkb "7 not disturbed" (Ir.Bitset.mem t 7);
  (* equality must ignore trailing zero words *)
  let a = Ir.Bitset.create () and b = Ir.Bitset.create () in
  ignore (Ir.Bitset.add a 1);
  ignore (Ir.Bitset.add b 1);
  ignore (Ir.Bitset.add b 500);
  checkb "unequal" (not (Ir.Bitset.equal a b));
  let c = Ir.Bitset.copy b in
  checkb "copy equal" (Ir.Bitset.equal b c);
  ignore (Ir.Bitset.add a 500);
  checkb "equal after catching up" (Ir.Bitset.equal a b);
  checkb "disjointness" (Ir.Bitset.is_empty_inter (Ir.Bitset.inter a (Ir.Bitset.create ())) a)

(* ------------------------------------------------------------------ *)
(* Worklist Andersen vs the naive fixpoint                              *)
(* ------------------------------------------------------------------ *)

let test_worklist_matches_naive () =
  List.iter
    (fun (name, m) ->
      let slow = Ir.Andersen.solve_naive m in
      let fast = Ir.Andersen.analyze m in
      checkb (name ^ ": neither solver degraded")
        ((not slow.Ir.Andersen.degraded) && not fast.Ir.Andersen.degraded);
      Alcotest.(check (list string))
        (name ^ ": points-to sets identical")
        (Ir.Andersen.dump_pts slow) (Ir.Andersen.dump_pts fast);
      Alcotest.(check (list string))
        (name ^ ": mod/ref summaries identical")
        (Ir.Andersen.dump_touched slow) (Ir.Andersen.dump_touched fast);
      checks (name ^ ": solution fingerprints identical")
        (Ir.Andersen.solution_fp slow) (Ir.Andersen.solution_fp fast))
    (corpus ())

let test_budget_degrades () =
  let m = Bsuite.Kernels.compile (Option.get (Bsuite.Kernels.find "dijkstra")) in
  let tight = Ir.Andersen.analyze ~budget:1 m in
  checkb "budget 1 degrades to the conservative solution" tight.Ir.Andersen.degraded;
  let free = Ir.Andersen.analyze m in
  checkb "no budget solves exactly" (not free.Ir.Andersen.degraded)

(** A pointer copy cycle (loop phi <-> gep) must be collapsed by lazy
    cycle detection rather than propagated around forever. *)
let test_cycle_collapse () =
  let open Ir.Instr in
  let m = Ir.Irmod.create ~name:"cyc" () in
  Ir.Irmod.add_global m { Ir.Irmod.gname = "g"; size = 8; init = None };
  let f = Ir.Func.create ~name:"main" ~params:[] ~ret:Ir.Ty.I64 in
  let entry = Ir.Builder.add_block f ~label:"entry" in
  let loop = Ir.Builder.add_block f ~label:"loop" in
  let exit_ = Ir.Builder.add_block f ~label:"exit" in
  ignore (Ir.Builder.set_term f entry.Ir.Func.bid (Br loop.Ir.Func.bid));
  let p = Ir.Builder.add f loop.Ir.Func.bid (Phi [ (entry.Ir.Func.bid, Glob "g") ]) Ir.Ty.Ptr in
  let q = Ir.Builder.add f loop.Ir.Func.bid (Gep (Reg p.id, Cint 1L)) Ir.Ty.Ptr in
  p.op <- Phi [ (entry.Ir.Func.bid, Glob "g"); (loop.Ir.Func.bid, Reg q.id) ];
  let v = Ir.Builder.add f loop.Ir.Func.bid (Load (Reg q.id)) Ir.Ty.I64 in
  let c = Ir.Builder.add f loop.Ir.Func.bid (Icmp (Slt, Reg v.id, Cint 10L)) Ir.Ty.I64 in
  ignore
    (Ir.Builder.set_term f loop.Ir.Func.bid (Cbr (Reg c.id, loop.Ir.Func.bid, exit_.Ir.Func.bid)));
  ignore (Ir.Builder.set_term f exit_.Ir.Func.bid (Ret (Some (Reg v.id))));
  Ir.Irmod.add_func m f;
  Ir.Verify.verify_module m;
  Noelle.Telemetry.install ();
  Fun.protect ~finally:Noelle.Telemetry.uninstall (fun () ->
      let slow = Ir.Andersen.solve_naive m in
      let fast = Ir.Andersen.analyze m in
      Alcotest.(check (list string))
        "cycle module: solvers agree"
        (Ir.Andersen.dump_pts slow) (Ir.Andersen.dump_pts fast);
      let collapsed =
        Option.value ~default:0L
          (List.assoc_opt "andersen.cycles_collapsed" (Ir.Trace.counters ()))
      in
      checkb "at least one copy cycle collapsed" (Int64.compare collapsed 0L > 0))

(* ------------------------------------------------------------------ *)
(* Bucketed PDG vs the unbucketed builder                               *)
(* ------------------------------------------------------------------ *)

let edge_set (p : Noelle.Pdg.t) =
  List.map
    (fun (e : Noelle.Depgraph.edge) ->
      ( e.Noelle.Depgraph.esrc,
        e.Noelle.Depgraph.edst,
        Noelle.Depgraph.kind_to_string e.Noelle.Depgraph.kind,
        e.Noelle.Depgraph.must,
        e.Noelle.Depgraph.loop_carried ))
    (Noelle.Depgraph.edges p.Noelle.Pdg.fdg)
  |> List.sort compare

let test_bucketed_matches_unbucketed () =
  List.iter
    (fun (name, m) ->
      let a = Ir.Andersen.analyze m in
      let stack = [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
      List.iter
        (fun f ->
          let plain = Noelle.Pdg.build ~stack m f in
          let bucketed = Noelle.Pdg.build ~pts:a ~stack m f in
          let tag what =
            Printf.sprintf "%s.%s: %s" name f.Ir.Func.fname what
          in
          checkb (tag "edge sets identical") (edge_set plain = edge_set bucketed);
          checki (tag "pair totals identical") plain.Noelle.Pdg.mem_pairs_total
            bucketed.Noelle.Pdg.mem_pairs_total;
          checki (tag "disproval counts identical") plain.Noelle.Pdg.mem_pairs_disproved
            bucketed.Noelle.Pdg.mem_pairs_disproved;
          checkb (tag "bucketing never issues more queries")
            (bucketed.Noelle.Pdg.mem_queries <= plain.Noelle.Pdg.mem_queries))
        (Ir.Irmod.defined_functions m))
    (corpus ())

(** Pairs that share pointer operands must hit the alias stack once: two
    loads through the same gep against one store give one raw query plus
    one memo hit. *)
let test_query_memoization () =
  let open Ir.Instr in
  let m = Ir.Irmod.create ~name:"memo" () in
  Ir.Irmod.add_global m { Ir.Irmod.gname = "g"; size = 8; init = None };
  let f = Ir.Func.create ~name:"main" ~params:[] ~ret:Ir.Ty.I64 in
  let b = Ir.Builder.add_block f ~label:"entry" in
  let p = Ir.Builder.add f b.Ir.Func.bid (Gep (Glob "g", Cint 0L)) Ir.Ty.Ptr in
  let x = Ir.Builder.add f b.Ir.Func.bid (Load (Reg p.id)) Ir.Ty.I64 in
  let y = Ir.Builder.add f b.Ir.Func.bid (Load (Reg p.id)) Ir.Ty.I64 in
  let s = Ir.Builder.add f b.Ir.Func.bid (Bin (Add, Reg x.id, Reg y.id)) Ir.Ty.I64 in
  ignore (Ir.Builder.add f b.Ir.Func.bid (Store (Reg s.id, Reg p.id)) Ir.Ty.Void);
  ignore (Ir.Builder.set_term f b.Ir.Func.bid (Ret (Some (Reg s.id))));
  Ir.Irmod.add_func m f;
  Ir.Verify.verify_module m;
  let a = Ir.Andersen.analyze m in
  let stack = [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
  Noelle.Telemetry.install ();
  Fun.protect ~finally:Noelle.Telemetry.uninstall (fun () ->
      let p = Noelle.Pdg.build ~pts:a ~stack m (Ir.Irmod.func m "main") in
      checkb "memoization saved at least one query"
        (p.Noelle.Pdg.mem_queries < p.Noelle.Pdg.mem_pairs_total);
      let hits =
        Option.value ~default:0L
          (List.assoc_opt "pdg.alias_memo_hits" (Ir.Trace.counters ()))
      in
      checkb "memo-hit counter recorded" (Int64.compare hits 0L > 0))

(* ------------------------------------------------------------------ *)
(* Incremental invalidation vs from-scratch                             *)
(* ------------------------------------------------------------------ *)

(** Mutate one function, [invalidate], and demand every PDG again: the
    result must be indistinguishable from a manager created fresh on the
    mutated module — and the untouched functions' artifacts must have
    survived (fingerprint-keyed, not wholesale). *)
let test_incremental_matches_scratch () =
  List.iter
    (fun (name, m) ->
      let fns = Ir.Irmod.defined_functions m in
      if List.length fns >= 2 then begin
        let n1 = Noelle.create m in
        List.iter (fun f -> ignore (Noelle.pdg n1 f)) fns;
        (* single-function transform: dead arithmetic changes the
           fingerprint of exactly one function *)
        let f0 = List.hd fns in
        ignore
          (Ir.Builder.add f0 (Ir.Func.entry f0)
             (Ir.Instr.Bin (Ir.Instr.Add, Ir.Instr.Cint 1L, Ir.Instr.Cint 2L))
             Ir.Ty.I64);
        Noelle.Telemetry.install ();
        let kept =
          Fun.protect ~finally:Noelle.Telemetry.uninstall (fun () ->
              Noelle.invalidate n1;
              Option.value ~default:0L
                (List.assoc_opt "noelle.invalidate.kept" (Ir.Trace.counters ())))
        in
        checkb (name ^ ": untouched artifacts survived invalidate")
          (Int64.compare kept 0L > 0);
        let n2 = Noelle.create m in
        List.iter
          (fun f ->
            let inc = Noelle.pdg n1 f and scratch = Noelle.pdg n2 f in
            checkb
              (Printf.sprintf "%s.%s: incremental PDG == from-scratch" name f.Ir.Func.fname)
              (edge_set inc = edge_set scratch);
            checki
              (Printf.sprintf "%s.%s: same pair totals" name f.Ir.Func.fname)
              scratch.Noelle.Pdg.mem_pairs_total inc.Noelle.Pdg.mem_pairs_total)
          fns
      end)
    (List.filter
       (fun (k : Bsuite.Kernels.kernel) ->
         List.mem k.Bsuite.Kernels.kname [ "ferret"; "dedup"; "dijkstra" ])
       Bsuite.Kernels.all
     |> List.map (fun (k : Bsuite.Kernels.kernel) ->
            (k.Bsuite.Kernels.kname, Bsuite.Kernels.compile k)))

let suite =
  [
    tc "bitset units" test_bitset;
    tc "worklist == naive (kernels + 50 fuzz seeds)" test_worklist_matches_naive;
    tc "analysis budget degrades gracefully" test_budget_degrades;
    tc "copy cycles collapse" test_cycle_collapse;
    tc "bucketed PDG == unbucketed (kernels + 50 fuzz seeds)" test_bucketed_matches_unbucketed;
    tc "alias-query memoization" test_query_memoization;
    tc "incremental invalidation == from-scratch" test_incremental_matches_scratch;
  ]
