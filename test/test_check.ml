(** noelle-check: the static race detector and sanitizer suite, plus direct
    unit tests for the DFE canned analyses it consumes. *)

open Helpers
open Ir
module Check = Noelle.Check
module Dfe = Noelle.Dfe

let find_inst pred f =
  Func.fold_insts (fun acc i -> if pred i then Some i else acc) None f

let stores_to_const f =
  Func.fold_insts
    (fun acc (i : Instr.inst) ->
      match i.Instr.op with Instr.Store (Instr.Cint n, _) -> (n, i) :: acc | _ -> acc)
    [] f

let diags_of ?checks m = (Check.run ?checks m).Check.diags

let has_diag ?(did = "") diags (i : Instr.inst) =
  List.exists
    (fun (d : Check.diag) ->
      d.Check.dloc.Check.linst = i.Instr.id && (did = "" || d.Check.did = did))
    diags

(* ------------------------------------------------------------------ *)
(* DFE canned analyses: direct unit tests                              *)
(* ------------------------------------------------------------------ *)

let test_dfe_liveness_loop () =
  let m =
    compile
      {|
int main() {
  int n = clock() + 10;
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + i; }
  print(s);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let live = Dfe.liveness f in
  checkb "fixpoint took iterations" (live.Dfe.iterations > 0);
  (* n is used by the loop test every iteration: its definition must be
     live-out of the entry block *)
  let n_def =
    find_inst
      (fun i ->
        match i.Instr.op with
        | Instr.Bin (Instr.Add, _, Instr.Cint 10L) -> true
        | _ -> false)
      f
    |> Option.get
  in
  checkb "n live-out of entry"
    (Dfe.IntSet.mem n_def.Instr.id (Hashtbl.find live.Dfe.out (Func.entry f)));
  (* the reported iteration count is a real fixpoint measure: at least one
     transfer per block *)
  checkb "iterations cover the CFG"
    (live.Dfe.iterations >= List.length f.Func.blocks)

let test_dfe_reaching_stores_kill () =
  let m =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  if (clock() > 0) { a[0] = 2; } else { a[0] = 3; }
  print(a[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let res = Dfe.reaching_stores m f in
  let store n = List.assoc n (stores_to_const f) in
  let load =
    find_inst (fun i -> match i.Instr.op with Instr.Load _ -> true | _ -> false) f
    |> Option.get
  in
  let reaching = Hashtbl.find res.Dfe.in_ load.Instr.parent in
  (* the initial store is must-overwritten on both paths; the branch
     stores both reach the join *)
  checkb "store 2 reaches join" (Dfe.IntSet.mem (store 2L).Instr.id reaching);
  checkb "store 3 reaches join" (Dfe.IntSet.mem (store 3L).Instr.id reaching);
  checkb "store 1 killed on both paths"
    (not (Dfe.IntSet.mem (store 1L).Instr.id reaching))

let test_dfe_live_memory () =
  let m =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  if (clock() > 0) { a[0] = 2; }
  print(a[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let res = Dfe.live_memory m f in
  let load =
    find_inst (fun i -> match i.Instr.op with Instr.Load _ -> true | _ -> false) f
    |> Option.get
  in
  let store1 = List.assoc 1L (stores_to_const f) in
  (* the load is downstream of the first store: it must be live-out of the
     store's block (the conditional overwrite cannot kill it on the
     fall-through path) *)
  checkb "load live-out of entry"
    (Dfe.IntSet.mem load.Instr.id (Hashtbl.find res.Dfe.out store1.Instr.parent))

(* ------------------------------------------------------------------ *)
(* Sanitizer checkers                                                  *)
(* ------------------------------------------------------------------ *)

let test_uninit_load () =
  let m =
    compile
      {|
int main() {
  int a[4];
  print(a[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let load =
    find_inst (fun i -> match i.Instr.op with Instr.Load _ -> true | _ -> false) f
    |> Option.get
  in
  let diags = diags_of ~checks:[ "san.uninit-load" ] m in
  checkb "uninit load flagged" (has_diag ~did:"san.uninit-load" diags load)

let test_uninit_load_negative () =
  let clean =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  print(a[0]);
  return 0;
}
|}
  in
  checki "stored array is clean" 0
    (List.length (diags_of ~checks:[ "san.uninit-load" ] clean));
  (* a store on only one path still reaches: may-initialized is not
     reported (the checker only fires on definitely-uninitialized) *)
  let partial =
    compile
      {|
int main() {
  int a[4];
  if (clock() > 0) { a[0] = 1; }
  print(a[0]);
  return 0;
}
|}
  in
  checki "may-initialized not reported" 0
    (List.length (diags_of ~checks:[ "san.uninit-load" ] partial))

let test_dead_store () =
  let m =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  a[0] = 2;
  print(a[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let diags = diags_of ~checks:[ "san.dead-store" ] m in
  checkb "overwritten store flagged"
    (has_diag ~did:"san.dead-store" diags (List.assoc 1L (stores_to_const f)));
  checkb "live store not flagged"
    (not (has_diag diags (List.assoc 2L (stores_to_const f))))

let test_dead_store_negative () =
  let m =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  if (clock() > 0) { a[0] = 2; }
  print(a[0]);
  return 0;
}
|}
  in
  checki "conditionally-overwritten store is live" 0
    (List.length (diags_of ~checks:[ "san.dead-store" ] m))

(* heap checkers need malloc/free: built directly as IR *)
let heap_module build =
  let m = Irmod.create ~name:"heap" () in
  Faultgen.declare_alloc_builtins m;
  let f = Func.create ~name:"main" ~params:[] ~ret:Ty.I64 in
  let b = Builder.add_block f ~label:"entry" in
  let p =
    Builder.add f b.Func.bid (Instr.Call (Instr.Glob "malloc", [ Instr.Cint 2L ])) Ty.Ptr
  in
  build f b p;
  ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Cint 0L))));
  Irmod.add_func m f;
  m

let test_use_after_free () =
  let faulty = ref None in
  let m =
    heap_module (fun f b p ->
        ignore
          (Builder.add f b.Func.bid
             (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
             Ty.Void);
        faulty :=
          Some
            (Builder.add f b.Func.bid
               (Instr.Store (Instr.Cint 7L, Instr.Reg p.Instr.id))
               Ty.Void))
  in
  let diags = diags_of ~checks:[ "san.heap" ] m in
  checkb "store after free flagged"
    (has_diag ~did:"san.use-after-free" diags (Option.get !faulty))

let test_double_free () =
  let faulty = ref None in
  let m =
    heap_module (fun f b p ->
        ignore
          (Builder.add f b.Func.bid
             (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
             Ty.Void);
        faulty :=
          Some
            (Builder.add f b.Func.bid
               (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
               Ty.Void))
  in
  let diags = diags_of ~checks:[ "san.heap" ] m in
  checkb "second free flagged"
    (has_diag ~did:"san.double-free" diags (Option.get !faulty))

let test_heap_negative () =
  let m =
    heap_module (fun f b p ->
        ignore
          (Builder.add f b.Func.bid
             (Instr.Store (Instr.Cint 7L, Instr.Reg p.Instr.id))
             Ty.Void);
        ignore
          (Builder.add f b.Func.bid
             (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
             Ty.Void))
  in
  checki "store-then-free is clean" 0
    (List.length (diags_of ~checks:[ "san.heap" ] m))

let test_oob_constant () =
  let m =
    compile
      {|
int main() {
  int a[4];
  a[0] = 1;
  a[5] = 2;
  print(a[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let diags = diags_of ~checks:[ "san.oob-gep" ] m in
  checkb "constant index past the end flagged"
    (has_diag ~did:"san.oob-gep" diags (List.assoc 2L (stores_to_const f)));
  checkb "in-bounds store not flagged"
    (not (has_diag diags (List.assoc 1L (stores_to_const f))))

let test_oob_affine () =
  let bad =
    compile
      {|
int main() {
  int a[4];
  for (int i = 0; i < 8; i++) { a[i] = i; }
  print(a[0]);
  return 0;
}
|}
  in
  let diags = diags_of ~checks:[ "san.oob-gep" ] bad in
  checkb "affine overrun flagged"
    (List.exists (fun (d : Check.diag) -> d.Check.did = "san.oob-gep") diags);
  let good =
    compile
      {|
int main() {
  int a[4];
  for (int i = 0; i < 4; i++) { a[i] = i; }
  print(a[0]);
  return 0;
}
|}
  in
  checki "in-bounds affine loop is clean" 0
    (List.length (diags_of ~checks:[ "san.oob-gep" ] good))

(* ------------------------------------------------------------------ *)
(* The race detector and the pipeline gate                             *)
(* ------------------------------------------------------------------ *)

let two_loop_src =
  {|
int A[100];
int main() {
  for (int i = 0; i < 100; i++) { A[i] = i * 3; }
  for (int j = 1; j < 100; j++) { A[j] = A[j - 1] + 1; }
  print(A[99]);
  return 0;
}
|}

let loop_keys m =
  let f = Irmod.func m "main" in
  let nest = Loopnest.compute f in
  List.map (fun l -> Ids.loop_key f l) nest.Loopnest.loops

let test_race_two_loops () =
  let m = compile two_loop_src in
  let keys = loop_keys m in
  checki "two loops" 2 (List.length keys);
  let flagged = Check.race_flagged_loops m in
  (* exactly the recurrence loop is flagged *)
  checki "one loop flagged" 1 (Hashtbl.length flagged);
  let diags = diags_of ~checks:[ "race.loop-carried" ] m in
  let in_key k (d : Check.diag) =
    d.Check.did = "race.loop-carried"
    && String.length d.Check.dmsg >= String.length ("loop " ^ k)
    && String.sub d.Check.dmsg 5 (String.length k) = k
  in
  let safe, unsafe =
    match keys with [ a; b ] -> (a, b) | _ -> Alcotest.fail "expected two loops"
  in
  (* loop keys come outermost-first in layout order: first is the safe one *)
  checkb "unsafe loop flagged" (Hashtbl.mem flagged unsafe);
  checkb "safe loop not flagged" (not (Hashtbl.mem flagged safe));
  checkb "diag names the unsafe loop" (List.exists (in_key unsafe) diags);
  (* the offending dependence is named: a RAW between the A[j]/A[j-1] pair *)
  checkb "dependence sort named"
    (List.exists
       (fun (d : Check.diag) ->
         in_key unsafe d
         &&
         let has s =
           let sl = String.length s and ml = String.length d.Check.dmsg in
           let rec go k = k + sl <= ml && (String.sub d.Check.dmsg k sl = s || go (k + 1)) in
           go 0
         in
         has "RAW")
       diags)

let test_race_gate_doall () =
  let m = compile two_loop_src in
  let safe, unsafe =
    match loop_keys m with [ a; b ] -> (a, b) | _ -> Alcotest.fail "two loops"
  in
  let n = Noelle.create m in
  let skip = Ntools.Lint.race_gate m in
  let results =
    Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ~skip ()
  in
  let result_of k = List.assoc_opt k results in
  (match result_of unsafe with
  | Some (Error e) -> checkb "unsafe loop skipped by gate"
      (String.length e >= 7 && String.sub e 0 7 = "skipped")
  | _ -> Alcotest.fail "unsafe loop should be refused by the race gate");
  (match result_of safe with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "safe loop not parallelized: %s" e
  | None -> Alcotest.fail "safe loop never attempted");
  verifies "gated module verifies" m

let test_race_gate_pipeline () =
  (* end-to-end: the gated standard stack still preserves behaviour *)
  let m = compile two_loop_src in
  let expected = output m in
  let m2 = compile two_loop_src in
  let report = Ntools.Passes.run_standard ~check_races:true m2 in
  checkb "pipeline final module ok" report.Noelle.Pipeline.final_ok;
  let got, _ = run_parallel m2 in
  checks "gated pipeline preserves output" expected got

(* ------------------------------------------------------------------ *)
(* Engine: suppression, JSON, stats                                    *)
(* ------------------------------------------------------------------ *)

let uninit_module () =
  compile {|
int main() {
  int a[4];
  print(a[0]);
  return 0;
}
|}

let test_suppression () =
  let m = uninit_module () in
  let r = Check.run ~checks:[ "san.uninit-load" ] m in
  (match Check.errors r with
  | [ d ] ->
    Check.suppress m ~did:d.Check.did ~fname:d.Check.dloc.Check.lfunc
      ~inst:d.Check.dloc.Check.linst;
    let r2 = Check.run ~checks:[ "san.uninit-load" ] m in
    checki "suppressed error no longer gates" 0 (List.length (Check.errors r2));
    checkb "diagnostic still emitted, marked suppressed"
      (List.exists (fun d -> d.Check.dsuppressed) r2.Check.diags)
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds));
  (* module-wide suppression of a whole check id *)
  let m2 = uninit_module () in
  Ir.Meta.set m2.Irmod.meta "check.suppress.san.uninit-load" "1";
  checki "check-wide suppression" 0
    (List.length (Check.errors (Check.run ~checks:[ "san.uninit-load" ] m2)))

let test_suppression_roundtrip () =
  (* suppressions survive printing and reparsing the module *)
  let m = uninit_module () in
  let r = Check.run ~checks:[ "san.uninit-load" ] m in
  let d = List.hd (Check.errors r) in
  Check.suppress m ~did:d.Check.did ~fname:d.Check.dloc.Check.lfunc
    ~inst:d.Check.dloc.Check.linst;
  let m' = Ir.Parser.parse_module ~name:"t" (Ir.Printer.module_str m) in
  checki "suppression survives print/parse" 0
    (List.length (Check.errors (Check.run ~checks:[ "san.uninit-load" ] m')))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go k = k + nl <= hl && (String.sub hay k nl = needle || go (k + 1)) in
  go 0

let test_json_and_stats () =
  let m = uninit_module () in
  let r = Check.run m in
  let js = Check.report_to_json ~mname:"t" r in
  checkb "json has module" (contains js "\"module\":\"t\"");
  checkb "json has an error count" (contains js "\"errors\":1");
  checkb "json has the check id" (contains js "\"check\":\"san.uninit-load\"");
  checkb "json has stats" (contains js "\"iterations\":");
  checkb "stats cover every checker"
    (List.length r.Check.rstats = List.length Check.all);
  checkb "uninit checker charged DFE iterations"
    (List.exists
       (fun (s : Check.checker_stats) ->
         s.Check.sname = "san.uninit-load" && s.Check.siters > 0)
       r.Check.rstats)

(* ------------------------------------------------------------------ *)
(* Differential soundness: planted sanitizer faults                    *)
(* ------------------------------------------------------------------ *)

let test_planted_faults_detected () =
  let sanitizer_checks = [ "san.uninit-load"; "san.heap"; "san.oob-gep" ] in
  for seed = 1 to 50 do
    let m =
      Minic.Lower.compile ~name:(Printf.sprintf "fuzz%d" seed)
        (Bsuite.Generator.program seed)
    in
    match Faultgen.inject_info ~kinds:Faultgen.sanitizer_kinds ~seed m with
    | None -> Alcotest.failf "seed %d: no plant site" seed
    | Some info ->
      (* static: a diagnostic at exactly the faulted instruction *)
      let r = Check.run ~checks:sanitizer_checks m in
      checkb
        (Printf.sprintf "seed %d: %s reported statically" seed info.Faultgen.idesc)
        (List.exists
           (fun (d : Check.diag) ->
             d.Check.dloc.Check.lfunc = info.Faultgen.ifunc
             && d.Check.dloc.Check.linst = info.Faultgen.iinst)
           r.Check.diags);
      (* dynamic: the interpreter's memory oracle confirms the bug is real *)
      let ev = Ntools.Lint.sanitize ~fuel:300_000 m in
      checkb
        (Printf.sprintf "seed %d: %s confirmed dynamically" seed info.Faultgen.idesc)
        (Ntools.Lint.confirms ev ~func:info.Faultgen.ifunc ~inst:info.Faultgen.iinst)
  done

let test_pristine_modules_clean () =
  (* no checker may error on healthy modules: benchmark kernels... *)
  each_kernel (fun k m ->
      let r = Check.run m in
      checki (k.Bsuite.Kernels.kname ^ " clean") 0 (List.length (Check.errors r)));
  (* ...and a sweep of fuzzer outputs *)
  for seed = 1 to 10 do
    let m =
      Minic.Lower.compile ~name:(Printf.sprintf "fuzz%d" seed)
        (Bsuite.Generator.program seed)
    in
    checki (Printf.sprintf "fuzz%d clean" seed) 0
      (List.length (Check.errors (Check.run m)))
  done

let suite =
  [
    tc "dfe: liveness in a loop" test_dfe_liveness_loop;
    tc "dfe: reaching-stores must-alias kill" test_dfe_reaching_stores_kill;
    tc "dfe: live-memory keeps observed stores" test_dfe_live_memory;
    tc "san: uninit load" test_uninit_load;
    tc "san: uninit load negatives" test_uninit_load_negative;
    tc "san: dead store" test_dead_store;
    tc "san: dead store negative" test_dead_store_negative;
    tc "san: use after free" test_use_after_free;
    tc "san: double free" test_double_free;
    tc "san: heap negative" test_heap_negative;
    tc "san: oob constant index" test_oob_constant;
    tc "san: oob affine index" test_oob_affine;
    tc "race: flags exactly the recurrence loop" test_race_two_loops;
    tc "race: DOALL gate skips the flagged loop" test_race_gate_doall;
    tc "race: gated pipeline preserves output" test_race_gate_pipeline;
    tc "engine: suppression" test_suppression;
    tc "engine: suppression round-trips" test_suppression_roundtrip;
    tc "engine: json and stats" test_json_and_stats;
    tc "differential: planted faults detected" test_planted_faults_detected;
    tc "differential: pristine modules clean" test_pristine_modules_clean;
  ]
