(** Tests of the resilience layer: module snapshots, deterministic fault
    injection, verifier rejection paths, the transactional pass pipeline,
    and degraded-mode parallel execution. *)

open Helpers
open Ir

let parse = Parser.parse_module

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* a two-loop Mini-C program: DOALL-able, store-rich, output-sensitive *)
let loopy_src =
  {|
int main() {
  int *a = malloc(64);
  int s = 0;
  for (int i = 0; i < 64; i++) {
    a[i] = i * 3 - 1;
  }
  for (int i = 0; i < 64; i++) {
    s += a[i];
  }
  print(s);
  return 0;
}
|}

(* hand-written IR with a phi-carried counting loop *)
let loop_ir =
  {|
define i64 @main() {
entry:
  %1 = add 1, 2
  %2 = mul %1, 3
  br loop
loop:
  %3 = phi.i64 [entry: 0] [loop: %4]
  %4 = add %3, 1
  %5 = icmp.slt %4, 10
  cbr %5, loop, done
done:
  %6 = sub %2, %4
  call.void @print(%6)
  call.void @print(%3)
  ret 0
}
declare void @print(i64 %x)
|}

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_restore () =
  let m = compile loopy_src in
  let expected = output m in
  let snap = Snapshot.capture m in
  (* corrupt, restore, corrupt differently, restore again: the snapshot
     must stay valid across repeated rollbacks *)
  List.iter
    (fun seed ->
      (match Faultgen.inject ~seed m with
      | Some _ -> ()
      | None -> Alcotest.fail "no fault site found");
      checkb "corruption changed the module"
        (not (Snapshot.equal (Snapshot.view snap) m));
      Snapshot.restore snap m;
      checkb "restore rolled the module back" (Snapshot.equal (Snapshot.view snap) m))
    [ 1; 2; 3; 4 ];
  verifies "restored module" m;
  checks "restored module behaves identically" expected (output m)

let test_snapshot_diff () =
  let m = compile loopy_src in
  let snap = Snapshot.capture m in
  checkb "no diff on identical modules" (Snapshot.diff (Snapshot.view snap) m = []);
  ignore (Faultgen.inject ~kinds:[ Faultgen.Drop_store ] ~seed:1 m);
  let d = Snapshot.diff (Snapshot.view snap) m in
  checkb "diff reports the changed function"
    (List.exists (fun l -> contains l "@main changed") d);
  checkb "diff shows a removed line" (List.exists (fun l -> contains l "- ") d)

(* ------------------------------------------------------------------ *)
(* Verifier rejection paths                                            *)
(* ------------------------------------------------------------------ *)

let expect_invalid ~frag m =
  match Verify.check m with
  | Ok () -> Alcotest.failf "verifier accepted a module corrupted for %S" frag
  | Error msg ->
    checkb (Printf.sprintf "message %S mentions %S" msg frag) (contains msg frag)

let inject_kind kind m =
  match Faultgen.inject ~kinds:[ kind ] ~seed:1 m with
  | Some d -> d
  | None -> Alcotest.fail "fault generator found no site"

let test_verifier_mid_terminator () =
  let m = parse loop_ir in
  ignore (inject_kind Faultgen.Mid_terminator m);
  expect_invalid ~frag:"in the middle of a block" m

let test_verifier_phi_mismatch () =
  let m = parse loop_ir in
  ignore (inject_kind Faultgen.Corrupt_phi_edge m);
  expect_invalid ~frag:"incoming blocks do not match predecessors" m;
  (* arity mismatch straight from source: one incoming, two predecessors *)
  let m2 =
    parse
      {|
define i64 @main() {
entry:
  br loop
loop:
  %2 = phi.i64 [entry: 0]
  %3 = add %2, 1
  %4 = icmp.slt %3, 10
  cbr %4, loop, done
done:
  ret %3
}
|}
  in
  expect_invalid ~frag:"incoming blocks do not match predecessors" m2

let test_verifier_use_before_def () =
  let m = parse loop_ir in
  ignore (inject_kind Faultgen.Undef_operand m);
  expect_invalid ~frag:"undefined register" m;
  (* use textually before the def in the same block *)
  let m2 =
    parse
      {|
define i64 @main() {
entry:
  %1 = add %2, 1
  %2 = add 1, 2
  ret %1
}
|}
  in
  expect_invalid ~frag:"not dominated by its def" m2

(* ------------------------------------------------------------------ *)
(* Transactional pipeline                                              *)
(* ------------------------------------------------------------------ *)

let corrupting_pass kind : Noelle.Pipeline.pass =
  {
    Noelle.Pipeline.pname = "corrupt-" ^ Faultgen.kind_to_string kind;
    papply = (fun m -> inject_kind kind m);
    plicense = Obs.Exact;
  }

let small_config =
  { Noelle.Pipeline.default_config with Noelle.Pipeline.fuel = 200_000 }

let run_one ?(config = small_config) m pass =
  let r = Noelle.Pipeline.run ~config m [ pass ] in
  match r.Noelle.Pipeline.entries with
  | [ e ] -> (r, e)
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_pipeline_rolls_back_structural () =
  List.iter
    (fun kind ->
      let m = parse loop_ir in
      let pristine = Snapshot.capture m in
      let r, e = run_one m (corrupting_pass kind) in
      (match e.Noelle.Pipeline.eoutcome with
      | Noelle.Pipeline.Rolled_back reason ->
        checkb "rejected by the verifier gate" (contains reason "verifier")
      | _ -> Alcotest.failf "%s: expected rollback" (Faultgen.kind_to_string kind));
      checkb "rollback recorded a diff" (e.Noelle.Pipeline.ediff <> []);
      checkb "module rolled back to the pristine state"
        (Snapshot.equal (Snapshot.view pristine) m);
      checkb "final module ok" r.Noelle.Pipeline.final_ok)
    [ Faultgen.Mid_terminator; Faultgen.Corrupt_phi_edge; Faultgen.Undef_operand ]

let test_pipeline_rolls_back_semantic () =
  (* structurally valid corruptions must die at the differential gate *)
  List.iter
    (fun kind ->
      let m = compile loopy_src in
      let pristine = Snapshot.capture m in
      let r, e = run_one m (corrupting_pass kind) in
      (match e.Noelle.Pipeline.eoutcome with
      | Noelle.Pipeline.Rolled_back reason ->
        checkb
          (Printf.sprintf "%s rejected by the differential gate (%s)"
             (Faultgen.kind_to_string kind) reason)
          (contains reason "differential")
      | _ -> Alcotest.failf "%s: expected rollback" (Faultgen.kind_to_string kind));
      checkb "module rolled back" (Snapshot.equal (Snapshot.view pristine) m);
      checkb "final module ok" r.Noelle.Pipeline.final_ok)
    [ Faultgen.Drop_store; Faultgen.Swap_operands ]

let test_pipeline_commits_good_pass () =
  let m = compile loopy_src in
  let expected = output m in
  let n = Noelle.create m in
  let config =
    { small_config with Noelle.Pipeline.on_change = (fun () -> Noelle.invalidate n) }
  in
  let r = Noelle.Pipeline.run ~config m [ Ntools.Passes.licm n; Ntools.Passes.dead n ] in
  List.iter
    (fun (e : Noelle.Pipeline.entry) ->
      match e.Noelle.Pipeline.eoutcome with
      | Noelle.Pipeline.Committed _ -> ()
      | o ->
        Alcotest.failf "%s: expected commit, got %s" e.Noelle.Pipeline.epass
          (Noelle.Pipeline.outcome_to_string o))
    r.Noelle.Pipeline.entries;
  checkb "final ok" r.Noelle.Pipeline.final_ok;
  checks "behaviour preserved" expected (output m)

let test_pipeline_times_out () =
  let m = parse loop_ir in
  let pristine = Snapshot.capture m in
  (* rewrite the loop's exit test into an unconditional back edge: still
     verifier-valid, but the differential run never terminates *)
  let loopify : Noelle.Pipeline.pass =
    {
      Noelle.Pipeline.pname = "loopify";
      papply =
        (fun m ->
          let f = Irmod.func m "main" in
          Func.iter_insts
            (fun i ->
              match i.Instr.op with
              | Instr.Cbr (_, t, _) when t = i.Instr.parent -> i.Instr.op <- Instr.Br t
              | _ -> ())
            f;
          "made the loop infinite");
      plicense = Obs.Exact;
    }
  in
  let config = { small_config with Noelle.Pipeline.fuel = 20_000 } in
  let r, e = run_one ~config m loopify in
  (match e.Noelle.Pipeline.eoutcome with
  | Noelle.Pipeline.Timed_out _ -> ()
  | o -> Alcotest.failf "expected timeout, got %s" (Noelle.Pipeline.outcome_to_string o));
  checkb "module rolled back" (Snapshot.equal (Snapshot.view pristine) m);
  checkb "final ok" r.Noelle.Pipeline.final_ok

let test_pipeline_injected_sweep () =
  (* the full standard stack with a corrupted output per pass: whatever the
     gates decide, the surviving module must behave like the original *)
  let expected = output (compile loopy_src) in
  let rollbacks = ref 0 in
  List.iter
    (fun seed ->
      let m = compile loopy_src in
      let r = Ntools.Passes.run_standard ~fuel:500_000 ~inject_seed:seed m in
      checkb
        (Printf.sprintf "seed %d: final module ok\n%s" seed
           (Noelle.Pipeline.report_to_string r))
        r.Noelle.Pipeline.final_ok;
      rollbacks := !rollbacks + List.length (Noelle.Pipeline.rolled_back r);
      let got, _ = run_parallel m in
      checks (Printf.sprintf "seed %d: output preserved" seed) expected got)
    [ 1; 2; 3; 4; 5 ];
  checkb "the sweep exercised at least one rollback" (!rollbacks > 0)

(* ------------------------------------------------------------------ *)
(* Analysis budgets                                                    *)
(* ------------------------------------------------------------------ *)

let test_analysis_budget_degrades () =
  let m = compile loopy_src in
  let a = Andersen.analyze ~budget:1 m in
  checkb "tiny budget degrades Andersen" a.Andersen.degraded;
  let full = Andersen.analyze m in
  checkb "no budget, no degradation" (not full.Andersen.degraded);
  (* a degraded manager still answers every query, conservatively *)
  let n = Noelle.create ~analysis_budget:1 m in
  ignore (Noelle.callgraph n);
  let f = Irmod.func m "main" in
  let p = Noelle.pdg n f in
  checkb "degradation surfaces on the manager" (Noelle.degraded n);
  checkb "budgeted PDG is flagged degraded" p.Noelle.Pdg.degraded;
  let fullp = Noelle.pdg (Noelle.create m) f in
  checkb "full PDG is not degraded" (not fullp.Noelle.Pdg.degraded);
  checkb "full PDG disproves more pairs than the degraded one"
    (fullp.Noelle.Pdg.mem_pairs_disproved > p.Noelle.Pdg.mem_pairs_disproved)

let test_budgeted_pipeline_still_correct () =
  let expected = output (compile loopy_src) in
  let m = compile loopy_src in
  let r = Ntools.Passes.run_standard ~fuel:500_000 ~analysis_budget:5 m in
  checkb "budgeted pipeline final ok" r.Noelle.Pipeline.final_ok;
  let got, _ = run_parallel m in
  checks "budgeted pipeline preserves behaviour" expected got

(* ------------------------------------------------------------------ *)
(* Degraded-mode parallel execution                                    *)
(* ------------------------------------------------------------------ *)

let parallelized_copy src =
  let m = compile src in
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 () in
  checkb "DOALL parallelized at least one loop"
    (List.exists (fun (_, r) -> Result.is_ok r) results);
  m

let test_psim_no_fault () =
  let original = compile loopy_src in
  let expected = output original in
  let m = parallelized_copy loopy_src in
  let r = Psim.Runtime.run_resilient ~original m in
  checkb "parallel mode" (r.Psim.Runtime.rmode = `Parallel);
  checki "no restarts" 0 r.Psim.Runtime.rrestarts;
  checks "output" expected (String.trim r.Psim.Runtime.routput)

let test_psim_retry () =
  let original = compile loopy_src in
  let expected = output original in
  let m = parallelized_copy loopy_src in
  (* sweep seeds: transient faults must always be healed by re-execution,
     and at least one seed must actually kill a task *)
  let restarts = ref 0 in
  List.iter
    (fun seed ->
      let fault = Psim.Runtime.seeded_fault ~seed () in
      let r = Psim.Runtime.run_resilient ~fault ~original m in
      checkb (Printf.sprintf "seed %d: stayed parallel" seed)
        (r.Psim.Runtime.rmode = `Parallel);
      checks (Printf.sprintf "seed %d: output" seed) expected
        (String.trim r.Psim.Runtime.routput);
      restarts := !restarts + r.Psim.Runtime.rrestarts;
      List.iter
        (fun (ev : Psim.Runtime.task_event) ->
          match ev with
          | Psim.Runtime.Task_died { tid; attempt; _ } ->
            checkb
              (Printf.sprintf "seed %d: task %d death on attempt %d was retried" seed
                 tid attempt)
              (List.exists
                 (function
                   | Psim.Runtime.Task_ok { tid = tid'; attempt = a' } ->
                     tid' = tid && a' > attempt
                   | _ -> false)
                 r.Psim.Runtime.rtask_log)
          | _ -> ())
        r.Psim.Runtime.rtask_log)
    [ 1; 2; 3; 4; 5; 6 ];
  checkb "the sweep exercised at least one restart" (!restarts > 0)

let test_psim_sequential_fallback () =
  let original = compile loopy_src in
  let expected = output original in
  let m = parallelized_copy loopy_src in
  let fault = Psim.Runtime.persistent_fault ~max_restarts:2 ~tid:0 () in
  let r = Psim.Runtime.run_resilient ~fault ~original m in
  checkb "fell back to sequential" (r.Psim.Runtime.rmode = `Sequential_fallback);
  checki "used the whole restart budget" 2 r.Psim.Runtime.rrestarts;
  checks "fallback output is the original's" expected
    (String.trim r.Psim.Runtime.routput);
  checki "three failed attempts logged" 3
    (List.length
       (List.filter
          (function Psim.Runtime.Task_died { tid = 0; _ } -> true | _ -> false)
          r.Psim.Runtime.rtask_log));
  checkb "abandonment recorded"
    (List.exists
       (function Psim.Runtime.Section_abandoned _ -> true | _ -> false)
       r.Psim.Runtime.rtask_log)

let suite =
  [
    tc "snapshot restore" test_snapshot_restore;
    tc "snapshot diff" test_snapshot_diff;
    tc "verifier rejects mid-block terminator" test_verifier_mid_terminator;
    tc "verifier rejects phi mismatch" test_verifier_phi_mismatch;
    tc "verifier rejects use-before-def" test_verifier_use_before_def;
    tc "pipeline rolls back structural faults" test_pipeline_rolls_back_structural;
    tc "pipeline rolls back semantic faults" test_pipeline_rolls_back_semantic;
    tc "pipeline commits good passes" test_pipeline_commits_good_pass;
    tc "pipeline times out runaway passes" test_pipeline_times_out;
    tc "pipeline injected-fault sweep" test_pipeline_injected_sweep;
    tc "analysis budget degrades gracefully" test_analysis_budget_degrades;
    tc "budgeted pipeline stays correct" test_budgeted_pipeline_still_correct;
    tc "psim fault-free resilient run" test_psim_no_fault;
    tc "psim transient faults retried" test_psim_retry;
    tc "psim sequential fallback" test_psim_sequential_fallback;
  ]
