(** Tests of the observable-event oracle (DESIGN.md §12): trace shape and
    escape filtering, commutation licenses and their join, the exact and
    concurrent equivalence checkers with their minimal witnesses, the
    Effect_reorder fault class that only a trace gate can catch, a fuzz
    sweep showing the trace gate strictly stronger than the legacy output
    compare, and the Psim replay-validation protocol. *)

open Helpers
open Ir

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* two global cells, two stores with no dependence between them: the final
   memory image and the (empty) text output are insensitive to store
   order, so only the event trace distinguishes the two variants *)
let two_stores_src =
  {|
int g[4];
int h[4];
int main() {
  g[0] = 7;
  h[0] = 9;
  return 0;
}
|}

let two_stores_swapped_src =
  {|
int g[4];
int h[4];
int main() {
  h[0] = 9;
  g[0] = 7;
  return 0;
}
|}

(* stores into a non-escaping malloc'd buffer must stay OUT of the trace;
   the single global store and the print must be in it *)
let private_heap_src =
  {|
int g[2];
int main() {
  int *a = malloc(16);
  for (int i = 0; i < 16; i++) {
    a[i] = i * i;
  }
  g[0] = a[5];
  print(a[3]);
  return 0;
}
|}

let keys t = List.map (fun (e : Obs.event) -> Obs.action_key e.Obs.eact) t

let test_trace_shape () =
  let _, out, t = Obs.run ~fuel:100_000 (compile private_heap_src) in
  checks "output" "9" (String.trim out);
  checks "trace"
    "store @g[0] = 25 | call print(9) | exit 0"
    (String.concat " | " (keys t))

let test_exact_identity () =
  (* the gate must never reject the identity transformation *)
  let _, _, a = Obs.run ~fuel:100_000 (compile two_stores_src) in
  let _, _, b = Obs.run ~fuel:100_000 (compile two_stores_src) in
  match Obs.check ~license:Obs.Exact ~reference:a ~candidate:b with
  | Ok () -> ()
  | Error (msg, _) -> Alcotest.failf "identity rejected: %s" msg

let test_exact_witness () =
  let ra, oa, a = Obs.run ~fuel:100_000 (compile two_stores_src) in
  let rb, ob, b = Obs.run ~fuel:100_000 (compile two_stores_swapped_src) in
  (* the legacy oracle sees nothing... *)
  checkb "results agree" (ra = rb);
  checks "outputs agree" oa ob;
  (* ...the trace oracle produces a minimal witness *)
  match Obs.check ~license:Obs.Exact ~reference:a ~candidate:b with
  | Ok () -> Alcotest.fail "swapped stores accepted under the exact license"
  | Error (msg, witness) ->
    checkb "reason names the divergence point" (contains msg "diverges at event 0");
    checkb "witness shows the reference side"
      (List.exists (fun l -> contains l "- [0] store @g[0] = 7") witness);
    checkb "witness shows the candidate side"
      (List.exists (fun l -> contains l "+ [0] store @h[0] = 9") witness)

let test_trap_class_and_fuel_terminal () =
  checks "traps compare by class" (Obs.action_key (Obs.Trapped "inst 3: bad"))
    (Obs.action_key (Obs.Trapped "inst 9: worse"));
  let r, _, t = Obs.run ~fuel:40 (compile private_heap_src) in
  checkb "run reports the trap" (Result.is_error r);
  match List.rev t with
  | last :: _ -> checks "terminal" "out-of-fuel" (Obs.action_key last.Obs.eact)
  | [] -> Alcotest.fail "empty trace"

let test_license_join () =
  let all =
    [ Obs.Exact; Obs.Permute_iterations; Obs.Buffer_stages; Obs.Seq_segments ]
  in
  List.iter
    (fun l ->
      checkb "join is idempotent" (Obs.join l l = l);
      checkb "Exact is the identity" (Obs.join Obs.Exact l = l && Obs.join l Obs.Exact = l))
    all;
  checkb "mixing distinct concurrent licenses keeps only per-task order"
    (Obs.join Obs.Buffer_stages Obs.Seq_segments = Obs.Permute_iterations)

(* synthetic traces for the concurrent checker *)
let ev ?(task = -1) ?(seq = false) act =
  { Obs.etask = task; esection = (if task < 0 then -1 else 0); eseq = seq; eact = act }

let st g v = Obs.Store { sobj = "@" ^ g; soff = 0; svalue = string_of_int v }

let test_concurrent_check () =
  let reference = [ ev (st "a" 1); ev (st "b" 2); ev (st "c" 3) ] in
  (* cross-task interleaving is licensed: each task's stream is a
     subsequence of the reference *)
  let interleaved =
    [ ev ~task:1 (st "b" 2); ev ~task:0 (st "a" 1); ev ~task:0 (st "c" 3) ]
  in
  (match
     Obs.check ~license:Obs.Permute_iterations ~reference ~candidate:interleaved
   with
  | Ok () -> ()
  | Error (msg, _) -> Alcotest.failf "licensed interleaving rejected: %s" msg);
  (* a reorder WITHIN one task is never licensed *)
  let within =
    [ ev ~task:1 (st "b" 2); ev ~task:0 (st "c" 3); ev ~task:0 (st "a" 1) ]
  in
  (match
     Obs.check ~license:Obs.Permute_iterations ~reference ~candidate:within
   with
  | Ok () -> Alcotest.fail "in-task reorder accepted"
  | Error (msg, _) -> checkb "blames the task" (contains msg "task 0"));
  (* a dropped event shows up as a multiset difference *)
  let dropped = [ ev ~task:0 (st "a" 1); ev ~task:0 (st "c" 3) ] in
  (match
     Obs.check ~license:Obs.Permute_iterations ~reference ~candidate:dropped
   with
  | Ok () -> Alcotest.fail "dropped event accepted"
  | Error (msg, witness) ->
    checkb "multisets differ" (contains msg "multisets");
    checkb "witness names the dropped store"
      (List.exists (fun l -> contains l "store @b[0] = 2") witness));
  (* Helix: sequential-segment events keep GLOBAL order even across tasks *)
  let seq_swapped =
    [ ev ~task:1 ~seq:true (st "b" 2); ev ~task:0 (st "a" 1);
      ev ~task:0 ~seq:true (st "c" 3) ]
  in
  let seq_ref =
    [ ev (st "a" 1); ev ~seq:true (st "c" 3); ev ~seq:true (st "b" 2) ]
  in
  (match
     Obs.check ~license:Obs.Seq_segments ~reference:seq_ref ~candidate:seq_swapped
   with
  | Ok () -> Alcotest.fail "seq-segment reorder accepted under seq-segments"
  | Error (msg, _) -> checkb "blames the segments" (contains msg "sequential segments"));
  match
    Obs.check ~license:Obs.Permute_iterations ~reference:seq_ref
      ~candidate:seq_swapped
  with
  | Ok () -> ()
  | Error (msg, _) ->
    Alcotest.failf "same candidate must pass without the seq constraint: %s" msg

let reorder_pass seed : Noelle.Pipeline.pass =
  {
    Noelle.Pipeline.pname = "effect-reorder";
    papply =
      (fun m ->
        match Faultgen.inject ~kinds:Faultgen.observable_kinds ~seed m with
        | Some d -> d
        | None -> Alcotest.fail "no reorder site in test program");
    plicense = Obs.Exact;
  }

let test_effect_reorder_old_gate_misses () =
  (* the satellite claim, end to end: a planted effect reorder sails
     through the legacy output-compare gate and dies at the trace gate
     with a witness *)
  let config =
    { Noelle.Pipeline.default_config with Noelle.Pipeline.fuel = 200_000 }
  in
  let m = compile two_stores_src in
  let r = Noelle.Pipeline.run ~config m [ reorder_pass 1 ] in
  (match r.Noelle.Pipeline.entries with
  | [ e ] -> (
    match e.Noelle.Pipeline.eoutcome with
    | Noelle.Pipeline.Rolled_back reason ->
      checkb "rejected by the differential gate" (contains reason "differential");
      checkb "a minimal event-diff witness was recorded"
        (e.Noelle.Pipeline.etrace_diff <> [])
    | o ->
      Alcotest.failf "trace gate: expected rollback, got %s"
        (Noelle.Pipeline.outcome_to_string o))
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  checkb "final module ok after rollback" r.Noelle.Pipeline.final_ok;
  let legacy =
    { config with Noelle.Pipeline.legacy_differential = true }
  in
  let m' = compile two_stores_src in
  let r' = Noelle.Pipeline.run ~config:legacy m' [ reorder_pass 1 ] in
  match r'.Noelle.Pipeline.entries with
  | [ { Noelle.Pipeline.eoutcome = Noelle.Pipeline.Committed _; _ } ] -> ()
  | [ e ] ->
    Alcotest.failf "legacy gate was supposed to miss the reorder, got %s"
      (Noelle.Pipeline.outcome_to_string e.Noelle.Pipeline.eoutcome)
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_fuzz_sweep_strictly_stronger () =
  (* over 50 generated programs: (a) the trace gate never rejects the
     identity, (b) every plantable effect reorder is invisible to the
     legacy oracle yet rejected by the trace oracle *)
  let fuel = 1_000_000 in
  let planted = ref 0 in
  for seed = 1 to 50 do
    let name = Printf.sprintf "fuzz%d" seed in
    let src = Bsuite.Generator.program seed in
    let m = Minic.Lower.compile ~name src in
    let ra, oa, reference = Obs.run ~fuel m in
    let _, _, again = Obs.run ~fuel (Minic.Lower.compile ~name src) in
    (match Obs.check ~license:Obs.Exact ~reference ~candidate:again with
    | Ok () -> ()
    | Error (msg, _) -> Alcotest.failf "seed %d: identity rejected: %s" seed msg);
    if Result.is_ok ra then begin
      let m' = Minic.Lower.compile ~name src in
      match Faultgen.inject ~kinds:Faultgen.observable_kinds ~seed m' with
      | None -> ()
      | Some desc ->
        incr planted;
        let rb, ob, candidate = Obs.run ~fuel m' in
        checkb
          (Printf.sprintf "seed %d: %s: legacy oracle blind (result)" seed desc)
          (ra = rb);
        checks
          (Printf.sprintf "seed %d: %s: legacy oracle blind (output)" seed desc)
          oa ob;
        match Obs.check ~license:Obs.Exact ~reference ~candidate with
        | Ok () ->
          Alcotest.failf "seed %d: %s: trace oracle also blind" seed desc
        | Error (_, witness) ->
          checkb
            (Printf.sprintf "seed %d: witness non-empty" seed)
            (witness <> [])
    end
  done;
  checkb
    (Printf.sprintf "sweep planted enough reorders to mean something (%d)"
       !planted)
    (!planted >= 10)

let test_parallelizers_pass_trace_gate () =
  (* the full standard stack on a parallelizable kernel: every pass must
     clear the trace-equivalence gate *)
  let k =
    match Bsuite.Kernels.find "histogram" with
    | Some k -> k
    | None -> Alcotest.fail "histogram kernel missing"
  in
  let m = Bsuite.Kernels.compile k in
  let report =
    Ntools.Passes.run_standard ~fuel:(4 * k.Bsuite.Kernels.fuel) m
  in
  List.iter
    (fun (e : Noelle.Pipeline.entry) ->
      match e.Noelle.Pipeline.eoutcome with
      | Noelle.Pipeline.Committed _ -> ()
      | o ->
        Alcotest.failf "%s: %s" e.Noelle.Pipeline.epass
          (Noelle.Pipeline.outcome_to_string o))
    report.Noelle.Pipeline.entries;
  checkb "final ok" report.Noelle.Pipeline.final_ok

let test_psim_replay_validation () =
  let k =
    match Bsuite.Kernels.find "histogram" with
    | Some k -> k
    | None -> Alcotest.fail "histogram kernel missing"
  in
  let fuel = 4 * k.Bsuite.Kernels.fuel in
  let original = Bsuite.Kernels.compile k in
  let m = Bsuite.Kernels.compile k in
  ignore (Ntools.Passes.run_standard ~fuel m);
  (match Psim.Runtime.replay_validate ~fuel ~original m with
  | Ok () -> ()
  | Error (msg, witness) ->
    Alcotest.failf "replay rejected: %s\n%s" msg (String.concat "\n" witness));
  (* and the negative: replaying against an original whose effects were
     reordered must fail even under the DOALL license, because both
     streams live in one task *)
  let bad_original = compile two_stores_src in
  ignore
    (Faultgen.inject ~kinds:Faultgen.observable_kinds ~seed:1 bad_original);
  match
    Psim.Runtime.replay_validate ~fuel:100_000 ~original:bad_original
      (compile two_stores_src)
  with
  | Ok () -> Alcotest.fail "replay accepted a reordered original"
  | Error _ -> ()

let test_counters_registered () =
  Noelle.Telemetry.install ();
  let names =
    Fun.protect
      ~finally:(fun () ->
        Noelle.Telemetry.uninstall ();
        Noelle.Telemetry.reset ())
      (fun () ->
        ignore (Obs.run ~fuel:100_000 (compile private_heap_src));
        let reference = [ ev (st "a" 1) ] in
        ignore (Obs.check ~license:Obs.Exact ~reference ~candidate:reference);
        List.map fst (Noelle.Telemetry.metrics ()))
  in
  List.iter
    (fun c -> checkb (c ^ " registered") (List.mem c names))
    [ "obs.events"; "obs.trace_compares" ]

let suite =
  [
    tc "obs: trace shape and escape filtering" test_trace_shape;
    tc "obs: exact check accepts the identity" test_exact_identity;
    tc "obs: exact check yields a minimal witness" test_exact_witness;
    tc "obs: trap class and fuel terminal" test_trap_class_and_fuel_terminal;
    tc "obs: license join laws" test_license_join;
    tc "obs: concurrent checker licenses and rejections" test_concurrent_check;
    tc "obs: planted reorder beats the legacy gate only"
      test_effect_reorder_old_gate_misses;
    tc "obs: 50-seed sweep, trace gate strictly stronger"
      test_fuzz_sweep_strictly_stronger;
    tc "obs: parallelizers clear the trace gate" test_parallelizers_pass_trace_gate;
    tc "obs: psim replay validation" test_psim_replay_validation;
    tc "obs: telemetry counters registered" test_counters_registered;
  ]
