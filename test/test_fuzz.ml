(** Differential fuzzing over generated micro programs (§2.4).

    Programs from {!Bsuite.Generator} are safe by construction, so every
    property can demand clean execution, a verifier pass, and bit-identical
    output after each transformation.  This is the reproduction of NOELLE's
    regression-test corpus: hundreds of machine-generated micro programs
    covering the code patterns the benchmark suites exhibit. *)

open Helpers

let fuel = 3_000_000

let compile_seed ?cfg seed =
  let src = Bsuite.Generator.program ?cfg seed in
  match Minic.Lower.compile ~name:(Printf.sprintf "fuzz%d" seed) src with
  | m -> (src, m)
  | exception e ->
    Alcotest.failf "seed %d failed to compile (%s):\n%s" seed
      (Printexc.to_string e) src

let reference seed =
  let src, m = compile_seed seed in
  match output ~fuel m with
  | out -> (src, out)
  | exception e ->
    Alcotest.failf "seed %d failed to run (%s):\n%s" seed (Printexc.to_string e) src

(** Run [transform] on a fresh module for each seed and compare outputs. *)
let differential ~name ~seeds transform =
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      (try transform m
       with e ->
         Alcotest.failf "seed %d: %s raised %s\n%s" seed name (Printexc.to_string e) src);
      (match Ir.Verify.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: %s broke the verifier: %s\n%s" seed name e src);
      let got =
        try output ~fuel m
        with e ->
          Alcotest.failf "seed %d: %s broke execution (%s)\n%s" seed name
            (Printexc.to_string e) src
      in
      if not (String.equal expected got) then
        Alcotest.failf "seed %d: %s changed the output (%s -> %s)\n%s" seed name
          expected got src)
    seeds

let seeds n = List.init n (fun i -> i + 1)

let test_generated_programs_run () =
  (* generation + compilation + execution is total over many seeds *)
  List.iter (fun s -> ignore (reference s)) (seeds 60)

let test_roundtrip () =
  List.iter
    (fun seed ->
      let _, m = compile_seed seed in
      let txt = Ir.Printer.module_str m in
      let m2 = Ir.Parser.parse_module txt in
      checks (Printf.sprintf "seed %d reprints identically" seed) txt
        (Ir.Printer.module_str m2))
    (seeds 40)

let test_licm () =
  differential ~name:"LICM" ~seeds:(seeds 30) (fun m ->
      let n = Noelle.create m in
      ignore (Ntools.Licm.run n m))

let test_licm_llvm () =
  differential ~name:"LICM-baseline" ~seeds:(seeds 30) (fun m ->
      ignore (Ntools.Licm_llvm.run m))

let test_rotate () =
  differential ~name:"rotate" ~seeds:(seeds 30) (fun m ->
      List.iter
        (fun f ->
          let nest = Ir.Loopnest.compute f in
          List.iter
            (fun l ->
              let ls = Noelle.Loopstructure.of_loop f l in
              ignore (Noelle.Loopbuilder.rotate f ls))
            nest.Ir.Loopnest.loops)
        (Ir.Irmod.defined_functions m))

let test_peel () =
  differential ~name:"peel" ~seeds:(seeds 30) (fun m ->
      List.iter
        (fun f ->
          let nest = Ir.Loopnest.compute f in
          match nest.Ir.Loopnest.loops with
          | l :: _ ->
            let ls = Noelle.Loopstructure.of_loop f l in
            ignore (Noelle.Loopbuilder.peel_first f ls)
          | [] -> ())
        (Ir.Irmod.defined_functions m))

let test_scheduler () =
  differential ~name:"scheduler" ~seeds:(seeds 30) (fun m ->
      let n = Noelle.create m in
      List.iter
        (fun f ->
          let sched = Noelle.scheduler n f in
          List.iter
            (fun bid ->
              Noelle.Scheduler.schedule_block sched bid ~priority:(fun i ->
                  - i.Ir.Instr.id))
            f.Ir.Func.blocks)
        (Ir.Irmod.defined_functions m))

let test_time_squeezer () =
  differential ~name:"time-squeezer" ~seeds:(seeds 20) (fun m ->
      let n = Noelle.create m in
      ignore (Ntools.Timesqueezer.run n m))

let test_coos () =
  (* COOS adds runtime calls; execution needs the tool runtime *)
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let n = Noelle.create m in
      ignore (Ntools.Coos.run n m ~budget:300 ());
      (match Ir.Verify.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: coos broke verifier: %s\n%s" seed e src);
      let _, out, _, rt = Ntools.Toolrt.run ~fuel m in
      checks (Printf.sprintf "seed %d: coos output" seed) expected (String.trim out);
      checkb "callbacks fired" (rt.Ntools.Toolrt.callbacks >= 0L))
    (seeds 20)

let test_carat () =
  (* CARAT adds runtime calls; execution needs the tool runtime *)
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let n = Noelle.create m in
      ignore (Ntools.Carat.run n m);
      (match Ir.Verify.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: carat broke verifier: %s\n%s" seed e src);
      let _, out, _, rt = Ntools.Toolrt.run ~fuel m in
      checks (Printf.sprintf "seed %d: carat output" seed) expected (String.trim out);
      checkb "no faults" (Int64.equal rt.Ntools.Toolrt.guard_faults 0L))
    (seeds 20)

let parallel_differential ~name apply =
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let p, _ = Noelle.Profiler.run ~fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      (try apply n m
       with e ->
         Alcotest.failf "seed %d: %s raised %s\n%s" seed name (Printexc.to_string e) src);
      (match Ir.Verify.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: %s broke verifier: %s\n%s" seed name e src);
      let got, _ =
        try run_parallel ~fuel:(4 * fuel) m
        with e ->
          Alcotest.failf "seed %d: %s broke execution (%s)\n%s" seed name
            (Printexc.to_string e) src
      in
      if not (String.equal expected got) then
        Alcotest.failf "seed %d: %s changed output (%s -> %s)\n%s" seed name expected
          got src)
    (seeds 25)

let test_doall_fuzz () =
  (* profitability thresholds off: transform everything transformable *)
  parallel_differential ~name:"DOALL" (fun n m ->
      ignore (Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ()))

let test_helix_fuzz () =
  parallel_differential ~name:"HELIX" (fun n m ->
      ignore (Ntools.Helix.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ()))

let test_dswp_fuzz () =
  parallel_differential ~name:"DSWP" (fun n m ->
      ignore (Ntools.Dswp.run n m ~min_hotness:0.0 ~min_work:0.0 ()))

let test_perspective_fuzz () =
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let p, _ = Noelle.Profiler.run ~fuel m in
      Noelle.Profiler.embed p m;
      Ntools.Perspective.profile_conflicts ~fuel m;
      let n = Noelle.create m in
      (try ignore (Ntools.Perspective.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ())
       with e ->
         Alcotest.failf "seed %d: PERS raised %s\n%s" seed (Printexc.to_string e) src);
      (match Ir.Verify.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: PERS broke verifier: %s\n%s" seed e src);
      let got, _ = run_parallel ~fuel:(4 * fuel) m in
      if not (String.equal expected got) then
        Alcotest.failf "seed %d: PERS changed output (%s -> %s)\n%s" seed expected got src)
    (seeds 15)

let test_pipeline_fuzz () =
  (* route fuzzed programs through the transactional pipeline: every pass
     of the standard stack commits or rolls back, and the surviving module
     must behave exactly like the original *)
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let report = Ntools.Passes.run_standard ~fuel:(4 * fuel) m in
      if not report.Noelle.Pipeline.final_ok then
        Alcotest.failf "seed %d: pipeline final module not ok\n%s\n%s" seed
          (Noelle.Pipeline.report_to_string report)
          src;
      let got, _ = run_parallel ~fuel:(4 * fuel) m in
      checks (Printf.sprintf "seed %d: pipeline output" seed) expected got)
    (seeds 10)

let test_pipeline_fuzz_injected () =
  (* same, with each pass's output deterministically corrupted: the gates
     must catch (or prove harmless) every fault *)
  List.iter
    (fun seed ->
      let src, expected = reference seed in
      let _, m = compile_seed seed in
      let report =
        Ntools.Passes.run_standard ~fuel:(4 * fuel) ~inject_seed:(31 * seed) m
      in
      if not report.Noelle.Pipeline.final_ok then
        Alcotest.failf "seed %d: injected pipeline final module not ok\n%s\n%s" seed
          (Noelle.Pipeline.report_to_string report)
          src;
      let got, _ = run_parallel ~fuel:(4 * fuel) m in
      checks (Printf.sprintf "seed %d: injected pipeline output" seed) expected got)
    (seeds 6)

let test_targeted_cfgs () =
  (* §2.4: "surgically generate tests that stress a specific aspect" *)
  let cfgs =
    [ ("reductions only",
       { Bsuite.Generator.default_cfg with allow_recurrences = false;
         allow_indirect = false; allow_ifs = false });
      ("recurrences only",
       { Bsuite.Generator.default_cfg with allow_indirect = false;
         allow_helpers = false });
      ("histogram style",
       { Bsuite.Generator.default_cfg with allow_recurrences = false;
         allow_helpers = false });
      ("deep nests", { Bsuite.Generator.default_cfg with max_depth = 3; iters = 8 });
    ]
  in
  List.iter
    (fun (label, cfg) ->
      List.iter
        (fun seed ->
          let src = Bsuite.Generator.program ~cfg seed in
          let m =
            try Minic.Lower.compile ~name:"targeted" src
            with e ->
              Alcotest.failf "%s seed %d compile: %s\n%s" label seed
                (Printexc.to_string e) src
          in
          let expected = output ~fuel m in
          let _, m2 = (src, Minic.Lower.compile ~name:"targeted" src) in
          let p, _ = Noelle.Profiler.run ~fuel m2 in
          Noelle.Profiler.embed p m2;
          let n = Noelle.create m2 in
          ignore (Ntools.Doall.run n m2 ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ());
          let got, _ = run_parallel ~fuel:(4 * fuel) m2 in
          checks (Printf.sprintf "%s seed %d" label seed) expected got)
        (seeds 8))
    cfgs

let suite =
  [
    tc "generated programs run" test_generated_programs_run;
    tc "generated round-trip" test_roundtrip;
    tc "fuzz LICM" test_licm;
    tc "fuzz LICM-baseline" test_licm_llvm;
    tc "fuzz rotate" test_rotate;
    tc "fuzz peel" test_peel;
    tc "fuzz scheduler" test_scheduler;
    tc "fuzz time-squeezer" test_time_squeezer;
    tc "fuzz coos" test_coos;
    tc "fuzz carat" test_carat;
    tc "fuzz DOALL" test_doall_fuzz;
    tc "fuzz HELIX" test_helix_fuzz;
    tc "fuzz DSWP" test_dswp_fuzz;
    tc "fuzz Perspective" test_perspective_fuzz;
    tc "fuzz transactional pipeline" test_pipeline_fuzz;
    tc "fuzz pipeline under injected faults" test_pipeline_fuzz_injected;
    tc "targeted generation (2.4)" test_targeted_cfgs;
  ]
