(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md §4 for the experiment index and
    EXPERIMENTS.md for paper-vs-measured numbers).

    Usage:
      dune exec bench/main.exe                 # all sections
      dune exec bench/main.exe -- figure5      # one section
      dune exec bench/main.exe -- --emit-test-script  # write run_all_tests.sh
      dune exec bench/main.exe -- --json figure3      # + BENCH_figure3.json
    Sections: table1 table2 table3 table4 figure3 figure4 iv figure5 spec
    dead bechamel *)

let ncores = 12
let arch = Noelle.Arch.measure ~physical_cores:ncores ()

let banner title = Printf.printf "\n== %s ==\n" title

(* ------------------------------------------------------------------ *)
(* --json: machine-readable benchmark rows                              *)
(* ------------------------------------------------------------------ *)

(** With [--json], instrumented sections also write BENCH_<section>.json:
    one row per benchmark with wall-clock ms, the telemetry-counter
    deltas (PDG queries, Andersen constraints, psim cycles, ...) its run
    produced, and any gauges it set (derived rates and percentiles —
    kept out of the counter namespace so [--compare] can hold counters
    to exact equality while giving wall-dependent gauges a ratio
    tolerance). *)
let json_mode = ref false

type row = {
  rname : string;
  rwall_ms : float;
  rcounters : (string * int64) list;  (** deltas over the row's run *)
  rgauges : (string * float) list;  (** gauges set/changed by the row *)
}

let json_rows : row list ref = ref []

(** Run one benchmark body, recording a JSON row when [--json] is on. *)
let bench_row name f =
  if not !json_mode then f ()
  else begin
    let before = Ir.Trace.counters () in
    let gbefore = Ir.Trace.gauges () in
    let x, ms = Ir.Trace.time_ms f in
    let deltas =
      List.filter_map
        (fun (k, v) ->
          let v0 = Option.value ~default:0L (List.assoc_opt k before) in
          if Int64.compare v v0 > 0 then Some (k, Int64.sub v v0) else None)
        (Ir.Trace.counters ())
    in
    let gauges =
      List.filter
        (fun (k, v) -> List.assoc_opt k gbefore <> Some v)
        (Ir.Trace.gauges ())
    in
    json_rows :=
      { rname = name; rwall_ms = ms; rcounters = deltas; rgauges = gauges }
      :: !json_rows;
    x
  end

let q s = "\"" ^ Ir.Trace.json_escape s ^ "\""

let row_to_json (r : row) =
  Printf.sprintf "{\"name\":%s,\"wall_ms\":%.3f,\"counters\":{%s},\"gauges\":{%s}}"
    (q r.rname) r.rwall_ms
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%Ld" (q k) v) r.rcounters))
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%.3f" (q k) v) r.rgauges))

(* ------------------------------------------------------------------ *)
(* --compare: bench-history regression gate                            *)
(* ------------------------------------------------------------------ *)

(** With [--compare], sections run fresh and are diffed against the
    checked-in BENCH_<section>.json baselines instead of overwriting
    them: counters must match exactly (they are deterministic functions
    of the seeded workloads) unless explained by the allowlist; wall
    clock and gauges get a generous ratio tolerance (they measure the
    machine, not the algorithm).  Any failure exits non-zero — this is
    [make bench-regress]. *)
let compare_mode = ref false

let compare_failures : string list ref = ref []

(** Counter prefixes exempt from exact comparison: bench-derived rates
    that older baselines recorded in the counter namespace. *)
let explained_counters = [ "serve.bench." ]

(* wall/gauge tolerances: CI machines differ, the gate is for
   asymptotics; rows/values under the floor are too small to compare *)
let wall_ratio_tol = 8.0
let wall_floor_ms = 20.0
let gauge_ratio_tol = 8.0
let gauge_floor = 50.0

let load_baseline section : (string * (float * (string * int64) list * (string * float) list)) list option =
  let file = Printf.sprintf "BENCH_%s.json" section in
  if not (Sys.file_exists file) then None
  else begin
    let module J = Ir.Trace.Json in
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let doc = J.parse s in
    let rows =
      Option.bind (J.member "benchmarks" doc) J.to_list
      |> Option.value ~default:[]
    in
    Some
      (List.filter_map
         (fun r ->
           match Option.bind (J.member "name" r) J.to_string with
           | None -> None
           | Some name ->
             let wall =
               Option.value ~default:0.0
                 (Option.bind (J.member "wall_ms" r) J.to_num)
             in
             let nums field =
               match J.member field r with
               | Some (J.Obj kvs) ->
                 List.filter_map
                   (fun (k, v) ->
                     Option.map (fun f -> (k, f)) (J.to_num v))
                   kvs
               | _ -> []
             in
             let counters =
               List.map (fun (k, f) -> (k, Int64.of_float f)) (nums "counters")
             in
             Some (name, (wall, counters, nums "gauges")))
         rows)
  end

let is_explained k =
  List.exists
    (fun p ->
      String.length k >= String.length p && String.sub k 0 (String.length p) = p)
    explained_counters

(** p999 of a few-hundred-sample histogram is literally the slowest
    request — one GC pause or disk hiccup moves it 30x.  Keep it in the
    baseline (structural presence still checked) but exempt it from the
    ratio comparison. *)
let gauge_ratio_exempt k =
  let suf = "p999_us" in
  String.length k >= String.length suf
  && String.sub k (String.length k - String.length suf) (String.length suf)
     = suf

let ratio_ok ~tol ~floor a b =
  (a <= floor && b <= floor)
  || (a > 0.0 && b > 0.0 && a /. b <= tol && b /. a <= tol)

(** Diff fresh rows against a baseline; returns human-readable failures. *)
let diff_rows ~section (fresh : row list)
    (base : (string * (float * (string * int64) list * (string * float) list)) list)
    : string list =
  let fails = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> fails := Printf.sprintf "%s: %s" section s :: !fails) fmt
  in
  List.iter
    (fun (r : row) ->
      match List.assoc_opt r.rname base with
      | None -> fail "row %s missing from baseline (new benchmark? refresh with make bench-json)" r.rname
      | Some (bwall, bcounters, bgauges) ->
        (* counters: exact both directions, unless explained *)
        List.iter
          (fun (k, v) ->
            if not (is_explained k) then
              match List.assoc_opt k bcounters with
              | Some bv when Int64.equal bv v -> ()
              | Some bv ->
                fail "%s counter %s: baseline %Ld, now %Ld" r.rname k bv v
              | None -> fail "%s counter %s appeared (now %Ld)" r.rname k v)
          r.rcounters;
        List.iter
          (fun (k, bv) ->
            if (not (is_explained k)) && List.assoc_opt k r.rcounters = None
            then fail "%s counter %s disappeared (baseline %Ld)" r.rname k bv)
          bcounters;
        (* wall: ratio tolerance *)
        if not (ratio_ok ~tol:wall_ratio_tol ~floor:wall_floor_ms bwall r.rwall_ms)
        then
          fail "%s wall %.1fms vs baseline %.1fms (> %.0fx)" r.rname r.rwall_ms
            bwall wall_ratio_tol;
        (* gauges: ratio tolerance; appearing/disappearing is structural *)
        List.iter
          (fun (k, v) ->
            match List.assoc_opt k bgauges with
            | Some _ when gauge_ratio_exempt k -> ()
            | Some bv when ratio_ok ~tol:gauge_ratio_tol ~floor:gauge_floor bv v
              -> ()
            | Some bv -> fail "%s gauge %s: %.1f vs baseline %.1f" r.rname k v bv
            | None -> fail "%s gauge %s appeared" r.rname k)
          r.rgauges;
        List.iter
          (fun (k, _) ->
            if List.assoc_opt k r.rgauges = None then
              fail "%s gauge %s disappeared" r.rname k)
          bgauges)
    fresh;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (r : row) -> r.rname = name) fresh) then
        fail "row %s in baseline but not produced by this run" name)
    base;
  List.rev !fails

(** The comparator must actually be able to fail: inject a one-count
    counter regression into the fresh rows and demand detection. *)
let self_check ~section (fresh : row list)
    (base : (string * (float * (string * int64) list * (string * float) list)) list)
    : string list =
  match fresh with
  | [] -> []
  | r0 :: rest ->
    (* a synthetic counter the baseline cannot contain: its appearance
       must always be flagged, and it cannot coincidentally cancel a
       real regression the way perturbing an existing counter could *)
    let perturbed =
      { r0 with rcounters = ("bench.selfcheck.injected", 1L) :: r0.rcounters }
    in
    if diff_rows ~section (perturbed :: rest) base = [] then
      [ Printf.sprintf
          "%s: SELF-CHECK FAILED: injected counter regression not detected"
          section ]
    else []

let finish_section section =
  if !json_mode then begin
    let rows = List.rev !json_rows in
    json_rows := [];
    if rows <> [] then
      if !compare_mode then begin
        match load_baseline section with
        | None ->
          compare_failures :=
            Printf.sprintf "%s: no checked-in BENCH_%s.json baseline" section
              section
            :: !compare_failures
        | Some base ->
          let fails = diff_rows ~section rows base @ self_check ~section rows base in
          compare_failures := List.rev_append fails !compare_failures;
          Printf.printf "  compare %s: %d rows vs BENCH_%s.json — %s\n" section
            (List.length rows) section
            (if fails = [] then "ok (self-check armed)"
             else Printf.sprintf "%d FAILURES" (List.length fails))
      end
      else begin
        let file = Printf.sprintf "BENCH_%s.json" section in
        let oc = open_out file in
        Printf.fprintf oc "{\"section\":%s,\"benchmarks\":[%s]}\n" (q section)
          (String.concat "," (List.map row_to_json rows));
        close_out oc;
        Printf.printf "  wrote %s (%d rows)\n" file (List.length rows)
      end
  end

(* ------------------------------------------------------------------ *)
(* LoC counting (tables 1-3)                                           *)
(* ------------------------------------------------------------------ *)

(** Count non-blank lines of a source file; returns 0 when the source
    tree is not available (running outside the repo). *)
let loc path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let l = String.trim (input_line ic) in
         if String.length l > 0 then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let find_root () =
  let rec up d k =
    if k = 0 then None
    else if Sys.file_exists (Filename.concat d "lib/core/pdg.ml") then Some d
    else up (Filename.concat d "..") (k - 1)
  in
  up "." 6

let table1 () =
  banner "Table 1: NOELLE's abstractions (measured LoC of this reproduction)";
  match find_root () with
  | None -> print_endline "  (source tree not found; skipping LoC count)"
  | Some root ->
    let abstractions =
      [ ("PDG", [ "depgraph.ml"; "pdg.ml" ], "-");
        ("aSCCDAG", [ "sccdag.ml"; "ascc.ml" ], "PDG");
        ("Call graph (CG)", [ "callgraph.ml" ], "PDG");
        ("Environment (ENV)", [ "env.ml" ], "PDG");
        ("Task (T)", [ "task.ml" ], "ENV");
        ("Data-flow engine (DFE)", [ "dfe.ml" ], "-");
        ("Loop structure (LS)", [ "loopstructure.ml" ], "-");
        ("Profiler (PRO)", [ "profiler.ml" ], "LS");
        ("Scheduler (SCD)", [ "scheduler.ml" ], "PDG, LS, DFE");
        ("Invariant (INV)", [ "invariants.ml" ], "PDG, LS");
        ("Induction variable (IV)", [ "indvars.ml" ], "LS, INV, aSCCDAG");
        ("IV stepper (IVS)", [ "ivstepper.ml" ], "LS, INV, IV");
        ("Reduction (RD)", [ "reduction.ml" ], "aSCCDAG, INV, IV");
        ("Loop (L)", [ "loop.ml" ], "LS, PDG, IV, INV, aSCCDAG, RD");
        ("Forest (FR)", [ "forest.ml" ], "L, CG");
        ("Loop builder (LB)", [ "loopbuilder.ml" ], "FR, L, DFE, IV, IVS, INV");
        ("Islands (ISL)", [ "islands.ml" ], "PDG, CG");
        ("Architecture (AR)", [ "arch.ml" ], "-");
        ("Baselines (Alg.1, LLVM IV)", [ "invariants_llvm.ml"; "indvars_llvm.ml" ], "-");
        ("Manager (noelle-load layer)", [ "noelle.ml" ], "-");
      ]
    in
    let total = ref 0 in
    Printf.printf "  %-34s %6s  %s\n" "Abstraction" "LoC" "Depends on";
    List.iter
      (fun (name, files, deps) ->
        let n =
          List.fold_left
            (fun acc file -> acc + loc (Filename.concat root ("lib/core/" ^ file)))
            0 files
        in
        total := !total + n;
        Printf.printf "  %-34s %6d  %s\n" name n deps)
      abstractions;
    Printf.printf "  %-34s %6d\n" "TOTAL (paper: 26142)" !total

let table2 () =
  banner "Table 2: NOELLE's tools (measured LoC)";
  match find_root () with
  | None -> print_endline "  (source tree not found; skipping)"
  | Some root ->
    let tools =
      [ ("noelle-whole-IR", "bin/noelle_whole_ir.ml");
        ("noelle-rm-lc-dependences", "bin/noelle_rm_lc_deps.ml");
        ("noelle-prof-coverage", "bin/noelle_prof_coverage.ml");
        ("noelle-meta-prof-embed", "bin/noelle_meta_prof_embed.ml");
        ("noelle-meta-pdg-embed", "bin/noelle_meta_pdg_embed.ml");
        ("noelle-meta-clean", "bin/noelle_meta_clean.ml");
        ("noelle-load", "bin/noelle_load.ml");
        ("noelle-arch", "bin/noelle_arch.ml");
        ("noelle-linker", "bin/noelle_linker.ml");
        ("noelle-bin", "bin/noelle_bin.ml");
        ("(frontend) minicc", "bin/minicc.ml");
      ]
    in
    let total = ref 0 in
    List.iter
      (fun (name, file) ->
        let n = loc (Filename.concat root file) in
        total := !total + n;
        Printf.printf "  %-28s %6d\n" name n)
      tools;
    Printf.printf "  %-28s %6d  (paper total: 5143)\n" "TOTAL" !total

let table3 () =
  banner "Table 3: custom tools, LoC with NOELLE (paper LLVM-only baselines cited)";
  match find_root () with
  | None -> print_endline "  (source tree not found; skipping)"
  | Some root ->
    (* paper's LLVM-only LoC per tool; our measured NOELLE-based LoC *)
    let rows =
      [ ("Time Squeezer (TIME)", [ "timesqueezer.ml" ], 510);
        ("Compiler-based timing (COOS)", [ "coos.ml" ], 1641);
        ("Loop Invariant Code Motion (LICM)", [ "licm.ml" ], 2317);
        ("DOALL", [ "doall.ml" ], 5512);
        ("Dead Function Elimination (DEAD)", [ "deadfunc.ml" ], 7512);
        ("DSWP", [ "dswp.ml" ], 8525);
        ("HELIX", [ "helix.ml" ], 15453);
        ("PRVJeeves (PRVJ)", [ "prvjeeves.ml" ], 17863);
        ("CARAT", [ "carat.ml" ], 21899);
        ("Perspective (PERS)", [ "perspective.ml" ], 33998);
      ]
    in
    Printf.printf "  %-36s %10s %8s %10s\n" "Custom tool" "paper-LLVM" "NOELLE" "reduction";
    List.iter
      (fun (name, files, llvm_loc) ->
        let n =
          List.fold_left
            (fun acc f -> acc + loc (Filename.concat root ("lib/tools/" ^ f)))
            0 files
        in
        Printf.printf "  %-36s %10d %8d %9.1f%%\n" name llvm_loc n
          (100.0 *. float_of_int (llvm_loc - n) /. float_of_int llvm_loc))
      rows;
    (* the one pair we implemented both ways in this repo *)
    let licm_llvm =
      loc (Filename.concat root "lib/tools/licm_llvm.ml")
      + loc (Filename.concat root "lib/core/invariants_llvm.ml")
    in
    let licm_noelle = loc (Filename.concat root "lib/tools/licm.ml") in
    Printf.printf
      "  in-repo pair: LICM baseline (alg.1 + driver) %d vs NOELLE %d LoC (-%.1f%%)\n"
      licm_llvm licm_noelle
      (100.0 *. float_of_int (licm_llvm - licm_noelle) /. float_of_int licm_llvm)

(* ------------------------------------------------------------------ *)
(* Table 4: abstraction-usage matrix, measured                          *)
(* ------------------------------------------------------------------ *)

let table4 () =
  banner "Table 4: abstractions requested per custom tool (measured by the manager)";
  (* run every tool over a representative module under one manager *)
  let k = Option.get (Bsuite.Kernels.find "ferret") in
  let mk () =
    let m = Bsuite.Kernels.compile k in
    let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
    Noelle.Profiler.embed p m;
    m
  in
  let usage : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let collect (n : Noelle.t) =
    List.iter (fun p -> Hashtbl.replace usage p ()) (Noelle.usage_pairs n)
  in
  let with_tool f = let m = mk () in let n = Noelle.create m in f n m; collect n in
  with_tool (fun n m -> ignore (Ntools.Doall.run n m ~ncores ()));
  with_tool (fun n m -> ignore (Ntools.Helix.run n m ~ncores ()));
  with_tool (fun n m -> ignore (Ntools.Dswp.run n m ()));
  with_tool (fun n m -> ignore (Ntools.Licm.run n m));
  with_tool (fun n m -> ignore (Ntools.Deadfunc.run n m ()));
  with_tool (fun n m -> ignore (Ntools.Carat.run n m));
  with_tool (fun n m -> ignore (Ntools.Coos.run n m ()));
  with_tool (fun n m -> ignore (Ntools.Timesqueezer.run n m));
  with_tool (fun n m -> ignore (Ntools.Prvjeeves.run n m ()));
  with_tool (fun n m ->
      Ntools.Perspective.profile_conflicts ~fuel:k.Bsuite.Kernels.fuel m;
      ignore (Ntools.Perspective.run n m ~ncores ()));
  let tools = [ "HELIX"; "DSWP"; "CARAT"; "COOS"; "PRVJ"; "DOALL"; "LICM"; "TIME"; "DEAD"; "PERS" ] in
  let abstractions =
    [ "PDG"; "aSCCDAG"; "CG"; "ENV"; "T"; "DFE"; "PRO"; "SCD"; "L"; "LB"; "IV";
      "IVS"; "INV"; "FR"; "ISL"; "RD"; "AR"; "LS" ]
  in
  Printf.printf "  %-6s" "tool";
  List.iter (fun a -> Printf.printf " %-7s" a) abstractions;
  print_newline ();
  List.iter
    (fun t ->
      Printf.printf "  %-6s" t;
      List.iter
        (fun a -> Printf.printf " %-7s" (if Hashtbl.mem usage (t, a) then "x" else ""))
        abstractions;
      print_newline ())
    tools;
  (* the paper's headline: every abstraction used by more than one tool *)
  let users a = List.length (List.filter (fun t -> Hashtbl.mem usage (t, a)) tools) in
  let multi = List.filter (fun a -> users a >= 2) abstractions in
  Printf.printf "  abstractions used by >= 2 tools: %d / %d\n" (List.length multi)
    (List.length abstractions)

(* ------------------------------------------------------------------ *)
(* Figures 3 / 4 and the 4.3 IV experiment                              *)
(* ------------------------------------------------------------------ *)

let corpus () =
  List.filter
    (fun (k : Bsuite.Kernels.kernel) -> k.Bsuite.Kernels.kname <> "deadcalls")
    Bsuite.Kernels.all

let figure3 () =
  banner "Figure 3: % of potential memory dependences disproved (LLVM-AA vs NOELLE)";
  Printf.printf "  %-14s %-8s %10s %10s\n" "benchmark" "suite" "LLVM" "NOELLE";
  let bsum = ref 0.0 and nsum = ref 0.0 and cnt = ref 0 in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      bench_row k.Bsuite.Kernels.kname @@ fun () ->
      let m = Bsuite.Kernels.compile k in
      let rate ?pts stack =
        let tot = ref 0 and dis = ref 0 in
        List.iter
          (fun f ->
            let p = Noelle.Pdg.build ?pts ~stack m f in
            tot := !tot + p.Noelle.Pdg.mem_pairs_total;
            dis := !dis + p.Noelle.Pdg.mem_pairs_disproved)
          (Ir.Irmod.defined_functions m);
        if !tot = 0 then 1.0 else float_of_int !dis /. float_of_int !tot
      in
      let b = rate Ir.Andersen.baseline_stack in
      (* the NOELLE arm shares one points-to solution between the alias
         stack and the PDG builder's bucketing/memoization layer *)
      let a = Ir.Andersen.analyze m in
      let n = rate ~pts:a [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
      bsum := !bsum +. b;
      nsum := !nsum +. n;
      incr cnt;
      Printf.printf "  %-14s %-8s %9.1f%% %9.1f%%\n" k.Bsuite.Kernels.kname
        (Bsuite.Kernels.suite_name k.Bsuite.Kernels.suite)
        (100.0 *. b) (100.0 *. n))
    (corpus ());
  Printf.printf "  %-14s %-8s %9.1f%% %9.1f%%\n" "AVERAGE" ""
    (100.0 *. !bsum /. float_of_int !cnt)
    (100.0 *. !nsum /. float_of_int !cnt);
  (* two whole-corpus rows isolating the bucketing win: identical NOELLE
     stack, PDGs built with and without the points-to classes, so the
     pdg.alias_queries delta of each row is directly comparable *)
  if !json_mode then begin
    let sweep name pts_on =
      bench_row name @@ fun () ->
      List.iter
        (fun (k : Bsuite.Kernels.kernel) ->
          let m = Bsuite.Kernels.compile k in
          let a = Ir.Andersen.analyze m in
          let stack = [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
          let pts = if pts_on then Some a else None in
          List.iter
            (fun f -> ignore (Noelle.Pdg.build ?pts ~stack m f))
            (Ir.Irmod.defined_functions m))
        (corpus ())
    in
    sweep "corpus-unbucketed" false;
    sweep "corpus-bucketed" true
  end

let figure4 () =
  banner "Figure 4: loop invariants found (LLVM Algorithm 1 vs NOELLE Algorithm 2)";
  Printf.printf "  %-14s %-8s %8s %8s\n" "benchmark" "suite" "LLVM" "NOELLE";
  let t1 = ref 0 and t2 = ref 0 in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      bench_row k.Bsuite.Kernels.kname @@ fun () ->
      let m = Bsuite.Kernels.compile k in
      let n = Noelle.create m in
      let c1 = ref 0 and c2 = ref 0 in
      List.iter
        (fun f ->
          List.iter
            (fun lp ->
              let ls = Noelle.Loop.structure lp in
              c1 := !c1 + Noelle.Invariants_llvm.count m ls;
              c2 := !c2 + Noelle.Invariants.count (Noelle.invariants n lp))
            (Noelle.loops n f))
        (Ir.Irmod.defined_functions m);
      t1 := !t1 + !c1;
      t2 := !t2 + !c2;
      Printf.printf "  %-14s %-8s %8d %8d\n" k.Bsuite.Kernels.kname
        (Bsuite.Kernels.suite_name k.Bsuite.Kernels.suite) !c1 !c2)
    (corpus ());
  Printf.printf "  %-14s %-8s %8d %8d\n" "TOTAL" "" !t1 !t2

let iv_experiment () =
  banner "Section 4.3: governing induction variables (LLVM detector vs NOELLE)";
  let t1 = ref 0 and t2 = ref 0 and loops = ref 0 in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let m = Bsuite.Kernels.compile k in
      let n = Noelle.create m in
      List.iter
        (fun f ->
          List.iter
            (fun lp ->
              incr loops;
              let ls = Noelle.Loop.structure lp in
              t1 := !t1 + Noelle.Indvars_llvm.governing_count ls;
              if Noelle.Indvars.governing_iv (Noelle.induction_variables n lp) <> None
              then incr t2)
            (Noelle.loops n f))
        (Ir.Irmod.defined_functions m))
    (corpus ());
  Printf.printf "  loops analyzed: %d\n" !loops;
  Printf.printf "  governing IVs, LLVM-style detector (do-while only): %d\n" !t1;
  Printf.printf "  governing IVs, NOELLE (SCC-based, any shape):       %d\n" !t2;
  Printf.printf "  (paper: 11 vs 385 over 41 benchmarks)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: parallelization speedups                                   *)
(* ------------------------------------------------------------------ *)

let speedup_of (k : Bsuite.Kernels.kernel) apply =
  let fuel = k.Bsuite.Kernels.fuel in
  let m = Bsuite.Kernels.compile k in
  let _, ref_out, seq = Psim.Runtime.run_sequential ~fuel m in
  let p, _ = Noelle.Profiler.run ~fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  let transformed = apply n m in
  if not transformed then (1.0, true)
  else begin
    Ir.Verify.verify_module m;
    let _, out, par, _ = Psim.Runtime.run ~fuel:(4 * fuel) ~arch m in
    (Int64.to_float seq /. Int64.to_float par, String.equal out ref_out)
  end

let any_ok results = List.exists (fun (_, r) -> Result.is_ok r) results

(** Modeled vec speedup for one kernel: vectorize every vectorizable
    loop (forced with [~only_best:false] — the per-technique comparison
    wants the vec number even where DOALL wins), score each widened loop
    with the Psim SIMD model at its static trip count (profiled average
    iterations when {!Ir.Bounds} has no constant), and fold the per-loop
    speedups through Amdahl over each loop's profiled hotness.  Returns
    (speedup, any loop needed if-conversion). *)
let vec_speedup_of (k : Bsuite.Kernels.kernel) =
  let fuel = k.Bsuite.Kernels.fuel in
  let m = Bsuite.Kernels.compile k in
  let p, _ = Noelle.Profiler.run ~fuel m in
  Noelle.Profiler.embed p m;
  let n = Noelle.create m in
  (* per-loop profile of the pristine module, keyed by loop id: the
     transform reshapes the loops, the profile describes the originals *)
  let profile = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun lp ->
          let ls = Noelle.Loop.structure lp in
          Hashtbl.replace profile (Noelle.Loop.id lp)
            ( Noelle.Profiler.loop_hotness m ls,
              Noelle.Profiler.loop_avg_iterations m ls ))
        (Noelle.loops n f))
    (Ir.Irmod.defined_functions m);
  let outcomes = Ntools.Vec.run n m ~only_best:false () in
  let terms =
    List.filter_map
      (fun (id, r) ->
        match (r, Hashtbl.find_opt profile id) with
        | Ok (s : Ntools.Vec.stats), Some (h, avg) when h > 0.0 ->
          let iters =
            match s.Ntools.Vec.trip with
            | Some t -> float_of_int t
            | None -> Float.max 1.0 avg
          in
          let vt =
            Psim.Models.vec_time
              { Psim.Models.default_vec_params with
                Psim.Models.width = s.Ntools.Vec.width }
              ~iters ~work:s.Ntools.Vec.body_cost
              ~divergence:s.Ntools.Vec.divergence
              ~strided_mem_ops:s.Ntools.Vec.strided_mem_ops
              ~stride:s.Ntools.Vec.stride
          in
          let scalar = iters *. s.Ntools.Vec.body_cost in
          if vt > 0.0 && scalar > 0.0 then Some (h, scalar /. vt) else None
        | _ -> None)
      outcomes
  in
  let ifc =
    List.exists
      (fun (_, r) ->
        match r with
        | Ok (s : Ntools.Vec.stats) -> s.Ntools.Vec.if_converted
        | Error _ -> false)
      outcomes
  in
  if terms = [] then (1.0, ifc)
  else begin
    let covered =
      Float.min 1.0 (List.fold_left (fun a (h, _) -> a +. h) 0.0 terms)
    in
    let slowdown = List.fold_left (fun a (h, s) -> a +. (h /. s)) 0.0 terms in
    (1.0 /. ((1.0 -. covered) +. slowdown), ifc)
  end

let figure5 () =
  banner "Figure 5: speedups on 12 simulated cores (PARSEC + MiBench + SPEC)";
  Printf.printf "  %-14s %8s %8s %8s %8s %8s\n" "benchmark" "gcc/icc" "DOALL"
    "HELIX" "DSWP" "VEC";
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      bench_row k.Bsuite.Kernels.kname @@ fun () ->
      let m0 = Bsuite.Kernels.compile k in
      let baseline_ok = Ntools.Autopar_baseline.(parallelized (run m0)) > 0 in
      let s_doall, ok1 =
        speedup_of k (fun n m -> any_ok (Ntools.Doall.run n m ~ncores ()))
      in
      let s_helix, ok2 =
        speedup_of k (fun n m -> any_ok (Ntools.Helix.run n m ~ncores ()))
      in
      let s_dswp, ok3 =
        speedup_of k (fun n m -> any_ok (Ntools.Dswp.run n m ()))
      in
      let s_vec, ifc = vec_speedup_of k in
      let name = k.Bsuite.Kernels.kname in
      List.iter
        (fun (tech, v) ->
          Ir.Trace.set_gauge (Printf.sprintf "fig5.%s.%s" name tech) v)
        [ ("doall", s_doall); ("helix", s_helix); ("dswp", s_dswp);
          ("vec", s_vec) ];
      Printf.printf "  %-14s %8s %8.2f %8.2f %8.2f %8.2f%s%s\n" name
        (if baseline_ok then "some" else "1.00")
        s_doall s_helix s_dswp s_vec
        (if ifc then "  [if-conv]" else "")
        (if ok1 && ok2 && ok3 then "" else "  [OUTPUT MISMATCH]"))
    (corpus ())

let spec_experiment () =
  banner "Section 4.4: SPEC-like benchmarks";
  Printf.printf "  %-14s %8s %8s %8s\n" "benchmark" "DOALL" "HELIX" "DSWP";
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      if k.Bsuite.Kernels.suite = Bsuite.Kernels.Spec then begin
        let s1, _ = speedup_of k (fun n m -> any_ok (Ntools.Doall.run n m ~ncores ())) in
        let s2, _ = speedup_of k (fun n m -> any_ok (Ntools.Helix.run n m ~ncores ())) in
        let s3, _ = speedup_of k (fun n m -> any_ok (Ntools.Dswp.run n m ())) in
        Printf.printf "  %-14s %8.2f %8.2f %8.2f\n" k.Bsuite.Kernels.kname s1 s2 s3
      end)
    (corpus ())

(* ------------------------------------------------------------------ *)
(* Section 4.5: Dead function elimination                               *)
(* ------------------------------------------------------------------ *)

(** Small utility library linked into every benchmark; partly unused, as
    real programs' libraries are — the head-room DEAD reclaims. *)
let libmini =
  {|
int lib_abs(int x) { if (x < 0) return -x; return x; }
int lib_min(int a, int b) { if (a < b) return a; return b; }
int lib_max(int a, int b) { if (a > b) return a; return b; }
int lib_gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
|}

let dead_experiment () =
  banner "Section 4.5: DeadFunctionElimination binary-size reduction";
  let reductions = ref [] in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      bench_row k.Bsuite.Kernels.kname @@ fun () ->
      let m = Bsuite.Kernels.compile k in
      let lib = Minic.Lower.compile ~name:"libmini" libmini in
      let whole = Ir.Linker.link ~name:k.Bsuite.Kernels.kname [ m; lib ] in
      let n = Noelle.create whole in
      let s = Ntools.Deadfunc.run n whole () in
      let r = Ntools.Deadfunc.reduction s in
      reductions := r :: !reductions;
      Printf.printf "  %-14s removed %2d functions, -%4.1f%% instructions\n"
        k.Bsuite.Kernels.kname
        (List.length s.Ntools.Deadfunc.removed)
        r)
    (corpus ());
  let avg =
    List.fold_left ( +. ) 0.0 !reductions /. float_of_int (List.length !reductions)
  in
  Printf.printf "  AVERAGE: -%.1f%% (paper: -6.3%%)\n" avg

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: demand-driven construction costs           *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  banner "Bechamel: abstraction construction cost (demand-driven claim)";
  let open Bechamel in
  let k = Option.get (Bsuite.Kernels.find "dijkstra") in
  let m = Bsuite.Kernels.compile k in
  let main = Ir.Irmod.func m "main" in
  let andersen = Ir.Andersen.analyze m in
  let pdg = Noelle.Pdg.build ~stack:(Ir.Andersen.noelle_stack m) m main in
  let nest = Ir.Loopnest.compute main in
  let tests =
    Test.make_grouped ~name:"noelle"
      [
        Test.make ~name:"loopnest(LS)" (Staged.stage (fun () -> Ir.Loopnest.compute main));
        Test.make ~name:"dominators" (Staged.stage (fun () -> Ir.Dom.compute main));
        Test.make ~name:"pdg-baseline"
          (Staged.stage (fun () ->
               Noelle.Pdg.build ~stack:Ir.Andersen.baseline_stack m main));
        Test.make ~name:"pdg-noelle"
          (Staged.stage (fun () ->
               Noelle.Pdg.build
                 ~stack:[ Ir.Alias.baseline; Ir.Andersen.analysis andersen ]
                 m main));
        Test.make ~name:"andersen" (Staged.stage (fun () -> Ir.Andersen.analyze m));
        Test.make ~name:"loop-dg+sccdag"
          (Staged.stage (fun () ->
               let l = List.hd nest.Ir.Loopnest.loops in
               Noelle.Sccdag.build (Noelle.Pdg.loop_dg pdg l)));
        Test.make ~name:"callgraph"
          (Staged.stage (fun () -> Noelle.Callgraph.build ~pts:andersen m));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (List.hd instances) raw in
  Hashtbl.fold (fun name res acc -> (name, res) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, res) ->
         match Analyze.OLS.estimates res with
         | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
         | _ -> Printf.printf "  %-28s (no estimate)\n" name)

(* ------------------------------------------------------------------ *)
(* Perspective: speculation + memory-object cloning                      *)
(* ------------------------------------------------------------------ *)

let pers_experiment () =
  banner "Perspective (4.4 port + memory-object cloning extension)";
  List.iter
    (fun name ->
      let k = Option.get (Bsuite.Kernels.find name) in
      let fuel = k.Bsuite.Kernels.fuel in
      let m0 = Bsuite.Kernels.compile k in
      let _, ref_out, seq = Psim.Runtime.run_sequential ~fuel m0 in
      let m = Bsuite.Kernels.compile k in
      let p, _ = Noelle.Profiler.run ~fuel m in
      Noelle.Profiler.embed p m;
      Ntools.Perspective.profile_conflicts ~fuel m;
      let n = Noelle.create m in
      let results = Ntools.Perspective.run n m ~ncores () in
      let ok = List.filter_map (fun (_, r) -> Result.to_option r) results in
      if ok = [] then Printf.printf "  %-12s no eligible loop\n" name
      else begin
        let spec = List.fold_left (fun a s -> a + s.Ntools.Perspective.speculated_edges) 0 ok in
        let cloned =
          List.concat_map (fun s -> s.Ntools.Perspective.cloned_objects) ok
        in
        let _, out, par, _ = Psim.Runtime.run ~fuel:(4 * fuel) ~arch m in
        Printf.printf
          "  %-12s speedup %5.2f  (speculated %d edges, cloned objects: %s)%s\n"
          name
          (Int64.to_float seq /. Int64.to_float par)
          spec
          (if cloned = [] then "none" else String.concat " " cloned)
          (if String.equal out ref_out then "" else "  [OUTPUT MISMATCH]")
      end)
    [ "histogram"; "blocksort" ]

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                     *)
(* ------------------------------------------------------------------ *)

(** HELIX is chained by the core-to-core signal latency (its sequential
    segments hand off once per iteration): sweep the latency and watch the
    speedup collapse — the trade-off §3 describes and AR exists to
    measure. *)
let ablation_helix_latency () =
  banner "Ablation: HELIX speedup vs core-to-core latency (swaptions)";
  let k = Option.get (Bsuite.Kernels.find "swaptions") in
  let fuel = k.Bsuite.Kernels.fuel in
  let m0 = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel m0 in
  List.iter
    (fun lat ->
      let m = Bsuite.Kernels.compile k in
      let p, _ = Noelle.Profiler.run ~fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      ignore (Ntools.Helix.run n m ~ncores ());
      let a = Noelle.Arch.measure ~physical_cores:ncores () in
      let a =
        { a with
          Noelle.Arch.latency =
            Array.map (Array.map (fun l -> if l = 0 then 0 else lat)) a.Noelle.Arch.latency }
      in
      let _, _, par, _ = Psim.Runtime.run ~fuel:(4 * fuel) ~arch:a m in
      Printf.printf "  latency %4d cycles -> speedup %5.2f
" lat
        (Int64.to_float seq /. Int64.to_float par))
    [ 10; 30; 60; 140; 300 ];
  (* the analytic model predicts the same collapse *)
  let p = Psim.Models.default_params in
  Printf.printf "  model crossover: HELIX beats sequential while seg+lat < work;
";
  Printf.printf "  e.g. work=188, seg=5: lat 60 -> %.2fx, lat 300 -> %.2fx
"
    (Psim.Models.speedup ~seq_time:(20000.0 *. 188.0)
       ~par_time:(Psim.Models.helix_time p ~iters:20000.0 ~work:188.0 ~seq:5.0))
    (Psim.Models.speedup ~seq_time:(20000.0 *. 188.0)
       ~par_time:
         (Psim.Models.helix_time { p with Psim.Models.latency = 300.0 }
            ~iters:20000.0 ~work:188.0 ~seq:5.0))

(** DOALL core-count scaling: spawn/join overheads flatten the curve. *)
let ablation_doall_cores () =
  banner "Ablation: DOALL speedup vs core count (blackscholes)";
  let k = Option.get (Bsuite.Kernels.find "blackscholes") in
  let fuel = k.Bsuite.Kernels.fuel in
  let m0 = Bsuite.Kernels.compile k in
  let _, _, seq = Psim.Runtime.run_sequential ~fuel m0 in
  List.iter
    (fun cores ->
      let m = Bsuite.Kernels.compile k in
      let p, _ = Noelle.Profiler.run ~fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      ignore (Ntools.Doall.run n m ~ncores:cores ());
      let a = Noelle.Arch.measure ~physical_cores:cores () in
      let _, _, par, _ = Psim.Runtime.run ~fuel:(4 * fuel) ~arch:a m in
      Printf.printf "  %2d cores -> speedup %5.2f
" cores
        (Int64.to_float seq /. Int64.to_float par))
    [ 1; 2; 4; 8; 12; 16 ]

(** Alias-analysis ablation: run DOALL with the manager restricted to the
    baseline stack — the Figure-3 precision is what feeds Figure 5. *)
let ablation_aa () =
  banner "Ablation: DOALL with baseline AA only (ties Figure 3 to Figure 5)";
  List.iter
    (fun name ->
      let k = Option.get (Bsuite.Kernels.find name) in
      let fuel = k.Bsuite.Kernels.fuel in
      let count use_noelle_aa =
        let m = Bsuite.Kernels.compile k in
        let p, _ = Noelle.Profiler.run ~fuel m in
        Noelle.Profiler.embed p m;
        let n = Noelle.create ~use_noelle_aa m in
        List.length
          (List.filter (fun (_, r) -> Result.is_ok r) (Ntools.Doall.run n m ~ncores ()))
      in
      Printf.printf "  %-14s loops parallelized: baseline-AA %d, NOELLE-AA %d
"
        name (count false) (count true))
    [ "dijkstra"; "stringsearch"; "dedup"; "blackscholes" ]

(** Verified-reload vs recompute: what the Trust fast path is worth.
    Embeds every function's PDG, then times (a) reloading them through
    stamp verification and (b) recomputing them from scratch, per
    kernel. *)
let trust_section () =
  banner "Trust: verified PDG reload vs demand recompute";
  let iters = 50 in
  (* per-iteration ms for: fresh manager + PDG query for every function *)
  let time_queries m fns =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      let n = Noelle.create m in
      List.iter (fun f -> ignore (Noelle.pdg n f)) fns
    done;
    (Sys.time () -. t0) *. 1000. /. float_of_int iters
  in
  let row name m =
    let fns = Ir.Irmod.defined_functions m in
    let n0 = Noelle.create m in
    List.iter (fun f -> Noelle.Pdg.embed (Noelle.pdg n0 f)) fns;
    (* sanity: the reload arm must actually take the verified fast path *)
    let ns = Noelle.create m in
    List.iter (fun f -> ignore (Noelle.pdg ns f)) fns;
    if Noelle.fast_reloads ns <> List.length fns then
      failwith (name ^ ": stamped artifacts did not fast-reload");
    (* bare: same module minus the embedded artifacts, so every query
       misses and rebuilds — both arms run the exact manager path *)
    let bare = Ir.Snapshot.copy_module m in
    Ir.Meta.clear_prefix bare.Ir.Irmod.meta "pdg.";
    let reload_ms = time_queries m fns in
    let recompute_ms = time_queries bare (Ir.Irmod.defined_functions bare) in
    Printf.printf
      "  %-14s %d fns: verified reload %6.3f ms, recompute %6.3f ms (%.1fx)\n"
      name (List.length fns) reload_ms recompute_ms
      (if reload_ms > 0. then recompute_ms /. reload_ms else 0.)
  in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) -> row k.Bsuite.Kernels.kname (Bsuite.Kernels.compile k))
    Bsuite.Kernels.all;
  (* one larger module: a deep fuzz program whose alias-analysis + PDG
     rebuild cost outgrows the verification overhead *)
  let big_cfg =
    { Bsuite.Generator.default_cfg with
      Bsuite.Generator.max_depth = 4;
      max_stmts = 24;
      arrays = 6 }
  in
  row "fuzz-big"
    (Minic.Lower.compile ~name:"fuzz-big"
       (Bsuite.Generator.program ~cfg:big_cfg 42))

(* ------------------------------------------------------------------ *)
(* Scaling: sparse engine vs naive solver (DESIGN.md §11)               *)
(* ------------------------------------------------------------------ *)

(** Synthetic module: [nfuncs] functions [work<k>(p, q, n)], each a
    single-block loop doing [chunk] rounds of gep/load/store traffic over
    its pointer arguments and four shared globals, chained by a call to
    [work<k-1>].  Sized via [chunk] to hit a target instruction count well
    past the kernel corpus, so the solver and PDG-build asymptotics — not
    constant factors — dominate. *)
let synth_module ~name ~nfuncs ~chunk =
  let m = Ir.Irmod.create ~name () in
  for g = 0 to 3 do
    Ir.Irmod.add_global m
      { Ir.Irmod.gname = Printf.sprintf "g%d" g; size = 64; init = None }
  done;
  let open Ir.Instr in
  for k = 0 to nfuncs - 1 do
    let f =
      Ir.Func.create
        ~name:(Printf.sprintf "work%d" k)
        ~params:[ ("p", Ir.Ty.Ptr); ("q", Ir.Ty.Ptr); ("n", Ir.Ty.I64) ]
        ~ret:Ir.Ty.I64
    in
    let entry = Ir.Builder.add_block f ~label:"entry" in
    let loop = Ir.Builder.add_block f ~label:"loop" in
    let exit_ = Ir.Builder.add_block f ~label:"exit" in
    let buf = Ir.Builder.add f entry.Ir.Func.bid (Alloca (Cint 8L)) Ir.Ty.Ptr in
    ignore (Ir.Builder.add f entry.Ir.Func.bid (Store (Cint 0L, Reg buf.id)) Ir.Ty.Void);
    ignore (Ir.Builder.set_term f entry.Ir.Func.bid (Br loop.Ir.Func.bid));
    let iv = Ir.Builder.add f loop.Ir.Func.bid (Phi [ (entry.Ir.Func.bid, Cint 0L) ]) Ir.Ty.I64 in
    let acc0 = Ir.Builder.add f loop.Ir.Func.bid (Phi [ (entry.Ir.Func.bid, Cint 0L) ]) Ir.Ty.I64 in
    let acc = ref (Reg acc0.id) in
    for j = 0 to chunk - 1 do
      let gp = Ir.Builder.add f loop.Ir.Func.bid (Gep (Arg 0, Reg iv.id)) Ir.Ty.Ptr in
      let lv = Ir.Builder.add f loop.Ir.Func.bid (Load (Reg gp.id)) Ir.Ty.I64 in
      let gq =
        Ir.Builder.add f loop.Ir.Func.bid (Gep (Arg 1, Cint (Int64.of_int j))) Ir.Ty.Ptr
      in
      ignore (Ir.Builder.add f loop.Ir.Func.bid (Store (Reg lv.id, Reg gq.id)) Ir.Ty.Void);
      let gg =
        Ir.Builder.add f loop.Ir.Func.bid
          (Gep (Glob (Printf.sprintf "g%d" (j mod 4)), Reg iv.id))
          Ir.Ty.Ptr
      in
      let gv = Ir.Builder.add f loop.Ir.Func.bid (Load (Reg gg.id)) Ir.Ty.I64 in
      let s = Ir.Builder.add f loop.Ir.Func.bid (Bin (Add, !acc, Reg gv.id)) Ir.Ty.I64 in
      acc := Reg s.id
    done;
    if k > 0 then begin
      let c =
        Ir.Builder.add f loop.Ir.Func.bid
          (Call (Glob (Printf.sprintf "work%d" (k - 1)), [ Reg buf.id; Arg 1; Cint 4L ]))
          Ir.Ty.I64
      in
      let s = Ir.Builder.add f loop.Ir.Func.bid (Bin (Add, !acc, Reg c.id)) Ir.Ty.I64 in
      acc := Reg s.id
    end;
    let next = Ir.Builder.add f loop.Ir.Func.bid (Bin (Add, Reg iv.id, Cint 1L)) Ir.Ty.I64 in
    iv.op <- Phi [ (entry.Ir.Func.bid, Cint 0L); (loop.Ir.Func.bid, Reg next.id) ];
    acc0.op <- Phi [ (entry.Ir.Func.bid, Cint 0L); (loop.Ir.Func.bid, !acc) ];
    let cond = Ir.Builder.add f loop.Ir.Func.bid (Icmp (Slt, Reg next.id, Arg 2)) Ir.Ty.I64 in
    ignore (Ir.Builder.set_term f loop.Ir.Func.bid (Cbr (Reg cond.id, loop.Ir.Func.bid, exit_.Ir.Func.bid)));
    ignore (Ir.Builder.set_term f exit_.Ir.Func.bid (Ret (Some !acc)));
    Ir.Irmod.add_func m f
  done;
  let main = Ir.Func.create ~name:"main" ~params:[] ~ret:Ir.Ty.I64 in
  let b = Ir.Builder.add_block main ~label:"entry" in
  let c =
    Ir.Builder.add main b.Ir.Func.bid
      (Call
         ( Glob (Printf.sprintf "work%d" (nfuncs - 1)),
           [ Glob "g0"; Glob "g1"; Cint 16L ] ))
      Ir.Ty.I64
  in
  ignore (Ir.Builder.set_term main b.Ir.Func.bid (Ret (Some (Reg c.id))));
  Ir.Irmod.add_func m main;
  Ir.Verify.verify_module m;
  m

let scaling () =
  banner "Scaling: worklist Andersen + bucketed PDG vs naive paths (synthetic)";
  let base =
    List.fold_left
      (fun acc (k : Bsuite.Kernels.kernel) ->
        max acc (Ir.Irmod.total_insts (Bsuite.Kernels.compile k)))
      0 Bsuite.Kernels.all
  in
  Printf.printf "  largest kernel: %d instructions\n" base;
  List.iter
    (fun (label, mult) ->
      let nfuncs = 4 * mult in
      let chunk = max 1 (((mult * base / nfuncs) - 14) / 4) in
      let m = synth_module ~name:label ~nfuncs ~chunk in
      let fns = Ir.Irmod.defined_functions m in
      let naive () =
        let a = Ir.Andersen.solve_naive m in
        let stack = [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
        List.iter (fun f -> ignore (Noelle.Pdg.build ~stack m f)) fns
      in
      let sparse () =
        let a = Ir.Andersen.analyze m in
        let stack = [ Ir.Alias.baseline; Ir.Andersen.analysis a ] in
        List.iter (fun f -> ignore (Noelle.Pdg.build ~pts:a ~stack m f)) fns
      in
      let (), naive_ms = Ir.Trace.time_ms (fun () -> bench_row (label ^ "-naive") naive) in
      let (), sparse_ms =
        Ir.Trace.time_ms (fun () -> bench_row (label ^ "-sparse") sparse)
      in
      Printf.printf
        "  %-6s %6d insts, %2d fns: naive %8.2f ms, sparse %8.2f ms (%.1fx)\n" label
        (Ir.Irmod.total_insts m) (List.length fns) naive_ms sparse_ms
        (if sparse_ms > 0. then naive_ms /. sparse_ms else 0.))
    [ ("x4", 4); ("x16", 16) ]

(* ------------------------------------------------------------------ *)
(* Profile-free planning: Ir.Bounds vs the dynamic profile (§13)        *)
(* ------------------------------------------------------------------ *)

let bounds_section () =
  banner "Profile-free planning: Ir.Bounds static bounds vs the dynamic profile";
  Printf.printf "  %-14s %6s %6s %6s %6s %10s\n" "benchmark" "loops" "exact"
    "upper" "unkn" "parity";
  let total = ref 0 and agreed = ref 0 in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      bench_row ("plan-" ^ k.Bsuite.Kernels.kname) @@ fun () ->
      let m = Bsuite.Kernels.compile k in
      let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      let exact = ref 0 and upper = ref 0 and unk = ref 0 in
      List.iter
        (fun f ->
          let s = Noelle.bounds n f in
          List.iter
            (fun (lb : Ir.Bounds.loop_bound) ->
              match lb.Ir.Bounds.lheadx with
              | Ir.Bounds.Exact _ -> incr exact
              | Ir.Bounds.Upper _ -> incr upper
              | Ir.Bounds.Unknown | Ir.Bounds.Unbounded -> incr unk)
            s.Ir.Bounds.floops)
        (Ir.Irmod.defined_functions m);
      let pairs =
        Ntools.Planner.head_to_head n m ~ncores ~min_hotness:0.05
          ~min_work:20000.0
      in
      let ag =
        List.length
          (List.filter (fun (_, a, b) -> Ntools.Planner.agree a b) pairs)
      in
      total := !total + List.length pairs;
      agreed := !agreed + ag;
      Printf.printf "  %-14s %6d %6d %6d %6d %7d/%d\n" k.Bsuite.Kernels.kname
        (!exact + !upper + !unk) !exact !upper !unk ag (List.length pairs))
    (corpus ());
  Printf.printf "  decision parity: %d/%d corpus loops\n" !agreed !total;
  (* Psim head-to-head on representative kernels: same DOALL tool, loops
     selected and chunked from the profile vs from static bounds alone *)
  List.iter
    (fun name ->
      match Bsuite.Kernels.find name with
      | None -> ()
      | Some k ->
        let prof, _ =
          bench_row ("psim-profiled-" ^ name) @@ fun () ->
          speedup_of k (fun n m -> any_ok (Ntools.Doall.run n m ~ncores ()))
        in
        let stat, _ =
          bench_row ("psim-static-" ^ name) @@ fun () ->
          speedup_of k (fun n m ->
              any_ok (Ntools.Doall.run n m ~ncores ~profile_free:true ()))
        in
        Printf.printf "  %-14s profiled %5.2fx  profile-free %5.2fx\n" name
          prof stat)
    [ "bitcount"; "dijkstra"; "blackscholes" ]

(* ------------------------------------------------------------------ *)
(* Serve: analysis-as-a-service store, recovery, shedding (§14)         *)
(* ------------------------------------------------------------------ *)

let serve_corpus mods =
  List.filter_map
    (fun name ->
      match Bsuite.Kernels.find name with
      | Some k when List.mem name mods -> Some (name, Bsuite.Kernels.compile k)
      | _ -> None)
    Serve.Workload.default_pool

(** Derived service metrics (rates, percentages, percentiles) are
    gauges, not counters: they are remeasured each run rather than
    accumulated, and [--compare] gives them a ratio tolerance where
    counters are held exact.  They land in the row's "gauges" dict in
    BENCH_serve.json (make bench-gate greps them there). *)
let serve_metric name v = Ir.Trace.set_gauge name (float_of_int (max 1 v))

let serve_section () =
  banner "Analysis-as-a-service: noelle-serve store, recovery, shedding";
  let root = "_serve/bench" in
  Serve.Store.remove_tree root;
  (* cold run then a "process restart" against the warm store: the gap in
     computed-count is what the persistent store buys across processes *)
  bench_row "serve-replay" (fun () ->
      let mods = Serve.Workload.pick_modules ~seed:0 ~count:4 in
      let w = Serve.Workload.generate ~seed:0 ~mods ~requests:150 in
      let rroot = Filename.concat root "replay" in
      let sv = Serve.create ~root:rroot (serve_corpus mods) in
      let r1 = Serve.run sv w () in
      Serve.Store.close sv.Serve.store;
      let sv2 = Serve.create ~root:rroot (serve_corpus mods) in
      let r2 = Serve.run sv2 w () in
      Serve.Store.close sv2.Serve.store;
      let qps =
        if r2.Serve.rwall_ms <= 0. then 0
        else
          int_of_float
            (float_of_int r2.Serve.rqueries /. (r2.Serve.rwall_ms /. 1000.))
      in
      serve_metric "serve.bench.qps" qps;
      serve_metric "serve.bench.hit_pct" (100 * r2.Serve.rhits / max 1 r2.Serve.rqueries);
      Printf.printf
        "  replay: %d requests | cold hits=%d computed=%d %.1fms | warm \
         hits=%d computed=%d %.1fms (%d queries/s)\n"
        r1.Serve.rserved r1.Serve.rhits r1.Serve.rcomputed r1.Serve.rwall_ms
        r2.Serve.rhits r2.Serve.rcomputed r2.Serve.rwall_ms qps);
  (* overload: arrivals outpace service; the breaker sheds load *)
  bench_row "serve-overload" (fun () ->
      let ok, r =
        Serve.overload
          ~corpus_of:(fun () -> serve_corpus Serve.Workload.default_pool)
          ~root ~seed:0 ~modules:3 ~requests:200 ()
      in
      serve_metric "serve.bench.shed_pct" (100 * r.Serve.rshed / max 1 r.Serve.rqueries);
      Printf.printf
        "  overload: shed %d/%d queries (max backlog %d, breaker opened \
         %dx, conservative: %s)\n"
        r.Serve.rshed r.Serve.rqueries r.Serve.rmax_backlog
        r.Serve.rbreaker_opens
        (if ok then "yes" else "VIOLATED"));
  (* kill-and-recover: mean store recovery time over a small soak *)
  bench_row "serve-recovery" (fun () ->
      let _, stats, _ =
        Serve.soak
          ~corpus_of:(fun () -> serve_corpus Serve.Workload.default_pool)
          ~root:(Filename.concat root "soak") ~seeds:10 ~modules:3
          ~requests:40
          ~progress:(fun _ -> ())
          ()
      in
      let per_rec_us =
        if stats.Serve.t_recoveries = 0 then 0
        else
          int_of_float
            (1000. *. stats.Serve.t_recovery_ms
            /. float_of_int stats.Serve.t_recoveries)
      in
      serve_metric "serve.bench.recovery_us" per_rec_us;
      Printf.printf
        "  recovery: %d kills over %d seeds, %d recoveries, %.0fus each\n"
        stats.Serve.t_kills stats.Serve.t_seeds stats.Serve.t_recoveries
        (float_of_int per_rec_us))

(* ------------------------------------------------------------------ *)
(* SLO: request latency percentiles and tracing overhead (§15)          *)
(* ------------------------------------------------------------------ *)

let slo_kinds = [ "edit"; "deps"; "bounds"; "loops" ]

let slo_section () =
  banner "SLO: request latency percentiles and tracing overhead";
  let root = "_serve/benchslo" in
  Serve.Store.remove_tree root;
  let mods = Serve.Workload.pick_modules ~seed:0 ~count:3 in
  let w = Serve.Workload.generate ~seed:0 ~mods ~requests:150 in
  (* cold run then warm restart, same shape as noelle-slo: the measured
     distribution covers both the recompute-heavy and store-hit regimes *)
  let run_once sub =
    let rroot = Filename.concat root sub in
    Serve.Store.remove_tree rroot;
    let sv = Serve.create ~root:rroot (serve_corpus mods) in
    let r1 = Serve.run sv w () in
    Serve.Store.close sv.Serve.store;
    let sv2 = Serve.create ~root:rroot (serve_corpus mods) in
    let r2 = Serve.run sv2 w () in
    Serve.Store.close sv2.Serve.store;
    r1.Serve.rwall_ms +. r2.Serve.rwall_ms
  in
  bench_row "slo-replay" (fun () ->
      ignore (run_once "measure");
      List.iter
        (fun kind ->
          match Ir.Trace.histogram ("serve.latency_us." ^ kind) with
          | Some h when h.Ir.Trace.hcount > 0 ->
            List.iter
              (fun (qn, qv) ->
                serve_metric
                  (Printf.sprintf "serve.bench.slo.%s.%s" kind qn)
                  (Int64.to_int (Ir.Trace.quantile h qv)))
              [ ("p50_us", 0.5); ("p95_us", 0.95); ("p99_us", 0.99);
                ("p999_us", 0.999) ];
            Printf.printf "  %-8s count=%-5d p50=%Ldus p99=%Ldus p999=%Ldus\n"
              kind h.Ir.Trace.hcount (Ir.Trace.quantile h 0.5)
              (Ir.Trace.quantile h 0.99) (Ir.Trace.quantile h 0.999)
          | _ -> Printf.printf "  %-8s (no samples: tracing off)\n" kind)
        slo_kinds);
  (* the SLO story only holds if observability itself is cheap: replay
     the workload with the trace sink on vs off and gauge the delta *)
  bench_row "slo-overhead" (fun () ->
      let was_on = Ir.Trace.enabled () in
      let traced = run_once "traced" in
      Ir.Trace.disable ();
      let untraced = run_once "untraced" in
      if was_on then Ir.Trace.enable ~keep:true ();
      let pct =
        if untraced <= 0. then 0.
        else 100. *. (traced -. untraced) /. untraced
      in
      serve_metric "serve.bench.trace_overhead_pct"
        (int_of_float (Float.max 1. pct));
      Printf.printf "  overhead: traced %.1fms vs untraced %.1fms (%+.1f%%)\n"
        traced untraced pct)

(* ------------------------------------------------------------------ *)
(* Optional: sequential test script (the paper's bash fallback, §2.4)   *)
(* ------------------------------------------------------------------ *)

let emit_test_script () =
  let oc = open_out "run_all_tests.sh" in
  output_string oc
    "#!/bin/sh\n\
     # Generated by bench/main.exe --emit-test-script (see §2.4: NOELLE can\n\
     # emit a bash file that executes all tests sequentially).\n\
     set -e\n\
     dune build @all\n\
     dune runtest --force\n\
     dune exec bench/main.exe\n";
  close_out oc;
  print_endline "wrote run_all_tests.sh"

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("table4", table4); ("figure3", figure3); ("figure4", figure4);
    ("iv", iv_experiment); ("figure5", figure5); ("spec", spec_experiment);
    ("dead", dead_experiment);
    ("pers", pers_experiment);
    ("ablation-helix", ablation_helix_latency);
    ("ablation-cores", ablation_doall_cores);
    ("ablation-aa", ablation_aa);
    ("trust", trust_section);
    ("scaling", scaling);
    ("bounds", bounds_section);
    ("serve", serve_section);
    ("slo", slo_section);
    ("bechamel", bechamel_section) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--emit-test-script" args then emit_test_script ()
  else begin
    if List.mem "--compare" args then begin
      compare_mode := true;
      json_mode := true;
      Ir.Trace.enable ()
    end
    else if List.mem "--json" args then begin
      json_mode := true;
      Ir.Trace.enable ()
    end;
    let chosen = List.filter (fun a -> List.mem_assoc a sections) args in
    let todo = if chosen = [] then List.map fst sections else chosen in
    List.iter
      (fun name ->
        (List.assoc name sections) ();
        finish_section name)
      todo;
    print_newline ();
    if !compare_mode then begin
      match List.rev !compare_failures with
      | [] ->
        Printf.printf "bench-regress: ok (%d sections match their baselines)\n"
          (List.length todo)
      | fails ->
        List.iter (Printf.eprintf "bench-regress: REGRESSION: %s\n") fails;
        exit 1
    end
  end
