(** noelle-pipeline — run the custom-tool stack through the transactional
    pass pipeline: checkpoint, transform, verify, differential-test, and
    commit or roll back each pass; optionally corrupt pass output and
    inject task failures to exercise the resilience machinery. *)

open Cmdliner

let run input fuzz_seed inputs fuel inject_seed psim_fault_seed persistent_tid
    analysis_budget check_races no_profile vec verify_meta legacy_differential
    trace_diff output quiet =
  let m =
    match (input, fuzz_seed) with
    | Some f, _ -> Ir.Parser.parse_file f
    | None, Some seed ->
      Minic.Lower.compile ~name:(Printf.sprintf "fuzz%d" seed)
        (Bsuite.Generator.program seed)
    | None, None ->
      prerr_endline "noelle-pipeline: need FILE.ir or --fuzz-seed"; exit 2
  in
  let pristine = Ir.Snapshot.capture m in
  let inputs = if inputs = [] then [ [] ] else List.map (fun n -> [ n ]) inputs in
  let report =
    Ntools.Passes.run_standard ~inputs ~fuel ?inject_seed ~check_races
      ~no_profile ~vec ?analysis_budget ~verify_meta ~legacy_differential m
  in
  print_string (Noelle.Pipeline.report_to_string report);
  if trace_diff then
    List.iter
      (fun (e : Noelle.Pipeline.entry) ->
        if e.Noelle.Pipeline.etrace_diff <> [] then begin
          Printf.printf "%s: event-diff witness:\n" e.Noelle.Pipeline.epass;
          List.iter print_endline e.Noelle.Pipeline.etrace_diff
        end)
      report.Noelle.Pipeline.entries;
  (* demonstrate degraded-mode parallel execution on the surviving module *)
  let fault =
    match (psim_fault_seed, persistent_tid) with
    | _, Some tid -> Some (Psim.Runtime.persistent_fault ~tid ())
    | Some seed, None -> Some (Psim.Runtime.seeded_fault ~seed ())
    | None, None -> None
  in
  (match fault with
  | None -> ()
  | Some fault ->
    let original = Ir.Snapshot.to_module pristine in
    let r =
      Psim.Runtime.run_resilient ~args:(List.hd inputs) ~fuel ~fault ~original m
    in
    Printf.printf "resilient run: mode=%s restarts=%d exit=%s\n"
      (Psim.Runtime.mode_to_string r.Psim.Runtime.rmode)
      r.Psim.Runtime.rrestarts
      (Ir.Interp.v_to_string r.Psim.Runtime.rvalue);
    if r.Psim.Runtime.rtask_log <> [] then
      print_endline (Psim.Runtime.dispositions_to_string r.Psim.Runtime.rtask_log);
    if not quiet then print_string r.Psim.Runtime.routput);
  (match output with Some o -> Ir.Printer.to_file m o | None -> ());
  if report.Noelle.Pipeline.final_ok then 0 else 1

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let fuzz_seed =
  Arg.(value & opt (some int) None & info [ "fuzz-seed" ] ~docv:"N"
         ~doc:"generate the input program from fuzzer seed $(docv)")
let inputs =
  Arg.(value & opt_all int [] & info [ "input"; "i" ] ~docv:"N"
         ~doc:"argument for a differential run (repeatable)")
let fuel =
  Arg.(value & opt int 3_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"interpreter fuel per differential run")
let inject_seed =
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N"
         ~doc:"corrupt each pass's output with a fault drawn from seed $(docv)")
let psim_fault_seed =
  Arg.(value & opt (some int) None & info [ "task-fault-seed" ] ~docv:"N"
         ~doc:"inject transient task failures into the final parallel run")
let persistent_tid =
  Arg.(value & opt (some int) None & info [ "kill-task" ] ~docv:"TID"
         ~doc:"kill task $(docv) on every attempt (forces sequential fallback)")
let analysis_budget =
  Arg.(value & opt (some int) None & info [ "analysis-budget" ] ~docv:"N"
         ~doc:"step budget for Andersen/PDG before degrading to may-deps")
let check_races =
  Arg.(value & flag & info [ "check-races" ]
         ~doc:"pre-flight gate: refuse to parallelize any loop the \
               noelle-check race detector flags")
let no_profile =
  Arg.(value & flag & info [ "no-profile" ]
         ~doc:"profile-free planning: the parallelizers select loops and \
               pick chunk sizes from Ir.Bounds static trip counts and cost \
               polynomials instead of embedded profile metadata")
let vec =
  Arg.(value & flag & info [ "vec" ]
         ~doc:"run the Ntools.Vec loop vectorizer ahead of the \
               parallelizers: loops where the Psim SIMD model beats the \
               DOALL model are widened into lane groups (with \
               if-conversion for divergent bodies) and the rest fall \
               through to DOALL/HELIX/DSWP")
let verify_meta =
  Arg.(value & flag & info [ "verify-meta" ]
         ~doc:"metadata trust gate: quarantine embedded analysis artifacts \
               invalidated by each committed pass, re-embed fresh ones at \
               the end, and fail unless the final module audits clean")
let legacy_differential =
  Arg.(value & flag & info [ "legacy-differential" ]
         ~doc:"escape hatch: differential gate compares exit value and flat \
               output only, ignoring observable-event traces")
let trace_diff =
  Arg.(value & flag & info [ "trace-diff" ]
         ~doc:"print the minimal event-diff witness of every trace-gate \
               rollback after the report")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress program output")

let cmd =
  Cmd.v
    (Cmd.info "noelle-pipeline"
       ~doc:"Transactional pass pipeline with verification and differential gates")
    Term.(const run $ input $ fuzz_seed $ inputs $ fuel $ inject_seed $ psim_fault_seed
          $ persistent_tid $ analysis_budget $ check_races $ no_profile $ vec
          $ verify_meta $ legacy_differential $ trace_diff $ output $ quiet)

let () = exit (Cmd.eval' cmd)
