(** noelle-trace — run the standard custom-tool stack under the telemetry
    spine and export what happened: a Chrome trace-event JSON (load it in
    Perfetto / chrome://tracing) with one span per analysis, pass, checker,
    and simulated task, plus a flat metrics dump from the process-wide
    registry.  [--compare] diffs two metrics dumps from earlier runs. *)

open Cmdliner

let load input fuzz_seed kernel =
  match (input, kernel, fuzz_seed) with
  | Some f, _, _ -> Ir.Parser.parse_file f
  | None, Some name, _ -> (
    match Bsuite.Kernels.find name with
    | Some k -> Bsuite.Kernels.compile k
    | None ->
      Printf.eprintf "noelle-trace: unknown kernel %S (try: %s)\n" name
        (String.concat ", "
           (List.map (fun k -> k.Bsuite.Kernels.kname) Bsuite.Kernels.all));
      exit 2)
  | None, None, Some seed ->
    Minic.Lower.compile ~name:(Printf.sprintf "fuzz%d" seed)
      (Bsuite.Generator.program seed)
  | None, None, None ->
    prerr_endline "noelle-trace: need FILE.ir, --kernel NAME or --fuzz-seed N";
    exit 2

let compare_cmd a b =
  let report, differing = Noelle.Telemetry.compare_files a b in
  print_string report;
  if differing = 0 then print_endline "no metric changed";
  0

(** The serve loop runs in its own process (noelle-serve), so its
    counters cannot appear in this process's registry — [--check]
    validates them from the metrics dump noelle-serve wrote ([make
    serve] runs before [make trace] in [make check]).  A missing dump is
    only an error when the path was given explicitly. *)
let check_serve_metrics ~explicit path : string list =
  if not (Sys.file_exists path) then
    if explicit then [ Printf.sprintf "serve metrics dump %s missing" path ]
    else []
  else
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let names = List.map fst (Noelle.Telemetry.parse_metrics s) in
    List.filter_map
      (fun c ->
        if List.mem c names then None
        else Some (Printf.sprintf "%s (in %s)" c path))
      [ "serve.requests"; "serve.queries"; "serve.store.hits";
        "serve.store.writes"; "serve.shed"; "serve.recoveries";
        "serve.quarantined"; "serve.flight.replayed" ]

let trace_cmd input fuzz_seed kernel inputs fuel out metrics_out check
    serve_metrics quiet =
  let m = load input fuzz_seed kernel in
  let inputs = if inputs = [] then [ [] ] else List.map (fun n -> [ n ]) inputs in
  Noelle.Telemetry.install ();
  let report = Ntools.Passes.run_standard ~inputs ~fuel ~vec:true m in
  if not quiet then print_string (Noelle.Pipeline.report_to_string report);
  Noelle.Telemetry.save_trace out;
  Noelle.Telemetry.save_metrics metrics_out;
  (* round-trip the file we just wrote through the repo's own JSON parser
     and summarize which layers produced spans *)
  let contents =
    let ic = open_in_bin out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic; s
  in
  let triples = Noelle.Telemetry.validate_chrome_json contents in
  let layers = Noelle.Telemetry.layers_of triples in
  Printf.printf "wrote %s (%d events) and %s (%d metrics)\n" out (List.length triples)
    metrics_out
    (List.length (Noelle.Telemetry.metrics ()));
  List.iter (fun (cat, n) -> Printf.printf "  layer %-10s %d spans\n" cat n) layers;
  (* buffer truncation is observable, not silent: say how many events the
     capped buffer dropped (0 in any healthy run) *)
  Printf.printf "  events dropped: %Ld\n" (Noelle.Telemetry.counter "trace.dropped");
  (* the sparse analysis engine (DESIGN.md §11), the observable-event
     oracle (§12) and the profile-free bounds analysis (§13) must have
     been exercised: their counters are registered
     (possibly at zero) whenever the worklist solver, the bucketed PDG
     builder, fingerprint-keyed invalidation, the trace-equivalence gate
     and the Psim replay protocol actually ran, so a missing counter
     means a silent fallback to a slow, stale or weaker path *)
  let metric_names = List.map fst (Noelle.Telemetry.metrics ()) in
  let missing =
    List.filter
      (fun c -> not (List.mem c metric_names))
      [ "andersen.delta_props"; "andersen.cycles_collapsed";
        "pdg.pairs_skipped_bucketing"; "pdg.alias_memo_hits";
        "noelle.invalidate.kept";
        "obs.events"; "obs.trace_compares"; "obs.reorders_rejected";
        "psim.replay_validated";
        "bounds.queries"; "bounds.loops_exact";
        "vec.loops_considered"; "vec.vectorized"; "vec.if_converted";
        "vec.rejected";
        "trace.dropped" ]
  in
  Noelle.Telemetry.uninstall ();
  let serve_missing =
    if check then
      check_serve_metrics ~explicit:(serve_metrics <> None)
        (Option.value ~default:"serve_metrics.json" serve_metrics)
    else []
  in
  if check && List.length layers < 3 then begin
    Printf.eprintf
      "noelle-trace: expected spans from at least 3 layers, got %d (%s)\n"
      (List.length layers)
      (String.concat ", " (List.map fst layers));
    1
  end
  else if check && missing <> [] then begin
    Printf.eprintf "noelle-trace: required counters missing: %s\n"
      (String.concat ", " missing);
    1
  end
  else if check && serve_missing <> [] then begin
    Printf.eprintf "noelle-trace: serve counters missing: %s\n"
      (String.concat ", " serve_missing);
    1
  end
  else if check && not report.Noelle.Pipeline.final_ok then 1
  else 0

let run input pos1 fuzz_seed kernel inputs fuel out metrics_out compare check
    serve_metrics quiet =
  if compare then
    match (input, pos1) with
    | Some a, Some b -> compare_cmd a b
    | _ ->
      prerr_endline "noelle-trace: --compare needs two metrics files: A.json B.json";
      2
  else
    trace_cmd input fuzz_seed kernel inputs fuel out metrics_out check
      serve_metrics quiet

let input = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.ir")
let pos1 = Arg.(value & pos 1 (some string) None & info [] ~docv:"B.json")
let fuzz_seed =
  Arg.(value & opt (some int) None & info [ "fuzz-seed" ] ~docv:"N"
         ~doc:"generate the input program from fuzzer seed $(docv)")
let kernel =
  Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"NAME"
         ~doc:"trace a named benchmark kernel (e.g. histogram, blackscholes)")
let inputs =
  Arg.(value & opt_all int [] & info [ "input"; "i" ] ~docv:"N"
         ~doc:"argument for a differential run (repeatable)")
let fuel =
  Arg.(value & opt int 3_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"interpreter fuel per differential run")
let out =
  Arg.(value & opt string "trace.json" & info [ "o"; "trace" ] ~docv:"OUT.json"
         ~doc:"where to write the Chrome trace-event JSON")
let metrics_out =
  Arg.(value & opt string "trace_metrics.json" & info [ "metrics" ] ~docv:"OUT.json"
         ~doc:"where to write the metrics-registry dump")
let compare =
  Arg.(value & flag & info [ "compare" ]
         ~doc:"diff two metrics dumps given as the positional arguments")
let check =
  Arg.(value & flag & info [ "check" ]
         ~doc:"fail unless spans from at least 3 layers are present, the \
               sparse-engine counters are registered, and the pipeline \
               survived its gates (CI smoke mode)")
let serve_metrics =
  Arg.(value & opt (some string) None & info [ "serve-metrics" ] ~docv:"FILE.json"
         ~doc:"with --check, also validate the serve.* counters from this \
               noelle-serve metrics dump (default serve_metrics.json, \
               skipped when absent unless given explicitly)")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress the pipeline report")

let cmd =
  Cmd.v
    (Cmd.info "noelle-trace"
       ~doc:"Run the standard pass stack under tracing; export Chrome trace + metrics")
    Term.(const run $ input $ pos1 $ fuzz_seed $ kernel $ inputs $ fuel $ out
          $ metrics_out $ compare $ check $ serve_metrics $ quiet)

let () = exit (Cmd.eval' cmd)
