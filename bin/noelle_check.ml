(** noelle-check — static race detection and IR sanitizers built on the
    NOELLE abstractions: loop-carried memory dependences off the PDG,
    uninitialized loads / dead stores / heap misuse / out-of-bounds
    accesses off the DFE, Andersen points-to, and SCEV.  Exit status 1 when
    any unsuppressed error remains, so it can gate a build. *)

open Cmdliner
module Check = Noelle.Check

let check_module ~checks ~json ~stats ~quiet (name : string) (m : Ir.Irmod.t) =
  let r = Check.run ?checks m in
  if json then print_endline (Check.report_to_json ~mname:name r)
  else begin
    if not quiet then Printf.printf "== %s ==\n" name;
    print_string (Check.report_to_text ~stats r)
  end;
  List.length (Check.errors r)

let run input fuzz_seed kernels checks complexity_budget flag_unbounded json
    stats list_checks quiet =
  if list_checks then begin
    List.iter
      (fun (c : Check.checker) -> Printf.printf "%-20s %s\n" c.Check.cid c.Check.cdoc)
      Check.all;
    0
  end
  else begin
    let checks = match checks with [] -> None | cs -> Some cs in
    let targets =
      match (input, fuzz_seed, kernels) with
      | Some f, _, _ -> [ (f, Ir.Parser.parse_file f) ]
      | None, Some seed, _ ->
        let name = Printf.sprintf "fuzz%d" seed in
        [ (name, Minic.Lower.compile ~name (Bsuite.Generator.program seed)) ]
      | None, None, true ->
        List.map
          (fun (k : Bsuite.Kernels.kernel) ->
            (k.Bsuite.Kernels.kname, Bsuite.Kernels.compile k))
          Bsuite.Kernels.all
      | None, None, false ->
        prerr_endline "noelle-check: need FILE.ir, --fuzz-seed, or --kernels";
        exit 2
    in
    (* the complexity checker reads its configuration from module
       metadata, so the flags just seed each target before the run *)
    List.iter
      (fun (_, (m : Ir.Irmod.t)) ->
        (match complexity_budget with
        | Some b -> Ir.Meta.set_int m.Ir.Irmod.meta "check.complexity.budget" b
        | None -> ());
        if flag_unbounded then
          Ir.Meta.set m.Ir.Irmod.meta "check.complexity.flag-unbounded" "1")
      targets;
    let errors =
      List.fold_left
        (fun acc (name, m) -> acc + check_module ~checks ~json ~stats ~quiet name m)
        0 targets
    in
    if errors > 0 then 1 else 0
  end

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let fuzz_seed =
  Arg.(value & opt (some int) None & info [ "fuzz-seed" ] ~docv:"N"
         ~doc:"generate the input program from fuzzer seed $(docv)")
let kernels =
  Arg.(value & flag & info [ "kernels" ]
         ~doc:"check every benchmark-suite kernel module")
let checks =
  Arg.(value & opt_all string [] & info [ "check"; "c" ] ~docv:"ID"
         ~doc:"run only checker $(docv) (repeatable; default: all)")
let complexity_budget =
  Arg.(value & opt (some int) None & info [ "complexity-budget" ] ~docv:"N"
         ~doc:"trip-count budget for the complexity checker (default 1000000): \
               loops whose static bound exceeds $(docv) are flagged")
let flag_unbounded =
  Arg.(value & flag & info [ "flag-unbounded" ]
         ~doc:"complexity checker also flags loops with no exit edge \
               (provably unable to terminate)")
let json =
  Arg.(value & flag & info [ "json" ] ~doc:"emit the report as JSON")
let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"per-checker fixpoint iteration counts and wall time")
let list_checks =
  Arg.(value & flag & info [ "list" ] ~doc:"list available checkers and exit")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress module headers")

let cmd =
  Cmd.v
    (Cmd.info "noelle-check"
       ~doc:"Static race detector and IR sanitizer suite over NOELLE abstractions")
    Term.(const run $ input $ fuzz_seed $ kernels $ checks $ complexity_budget
          $ flag_unbounded $ json $ stats $ list_checks $ quiet)

let () = exit (Cmd.eval' cmd)
