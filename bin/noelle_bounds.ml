(** noelle-bounds — differential validation of the profile-free planner
    (DESIGN.md §13).

    Three gates, all of which must hold for exit 0:

    1. {e Soundness and precision of the trip bounds.}  Over every
       benchmark kernel and [--seeds] fuzz programs, the interpreter
       counts header executions and loop invocations per natural loop
       (an [on_block] hook); every constant static bound must satisfy
       [measured <= bound * invocations], with exact equality for
       [Exact] (affine) bounds, and loops {!Ir.Bounds} calls [Unbounded]
       must never have run to completion.  The sweep fails if it proved
       nothing — zero exercised affine loops is vacuous.
    2. {e Decision parity.}  Profile-free technique selection
       ({!Ntools.Planner.decide_static}) must agree with profile-driven
       selection on at least 80% of corpus loops.
    3. {e Speedup parity.}  Running the standard pass stack planned
       statically vs planned from a profile, the Psim speedup ratio's
       geomean must stay within 10%. *)

open Cmdliner
open Ir

let ncores = 12
let min_hotness = 0.05
let min_work = 20000.0

(* ------------------------------------------------------------------ *)
(* Gate 1: interpreter-measured trips vs static bounds                  *)
(* ------------------------------------------------------------------ *)

(** Does [f] textually call itself?  Recursive activations interleave
    blocks of the same function name, which confuses the last-block
    invocation detector below — such functions are skipped, not checked. *)
let self_recursive (f : Func.t) =
  Func.fold_insts
    (fun acc (i : Instr.inst) ->
      acc
      ||
      match i.Instr.op with
      | Instr.Call (Instr.Glob g, _) -> g = f.Func.fname
      | _ -> false)
    false f

type measured = { mutable headx : int64; mutable invocations : int64 }

(** Run [m] under an [on_block] hook, counting per-loop header executions
    and loop invocations (a header execution entered from outside the
    loop's blocks).  Returns the counts even if the run trapped (e.g. ran
    out of fuel) — the boolean says whether it completed. *)
let measure (m : Irmod.t) ~fuel :
    (string * int, measured) Hashtbl.t * bool =
  let counts : (string * int, measured) Hashtbl.t = Hashtbl.create 32 in
  let loops_of : (string, (int * Loopnest.IntSet.t) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (f : Func.t) ->
      if not (self_recursive f) then begin
        let nest = Loopnest.compute f in
        Hashtbl.replace loops_of f.Func.fname
          (List.map
             (fun (l : Loopnest.loop) -> (l.Loopnest.header, l.Loopnest.blocks))
             nest.Loopnest.loops);
        List.iter
          (fun (l : Loopnest.loop) ->
            Hashtbl.replace counts
              (f.Func.fname, l.Loopnest.header)
              { headx = 0L; invocations = 0L })
          nest.Loopnest.loops
      end)
    (Irmod.defined_functions m);
  let last : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let on_block (f : Func.t) bid =
    (match Hashtbl.find_opt loops_of f.Func.fname with
    | None -> ()
    | Some loops ->
      List.iter
        (fun (header, blocks) ->
          if header = bid then begin
            let c = Hashtbl.find counts (f.Func.fname, header) in
            c.headx <- Int64.add c.headx 1L;
            let from_outside =
              match Hashtbl.find_opt last f.Func.fname with
              | Some prev -> not (Loopnest.IntSet.mem prev blocks)
              | None -> true
            in
            if from_outside then
              c.invocations <- Int64.add c.invocations 1L
          end)
        loops);
    Hashtbl.replace last f.Func.fname bid
  in
  let completed =
    match
      Interp.run_state ~fuel m ~configure:(fun st ->
          st.Interp.hooks.Interp.on_block <- Some on_block)
    with
    | _ -> true
    | exception Interp.Trap _ -> false
  in
  (counts, completed)

(** Check one module's bounds against its measured trips.  [affine_hit]
    counts exercised affine (exact-bound) loops across the sweep for the
    vacuity gate; [upper_hit] likewise for diffcon upper bounds. *)
let check_module ~failures ~affine_hit ~upper_hit (name : string)
    (m : Irmod.t) ~fuel =
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let counts, completed = measure m ~fuel in
  List.iter
    (fun (f : Func.t) ->
      if not (self_recursive f) then begin
        let s = Bounds.analyze f in
        List.iter
          (fun (lb : Bounds.loop_bound) ->
            match Hashtbl.find_opt counts (f.Func.fname, lb.Bounds.lheader) with
            | None -> ()
            | Some c -> (
              match lb.Bounds.lheadx with
              | Bounds.Unbounded ->
                if completed && Int64.compare c.headx 0L > 0 then
                  fail
                    "%s: %s: loop claimed Unbounded yet the program entered \
                     it (%Ld header executions) and terminated"
                    name lb.Bounds.lkey c.headx
              | Bounds.Unknown -> ()
              | (Bounds.Exact _ | Bounds.Upper _) as trip -> (
                match Bounds.trip_const trip with
                | None -> ()  (* symbolic: no concrete value to compare *)
                | Some b ->
                  let budget = Int64.mul b c.invocations in
                  if Int64.compare c.headx budget > 0 then
                    fail
                      "%s: %s: UNSOUND bound: measured %Ld header \
                       executions over %Ld invocations, static bound %Ld \
                       per invocation"
                      name lb.Bounds.lkey c.headx c.invocations b
                  else if Bounds.trip_is_exact trip then begin
                    if Int64.compare c.invocations 0L > 0 then begin
                      incr affine_hit;
                      if completed && not (Int64.equal c.headx budget) then
                        fail
                          "%s: %s: IMPRECISE affine bound: measured %Ld \
                           header executions over %Ld invocations, exact \
                           claim was %Ld per invocation"
                          name lb.Bounds.lkey c.headx c.invocations b
                    end
                  end
                  else if Int64.compare c.invocations 0L > 0 then
                    incr upper_hit)))
          s.Bounds.floops
      end)
    (Irmod.defined_functions m)

(* ------------------------------------------------------------------ *)
(* Gates 2 + 3: profile-free vs profile-driven planning                 *)
(* ------------------------------------------------------------------ *)

type arm_result = { speedup : float; out_ok : bool }

(** Speedup of the standard pass stack on [k], planned statically
    ([no_profile]) or from an embedded profile. *)
let arm (k : Bsuite.Kernels.kernel) ~no_profile : arm_result =
  let fuel = k.Bsuite.Kernels.fuel in
  let m = Bsuite.Kernels.compile k in
  let _, ref_out, seq = Psim.Runtime.run_sequential ~fuel m in
  if not no_profile then begin
    let p, _ = Noelle.Profiler.run ~fuel m in
    Noelle.Profiler.embed p m
  end;
  ignore
    (Ntools.Passes.run_standard ~fuel:(4 * fuel) ~ncores ~min_hotness
       ~min_work ~no_profile m);
  let arch = Noelle.Arch.measure ~physical_cores:ncores () in
  let _, out, par, _ = Psim.Runtime.run ~fuel:(4 * fuel) ~arch m in
  {
    speedup = Int64.to_float seq /. Int64.to_float par;
    out_ok = String.equal out ref_out;
  }

let run limit seeds fuel skip_psim quiet =
  let say fmt =
    Printf.ksprintf (fun s -> if not quiet then print_string s) fmt
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let kernels =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) Bsuite.Kernels.all
    | None -> Bsuite.Kernels.all
  in
  (* -- gate 1: soundness / precision sweep -- *)
  let affine_hit = ref 0 and upper_hit = ref 0 in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let m = Bsuite.Kernels.compile k in
      check_module ~failures ~affine_hit ~upper_hit k.Bsuite.Kernels.kname m
        ~fuel:(4 * k.Bsuite.Kernels.fuel))
    kernels;
  for seed = 1 to seeds do
    let name = Printf.sprintf "fuzz%d" seed in
    let m = Minic.Lower.compile ~name (Bsuite.Generator.program seed) in
    check_module ~failures ~affine_hit ~upper_hit name m ~fuel
  done;
  if !affine_hit = 0 then
    fail
      "no affine loop was exercised across %d kernels and %d fuzz seeds: \
       the sweep proved nothing"
      (List.length kernels) seeds;
  say "bounds sweep: %d affine loops exact, %d diffcon upper bounds held\n"
    !affine_hit !upper_hit;
  (* -- gate 2: technique/chunk decision parity -- *)
  let total = ref 0 and agreed = ref 0 in
  let mismatches = ref [] in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let m = Bsuite.Kernels.compile k in
      let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
      Noelle.Profiler.embed p m;
      let n = Noelle.create m in
      List.iter
        (fun (id, prof, stat) ->
          incr total;
          if Ntools.Planner.agree prof stat then incr agreed
          else
            mismatches :=
              Printf.sprintf "%s: %s: profiled %s vs static %s"
                k.Bsuite.Kernels.kname id
                (Ntools.Planner.technique_to_string prof.Ntools.Planner.pd_tech)
                (Ntools.Planner.technique_to_string stat.Ntools.Planner.pd_tech)
              :: !mismatches)
        (Ntools.Planner.head_to_head n m ~ncores ~min_hotness ~min_work))
    kernels;
  let rate =
    if !total = 0 then 1.0 else float_of_int !agreed /. float_of_int !total
  in
  say "decision parity: %d/%d loops agree (%.0f%%)\n" !agreed !total
    (100.0 *. rate);
  List.iter (fun s -> say "  mismatch: %s\n" s) (List.rev !mismatches);
  if rate < 0.8 then
    fail "decision parity %.0f%% below the 80%% bar (%d/%d loops)"
      (100.0 *. rate) !agreed !total;
  (* -- gate 3: Psim speedup parity -- *)
  if not skip_psim then begin
    let log_sum = ref 0.0 and cnt = ref 0 in
    List.iter
      (fun (k : Bsuite.Kernels.kernel) ->
        if k.Bsuite.Kernels.kname <> "deadcalls" then begin
          let prof = arm k ~no_profile:false in
          let stat = arm k ~no_profile:true in
          if not prof.out_ok then
            fail "%s: profiled arm changed program output" k.Bsuite.Kernels.kname;
          if not stat.out_ok then
            fail "%s: profile-free arm changed program output" k.Bsuite.Kernels.kname;
          let ratio = stat.speedup /. prof.speedup in
          log_sum := !log_sum +. log ratio;
          incr cnt;
          say "%-16s profiled %5.2fx  static %5.2fx  ratio %.3f\n"
            k.Bsuite.Kernels.kname prof.speedup stat.speedup ratio
        end)
      kernels;
    if !cnt > 0 then begin
      let geomean = exp (!log_sum /. float_of_int !cnt) in
      say "speedup geomean ratio (static/profiled): %.3f\n" geomean;
      if geomean < 0.9 || geomean > 1.1 then
        fail "speedup geomean ratio %.3f outside the 10%% band" geomean
    end
  end;
  if !failures = [] then begin
    say "bounds: sweep clean\n";
    0
  end
  else begin
    List.iter (Printf.eprintf "noelle-bounds: %s\n") (List.rev !failures);
    1
  end

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"validate only the first $(docv) kernels")
let seeds =
  Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N"
         ~doc:"fuzz seeds to sweep in the soundness gate")
let fuel =
  Arg.(value & opt int 3_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"interpreter fuel per fuzz-program run (kernels use their \
               own per-kernel budget)")
let skip_psim =
  Arg.(value & flag & info [ "skip-psim" ]
         ~doc:"skip the Psim speedup-parity gate (soundness and decision \
               parity only)")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only report failures")

let cmd =
  Cmd.v
    (Cmd.info "noelle-bounds"
       ~doc:"Differential validation of Ir.Bounds static loop bounds and \
             the profile-free planner")
    Term.(const run $ limit $ seeds $ fuel $ skip_psim $ quiet)

let () = exit (Cmd.eval' cmd)
