(** noelle-vec — vectorizer gate over the benchmark corpus.

    For every kernel the vectorizer touches, three checks must hold:
    the module still verifies, the interpreter output is unchanged, and
    the observable-event trace is equivalent under the vectorizer's
    commutation license.  noelle-check must report no new errors on the
    widened module.  On top of the per-kernel checks, the regular
    kernels that exist to be vectorized (jpeg-dct, lbm, blackscholes)
    must counter-assert [vec.vectorized > 0], and at least one divergent
    kernel must vectorize via if-conversion ([vec.if_converted > 0]) —
    a sweep where predication never fires proves nothing about it. *)

open Cmdliner

let must_vectorize = [ "jpeg-dct"; "lbm"; "blackscholes" ]

let run limit quiet =
  let say fmt =
    Printf.ksprintf (fun s -> if not quiet then print_string s) fmt
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Noelle.Telemetry.install ();
  let kernels =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) Bsuite.Kernels.all
    | None -> Bsuite.Kernels.all
  in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let name = k.Bsuite.Kernels.kname in
      let pristine = Bsuite.Kernels.compile k in
      let m = Bsuite.Kernels.compile k in
      (* widened bodies execute more instructions per group; grant the
         same headroom the bench harness does *)
      let kfuel = 4 * k.Bsuite.Kernels.fuel in
      let before = Noelle.Telemetry.counter "vec.vectorized" in
      let n = Noelle.create m in
      let outcomes = Ntools.Vec.run n m ~only_best:false () in
      let stats =
        List.filter_map (fun (_, r) -> Result.to_option r) outcomes
      in
      let delta =
        Int64.sub (Noelle.Telemetry.counter "vec.vectorized") before
      in
      if stats <> [] then begin
        (match Ir.Verify.check m with
        | Ok () -> ()
        | Error e -> fail "%s: verifier: %s" name e);
        let _, out_ref = Ir.Interp.run ~fuel:kfuel pristine in
        let _, out_vec = Ir.Interp.run ~fuel:kfuel m in
        if String.trim out_ref <> String.trim out_vec then
          fail "%s: interpreter output changed" name;
        let _, _, tref = Ir.Obs.run ~fuel:kfuel pristine in
        let _, _, tcand = Ir.Obs.run ~fuel:kfuel m in
        (match
           Ir.Obs.check ~license:Ir.Obs.Permute_iterations ~reference:tref
             ~candidate:tcand
         with
        | Ok () -> ()
        | Error (reason, witness) ->
          fail "%s: trace gate: %s" name reason;
          if not quiet then List.iter print_endline witness);
        (* no new static-analysis errors on the widened module *)
        let errs m = List.length (Noelle.Check.errors (Noelle.Check.run m)) in
        let before_errs = errs pristine and after_errs = errs m in
        if after_errs > before_errs then
          fail "%s: noelle-check errors went %d -> %d" name before_errs
            after_errs
      end;
      if List.mem name must_vectorize && delta <= 0L then
        fail "%s: expected vec.vectorized > 0, loop left scalar" name;
      say "%-16s %d vectorized / %d considered%s\n" name (List.length stats)
        (List.length outcomes)
        (if List.exists (fun (s : Ntools.Vec.stats) -> s.Ntools.Vec.if_converted) stats
         then " (if-converted)"
         else ""))
    kernels;
  if limit = None && Noelle.Telemetry.counter "vec.if_converted" = 0L then
    fail "no divergent kernel vectorized via if-conversion";
  Noelle.Telemetry.uninstall ();
  if !failures = [] then begin
    say "vec gate: %d kernels clean\n" (List.length kernels);
    0
  end
  else begin
    List.iter (Printf.eprintf "noelle-vec: %s\n") (List.rev !failures);
    1
  end

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"gate only the first $(docv) kernels (skips the must-vectorize \
               and if-conversion assertions when they fall outside the \
               prefix)")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only report failures")

let cmd =
  Cmd.v
    (Cmd.info "noelle-vec"
       ~doc:"Vectorizer gate: corpus sweep with semantic and trace checks")
    Term.(const run $ limit $ quiet)

let () = exit (Cmd.eval' cmd)
