(** noelle-serve — the analysis service loop over a kernel corpus
    (DESIGN.md §14).

    Three modes, all driven by deterministic generated workloads of
    interleaved module edits and analysis queries:

    - default (replay): serve a workload, then "restart the process"
      (fresh managers, pristine corpus, same store) and serve it again —
      the second run must answer partly from the persistent store, and
      never stale: functions edited in run 1 fingerprint-miss and are
      recomputed.
    - [--faults]: the kill-and-recover soak gate.  For each of
      [--seeds] seeds, a fault plan ({!Ir.Faultgen.serve_plan}) arms
      kills-mid-write, artifact truncation, bit flips and shard stalls
      while the workload is served, recovering after every kill; the
      recovered run's answers must be identical to a from-scratch cold
      run, with zero [Trust.Tainted] escapes and every corrupt artifact
      quarantined.
    - [--overload]: the shedding gate.  Arrivals outpace service until
      the circuit breaker opens; shed dependence answers must be
      conservative supersets of the exact PDG (never wrong, only
      coarser), and every request must still be served.

    Every mode runs under the telemetry spine, self-checks that the
    [serve.*] counters are registered, and writes a metrics dump
    ([serve_metrics.json]) for [make bench-gate]. *)

open Cmdliner

let say quiet fmt =
  Printf.ksprintf (fun s -> if not quiet then print_string s) fmt

let corpus_of () =
  List.map
    (fun name ->
      match Bsuite.Kernels.find name with
      | Some k -> (name, Bsuite.Kernels.compile k)
      | None ->
        Printf.eprintf "noelle-serve: pool kernel %S missing\n" name;
        exit 2)
    Serve.Workload.default_pool

let required_counters =
  [ "serve.requests"; "serve.queries"; "serve.edits"; "serve.store.hits";
    "serve.store.misses"; "serve.store.writes"; "serve.shed";
    "serve.recoveries"; "serve.quarantined"; "serve.flight.replayed" ]

let check_counters () =
  let names = List.map fst (Noelle.Telemetry.metrics ()) in
  let missing = List.filter (fun c -> not (List.mem c names)) required_counters in
  if missing <> [] then begin
    Printf.eprintf "noelle-serve: serve.* counters missing: %s\n"
      (String.concat ", " missing);
    false
  end
  else true

let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b

let print_report quiet tag (r : Serve.report) =
  say quiet
    "%s: served=%d (edits=%d queries=%d) hits=%d computed=%d shed=%d \
     hit-rate=%.0f%% max-backlog=%d breaker-opens=%d quarantined=%d wall=%.1fms\n"
    tag r.Serve.rserved r.Serve.redits r.Serve.rqueries r.Serve.rhits
    r.Serve.rcomputed r.Serve.rshed
    (pct r.Serve.rhits r.Serve.rqueries)
    r.Serve.rmax_backlog r.Serve.rbreaker_opens r.Serve.rquarantined
    r.Serve.rwall_ms

(* ------------------------------------------------------------------ *)
(* Default mode: replay + warm restart                                 *)
(* ------------------------------------------------------------------ *)

let replay ~root ~seed ~modules ~requests ~quiet =
  let mods = Serve.Workload.pick_modules ~seed ~count:modules in
  let w = Serve.Workload.generate ~seed ~mods ~requests in
  let run_root = Filename.concat root (Printf.sprintf "replay%d" seed) in
  Serve.Store.remove_tree run_root;
  say quiet "corpus: %s | %d requests (seed %d)\n" (String.concat ", " mods)
    requests seed;
  let sv = Serve.create ~root:run_root (List.filter (fun (n, _) -> List.mem n mods) (corpus_of ())) in
  let r1 = Serve.run sv w () in
  (* transcript of the first few requests *)
  List.iteri
    (fun i (a : Serve.answer) ->
      if i < 12 then say quiet "  [%02d] %-28s -> %-8s %s\n" a.Serve.aidx a.Serve.areq a.Serve.asource a.Serve.atext
      else if i = 12 then say quiet "  ... (%d more)\n" (requests - 12))
    r1.Serve.ranswers;
  print_report quiet "run 1 (cold store)" r1;
  Serve.Store.close sv.Serve.store;
  (* "process restart": fresh managers, pristine corpus, same store *)
  let sv2 =
    Serve.create ~root:run_root
      (List.filter (fun (n, _) -> List.mem n mods) (corpus_of ()))
  in
  let r2 = Serve.run sv2 w () in
  print_report quiet "run 2 (warm store)" r2;
  Serve.Store.close sv2.Serve.store;
  let ok =
    r1.Serve.rserved = requests && r2.Serve.rserved = requests
    && r2.Serve.rhits > r1.Serve.rhits
    && r1.Serve.rshed = 0 && r2.Serve.rshed = 0
  in
  if not ok then
    Printf.eprintf
      "noelle-serve: replay gate failed (run2 hits %d must exceed run1 hits \
       %d, no shedding)\n"
      r2.Serve.rhits r1.Serve.rhits;
  ok

(* ------------------------------------------------------------------ *)
(* Soak and overload gates                                             *)
(* ------------------------------------------------------------------ *)

let soak ~root ~seeds ~modules ~requests ~quiet =
  let ok, stats, _ =
    Serve.soak ~corpus_of ~root:(Filename.concat root "soak") ~seeds ~modules
      ~requests
      ~progress:(fun line -> say quiet "  %s\n" line)
      ()
  in
  say quiet
    "soak: %d/%d seeds ok | kills=%d recoveries=%d quarantined=%d \
     recovery=%.1fms total\n"
    stats.Serve.t_ok stats.Serve.t_seeds stats.Serve.t_kills
    stats.Serve.t_recoveries stats.Serve.t_quarantined stats.Serve.t_recovery_ms;
  if not ok then
    Printf.eprintf
      "noelle-serve: kill-and-recover gate FAILED (%d/%d seeds ok, kills=%d, \
       quarantined=%d)\n"
      stats.Serve.t_ok stats.Serve.t_seeds stats.Serve.t_kills
      stats.Serve.t_quarantined;
  ok

let overload ~root ~seed ~modules ~requests ~quiet =
  let ok, r =
    Serve.overload ~corpus_of ~root:(Filename.concat root "over") ~seed ~modules
      ~requests ()
  in
  print_report quiet "overload" r;
  say quiet "  shed-rate=%.0f%% violations=%d\n"
    (pct r.Serve.rshed r.Serve.rqueries)
    (List.length r.Serve.rviolations);
  List.iter (Printf.eprintf "noelle-serve: NOT conservative: %s\n") r.Serve.rviolations;
  if not ok then
    Printf.eprintf
      "noelle-serve: overload gate FAILED (served=%d/%d breaker-opens=%d \
       shed=%d hits=%d violations=%d)\n"
      r.Serve.rserved requests r.Serve.rbreaker_opens r.Serve.rshed
      r.Serve.rhits
      (List.length r.Serve.rviolations);
  ok

(* ------------------------------------------------------------------ *)

let run faults over seeds seed modules requests root metrics_out quiet =
  Noelle.Telemetry.install ();
  let ok =
    try
      if faults then soak ~root ~seeds ~modules ~requests ~quiet
      else if over then overload ~root ~seed ~modules ~requests ~quiet
      else replay ~root ~seed ~modules ~requests ~quiet
    with e ->
      (* trap: preserve the flight ring for post-mortem before dying *)
      let p = Serve.dump_flight root in
      Printf.eprintf "noelle-serve: trapped %s; flight recorder dumped to %s\n"
        (Printexc.to_string e) p;
      raise e
  in
  let counters_ok = check_counters () in
  Noelle.Telemetry.save_metrics metrics_out;
  (* always leave a flight dump behind (CI uploads it): even on a clean
     exit it names the last few hundred waypoints served *)
  let flight = Serve.dump_flight root in
  say quiet "wrote %s and %s (%d flight events)\n" metrics_out flight
    (List.length (Ir.Trace.flight_events ()));
  Noelle.Telemetry.uninstall ();
  if ok && counters_ok then 0 else 1

let faults =
  Arg.(value & flag & info [ "faults" ]
         ~doc:"kill-and-recover soak gate: serve with armed faults, recover, \
               demand answers identical to a cold run")
let over =
  Arg.(value & flag & info [ "overload" ]
         ~doc:"overload gate: high-traffic workload must shed to \
               conservative degraded answers, never wrong ones")
let seeds =
  Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N"
         ~doc:"seeds for the --faults soak sweep")
let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"workload seed for replay/overload modes")
let modules =
  Arg.(value & opt int 3 & info [ "modules" ] ~docv:"N"
         ~doc:"corpus modules per run (drawn from the kernel pool)")
let requests =
  Arg.(value & opt int 40 & info [ "requests" ] ~docv:"N"
         ~doc:"requests per generated workload")
let root =
  Arg.(value & opt string "_serve" & info [ "store-root" ] ~docv:"DIR"
         ~doc:"directory holding the on-disk artifact stores")
let metrics_out =
  Arg.(value & opt string "serve_metrics.json" & info [ "metrics" ]
         ~docv:"OUT.json" ~doc:"where to write the metrics-registry dump")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only report failures")

let cmd =
  Cmd.v
    (Cmd.info "noelle-serve"
       ~doc:"Analysis-as-a-service loop: crash-consistent artifact store, \
             kill-and-recover soak, overload shedding")
    Term.(const run $ faults $ over $ seeds $ seed $ modules $ requests $ root
          $ metrics_out $ quiet)

let () = exit (Cmd.eval' cmd)
