(** noelle-meta-verify — audit the embedded analysis artifacts of an IR
    file against the code they claim to describe (Noelle.Trust): every
    PDG / profile / architecture payload must carry a stamp whose
    fingerprint and checksum verify.  Exit status 1 when any artifact is
    stale, corrupt or unstamped, so it can gate a build.

    [--kernels] runs the self-contained trust gate instead: embed every
    artifact over the benchmark-suite kernels, round-trip through the
    printer/parser, demand verified fast-path reloads, push the module
    through the transactional pipeline with the metadata gate on, and
    require the surviving module to audit clean. *)

open Cmdliner
module Trust = Noelle.Trust

let verdict_char = function
  | Trust.Trusted _ -> '+'
  | Trust.Unstamped -> '?'
  | Trust.Stale _ -> '!'
  | Trust.Corrupt _ -> '!'

let event_json (e : Trust.event) =
  let escape s = String.concat "\\\"" (String.split_on_char '"' s) in
  Printf.sprintf "{\"check\":\"%s\",\"artifact\":\"%s\",\"verdict\":\"%s\"}"
    (Trust.check_id e.Trust.averdict)
    (escape (Trust.kind_to_string e.Trust.akind))
    (escape (Trust.verdict_to_string e.Trust.averdict))

(* ------------------------------------------------------------------ *)
(* File audit mode                                                     *)
(* ------------------------------------------------------------------ *)

let audit_file input quarantine json output =
  let m = Ir.Parser.parse_file input in
  let events = Trust.audit m in
  let failures = Trust.failures events in
  if json then
    Printf.printf "{\"module\":\"%s\",\"artifacts\":%d,\"failures\":%d,\"events\":[%s]}\n"
      input (List.length events) (List.length failures)
      (String.concat "," (List.map event_json events))
  else begin
    List.iter
      (fun (e : Trust.event) ->
        Printf.printf "%c %s\n" (verdict_char e.Trust.averdict) (Trust.event_to_string e))
      events;
    Printf.printf "noelle-meta-verify: %d artifacts, %d failures\n"
      (List.length events) (List.length failures)
  end;
  if quarantine && failures <> [] then begin
    List.iter
      (fun (e : Trust.event) -> Trust.quarantine m.Ir.Irmod.meta ~prefix:e.Trust.aprefix)
      failures;
    let out = match output with Some o -> o | None -> input in
    Ir.Printer.to_file m out;
    if not json then
      Printf.printf "quarantined %d artifacts -> %s\n" (List.length failures) out
  end;
  if failures = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Kernel gate mode                                                    *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL " ^ s); false) fmt

let gate_kernel ~roundtrip ~fuel (k : Bsuite.Kernels.kernel) =
  let name = k.Bsuite.Kernels.kname in
  let fuel = match fuel with Some f -> f | None -> k.Bsuite.Kernels.fuel in
  let m = Bsuite.Kernels.compile k in
  (* embed every artifact class, stamped *)
  let prof, _ = Noelle.Profiler.run ~fuel m in
  Noelle.Profiler.embed prof m;
  let n = Noelle.create m in
  let fns = Ir.Irmod.defined_functions m in
  List.iter (fun f -> Noelle.Pdg.embed (Noelle.pdg n f)) fns;
  Noelle.Arch.to_meta (Noelle.Arch.measure ()) m.Ir.Irmod.meta;
  (* round trip: stamps and payloads must survive print -> parse *)
  let m =
    if roundtrip then Ir.Parser.parse_module ~name (Ir.Printer.module_str m) else m
  in
  let pristine = Trust.audit m in
  let all_trusted =
    List.for_all
      (fun (e : Trust.event) ->
        match e.Trust.averdict with Trust.Trusted _ -> true | _ -> false)
      pristine
  in
  if not all_trusted then
    fail "%s: pristine corpus does not verify clean:\n  %s" name
      (String.concat "\n  " (List.map Trust.event_to_string (Trust.failures pristine)))
  else begin
    (* a fresh manager must take the verified fast path for every PDG *)
    let n2 = Noelle.create m in
    List.iter (fun f -> ignore (Noelle.pdg n2 f)) (Ir.Irmod.defined_functions m);
    if Noelle.fast_reloads n2 < List.length fns then
      fail "%s: expected %d fast reloads, saw %d" name (List.length fns)
        (Noelle.fast_reloads n2)
    else if Noelle.trust_events n2 <> [] then
      fail "%s: trust violations on a pristine module:\n  %s" name
        (String.concat "\n  "
           (List.map Trust.event_to_string (Noelle.trust_events n2)))
    else begin
      (* transform with the metadata gate on: stale artifacts must be
         stripped at commit and fresh PDGs re-embedded at the end *)
      let report = Ntools.Passes.run_standard ~fuel ~verify_meta:true m in
      if not report.Noelle.Pipeline.final_ok then
        fail "%s: pipeline final module not OK" name
      else
        let post = Trust.failures (Trust.audit m) in
        if post <> [] then
          fail "%s: stale/corrupt artifacts survived the pipeline:\n  %s" name
            (String.concat "\n  " (List.map Trust.event_to_string post))
        else begin
          Printf.printf
            "ok %-14s %d artifacts embedded, %d fast reloads, %d passes committed, \
             clean audit\n"
            name
            (List.length pristine)
            (Noelle.fast_reloads n2)
            (List.length (Noelle.Pipeline.committed report));
          true
        end
    end
  end

let gate_kernels ~roundtrip ~limit ~fuel =
  let ks = Bsuite.Kernels.all in
  let ks =
    match limit with
    | Some l -> List.filteri (fun i _ -> i < l) ks
    | None -> ks
  in
  let ok = List.for_all (fun k -> gate_kernel ~roundtrip ~fuel k) ks in
  Printf.printf "noelle-meta-verify: %d kernels %s\n" (List.length ks)
    (if ok then "verified" else "FAILED");
  if ok then 0 else 1

let run input kernels roundtrip limit fuel quarantine json output =
  match (input, kernels) with
  | Some f, _ -> audit_file f quarantine json output
  | None, true -> gate_kernels ~roundtrip ~limit ~fuel
  | None, false ->
    prerr_endline "noelle-meta-verify: need FILE.ir or --kernels";
    2

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let kernels =
  Arg.(value & flag & info [ "kernels" ]
         ~doc:"run the embed/round-trip/transform trust gate over the \
               benchmark-suite kernels")
let roundtrip =
  Arg.(value & flag & info [ "roundtrip" ]
         ~doc:"with --kernels: print and re-parse each module before verifying")
let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"with --kernels: only the first $(docv) kernels")
let fuel =
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
         ~doc:"interpreter fuel per profiling/differential run \
               (default: each kernel's own budget)")
let quarantine =
  Arg.(value & flag & info [ "quarantine" ]
         ~doc:"move failing artifacts into the quarantine namespace and \
               rewrite the file (or $(b,-o))")
let json = Arg.(value & flag & info [ "json" ] ~doc:"emit the audit as JSON")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")

let cmd =
  Cmd.v
    (Cmd.info "noelle-meta-verify"
       ~doc:"Verify embedded analysis metadata against the IR it describes")
    Term.(const run $ input $ kernels $ roundtrip $ limit $ fuel $ quarantine $ json
          $ output)

let () = exit (Cmd.eval' cmd)
