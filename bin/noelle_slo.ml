(** noelle-slo — evaluate the service-level objectives of the serve loop
    (DESIGN.md §15).

    Serves a deterministic workload (cold store, then warm restart — the
    same shape as noelle-serve's replay gate) under the telemetry spine,
    reads the per-kind [serve.latency_us.*] HDR histograms back, and:

    - prints a p50/p95/p99/p999 percentile table per request kind;
    - writes a Prometheus text exposition ([--prom]) so the numbers can
      be scraped/archived;
    - evaluates the SLO spec ([slo.json]: per-kind p99 budgets, max shed
      percentage, max deadline-miss count) and exits non-zero on any
      violation — [make slo] wires this into [make check]/CI.

    [--p99-budget-us N] overrides every kind's budget, which is how the
    negative test deliberately violates the SLO (a 1µs budget must
    fail). *)

open Cmdliner
module T = Noelle.Telemetry
module Json = Ir.Trace.Json

let say quiet fmt =
  Printf.ksprintf (fun s -> if not quiet then print_string s) fmt

let kinds = [ "edit"; "deps"; "bounds"; "loops" ]

(* ------------------------------------------------------------------ *)
(* SLO spec                                                            *)
(* ------------------------------------------------------------------ *)

type slo = {
  p99_us : (string * int64) list;  (** per-kind p99 budget *)
  max_shed_pct : float;
  max_deadline_misses : int;
}

let load_slo path : slo =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = Json.parse s in
  let num field j = Option.bind (Json.member field j) Json.to_num in
  let p99_us =
    match Json.member "kinds" doc with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match num "p99_us" v with
          | Some f -> Some (k, Int64.of_float f)
          | None -> None)
        kvs
    | _ -> []
  in
  {
    p99_us;
    max_shed_pct = Option.value ~default:100.0 (num "max_shed_pct" doc);
    max_deadline_misses =
      (match num "max_deadline_misses" doc with
      | Some f -> int_of_float f
      | None -> max_int);
  }

(* ------------------------------------------------------------------ *)
(* Measured workload                                                   *)
(* ------------------------------------------------------------------ *)

let corpus_of () =
  List.map
    (fun name ->
      match Bsuite.Kernels.find name with
      | Some k -> (name, Bsuite.Kernels.compile k)
      | None ->
        Printf.eprintf "noelle-slo: pool kernel %S missing\n" name;
        exit 2)
    Serve.Workload.default_pool

(** Cold run then warm restart over the same store: the measured latency
    distribution covers both the recompute-heavy and the store-hit-heavy
    regimes, which is what the service's tail actually looks like. *)
let run_workload ~root ~seed ~modules ~requests : unit =
  let mods = Serve.Workload.pick_modules ~seed ~count:modules in
  let w = Serve.Workload.generate ~seed ~mods ~requests in
  let run_root = Filename.concat root (Printf.sprintf "slo%d" seed) in
  Serve.Store.remove_tree run_root;
  let corpus () =
    List.filter (fun (n, _) -> List.mem n mods) (corpus_of ())
  in
  let sv = Serve.create ~root:run_root (corpus ()) in
  ignore (Serve.run sv w ());
  Serve.Store.close sv.Serve.store;
  let sv2 = Serve.create ~root:run_root (corpus ()) in
  ignore (Serve.run sv2 w ());
  Serve.Store.close sv2.Serve.store

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type row = {
  kind : string;
  count : int;
  sum : int64;
  p50 : int64;
  p95 : int64;
  p99 : int64;
  p999 : int64;
}

let measure_rows () : row list =
  List.filter_map
    (fun kind ->
      match T.histogram ("serve.latency_us." ^ kind) with
      | Some h when h.Ir.Trace.hcount > 0 ->
        Some
          {
            kind;
            count = h.Ir.Trace.hcount;
            sum = h.Ir.Trace.hsum;
            p50 = T.quantile h 0.5;
            p95 = T.quantile h 0.95;
            p99 = T.quantile h 0.99;
            p999 = T.quantile h 0.999;
          }
      | _ -> None)
    kinds

let table (rows : row list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-8s %8s %12s %12s %12s %12s\n" "kind" "count" "p50_us"
       "p95_us" "p99_us" "p999_us");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-8s %8d %12Ld %12Ld %12Ld %12Ld\n" r.kind r.count
           r.p50 r.p95 r.p99 r.p999))
    rows;
  Buffer.contents b

(** Prometheus text exposition: a summary per kind plus the shed and
    deadline-miss gauges the SLO also gates on. *)
let prometheus (rows : row list) ~shed_pct ~deadline_misses : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "# HELP noelle_serve_latency_us request latency by kind (microseconds)\n";
  Buffer.add_string b "# TYPE noelle_serve_latency_us summary\n";
  List.iter
    (fun r ->
      List.iter
        (fun (q, v) ->
          Buffer.add_string b
            (Printf.sprintf "noelle_serve_latency_us{kind=\"%s\",quantile=\"%s\"} %Ld\n"
               r.kind q v))
        [ ("0.5", r.p50); ("0.95", r.p95); ("0.99", r.p99); ("0.999", r.p999) ];
      Buffer.add_string b
        (Printf.sprintf "noelle_serve_latency_us_sum{kind=\"%s\"} %Ld\n" r.kind
           r.sum);
      Buffer.add_string b
        (Printf.sprintf "noelle_serve_latency_us_count{kind=\"%s\"} %d\n" r.kind
           r.count))
    rows;
  Buffer.add_string b "# HELP noelle_serve_shed_pct shed dependence queries (percent)\n";
  Buffer.add_string b "# TYPE noelle_serve_shed_pct gauge\n";
  Buffer.add_string b (Printf.sprintf "noelle_serve_shed_pct %.3f\n" shed_pct);
  Buffer.add_string b
    "# HELP noelle_serve_deadline_misses requests that exhausted the store deadline\n";
  Buffer.add_string b "# TYPE noelle_serve_deadline_misses counter\n";
  Buffer.add_string b
    (Printf.sprintf "noelle_serve_deadline_misses %d\n" deadline_misses);
  Buffer.contents b

let evaluate (slo : slo) (rows : row list) ~shed_pct ~deadline_misses :
    string list =
  let viol = ref [] in
  let add fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
  List.iter
    (fun r ->
      match List.assoc_opt r.kind slo.p99_us with
      | Some budget when Int64.compare r.p99 budget > 0 ->
        add "%s: p99 %Ldus exceeds budget %Ldus" r.kind r.p99 budget
      | _ -> ())
    rows;
  (* a kind with a budget but no observations means the workload never
     exercised it — that is a measurement hole, not a pass *)
  List.iter
    (fun (k, _) ->
      if not (List.exists (fun r -> r.kind = k) rows) then
        add "%s: budgeted but never measured" k)
    slo.p99_us;
  if shed_pct > slo.max_shed_pct then
    add "shed %.1f%% exceeds max %.1f%%" shed_pct slo.max_shed_pct;
  if deadline_misses > slo.max_deadline_misses then
    add "deadline misses %d exceed max %d" deadline_misses
      slo.max_deadline_misses;
  List.rev !viol

(* ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let run slo_path seed modules requests root prom_out report_out budget_override
    quiet =
  let slo = load_slo slo_path in
  let slo =
    match budget_override with
    | Some us ->
      { slo with p99_us = List.map (fun (k, _) -> (k, Int64.of_int us)) slo.p99_us }
    | None -> slo
  in
  T.install ();
  run_workload ~root ~seed ~modules ~requests;
  let rows = measure_rows () in
  let queries = Int64.to_int (T.counter "serve.queries") in
  let shed = Int64.to_int (T.counter "serve.shed") in
  let shed_pct =
    if queries = 0 then 0.0 else 100.0 *. float_of_int shed /. float_of_int queries
  in
  let deadline_misses = Int64.to_int (T.counter "serve.deadline_misses") in
  let tbl = table rows in
  say quiet "%s" tbl;
  say quiet "shed=%.1f%% deadline-misses=%d\n" shed_pct deadline_misses;
  (match report_out with Some p -> write_file p tbl | None -> ());
  (match prom_out with
  | Some p -> write_file p (prometheus rows ~shed_pct ~deadline_misses)
  | None -> ());
  T.uninstall ();
  T.reset ();
  match evaluate slo rows ~shed_pct ~deadline_misses with
  | [] ->
    say quiet "slo: ok (%d kinds within budget)\n" (List.length rows);
    0
  | violations ->
    List.iter (Printf.eprintf "noelle-slo: VIOLATION: %s\n") violations;
    1

let slo_path =
  Arg.(value & opt string "slo.json" & info [ "slo" ] ~docv:"FILE.json"
         ~doc:"the SLO spec: per-kind p99 budgets, max shed %, max deadline misses")
let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"workload seed")
let modules =
  Arg.(value & opt int 3 & info [ "modules" ] ~docv:"N"
         ~doc:"corpus modules per run")
let requests =
  Arg.(value & opt int 150 & info [ "requests" ] ~docv:"N"
         ~doc:"requests per measured workload")
let root =
  Arg.(value & opt string "_serve" & info [ "store-root" ] ~docv:"DIR"
         ~doc:"directory holding the on-disk artifact stores")
let prom_out =
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"OUT.prom"
         ~doc:"write a Prometheus text exposition of the percentiles here")
let report_out =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"OUT.txt"
         ~doc:"write the percentile table here")
let budget_override =
  Arg.(value & opt (some int) None & info [ "p99-budget-us" ] ~docv:"US"
         ~doc:"override every kind's p99 budget (negative testing)")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only report violations")

let cmd =
  Cmd.v
    (Cmd.info "noelle-slo"
       ~doc:"Serve a workload, report latency percentiles per request kind, \
             gate on the SLO spec")
    Term.(const run $ slo_path $ seed $ modules $ requests $ root $ prom_out
          $ report_out $ budget_override $ quiet)

let () = exit (Cmd.eval' cmd)
