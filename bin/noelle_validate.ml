(** noelle-validate — translation-validation sweep over the benchmark
    corpus (DESIGN.md §12).

    Three gates, all of which must hold for exit 0:

    1. The standard pass stack clears the trace-equivalence differential
       gate on every kernel with {e zero} rollbacks and a behaviourally
       clean final module.
    2. The parallel schedule of every transformed kernel replay-validates
       against the sequential trace of the pristine kernel
       ({!Psim.Runtime.replay_validate}).
    3. Planted [Effect_reorder] faults (seeded fuzz programs with global
       arrays) are rejected by the trace gate with a minimal event-diff
       witness — while the legacy output-compare gate, run on the same
       corrupted module, commits it.  The sweep fails if no seed yields a
       plantable site (a vacuous pass is a failure, not a success). *)

open Cmdliner

let reorder_pass seed : Noelle.Pipeline.pass =
  {
    Noelle.Pipeline.pname = Printf.sprintf "effect-reorder-%d" seed;
    papply =
      (fun m ->
        match
          Ir.Faultgen.inject ~kinds:Ir.Faultgen.observable_kinds ~seed m
        with
        | Some d -> d
        | None -> "no site");
    plicense = Ir.Obs.Exact;
  }

let run limit seeds fuel vec quiet =
  let say fmt =
    Printf.ksprintf (fun s -> if not quiet then print_string s) fmt
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* -- gate 1 + 2: corpus sweep under the trace gate, then replay -- *)
  let kernels =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) Bsuite.Kernels.all
    | None -> Bsuite.Kernels.all
  in
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let original = Bsuite.Kernels.compile k in
      let m = Bsuite.Kernels.compile k in
      (* per-kernel budget, with the same parallel-simulation headroom the
         bench harness grants (a parallel run burns fuel on every task) *)
      let kfuel = 4 * k.Bsuite.Kernels.fuel in
      let report = Ntools.Passes.run_standard ~fuel:kfuel ~vec m in
      let committed = List.length (Noelle.Pipeline.committed report) in
      let bad =
        List.filter
          (fun (e : Noelle.Pipeline.entry) ->
            match e.Noelle.Pipeline.eoutcome with
            | Noelle.Pipeline.Committed _ -> false
            | _ -> true)
          report.Noelle.Pipeline.entries
      in
      List.iter
        (fun (e : Noelle.Pipeline.entry) ->
          fail "%s: pass %s: %s" k.Bsuite.Kernels.kname e.Noelle.Pipeline.epass
            (Noelle.Pipeline.outcome_to_string e.Noelle.Pipeline.eoutcome))
        bad;
      if not report.Noelle.Pipeline.final_ok then
        fail "%s: final module NOT ok" k.Bsuite.Kernels.kname;
      let replay =
        Psim.Runtime.replay_validate ~fuel:kfuel
          ~license:Ir.Obs.Permute_iterations ~original m
      in
      (match replay with
      | Ok () -> ()
      | Error (reason, witness) ->
        fail "%s: replay validation: %s" k.Bsuite.Kernels.kname reason;
        if not quiet then List.iter print_endline witness);
      say "%-16s %d/%d passes committed, replay %s\n" k.Bsuite.Kernels.kname
        committed
        (List.length report.Noelle.Pipeline.entries)
        (match replay with Ok () -> "validated" | Error _ -> "REJECTED"))
    kernels;
  (* -- gate 3: planted effect reorders over seeded fuzz programs -- *)
  let planted = ref 0 and caught = ref 0 and legacy_missed = ref 0 in
  let vec_committed = ref 0 in
  for seed = 1 to seeds do
    let src = Bsuite.Generator.program seed in
    let name = Printf.sprintf "fuzz%d" seed in
    let config = { Noelle.Pipeline.default_config with Noelle.Pipeline.fuel } in
    (* with --vec every fuzz seed also routes through a live vec pass
       under the trace-equivalence gate: a rollback here means the
       vectorizer itself broke the program's observable behaviour *)
    if vec then begin
      let mv = Minic.Lower.compile ~name src in
      let nv = Noelle.create mv in
      let rv = Noelle.Pipeline.run ~config mv [ Ntools.Passes.vec nv ] in
      List.iter
        (fun (e : Noelle.Pipeline.entry) ->
          match e.Noelle.Pipeline.eoutcome with
          | Noelle.Pipeline.Committed _ -> incr vec_committed
          | o ->
            fail "seed %d: vec pass: %s" seed
              (Noelle.Pipeline.outcome_to_string o))
        rv.Noelle.Pipeline.entries
    end;
    let probe = Minic.Lower.compile ~name src in
    match
      Ir.Faultgen.inject ~kinds:Ir.Faultgen.observable_kinds ~seed probe
    with
    | None -> ()
    | Some desc ->
      incr planted;
      let m = Minic.Lower.compile ~name src in
      let r = Noelle.Pipeline.run ~config m [ reorder_pass seed ] in
      (match r.Noelle.Pipeline.entries with
      | [ e ] -> (
        match e.Noelle.Pipeline.eoutcome with
        | Noelle.Pipeline.Rolled_back _
          when e.Noelle.Pipeline.etrace_diff <> [] ->
          incr caught;
          say "seed %-3d %s: rejected with witness\n" seed desc
        | o ->
          fail "seed %d: %s: trace gate said %s (witness %d lines)" seed desc
            (Noelle.Pipeline.outcome_to_string o)
            (List.length e.Noelle.Pipeline.etrace_diff))
      | _ -> fail "seed %d: expected one entry" seed);
      let legacy_config =
        { config with Noelle.Pipeline.legacy_differential = true }
      in
      let m' = Minic.Lower.compile ~name src in
      let r' = Noelle.Pipeline.run ~config:legacy_config m' [ reorder_pass seed ] in
      (match r'.Noelle.Pipeline.entries with
      | [ { Noelle.Pipeline.eoutcome = Noelle.Pipeline.Committed _; _ } ] ->
        incr legacy_missed
      | _ -> fail "seed %d: legacy output gate unexpectedly caught %s" seed desc)
  done;
  if !planted = 0 then
    fail "no Effect_reorder site in %d fuzz seeds: the sweep proved nothing"
      seeds;
  say
    "effect-reorder sweep: %d planted, %d caught by the trace gate, %d \
     missed by the legacy gate\n"
    !planted !caught !legacy_missed;
  if vec then
    say "vec sweep: %d fuzz seeds cleared the trace gate under the vec pass\n"
      !vec_committed;
  if !failures = [] then begin
    say "validate: %d kernels clean, trace gate strictly stronger\n"
      (List.length kernels);
    0
  end
  else begin
    List.iter (Printf.eprintf "noelle-validate: %s\n") (List.rev !failures);
    1
  end

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"validate only the first $(docv) kernels")
let seeds =
  Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N"
         ~doc:"fuzz seeds to sweep for planted effect reorders")
let fuel =
  Arg.(value & opt int 3_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"interpreter fuel per fuzz-program differential run (kernels \
               use their own per-kernel budget)")
let vec =
  Arg.(value & flag & info [ "vec" ]
         ~doc:"route the vectorizer into both sweeps: the corpus gate runs \
               the --vec pass stack, and each planted effect-reorder seed \
               runs behind a live vec pass")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only report failures")

let cmd =
  Cmd.v
    (Cmd.info "noelle-validate"
       ~doc:"Translation validation: trace-equivalence gates over the corpus")
    Term.(const run $ limit $ seeds $ fuel $ vec $ quiet)

let () = exit (Cmd.eval' cmd)
