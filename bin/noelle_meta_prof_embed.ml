(** noelle-meta-prof-embed — embed a profile produced by
    [noelle-prof-coverage] into an IR file as metadata (Table 2). *)

open Cmdliner

let run input profile output =
  let m = Ir.Parser.parse_file input in
  Ir.Meta.clear_prefix m.Ir.Irmod.meta "prof.";
  let ic = open_in profile in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '=' with
       | Some i ->
         Ir.Meta.set m.Ir.Irmod.meta (String.sub line 0 i)
           (String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (* stamp the freshly written payload so consumers can verify it *)
  Noelle.Trust.stamp m.Ir.Irmod.meta ~prefix:"prof." ~tool:"noelle-meta-prof-embed"
    ~fp:(Ir.Fingerprint.module_fp m);
  let out = match output with Some o -> o | None -> input in
  Ir.Printer.to_file m out;
  Printf.printf "noelle-meta-prof-embed: %s + %s -> %s\n" input profile out;
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let profile = Arg.(required & pos 1 (some file) None & info [] ~docv:"PROFILE")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")

let cmd =
  Cmd.v
    (Cmd.info "noelle-meta-prof-embed" ~doc:"Embed profile metadata into IR")
    Term.(const run $ input $ profile $ output)

let () = exit (Cmd.eval' cmd)
