(** The Program Dependence Graph abstraction (§2.2 "PDG").

    Nodes are instruction ids of a function; edges carry control/data
    attributes per {!Depgraph}.  The PDG is powered by the modular alias
    stack ({!Ir.Alias}, {!Ir.Andersen}): building with the baseline stack
    reproduces LLVM-precision dependences, building with the NOELLE stack
    adds the state-of-the-art disprovals measured in Figure 3.

    From a function PDG a pass can request a {e loop dependence graph}
    ({!loop_dg}): the subgraph for one loop with external live-in/live-out
    nodes, refined with loop-centric analyses (SCEV-based address
    disambiguation and loop-carried classification). *)

open Ir

type t = {
  fdg : Depgraph.t;            (** whole-function dependence graph *)
  f : Func.t;
  m : Irmod.t;
  stack : Alias.stack;
  (* statistics for the Figure 3 experiment *)
  mem_pairs_total : int;       (** candidate memory-dependence pairs *)
  mem_pairs_disproved : int;   (** pairs answered "no dependence" *)
  mem_queries : int;
      (** alias-stack queries actually issued: candidate pairs minus those
          skipped by points-to bucketing or answered from the memo table *)
  degraded : bool;
  (** the alias-query budget was exhausted: the remaining memory
      dependences were emitted conservatively (may-dep) without consulting
      the alias stack.  The graph is sound but less precise. *)
}

(** Build the dependence graph of function [f] using alias stack [stack].

    [pts], when given (and not degraded), turns on alias-class bucketing:
    memory instructions are partitioned by Andersen points-to class —
    two instructions whose pointer operands reach disjoint object sets can
    never depend, so cross-class pairs are disproved without consulting
    the alias stack at all.  Load/store answers that *are* queried get
    memoized per pointer-value pair, so phi-congruent operand pairs hit
    the stack once.  Both shortcuts must agree with the stack (the
    differential suite checks edge sets against the unbucketed builder).

    [budget], when given, bounds the number of alias-stack queries
    actually issued (skipped pairs and memo hits are free): past the
    budget every remaining candidate pair is treated as a may dependence
    and the result is marked {!field-degraded}. *)
let build ?budget ?(stack : Alias.stack = [ Alias.baseline ]) ?pts (m : Irmod.t) (f : Func.t) : t =
  let g = Depgraph.create () in
  Func.iter_insts (fun i -> Depgraph.add_node g i.Instr.id) f;
  (* register dependences (SSA def-use): always must, RAW *)
  Func.iter_insts
    (fun i ->
      List.iter
        (function
          | Instr.Reg r ->
            ignore (Depgraph.add_edge g ~must:true ~kind:(Depgraph.Register Depgraph.RAW) r i.Instr.id)
          | _ -> ())
        (Instr.operands i.Instr.op))
    f;
  (* control dependences via the postdominator tree: for each CFG edge
     (a,b), every block on the postdom-tree path from b (inclusive) to
     ipostdom(a) (exclusive) is control-dependent on a's terminator *)
  let pdt = Dom.compute_post f in
  let dep_blocks = Hashtbl.create 16 in
  (* membership of the growing per-terminator block lists is a
     Hashtbl-backed set, not [List.mem] over the accumulator (quadratic on
     CFGs where many edges share a postdominator path).  A block already
     recorded for [a] also has all its ancestors up to [idom a] recorded
     (same stop block), so the walk can cut off there entirely. *)
  let dep_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let stop = Hashtbl.find_opt pdt.Dom.idom a in
          let x = ref b in
          let continue_ = ref true in
          while !continue_ do
            if Some !x = stop then continue_ := false
            else if Hashtbl.mem dep_seen (a, !x) then continue_ := false
            else begin
              Hashtbl.replace dep_seen (a, !x) ();
              let cur = try Hashtbl.find dep_blocks a with Not_found -> [] in
              Hashtbl.replace dep_blocks a (!x :: cur);
              match Hashtbl.find_opt pdt.Dom.idom !x with
              | Some up when up <> !x -> x := up
              | _ -> continue_ := false
            end
          done)
        (Func.successors f a))
    f.Func.blocks;
  Hashtbl.iter
    (fun a xs ->
      match Func.terminator f a with
      | None -> ()
      | Some t ->
        List.iter
          (fun x ->
            if x >= 0 && Hashtbl.mem f.Func.blks x then
              List.iter
                (fun (i : Instr.inst) ->
                  ignore
                    (Depgraph.add_edge g ~must:true ~kind:Depgraph.Control t.Instr.id
                       i.Instr.id))
                (Func.insts_of_block f x))
          xs)
    dep_blocks;
  (* memory dependences: pairwise over memory instructions *)
  let mems =
    Func.fold_insts
      (fun acc i -> if Instr.is_memory_op i.Instr.op then i :: acc else acc)
      [] f
    |> List.rev
  in
  let writes (i : Instr.inst) =
    match i.Instr.op with
    | Instr.Store _ -> true
    | Instr.Call _ -> true (* conservatively both reads and writes *)
    | _ -> false
  in
  let reads (i : Instr.inst) =
    match i.Instr.op with
    | Instr.Load _ -> true
    | Instr.Call _ -> true
    | _ -> false
  in
  let total = ref 0 and disproved = ref 0 in
  let queries = ref 0 and memo_hits = ref 0 and skipped = ref 0 in
  let degraded = ref false in
  (* --- alias-class bucketing (sparse engine, DESIGN.md §11) ---
     The points-to class of a memory instruction is the union-find class
     of the abstract objects its pointer (for loads/stores) or its
     mod/ref summary (for calls) reaches.  Disjoint classes cannot
     depend: the alias stack would disprove every such pair anyway
     (Andersen answers [No_alias] on disjoint object sets, and the
     baseline's must/no answers — same-address, same-base offsets,
     escaping allocas — all imply overlapping sets), so the pair is
     counted as disproved without issuing a query. *)
  let classify =
    match pts with
    | Some (r : Andersen.t) when not r.Andersen.degraded ->
      let uf : (Andersen.obj, Andersen.obj) Hashtbl.t = Hashtbl.create 64 in
      let rec ufind o =
        match Hashtbl.find_opt uf o with
        | None -> o
        | Some p when p = o -> o
        | Some p ->
          let root = ufind p in
          Hashtbl.replace uf o root;
          root
      in
      let union a b =
        let ra = ufind a and rb = ufind b in
        if ra <> rb then Hashtbl.replace uf ra rb
      in
      let objs_for (i : Instr.inst) =
        match i.Instr.op with
        | Instr.Load p | Instr.Store (_, p) ->
          let s = Andersen.objs_of r f p in
          if Andersen.ObjSet.is_empty s || Andersen.ObjSet.mem Andersen.Oextern s
          then None (* no information: must be queried against everything *)
          else Some s
        | Instr.Call _ -> (
          match Andersen.call_touched r f i with
          | None -> None
          | Some (rd, wr) ->
            let s = Andersen.ObjSet.union rd wr in
            if Andersen.ObjSet.mem Andersen.Oextern s then None else Some s)
        | _ -> None
      in
      let sets =
        List.filter_map
          (fun (i : Instr.inst) ->
            Option.map (fun s -> (i.Instr.id, s)) (objs_for i))
          mems
      in
      List.iter
        (fun (_, s) ->
          match Andersen.ObjSet.min_elt_opt s with
          | None -> ()
          | Some o0 -> Andersen.ObjSet.iter (fun o -> union o0 o) s)
        sets;
      let cls : (int, [ `Class of Andersen.obj | `Silent ]) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun (id, s) ->
          match Andersen.ObjSet.min_elt_opt s with
          | None ->
            (* touches no object at all (pure/alloc builtins): conflicts
               with nothing, and the stack agrees *)
            Hashtbl.replace cls id `Silent
          | Some o0 -> Hashtbl.replace cls id (`Class (ufind o0)))
        sets;
      fun (i : Instr.inst) ->
        (match Hashtbl.find_opt cls i.Instr.id with
        | Some (`Class o) -> `Class (ufind o)
        | Some `Silent -> `Silent
        | None -> `Unknown)
    | _ -> fun _ -> `Unknown
  in
  let bucket_skip a b =
    match (classify a, classify b) with
    | `Silent, _ | _, `Silent -> true
    | `Class ra, `Class rb -> ra <> rb
    | _ -> false
  in
  (* memoized alias-stack answers for load/store pairs, keyed on the
     normalized pointer-value pair: phi-congruent operand pairs (and the
     symmetric orientation) hit the stack once per build *)
  let memo : (Instr.value * Instr.value, bool) Hashtbl.t = Hashtbl.create 64 in
  let raw_query a b =
    incr queries;
    match budget with
    | Some bmax when !queries > bmax ->
      degraded := true;
      true (* budget exhausted: conservative may-dep, no alias query *)
    | _ -> Alias.may_conflict stack m f a b
  in
  let conflict (a : Instr.inst) (b : Instr.inst) =
    incr total;
    if !degraded then true
    else if bucket_skip a b then begin
      incr skipped;
      false
    end
    else
      match (a.Instr.op, b.Instr.op, Alias.pointer_operand a, Alias.pointer_operand b) with
      | (Instr.Load _ | Instr.Store _), (Instr.Load _ | Instr.Store _), Some p1, Some p2 -> (
        let key = if compare p1 p2 <= 0 then (p1, p2) else (p2, p1) in
        match Hashtbl.find_opt memo key with
        | Some ans ->
          incr memo_hits;
          ans
        | None ->
          let ans = raw_query a b in
          (* a budget-exhausted conservative answer is not a stack fact:
             do not memoize it *)
          if not !degraded then Hashtbl.replace memo key ans;
          ans)
      | _ -> raw_query a b
  in
  (* self dependences: a writing instruction may conflict with its own
     dynamic instances across iterations (e.g. a store whose address is
     not analyzable); the loop refinement later drops the self edge when
     SCEV proves per-iteration addresses distinct *)
  List.iter
    (fun (a : Instr.inst) ->
      if writes a then begin
        if not (conflict a a) then incr disproved
        else
          ignore
            (Depgraph.add_edge g ~kind:(Depgraph.Memory Depgraph.WAW) a.Instr.id
               a.Instr.id)
      end)
    mems;
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if writes a || writes b then begin
            if not (conflict a b) then incr disproved
            else begin
              (* direction: program order is not tracked flow-sensitively;
                 emit both directions with the appropriate sorts, which is
                 what a flow-insensitive PDG needs for SCC reasoning *)
              let emit src dst sort =
                ignore (Depgraph.add_edge g ~kind:(Depgraph.Memory sort) src dst)
              in
              match (writes a, writes b) with
              | true, true ->
                emit a.Instr.id b.Instr.id Depgraph.WAW;
                emit b.Instr.id a.Instr.id Depgraph.WAW;
                if reads a || reads b then begin
                  emit a.Instr.id b.Instr.id Depgraph.RAW;
                  emit b.Instr.id a.Instr.id Depgraph.RAW
                end
              | true, false ->
                emit a.Instr.id b.Instr.id Depgraph.RAW;
                emit b.Instr.id a.Instr.id Depgraph.WAR
              | false, true ->
                emit b.Instr.id a.Instr.id Depgraph.RAW;
                emit a.Instr.id b.Instr.id Depgraph.WAR
              | false, false -> ()
            end
          end)
        rest;
      pairs rest
  in
  pairs mems;
  Trace.touch "pdg.pairs_skipped_bucketing";
  Trace.touch "pdg.alias_memo_hits";
  Trace.touch "pdg.alias_queries";
  Trace.add "pdg.mem_pairs" !total;
  Trace.add "pdg.alias_queries" !queries;
  Trace.add "pdg.pairs_skipped_bucketing" !skipped;
  Trace.add "pdg.alias_memo_hits" !memo_hits;
  if !degraded then Trace.incr_m "pdg.degraded";
  {
    fdg = g;
    f;
    m;
    stack;
    mem_pairs_total = !total;
    mem_pairs_disproved = !disproved;
    mem_queries = !queries;
    degraded = !degraded;
  }

(** Fraction of candidate memory dependences disproved (Figure 3 metric). *)
let disproval_rate (t : t) =
  if t.mem_pairs_total = 0 then 1.0
  else float_of_int t.mem_pairs_disproved /. float_of_int t.mem_pairs_total

(* ------------------------------------------------------------------ *)
(* Loop dependence graphs                                              *)
(* ------------------------------------------------------------------ *)

type loop_dg = {
  ldg : Depgraph.t;            (** loop graph: internal = loop instructions *)
  loop : Loopnest.loop;
  pdg : t;
}

(** Find the phi of the loop header that looks like the primary induction
    sequence for SCEV refinement (first header phi with an add/sub update
    inside the loop). *)
let refinement_phi (f : Func.t) (l : Loopnest.loop) =
  let header_phis =
    List.filter
      (fun (i : Instr.inst) -> match i.Instr.op with Instr.Phi _ -> true | _ -> false)
      (Func.insts_of_block f l.Loopnest.header)
  in
  List.find_opt
    (fun (p : Instr.inst) ->
      match p.Instr.op with
      | Instr.Phi incs ->
        List.exists
          (fun (_, v) ->
            match v with
            | Instr.Reg r -> (
              match Func.inst_opt f r with
              | Some { Instr.op = Instr.Bin ((Instr.Add | Instr.Sub), _, _); parent; _ } ->
                Loopnest.contains l parent
              | _ -> false)
            | _ -> false)
          incs
      | _ -> false)
    header_phis

(** Build the dependence graph of loop [l], refining memory dependences
    with loop-centric analyses exactly when the graph is requested (the
    demand-driven refinement of §2.2). *)
let loop_dg (t : t) (l : Loopnest.loop) : loop_dg =
  let f = t.f in
  let in_loop id =
    match Func.inst_opt f id with
    | Some i -> Loopnest.contains l i.Instr.parent
    | None -> false
  in
  let g = Depgraph.slice t.fdg ~keep:in_loop in
  let iv_phi = refinement_phi f l in
  (* inner-loop phis with bounded spans become extra address symbols, so
     the outer loops of nested kernels (c[i*N+j]) can be disambiguated *)
  let nest = Loopnest.compute f in
  let inner_syms =
    List.concat_map
      (fun (sl : Loopnest.loop) ->
        if sl.Loopnest.header <> l.Loopnest.header
           && Loopnest.contains l sl.Loopnest.header
        then
          List.filter_map
            (fun (i : Instr.inst) ->
              match i.Instr.op with
              | Instr.Phi _ ->
                Option.map (fun span -> (i.Instr.id, span)) (Scev.phi_span f nest i)
              | _ -> None)
            (Func.insts_of_block f sl.Loopnest.header)
        else [])
      nest.Loopnest.loops
  in
  let symbols =
    (match iv_phi with Some p -> [ p.Instr.id ] | None -> [])
    @ List.map fst inner_syms
  in
  (* classify / refine every edge *)
  let keep (e : Depgraph.edge) =
    match e.Depgraph.kind with
    | Depgraph.Control ->
      e.Depgraph.loop_carried <- false;
      true
    | Depgraph.Register _ ->
      (* a register dep is loop-carried iff it feeds a header phi from
         inside the loop (the back-edge value) *)
      let carried =
        Depgraph.is_internal g e.Depgraph.esrc
        &&
        match Func.inst_opt f e.Depgraph.edst with
        | Some { Instr.op = Instr.Phi _; parent; _ } -> parent = l.Loopnest.header
        | _ -> false
      in
      e.Depgraph.loop_carried <- carried;
      true
    | Depgraph.Memory _ -> (
      if not (Depgraph.is_internal g e.Depgraph.esrc && Depgraph.is_internal g e.Depgraph.edst)
      then begin
        e.Depgraph.loop_carried <- false;
        true
      end
      else
        let addr_of id =
          Option.bind (Func.inst_opt f id) Alias.pointer_operand
        in
        match (iv_phi, addr_of e.Depgraph.esrc, addr_of e.Depgraph.edst) with
        | Some phi, Some p1, Some p2 -> (
          let a1 = Scev.poly_of f l ~symbols p1 in
          let a2 = Scev.poly_of f l ~symbols p2 in
          match (a1, a2) with
          | Some a1, Some a2 -> (
            match
              Scev.classify_pair ~outer:phi.Instr.id ~spans:inner_syms a1 a2
            with
            | `No_dep -> false (* fully disproved: drop edge *)
            | `Intra ->
              e.Depgraph.loop_carried <- false;
              true
            | `Unknown ->
              e.Depgraph.loop_carried <- true;
              true)
          | _ ->
            e.Depgraph.loop_carried <- true;
            true)
        | _ ->
          e.Depgraph.loop_carried <- true;
          true)
  in
  Depgraph.filter_edges g ~keep_edge:keep;
  { ldg = g; loop = l; pdg = t }

(** Live-in values of loop [l]: values defined outside (or arguments /
    globals / constants are excluded — only SSA registers and arguments
    count) used inside. *)
let live_ins (t : t) (l : Loopnest.loop) : Instr.value list =
  let f = t.f in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (i : Instr.inst) ->
      List.iter
        (fun v ->
          let key =
            match v with
            | Instr.Reg r -> (
              match Func.inst_opt f r with
              | Some d when not (Loopnest.contains l d.Instr.parent) -> Some v
              | _ -> None)
            | Instr.Arg _ -> Some v
            | _ -> None
          in
          match key with
          | Some v when not (Hashtbl.mem seen v) ->
            Hashtbl.replace seen v ();
            out := v :: !out
          | _ -> ())
        (Instr.operands i.Instr.op))
    (Loopnest.insts f l);
  List.rev !out

(** Live-out registers of loop [l]: instructions defined inside the loop
    and used outside it. *)
let live_outs (t : t) (l : Loopnest.loop) : int list =
  let f = t.f in
  let out = ref [] in
  Func.iter_insts
    (fun (user : Instr.inst) ->
      if not (Loopnest.contains l user.Instr.parent) then
        List.iter
          (function
            | Instr.Reg r -> (
              match Func.inst_opt f r with
              | Some d when Loopnest.contains l d.Instr.parent ->
                if not (List.mem r !out) then out := r :: !out
              | _ -> ())
            | _ -> ())
          (Instr.operands user.Instr.op))
    f;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Metadata embedding (noelle-meta-pdg-embed)                          *)
(* ------------------------------------------------------------------ *)

(** Embed the dependence edges of [t] as module metadata so they can be
    reloaded without re-running the alias analyses.  The payload is
    stamped ({!Trust.stamp}) with a fingerprint of the function as it
    stands now, so consumers can tell when it goes stale. *)
let embed ?(tool = "noelle-meta-pdg-embed") (t : t) =
  let meta = t.m.Irmod.meta in
  let prefix = Printf.sprintf "pdg.%s." t.f.Func.fname in
  Meta.clear_prefix meta prefix;
  let n = ref 0 in
  List.iter
    (fun (e : Depgraph.edge) ->
      Meta.set meta
        (Printf.sprintf "pdg.%s.%d" t.f.Func.fname !n)
        (Printf.sprintf "%d %d %s %b" e.Depgraph.esrc e.Depgraph.edst
           (Depgraph.kind_to_string e.Depgraph.kind)
           e.Depgraph.must);
      incr n)
    (Depgraph.edges t.fdg);
  Meta.set meta
    (Printf.sprintf "pdg.%s.count" t.f.Func.fname)
    (string_of_int !n);
  Meta.set meta
    (Printf.sprintf "pdg.%s.stats" t.f.Func.fname)
    (Printf.sprintf "%d %d" t.mem_pairs_total t.mem_pairs_disproved);
  Trust.stamp meta ~prefix ~tool ~fp:(Fingerprint.func_fp t.f)

(** Reconstruct a PDG from embedded metadata; [None] if absent. *)
let of_embedded (m : Irmod.t) (f : Func.t) : t option =
  let meta = m.Irmod.meta in
  match Meta.get_int meta (Printf.sprintf "pdg.%s.count" f.Func.fname) with
  | None -> None
  | Some n ->
    let g = Depgraph.create () in
    Func.iter_insts (fun i -> Depgraph.add_node g i.Instr.id) f;
    let ok = ref true in
    (* plain concatenation: this loop is the verified-reload hot path and
       a large function can embed tens of thousands of edge keys *)
    let key_base = "pdg." ^ f.Func.fname ^ "." in
    for k = 0 to n - 1 do
      match Meta.get meta (key_base ^ string_of_int k) with
      | None -> ok := false
      | Some line -> (
        match String.split_on_char ' ' line with
        | [ s; d; kind; must ] -> (
          match
            (int_of_string_opt s, int_of_string_opt d, Depgraph.kind_of_string kind,
             bool_of_string_opt must)
          with
          | Some s, Some d, Some kind, Some must ->
            (* an edge endpoint that is not an instruction of the current
               body is a ghost: the artifact describes different code, so
               reject it rather than silently wiring dangling edges *)
            if Hashtbl.mem f.Func.body s && Hashtbl.mem f.Func.body d then
              ignore (Depgraph.add_edge g ~must ~kind s d)
            else ok := false
          | _ -> ok := false)
        | _ -> ok := false)
    done;
    if not !ok then None
    else
      let total, disproved =
        match Meta.get meta (Printf.sprintf "pdg.%s.stats" f.Func.fname) with
        | Some s -> (
          match String.split_on_char ' ' s with
          | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> (a, b)
            | _ -> (0, 0))
          | _ -> (0, 0))
        | None -> (0, 0)
      in
      Some
        {
          fdg = g;
          f;
          m;
          stack = [ Alias.baseline ];
          mem_pairs_total = total;
          mem_pairs_disproved = disproved;
          mem_queries = 0;
          degraded = false;
        }

(** Canonical textual payload of the dependence edges — the serialization
    the serve layer's on-disk artifact store persists (DESIGN.md §14) and
    the one the demand manager's artifact sink hands out.  One line per
    edge, sorted, so two PDGs with equal edge sets render byte-identically
    regardless of build order. *)
let payload (t : t) : string =
  Depgraph.edges t.fdg
  |> List.map (fun (e : Depgraph.edge) ->
         Printf.sprintf "%d %d %s %b %b" e.Depgraph.esrc e.Depgraph.edst
           (Depgraph.kind_to_string e.Depgraph.kind)
           e.Depgraph.must e.Depgraph.loop_carried)
  |> List.sort String.compare
  |> String.concat "\n"

(** The (src, dst, kind) dependence triples of a rendered {!payload}
    (must/loop-carried flags projected away): the quantity on which a
    degraded answer must over-approximate an exact one — shedding may
    weaken a proved dependence to a may-dep, never drop one. *)
let payload_deps (payload : string) : (int * int * string) list =
  String.split_on_char '\n' payload
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | s :: d :: kind :: _ -> (
           match (int_of_string_opt s, int_of_string_opt d) with
           | Some s, Some d -> Some (s, d, kind)
           | _ -> None)
         | _ -> None)
  |> List.sort_uniq compare
