(** The demand-driven abstraction manager (§2.1, §2.2).

    [Noelle.t] is what [noelle-load] places in memory: a handle through
    which custom tools request abstractions.  Each abstraction is computed
    on first request and cached ("users only pay for the abstractions they
    need"), and every request is logged per tool — the logs regenerate the
    paper's Table 4 usage matrix from measurements instead of hand
    bookkeeping.

    Tools set their identity with {!set_tool}; every accessor records
    (tool, abstraction) into {!usage}. *)

(* Re-export every abstraction so that [Noelle.X] is the public path
   (this file doubles as the library's root module). *)
module Depgraph = Depgraph
module Pdg = Pdg
module Sccdag = Sccdag
module Ascc = Ascc
module Callgraph = Callgraph
module Env = Env
module Task = Task
module Dfe = Dfe
module Check = Check
module Loopstructure = Loopstructure
module Invariants = Invariants
module Invariants_llvm = Invariants_llvm
module Indvars = Indvars
module Indvars_llvm = Indvars_llvm
module Ivstepper = Ivstepper
module Reduction = Reduction
module Loop = Loop
module Forest = Forest
module Loopbuilder = Loopbuilder
module Scheduler = Scheduler
module Islands = Islands
module Arch = Arch
module Profiler = Profiler
module Pipeline = Pipeline

open Ir

type t = {
  m : Irmod.t;
  mutable tool : string;
  usage : (string * string, unit) Hashtbl.t;    (** (tool, abstraction) *)
  mutable use_noelle_aa : bool;                 (** full stack vs baseline *)
  mutable analysis_budget : int option;
      (** step budget for demand-driven analyses: past it Andersen degrades
          to a conservative points-to result and the PDG stops issuing
          alias queries, emitting may-deps instead (sound, less precise) *)
  mutable andersen : Andersen.t option;
  pdgs : (string, Pdg.t) Hashtbl.t;
  nests : (string, Loopnest.t) Hashtbl.t;
  mutable cg : Callgraph.t option;
  mutable arch_ : Arch.t option;
}

let create ?(use_noelle_aa = true) ?analysis_budget (m : Irmod.t) : t =
  {
    m;
    tool = "?";
    usage = Hashtbl.create 64;
    use_noelle_aa;
    analysis_budget;
    andersen = None;
    pdgs = Hashtbl.create 16;
    nests = Hashtbl.create 16;
    cg = None;
    arch_ = None;
  }

(** Set the name of the tool issuing subsequent requests (Table 4 rows). *)
let set_tool (t : t) name = t.tool <- name

(** Bound (or unbound, with [None]) the analysis step budget; takes effect
    on the next demand-driven computation. *)
let set_analysis_budget (t : t) b = t.analysis_budget <- b

(** Did any cached analysis hit its budget and degrade to a conservative
    result? *)
let degraded (t : t) =
  (match t.andersen with Some a -> a.Andersen.degraded | None -> false)
  || Hashtbl.fold (fun _ (p : Pdg.t) acc -> acc || p.Pdg.degraded) t.pdgs false

let record (t : t) abstraction = Hashtbl.replace t.usage (t.tool, abstraction) ()

(** All (tool, abstraction) pairs observed so far, sorted. *)
let usage_pairs (t : t) =
  Hashtbl.fold (fun k () acc -> k :: acc) t.usage []
  |> List.sort compare

(** Invalidate cached analyses after a transformation mutated the module. *)
let invalidate (t : t) =
  t.andersen <- None;
  Hashtbl.reset t.pdgs;
  Hashtbl.reset t.nests;
  t.cg <- None

let andersen (t : t) =
  match t.andersen with
  | Some a -> a
  | None ->
    let a = Andersen.analyze ?budget:t.analysis_budget t.m in
    t.andersen <- Some a;
    a

(** The alias stack powering the PDG (modular: baseline, then Andersen). *)
let alias_stack (t : t) : Alias.stack =
  if t.use_noelle_aa then [ Alias.baseline; Andersen.analysis (andersen t) ]
  else [ Alias.baseline ]

(** The PDG of function [f] (demand-driven, cached).  If the module carries
    an embedded PDG (noelle-meta-pdg-embed), it is reloaded instead of
    recomputed. *)
let pdg (t : t) (f : Func.t) : Pdg.t =
  record t "PDG";
  match Hashtbl.find_opt t.pdgs f.Func.fname with
  | Some p -> p
  | None ->
    let p =
      match Pdg.of_embedded t.m f with
      | Some p -> p
      | None -> Pdg.build ?budget:t.analysis_budget ~stack:(alias_stack t) t.m f
    in
    Hashtbl.replace t.pdgs f.Func.fname p;
    p

(** Raw natural-loop information of [f] (cached). *)
let loopnest (t : t) (f : Func.t) : Loopnest.t =
  match Hashtbl.find_opt t.nests f.Func.fname with
  | Some n -> n
  | None ->
    let n = Loopnest.compute f in
    Hashtbl.replace t.nests f.Func.fname n;
    n

(** Loop structures (LS) of every loop in [f]. *)
let loop_structures (t : t) (f : Func.t) : Loopstructure.t list =
  record t "LS";
  List.map (Loopstructure.of_loop f) (loopnest t f).Loopnest.loops

(** Canonical loops (L) of [f], everything beyond LS computed lazily. *)
let loops (t : t) (f : Func.t) : Loop.t list =
  record t "L";
  let p = pdg t f in
  List.map (Loop.make p) (loop_structures t f)

(** The loop-nesting forest of [f] (FR). *)
let loop_forest (t : t) (f : Func.t) =
  record t "FR";
  Forest.of_loopnest (loopnest t f)

(** The complete program call graph (CG). *)
let callgraph (t : t) : Callgraph.t =
  record t "CG";
  match t.cg with
  | Some cg -> cg
  | None ->
    let cg = Callgraph.build ~pts:(andersen t) t.m in
    t.cg <- Some cg;
    cg

(** The architecture description (AR), from embedded metadata when the
    noelle-arch tool ran, else measured. *)
let arch (t : t) : Arch.t =
  record t "AR";
  match t.arch_ with
  | Some a -> a
  | None ->
    let a =
      match Arch.of_meta t.m.Irmod.meta with
      | Some a -> a
      | None -> Arch.measure ()
    in
    t.arch_ <- Some a;
    a

(* thin logged handles for the abstractions that are pure modules *)

let aSCCDAG (t : t) (l : Loop.t) =
  record t "aSCCDAG";
  Loop.ascc l

let scc_dag (t : t) (l : Loop.t) =
  record t "aSCCDAG";
  Loop.sccdag l

let invariants (t : t) (l : Loop.t) =
  record t "INV";
  Loop.invariants l

let induction_variables (t : t) (l : Loop.t) =
  record t "IV";
  Loop.induction_variables l

let reductions (t : t) (l : Loop.t) =
  record t "RD";
  Loop.reductions l

let scheduler (t : t) (f : Func.t) =
  record t "SCD";
  Scheduler.create (pdg t f)

(** Access to the data-flow engine (logged); returns the module functions
    through a unit handle — call {!Dfe.solve} etc. after this. *)
let dfe (t : t) =
  record t "DFE";
  ()

let loop_builder (t : t) =
  record t "LB";
  ()

let iv_stepper (t : t) =
  record t "IVS";
  ()

let environment (t : t) =
  record t "ENV";
  ()

let task (t : t) =
  record t "T";
  ()

let islands (t : t) =
  record t "ISL";
  ()

let profiler (t : t) =
  record t "PRO";
  ()
