(** The demand-driven abstraction manager (§2.1, §2.2).

    [Noelle.t] is what [noelle-load] places in memory: a handle through
    which custom tools request abstractions.  Each abstraction is computed
    on first request and cached ("users only pay for the abstractions they
    need"), and every request is logged per tool — the logs regenerate the
    paper's Table 4 usage matrix from measurements instead of hand
    bookkeeping.

    Tools set their identity with {!set_tool}; every accessor records
    (tool, abstraction) into {!usage}. *)

(* Re-export every abstraction so that [Noelle.X] is the public path
   (this file doubles as the library's root module). *)
module Depgraph = Depgraph
module Pdg = Pdg
module Sccdag = Sccdag
module Ascc = Ascc
module Callgraph = Callgraph
module Env = Env
module Task = Task
module Dfe = Dfe
module Check = Check
module Loopstructure = Loopstructure
module Invariants = Invariants
module Invariants_llvm = Invariants_llvm
module Indvars = Indvars
module Indvars_llvm = Indvars_llvm
module Ivstepper = Ivstepper
module Reduction = Reduction
module Loop = Loop
module Forest = Forest
module Loopbuilder = Loopbuilder
module Scheduler = Scheduler
module Islands = Islands
module Arch = Arch
module Profiler = Profiler
module Pipeline = Pipeline
module Trust = Trust
module Telemetry = Telemetry

open Ir

(** A cached per-function artifact, stamped for fingerprint-keyed
    incremental invalidation (DESIGN.md §11): [pfp] is the function's
    structural fingerprint at compute time, [pafp] the Andersen solution
    fingerprint it was built under ([""] when it has no points-to
    dependency: baseline-stack builds and verified metadata reloads).
    {!invalidate} keeps entries whose function fingerprint still matches,
    marking them [psuspect] when the points-to facts were dropped; the
    next access revalidates [pafp] against the recomputed solution and
    rebuilds on mismatch — so a kept entry is always bit-identical to a
    from-scratch recompute. *)
type cached_pdg = {
  pfp : string;
  pafp : string;
  mutable psuspect : bool;
  pval : Pdg.t;
}

type t = {
  m : Irmod.t;
  mutable tool : string;
  usage : (string * string, unit) Hashtbl.t;    (** (tool, abstraction) *)
  mutable use_noelle_aa : bool;                 (** full stack vs baseline *)
  mutable analysis_budget : int option;
      (** step budget for demand-driven analyses: past it Andersen degrades
          to a conservative points-to result and the PDG stops issuing
          alias queries, emitting may-deps instead (sound, less precise) *)
  mutable andersen : (string * string * Andersen.t) option;
      (** (module fingerprint, solution fingerprint, result) *)
  pdgs : (string, cached_pdg) Hashtbl.t;
  nests : (string, string * Loopnest.t) Hashtbl.t;
      (** function fingerprint at compute time, nest *)
  bounds_ : (string, string * Bounds.summary) Hashtbl.t;
      (** function fingerprint at compute time, symbolic loop bounds *)
  mutable cg : (string * Callgraph.t) option;
      (** module fingerprint at compute time, graph *)
  mutable arch_ : Arch.t option;
  mutable trust_mode : Trust.mode;
      (** what a failed metadata verification does: [Degrade] quarantines
          the artifact and recomputes on demand; [Strict] raises
          {!Trust.Tainted} *)
  mutable trust_log : Trust.event list;  (** newest first *)
  mutable fast_reloads : int;
      (** embedded artifacts reloaded through a verified stamp *)
  mutable artifact_sink :
    (kind:string -> fn:string -> fp:string -> payload:string -> unit) option;
      (** store hook (DESIGN.md §14): called once for every exact artifact
          this manager computes from scratch (PDGs that are neither
          degraded nor metadata reloads, loop-bound summaries), with the
          canonical payload rendering — [Serve.Store] installs one to
          persist artifacts as they are produced *)
}

let create ?(use_noelle_aa = true) ?analysis_budget ?(trust_mode = Trust.Degrade)
    (m : Irmod.t) : t =
  {
    m;
    tool = "?";
    usage = Hashtbl.create 64;
    use_noelle_aa;
    analysis_budget;
    andersen = None;
    pdgs = Hashtbl.create 16;
    nests = Hashtbl.create 16;
    bounds_ = Hashtbl.create 16;
    cg = None;
    arch_ = None;
    trust_mode;
    trust_log = [];
    fast_reloads = 0;
    artifact_sink = None;
  }

(** Install (or clear) the artifact store hook; see {!field-artifact_sink}. *)
let set_artifact_sink (t : t) sink = t.artifact_sink <- sink

let sink_artifact (t : t) ~kind ~fn ~fp ~payload =
  match t.artifact_sink with
  | Some sink -> sink ~kind ~fn ~fp ~payload
  | None -> ()

(** Set the name of the tool issuing subsequent requests (Table 4 rows). *)
let set_tool (t : t) name = t.tool <- name

(** Bound (or unbound, with [None]) the analysis step budget; takes effect
    on the next demand-driven computation. *)
let set_analysis_budget (t : t) b = t.analysis_budget <- b

(** Did any cached analysis hit its budget and degrade to a conservative
    result? *)
let degraded (t : t) =
  (match t.andersen with Some (_, _, a) -> a.Andersen.degraded | None -> false)
  || Hashtbl.fold (fun _ (c : cached_pdg) acc -> acc || c.pval.Pdg.degraded) t.pdgs false

let record (t : t) abstraction = Hashtbl.replace t.usage (t.tool, abstraction) ()

(* telemetry: every demand-driven request is counted, and every cache
   decision is attributed (hit / miss / verified fast reload); the compute
   path of a miss runs inside a span so the Chrome trace shows where the
   abstraction layer's time goes *)
let hit abstraction =
  Trace.incr_m "noelle.cache.hit";
  Trace.incr_m (Printf.sprintf "noelle.%s.hit" abstraction)

let miss abstraction =
  Trace.incr_m "noelle.cache.miss";
  Trace.incr_m (Printf.sprintf "noelle.%s.miss" abstraction)

(** All (tool, abstraction) pairs observed so far, sorted. *)
let usage_pairs (t : t) =
  Hashtbl.fold (fun k () acc -> k :: acc) t.usage []
  |> List.sort compare

(** Trust events observed so far (oldest first). *)
let trust_events (t : t) = List.rev t.trust_log

(** Embedded artifacts reloaded through a verified stamp so far. *)
let fast_reloads (t : t) = t.fast_reloads

(** React to a failed verification: log it, then quarantine ([Degrade])
    or trap ([Strict]). *)
let distrust (t : t) (e : Trust.event) =
  t.trust_log <- e :: t.trust_log;
  match t.trust_mode with
  | Trust.Strict -> raise (Trust.Tainted (Trust.event_to_string e))
  | Trust.Degrade -> Trust.quarantine t.m.Irmod.meta ~prefix:e.Trust.aprefix

(** The single audited keep/quarantine decision for a fingerprint-stamped
    artifact, shared by {!invalidate}'s per-function cache tables (PDGs,
    loop nests, bounds) and the serve layer's on-disk store: an artifact
    may be served only while the fingerprint of the code it was computed
    from still matches the code as it stands now.  [current = None] means
    the subject is gone (function removed, or demoted to a declaration) —
    never keep. *)
let reconcile_artifact ~(current : string option) ~(stamped : string) :
    [ `Keep | `Drop ] =
  match current with Some fp when fp = stamped -> `Keep | _ -> `Drop

(* Sweep one per-function cache table through {!reconcile_artifact}:
   entries whose function fingerprint no longer matches are removed.
   [entry_fp] projects the stamped fingerprint out of an entry; [on_keep]
   runs for survivors (PDGs use it to mark points-to-suspect entries).
   Returns (kept, dropped). *)
let reconcile_tbl (type v) ~(fp_of : string -> string option)
    ~(entry_fp : v -> string) ?(on_keep = fun (_ : v) -> ())
    (tbl : (string, v) Hashtbl.t) : int * int =
  let kept = ref 0 and stale = ref [] in
  Hashtbl.iter
    (fun fn entry ->
      match reconcile_artifact ~current:(fp_of fn) ~stamped:(entry_fp entry) with
      | `Keep ->
        incr kept;
        on_keep entry
      | `Drop -> stale := fn :: !stale)
    tbl;
  List.iter (Hashtbl.remove tbl) !stale;
  (!kept, List.length !stale)

(** Invalidate cached analyses after a transformation mutated the module.

    Fingerprint-keyed and incremental (DESIGN.md §11): instead of
    resetting every cache, each cached artifact's stamp is compared
    against the code as it stands now.  Module-keyed artifacts (Andersen,
    call graph) are dropped only when the module fingerprint changed;
    per-function artifacts (PDGs, loop nests) only when their function's
    fingerprint changed — so a transform touching one function no longer
    forces whole-module reanalysis.  PDGs kept across a points-to drop
    are marked suspect and revalidated against the recomputed Andersen
    solution fingerprint on next access, which keeps incremental results
    bit-identical to from-scratch recomputation even when a one-function
    edit shifts interprocedural aliasing.

    Embedded PDG artifacts are reconciled too: any whose stamp no longer
    matches the transformed code is quarantined, so a re-request cannot
    resurrect the stale pre-transform graph.  (Quarantine here is
    legitimate bookkeeping, not a trust violation — strict mode does not
    trap on it.) *)
let invalidate (t : t) =
  let mfp = Fingerprint.module_fp t.m in
  let andersen_stale =
    match t.andersen with Some (amfp, _, _) -> amfp <> mfp | None -> false
  in
  if andersen_stale then t.andersen <- None;
  (match t.cg with
  | Some (cmfp, _) when cmfp <> mfp -> t.cg <- None
  | _ -> ());
  let fp_cache : (string, string option) Hashtbl.t = Hashtbl.create 16 in
  let fp_of fn =
    match Hashtbl.find_opt fp_cache fn with
    | Some v -> v
    | None ->
      let v =
        match Irmod.func_opt t.m fn with
        | Some f when not f.Func.is_declaration -> Some (Fingerprint.func_fp f)
        | _ -> None
      in
      Hashtbl.replace fp_cache fn v;
      v
  in
  let k1, d1 =
    reconcile_tbl ~fp_of
      ~entry_fp:(fun (c : cached_pdg) -> c.pfp)
      ~on_keep:(fun c -> if andersen_stale && c.pafp <> "" then c.psuspect <- true)
      t.pdgs
  in
  let k2, d2 = reconcile_tbl ~fp_of ~entry_fp:fst t.nests in
  let k3, d3 = reconcile_tbl ~fp_of ~entry_fp:fst t.bounds_ in
  Trace.touch "noelle.invalidate.kept";
  Trace.add "noelle.invalidate.kept" (k1 + k2 + k3);
  Trace.add "noelle.invalidate.dropped" (d1 + d2 + d3);
  let evs =
    Trust.reconcile
      ~kinds:(function Trust.Pdg_artifact _ -> true | _ -> false)
      t.m
  in
  t.trust_log <- List.rev_append evs t.trust_log

let andersen (t : t) =
  match t.andersen with
  | Some (_, _, a) ->
    hit "andersen";
    a
  | None ->
    miss "andersen";
    let a =
      Trace.span ~cat:"analysis" "noelle.andersen" (fun () ->
          Andersen.analyze ?budget:t.analysis_budget t.m)
    in
    t.andersen <- Some (Fingerprint.module_fp t.m, Andersen.solution_fp a, a);
    a

(** Solution fingerprint PDGs are stamped with: the current Andersen
    solution's when the full stack is in use (computing it on demand),
    [""] when only the baseline stack powers the PDG. *)
let andersen_fp (t : t) =
  if not t.use_noelle_aa then ""
  else begin
    ignore (andersen t);
    match t.andersen with Some (_, afp, _) -> afp | None -> ""
  end

(** The alias stack powering the PDG (modular: baseline, then Andersen). *)
let alias_stack (t : t) : Alias.stack =
  if t.use_noelle_aa then [ Alias.baseline; Andersen.analysis (andersen t) ]
  else [ Alias.baseline ]

(** The PDG of function [f] (demand-driven, cached).  If the module
    carries an embedded PDG (noelle-meta-pdg-embed) whose stamp verifies
    against the current code, it is reloaded instead of recomputed;
    stale/corrupt/unstamped artifacts are distrusted (quarantined in
    [Degrade] mode, {!Trust.Tainted} in [Strict]). *)
let pdg (t : t) (f : Func.t) : Pdg.t =
  record t "PDG";
  Trace.incr_m "noelle.pdg.queries";
  let cached =
    match Hashtbl.find_opt t.pdgs f.Func.fname with
    | Some c when c.psuspect ->
      (* kept across an invalidate that dropped the points-to facts: the
         entry is exact iff the recomputed solution fingerprint matches
         the one it was built under *)
      if andersen_fp t = c.pafp then begin
        c.psuspect <- false;
        Some c.pval
      end
      else begin
        Hashtbl.remove t.pdgs f.Func.fname;
        None
      end
    | Some c -> Some c.pval
    | None -> None
  in
  match cached with
  | Some p ->
    hit "pdg";
    p
  | None ->
    miss "pdg";
    let sp = Trace.begin_span ~cat:"analysis" ("noelle.pdg:" ^ f.Func.fname) in
    let kind = Trust.Pdg_artifact f.Func.fname in
    let prefix = Trust.prefix_of_kind kind in
    let reloaded = ref false in
    let build () =
      Trace.tag sp "source" "computed";
      let pts = if t.use_noelle_aa then Some (andersen t) else None in
      Pdg.build ?budget:t.analysis_budget ~stack:(alias_stack t) ?pts t.m f
    in
    let p =
      (* [distrust] may raise in Strict mode: close the span either way *)
      Fun.protect ~finally:(fun () -> Trace.end_span sp) @@ fun () ->
      if not (Trust.has_artifact t.m.Irmod.meta ~prefix) then build ()
      else
        match Trust.verify_artifact t.m kind with
        | Trust.Trusted _ -> (
          match Pdg.of_embedded t.m f with
          | Some p ->
            t.fast_reloads <- t.fast_reloads + 1;
            Trace.incr_m "noelle.cache.fast_reload";
            Trace.tag sp "source" "verified-reload";
            reloaded := true;
            p
          | None ->
            (* checksum verified but the payload would not decode (ghost
               edges, truncation): treat as corrupt *)
            distrust t
              {
                Trust.akind = kind;
                aprefix = prefix;
                averdict = Trust.Corrupt "payload decode failed";
              };
            build ())
        | (Trust.Unstamped | Trust.Stale _ | Trust.Corrupt _) as v ->
          distrust t { Trust.akind = kind; aprefix = prefix; averdict = v };
          build ()
    in
    (* verified reloads carry no alias-stack dependency: their validity is
       keyed on the function fingerprint alone, exactly like a
       from-scratch manager would reload them *)
    let pafp = if !reloaded then "" else andersen_fp t in
    Hashtbl.replace t.pdgs f.Func.fname
      { pfp = Fingerprint.func_fp f; pafp; psuspect = false; pval = p };
    (* store hook: only exact from-scratch results may be persisted — a
       degraded graph would poison the store with a coarser answer, and a
       metadata reload is already persisted where it came from *)
    if (not p.Pdg.degraded) && not !reloaded then
      sink_artifact t ~kind:"pdg" ~fn:f.Func.fname ~fp:(Fingerprint.func_fp f)
        ~payload:(Pdg.payload p);
    p

(** Raw natural-loop information of [f] (cached). *)
let loopnest (t : t) (f : Func.t) : Loopnest.t =
  match Hashtbl.find_opt t.nests f.Func.fname with
  | Some (_, n) ->
    hit "loopnest";
    n
  | None ->
    miss "loopnest";
    let n =
      Trace.span ~cat:"analysis" ("noelle.loopnest:" ^ f.Func.fname) (fun () ->
          Loopnest.compute f)
    in
    Hashtbl.replace t.nests f.Func.fname (Fingerprint.func_fp f, n);
    n

(** Symbolic loop-bound and cost summary of [f] (BND; demand-driven,
    cached, fingerprint-keyed like PDGs so stale bounds cannot steer
    chunking after an edit). *)
let bounds (t : t) (f : Func.t) : Bounds.summary =
  record t "BND";
  match Hashtbl.find_opt t.bounds_ f.Func.fname with
  | Some (_, s) ->
    hit "bounds";
    s
  | None ->
    miss "bounds";
    let s = Bounds.analyze f in
    Hashtbl.replace t.bounds_ f.Func.fname (Fingerprint.func_fp f, s);
    sink_artifact t ~kind:"bounds" ~fn:f.Func.fname ~fp:(Fingerprint.func_fp f)
      ~payload:(Bounds.summary_payload s);
    s

(** Loop structures (LS) of every loop in [f]. *)
let loop_structures (t : t) (f : Func.t) : Loopstructure.t list =
  record t "LS";
  List.map (Loopstructure.of_loop f) (loopnest t f).Loopnest.loops

(** Canonical loops (L) of [f], everything beyond LS computed lazily. *)
let loops (t : t) (f : Func.t) : Loop.t list =
  record t "L";
  let p = pdg t f in
  List.map (Loop.make p) (loop_structures t f)

(** The loop-nesting forest of [f] (FR). *)
let loop_forest (t : t) (f : Func.t) =
  record t "FR";
  Forest.of_loopnest (loopnest t f)

(** The complete program call graph (CG). *)
let callgraph (t : t) : Callgraph.t =
  record t "CG";
  match t.cg with
  | Some (_, cg) ->
    hit "callgraph";
    cg
  | None ->
    miss "callgraph";
    let cg =
      Trace.span ~cat:"analysis" "noelle.callgraph" (fun () ->
          Callgraph.build ~pts:(andersen t) t.m)
    in
    t.cg <- Some (Fingerprint.module_fp t.m, cg);
    cg

(** The architecture description (AR), from embedded metadata when the
    noelle-arch tool ran (and its stamp verifies), else measured. *)
let arch (t : t) : Arch.t =
  record t "AR";
  match t.arch_ with
  | Some a ->
    hit "arch";
    a
  | None ->
    miss "arch";
    let meta = t.m.Irmod.meta in
    let a =
      Trace.span ~cat:"analysis" "noelle.arch" @@ fun () ->
      if not (Trust.has_artifact meta ~prefix:"arch.") then Arch.measure ()
      else
        match Trust.verify_artifact t.m Trust.Arch_artifact with
        | Trust.Trusted _ -> (
          match Arch.of_meta meta with
          | Some a ->
            t.fast_reloads <- t.fast_reloads + 1;
            Trace.incr_m "noelle.cache.fast_reload";
            a
          | None ->
            distrust t
              {
                Trust.akind = Trust.Arch_artifact;
                aprefix = "arch.";
                averdict = Trust.Corrupt "payload decode failed";
              };
            Arch.measure ())
        | (Trust.Unstamped | Trust.Stale _ | Trust.Corrupt _) as v ->
          distrust t
            { Trust.akind = Trust.Arch_artifact; aprefix = "arch."; averdict = v };
          Arch.measure ()
    in
    t.arch_ <- Some a;
    a

(* thin logged handles for the abstractions that are pure modules *)

let aSCCDAG (t : t) (l : Loop.t) =
  record t "aSCCDAG";
  Loop.ascc l

let scc_dag (t : t) (l : Loop.t) =
  record t "aSCCDAG";
  Loop.sccdag l

let invariants (t : t) (l : Loop.t) =
  record t "INV";
  Loop.invariants l

let induction_variables (t : t) (l : Loop.t) =
  record t "IV";
  Loop.induction_variables l

let reductions (t : t) (l : Loop.t) =
  record t "RD";
  Loop.reductions l

let scheduler (t : t) (f : Func.t) =
  record t "SCD";
  Scheduler.create (pdg t f)

(** Access to the data-flow engine (logged); returns the module functions
    through a unit handle — call {!Dfe.solve} etc. after this. *)
let dfe (t : t) =
  record t "DFE";
  ()

let loop_builder (t : t) =
  record t "LB";
  ()

let iv_stepper (t : t) =
  record t "IVS";
  ()

let environment (t : t) =
  record t "ENV";
  ()

let task (t : t) =
  record t "T";
  ()

let islands (t : t) =
  record t "ISL";
  ()

let profiler (t : t) =
  record t "PRO";
  ()
