(** The transactional pass pipeline (robustness layer).

    Every pass runs as a transaction: the module is checkpointed
    ({!Ir.Snapshot}), the pass transforms it in place, and the result must
    clear two gates before the change commits — the structural verifier
    ({!Ir.Verify.check}) and a differential test that executes the original
    and the transformed module on the same inputs and demands identical
    observable behaviour.  A pass that fails a gate (or raises) is rolled
    back in place, with a structural diff of the rejected change recorded
    for diagnosis, and the pipeline carries on from the last good module.

    A seeded fault injector ({!Ir.Faultgen}) can corrupt pass output on
    purpose, to demonstrate that the gates catch the canonical compiler
    bugs: structural corruptions die at the verifier, semantic ones at the
    differential test.

    The pipeline knows nothing about which analyses a pass consults: passes
    are plain closures, and {!config.on_change} lets the driver invalidate
    its analysis caches whenever the module mutates (including rollbacks). *)

open Ir

type outcome =
  | Committed of string   (** the summary string returned by the pass *)
  | Rolled_back of string (** which gate rejected the change, and why *)
  | Timed_out of string   (** the differential run exhausted its fuel *)

type entry = {
  epass : string;
  eoutcome : outcome;
  einjected : string option; (** fault injected into this pass's output *)
  ediff : string list;       (** structural diff of a rejected change *)
  etrace_diff : string list;
      (** minimal event-diff witness when the trace-equivalence gate
          rejected the change ([noelle-pipeline --trace-diff]) *)
  emeta : string list;
      (** embedded artifacts quarantined at commit by the metadata trust
          gate ({!config.verify_meta_gate}) *)
}

type report = {
  entries : entry list;
  final_ok : bool; (** the surviving module still clears both gates *)
}

(** One observed execution: the legacy observable (exit value + program
    output rendered as one string, or the trap message) plus the
    observable-event trace ({!Ir.Obs}) the run emitted.  The trace gate
    checks both — trace equivalence subsumes nothing the output compare
    sees (float printing rounds differently in events), so "strictly
    stronger" is by construction. *)
type behaviour = {
  bresult : (string, string) result;
  btrace : Obs.trace;
}

(** How the differential gate executes a module.  The default is the
    sequential interpreter under an event recorder; drivers whose passes
    produce parallel modules plug in a Psim-backed executor instead. *)
type exec = Irmod.t -> args:int list -> fuel:int -> behaviour

let interp_exec : exec =
 fun m ~args ~fuel ->
  let res, out, tr = Obs.run ~args ~fuel m in
  {
    bresult =
      (match res with
      | Ok v -> Ok (Printf.sprintf "exit=%s\n%s" (Interp.v_to_string v) out)
      | Error msg -> Error msg);
    btrace = tr;
  }

type config = {
  inputs : int list list; (** argument vectors for the differential gate *)
  fuel : int;             (** interpreter fuel per differential run *)
  exec : exec;
  verify_gate : bool;
  differential_gate : bool;
  legacy_differential : bool;
      (** escape hatch: compare flat output only, ignoring event traces
          ([noelle-pipeline --legacy-differential]) *)
  verify_meta_gate : bool;
      (** reconcile embedded analysis artifacts ({!Trust}) at every
          commit — stale/corrupt ones are quarantined instead of
          surviving into the committed module — and require the final
          module to audit clean *)
  max_diff_lines : int;
  on_change : unit -> unit;
      (** called whenever the module mutates: after a pass ran, and after
          a rollback; drivers hang analysis-cache invalidation here *)
}

let default_config =
  {
    inputs = [ [] ];
    fuel = 2_000_000;
    exec = interp_exec;
    verify_gate = true;
    differential_gate = true;
    legacy_differential = false;
    verify_meta_gate = false;
    max_diff_lines = 24;
    on_change = (fun () -> ());
  }

(** A pass is a named in-place transformation returning a human-readable
    summary of what it did.  [plicense] is the commutation license its
    differential gate grants ({!Ir.Obs.license}): cleanups keep [Exact],
    parallelizers declare which event reorders they are entitled to. *)
type pass = { pname : string; papply : Irmod.t -> string; plicense : Obs.license }

(* ------------------------------------------------------------------ *)
(* Behaviour comparison                                                *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_fuel_exhaustion = function
  | Error msg -> contains msg "out of fuel"
  | Ok _ -> false

let fuel_exhausted (b : behaviour) = is_fuel_exhaustion b.bresult

(* Trap messages carry instruction ids and labels that legitimately shift
   under transformation, so equivalence of trapping runs is by trap class
   (genuine trap vs fuel exhaustion), not by message text. *)
let equiv r c =
  match (r, c) with
  | Ok a, Ok b -> String.equal a b
  | (Error _ as a), (Error _ as b) -> is_fuel_exhaustion a = is_fuel_exhaustion b
  | _ -> false

let truncate_for_msg s =
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s <= 80 then s else String.sub s 0 77 ^ "..."

let describe_result = function
  | Ok s -> Printf.sprintf "ok %S" (truncate_for_msg s)
  | Error msg -> Printf.sprintf "trap %S" (truncate_for_msg msg)

let args_str args = "(" ^ String.concat ", " (List.map string_of_int args) ^ ")"

let behaviours (c : config) (m : Irmod.t) =
  List.map (fun args -> c.exec m ~args ~fuel:c.fuel) c.inputs

(** Compare candidate behaviours against the reference, input by input.

    Fuel exhaustion is handled before anything else: a candidate that ran
    out of fuel where the reference did not is [`Timed_out] — a resource
    verdict, never a behavioural mismatch — and two runs that both
    exhausted their fuel are equal by convention (their traces are
    incomparable prefixes).  Otherwise the gate demands the legacy
    observable (exit + output) be identical {e and}, unless
    [legacy_differential] is set, the event traces be equivalent modulo
    [license] ({!Ir.Obs.check}); a trace rejection carries its minimal
    event-diff witness. *)
let compare_behaviours ?(license = Obs.Exact) (c : config)
    (reference : behaviour list) (candidate : behaviour list) =
  let rec go inputs refs cands =
    match (inputs, refs, cands) with
    | [], [], [] -> `Equal
    | args :: is, r :: rs, cd :: cs ->
      if fuel_exhausted cd && not (fuel_exhausted r) then
        `Timed_out
          (Printf.sprintf "on input %s: ran out of fuel (reference %s)"
             (args_str args) (describe_result r.bresult))
      else if fuel_exhausted r && fuel_exhausted cd then go is rs cs
      else if not (equiv r.bresult cd.bresult) then
        `Mismatch
          ( Printf.sprintf "on input %s: expected %s, got %s" (args_str args)
              (describe_result r.bresult)
              (describe_result cd.bresult),
            [] )
      else if c.legacy_differential then go is rs cs
      else (
        match Obs.check ~license ~reference:r.btrace ~candidate:cd.btrace with
        | Ok () -> go is rs cs
        | Error (reason, witness) ->
          `Mismatch
            ( Printf.sprintf "on input %s: %s (license: %s)" (args_str args)
                reason
                (Obs.license_to_string license),
              witness ))
    | _ -> `Mismatch ("behaviour vectors have different lengths", [])
  in
  go c.inputs reference candidate

(* ------------------------------------------------------------------ *)
(* The transaction loop                                                *)
(* ------------------------------------------------------------------ *)

(** Run [passes] over [m] transactionally.  [m] is mutated in place; after
    the call it holds the composition of every {e committed} pass and none
    of the rolled-back ones.  When [inject] is given, a deterministic fault
    drawn from seed [inject + pass_index] corrupts each pass's output
    before the gates run.  The reference behaviour for every differential
    check is the pristine input module, so the final module is guaranteed
    behaviourally equal to the original on the configured inputs. *)
(* span tags for one transaction: the outcome plus what each gate said,
   recovered from the entry (gate attributions live in the outcome text) *)
let starts_with pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let gate_tags (c : config) (e : entry) =
  let outcome, verify, differential =
    match e.eoutcome with
    | Committed _ ->
      ( "committed",
        (if c.verify_gate then "ok" else "off"),
        if c.differential_gate then "ok" else "off" )
    | Timed_out _ -> ("timed-out", "ok", "timeout")
    | Rolled_back r ->
      if starts_with "pass raised" r then ("rolled-back", "skipped", "skipped")
      else if starts_with "verifier:" r then ("rolled-back", "fail", "skipped")
      else ("rolled-back", "ok", "mismatch")
  in
  [ ("outcome", outcome); ("verify", verify); ("differential", differential) ]
  @ (match e.einjected with Some d -> [ ("injected", d) ] | None -> [])

let run ?(config = default_config) ?inject (m : Irmod.t) (passes : pass list) : report =
  Trace.touch "obs.trace_compares";
  Trace.touch "obs.reorders_rejected";
  Trace.touch "obs.events";
  let reference =
    if config.differential_gate then
      Trace.span ~cat:"pipeline" "pipeline.reference" (fun () -> behaviours config m)
    else []
  in
  (* the license a gate must grant grows with each committed pass: the
     candidate carries every committed commutation, so the gate compares
     under the join of those licenses and the current pass's own *)
  let committed_license = ref Obs.Exact in
  let run_pass idx (p : pass) : entry =
    let license = Obs.join !committed_license p.plicense in
    let sp = Trace.begin_span ~cat:"pipeline" ("pass:" ^ p.pname) in
    let snap = Snapshot.capture m in
    let applied = try Ok (p.papply m) with e -> Error (Printexc.to_string e) in
    config.on_change ();
    let injected =
      match applied with
      | Error _ -> None
      | Ok _ -> Option.bind inject (fun seed -> Faultgen.inject ~seed:(seed + idx) m)
    in
    let rollback ?(trace_diff = []) reason =
      let diff = Snapshot.diff ~limit:config.max_diff_lines (Snapshot.view snap) m in
      Snapshot.restore snap m;
      config.on_change ();
      {
        epass = p.pname;
        eoutcome = reason;
        einjected = injected;
        ediff = diff;
        etrace_diff = trace_diff;
        emeta = [];
      }
    in
    let commit summary =
      (* the change is in: strip embedded artifacts it invalidated, so no
         consumer downstream of this commit can reload stale analysis *)
      let emeta =
        if config.verify_meta_gate then
          List.map Trust.event_to_string (Trust.reconcile m)
        else []
      in
      committed_license := license;
      {
        epass = p.pname;
        eoutcome = Committed summary;
        einjected = injected;
        ediff = [];
        etrace_diff = [];
        emeta;
      }
    in
    let entry =
      match applied with
      | Error exn -> rollback (Rolled_back ("pass raised: " ^ exn))
      | Ok summary -> (
        match (if config.verify_gate then Verify.check m else Ok ()) with
        | Error msg -> rollback (Rolled_back ("verifier: " ^ msg))
        | Ok () ->
          if not config.differential_gate then commit summary
          else (
            match compare_behaviours ~license config reference (behaviours config m) with
            | `Equal -> commit summary
            | `Timed_out msg -> rollback (Timed_out msg)
            | `Mismatch (msg, witness) ->
              rollback ~trace_diff:witness (Rolled_back ("differential: " ^ msg))))
    in
    (match entry.eoutcome with
    | Committed _ -> Trace.incr_m "pipeline.committed"
    | Rolled_back _ -> Trace.incr_m "pipeline.rolled_back"
    | Timed_out _ -> Trace.incr_m "pipeline.timed_out");
    Trace.end_span ~args:(gate_tags config entry) sp;
    entry
  in
  let entries = List.mapi run_pass passes in
  let final_ok =
    (match Verify.check m with Ok () -> true | Error _ -> false)
    && (not config.differential_gate
       || compare_behaviours ~license:!committed_license config reference
            (behaviours config m)
          = `Equal)
    && (not config.verify_meta_gate || Trust.failures (Trust.audit m) = [])
  in
  { entries; final_ok }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let outcome_to_string = function
  | Committed s -> "committed" ^ if s = "" then "" else ": " ^ s
  | Rolled_back s -> "ROLLED BACK: " ^ s
  | Timed_out s -> "TIMED OUT: " ^ s

let committed (r : report) =
  List.filter (fun e -> match e.eoutcome with Committed _ -> true | _ -> false) r.entries

let rolled_back (r : report) =
  List.filter (fun e -> match e.eoutcome with Committed _ -> false | _ -> true) r.entries

let report_to_string (r : report) =
  let b = Buffer.create 256 in
  List.iter
    (fun e ->
      let mark = match e.eoutcome with Committed _ -> "+" | _ -> "!" in
      Buffer.add_string b
        (Printf.sprintf "%s %-12s %s\n" mark e.epass (outcome_to_string e.eoutcome));
      (match e.einjected with
      | Some d -> Buffer.add_string b (Printf.sprintf "    injected fault: %s\n" d)
      | None -> ());
      List.iter
        (fun l -> Buffer.add_string b (Printf.sprintf "    quarantined %s\n" l))
        e.emeta;
      List.iter (fun l -> Buffer.add_string b ("    " ^ l ^ "\n")) e.ediff)
    r.entries;
  Buffer.add_string b
    (Printf.sprintf "pipeline: %d committed, %d rolled back; final module %s\n"
       (List.length (committed r))
       (List.length (rolled_back r))
       (if r.final_ok then "OK (verified, behaviour preserved)" else "NOT OK"));
  Buffer.contents b
