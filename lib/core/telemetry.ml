(** Noelle.Telemetry — the unified tracing / metrics / profiling facade
    (DESIGN.md §10).

    The recording machinery lives in {!Ir.Trace} (so the IR-layer solvers
    can report without a dependency cycle); this module is the surface
    tools and drivers use: installing the sink, wrapping work in spans,
    exporting the Chrome trace-event JSON and the metrics dump, and
    diffing two metric dumps for regressions ([noelle-trace --compare]).

    Tracing is off by default; {!install} (or the [NOELLE_TRACE]
    environment variable) turns it on.  When off, every probe in the
    codebase is one load-and-branch. *)

module Trace = Ir.Trace
module Json = Ir.Trace.Json

(* -- lifecycle -- *)

let install ?keep () = Trace.enable ?keep ()
let uninstall () = Trace.disable ()
let installed () = Trace.enabled ()
let reset () = Trace.reset ()

(* -- recording (re-exports, so clients write [Telemetry.span ...]) -- *)

let span = Trace.span
let timed_span = Trace.timed_span
let instant = Trace.instant
let begin_span = Trace.begin_span
let end_span = Trace.end_span
let tag = Trace.tag
let add = Trace.add
let incr = Trace.incr_m
let set_gauge = Trace.set_gauge
let observe = Trace.observe
let counter = Trace.counter
let events = Trace.events
let metrics = Trace.metrics
let quantile = Trace.quantile
let histogram = Trace.histogram

(* -- request context (correlation ids) -- *)

let with_request = Trace.with_request
let current_request = Trace.current_request

(* -- flight recorder (always-on crash forensics ring) -- *)

let flight = Trace.flight
let flight_reset = Trace.flight_reset
let flight_events = Trace.flight_events
let flight_to_json = Trace.flight_to_json

(* -- export -- *)

let to_chrome_json = Trace.to_chrome_json
let metrics_to_json = Trace.metrics_to_json
let metrics_to_text = Trace.metrics_to_text

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(** Write the event buffer to [path] as Chrome trace-event JSON. *)
let save_trace path = write_file path (to_chrome_json ())

(** Write the metrics registry to [path] as JSON. *)
let save_metrics path = write_file path (metrics_to_json ())

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

(** Parse a Chrome trace-event JSON back and return its events as
    (name, cat, ph) triples — the round-trip check [noelle-trace] and
    [make trace] gate on.  Raises {!Json.Parse_error} on malformed
    input and [Failure] on a structurally wrong document. *)
let validate_chrome_json (s : string) : (string * string * string) list =
  let doc = Json.parse s in
  match Json.member "traceEvents" doc with
  | None -> failwith "trace: no traceEvents array"
  | Some evs -> (
    match Json.to_list evs with
    | None -> failwith "trace: traceEvents is not an array"
    | Some l ->
      List.map
        (fun e ->
          let str field =
            match Option.bind (Json.member field e) Json.to_string with
            | Some s -> s
            | None -> failwith ("trace: event missing \"" ^ field ^ "\"")
          in
          let num field =
            match Option.bind (Json.member field e) Json.to_num with
            | Some f -> f
            | None -> failwith ("trace: event missing numeric \"" ^ field ^ "\"")
          in
          ignore (num "ts");
          (str "name", str "cat", str "ph"))
        l)

(** Span categories present in a validated trace, with event counts. *)
let layers_of (triples : (string * string * string) list) =
  let t = Hashtbl.create 8 in
  List.iter
    (fun (_, cat, ph) ->
      if ph = "X" then
        Hashtbl.replace t cat (1 + Option.value ~default:0 (Hashtbl.find_opt t cat)))
    triples;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Metrics diffing (noelle-trace --compare)                            *)
(* ------------------------------------------------------------------ *)

type delta = {
  dname : string;
  dbefore : float option;  (** None = absent in the first dump *)
  dafter : float option;   (** None = absent in the second dump *)
}

(** Parse a metrics-dump JSON into (name, scalar) pairs.  Counters and
    gauges contribute their value under their own name; a histogram
    expands into [name.count], [name.sum] and its quantile estimates
    ([name.p50] .. [name.p999] when present), so {!diff_metrics} reports
    count/sum deltas and quantile shifts instead of skipping histograms. *)
let parse_metrics (s : string) : (string * float) list =
  match Json.parse s with
  | Json.Obj kvs ->
    List.concat_map
      (fun (k, v) ->
        let num field = Option.bind (Json.member field v) Json.to_num in
        match Option.bind (Json.member "type" v) Json.to_string with
        | Some "histogram" ->
          List.filter_map
            (fun field ->
              match num field with
              | Some f -> Some (k ^ "." ^ field, f)
              | None -> None)
            [ "count"; "sum"; "p50"; "p95"; "p99"; "p999" ]
        | _ -> (
          (* counter/gauge dumps carry "value"; tolerate legacy dumps
             with a bare "sum" for histograms *)
          match num "value" with
          | Some f -> [ (k, f) ]
          | None -> (
            match num "sum" with Some f -> [ (k, f) ] | None -> [])))
      kvs
  | _ -> failwith "metrics dump: expected a JSON object"

(** Structural diff of two metric dumps: every key present in either,
    with its value on both sides. *)
let diff_metrics (a : (string * float) list) (b : (string * float) list) : delta list =
  let keys = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.filter_map
    (fun k ->
      let va = List.assoc_opt k a and vb = List.assoc_opt k b in
      if va = vb then None else Some { dname = k; dbefore = va; dafter = vb })
    keys

let delta_to_string (d : delta) =
  let f = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
  let pct =
    match (d.dbefore, d.dafter) with
    | Some a, Some b when a <> 0.0 ->
      Printf.sprintf " (%+.1f%%)" (100.0 *. (b -. a) /. Float.abs a)
    | _ -> ""
  in
  Printf.sprintf "%-40s %12s -> %12s%s" d.dname (f d.dbefore) (f d.dafter) pct

(** Human-readable comparison of two metric-dump files; returns the
    rendered report and the number of differing keys. *)
let compare_files patha pathb =
  let read p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let da = parse_metrics (read patha) and db = parse_metrics (read pathb) in
  let ds = diff_metrics da db in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "metrics diff: %s -> %s (%d keys differ)\n" patha pathb
       (List.length ds));
  List.iter (fun d -> Buffer.add_string b (delta_to_string d ^ "\n")) ds;
  (Buffer.contents b, List.length ds)
