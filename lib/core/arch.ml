(** Architecture description (AR, §2.2).

    Describes the underlying machine: logical/physical cores, NUMA nodes,
    and measured core-to-core latencies and bandwidths.  The paper's
    [noelle-arch] tool measures these on real hardware (via hwloc and
    micro-benchmarks); in this reproduction the "measurement" synthesizes a
    deterministic model of the paper's evaluation platform (a 12-core Xeon
    E5-2695v3 with one NUMA node per 12 cores and 2-way SMT), which is the
    machine [lib/psim] simulates. *)

type t = {
  physical_cores : int;
  logical_per_physical : int;
  numa_nodes : int;
  latency : int array array;     (** core-to-core latency, cycles *)
  bandwidth : float array array; (** words per cycle between cores *)
}

let num_cores (t : t) = t.physical_cores

(** "Measure" the platform.  Latencies follow the usual topology shape:
    same core (SMT) < same NUMA node < cross-node. *)
let measure ?(physical_cores = 12) ?(numa_nodes = 1) () : t =
  let cores_per_node = max 1 (physical_cores / max 1 numa_nodes) in
  let node_of c = c / cores_per_node in
  let latency =
    Array.init physical_cores (fun i ->
        Array.init physical_cores (fun j ->
            if i = j then 0
            else if node_of i = node_of j then 60   (* shared LLC *)
            else 140 (* QPI hop *)))
  in
  let bandwidth =
    Array.init physical_cores (fun i ->
        Array.init physical_cores (fun j ->
            if i = j then 8.0 else if node_of i = node_of j then 2.0 else 0.8))
  in
  { physical_cores; logical_per_physical = 2; numa_nodes; latency; bandwidth }

let latency_between (t : t) i j =
  t.latency.(i mod t.physical_cores).(j mod t.physical_cores)

(** Worst-case latency between distinct cores — the cost HELIX pays per
    sequential-segment hand-off. *)
let max_latency (t : t) =
  Array.fold_left
    (fun acc row -> Array.fold_left max acc row)
    0 t.latency

(** Average latency between distinct cores. *)
let avg_latency (t : t) =
  let n = t.physical_cores in
  if n <= 1 then 0.0
  else begin
    let sum = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then sum := !sum + t.latency.(i).(j)
      done
    done;
    float_of_int !sum /. float_of_int (n * (n - 1))
  end

(* metadata serialization for the noelle-arch tool *)

(** Serialize to metadata, stamped ({!Trust.stamp}).  Architecture facts
    are independent of the IR, so the stamp carries {!Trust.arch_fp}
    instead of a code fingerprint — it detects payload corruption, and
    never goes stale under transformation. *)
let to_meta ?(tool = "noelle-arch") (t : t) (meta : Ir.Meta.t) =
  Ir.Meta.clear_prefix meta "arch.";
  Ir.Meta.set_int meta "arch.cores" t.physical_cores;
  Ir.Meta.set_int meta "arch.smt" t.logical_per_physical;
  Ir.Meta.set_int meta "arch.numa" t.numa_nodes;
  for i = 0 to t.physical_cores - 1 do
    for j = 0 to t.physical_cores - 1 do
      Ir.Meta.set_int meta (Printf.sprintf "arch.lat.%d.%d" i j) t.latency.(i).(j)
    done
  done;
  Trust.stamp meta ~prefix:"arch." ~tool ~fp:Trust.arch_fp

let of_meta (meta : Ir.Meta.t) : t option =
  match Ir.Meta.get_int meta "arch.cores" with
  | None -> None
  | Some cores ->
    let t = measure ~physical_cores:cores () in
    let latency =
      Array.init cores (fun i ->
          Array.init cores (fun j ->
              Option.value
                (Ir.Meta.get_int meta (Printf.sprintf "arch.lat.%d.%d" i j))
                ~default:t.latency.(i).(j)))
    in
    Some { t with latency }
