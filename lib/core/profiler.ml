(** Profilers and profile queries (PRO, §2.2; noelle-prof-coverage /
    noelle-meta-prof-embed).

    NOELLE ships an instruction profiler, a branch profiler, and a loop
    profiler, embeds their results into the IR file as metadata, and
    offers high-level queries (hotness of a code region, loop iteration
    counts, function invocation counts).  Here the profilers hook the IR
    interpreter; the queries read the embedded metadata, so they work on a
    freshly parsed module exactly as in the paper's pipeline. *)

open Ir

type t = {
  block_counts : (string * string, int64) Hashtbl.t;
      (** (function, block label) -> executions *)
  edge_counts : (string * int * string, int64) Hashtbl.t;
      (** (function, branch inst id, target label) -> taken count *)
  fn_insts : (string, int64) Hashtbl.t;    (** dynamic instructions per fn *)
  fn_calls : (string, int64) Hashtbl.t;    (** invocations per fn *)
  call_pair : (string * string, int64) Hashtbl.t;  (** caller/callee counts *)
  mutable total_insts : int64;
}

let fresh () =
  {
    block_counts = Hashtbl.create 64;
    edge_counts = Hashtbl.create 64;
    fn_insts = Hashtbl.create 16;
    fn_calls = Hashtbl.create 16;
    call_pair = Hashtbl.create 16;
    total_insts = 0L;
  }

let bump tbl key by =
  Hashtbl.replace tbl key (Int64.add by (try Hashtbl.find tbl key with Not_found -> 0L))

(** Run the program under the instruction/branch/loop profilers.
    Returns the profile and the program output. *)
let run ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) : t * string =
  let p = fresh () in
  let pending_branch = ref None in
  let configure (st : Interp.state) =
    st.Interp.hooks.Interp.on_block <-
      Some
        (fun f bid ->
          let lbl = (Func.block f bid).Func.label in
          bump p.block_counts (f.Func.fname, lbl) 1L;
          (match !pending_branch with
          | Some (fn, iid) when fn = f.Func.fname ->
            bump p.edge_counts (fn, iid, lbl) 1L
          | _ -> ());
          pending_branch := None);
    st.Interp.hooks.Interp.on_inst <-
      Some
        (fun f i ->
          p.total_insts <- Int64.add p.total_insts 1L;
          bump p.fn_insts f.Func.fname 1L;
          match i.Instr.op with
          | Instr.Cbr _ -> pending_branch := Some (f.Func.fname, i.Instr.id)
          | _ -> pending_branch := None);
    st.Interp.hooks.Interp.on_call <-
      Some
        (fun ~caller ~callee ->
          bump p.fn_calls callee 1L;
          bump p.call_pair (caller, callee) 1L)
  in
  let _, st = Interp.run_state ~entry ~args ?fuel ~configure m in
  (p, Buffer.contents st.Interp.output)

(* ------------------------------------------------------------------ *)
(* Embedding (noelle-meta-prof-embed) and queries                      *)
(* ------------------------------------------------------------------ *)

(** Embed the profile as metadata, stamped ({!Trust.stamp}) with the
    module fingerprint: a profile describes whole-program behaviour, so
    any code change makes it stale (a warning, not an error — profiles
    are advisory; see {!Trust.is_error}). *)
let embed ?(tool = "noelle-meta-prof-embed") (p : t) (m : Irmod.t) =
  let meta = m.Irmod.meta in
  Meta.clear_prefix meta "prof.";
  Hashtbl.iter
    (fun (fn, lbl) c ->
      Meta.set meta (Printf.sprintf "prof.block.%s.%s" fn lbl) (Int64.to_string c))
    p.block_counts;
  Hashtbl.iter
    (fun (fn, iid, lbl) c ->
      Meta.set meta (Printf.sprintf "prof.edge.%s.%d.%s" fn iid lbl) (Int64.to_string c))
    p.edge_counts;
  Hashtbl.iter
    (fun fn c -> Meta.set meta (Printf.sprintf "prof.fninsts.%s" fn) (Int64.to_string c))
    p.fn_insts;
  Hashtbl.iter
    (fun fn c -> Meta.set meta (Printf.sprintf "prof.fncalls.%s" fn) (Int64.to_string c))
    p.fn_calls;
  Hashtbl.iter
    (fun (a, b) c ->
      Meta.set meta (Printf.sprintf "prof.callpair.%s.%s" a b) (Int64.to_string c))
    p.call_pair;
  Meta.set meta "prof.total" (Int64.to_string p.total_insts);
  Trust.stamp meta ~prefix:"prof." ~tool ~fp:(Fingerprint.module_fp m)

(** Does the module carry an embedded profile? *)
let available (m : Irmod.t) = Meta.mem m.Irmod.meta "prof.total"

let get64 m k =
  match Meta.get m.Irmod.meta k with
  | Some s -> (try Int64.of_string s with _ -> 0L)
  | None -> 0L

let total_insts (m : Irmod.t) = get64 m "prof.total"

let block_count (m : Irmod.t) (f : Func.t) bid =
  get64 m (Printf.sprintf "prof.block.%s.%s" f.Func.fname (Func.block f bid).Func.label)

let fn_invocations (m : Irmod.t) fname = get64 m (Printf.sprintf "prof.fncalls.%s" fname)

let fn_insts (m : Irmod.t) fname = get64 m (Printf.sprintf "prof.fninsts.%s" fname)

(** Dynamic instructions executed inside the loop (block count x block
    size, the standard static-weighting of a block profile). *)
let loop_insts (m : Irmod.t) (ls : Loopstructure.t) =
  List.fold_left
    (fun acc bid ->
      let n = List.length (Func.block ls.Loopstructure.f bid).Func.insts in
      Int64.add acc (Int64.mul (block_count m ls.Loopstructure.f bid) (Int64.of_int n)))
    0L ls.Loopstructure.blocks

(** Hotness of a loop: fraction of all executed instructions spent in it. *)
let loop_hotness (m : Irmod.t) (ls : Loopstructure.t) =
  let t = total_insts m in
  if Int64.equal t 0L then 0.0
  else Int64.to_float (loop_insts m ls) /. Int64.to_float t

(** Total iterations of the loop (executions of its header). *)
let loop_iterations (m : Irmod.t) (ls : Loopstructure.t) =
  block_count m ls.Loopstructure.f ls.Loopstructure.header

(** Invocations of the loop (entries from outside; executions of the
    preheader when one exists). *)
let loop_invocations (m : Irmod.t) (ls : Loopstructure.t) =
  match ls.Loopstructure.preheader with
  | Some ph -> block_count m ls.Loopstructure.f ph
  | None ->
    (* fall back: iterations minus back-edge executions *)
    let latch_execs =
      List.fold_left
        (fun acc l -> Int64.add acc (block_count m ls.Loopstructure.f l))
        0L ls.Loopstructure.latches
    in
    Int64.max 1L (Int64.sub (loop_iterations m ls) latch_execs)

(** Average iterations per invocation. *)
let loop_avg_iterations (m : Irmod.t) (ls : Loopstructure.t) =
  let inv = loop_invocations m ls in
  if Int64.equal inv 0L then 0.0
  else Int64.to_float (loop_iterations m ls) /. Int64.to_float inv

(** Taken-probability of a conditional branch towards a given target. *)
let branch_probability (m : Irmod.t) (f : Func.t) (br : Instr.inst) ~target_label =
  let k = Printf.sprintf "prof.edge.%s.%d.%s" f.Func.fname br.Instr.id target_label in
  let taken = get64 m k in
  match br.Instr.op with
  | Instr.Cbr (_, t, e) ->
    let lt = (Func.block f t).Func.label and le = (Func.block f e).Func.label in
    let tot =
      Int64.add
        (get64 m (Printf.sprintf "prof.edge.%s.%d.%s" f.Func.fname br.Instr.id lt))
        (get64 m (Printf.sprintf "prof.edge.%s.%d.%s" f.Func.fname br.Instr.id le))
    in
    if Int64.equal tot 0L then 0.5 else Int64.to_float taken /. Int64.to_float tot
  | _ -> 0.0
