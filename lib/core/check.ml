(** noelle-check: structured diagnostics composed from NOELLE abstractions.

    The paper's thesis (§1, Table 3) is that PDG + DFE + alias stack + loop
    abstractions make sophisticated custom tools cheap; this engine is the
    diagnostics incarnation of that claim.  Every checker is a thin client
    of an existing analysis — the race detector reads loop-carried memory
    edges off {!Pdg.loop_dg}, the sanitizers are {!Dfe} problems refined by
    {!Andersen} points-to and {!Scev} bound queries — and none of them
    walks the CFG itself.

    Diagnostics carry a stable check id, a severity, and an exact
    function/block/instruction location, and can be suppressed through
    module metadata ([check.suppress.<id>[.<function>[.<inst>]]]), which
    round-trips through the printer/parser like any other metadata. *)

open Ir

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type loc = {
  lfunc : string;
  lblock : string;
  linst : int;
}

type diag = {
  did : string;            (** stable check id, e.g. ["san.uninit-load"] *)
  dsev : severity;
  dloc : loc;
  dmsg : string;
  dnotes : string list;    (** supporting evidence, e.g. the alias chain *)
  dsuppressed : bool;
}

(** Per-checker cost accounting, surfaced by [noelle-check --stats]. *)
type checker_stats = {
  sname : string;
  sdiags : int;
  siters : int;        (** DFE fixpoint iterations (block transfers) *)
  stime_ms : float;
}

type report = {
  diags : diag list;
  rstats : checker_stats list;
}

(** Shared analysis context: one Andersen result and one alias stack per
    run, handed to every checker. *)
type ctx = {
  cm : Irmod.t;
  cstack : Alias.stack;
  canders : Andersen.t;
  mutable citers : int;    (** DFE iterations charged to the running checker *)
}

type checker = {
  cid : string;
  cdoc : string;
  crun : ctx -> diag list;
}

(* ------------------------------------------------------------------ *)
(* Suppression via metadata                                            *)
(* ------------------------------------------------------------------ *)

let suppressed (m : Irmod.t) ~did ~fname ~inst =
  let meta = m.Irmod.meta in
  Meta.mem meta (Printf.sprintf "check.suppress.%s.%s.%d" did fname inst)
  || Meta.mem meta (Printf.sprintf "check.suppress.%s.%s" did fname)
  || Meta.mem meta (Printf.sprintf "check.suppress.%s" did)

(** Record an instruction-granular suppression in the module metadata. *)
let suppress (m : Irmod.t) ~did ~fname ~inst =
  Meta.set m.Irmod.meta (Printf.sprintf "check.suppress.%s.%s.%d" did fname inst) "1"

let loc_of (f : Func.t) (i : Instr.inst) =
  let lblock =
    match Hashtbl.find_opt f.Func.blks i.Instr.parent with
    | Some b -> b.Func.label
    | None -> "?"
  in
  { lfunc = f.Func.fname; lblock; linst = i.Instr.id }

let mk ~did ~sev (f : Func.t) (i : Instr.inst) msg notes =
  { did; dsev = sev; dloc = loc_of f i; dmsg = msg; dnotes = notes; dsuppressed = false }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let base_to_string = function
  | Alias.Balloca r -> Printf.sprintf "alloca %%%d" r
  | Alias.Bglobal g -> "@" ^ g
  | Alias.Bmalloc r -> Printf.sprintf "malloc %%%d" r
  | Alias.Barg k -> Printf.sprintf "arg %d" k
  | Alias.Bnull -> "null"
  | Alias.Bunknown -> "unknown"

(** Words in the allocation behind base [b], when statically known. *)
let alloc_size (m : Irmod.t) (f : Func.t) (b : Alias.base) : int64 option =
  match b with
  | Alias.Balloca r -> (
    match Func.inst_opt f r with
    | Some { Instr.op = Instr.Alloca (Instr.Cint n); _ } -> Some n
    | _ -> None)
  | Alias.Bmalloc r -> (
    match Func.inst_opt f r with
    | Some { Instr.op = Instr.Call (_, [ Instr.Cint n ]); _ } -> Some n
    | _ -> None)
  | Alias.Bglobal g -> (
    match Irmod.global_opt m g with
    | Some gl -> Some (Int64.of_int gl.Irmod.size)
    | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* race.loop-carried: the static race detector                         *)
(* ------------------------------------------------------------------ *)

let sort_to_string = function
  | Depgraph.RAW -> "RAW"
  | Depgraph.WAW -> "WAW"
  | Depgraph.WAR -> "WAR"

(** The alias chain behind a memory dependence: which base objects the two
    pointers resolve to, what Andersen knows about them, and the verdict
    the stack returned.  This is the evidence the paper's Figure 3 ablation
    is about — it shows exactly which analysis failed to disprove the
    dependence. *)
let alias_chain (ctx : ctx) (f : Func.t) (i1 : Instr.inst) (i2 : Instr.inst) =
  match (Alias.pointer_operand i1, Alias.pointer_operand i2) with
  | Some p1, Some p2 ->
    let verdict =
      match Alias.alias ctx.cstack ctx.cm f p1 p2 with
      | Alias.No_alias -> "no-alias"
      | Alias.May_alias -> "may-alias"
      | Alias.Must_alias -> "must-alias"
    in
    let side (i : Instr.inst) p =
      Printf.sprintf "%%%d [base %s, pts %s]" i.Instr.id
        (base_to_string (Alias.base_of f p))
        (Andersen.objset_to_string (Andersen.objs_of ctx.canders f p))
    in
    [ Printf.sprintf "alias chain: %s vs %s -> %s" (side i1 p1) (side i2 p2) verdict ]
  | _ ->
    [ "dependence involves a call with ordered or unknown side effects" ]

(** Loop-carried memory dependences of one loop, deduplicated to unordered
    instruction pairs. *)
let loop_races (ctx : ctx) (f : Func.t) (pdg : Pdg.t) (l : Loopnest.loop) :
    diag list =
  let ldg = Pdg.loop_dg pdg l in
  let g = ldg.Pdg.ldg in
  let lkey = Ids.loop_key f l in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (e : Depgraph.edge) ->
      match e.Depgraph.kind with
      | Depgraph.Memory sort
        when e.Depgraph.loop_carried
             && Depgraph.is_internal g e.Depgraph.esrc
             && Depgraph.is_internal g e.Depgraph.edst ->
        let a = min e.Depgraph.esrc e.Depgraph.edst
        and b = max e.Depgraph.esrc e.Depgraph.edst in
        if Hashtbl.mem seen (a, b, sort) then None
        else begin
          Hashtbl.replace seen (a, b, sort) ();
          let i1 = Func.inst f e.Depgraph.esrc and i2 = Func.inst f e.Depgraph.edst in
          Some
            (mk ~did:"race.loop-carried" ~sev:Warning f i1
               (Printf.sprintf
                  "loop %s: loop-carried %s memory dependence %%%d -> %%%d \
                   blocks DOALL/HELIX iteration distribution"
                  lkey (sort_to_string sort) i1.Instr.id i2.Instr.id)
               (alias_chain ctx f i1 i2))
        end
      | _ -> None)
    (Depgraph.edges g)

let race : checker =
  {
    cid = "race.loop-carried";
    cdoc =
      "loop-carried memory dependences (with their alias chain) in every \
       loop a parallelizer would target";
    crun =
      (fun ctx ->
        List.concat_map
          (fun (f : Func.t) ->
            let nest = Loopnest.compute f in
            if nest.Loopnest.loops = [] then []
            else
              let pdg = Pdg.build ~stack:ctx.cstack ctx.cm f in
              List.concat_map (loop_races ctx f pdg) nest.Loopnest.loops)
          (Irmod.defined_functions ctx.cm));
  }

(* ------------------------------------------------------------------ *)
(* san.uninit-load: reaching-stores says no store reaches the load     *)
(* ------------------------------------------------------------------ *)

let uninit : checker =
  {
    cid = "san.uninit-load";
    cdoc = "loads from non-escaping locals no store can reach (DFE reaching-stores)";
    crun =
      (fun ctx ->
        let m = ctx.cm in
        List.concat_map
          (fun (f : Func.t) ->
            let res = Dfe.reaching_stores ~stack:ctx.cstack m f in
            ctx.citers <- ctx.citers + res.Dfe.iterations;
            let diags = ref [] in
            Func.iter_blocks
              (fun (b : Func.block) ->
                let reaching =
                  ref
                    (match Hashtbl.find_opt res.Dfe.in_ b.Func.bid with
                    | Some s -> s
                    | None -> Dfe.IntSet.empty)
                in
                List.iter
                  (fun (i : Instr.inst) ->
                    (match i.Instr.op with
                    | Instr.Load p -> (
                      match Alias.base_of f p with
                      | Alias.Balloca r when not (Alias.alloca_escapes f r) ->
                        let fed =
                          Dfe.IntSet.exists
                            (fun sid ->
                              match Func.inst_opt f sid with
                              | Some { Instr.op = Instr.Store (_, q); _ } ->
                                Alias.alias ctx.cstack m f p q <> Alias.No_alias
                              | _ -> false)
                            !reaching
                        in
                        if not fed then
                          diags :=
                            mk ~did:"san.uninit-load" ~sev:Error f i
                              (Printf.sprintf
                                 "load of uninitialized memory: no store to \
                                  non-escaping alloca %%%d reaches this load"
                                 r)
                              []
                            :: !diags
                      | _ -> ())
                    | _ -> ());
                    match i.Instr.op with
                    | Instr.Store _ -> reaching := Dfe.IntSet.add i.Instr.id !reaching
                    | _ -> ())
                  (Func.insts_of_block f b.Func.bid))
              f;
            List.rev !diags)
          (Irmod.defined_functions m));
  }

(* ------------------------------------------------------------------ *)
(* san.dead-store: the new backward live-memory problem                *)
(* ------------------------------------------------------------------ *)

let dead_store : checker =
  {
    cid = "san.dead-store";
    cdoc = "stores to non-escaping locals no read can observe (DFE live-memory)";
    crun =
      (fun ctx ->
        let m = ctx.cm in
        List.concat_map
          (fun (f : Func.t) ->
            let res = Dfe.live_memory ~stack:ctx.cstack m f in
            ctx.citers <- ctx.citers + res.Dfe.iterations;
            let may_observe p (j : Instr.inst) =
              match j.Instr.op with
              | Instr.Load q -> Alias.alias ctx.cstack m f p q <> Alias.No_alias
              | Instr.Call _ -> Alias.call_may_touch ctx.cstack m f j p
              | _ -> false
            in
            let diags = ref [] in
            Func.iter_blocks
              (fun (b : Func.block) ->
                let out_reads =
                  match Hashtbl.find_opt res.Dfe.out b.Func.bid with
                  | Some s -> s
                  | None -> Dfe.IntSet.empty
                in
                let insts = Func.insts_of_block f b.Func.bid in
                let rec scan = function
                  | [] -> ()
                  | (i : Instr.inst) :: rest ->
                    (match i.Instr.op with
                    | Instr.Store (_, p) -> (
                      match Alias.base_of f p with
                      | Alias.Balloca r when not (Alias.alloca_escapes f r) ->
                        (* walk forward in the block: first observer wins *)
                        let rec verdict = function
                          | [] ->
                            if
                              Dfe.IntSet.exists
                                (fun rid ->
                                  match Func.inst_opt f rid with
                                  | Some j -> may_observe p j
                                  | None -> false)
                                out_reads
                            then `Live
                            else `Dead "never read afterwards"
                          | (j : Instr.inst) :: more -> (
                            if may_observe p j then `Live
                            else
                              match j.Instr.op with
                              | Instr.Store (_, q)
                                when Alias.alias ctx.cstack m f p q
                                     = Alias.Must_alias ->
                                `Dead
                                  (Printf.sprintf "overwritten by %%%d before any read"
                                     j.Instr.id)
                              | _ -> verdict more)
                        in
                        (match verdict rest with
                        | `Live -> ()
                        | `Dead why ->
                          diags :=
                            mk ~did:"san.dead-store" ~sev:Warning f i
                              (Printf.sprintf
                                 "dead store to non-escaping alloca %%%d: %s" r why)
                              []
                            :: !diags)
                      | _ -> ())
                    | _ -> ());
                    scan rest
                in
                scan insts)
              f;
            List.rev !diags)
          (Irmod.defined_functions m));
  }

(* ------------------------------------------------------------------ *)
(* san.use-after-free / san.double-free: forward allocation state      *)
(* ------------------------------------------------------------------ *)

(** The heap checker threads a forward "must-freed" allocation-state
    problem through the DFE: facts are malloc call-site ids, a [free] whose
    points-to set is exactly one local malloc site generates it, a
    re-execution of the site kills it, and the meet is intersection (a site
    is must-freed only when freed on every path).  Andersen supplies the
    points-to sets; exclusivity requirements keep the verdict
    false-positive-free. *)
let heap : checker =
  {
    cid = "san.heap";
    cdoc = "use-after-free / double-free over Andersen + forward allocation state";
    crun =
      (fun ctx ->
        let m = ctx.cm in
        List.concat_map
          (fun (f : Func.t) ->
            let fn = f.Func.fname in
            (* local malloc sites, as DFE facts *)
            let sites =
              Func.fold_insts
                (fun acc (i : Instr.inst) ->
                  match i.Instr.op with
                  | Instr.Call (Instr.Glob "malloc", _) ->
                    Dfe.IntSet.add i.Instr.id acc
                  | _ -> acc)
                Dfe.IntSet.empty f
            in
            if Dfe.IntSet.is_empty sites then []
            else begin
              (* points-to of [v], restricted to this function's malloc
                 sites; [exclusive] = nothing else could be pointed at *)
              let targets v =
                let objs = Andersen.objs_of ctx.canders f v in
                let ids =
                  Andersen.ObjSet.fold
                    (fun o acc ->
                      match o with
                      | Andersen.Omalloc (ofn, oid) when ofn = fn ->
                        Dfe.IntSet.add oid acc
                      | _ -> acc)
                    objs Dfe.IntSet.empty
                in
                let exclusive =
                  (not (Andersen.ObjSet.is_empty objs))
                  && Andersen.ObjSet.for_all
                       (function
                         | Andersen.Omalloc (ofn, _) -> ofn = fn
                         | _ -> false)
                       objs
                in
                (ids, exclusive)
              in
              (* exact per-block transfer, composed in instruction order *)
              let transfer b =
                List.fold_left
                  (fun (g, k) (i : Instr.inst) ->
                    match i.Instr.op with
                    | Instr.Call (Instr.Glob "malloc", _) ->
                      (Dfe.IntSet.remove i.Instr.id g, Dfe.IntSet.add i.Instr.id k)
                    | Instr.Call (Instr.Glob "free", [ p ]) ->
                      let tgts, exclusive = targets p in
                      if exclusive && Dfe.IntSet.cardinal tgts = 1 then
                        (Dfe.IntSet.union g tgts, Dfe.IntSet.diff k tgts)
                      else (g, k)
                    | _ -> (g, k))
                  (Dfe.IntSet.empty, Dfe.IntSet.empty)
                  (Func.insts_of_block f b)
              in
              let res =
                Dfe.solve f
                  {
                    Dfe.direction = Dfe.Forward;
                    gen = (fun b -> fst (transfer b));
                    kill = (fun b -> snd (transfer b));
                    boundary = Dfe.IntSet.empty;
                    init = sites;
                    combine = Dfe.IntSet.inter;
                  }
              in
              ctx.citers <- ctx.citers + res.Dfe.iterations;
              let diags = ref [] in
              Func.iter_blocks
                (fun (b : Func.block) ->
                  let freed =
                    ref
                      (match Hashtbl.find_opt res.Dfe.in_ b.Func.bid with
                      | Some s -> s
                      | None -> Dfe.IntSet.empty)
                  in
                  List.iter
                    (fun (i : Instr.inst) ->
                      match i.Instr.op with
                      | Instr.Call (Instr.Glob "malloc", _) ->
                        freed := Dfe.IntSet.remove i.Instr.id !freed
                      | Instr.Call (Instr.Glob "free", [ p ]) ->
                        let tgts, exclusive = targets p in
                        if
                          exclusive
                          && (not (Dfe.IntSet.is_empty tgts))
                          && Dfe.IntSet.subset tgts !freed
                        then
                          diags :=
                            mk ~did:"san.double-free" ~sev:Error f i
                              (Printf.sprintf
                                 "double free: allocation %s is already freed \
                                  on every path to this call"
                                 (Dfe.IntSet.elements tgts
                                 |> List.map (Printf.sprintf "%%%d")
                                 |> String.concat ", "))
                              []
                            :: !diags;
                        if exclusive && Dfe.IntSet.cardinal tgts = 1 then
                          freed := Dfe.IntSet.union !freed tgts
                      | Instr.Load p | Instr.Store (_, p) ->
                        let tgts, exclusive = targets p in
                        if
                          exclusive
                          && (not (Dfe.IntSet.is_empty tgts))
                          && Dfe.IntSet.subset tgts !freed
                        then
                          diags :=
                            mk ~did:"san.use-after-free" ~sev:Error f i
                              (Printf.sprintf
                                 "use after free: %s through %s freed on every \
                                  path to this access"
                                 (match i.Instr.op with
                                 | Instr.Load _ -> "load"
                                 | _ -> "store")
                                 (Dfe.IntSet.elements tgts
                                 |> List.map (Printf.sprintf "allocation %%%d")
                                 |> String.concat ", "))
                              []
                            :: !diags
                      | _ -> ())
                    (Func.insts_of_block f b.Func.bid))
                f;
              List.rev !diags
            end)
          (Irmod.defined_functions m));
  }

(* ------------------------------------------------------------------ *)
(* san.oob-gep: SCEV bounds against known allocation sizes             *)
(* ------------------------------------------------------------------ *)

let oob : checker =
  {
    cid = "san.oob-gep";
    cdoc = "affine or constant accesses provably outside their allocation (SCEV bounds)";
    crun =
      (fun ctx ->
        let m = ctx.cm in
        List.concat_map
          (fun (f : Func.t) ->
            let nest = lazy (Loopnest.compute f) in
            let diags = ref [] in
            Func.iter_insts
              (fun (i : Instr.inst) ->
                match Alias.pointer_operand i with
                | None -> ()
                | Some p -> (
                  let base = Alias.base_of f p in
                  match alloc_size m f base with
                  | None -> ()
                  | Some size -> (
                    let report why =
                      diags :=
                        mk ~did:"san.oob-gep" ~sev:Error f i
                          (Printf.sprintf
                             "out-of-bounds %s: %s of %s [%Ld words]"
                             (match i.Instr.op with
                             | Instr.Load _ -> "load"
                             | _ -> "store")
                             why (base_to_string base) size)
                          []
                        :: !diags
                    in
                    match Alias.const_offset f p with
                    | Some off ->
                      if off < 0L || off >= size then
                        report (Printf.sprintf "constant offset %Ld" off)
                    | None -> (
                      (* affine path: index range over the innermost loop *)
                      let nest = Lazy.force nest in
                      match Loopnest.innermost nest i.Instr.parent with
                      | None -> ()
                      | Some l -> (
                        let header_phis =
                          List.filter
                            (fun (j : Instr.inst) ->
                              match j.Instr.op with Instr.Phi _ -> true | _ -> false)
                            (Func.insts_of_block f l.Loopnest.header)
                        in
                        let bound =
                          List.find_map
                            (fun (phi : Instr.inst) ->
                              match
                                Scev.affine_of f l ~iv_phi:phi.Instr.id p
                              with
                              | Some { Scev.base = Some bv; scale; offset }
                                when (not (Int64.equal scale 0L))
                                     && Alias.base_of f bv = base
                                     && Alias.const_offset f bv = Some 0L -> (
                                match Scev.phi_range f nest phi with
                                | Some (lo, hi) ->
                                  let a = Int64.add offset (Int64.mul scale lo)
                                  and b = Int64.add offset (Int64.mul scale hi) in
                                  Some (phi, scale, min a b, max a b)
                                | None -> None)
                              | _ -> None)
                            header_phis
                        in
                        match bound with
                        | Some (phi, scale, lo, hi) ->
                          if lo < 0L || hi >= size then
                            report
                              (Printf.sprintf
                                 "affine access %Ld*%%%d spanning [%Ld, %Ld]"
                                 scale phi.Instr.id lo hi)
                        | None -> ())))))
              f;
            List.rev !diags)
          (Irmod.defined_functions m));
  }

(* ------------------------------------------------------------------ *)
(* complexity: static loop bounds against a budget                      *)
(* ------------------------------------------------------------------ *)

(** Flag loops whose {!Bounds} static trip bound exceeds a configurable
    budget ([check.complexity.budget] metadata, default 1,000,000), and —
    on request via [check.complexity.flag-unbounded] — loops that are
    structurally unable to terminate.  Symbolic and [Unknown] bounds are
    never flagged: the checker reports only what the analysis proved, so
    it stays clean on code it cannot bound rather than guessing. *)
let complexity : checker =
  {
    cid = "complexity";
    cdoc =
      "loops whose static trip bound (Ir.Bounds, profile-free) exceeds the \
       complexity budget, plus provably unbounded loops on request";
    crun =
      (fun ctx ->
        let m = ctx.cm in
        let budget =
          match Meta.get_int m.Irmod.meta "check.complexity.budget" with
          | Some b -> Int64.of_int b
          | None -> 1_000_000L
        in
        let flag_unbounded =
          Meta.mem m.Irmod.meta "check.complexity.flag-unbounded"
        in
        List.concat_map
          (fun (f : Func.t) ->
            let s = Bounds.analyze f in
            List.filter_map
              (fun (lb : Bounds.loop_bound) ->
                let anchor =
                  match Func.terminator f lb.Bounds.lheader with
                  | Some i -> i
                  | None -> Func.inst f (List.hd (Func.block f lb.Bounds.lheader).Func.insts)
                in
                match lb.Bounds.lheadx with
                | Bounds.Unbounded when flag_unbounded ->
                  Some
                    (mk ~did:"complexity.unbounded" ~sev:Warning f anchor
                       (Printf.sprintf
                          "loop %s: no exit edge — the loop cannot terminate"
                          lb.Bounds.lkey)
                       [])
                | (Bounds.Exact _ | Bounds.Upper _) as trip -> (
                  match Bounds.trip_const trip with
                  | Some n when Int64.compare n budget > 0 ->
                    Some
                      (mk ~did:"complexity.budget" ~sev:Warning f anchor
                         (Printf.sprintf
                            "loop %s: static trip bound %s exceeds the \
                             complexity budget %Ld"
                            lb.Bounds.lkey
                            (Bounds.trip_to_string trip) budget)
                         [ Printf.sprintf "cost estimate: %s instructions \
                                           per invocation"
                             (Bounds.cost_to_string lb.Bounds.lcost) ])
                  | _ -> None)
                | _ -> None)
              s.Bounds.floops)
          (Irmod.defined_functions m));
  }

(* ------------------------------------------------------------------ *)
(* meta.verify: trust audit of embedded analysis artifacts             *)
(* ------------------------------------------------------------------ *)

(** Audit every embedded analysis artifact (PDG, profile, arch) against
    the current IR via {!Trust}: diagnostics are [meta.stale] /
    [meta.corrupt] / [meta.unstamped], located at the artifact's subject
    (the function for a PDG, the module otherwise).  Severity follows
    {!Trust.is_error}: a questionable PDG is an error (consuming it
    miscompiles), a stale profile only a warning. *)
let meta_verify : checker =
  {
    cid = "meta.verify";
    cdoc = "embedded analysis artifacts whose stamp is stale, corrupt or missing";
    crun =
      (fun ctx ->
        List.filter_map
          (fun (e : Trust.event) ->
            match e.Trust.averdict with
            | Trust.Trusted _ -> None
            | v ->
              let lfunc =
                match e.Trust.akind with
                | Trust.Pdg_artifact fn -> fn
                | Trust.Prof_artifact | Trust.Arch_artifact -> "<module>"
              in
              Some
                {
                  did = Trust.check_id v;
                  dsev = (if Trust.is_error e then Error else Warning);
                  dloc = { lfunc; lblock = Trust.kind_to_string e.Trust.akind; linst = -1 };
                  dmsg = Trust.event_to_string e;
                  dnotes = [ Printf.sprintf "artifact keys: %s*" e.Trust.aprefix ];
                  dsuppressed = false;
                })
          (Trust.audit ctx.cm));
  }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let all : checker list = [ race; uninit; dead_store; heap; oob; complexity; meta_verify ]
let checker_ids = List.map (fun c -> c.cid) all

(** Run the selected checkers (all by default) over [m].  Each checker is
    timed and its DFE iterations are accounted; suppressions are resolved
    against the module metadata at report time. *)
let run ?checks (m : Irmod.t) : report =
  let sel =
    match checks with
    | None -> all
    | Some ids ->
      List.filter
        (fun c ->
          List.exists
            (fun id -> c.cid = id || String.length id > 0 && c.cid = "san." ^ id)
            ids)
        all
  in
  let anders = Andersen.analyze m in
  let ctx =
    {
      cm = m;
      cstack = [ Alias.baseline; Andersen.analysis anders ];
      canders = anders;
      citers = 0;
    }
  in
  let diags = ref [] and stats = ref [] in
  List.iter
    (fun c ->
      ctx.citers <- 0;
      (* one timing mechanism: the telemetry clock measures the checker and
         (when tracing is installed) records the interval as a span *)
      let ds, ms =
        Trace.timed_span ~cat:"check" ("check:" ^ c.cid) (fun () -> c.crun ctx)
      in
      Trace.add (Printf.sprintf "check.%s.diags" c.cid) (List.length ds);
      Trace.add (Printf.sprintf "check.%s.dfe_iters" c.cid) ctx.citers;
      let ds =
        List.map
          (fun d ->
            {
              d with
              dsuppressed =
                suppressed m ~did:d.did ~fname:d.dloc.lfunc ~inst:d.dloc.linst;
            })
          ds
      in
      diags := !diags @ ds;
      stats :=
        { sname = c.cid; sdiags = List.length ds; siters = ctx.citers; stime_ms = ms }
        :: !stats)
    sel;
  { diags = !diags; rstats = List.rev !stats }

(** Unsuppressed errors: the gate condition. *)
let errors (r : report) =
  List.filter (fun d -> d.dsev = Error && not d.dsuppressed) r.diags

let warnings (r : report) =
  List.filter (fun d -> d.dsev = Warning && not d.dsuppressed) r.diags

(** Loop ids (as {!Ids.loop_key}) the race detector flags: the skip set the
    [--check-races] pipeline gate feeds to DOALL/HELIX/DSWP. *)
let race_flagged_loops (m : Irmod.t) : (string, unit) Hashtbl.t =
  let r = run ~checks:[ "race.loop-carried" ] m in
  let flagged = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if d.did = "race.loop-carried" && not d.dsuppressed then
        (* the loop key is the first token after "loop " in the message *)
        match String.index_opt d.dmsg ':' with
        | Some j when String.length d.dmsg > 5 && String.sub d.dmsg 0 5 = "loop " ->
          Hashtbl.replace flagged (String.sub d.dmsg 5 (j - 5)) ()
        | _ -> ())
    r.diags;
  flagged

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let diag_to_string (d : diag) =
  Printf.sprintf "%s[%s]%s %s/%s: inst %d: %s%s"
    (severity_to_string d.dsev) d.did
    (if d.dsuppressed then " (suppressed)" else "")
    d.dloc.lfunc d.dloc.lblock d.dloc.linst d.dmsg
    (String.concat "" (List.map (fun n -> "\n    note: " ^ n) d.dnotes))

let report_to_text ?(stats = false) (r : report) =
  let buf = Buffer.create 256 in
  List.iter (fun d -> Buffer.add_string buf (diag_to_string d ^ "\n")) r.diags;
  if stats then
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "stats %-20s %3d diagnostics, %4d DFE iterations, %.2f ms\n"
             s.sname s.sdiags s.siters s.stime_ms))
      r.rstats;
  let nsup = List.length (List.filter (fun d -> d.dsuppressed) r.diags) in
  Buffer.add_string buf
    (Printf.sprintf "noelle-check: %d errors, %d warnings (%d suppressed)\n"
       (List.length (errors r)) (List.length (warnings r)) nsup);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** JSON rendering of a report (schema documented in the README). *)
let report_to_json ~mname (r : report) =
  let diag d =
    Printf.sprintf
      "{\"check\":\"%s\",\"severity\":\"%s\",\"function\":\"%s\",\"block\":\"%s\",\
       \"inst\":%d,\"message\":\"%s\",\"notes\":[%s],\"suppressed\":%b}"
      (json_escape d.did)
      (severity_to_string d.dsev)
      (json_escape d.dloc.lfunc) (json_escape d.dloc.lblock) d.dloc.linst
      (json_escape d.dmsg)
      (String.concat ","
         (List.map (fun n -> "\"" ^ json_escape n ^ "\"") d.dnotes))
      d.dsuppressed
  in
  let stat s =
    Printf.sprintf
      "{\"checker\":\"%s\",\"diagnostics\":%d,\"iterations\":%d,\"ms\":%.3f}"
      (json_escape s.sname) s.sdiags s.siters s.stime_ms
  in
  Printf.sprintf
    "{\"module\":\"%s\",\"errors\":%d,\"warnings\":%d,\"diagnostics\":[%s],\"stats\":[%s]}"
    (json_escape mname)
    (List.length (errors r))
    (List.length (warnings r))
    (String.concat "," (List.map diag r.diags))
    (String.concat "," (List.map stat r.rstats))
