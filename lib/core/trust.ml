(** The metadata trust layer: self-validating embedded analysis artifacts.

    NOELLE's tools communicate through analysis results embedded as IR
    metadata (noelle-meta-pdg-embed, profile and architecture embedding).
    Nothing ties an embedded artifact to the IR it was computed on, so a
    consumer reloading one after a transformation silently gets the stale
    pre-transform result — a miscompile vector.  This module closes it:

    - every embedder stamps its payload with a {!Ir.Fingerprint} of the
      code it describes, a schema version, the producing tool, and a
      checksum of the payload itself;
    - every consumer goes through a verified load: stamp matches → fast
      reload; stale/corrupt/unstamped → structured diagnostic, artifact
      quarantined, demand recompute (or a trap in {!Strict} mode).

    Quarantine renames the artifact's keys under the
    ["quarantine."] namespace: the payload stays in the module for
    forensics but is no longer discoverable by any consumer. *)

open Ir

let schema_version = 1
let quarantine_prefix = "quarantine."

(** Architecture descriptions are machine facts, independent of the IR;
    their stamps carry this fingerprint instead of a code hash. *)
let arch_fp = "-"

(** What a consumer does on a trust failure: degrade to demand recompute
    (default) or trap. *)
type mode = Strict | Degrade

exception Tainted of string

type stamp = {
  schema : int;
  tool : string;  (** producing tool *)
  fp : string;  (** fingerprint of the code the artifact describes *)
  sum : string;  (** checksum of the payload itself *)
}

type kind =
  | Pdg_artifact of string  (** function name *)
  | Prof_artifact
  | Arch_artifact

type verdict =
  | Trusted of stamp
  | Unstamped
  | Stale of string  (** expected fingerprint *)
  | Corrupt of string  (** what is malformed *)

type event = { akind : kind; aprefix : string; averdict : verdict }

let kind_to_string = function
  | Pdg_artifact fn -> Printf.sprintf "pdg(%s)" fn
  | Prof_artifact -> "prof"
  | Arch_artifact -> "arch"

let prefix_of_kind = function
  | Pdg_artifact fn -> Printf.sprintf "pdg.%s." fn
  | Prof_artifact -> "prof."
  | Arch_artifact -> "arch."

let stamp_key prefix = prefix ^ "stamp"

(* ------------------------------------------------------------------ *)
(* Stamps                                                              *)
(* ------------------------------------------------------------------ *)

(** Checksum of the payload under [prefix]: every key=value pair except
    the stamp itself.  Per-pair hashes are combined with xor, which is
    order-independent — a PDG payload can hold tens of thousands of
    edge keys, and sorting them on every verification would cost more
    than the hash itself. *)
let payload_sum (meta : Meta.t) ~prefix =
  let skey = stamp_key prefix in
  Meta.fold_prefix meta prefix
    (fun k v acc ->
      if k = skey then acc
      else acc lxor Fingerprint.feed (Fingerprint.feed Fingerprint.seed k) v)
    Fingerprint.seed
  |> Fingerprint.to_hex

let stamp_to_string (s : stamp) =
  Printf.sprintf "v=%d tool=%s fp=%s sum=%s" s.schema s.tool s.fp s.sum

let stamp_of_string line =
  let field name kv =
    let p = name ^ "=" in
    if String.length kv > String.length p && String.sub kv 0 (String.length p) = p
    then Some (String.sub kv (String.length p) (String.length kv - String.length p))
    else None
  in
  match String.split_on_char ' ' line with
  | [ v; tool; fp; sum ] -> (
    match (field "v" v, field "tool" tool, field "fp" fp, field "sum" sum) with
    | Some v, Some tool, Some fp, Some sum -> (
      match int_of_string_opt v with
      | Some schema -> Some { schema; tool; fp; sum }
      | None -> None)
    | _ -> None)
  | _ -> None

(** Stamp the artifact under [prefix]: record producing [tool], the code
    fingerprint [fp], and a checksum of the payload as it stands now.
    Call after the payload keys are written. *)
let stamp (meta : Meta.t) ~prefix ~tool ~fp =
  let s = { schema = schema_version; tool; fp; sum = payload_sum meta ~prefix } in
  Meta.set meta (stamp_key prefix) (stamp_to_string s)

(** Is there any key under [prefix] (stamped or not)? *)
let has_artifact (meta : Meta.t) ~prefix =
  Meta.fold_prefix meta prefix (fun _ _ _ -> true) false

(** Verify the artifact under [prefix] against the expected code
    fingerprint [fp]. *)
let verify (meta : Meta.t) ~prefix ~fp : verdict =
  match Meta.get meta (stamp_key prefix) with
  | None -> Unstamped
  | Some line -> (
    match stamp_of_string line with
    | None -> Corrupt "malformed stamp"
    | Some s ->
      if s.schema <> schema_version then
        Corrupt (Printf.sprintf "schema v=%d (expected v=%d)" s.schema schema_version)
      else if s.sum <> payload_sum meta ~prefix then Corrupt "payload checksum mismatch"
      else if s.fp <> fp then Stale s.fp
      else Trusted s)

(** Move the artifact under [prefix] into the quarantine namespace. *)
let quarantine (meta : Meta.t) ~prefix =
  Meta.rename_prefix meta ~prefix ~target:quarantine_prefix

(* ------------------------------------------------------------------ *)
(* Artifact discovery and audit                                        *)
(* ------------------------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Every artifact present in [m]'s metadata (quarantined ones excluded:
    they are already out of service). *)
let artifacts (m : Irmod.t) : kind list =
  let meta = m.Irmod.meta in
  let pdg_fns = Hashtbl.create 8 in
  let prof = ref false and arch = ref false in
  Meta.iter_sorted
    (fun k _ ->
      if starts_with ~prefix:quarantine_prefix k then ()
      else if starts_with ~prefix:"pdg." k then (
        (* pdg.<fn>.<suffix>: the function name is everything between the
           first and the last dot *)
        match String.rindex_opt k '.' with
        | Some last when last > 3 ->
          let fn = String.sub k 4 (last - 4) in
          if fn <> "" then Hashtbl.replace pdg_fns fn ()
        | _ -> ())
      else if starts_with ~prefix:"prof." k then prof := true
      else if starts_with ~prefix:"arch." k then arch := true)
    meta;
  let fns = Hashtbl.fold (fun fn () acc -> fn :: acc) pdg_fns [] in
  List.map (fun fn -> Pdg_artifact fn) (List.sort String.compare fns)
  @ (if !prof then [ Prof_artifact ] else [])
  @ if !arch then [ Arch_artifact ] else []

(** The fingerprint a fresh stamp for this artifact would carry today.
    [Error] when the subject no longer exists (a PDG for a function that
    was removed, or is now only a declaration): necessarily stale. *)
let expected_fp (m : Irmod.t) (k : kind) : (string, string) result =
  match k with
  | Pdg_artifact fn -> (
    match Irmod.func_opt m fn with
    | Some f when not f.Func.is_declaration -> Ok (Fingerprint.func_fp f)
    | Some _ -> Error "function is now a declaration"
    | None -> Error "function no longer exists")
  | Prof_artifact -> Ok (Fingerprint.module_fp m)
  | Arch_artifact -> Ok arch_fp

(** Verify one artifact against the current IR. *)
let verify_artifact (m : Irmod.t) (k : kind) : verdict =
  let prefix = prefix_of_kind k in
  match expected_fp m k with
  | Ok fp -> verify m.Irmod.meta ~prefix ~fp
  | Error why -> (
    (* subject gone: even a well-formed stamp cannot match any code *)
    match Meta.get m.Irmod.meta (stamp_key prefix) with
    | None -> Unstamped
    | Some _ -> Stale why)

(** Verify every artifact in [m]; one event per artifact. *)
let audit (m : Irmod.t) : event list =
  List.map
    (fun k ->
      { akind = k; aprefix = prefix_of_kind k; averdict = verify_artifact m k })
    (artifacts m)

(** The subset of [events] a verification gate fails on. *)
let failures (events : event list) : event list =
  List.filter
    (fun e -> match e.averdict with Trusted _ -> false | _ -> true)
    events

(** Quarantine every artifact of the given kinds whose verdict is stale
    or corrupt; returns the events for what was quarantined.  [kinds]
    filters before verification (fingerprinting is not free). *)
let reconcile ?(kinds = fun (_ : kind) -> true) (m : Irmod.t) : event list =
  let out = ref [] in
  List.iter
    (fun k ->
      if kinds k then
        match verify_artifact m k with
        | Trusted _ | Unstamped -> ()
        | (Stale _ | Corrupt _) as v ->
          let prefix = prefix_of_kind k in
          quarantine m.Irmod.meta ~prefix;
          out := { akind = k; aprefix = prefix; averdict = v } :: !out)
    (artifacts m);
  List.rev !out

(** Function names whose PDG artifacts sit in quarantine (so a pipeline
    can re-embed fresh ones at commit). *)
let quarantined_pdg_functions (m : Irmod.t) : string list =
  let fns = Hashtbl.create 8 in
  let qp = quarantine_prefix ^ "pdg." in
  Meta.iter_sorted
    (fun k _ ->
      if starts_with ~prefix:qp k then
        match String.rindex_opt k '.' with
        | Some last when last > String.length qp ->
          let fn = String.sub k (String.length qp) (last - String.length qp) in
          if fn <> "" then Hashtbl.replace fns fn ()
        | _ -> ())
    m.Irmod.meta;
  Hashtbl.fold (fun fn () acc -> fn :: acc) fns [] |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Stable check id for a verdict (noelle-check namespace). *)
let check_id = function
  | Trusted _ -> "meta.ok"
  | Unstamped -> "meta.unstamped"
  | Stale _ -> "meta.stale"
  | Corrupt _ -> "meta.corrupt"

(** Should this event fail a gate as an error (vs warn)?  The PDG is
    load-bearing — consuming a stale one miscompiles — so any non-trusted
    PDG artifact is an error.  Profiles and architecture descriptions are
    advisory (they steer heuristics, not correctness): staleness is a
    warning; corruption is still an error. *)
let is_error (e : event) =
  match (e.akind, e.averdict) with
  | _, Trusted _ -> false
  | Pdg_artifact _, _ -> true
  | (Prof_artifact | Arch_artifact), Corrupt _ -> true
  | (Prof_artifact | Arch_artifact), (Stale _ | Unstamped) -> false

let verdict_to_string = function
  | Trusted s -> Printf.sprintf "trusted (tool=%s)" s.tool
  | Unstamped -> "unstamped"
  | Stale was -> Printf.sprintf "stale (stamped for %s)" was
  | Corrupt why -> Printf.sprintf "corrupt: %s" why

let event_to_string (e : event) =
  Printf.sprintf "%s %s: %s" (check_id e.averdict) (kind_to_string e.akind)
    (verdict_to_string e.averdict)
