(** The data-flow engine (DFE, §2.2).

    A generic engine that evaluates data-flow equations supplied by the
    user, with the conventional optimizations the paper lists: set-based
    transfer at basic-block granularity, a working-list algorithm, and
    loop-aware priority ordering (blocks are processed in reverse postorder
    for forward problems and postorder for backward problems, which gives
    inner loops priority).  Canned analyses (liveness, reaching
    definitions) are provided on top. *)

open Ir

module IntSet = Set.Make (Int)

type direction = Forward | Backward

(** A data-flow problem over sets of instruction ids (or any int-coded
    facts).  [gen]/[kill] are per-block; [meet] is union or intersection
    via [init_inner]/[combine]. *)
type problem = {
  direction : direction;
  gen : int -> IntSet.t;          (** block id -> generated facts *)
  kill : int -> IntSet.t;         (** block id -> killed facts *)
  boundary : IntSet.t;            (** IN of entry (forward) / OUT of exits *)
  init : IntSet.t;                (** initial interior value *)
  combine : IntSet.t -> IntSet.t -> IntSet.t;  (** the meet operator *)
}

type result = {
  in_ : (int, IntSet.t) Hashtbl.t;   (** block id -> IN set *)
  out : (int, IntSet.t) Hashtbl.t;   (** block id -> OUT set *)
  iterations : int;                  (** block transfer evaluations to fixpoint *)
}

(** Solve [p] over the CFG of [f] with a worklist seeded in loop-aware
    priority order. *)
let solve (f : Func.t) (p : problem) : result =
  let rpo = Cfg.reverse_postorder f in
  let order = match p.direction with Forward -> rpo | Backward -> List.rev rpo in
  let preds = Func.preds f in
  let in_ = Hashtbl.create 16 and out = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace in_ b p.init;
      Hashtbl.replace out b p.init)
    f.Func.blocks;
  let get tbl b = try Hashtbl.find tbl b with Not_found -> p.init in
  let work = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue b =
    if not (Hashtbl.mem queued b) then begin
      Hashtbl.replace queued b ();
      Queue.add b work
    end
  in
  List.iter enqueue order;
  let iterations = ref 0 in
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    Hashtbl.remove queued b;
    incr iterations;
    match p.direction with
    | Forward ->
      let ins =
        let ps = try Hashtbl.find preds b with Not_found -> [] in
        if ps = [] then p.boundary
        else
          List.fold_left
            (fun acc pb ->
              match acc with
              | None -> Some (get out pb)
              | Some a -> Some (p.combine a (get out pb)))
            None ps
          |> Option.value ~default:p.init
      in
      Hashtbl.replace in_ b ins;
      let o = IntSet.union (p.gen b) (IntSet.diff ins (p.kill b)) in
      if not (IntSet.equal o (get out b)) then begin
        Hashtbl.replace out b o;
        List.iter enqueue (Func.successors f b)
      end
    | Backward ->
      let outs =
        let ss = Func.successors f b in
        if ss = [] then p.boundary
        else
          List.fold_left
            (fun acc sb ->
              match acc with
              | None -> Some (get in_ sb)
              | Some a -> Some (p.combine a (get in_ sb)))
            None ss
          |> Option.value ~default:p.init
      in
      Hashtbl.replace out b outs;
      let i = IntSet.union (p.gen b) (IntSet.diff outs (p.kill b)) in
      if not (IntSet.equal i (get in_ b)) then begin
        Hashtbl.replace in_ b i;
        List.iter
          enqueue
          (try Hashtbl.find preds b with Not_found -> [])
      end
  done;
  (* solver-loop telemetry: total block transfers to fixpoint, plus the
     per-solve distribution (log-scale buckets) *)
  Trace.incr_m "dfe.solves";
  Trace.add "dfe.iterations" !iterations;
  Trace.observe "dfe.iterations.hist" (Int64.of_int !iterations);
  { in_; out; iterations = !iterations }

(* ------------------------------------------------------------------ *)
(* Canned analyses                                                     *)
(* ------------------------------------------------------------------ *)

(** Liveness of SSA registers: a register is live at a point if some path
    uses it later.  Facts are instruction ids.  Phi uses are attributed to
    the corresponding predecessor's OUT (standard SSA liveness). *)
let liveness (f : Func.t) : result =
  (* per-block: uses before def (upward-exposed), defs *)
  let gen b =
    let seen_defs = Hashtbl.create 8 in
    List.fold_left
      (fun acc (i : Instr.inst) ->
        let acc =
          match i.Instr.op with
          | Instr.Phi _ -> acc (* phi operands live in predecessors *)
          | op ->
            List.fold_left
              (fun acc v ->
                match v with
                | Instr.Reg r when not (Hashtbl.mem seen_defs r) -> IntSet.add r acc
                | _ -> acc)
              acc (Instr.operands op)
        in
        Hashtbl.replace seen_defs i.Instr.id ();
        acc)
      IntSet.empty
      (Func.insts_of_block f b)
    |> fun upward ->
    (* values used by phis of successors count as live-out of this block *)
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc (i : Instr.inst) ->
            match i.Instr.op with
            | Instr.Phi incs -> (
              match List.assoc_opt b incs with
              | Some (Instr.Reg r) -> IntSet.add r acc
              | _ -> acc)
            | _ -> acc)
          acc
          (Func.insts_of_block f s))
      IntSet.empty (Func.successors f b)
    |> fun phi_out -> IntSet.union upward phi_out
  in
  let kill b =
    List.fold_left
      (fun acc (i : Instr.inst) -> IntSet.add i.Instr.id acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  solve f
    {
      direction = Backward;
      gen;
      kill;
      boundary = IntSet.empty;
      init = IntSet.empty;
      combine = IntSet.union;
    }

(** Available expressions: which pure computations are available (computed
    on every path, operands unchanged) at the start of each block.  Facts
    are instruction ids; two instructions compute the same expression when
    their operations are structurally equal — the meet is intersection.
    This is the analysis a NOELLE-based CSE or the redundant-guard
    elimination of CARAT consults. *)
let available_expressions (f : Func.t) : result =
  let pure (i : Instr.inst) =
    match i.Instr.op with
    | Instr.Bin _ | Instr.Fbin _ | Instr.Icmp _ | Instr.Fcmp _ | Instr.Cast _
    | Instr.Gep _ | Instr.Select _ -> true
    | _ -> false
  in
  let universe =
    Func.fold_insts
      (fun acc i -> if pure i then IntSet.add i.Instr.id acc else acc)
      IntSet.empty f
  in
  let gen b =
    List.fold_left
      (fun acc (i : Instr.inst) -> if pure i then IntSet.add i.Instr.id acc else acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  (* SSA values never change, so nothing kills a pure expression *)
  solve f
    {
      direction = Forward;
      gen;
      kill = (fun _ -> IntSet.empty);
      boundary = IntSet.empty;
      init = universe;
      combine = IntSet.inter;
    }

(** Structural equality of two pure operations (same opcode and operands):
    the redundancy predicate used with {!available_expressions}. *)
let same_expression (a : Instr.inst) (b : Instr.inst) =
  match (a.Instr.op, b.Instr.op) with
  | Instr.Bin (o1, x1, y1), Instr.Bin (o2, x2, y2) ->
    o1 = o2 && Instr.value_equal x1 x2 && Instr.value_equal y1 y2
  | Instr.Fbin (o1, x1, y1), Instr.Fbin (o2, x2, y2) ->
    o1 = o2 && Instr.value_equal x1 x2 && Instr.value_equal y1 y2
  | Instr.Icmp (c1, x1, y1), Instr.Icmp (c2, x2, y2) ->
    c1 = c2 && Instr.value_equal x1 x2 && Instr.value_equal y1 y2
  | Instr.Gep (p1, i1), Instr.Gep (p2, i2) ->
    Instr.value_equal p1 p2 && Instr.value_equal i1 i2
  | Instr.Cast (k1, v1), Instr.Cast (k2, v2) -> k1 = k2 && Instr.value_equal v1 v2
  | _ -> false

(** Reaching definitions of memory stores: which store instructions may
    reach the start of each block. *)
let reaching_stores ?(stack = Andersen.baseline_stack) (m : Irmod.t) (f : Func.t) : result =
  let stores =
    Func.fold_insts
      (fun acc i ->
        match i.Instr.op with Instr.Store _ -> i :: acc | _ -> acc)
      [] f
  in
  let gen b =
    List.fold_left
      (fun acc (i : Instr.inst) ->
        match i.Instr.op with
        | Instr.Store _ -> IntSet.add i.Instr.id acc
        | _ -> acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  let kill b =
    (* a store kills stores to must-aliasing addresses *)
    List.fold_left
      (fun acc (i : Instr.inst) ->
        match i.Instr.op with
        | Instr.Store (_, p) ->
          List.fold_left
            (fun acc (j : Instr.inst) ->
              match j.Instr.op with
              | Instr.Store (_, q) when j.Instr.id <> i.Instr.id ->
                if Alias.alias stack m f p q = Alias.Must_alias then
                  IntSet.add j.Instr.id acc
                else acc
              | _ -> acc)
            acc stores
        | _ -> acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  solve f
    {
      direction = Forward;
      gen;
      kill;
      boundary = IntSet.empty;
      init = IntSet.empty;
      combine = IntSet.union;
    }

(** Live memory: which memory-reading instructions (loads and calls that
    may read program memory) may still execute after each program point,
    before the location they read is definitely overwritten.  Facts are
    the ids of the reading instructions; a block kills a read when it
    contains a store that must-alias the read's address (the value flowing
    backward past that store can no longer be the one observed).  This is
    the backward problem a dead-store eliminator — or the [san.dead-store]
    checker — consults: a store whose OUT set contains no may-aliasing
    read writes a value nobody can see. *)
let live_memory ?(stack = Andersen.baseline_stack) (m : Irmod.t) (f : Func.t) : result =
  let is_read (i : Instr.inst) =
    match i.Instr.op with
    | Instr.Load _ -> true
    | Instr.Call (callee, _) ->
      (* builtins that provably never read program memory are not reads *)
      not
        (Alias.is_pure_builtin callee || Alias.is_alloc_builtin callee
        || Alias.is_ordered_builtin callee)
    | _ -> false
  in
  let reads = Func.fold_insts (fun acc i -> if is_read i then i :: acc else acc) [] f in
  let gen b =
    List.fold_left
      (fun acc (i : Instr.inst) -> if is_read i then IntSet.add i.Instr.id acc else acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  let kill b =
    (* a store kills the loads whose address it must-overwrites, unless the
       load lives in this very block (then [gen] keeps it live anyway and
       intra-block ordering is the client's business) *)
    List.fold_left
      (fun acc (i : Instr.inst) ->
        match i.Instr.op with
        | Instr.Store (_, p) ->
          List.fold_left
            (fun acc (j : Instr.inst) ->
              match j.Instr.op with
              | Instr.Load q when j.Instr.parent <> b ->
                if Alias.alias stack m f p q = Alias.Must_alias then
                  IntSet.add j.Instr.id acc
                else acc
              | _ -> acc)
            acc reads
        | _ -> acc)
      IntSet.empty
      (Func.insts_of_block f b)
  in
  solve f
    {
      direction = Backward;
      gen;
      kill;
      boundary = IntSet.empty;
      init = IntSet.empty;
      combine = IntSet.union;
    }
