(** Crash-consistent on-disk artifact store for the serve loop.

    Layout (DESIGN.md §14):

    {v
    <root>/
      journal                    append-only intent/commit log
      quarantine/                corrupt artifacts, moved aside for forensics
      <module>/<shard>/<fn>.<kind>.art
    v}

    Each [.art] file is a {!Noelle.Trust} stamp line, an [afp] dependency
    line (the Andersen solution fingerprint the artifact was computed
    under, ["-"] when the artifact has no interprocedural inputs), then
    the payload:

    {v
    v=1 tool=noelle-serve fp=<func-fp> sum=<hex>
    afp <hex|->
    <payload ...>
    v}

    [sum] checksums the afp line and the payload together, so a torn
    write, a truncation or a flipped bit anywhere below the stamp is
    caught on read.  Writes are crash-consistent: an intent record is
    journaled, the content goes to a [.tmp] sibling, the sibling is
    atomically renamed over the target, and a commit record is journaled.
    Recovery replays the journal — every intent without a matching commit
    names a path whose state is unknown, so its temp file is discarded
    and the target re-verified — then sweeps all artifacts, quarantining
    anything whose checksum fails.  The result is byte-equivalent or
    recomputed, never stale.

    Faults from {!Ir.Faultgen.serve_kind} are armed with {!arm}; a kill
    raises {!Killed} at one of three sub-points inside {!write}
    (half-written temp / full temp before rename / after rename before
    the commit record), a stall makes reads of one shard raise
    {!Transient} until a deadline tick passes. *)

open Ir
module Trust = Noelle.Trust

(** Simulated process death mid-write ([Faultgen.Kill_mid_write]). *)
exception Killed of string

(** Transient shard fault ([Faultgen.Stall_shard]): retryable. *)
exception Transient of string

let tool = "noelle-serve"

type key = {
  kmod : string;  (** module (corpus member) name *)
  kshard : string;  (** call-graph SCC shard id *)
  kfn : string;  (** function name *)
  kkind : string;  (** ["pdg"] | ["bounds"] | ["loops"] *)
}

type verdict =
  | Hit of string  (** verified payload *)
  | Miss_absent
  | Miss_stale of string  (** stamped-for fingerprint *)
  | Miss_corrupt of string  (** reason; artifact already quarantined *)

type recovery = {
  r_pending : int;  (** journaled intents without a commit record *)
  r_quarantined : int;  (** artifacts failing verification at startup *)
  r_live : int;  (** artifacts that survived the sweep *)
}

type t = {
  root : string;
  mutable jout : out_channel option;
  mutable armed : Faultgen.serve_kind option;
  mutable kill_point : int;  (** 0 half-temp | 1 full-temp | 2 pre-commit *)
  mutable stalled : (string * int) option;  (** shard dir, expiry tick *)
  mutable last_recovery : recovery;
  mutable qcount : int;  (** artifacts quarantined over this handle's lifetime *)
}

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter
        (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_string oc s = output_string oc s

(** Every artifact file under [root], as paths relative to [root],
    sorted (deterministic iteration order for fault targeting). *)
let artifact_files (t : t) : string list =
  let out = ref [] in
  let rec walk rel =
    let abs = if rel = "" then t.root else Filename.concat t.root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun e ->
          let rel' = if rel = "" then e else Filename.concat rel e in
          if rel = "" && (e = "journal" || e = "quarantine") then ()
          else if Sys.is_directory (Filename.concat t.root rel') then walk rel'
          else if Filename.check_suffix e ".art" then out := rel' :: !out)
        (Sys.readdir abs)
  in
  walk "";
  List.sort String.compare !out

(* ------------------------------------------------------------------ *)
(* Artifact file format                                                *)
(* ------------------------------------------------------------------ *)

let shard_dir t (k : key) = Filename.concat (Filename.concat t.root k.kmod) k.kshard
let art_path t (k : key) =
  Filename.concat (shard_dir t k) (Printf.sprintf "%s.%s.art" k.kfn k.kkind)

let body_sum ~afp ~payload =
  Fingerprint.(to_hex (feed (feed seed afp) payload))

let render ~fp ~afp ~payload =
  let stamp =
    Trust.stamp_to_string
      { Trust.schema = Trust.schema_version; tool; fp; sum = body_sum ~afp ~payload }
  in
  Printf.sprintf "%s\nafp %s\n%s" stamp afp payload

(** Structural verification only (stamp well-formed, checksum matches);
    staleness against the live code is the caller's concern. *)
let parse (content : string) : (Trust.stamp * string * string, string) result =
  if String.length content = 0 then Error "zero-length artifact"
  else
    match String.index_opt content '\n' with
    | None -> Error "missing afp line"
    | Some i -> (
      let stamp_line = String.sub content 0 i in
      let rest = String.sub content (i + 1) (String.length content - i - 1) in
      match Trust.stamp_of_string stamp_line with
      | None -> Error "malformed stamp"
      | Some s ->
        if s.Trust.schema <> Trust.schema_version then
          Error (Printf.sprintf "schema v=%d" s.Trust.schema)
        else
          match String.index_opt rest '\n' with
          | None -> Error "truncated after afp line"
          | Some j ->
            let afp_line = String.sub rest 0 j in
            let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
            if String.length afp_line < 5 || String.sub afp_line 0 4 <> "afp "
            then Error "malformed afp line"
            else
              let afp = String.sub afp_line 4 (String.length afp_line - 4) in
              if s.Trust.sum <> body_sum ~afp ~payload then
                Error "payload checksum mismatch"
              else Ok (s, afp, payload))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let journal_path t = Filename.concat t.root "journal"

let journal t record rel =
  match t.jout with
  | None -> ()
  | Some oc ->
    output_string oc (Printf.sprintf "%s %s\n" record rel);
    flush oc

(** Intents without a matching commit.  The last line may be torn (the
    process died mid-append): anything that does not parse is ignored —
    a torn intent means the write never reached the rename, a torn
    commit means the target will be re-verified, both safe. *)
let journal_pending path : string list =
  if not (Sys.file_exists path) then []
  else begin
    let pending = Hashtbl.create 8 in
    String.split_on_char '\n' (read_all path)
    |> List.iter (fun line ->
           match String.index_opt line ' ' with
           | Some 1 when String.length line > 2 -> (
             let rel = String.sub line 2 (String.length line - 2) in
             match line.[0] with
             | 'W' -> Hashtbl.replace pending rel ()
             | 'C' -> Hashtbl.remove pending rel
             | _ -> ())
           | _ -> ());
    Hashtbl.fold (fun rel () acc -> rel :: acc) pending []
    |> List.sort String.compare
  end

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

let quarantine_file t rel =
  let qdir = Filename.concat t.root "quarantine" in
  mkdir_p qdir;
  let flat = String.map (fun c -> if c = '/' then '.' else c) rel in
  let rec fresh n =
    let cand =
      Filename.concat qdir (if n = 0 then flat else Printf.sprintf "%s.%d" flat n)
    in
    if Sys.file_exists cand then fresh (n + 1) else cand
  in
  let src = Filename.concat t.root rel in
  if Sys.file_exists src then begin
    Sys.rename src (fresh 0);
    t.qcount <- t.qcount + 1;
    Trace.incr_m "serve.quarantined"
  end

(* ------------------------------------------------------------------ *)
(* Open / recovery                                                     *)
(* ------------------------------------------------------------------ *)

let register_counters () =
  List.iter Trace.touch
    [
      "serve.store.hits"; "serve.store.misses"; "serve.store.stale";
      "serve.store.corrupt"; "serve.store.writes"; "serve.quarantined";
      "serve.recovery.pending"; "serve.recovery.tmp_discarded";
    ]

(** Open the store at [root], running crash recovery: replay the journal
    (discard temp files of uncommitted writes, re-verify their targets),
    sweep every artifact and quarantine corrupt ones, truncate the
    journal.  Idempotent on a clean store. *)
let open_store (root : string) : t =
  register_counters ();
  mkdir_p root;
  let t =
    {
      root;
      jout = None;
      armed = None;
      kill_point = 0;
      stalled = None;
      last_recovery = { r_pending = 0; r_quarantined = 0; r_live = 0 };
      qcount = 0;
    }
  in
  (* 1. journal replay: uncommitted intents have unknown on-disk state *)
  let pending = journal_pending (journal_path t) in
  List.iter
    (fun rel ->
      let tmp = Filename.concat t.root (rel ^ ".tmp") in
      if Sys.file_exists tmp then begin
        Sys.remove tmp;
        Trace.incr_m "serve.recovery.tmp_discarded"
      end)
    pending;
  Trace.add "serve.recovery.pending" (List.length pending);
  (* 2. stray temp files from crashes that never reached the journal
        commit: discard (the rename never happened, or happened and the
        temp is a later half-write) *)
  let rec sweep_tmp dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter
        (fun e ->
          let p = Filename.concat dir e in
          if Sys.is_directory p then
            (if e <> "quarantine" || dir <> t.root then sweep_tmp p)
          else if Filename.check_suffix e ".tmp" then Sys.remove p)
        (Sys.readdir dir)
  in
  sweep_tmp t.root;
  (* 3. full verification sweep: quarantine anything structurally bad *)
  let quarantined = ref 0 and live = ref 0 in
  List.iter
    (fun rel ->
      match parse (read_all (Filename.concat t.root rel)) with
      | Ok _ -> incr live
      | Error _ ->
        quarantine_file t rel;
        incr quarantined)
    (artifact_files t);
  (* 4. the journal's work is done: truncate and reopen for appending *)
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 (journal_path t) in
  t.jout <- Some oc;
  t.last_recovery <-
    { r_pending = List.length pending; r_quarantined = !quarantined; r_live = !live };
  t

let close t =
  (match t.jout with Some oc -> close_out oc | None -> ());
  t.jout <- None

(* ------------------------------------------------------------------ *)
(* Fault arming                                                        *)
(* ------------------------------------------------------------------ *)

(** Arm one serve fault.  Kills trigger at the next {!write}; truncation
    and bit-flips are applied immediately to a deterministically chosen
    existing artifact; a stall marks one shard directory transient until
    tick [now + stall_ticks]. *)
let arm (t : t) (k : Faultgen.serve_kind) ~(seed : int) ~(now : int)
    ~(stall_ticks : int) : unit =
  match k with
  | Faultgen.Kill_mid_write ->
    t.armed <- Some k;
    t.kill_point <- seed mod 3
  | Faultgen.Truncate_artifact | Faultgen.Bitflip_artifact -> (
    match artifact_files t with
    | [] -> ()
    | files ->
      let rel = List.nth files (abs seed mod List.length files) in
      let path = Filename.concat t.root rel in
      let content = read_all path in
      let n = String.length content in
      let oc = open_out_bin path in
      (match k with
      | Faultgen.Truncate_artifact ->
        (* cut to a prefix; seed mod 4 = 0 gives the zero-length shape *)
        write_string oc (String.sub content 0 (n * (abs seed mod 4) / 4))
      | _ ->
        let b = Bytes.of_string content in
        let pos = abs seed mod n in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
        write_string oc (Bytes.to_string b));
      close_out oc)
  | Faultgen.Stall_shard -> (
    (* pick an existing shard dir (module/shard) to stall *)
    match artifact_files t with
    | [] -> ()
    | files ->
      let rel = List.nth files (abs seed mod List.length files) in
      t.stalled <- Some (Filename.dirname rel, now + stall_ticks))

(* ------------------------------------------------------------------ *)
(* Lookup / write                                                      *)
(* ------------------------------------------------------------------ *)

let check_stall t (k : key) ~now =
  match t.stalled with
  | Some (dir, until) when now < until ->
    let this = Filename.concat k.kmod k.kshard in
    if this = dir then raise (Transient (Printf.sprintf "shard %s stalled" dir))
  | Some (_, until) when now >= until -> t.stalled <- None
  | _ -> ()

(** Verified lookup: structural checks (stamp, schema, checksum) then
    the same keep/quarantine decision the in-memory caches use
    ({!Noelle.reconcile_artifact}) against the live code fingerprint,
    plus the [afp] dependency against the live Andersen solution. *)
let lookup (t : t) (k : key) ~(fp : string) ~(afp : string) ~(now : int) :
    verdict =
  check_stall t k ~now;
  let path = art_path t k in
  if not (Sys.file_exists path) then begin
    Trace.incr_m "serve.store.misses";
    Miss_absent
  end
  else
    match parse (read_all path) with
    | Error why ->
      let rel =
        Filename.concat (Filename.concat k.kmod k.kshard)
          (Filename.basename path)
      in
      quarantine_file t rel;
      Trace.incr_m "serve.store.corrupt";
      Miss_corrupt why
    | Ok (s, stored_afp, payload) -> (
      match Noelle.reconcile_artifact ~current:(Some fp) ~stamped:s.Trust.fp with
      | `Drop ->
        Trace.incr_m "serve.store.stale";
        Miss_stale s.Trust.fp
      | `Keep ->
        if stored_afp <> afp then begin
          Trace.incr_m "serve.store.stale";
          Miss_stale s.Trust.fp
        end
        else begin
          Trace.incr_m "serve.store.hits";
          Hit payload
        end)

(** Crash-consistent write: journal intent → temp file → atomic rename →
    journal commit.  An armed kill fires at sub-point [kill_point]. *)
let write (t : t) (k : key) ~(fp : string) ~(afp : string)
    ~(payload : string) : unit =
  mkdir_p (shard_dir t k);
  let path = art_path t k in
  let rel =
    Filename.concat (Filename.concat k.kmod k.kshard) (Filename.basename path)
  in
  journal t "W" rel;
  let content = render ~fp ~afp ~payload in
  let tmp = path ^ ".tmp" in
  let kill = t.armed = Some Faultgen.Kill_mid_write in
  if kill then begin
    t.armed <- None;
    let die point =
      (* waypoint for the flight recorder: the post-mortem dump must name
         the exact kill sub-point (and, via the ambient rid, the request)
         that was in flight when the process died *)
      Trace.flight "store.kill"
        ~args:[ ("point", string_of_int point); ("rel", rel) ];
      close t;
      raise (Killed (Printf.sprintf "kill-mid-write@%d %s" point rel))
    in
    match t.kill_point with
    | 0 ->
      (* torn temp: half the content, no rename *)
      let oc = open_out_bin tmp in
      write_string oc (String.sub content 0 (String.length content / 2));
      close_out oc;
      die 0
    | 1 ->
      (* complete temp, crash before rename *)
      let oc = open_out_bin tmp in
      write_string oc content;
      close_out oc;
      die 1
    | _ ->
      (* renamed but crash before the commit record: recovery must
         re-verify the (valid) target *)
      let oc = open_out_bin tmp in
      write_string oc content;
      close_out oc;
      Sys.rename tmp path;
      die 2
  end
  else begin
    let oc = open_out_bin tmp in
    write_string oc content;
    close_out oc;
    Sys.rename tmp path;
    journal t "C" rel;
    Trace.incr_m "serve.store.writes"
  end

let artifact_count t = List.length (artifact_files t)
