(** Noelle.Serve — analysis-as-a-service over a multi-module corpus.

    The serve loop consumes a stream of module-edit / analysis-query
    requests ({!Workload}), answering queries from per-module {!Noelle}
    managers backed by the crash-consistent on-disk artifact {!Store}
    (sharded by call-graph SCC, keyed by {!Ir.Fingerprint}).  Robustness
    properties (DESIGN.md §14):

    - every store write is journaled + atomically renamed, so a kill at
      any point recovers to byte-equivalent-or-recomputed, never stale;
    - store reads hitting a stalled shard are retried with exponential
      backoff under a per-request deadline, then the store is bypassed
      (fresh compute) — a sick shard degrades throughput, not answers;
    - a circuit breaker watches the arrival backlog: past the high-water
      mark, dependence queries are shed to a budget-0 baseline-stack PDG
      (conservative superset — never wrong, only coarser) that is NEVER
      persisted, so overload cannot poison the store;
    - corrupt/torn artifacts are quarantined-and-recomputed, both at
      startup recovery and on lookup. *)

open Ir
module Pdg = Noelle.Pdg
module Callgraph = Noelle.Callgraph
module Trust = Noelle.Trust
module Store = Store
module Workload = Workload

(* ------------------------------------------------------------------ *)
(* Answers                                                             *)
(* ------------------------------------------------------------------ *)

type answer = {
  aidx : int;  (** request index in the workload *)
  areq : string;  (** rendered request *)
  atext : string;  (** canonical digest compared across runs *)
  apayload : string;  (** full payload (conservativeness checks) *)
  asource : string;  (** ["hit"] | ["computed"] | ["degraded"] | ["edit"] *)
  adegraded : bool;
}

type config = {
  deadline : int;  (** lookup attempts budget before bypassing the store *)
  retries : int;  (** max retry count for a transient shard fault *)
  high_water : int;  (** backlog opening the breaker *)
  low_water : int;  (** backlog closing it again *)
  shed_check : int;  (** sheds to cross-check against exact (gate mode) *)
}

let default_config =
  { deadline = 4; retries = 3; high_water = 64; low_water = 8; shed_check = 0 }

(** What a replayed flight dump said was in flight when the previous
    process died: the last request started and the last store kill-point
    reached, each with its correlation id. *)
type flight_info = {
  fi_req : (int * string) option;  (** request index, rid *)
  fi_kill : (int * string) option;  (** kill sub-point, rid *)
  fi_events : int;  (** events retained in the dump *)
}

type server = {
  store : Store.t;
  corpus : (string * Irmod.t) list;
  mgrs : (string, Noelle.t) Hashtbl.t;
  shards : (string, string * (string, string) Hashtbl.t) Hashtbl.t;
      (** module → (module fp it was computed at, fn → shard id) *)
  cfg : config;
  mutable now : int;  (** simulated tick clock *)
  mutable breaker_open : bool;
  mutable sheds_checked : int;
  mutable shed_violations : string list;
  mutable recoveries : int;
  mutable recovery_ms : float;  (** cumulative store-recovery wall time *)
  sink_wrote : bool ref;  (** did the manager's sink persist this query? *)
  flight_replay : flight_info option;
      (** parsed [<root>/flight.json] found at startup — crash forensics
          from the previous incarnation *)
}

(* ------------------------------------------------------------------ *)
(* Shard map: call-graph SCCs (Tarjan), stable shard ids               *)
(* ------------------------------------------------------------------ *)

(** Strongly connected components of the defined-function call graph.
    A shard id is a fingerprint of the SCC's sorted member names — stable
    under edits that do not rewire calls, so artifacts stay findable. *)
let scc_shards (mgr : Noelle.t) (m : Irmod.t) : (string, string) Hashtbl.t =
  let cg = Noelle.callgraph mgr in
  let defined = Irmod.defined_functions m in
  let names = List.map (fun f -> f.Func.fname) defined in
  let is_def = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace is_def n ()) names;
  let succ = Hashtbl.create 16 in
  List.iter
    (fun (e : Callgraph.edge) ->
      if Hashtbl.mem is_def e.Callgraph.caller && Hashtbl.mem is_def e.Callgraph.callee
      then
        Hashtbl.replace succ e.Callgraph.caller
          (e.Callgraph.callee
          :: (Option.value ~default:[] (Hashtbl.find_opt succ e.Callgraph.caller))))
    cg.Callgraph.edges;
  let index = Hashtbl.create 16
  and low = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (Option.value ~default:[] (Hashtbl.find_opt succ v));
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) names;
  let out = Hashtbl.create 16 in
  List.iter
    (fun members ->
      let sorted = List.sort String.compare members in
      let fp = List.fold_left Fingerprint.feed Fingerprint.seed sorted in
      let hex = Fingerprint.to_hex fp in
      let id = String.sub hex 0 (min 12 (String.length hex)) in
      List.iter (fun fn -> Hashtbl.replace out fn id) sorted)
    !sccs;
  out

(** Shard id for [fn], recomputing the module's shard map when its
    fingerprint moved (an edit may rewire calls). *)
let shard_of (sv : server) (mname : string) (m : Irmod.t) (fn : string) : string =
  let mfp = Fingerprint.module_fp m in
  let map =
    match Hashtbl.find_opt sv.shards mname with
    | Some (fp, map) when fp = mfp -> map
    | _ ->
      let mgr = Hashtbl.find sv.mgrs mname in
      let map = scc_shards mgr m in
      Hashtbl.replace sv.shards mname (mfp, map);
      map
  in
  match Hashtbl.find_opt map fn with Some s -> s | None -> "solo"

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let register_counters () =
  List.iter Trace.touch
    [
      "serve.requests"; "serve.queries"; "serve.edits"; "serve.computed";
      "serve.shed"; "serve.retries"; "serve.deadline_misses";
      "serve.breaker.opens"; "serve.recoveries"; "serve.killed";
      "serve.flight.replayed";
    ]

(* ------------------------------------------------------------------ *)
(* Flight recorder dump / replay                                       *)
(* ------------------------------------------------------------------ *)

let flight_path root = Filename.concat root "flight.json"

(** Dump the always-on flight ring to [<root>/flight.json] — called on a
    trap (simulated kill) so the post-mortem names what was in flight. *)
let dump_flight (root : string) : string =
  Store.mkdir_p root;
  let path = flight_path root in
  let oc = open_out path in
  output_string oc (Trace.flight_to_json ());
  close_out oc;
  path

(** Parse a flight dump left by a previous incarnation: the last
    [serve.request] and [store.kill] waypoints identify the in-flight
    request and kill sub-point.  Returns [None] when there is no dump or
    it is unreadable (forensics must never block recovery). *)
let replay_flight (root : string) : flight_info option =
  let path = flight_path root in
  if not (Sys.file_exists path) then None
  else
    try
      let module J = Trace.Json in
      let doc = J.parse (Store.read_all path) in
      let evs =
        Option.bind (J.member "flightEvents" doc) J.to_list
        |> Option.value ~default:[]
      in
      let req = ref None and kill = ref None in
      List.iter
        (fun e ->
          let str f = Option.bind (J.member f e) J.to_string in
          let arg f =
            Option.bind (J.member "args" e) (fun a ->
                Option.bind (J.member f a) J.to_string)
          in
          match (str "name", str "rid") with
          | Some "serve.request", Some rid -> (
            match Option.bind (arg "idx") int_of_string_opt with
            | Some i -> req := Some (i, rid)
            | None -> ())
          | Some "store.kill", Some rid -> (
            match Option.bind (arg "point") int_of_string_opt with
            | Some p -> kill := Some (p, rid)
            | None -> ())
          | _ -> ())
        evs;
      Some { fi_req = !req; fi_kill = !kill; fi_events = List.length evs }
    with _ -> None

(** Wire a manager's artifact sink to the store: exact results flow to
    disk as they are computed.  The sink raises {!Store.Killed} when a
    kill fault is armed — the manager's caches die with the "process". *)
let install_sink (sv : server) (mname : string) (m : Irmod.t) (mgr : Noelle.t) =
  Noelle.set_artifact_sink mgr
    (Some
       (fun ~kind ~fn ~fp ~payload ->
         let afp = if kind = "pdg" then Noelle.andersen_fp mgr else "-" in
         let key =
           { Store.kmod = mname; kshard = shard_of sv mname m fn; kfn = fn;
             kkind = kind }
         in
         sv.sink_wrote := true;
         Store.write sv.store key ~fp ~afp ~payload))

let create ?(cfg = default_config) ~(root : string)
    (corpus : (string * Irmod.t) list) : server =
  register_counters ();
  let t0 = Unix.gettimeofday () in
  (* crash forensics first: a flight dump left by a killed predecessor is
     replayed before the store's own recovery touches the root *)
  let flight_replay = replay_flight root in
  if flight_replay <> None then Trace.incr_m "serve.flight.replayed";
  let store = Store.open_store root in
  let sv =
    {
      store;
      corpus;
      mgrs = Hashtbl.create 8;
      shards = Hashtbl.create 8;
      cfg;
      now = 0;
      breaker_open = false;
      sheds_checked = 0;
      shed_violations = [];
      recoveries = 0;
      recovery_ms = (Unix.gettimeofday () -. t0) *. 1000.;
      sink_wrote = ref false;
      flight_replay;
    }
  in
  List.iter
    (fun (mname, m) ->
      let mgr = Noelle.create m in
      install_sink sv mname m mgr;
      Hashtbl.replace sv.mgrs mname mgr)
    corpus;
  sv

(** Crash recovery: reopen the store (journal replay + verification
    sweep) and rebuild fresh managers.  The corpus itself is client
    state — module edits survive, analysis caches do not. *)
let restart (sv : server) ~(root : string) : server =
  Store.close sv.store;
  let sv' = create ~cfg:sv.cfg ~root sv.corpus in
  sv'.recoveries <- sv.recoveries + 1;
  sv'.recovery_ms <- sv.recovery_ms +. sv'.recovery_ms;
  sv'.store.Store.qcount <- sv.store.Store.qcount + sv'.store.Store.qcount;
  Trace.incr_m "serve.recoveries";
  sv'

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let nth_fn (m : Irmod.t) (i : int) : Func.t =
  let fns = Irmod.defined_functions m in
  List.nth fns (i mod List.length fns)

(** Benign edit: a dead [add seed, 0] planted at the function entry —
    changes the fingerprint (forcing invalidation) without changing
    behaviour, calls, or loop structure. *)
let apply_edit (m : Irmod.t) ~(efn : int) ~(eseed : int) : Func.t =
  let f = nth_fn m efn in
  let b = Func.block f (Func.entry f) in
  let before = List.hd b.Func.insts in
  ignore
    (Builder.insert_before f ~before
       (Instr.Bin (Instr.Add, Instr.Cint (Int64.of_int (eseed land 0xffff)),
          Instr.Cint 0L))
       Ty.I64);
  f

let loops_payload (f : Func.t) (n : Loopnest.t) : string =
  List.map
    (fun (l : Loopnest.loop) ->
      Printf.sprintf "loop %s depth=%d latches=%d" (Ids.loop_key f l)
        l.Loopnest.depth
        (List.length l.Loopnest.latches))
    n.Loopnest.loops
  |> List.sort String.compare |> String.concat "\n"

let count_lines s =
  if s = "" then 0
  else List.length (String.split_on_char '\n' s)

let digest ~kind ~mname ~fn ~fp ~payload ~degraded =
  Printf.sprintf "%s %s/%s fp=%s n=%d sum=%s%s" kind mname fn fp
    (count_lines payload)
    Fingerprint.(to_hex (feed seed payload))
    (if degraded then " degraded" else "")

(** Store lookup under the per-request deadline: transient shard faults
    are retried with exponential backoff (advancing the tick clock);
    past the retry budget the store is bypassed for this request. *)
let lookup_with_deadline (sv : server) key ~fp ~afp : Store.verdict option =
  let rec go attempt backoff =
    match Store.lookup sv.store key ~fp ~afp ~now:sv.now with
    | v -> Some v
    | exception Store.Transient _ ->
      Trace.incr_m "serve.retries";
      if attempt >= sv.cfg.retries then begin
        Trace.incr_m "serve.deadline_misses";
        None
      end
      else begin
        sv.now <- sv.now + backoff;
        go (attempt + 1) (backoff * 2)
      end
  in
  go 0 1

(** Shed path: budget-0 PDG over the baseline stack only — a
    conservative superset of the exact dependences at near-zero cost.
    Never persisted (a degraded graph would poison the store). *)
let shed_deps (sv : server) (mname : string) (m : Irmod.t) (f : Func.t) : answer
    =
  Trace.incr_m "serve.shed";
  let dp = Pdg.build ~budget:0 ~stack:[ Alias.baseline ] m f in
  let payload = Pdg.payload dp in
  let fp = Fingerprint.func_fp f in
  (if sv.sheds_checked < sv.cfg.shed_check then begin
     sv.sheds_checked <- sv.sheds_checked + 1;
     let mgr = Hashtbl.find sv.mgrs mname in
     let exact = Pdg.payload (Noelle.pdg mgr f) in
     let sub = Pdg.payload_deps exact
     and sup = Pdg.payload_deps payload in
     List.iter
       (fun d ->
         if not (List.mem d sup) then
           let s, t, k = d in
           sv.shed_violations <-
             Printf.sprintf "%s/%s: exact dep %d->%d %s missing from degraded"
               mname f.Func.fname s t k
             :: sv.shed_violations)
       sub
   end);
  sv.now <- sv.now + 2;
  {
    aidx = 0;
    areq = "";
    atext = digest ~kind:"deps" ~mname ~fn:f.Func.fname ~fp ~payload ~degraded:true;
    apayload = payload;
    asource = "degraded";
    adegraded = true;
  }

(** Request kind label — the latency-histogram / SLO bucket. *)
let kind_label = function
  | Workload.Edit _ -> "edit"
  | Workload.Query { qkind; _ } -> Workload.qkind_to_string qkind

(* the uninstrumented core; {!handle_request} wraps it in the request
   context (correlation id), the flight waypoint, and the per-kind
   latency histogram *)
let serve_request (sv : server) (idx : int) (req : Workload.req) : answer =
  Trace.incr_m "serve.requests";
  let finish a = { a with aidx = idx; areq = Workload.req_to_string req } in
  match req with
  | Workload.Edit { emod; efn; eseed } ->
    Trace.incr_m "serve.edits";
    let m = List.assoc emod sv.corpus in
    let f = apply_edit m ~efn ~eseed in
    Noelle.invalidate (Hashtbl.find sv.mgrs emod);
    sv.now <- sv.now + 1;
    finish
      {
        aidx = 0;
        areq = "";
        atext =
          Printf.sprintf "edit %s/%s fp=%s" emod f.Func.fname
            (Fingerprint.func_fp f);
        apayload = "";
        asource = "edit";
        adegraded = false;
      }
  | Workload.Query { qmod; qfn; qkind } ->
    Trace.incr_m "serve.queries";
    let m = List.assoc qmod sv.corpus in
    let mgr = Hashtbl.find sv.mgrs qmod in
    let f = nth_fn m qfn in
    let fn = f.Func.fname in
    let fp = Fingerprint.func_fp f in
    let kind = Workload.qkind_to_string qkind in
    (* the manager sink persists dependence artifacts under "pdg" (the
       manager-side kind); deps queries must look up the same key *)
    let store_kind =
      match qkind with Workload.Qdeps -> "pdg" | _ -> kind
    in
    let afp =
      match qkind with
      | Workload.Qdeps -> Noelle.andersen_fp mgr
      | _ -> "-"
    in
    let key =
      { Store.kmod = qmod; kshard = shard_of sv qmod m fn; kfn = fn;
        kkind = store_kind }
    in
    let verdict =
      Trace.span ~cat:"serve" "serve.phase.store_lookup" (fun () ->
          lookup_with_deadline sv key ~fp ~afp)
    in
    let store_avail = verdict <> None in
    (match verdict with
    | Some (Store.Hit payload) ->
      sv.now <- sv.now + 1;
      finish
        {
          aidx = 0;
          areq = "";
          atext = digest ~kind ~mname:qmod ~fn ~fp ~payload ~degraded:false;
          apayload = payload;
          asource = "hit";
          adegraded = false;
        }
    | Some Store.Miss_absent | Some (Store.Miss_stale _)
    | Some (Store.Miss_corrupt _) | None ->
      if sv.breaker_open && qkind = Workload.Qdeps then
        finish
          (Trace.span ~cat:"serve" "serve.phase.shed" (fun () ->
               shed_deps sv qmod m f))
      else begin
        Trace.incr_m "serve.computed";
        sv.sink_wrote := false;
        let payload =
          Trace.span ~cat:"serve" "serve.phase.recompute" (fun () ->
              match qkind with
              | Workload.Qdeps -> Pdg.payload (Noelle.pdg mgr f)
              | Workload.Qbounds -> Bounds.summary_payload (Noelle.bounds mgr f)
              | Workload.Qloops -> loops_payload f (Noelle.loopnest mgr f))
        in
        (* manager cache hit (sink silent) or kind without a sink: persist
           explicitly so the next process finds it *)
        if store_avail && not !(sv.sink_wrote) then
          Trace.span ~cat:"serve" "serve.phase.persist" (fun () ->
              Store.write sv.store key ~fp ~afp ~payload);
        sv.now <- sv.now + 4;
        finish
          {
            aidx = 0;
            areq = "";
            atext = digest ~kind ~mname:qmod ~fn ~fp ~payload ~degraded:false;
            apayload = payload;
            asource = "computed";
            adegraded = false;
          }
      end)

(** Serve one request.  May raise {!Store.Killed} (armed kill fault
    firing inside a store write): the caller recovers via {!restart}.

    Pushes the request's correlation id ([req-<idx>]) as the ambient
    request context — every span/event emitted underneath (store phases,
    manager demand entry points, Andersen/PDG/Bounds spans) is stamped
    with it — drops a [serve.request] waypoint on the always-on flight
    ring, and records the request's wall time into the per-kind
    [serve.latency_us.*] histogram. *)
let handle_request (sv : server) (idx : int) (req : Workload.req) : answer =
  let kind = kind_label req in
  Trace.with_request (Printf.sprintf "req-%d" idx) (fun () ->
      Trace.flight "serve.request"
        ~args:
          [
            ("idx", string_of_int idx); ("kind", kind);
            ("req", Workload.req_to_string req);
          ];
      let t_req = Trace.now_us () in
      let a = serve_request sv idx req in
      Trace.observe
        ("serve.latency_us." ^ kind)
        (Int64.of_float (Trace.now_us () -. t_req));
      a)

let handle = handle_request

(* ------------------------------------------------------------------ *)
(* Rate-driven run loop: backlog, circuit breaker                      *)
(* ------------------------------------------------------------------ *)

type report = {
  rserved : int;
  rqueries : int;
  redits : int;
  rhits : int;
  rcomputed : int;
  rshed : int;
  rmax_backlog : int;
  rbreaker_opens : int;
  rrecoveries : int;
  rquarantined : int;
  rwall_ms : float;
  rrecovery_ms : float;
  ranswers : answer list;
  rviolations : string list;
}

let summarize (sv : server) (answers : answer list) ~wall_ms ~max_backlog
    ~breaker_opens : report =
  let count p = List.length (List.filter p answers) in
  {
    rserved = List.length answers;
    rqueries = count (fun a -> a.asource <> "edit");
    redits = count (fun a -> a.asource = "edit");
    rhits = count (fun a -> a.asource = "hit");
    rcomputed = count (fun a -> a.asource = "computed");
    rshed = count (fun a -> a.adegraded);
    rmax_backlog = max_backlog;
    rbreaker_opens = breaker_opens;
    rrecoveries = sv.recoveries;
    rquarantined = sv.store.Store.qcount;
    rwall_ms = wall_ms;
    rrecovery_ms = sv.recovery_ms;
    ranswers = answers;
    rviolations = sv.shed_violations;
  }

(** Run a whole workload at [rate] arrivals per tick (0. = closed-loop:
    no queueing pressure).  The breaker opens when the arrival backlog
    crosses [high_water] and closes at [low_water]; while open,
    dependence queries on store miss are shed to degraded answers.
    No faults: {!Store.Killed} does not fire without {!Store.arm}. *)
let run (sv : server) (w : Workload.t) ?(rate = 0.) () : report =
  let t0 = Unix.gettimeofday () in
  let reqs = Array.of_list w.Workload.reqs in
  let n = Array.length reqs in
  let arrival i = if rate <= 0. then 0 else int_of_float (float_of_int i /. rate) in
  let answers = ref [] in
  let arrived = ref 0 and max_backlog = ref 0 and breaker_opens = ref 0 in
  for i = 0 to n - 1 do
    if sv.now < arrival i then sv.now <- arrival i;
    while !arrived < n && arrival !arrived <= sv.now do incr arrived done;
    (* closed-loop (rate 0): each request arrives as the previous one
       finishes — no backlog, no breaker pressure *)
    let backlog = if rate <= 0. then 0 else !arrived - i in
    if backlog > !max_backlog then max_backlog := backlog;
    if (not sv.breaker_open) && backlog >= sv.cfg.high_water then begin
      sv.breaker_open <- true;
      incr breaker_opens;
      Trace.incr_m "serve.breaker.opens"
    end
    else if sv.breaker_open && backlog <= sv.cfg.low_water then
      sv.breaker_open <- false;
    answers := handle sv i reqs.(i) :: !answers
  done;
  summarize sv (List.rev !answers)
    ~wall_ms:((Unix.gettimeofday () -. t0) *. 1000.)
    ~max_backlog:!max_backlog ~breaker_opens:!breaker_opens

(* ------------------------------------------------------------------ *)
(* Kill-and-recover soak gate                                          *)
(* ------------------------------------------------------------------ *)

type soak_seed = {
  sseed : int;
  sok : bool;
  skills : int;
  squarantined : int;
  srecoveries : int;
  smismatch : string option;
}

type soak_stats = {
  t_seeds : int;
  t_ok : int;
  t_kills : int;
  t_quarantined : int;
  t_recoveries : int;
  t_recovery_ms : float;
}

let compare_answers (live : answer list) (cold : answer list) : string option =
  let rec go = function
    | [], [] -> None
    | a :: la, b :: lb ->
      if a.atext <> b.atext then
        Some
          (Printf.sprintf "request %d (%s): recovered=%s cold=%s" a.aidx a.areq
             a.atext b.atext)
      else go (la, lb)
    | _ ->
      Some
        (Printf.sprintf "answer count: recovered=%d cold=%d" (List.length live)
           (List.length cold))
  in
  go (live, cold)

(** One soak seed: run the workload with the seed's fault plan armed,
    recovering from every kill; then replay the identical workload
    against a pristine corpus and a cold store; demand identical
    answers.  Raised [Trust.Tainted] fails the seed. *)
let soak_one ~(corpus_of : unit -> (string * Irmod.t) list) ~(root : string)
    ~(seed : int) ~(modules : int) ~(requests : int) : soak_seed * server =
  let names = List.map fst (corpus_of ()) in
  let mods = Workload.pick ~seed ~count:modules names in
  let select corpus = List.filter (fun (n, _) -> List.mem n mods) corpus in
  let w = Workload.generate ~seed ~mods ~requests in
  let reqs = Array.of_list w.Workload.reqs in
  let plan = Faultgen.serve_plan ~seed ~requests in
  let live_root = Filename.concat root (Printf.sprintf "seed%d" seed) in
  Store.remove_tree live_root;
  Trace.flight_reset ();
  let sv = ref (create ~root:live_root (select (corpus_of ()))) in
  let answers = ref [] and kills = ref 0 in
  let flight_errs = ref [] in
  let applied = Hashtbl.create 8 in
  let i = ref 0 in
  (try
     while !i < Array.length reqs do
       (match List.assoc_opt !i plan with
       | Some k when not (Hashtbl.mem applied !i) ->
         Hashtbl.replace applied !i ();
         Store.arm (!sv).store k ~seed:((seed * 131) + !i) ~now:(!sv).now
           ~stall_ticks:8
       | _ -> ());
       match handle !sv !i reqs.(!i) with
       | a ->
         answers := a :: !answers;
         incr i
       | exception Store.Killed msg ->
         incr kills;
         Trace.incr_m "serve.killed";
         (* the "process" died mid-write: dump the flight ring (what a
            trap handler would do), recover, and demand the replayed
            dump names exactly this request and kill sub-point *)
         ignore (dump_flight live_root);
         sv := restart !sv ~root:live_root;
         let rid = Printf.sprintf "req-%d" !i in
         let point =
           try Scanf.sscanf msg "kill-mid-write@%d" (fun p -> Some p)
           with _ -> None
         in
         let err fmt = Printf.ksprintf (fun s -> flight_errs := s :: !flight_errs) fmt in
         (match ((!sv).flight_replay, point) with
         | Some fi, Some p ->
           (match fi.fi_req with
           | Some (ri, rr) when ri = !i && rr = rid -> ()
           | Some (ri, rr) ->
             err "kill@req %d: flight names request %d rid=%s" !i ri rr
           | None -> err "kill@req %d: flight has no serve.request" !i);
           (match fi.fi_kill with
           | Some (kp, kr) when kp = p && kr = rid -> ()
           | Some (kp, kr) ->
             err "kill@req %d point %d: flight names point %d rid=%s" !i p kp kr
           | None -> err "kill@req %d: flight has no store.kill" !i)
         | None, _ -> err "kill@req %d: no flight dump replayed" !i
         | _, None -> err "kill@req %d: unparseable kill message %s" !i msg)
     done
   with Trust.Tainted why ->
     answers :=
       {
         aidx = !i;
         areq = "tainted";
         atext = "TAINTED " ^ why;
         apayload = "";
         asource = "tainted";
         adegraded = false;
       }
       :: !answers);
  let live = List.rev !answers in
  (* cold run: pristine corpus, empty store, no faults *)
  let cold_root = live_root ^ "-cold" in
  Store.remove_tree cold_root;
  let cv = create ~root:cold_root (select (corpus_of ())) in
  let cold = ref [] in
  Array.iteri (fun i r -> cold := handle cv i r :: !cold) reqs;
  let cold = List.rev !cold in
  Store.close cv.store;
  let mismatch = compare_answers live cold in
  let degraded =
    List.exists (fun a -> a.adegraded) live
    || List.exists (fun a -> a.adegraded) cold
  in
  let mismatch =
    match mismatch with
    | Some _ as m -> m
    | None -> if degraded then Some "degraded answer in fault-free run" else None
  in
  let mismatch =
    match (mismatch, List.rev !flight_errs) with
    | (Some _ as m), _ -> m
    | None, [] -> None
    | None, errs -> Some ("flight: " ^ String.concat "; " errs)
  in
  ( {
      sseed = seed;
      sok = mismatch = None;
      skills = !kills;
      squarantined = (!sv).store.Store.qcount;
      srecoveries = (!sv).recoveries;
      smismatch = mismatch;
    },
    !sv )

(** The 50-seed gate: every seed's recovered-store answers must equal
    its cold-run answers, and across the sweep at least one kill must
    actually have fired and at least one corrupt artifact must have been
    quarantined (otherwise the sweep is vacuous). *)
let soak ~(corpus_of : unit -> (string * Irmod.t) list) ~(root : string)
    ~(seeds : int) ~(modules : int) ~(requests : int) ~(progress : string -> unit)
    () : bool * soak_stats * soak_seed list =
  let results = ref [] and recovery_ms = ref 0. in
  for seed = 0 to seeds - 1 do
    let r, sv = soak_one ~corpus_of ~root ~seed ~modules ~requests in
    recovery_ms := !recovery_ms +. sv.recovery_ms;
    Store.close sv.store;
    results := r :: !results;
    progress
      (Printf.sprintf "seed %2d: %s kills=%d quarantined=%d recoveries=%d%s"
         seed
         (if r.sok then "ok " else "FAIL")
         r.skills r.squarantined r.srecoveries
         (match r.smismatch with None -> "" | Some m -> " | " ^ m))
  done;
  let results = List.rev !results in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let stats =
    {
      t_seeds = seeds;
      t_ok = sum (fun r -> if r.sok then 1 else 0);
      t_kills = sum (fun r -> r.skills);
      t_quarantined = sum (fun r -> r.squarantined);
      t_recoveries = sum (fun r -> r.srecoveries);
      t_recovery_ms = !recovery_ms;
    }
  in
  let ok =
    stats.t_ok = seeds
    && (seeds < 5 || (stats.t_kills > 0 && stats.t_quarantined > 0))
  in
  (ok, stats, results)

(* ------------------------------------------------------------------ *)
(* Overload gate                                                       *)
(* ------------------------------------------------------------------ *)

(** High-traffic run: arrivals outpace service, the breaker must open
    and shed dependence queries to degraded-conservative answers.  The
    gate cross-checks the first [shed_check] degraded answers against
    the exact PDG (degraded must be a superset — never wrong, only
    coarser) and demands every request was still served. *)
let overload ~(corpus_of : unit -> (string * Irmod.t) list) ~(root : string)
    ~(seed : int) ~(modules : int) ~(requests : int) () : bool * report =
  let mods = Workload.pick ~seed ~count:modules (List.map fst (corpus_of ())) in
  let w = Workload.generate ~seed ~mods ~requests in
  let over_root = Filename.concat root (Printf.sprintf "overload%d" seed) in
  Store.remove_tree over_root;
  let cfg =
    { default_config with high_water = 12; low_water = 4; shed_check = 25 }
  in
  let sv =
    create ~cfg ~root:over_root
      (List.filter (fun (n, _) -> List.mem n mods) (corpus_of ()))
  in
  let r = run sv w ~rate:2.5 () in
  Store.close sv.store;
  let ok =
    r.rserved = requests && r.rbreaker_opens >= 1 && r.rshed > 0
    && r.rhits > 0 && r.rviolations = []
  in
  (ok, r)
