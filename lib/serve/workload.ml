(** Deterministic serve workloads: interleaved module edits and analysis
    queries over a multi-module corpus, replayable from a seed.

    The generator is a plain LCG (same constants as {!Ir.Faultgen}), so a
    workload is a pure function of [(seed, modules, requests)] — the soak
    gate replays the identical request stream against a recovered store
    and a cold store and demands identical answers. *)

type qkind = Qdeps | Qbounds | Qloops

type req =
  | Edit of { emod : string; efn : int; eseed : int }
      (** plant a benign (dead) instruction in function [efn mod n] *)
  | Query of { qmod : string; qfn : int; qkind : qkind }

type t = { wseed : int; wmods : string list; reqs : req list }

(** Kernel pool the CLI draws corpus modules from (rotated by seed). *)
let default_pool =
  [ "crc32"; "dijkstra"; "adpcm"; "deadcalls"; "qsort"; "bitcount"; "histogram" ]

type rng = { mutable s : int64 }

let next r bound =
  r.s <- Int64.add (Int64.mul r.s 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical r.s 33) mod max 1 bound

(** [count] names from [names], rotated by [seed] so different seeds
    exercise different corpus mixes. *)
let pick ~seed ~count (names : string list) : string list =
  let n = List.length names in
  let count = min count n in
  List.init count (fun i -> List.nth names ((seed + i) mod n))

let pick_modules ~seed ~count : string list = pick ~seed ~count default_pool

(** One request in four is an edit; queries split evenly across deps /
    bounds / loops. *)
let generate ~(seed : int) ~(mods : string list) ~(requests : int) : t =
  let r = { s = Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed) } in
  ignore (next r 1);
  let nm = List.length mods in
  let reqs =
    List.init requests (fun _ ->
        let m = List.nth mods (next r nm) in
        if next r 4 = 0 then Edit { emod = m; efn = next r 64; eseed = next r 0xffff }
        else
          let qkind =
            match next r 3 with 0 -> Qdeps | 1 -> Qbounds | _ -> Qloops
          in
          Query { qmod = m; qfn = next r 64; qkind })
  in
  { wseed = seed; wmods = mods; reqs }

let qkind_to_string = function
  | Qdeps -> "deps"
  | Qbounds -> "bounds"
  | Qloops -> "loops"

let req_to_string = function
  | Edit { emod; efn; eseed } -> Printf.sprintf "edit %s fn#%d seed=%d" emod efn eseed
  | Query { qmod; qfn; qkind } ->
    Printf.sprintf "query %s fn#%d %s" qmod qfn (qkind_to_string qkind)
