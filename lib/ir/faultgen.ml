(** Deterministic fault injection for the transactional pipeline.

    Seeded mutations of a module that model the characteristic bugs of a
    broken transformation: a dropped store, swapped operands of a
    non-commutative operation, a corrupted phi edge, a reference to an
    undefined register, a terminator spliced into the middle of a block.
    The first two classes are semantic (only a differential gate can catch
    them); the last three are structural (the verifier must reject them).
    Injection is a pure function of the seed and the module shape, so a
    failing pipeline run is replayable from its seed alone. *)

type kind =
  | Drop_store        (** delete a store instruction *)
  | Swap_operands     (** [a - b] becomes [b - a] (likewise sdiv/srem/shl/ashr) *)
  | Corrupt_phi_value (** one incoming value replaced by a junk constant *)
  | Corrupt_phi_edge  (** one incoming edge retargeted to a bogus block *)
  | Undef_operand     (** one operand replaced by an undefined register *)
  | Mid_terminator    (** a [ret] spliced into the middle of a block *)
  | Uninit_load       (** a load from a fresh, never-stored alloca *)
  | Wild_store        (** a store through a freed or out-of-bounds pointer *)
  | Stale_stamp       (** an artifact stamp's fingerprint garbled *)
  | Drop_meta_edge    (** one embedded PDG edge key deleted *)
  | Flip_meta_edge    (** one embedded PDG edge retargeted to a ghost id *)
  | Garble_prof       (** one embedded profile count multiplied away *)
  | Effect_reorder    (** one observable effect migrated past another;
                          final memory and text output unchanged, so only
                          a trace-equivalence gate ({!Obs}) can catch it *)

let kind_to_string = function
  | Drop_store -> "drop-store"
  | Swap_operands -> "swap-operands"
  | Corrupt_phi_value -> "corrupt-phi-value"
  | Corrupt_phi_edge -> "corrupt-phi-edge"
  | Undef_operand -> "undef-operand"
  | Mid_terminator -> "mid-terminator"
  | Uninit_load -> "uninit-load"
  | Wild_store -> "wild-store"
  | Stale_stamp -> "stale-stamp"
  | Drop_meta_edge -> "drop-meta-edge"
  | Flip_meta_edge -> "flip-meta-edge"
  | Garble_prof -> "garble-prof"
  | Effect_reorder -> "effect-reorder"

(** Is the fault class one the verifier alone must catch? *)
let structural = function
  | Corrupt_phi_edge | Undef_operand | Mid_terminator -> true
  | Drop_store | Swap_operands | Corrupt_phi_value | Uninit_load | Wild_store
  | Stale_stamp | Drop_meta_edge | Flip_meta_edge | Garble_prof
  | Effect_reorder ->
    false

(** The fault classes a broken transformation produces; the default draw of
    {!inject} (deliberately excludes the sanitizer plants below, whose
    corruptions are invisible to a differential run). *)
let transform_kinds =
  [ Drop_store; Swap_operands; Corrupt_phi_value; Corrupt_phi_edge;
    Undef_operand; Mid_terminator ]

(** The semantic memory bugs a sanitizer must catch: planted code whose
    behaviour only a memory-state oracle (static checker or instrumented
    interpreter) can distinguish from a healthy module. *)
let sanitizer_kinds = [ Uninit_load; Wild_store ]

(** Corruptions of {e embedded analysis metadata} rather than code: the
    program's behaviour is untouched, so neither the verifier nor a
    differential run can see them — only the metadata trust layer
    (stamp verification) can.  They model an embedder racing a
    transformation (stale stamp), truncated metadata (dropped edge), and
    bit rot (flipped edge endpoint, garbled counts). *)
let metadata_kinds = [ Stale_stamp; Drop_meta_edge; Flip_meta_edge; Garble_prof ]

(** The effect-order bug class only the observable-event oracle can
    catch: final values and the flat output buffer are untouched, so the
    legacy output-compare gate sails straight past it. *)
let observable_kinds = [ Effect_reorder ]

let is_meta_kind k = List.mem k metadata_kinds

(* ------------------------------------------------------------------ *)
(* Serve faults                                                        *)
(* ------------------------------------------------------------------ *)

(** Fault classes of the serve layer's persistent artifact store
    (DESIGN.md §14).  Unlike the kinds above these corrupt {e files and
    processes}, not IR, so they carry their own type: a serve process
    killed between the temp-file write and the journal commit, an
    artifact file chopped mid-payload (torn write), a bit flipped inside
    a shard file (disk rot), and a shard whose reads stall past the
    request deadline.  [Serve.Store] applies them; the soak gate asserts
    that recovery after any of them yields answers identical to a
    from-scratch run. *)
type serve_kind =
  | Kill_mid_write      (** process killed inside the store commit protocol *)
  | Truncate_artifact   (** an artifact file truncated (possibly to zero bytes) *)
  | Bitflip_artifact    (** one byte of a shard file flipped *)
  | Stall_shard         (** one shard's reads stall past the deadline *)

let serve_kind_to_string = function
  | Kill_mid_write -> "kill-mid-write"
  | Truncate_artifact -> "truncate-artifact"
  | Bitflip_artifact -> "bitflip-artifact"
  | Stall_shard -> "stall-shard"

let serve_kinds = [ Kill_mid_write; Truncate_artifact; Bitflip_artifact; Stall_shard ]

(* deterministic 64-bit LCG (MMIX constants) *)
type rng = { mutable s : int64 }

let next (r : rng) bound =
  r.s <- Int64.add (Int64.mul r.s 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical r.s 33) (Int64.of_int (max 1 bound)))

(** Deterministic fault plan for a serve soak run: which requests of a
    [requests]-long workload get which store fault armed before they are
    handled.  Roughly one fault per eight requests, always at least one
    kill (the class the recovery journal exists for); pure function of
    [seed] so a failing soak is replayable. *)
let serve_plan ~seed ~requests : (int * serve_kind) list =
  let r = { s = Int64.add 0x5851f42d4c957f2dL (Int64.of_int seed) } in
  ignore (next r 1);
  let n = List.length serve_kinds in
  let faults = max 1 (requests / 8) in
  let plan =
    List.init faults (fun i ->
        let idx = next r (max 1 requests) in
        let k =
          (* the first planned fault is always a kill: every seed must
             exercise the recovery protocol, not only file corruption *)
          if i = 0 then Kill_mid_write else List.nth serve_kinds (next r n)
        in
        (idx, k))
  in
  List.sort_uniq compare plan

(** The function the interpreter will actually enter: sanitizer plants go
    at the top of its entry block so a planted fault is guaranteed to
    execute (the differential harness relies on this). *)
let entry_function (m : Irmod.t) : Func.t option =
  match Irmod.func_opt m "main" with
  | Some f when not f.Func.is_declaration -> Some f
  | _ -> (match Irmod.defined_functions m with f :: _ -> Some f | [] -> None)

(* candidate metadata keys for the metadata fault classes, in sorted
   order (Meta.keys_with_prefix) so injection stays a pure function of
   the seed *)
let meta_sites_of (m : Irmod.t) (k : kind) : string list =
  let meta = m.Irmod.meta in
  let under p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let ends_with suf s =
    let n = String.length s and ns = String.length suf in
    n >= ns && String.sub s (n - ns) ns = suf
  in
  let int_last_segment s =
    match String.rindex_opt s '.' with
    | Some i ->
      int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) <> None
    | None -> false
  in
  let keys = Meta.keys_with_prefix meta "" in
  match k with
  | Stale_stamp ->
    List.filter
      (fun s ->
        (under "pdg." s || under "prof." s || under "arch." s)
        && ends_with ".stamp" s)
      keys
  | Drop_meta_edge | Flip_meta_edge ->
    List.filter (fun s -> under "pdg." s && int_last_segment s) keys
  | Garble_prof ->
    List.filter
      (fun s ->
        under "prof." s
        && (not (ends_with ".stamp" s))
        && s <> "prof.stamp"
        && (match Meta.get meta s with
           | Some v -> Int64.of_string_opt v <> None
           | None -> false))
      keys
  | _ -> []

(* Effect_reorder helpers: an "observable effect" is a store to a global
   or a call to a print builtin; a migratable pair is two observable
   effects in one block separated only by transparent (pure, memory-free)
   register computations, at least one of the pair a store (so the output
   buffer cannot see the migration) and never two stores to the same
   global (so final memory is unchanged). *)
let obs_effect (f : Func.t) (op : Instr.op) =
  match op with
  | Instr.Store (_, p) -> (
    match Alias.base_of f p with
    | Alias.Bglobal g -> Some (`St g)
    | _ -> None)
  | Instr.Call (Instr.Glob c, _) when c = "print" || c = "print_float" ->
    Some `Pr
  | _ -> None

let reorder_partner (f : Func.t) (i : Instr.inst) : Instr.inst option =
  match obs_effect f i.Instr.op with
  | None -> None
  | Some e1 ->
    let b = Func.block f i.Instr.parent in
    let rec after = function
      | x :: tl when x = i.Instr.id -> tl
      | _ :: tl -> after tl
      | [] -> []
    in
    (* pure register computations may sit between the two effects:
       migrating the first effect past them (and past the partner) leaves
       every register value and the final memory image intact *)
    let transparent = function
      | Instr.Bin _ | Instr.Fbin _ | Instr.Icmp _ | Instr.Fcmp _
      | Instr.Cast _ | Instr.Gep _ | Instr.Select _ -> true
      | _ -> false
    in
    let uses_i op =
      List.exists
        (function Instr.Reg r -> r = i.Instr.id | _ -> false)
        (Instr.operands op)
    in
    let rec scan = function
      | [] -> None
      | jid :: tl -> (
        let j = Func.inst f jid in
        if uses_i j.Instr.op then None
        else
          match obs_effect f j.Instr.op with
          | Some e2 ->
            let ok =
              match (e1, e2) with
              | `Pr, `Pr -> false (* output order would change *)
              | `St a, `St b' -> a <> b' (* same cell: final memory would change *)
              | _ -> true
            in
            if ok then Some j else None
          | None -> if transparent j.Instr.op then scan tl else None)
    in
    scan (after b.Func.insts)

(* candidate sites, enumerated in deterministic layout order *)
let sites_of (m : Irmod.t) (k : kind) : (Func.t * Instr.inst) list =
  match k with
  | Uninit_load | Wild_store -> (
    (* one site: the first instruction of the entry function's entry block *)
    match entry_function m with
    | Some f -> (
      match (Func.block f (Func.entry f)).Func.insts with
      | id :: _ -> [ (f, Func.inst f id) ]
      | [] -> [])
    | None -> [])
  | _ ->
  let out = ref [] in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_insts
        (fun (i : Instr.inst) ->
          let ok =
            match (k, i.Instr.op) with
            | Drop_store, Instr.Store _ -> true
            | ( Swap_operands,
                Instr.Bin
                  ((Instr.Sub | Instr.Sdiv | Instr.Srem | Instr.Shl | Instr.Ashr), a, b) ) ->
              not (Instr.value_equal a b)
            | (Corrupt_phi_value | Corrupt_phi_edge), Instr.Phi (_ :: _) -> true
            | Undef_operand, op ->
              (not (Instr.is_terminator_op op))
              && List.exists (function Instr.Reg _ -> true | _ -> false) (Instr.operands op)
            | Mid_terminator, _ ->
              (* site = first instruction of a block with >= 3 instructions *)
              let b = Func.block f i.Instr.parent in
              (match b.Func.insts with x :: _ -> x = i.Instr.id | [] -> false)
              && List.length b.Func.insts >= 3
            | Effect_reorder, _ -> reorder_partner f i <> None
            | _ -> false
          in
          if ok then out := (f, i) :: !out)
        f)
    (Irmod.defined_functions m);
  List.rev !out

(** Structured description of an injected fault: which class, where, and —
    for sanitizer plants — the id of the planted faulty memory instruction
    (the one a checker must point at). *)
type info = {
  idesc : string;
  ikind : kind;
  ifunc : string;
  iinst : int;
  imeta : string option;
      (** for metadata faults: the corrupted artifact's key prefix
          (["pdg.<fn>."], ["prof."], ["arch."]); [None] for code faults *)
}

let declare_alloc_builtins (m : Irmod.t) =
  let dec name params ret =
    if Irmod.func_opt m name = None then
      Irmod.add_func m (Func.declare ~name ~params ~ret)
  in
  dec "malloc" [ ("n", Ty.I64) ] Ty.Ptr;
  dec "free" [ ("p", Ty.Ptr) ] Ty.Void

let apply_info (r : rng) (m : Irmod.t) (k : kind) (f : Func.t) (i : Instr.inst) : info =
  let before = i.Instr.id in
  let faulty =
    match k with
    | Uninit_load ->
      let a =
        Builder.insert_before f ~before (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr
      in
      let ld =
        Builder.insert_before f ~before (Instr.Load (Instr.Reg a.Instr.id)) Ty.I64
      in
      Some ld
    | Wild_store ->
      declare_alloc_builtins m;
      let p =
        Builder.insert_before f ~before
          (Instr.Call (Instr.Glob "malloc", [ Instr.Cint 2L ]))
          Ty.Ptr
      in
      if next r 2 = 0 then begin
        (* use-after-free: free the block, then store through the stale ptr *)
        ignore
          (Builder.insert_before f ~before
             (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
             Ty.Void);
        Some
          (Builder.insert_before f ~before
             (Instr.Store (Instr.Cint 7L, Instr.Reg p.Instr.id))
             Ty.Void)
      end
      else begin
        (* out-of-bounds: index far past the 2-word allocation *)
        let g =
          Builder.insert_before f ~before
            (Instr.Gep (Instr.Reg p.Instr.id, Instr.Cint 1073741824L))
            Ty.Ptr
        in
        Some
          (Builder.insert_before f ~before
             (Instr.Store (Instr.Cint 7L, Instr.Reg g.Instr.id))
             Ty.Void)
      end
    | _ -> None
  in
  let target = match faulty with Some t -> t | None -> i in
  let where = Printf.sprintf "%s/inst %d" f.Func.fname target.Instr.id in
  (match (k, i.Instr.op) with
  | (Uninit_load | Wild_store), _ -> () (* planted above *)
  | Drop_store, Instr.Store _ -> Builder.remove f i.Instr.id
  | Swap_operands, Instr.Bin (op, a, b) -> i.Instr.op <- Instr.Bin (op, b, a)
  | Corrupt_phi_value, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (p, Instr.Cint 1234567L) else (p, v)) incs)
  | Corrupt_phi_edge, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (-7, v) else (p, v)) incs)
  | Undef_operand, op ->
    let undef = Instr.Reg (f.Func.next_id + 9999) in
    let hit = ref false in
    i.Instr.op <-
      Instr.map_operands
        (fun v ->
          match v with
          | Instr.Reg _ when not !hit ->
            hit := true;
            undef
          | v -> v)
        op
  | Mid_terminator, _ ->
    let b = Func.block f i.Instr.parent in
    let t = Builder.mk_inst f (Instr.Ret None) Ty.Void in
    t.Instr.parent <- b.Func.bid;
    (* splice after the first instruction: never last, so always mid-block *)
    (match b.Func.insts with
    | x :: rest -> b.Func.insts <- x :: t.Instr.id :: rest
    | [] -> ())
  | Effect_reorder, _ -> (
    match reorder_partner f i with
    | Some j ->
      (* migrate the first effect to just after its partner; the
         instructions in between are pure, so their operands stay defined *)
      let b = Func.block f i.Instr.parent in
      let without = List.filter (fun x -> x <> i.Instr.id) b.Func.insts in
      b.Func.insts <-
        List.concat_map
          (fun x -> if x = j.Instr.id then [ x; i.Instr.id ] else [ x ])
          without
    | None -> ())
  | _ -> ());
  {
    idesc = Printf.sprintf "%s at %s" (kind_to_string k) where;
    ikind = k;
    ifunc = f.Func.fname;
    iinst = target.Instr.id;
    imeta = None;
  }

(* mutate one metadata key per the fault class; the artifact prefix in
   [imeta] is what a detector must point at *)
let apply_meta_info (r : rng) (m : Irmod.t) (k : kind) (key : string) : info =
  let meta = m.Irmod.meta in
  let under p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let artifact =
    match k with
    | Garble_prof -> "prof."
    | _ ->
      (* the key's last segment (stamp index / edge index) is not part of
         the artifact prefix *)
      String.sub key 0 (String.rindex key '.' + 1)
  in
  let ifunc =
    if under "pdg." artifact then String.sub artifact 4 (String.length artifact - 5)
    else "<module>"
  in
  (match (k, Meta.get meta key) with
  | Drop_meta_edge, _ -> Meta.remove meta key
  | Stale_stamp, Some line ->
    (* garble the fp= field: the stamp still parses, but vouches for
       code that never existed *)
    let fields =
      List.map
        (fun kv -> if under "fp=" kv then "fp=deadbeefdeadbeef" else kv)
        (String.split_on_char ' ' line)
    in
    Meta.set meta key (String.concat " " fields)
  | Flip_meta_edge, Some line -> (
    match String.split_on_char ' ' line with
    | [ s; _; kind; must ] ->
      let ghost = 999983 + next r 17 in
      Meta.set meta key (Printf.sprintf "%s %d %s %s" s ghost kind must)
    | _ -> Meta.remove meta key)
  | Garble_prof, Some v -> (
    match Int64.of_string_opt v with
    | Some n ->
      Meta.set meta key (Int64.to_string (Int64.add (Int64.mul n 1000L) 7L))
    | None -> ())
  | _ -> ());
  {
    idesc = Printf.sprintf "%s at %s" (kind_to_string k) key;
    ikind = k;
    ifunc;
    iinst = -1;
    imeta = Some artifact;
  }

(** Inject one seeded fault into [m] and describe it.  Returns [None] when
    the module offers no opportunity.  When [kinds] is given only those
    fault classes are drawn from; the default draw is {!transform_kinds}
    (sanitizer plants must be requested explicitly). *)
let inject_info ?kinds ~seed (m : Irmod.t) : info option =
  let all = match kinds with Some ks -> ks | None -> transform_kinds in
  let r = { s = Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed) } in
  ignore (next r 1);
  (* try fault classes starting from a seeded offset until one has a site *)
  let nk = List.length all in
  let start = next r nk in
  let rec go tries =
    if tries >= nk then None
    else
      let k = List.nth all ((start + tries) mod nk) in
      if is_meta_kind k then
        match meta_sites_of m k with
        | [] -> go (tries + 1)
        | sites ->
          let key = List.nth sites (next r (List.length sites)) in
          Some (apply_meta_info r m k key)
      else
        match sites_of m k with
        | [] -> go (tries + 1)
        | sites ->
          let f, i = List.nth sites (next r (List.length sites)) in
          Some (apply_info r m k f i)
  in
  go 0

let inject ?kinds ~seed (m : Irmod.t) : string option =
  Option.map (fun x -> x.idesc) (inject_info ?kinds ~seed m)
