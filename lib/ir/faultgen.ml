(** Deterministic fault injection for the transactional pipeline.

    Seeded mutations of a module that model the characteristic bugs of a
    broken transformation: a dropped store, swapped operands of a
    non-commutative operation, a corrupted phi edge, a reference to an
    undefined register, a terminator spliced into the middle of a block.
    The first two classes are semantic (only a differential gate can catch
    them); the last three are structural (the verifier must reject them).
    Injection is a pure function of the seed and the module shape, so a
    failing pipeline run is replayable from its seed alone. *)

type kind =
  | Drop_store        (** delete a store instruction *)
  | Swap_operands     (** [a - b] becomes [b - a] (likewise sdiv/srem/shl/ashr) *)
  | Corrupt_phi_value (** one incoming value replaced by a junk constant *)
  | Corrupt_phi_edge  (** one incoming edge retargeted to a bogus block *)
  | Undef_operand     (** one operand replaced by an undefined register *)
  | Mid_terminator    (** a [ret] spliced into the middle of a block *)
  | Uninit_load       (** a load from a fresh, never-stored alloca *)
  | Wild_store        (** a store through a freed or out-of-bounds pointer *)

let kind_to_string = function
  | Drop_store -> "drop-store"
  | Swap_operands -> "swap-operands"
  | Corrupt_phi_value -> "corrupt-phi-value"
  | Corrupt_phi_edge -> "corrupt-phi-edge"
  | Undef_operand -> "undef-operand"
  | Mid_terminator -> "mid-terminator"
  | Uninit_load -> "uninit-load"
  | Wild_store -> "wild-store"

(** Is the fault class one the verifier alone must catch? *)
let structural = function
  | Corrupt_phi_edge | Undef_operand | Mid_terminator -> true
  | Drop_store | Swap_operands | Corrupt_phi_value | Uninit_load | Wild_store ->
    false

(** The fault classes a broken transformation produces; the default draw of
    {!inject} (deliberately excludes the sanitizer plants below, whose
    corruptions are invisible to a differential run). *)
let transform_kinds =
  [ Drop_store; Swap_operands; Corrupt_phi_value; Corrupt_phi_edge;
    Undef_operand; Mid_terminator ]

(** The semantic memory bugs a sanitizer must catch: planted code whose
    behaviour only a memory-state oracle (static checker or instrumented
    interpreter) can distinguish from a healthy module. *)
let sanitizer_kinds = [ Uninit_load; Wild_store ]

(* deterministic 64-bit LCG (MMIX constants) *)
type rng = { mutable s : int64 }

let next (r : rng) bound =
  r.s <- Int64.add (Int64.mul r.s 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical r.s 33) (Int64.of_int (max 1 bound)))

(** The function the interpreter will actually enter: sanitizer plants go
    at the top of its entry block so a planted fault is guaranteed to
    execute (the differential harness relies on this). *)
let entry_function (m : Irmod.t) : Func.t option =
  match Irmod.func_opt m "main" with
  | Some f when not f.Func.is_declaration -> Some f
  | _ -> (match Irmod.defined_functions m with f :: _ -> Some f | [] -> None)

(* candidate sites, enumerated in deterministic layout order *)
let sites_of (m : Irmod.t) (k : kind) : (Func.t * Instr.inst) list =
  match k with
  | Uninit_load | Wild_store -> (
    (* one site: the first instruction of the entry function's entry block *)
    match entry_function m with
    | Some f -> (
      match (Func.block f (Func.entry f)).Func.insts with
      | id :: _ -> [ (f, Func.inst f id) ]
      | [] -> [])
    | None -> [])
  | _ ->
  let out = ref [] in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_insts
        (fun (i : Instr.inst) ->
          let ok =
            match (k, i.Instr.op) with
            | Drop_store, Instr.Store _ -> true
            | ( Swap_operands,
                Instr.Bin
                  ((Instr.Sub | Instr.Sdiv | Instr.Srem | Instr.Shl | Instr.Ashr), a, b) ) ->
              not (Instr.value_equal a b)
            | (Corrupt_phi_value | Corrupt_phi_edge), Instr.Phi (_ :: _) -> true
            | Undef_operand, op ->
              (not (Instr.is_terminator_op op))
              && List.exists (function Instr.Reg _ -> true | _ -> false) (Instr.operands op)
            | Mid_terminator, _ ->
              (* site = first instruction of a block with >= 3 instructions *)
              let b = Func.block f i.Instr.parent in
              (match b.Func.insts with x :: _ -> x = i.Instr.id | [] -> false)
              && List.length b.Func.insts >= 3
            | _ -> false
          in
          if ok then out := (f, i) :: !out)
        f)
    (Irmod.defined_functions m);
  List.rev !out

(** Structured description of an injected fault: which class, where, and —
    for sanitizer plants — the id of the planted faulty memory instruction
    (the one a checker must point at). *)
type info = {
  idesc : string;
  ikind : kind;
  ifunc : string;
  iinst : int;
}

let declare_alloc_builtins (m : Irmod.t) =
  let dec name params ret =
    if Irmod.func_opt m name = None then
      Irmod.add_func m (Func.declare ~name ~params ~ret)
  in
  dec "malloc" [ ("n", Ty.I64) ] Ty.Ptr;
  dec "free" [ ("p", Ty.Ptr) ] Ty.Void

let apply_info (r : rng) (m : Irmod.t) (k : kind) (f : Func.t) (i : Instr.inst) : info =
  let before = i.Instr.id in
  let faulty =
    match k with
    | Uninit_load ->
      let a =
        Builder.insert_before f ~before (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr
      in
      let ld =
        Builder.insert_before f ~before (Instr.Load (Instr.Reg a.Instr.id)) Ty.I64
      in
      Some ld
    | Wild_store ->
      declare_alloc_builtins m;
      let p =
        Builder.insert_before f ~before
          (Instr.Call (Instr.Glob "malloc", [ Instr.Cint 2L ]))
          Ty.Ptr
      in
      if next r 2 = 0 then begin
        (* use-after-free: free the block, then store through the stale ptr *)
        ignore
          (Builder.insert_before f ~before
             (Instr.Call (Instr.Glob "free", [ Instr.Reg p.Instr.id ]))
             Ty.Void);
        Some
          (Builder.insert_before f ~before
             (Instr.Store (Instr.Cint 7L, Instr.Reg p.Instr.id))
             Ty.Void)
      end
      else begin
        (* out-of-bounds: index far past the 2-word allocation *)
        let g =
          Builder.insert_before f ~before
            (Instr.Gep (Instr.Reg p.Instr.id, Instr.Cint 1073741824L))
            Ty.Ptr
        in
        Some
          (Builder.insert_before f ~before
             (Instr.Store (Instr.Cint 7L, Instr.Reg g.Instr.id))
             Ty.Void)
      end
    | _ -> None
  in
  let target = match faulty with Some t -> t | None -> i in
  let where = Printf.sprintf "%s/inst %d" f.Func.fname target.Instr.id in
  (match (k, i.Instr.op) with
  | (Uninit_load | Wild_store), _ -> () (* planted above *)
  | Drop_store, Instr.Store _ -> Builder.remove f i.Instr.id
  | Swap_operands, Instr.Bin (op, a, b) -> i.Instr.op <- Instr.Bin (op, b, a)
  | Corrupt_phi_value, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (p, Instr.Cint 1234567L) else (p, v)) incs)
  | Corrupt_phi_edge, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (-7, v) else (p, v)) incs)
  | Undef_operand, op ->
    let undef = Instr.Reg (f.Func.next_id + 9999) in
    let hit = ref false in
    i.Instr.op <-
      Instr.map_operands
        (fun v ->
          match v with
          | Instr.Reg _ when not !hit ->
            hit := true;
            undef
          | v -> v)
        op
  | Mid_terminator, _ ->
    let b = Func.block f i.Instr.parent in
    let t = Builder.mk_inst f (Instr.Ret None) Ty.Void in
    t.Instr.parent <- b.Func.bid;
    (* splice after the first instruction: never last, so always mid-block *)
    (match b.Func.insts with
    | x :: rest -> b.Func.insts <- x :: t.Instr.id :: rest
    | [] -> ())
  | _ -> ());
  {
    idesc = Printf.sprintf "%s at %s" (kind_to_string k) where;
    ikind = k;
    ifunc = f.Func.fname;
    iinst = target.Instr.id;
  }

(** Inject one seeded fault into [m] and describe it.  Returns [None] when
    the module offers no opportunity.  When [kinds] is given only those
    fault classes are drawn from; the default draw is {!transform_kinds}
    (sanitizer plants must be requested explicitly). *)
let inject_info ?kinds ~seed (m : Irmod.t) : info option =
  let all = match kinds with Some ks -> ks | None -> transform_kinds in
  let r = { s = Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed) } in
  ignore (next r 1);
  (* try fault classes starting from a seeded offset until one has a site *)
  let nk = List.length all in
  let start = next r nk in
  let rec go tries =
    if tries >= nk then None
    else
      let k = List.nth all ((start + tries) mod nk) in
      match sites_of m k with
      | [] -> go (tries + 1)
      | sites ->
        let f, i = List.nth sites (next r (List.length sites)) in
        Some (apply_info r m k f i)
  in
  go 0

let inject ?kinds ~seed (m : Irmod.t) : string option =
  Option.map (fun x -> x.idesc) (inject_info ?kinds ~seed m)
