(** Deterministic fault injection for the transactional pipeline.

    Seeded mutations of a module that model the characteristic bugs of a
    broken transformation: a dropped store, swapped operands of a
    non-commutative operation, a corrupted phi edge, a reference to an
    undefined register, a terminator spliced into the middle of a block.
    The first two classes are semantic (only a differential gate can catch
    them); the last three are structural (the verifier must reject them).
    Injection is a pure function of the seed and the module shape, so a
    failing pipeline run is replayable from its seed alone. *)

type kind =
  | Drop_store        (** delete a store instruction *)
  | Swap_operands     (** [a - b] becomes [b - a] (likewise sdiv/srem/shl/ashr) *)
  | Corrupt_phi_value (** one incoming value replaced by a junk constant *)
  | Corrupt_phi_edge  (** one incoming edge retargeted to a bogus block *)
  | Undef_operand     (** one operand replaced by an undefined register *)
  | Mid_terminator    (** a [ret] spliced into the middle of a block *)

let kind_to_string = function
  | Drop_store -> "drop-store"
  | Swap_operands -> "swap-operands"
  | Corrupt_phi_value -> "corrupt-phi-value"
  | Corrupt_phi_edge -> "corrupt-phi-edge"
  | Undef_operand -> "undef-operand"
  | Mid_terminator -> "mid-terminator"

(** Is the fault class one the verifier alone must catch? *)
let structural = function
  | Corrupt_phi_edge | Undef_operand | Mid_terminator -> true
  | Drop_store | Swap_operands | Corrupt_phi_value -> false

(* deterministic 64-bit LCG (MMIX constants) *)
type rng = { mutable s : int64 }

let next (r : rng) bound =
  r.s <- Int64.add (Int64.mul r.s 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical r.s 33) (Int64.of_int (max 1 bound)))

(* candidate sites, enumerated in deterministic layout order *)
let sites_of (m : Irmod.t) (k : kind) : (Func.t * Instr.inst) list =
  let out = ref [] in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_insts
        (fun (i : Instr.inst) ->
          let ok =
            match (k, i.Instr.op) with
            | Drop_store, Instr.Store _ -> true
            | ( Swap_operands,
                Instr.Bin
                  ((Instr.Sub | Instr.Sdiv | Instr.Srem | Instr.Shl | Instr.Ashr), a, b) ) ->
              not (Instr.value_equal a b)
            | (Corrupt_phi_value | Corrupt_phi_edge), Instr.Phi (_ :: _) -> true
            | Undef_operand, op ->
              (not (Instr.is_terminator_op op))
              && List.exists (function Instr.Reg _ -> true | _ -> false) (Instr.operands op)
            | Mid_terminator, _ ->
              (* site = first instruction of a block with >= 3 instructions *)
              let b = Func.block f i.Instr.parent in
              (match b.Func.insts with x :: _ -> x = i.Instr.id | [] -> false)
              && List.length b.Func.insts >= 3
            | _ -> false
          in
          if ok then out := (f, i) :: !out)
        f)
    (Irmod.defined_functions m);
  List.rev !out

let apply (r : rng) (k : kind) (f : Func.t) (i : Instr.inst) : string =
  let where = Printf.sprintf "%s/inst %d" f.Func.fname i.Instr.id in
  (match (k, i.Instr.op) with
  | Drop_store, Instr.Store _ -> Builder.remove f i.Instr.id
  | Swap_operands, Instr.Bin (op, a, b) -> i.Instr.op <- Instr.Bin (op, b, a)
  | Corrupt_phi_value, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (p, Instr.Cint 1234567L) else (p, v)) incs)
  | Corrupt_phi_edge, Instr.Phi incs ->
    let k' = next r (List.length incs) in
    i.Instr.op <-
      Instr.Phi (List.mapi (fun j (p, v) -> if j = k' then (-7, v) else (p, v)) incs)
  | Undef_operand, op ->
    let undef = Instr.Reg (f.Func.next_id + 9999) in
    let hit = ref false in
    i.Instr.op <-
      Instr.map_operands
        (fun v ->
          match v with
          | Instr.Reg _ when not !hit ->
            hit := true;
            undef
          | v -> v)
        op
  | Mid_terminator, _ ->
    let b = Func.block f i.Instr.parent in
    let t = Builder.mk_inst f (Instr.Ret None) Ty.Void in
    t.Instr.parent <- b.Func.bid;
    (* splice after the first instruction: never last, so always mid-block *)
    (match b.Func.insts with
    | x :: rest -> b.Func.insts <- x :: t.Instr.id :: rest
    | [] -> ())
  | _ -> ());
  Printf.sprintf "%s at %s" (kind_to_string k) where

(** Inject one seeded fault into [m].  Returns a description of what was
    corrupted, or [None] when the module offers no opportunity.  When
    [kinds] is given only those fault classes are drawn from. *)
let inject ?kinds ~seed (m : Irmod.t) : string option =
  let all =
    match kinds with
    | Some ks -> ks
    | None ->
      [ Drop_store; Swap_operands; Corrupt_phi_value; Corrupt_phi_edge;
        Undef_operand; Mid_terminator ]
  in
  let r = { s = Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed) } in
  ignore (next r 1);
  (* try fault classes starting from a seeded offset until one has a site *)
  let nk = List.length all in
  let start = next r nk in
  let rec go tries =
    if tries >= nk then None
    else
      let k = List.nth all ((start + tries) mod nk) in
      match sites_of m k with
      | [] -> go (tries + 1)
      | sites ->
        let f, i = List.nth sites (next r (List.length sites)) in
        Some (apply r k f i)
  in
  go 0
