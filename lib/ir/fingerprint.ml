(** Stable structural fingerprints of functions and modules.

    Embedded analysis artifacts (PDG edges, profiles) are only valid for
    the exact IR they were computed on.  A fingerprint captures that IR
    structurally — instruction ids, opcodes, operands and CFG edges, all
    via the printed form, which {!Printer}/{!Parser} keep stable across
    round trips — so a consumer can tell whether the code under an
    artifact has changed since the artifact was embedded.

    Module fingerprints deliberately exclude metadata: embedding or
    stamping one artifact must not invalidate another artifact's stamp. *)

(* FNV-1a style over the native 63-bit int: tiny, dependency-free, and
   stable across platforms (the state is masked to 62 bits so it never
   depends on the sign behaviour of overflow).  Native ints stay unboxed,
   which matters: verifying a stamp hashes every key of a payload that
   can hold tens of thousands of edges, and an Int64 accumulator would
   allocate twice per byte.  Collision resistance is not a goal (stamps
   guard against accidents, not adversaries); detection of any realistic
   edit is. *)

let offset_basis = 0x3bf29ce484222325
let prime = 0x100000001b3

type state = int

let seed : state = offset_basis

let feed (h : state) (s : string) : state =
  let h = ref h in
  for i = 0 to String.length s - 1 do
    h := ((!h lxor Char.code (String.unsafe_get s i)) * prime) land max_int
  done;
  (* separator so that feed h "ab" <> feed (feed h "a") "b" *)
  ((!h lxor 0x1f) * prime) land max_int

let to_hex (h : state) = Printf.sprintf "%016x" h

(** Fingerprint of one function: name plus its full printed body
    (ids, opcodes, operands, block labels and terminators — the printed
    form is exactly the structure embedded artifacts reference). *)
let func_fp (f : Func.t) : string =
  to_hex (feed (feed seed f.Func.fname) (Printer.func_str f))

(** Fingerprint of the whole module: globals and every function, in
    deterministic order, excluding metadata (see above). *)
let module_fp (m : Irmod.t) : string =
  let h = ref (feed seed m.Irmod.mname) in
  List.iter
    (fun (g : Irmod.global) ->
      h := feed !h (Printf.sprintf "global %s %d" g.gname g.size);
      match g.init with
      | None -> ()
      | Some vs ->
        Array.iter
          (fun v ->
            h :=
              feed !h
                (match v with
                | Instr.Cint n -> Int64.to_string n
                | Instr.Cfloat x -> Printf.sprintf "%h" x
                | Instr.Null -> "null"
                | Instr.Glob g -> "@" ^ g
                | Instr.Arg i -> "arg" ^ string_of_int i
                | Instr.Reg r -> "%" ^ string_of_int r))
          vs)
    (Irmod.globals m);
  List.iter (fun f -> h := feed (feed !h f.Func.fname) (Printer.func_str f))
    (Irmod.functions m);
  to_hex !h
