(** If-conversion: linearize a single-entry acyclic CFG region into one
    straight-line block, replacing control divergence with predication.

    Every block's execution condition becomes an explicit i64 0/1 value
    (the block predicate); merge phis become select chains over the edge
    predicates; side effects that must not fire on masked-off paths are
    address-masked — a store or load in a predicated block redirects to a
    caller-supplied scratch slot when its predicate is false
    ([store v, select(p, real, scratch)]), so the instruction executes
    unconditionally yet touches program memory only when the original
    program would have.  The scratch slots are function-local allocas the
    caller never lets escape, which keeps masked-off stores invisible to
    the {!Obs} observable-trace oracle (it records stores by dynamic
    address against escaped objects only).

    Two scratch slots are needed because the interpreter's memory is
    dynamically typed: float loads must always read a float-holding cell
    ([scratch_f]), everything else shares [scratch_i] (integers and
    pointers coerce freely).  Divisors of predicated [Sdiv]/[Srem] are
    masked to 1 so masked-off lanes cannot introduce a division trap the
    original program did not have.

    Used by [Ntools.Vec] to turn divergent loop bodies into vectorizable
    straight-line code, per the predication recipe of "Retrofitting
    Control Flow Graphs in LLVM IR for Auto Vectorization". *)

type result = {
  blocks_merged : int;   (** region blocks folded into the entry block *)
  selects : int;         (** merge phis converted to select chains *)
  masked : int;          (** memory operands / divisors address-masked *)
  div_frac : float;      (** fraction of region insts under a predicate *)
}

(** Builtins that are safe to execute speculatively on masked-off lanes:
    pure value→value functions that trap on no well-typed input (IEEE
    semantics return nan/inf rather than trapping) and touch no
    interpreter state.  [rand], [clock], [malloc], [print], … are
    stateful or observable, and user functions may contain anything, so
    any other callee on a divergent path disqualifies the region. *)
let pure_builtins =
  [ "sqrt"; "exp"; "log"; "sin"; "cos"; "fabs"; "floor"; "pow";
    "i64_min"; "i64_max" ]

let value_is_float (f : Func.t) = function
  | Instr.Cfloat _ -> true
  | Instr.Cint _ | Instr.Null | Instr.Glob _ -> false
  | Instr.Arg i ->
    (try Ty.equal (snd f.Func.params.(i)) Ty.F64 with _ -> false)
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | Some i -> Ty.equal i.Instr.ty Ty.F64
    | None -> false)

(* Reverse post-order of the region from [entry] following in-region
   successors; [Error] on a cycle (an inner loop) or an edge leaving the
   region other than to [exit_bid].  RPO places defs before uses for
   non-phi values, so instructions can be concatenated in this order. *)
let topo_order (f : Func.t) ~entry ~blocks ~exit_bid =
  let in_region b = List.mem b blocks in
  let state = Hashtbl.create 16 in (* 1 = on stack, 2 = done *)
  let order = ref [] in
  let rec visit b =
    match Hashtbl.find_opt state b with
    | Some 1 -> Error "region has an internal cycle (inner loop)"
    | Some _ -> Ok ()
    | None ->
      Hashtbl.replace state b 1;
      let rec succs = function
        | [] ->
          Hashtbl.replace state b 2;
          order := b :: !order;
          Ok ()
        | s :: rest ->
          if s = exit_bid then succs rest
          else if not (in_region s) then
            Error (Printf.sprintf "edge to block %d leaves the region" s)
          else (match visit s with Ok () -> succs rest | Error e -> Error e)
      in
      succs (Func.successors f b)
  in
  match visit entry with
  | Error e -> Error e
  | Ok () ->
    (* [order] was built by consing at DFS finish time, so it already
       reads entry-first: reverse post-order *)
    if List.length !order <> List.length blocks then
      Error "region has blocks unreachable from its entry"
    else Ok !order

(** Pure feasibility check: [Ok order] when the region can be linearized.
    The region must be acyclic, single-entry, have every phi's incoming
    predecessors inside the region, terminate region-internally with
    [Br]/[Cbr] only, reach [exit_bid] from exactly one block (the unique
    tail, via an unconditional branch), and contain no alloca and no
    observable or stateful call outside the entry block (anything not on
    the always-executed path would otherwise run speculatively). *)
let check (f : Func.t) ~entry ~blocks ~exit_bid :
    (int list, string) Stdlib.result =
  match topo_order f ~entry ~blocks ~exit_bid with
  | Error e -> Error e
  | Ok order ->
    let err = ref None in
    let reject msg = if !err = None then err := Some msg in
    let exits = ref [] in
    List.iter
      (fun b ->
        (match Func.terminator f b with
        | Some { Instr.op = Instr.Br s; _ } ->
          if s = exit_bid then exits := b :: !exits
        | Some { Instr.op = Instr.Cbr (_, t, e); _ } ->
          if t = exit_bid || e = exit_bid then
            reject "conditional branch to the region exit (early exit)"
        | _ -> reject "region block without a plain Br/Cbr terminator");
        List.iter
          (fun (i : Instr.inst) ->
            match i.Instr.op with
            | Instr.Phi incs ->
              if b = entry then reject "phi at the region entry"
              else
                List.iter
                  (fun (p, _) ->
                    if not (List.mem p blocks) then
                      reject "phi with an incoming edge from outside the region")
                  incs
            | Instr.Alloca _ when b <> entry ->
              reject "alloca on a divergent path"
            | Instr.Call (Instr.Glob g, _) when b <> entry ->
              if not (List.mem g pure_builtins) then
                reject (Printf.sprintf "call to %s on a divergent path" g)
            | Instr.Call (_, _) when b <> entry ->
              reject "indirect call on a divergent path"
            | _ -> ())
          (Func.insts_of_block f b))
      order;
    (match !exits with
    | [ _ ] -> ()
    | _ -> reject "region must reach the exit from exactly one tail block");
    (match !err with Some e -> Error e | None -> Ok order)

(** Linearize the region in place.  [scratch_i]/[scratch_f] are pointers
    to two one-word allocas the caller emitted outside the region (and
    must never let escape).  On success the whole region is the single
    block [entry], terminated by [Br exit_bid]. *)
let run (f : Func.t) ~entry ~blocks ~exit_bid ~scratch_i ~scratch_f :
    (result, string) Stdlib.result =
  match check f ~entry ~blocks ~exit_bid with
  | Error e -> Error e
  | Ok order ->
    let total_insts =
      List.fold_left
        (fun n b -> n + List.length (Func.block f b).Func.insts)
        0 order
    in
    let divergent_insts = ref 0 in
    let selects = ref 0 in
    let masked = ref 0 in
    (* predicate per block (None = always executes) and per edge *)
    let bpred : (int, Instr.value option) Hashtbl.t = Hashtbl.create 16 in
    let epred : (int * int, Instr.value option) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace bpred entry None;
    (* [Or p (Xor p 1)] is a tautology: a two-way merge of both arms of
       one branch executes unconditionally *)
    let complement a b =
      match b with
      | Instr.Reg r -> (
        match Func.inst_opt f r with
        | Some { Instr.op = Instr.Bin (Instr.Xor, x, Instr.Cint 1L); _ } ->
          x = a
        | _ -> false)
      | _ -> false
    in
    let preds = Func.preds f in
    (* predicate and edge computations are appended into [entry]; while
       entry's own terminator is still in place [Builder.add] inserts
       before it, afterwards at the true end — both are what we want *)
    let emit op ty = Instr.Reg (Builder.add f entry op ty).Instr.id in
    let edge_of src dst =
      match Hashtbl.find_opt epred (src, dst) with Some p -> p | None -> None
    in
    let tail = ref entry in
    List.iter
      (fun b ->
        (* block predicate: OR of incoming edge predicates *)
        if b <> entry then begin
          let inc = try Hashtbl.find preds b with Not_found -> [] in
          let ps = List.map (fun p -> edge_of p b) inc in
          let p =
            if ps = [] || List.exists (fun p -> p = None) ps then None
            else
              match List.map Option.get ps with
              | [ p ] -> Some p
              | [ a; b ] when complement a b || complement b a -> None
              | p :: rest ->
                Some
                  (List.fold_left
                     (fun acc q -> emit (Instr.Bin (Instr.Or, acc, q)) Ty.I64)
                     p rest)
              | [] -> None
          in
          Hashtbl.replace bpred b p
        end;
        let p = Hashtbl.find bpred b in
        List.iter
          (fun (i : Instr.inst) ->
            if p <> None && not (Instr.is_terminator i) then incr divergent_insts;
            match (i.Instr.op, p) with
            (* a merge phi folds into a select chain keyed by the
               incoming edges' predicates *)
            | Instr.Phi incs, _ ->
              let incs = List.map (fun (pb, v) -> (edge_of pb b, v)) incs in
              let chain =
                match List.rev incs with
                | [] -> Instr.Cint 0L (* unreachable: phis are non-empty *)
                | (_, last) :: rest ->
                  List.fold_left
                    (fun acc (ep, v) ->
                      match ep with
                      | None -> v (* unconditional edge dominates the merge *)
                      | Some c ->
                        incr selects;
                        Instr.Reg
                          (Builder.insert_before f ~before:i.Instr.id
                             (Instr.Select (c, v, acc)) i.Instr.ty)
                            .Instr.id)
                    last rest
              in
              Builder.replace_uses f ~old:i.Instr.id ~by:chain;
              Builder.remove f i.Instr.id
            | Instr.Load ptr, Some pv ->
              incr masked;
              let slot =
                if Ty.equal i.Instr.ty Ty.F64 then scratch_f else scratch_i
              in
              let a =
                Builder.insert_before f ~before:i.Instr.id
                  (Instr.Select (pv, ptr, slot)) Ty.Ptr
              in
              i.Instr.op <- Instr.Load (Instr.Reg a.Instr.id)
            | Instr.Store (v, ptr), Some pv ->
              incr masked;
              let slot =
                if value_is_float f v then scratch_f else scratch_i
              in
              let a =
                Builder.insert_before f ~before:i.Instr.id
                  (Instr.Select (pv, ptr, slot)) Ty.Ptr
              in
              i.Instr.op <- Instr.Store (v, Instr.Reg a.Instr.id)
            | Instr.Bin ((Instr.Sdiv | Instr.Srem) as op, a, d), Some pv ->
              incr masked;
              let d' =
                Builder.insert_before f ~before:i.Instr.id
                  (Instr.Select (pv, d, Instr.Cint 1L)) Ty.I64
              in
              i.Instr.op <- Instr.Bin (op, a, Instr.Reg d'.Instr.id)
            | _ -> ())
          (Func.insts_of_block f b);
        (* record the edge predicates out of [b], drop its terminator,
           then fold its remaining instructions into [entry] *)
        (match Func.terminator f b with
        | Some ({ Instr.op = Instr.Br _; _ } as t) ->
          List.iter
            (fun s -> if s <> exit_bid then Hashtbl.replace epred (b, s) p)
            (Instr.successors t.Instr.op);
          Builder.remove f t.Instr.id
        | Some ({ Instr.op = Instr.Cbr (c, tb, eb); _ } as t) ->
          (* normalize the condition to 0/1 so its complement is Xor 1 *)
          let cc = emit (Instr.Icmp (Instr.Ne, c, Instr.Cint 0L)) Ty.I64 in
          let ncc = emit (Instr.Bin (Instr.Xor, cc, Instr.Cint 1L)) Ty.I64 in
          let conj q =
            match p with
            | None -> Some q
            | Some pv -> Some (emit (Instr.Bin (Instr.And, pv, q)) Ty.I64)
          in
          Hashtbl.replace epred (b, tb) (conj cc);
          Hashtbl.replace epred (b, eb) (conj ncc);
          Builder.remove f t.Instr.id
        | _ -> ());
        if b <> entry then begin
          List.iter
            (fun id -> Builder.move_to_end f id ~bid:entry)
            (Func.block f b).Func.insts;
          tail := b
        end)
      order;
    ignore (Builder.set_term f entry (Instr.Br exit_bid));
    (* the back edge into [exit_bid] now comes from [entry]: retarget its
       phis before erasing the folded blocks *)
    if !tail <> entry then
      Builder.rewrite_phi_pred f exit_bid ~old_pred:!tail ~new_pred:entry;
    List.iter (fun b -> if b <> entry then Builder.erase_block f b) order;
    Ok
      {
        blocks_merged = List.length order - 1;
        selects = !selects;
        masked = !masked;
        div_frac =
          (if total_insts = 0 then 0.0
           else float_of_int !divergent_insts /. float_of_int total_insts);
      }
