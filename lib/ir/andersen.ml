(** Inclusion-based (Andersen-style) whole-module points-to analysis.

    This is the reproduction's stand-in for the external state-of-the-art
    analyses NOELLE integrates (SCAF [16], SVF [47]): a flow-insensitive,
    context-insensitive, field-insensitive points-to analysis with
    interprocedural propagation through calls (including indirect calls
    resolved on the fly) and a mod/ref summary per function.  Plugged into
    the {!Alias} stack after the baseline analysis, it provides the extra
    dependence disprovals measured in Figure 3.

    Two solvers share the constraint model (DESIGN.md §11): {!analyze} is
    the production worklist solver — abstract objects are re-keyed to
    dense ints, points-to sets are {!Bitset}s, and only *new* deltas are
    propagated along copy/load/store edges, with copy-edge cycles
    collapsed online into union-find representatives.  {!solve_naive} is
    the original round-to-fixpoint solver, kept as the differential
    oracle: both must produce bit-identical points-to sets and mod/ref
    summaries. *)

module SS = Set.Make (String)

type obj =
  | Oalloca of string * int   (** function name, alloca inst id *)
  | Oglob of string
  | Omalloc of string * int   (** function name, call-site inst id *)
  | Ofun of string
  | Oextern                   (** unknown memory (int-to-pointer, externals) *)

module ObjSet = Set.Make (struct
  type t = obj
  let compare = compare
end)

let obj_to_string = function
  | Oalloca (fn, id) -> Printf.sprintf "alloca %s/%%%d" fn id
  | Oglob g -> Printf.sprintf "global @%s" g
  | Omalloc (fn, id) -> Printf.sprintf "malloc %s/%%%d" fn id
  | Ofun fn -> Printf.sprintf "function @%s" fn
  | Oextern -> "extern"

let objset_to_string (s : ObjSet.t) =
  "{" ^ String.concat ", " (List.map obj_to_string (ObjSet.elements s)) ^ "}"

type var =
  | Vreg of string * int
  | Varg of string * int
  | Vret of string
  | Vmem of obj               (** contents of an abstract object *)

let var_to_string = function
  | Vreg (fn, x) -> Printf.sprintf "%s/%%%d" fn x
  | Varg (fn, k) -> Printf.sprintf "%s/arg%d" fn k
  | Vret fn -> Printf.sprintf "%s/ret" fn
  | Vmem o -> Printf.sprintf "mem(%s)" (obj_to_string o)

module VarMap = Hashtbl.Make (struct
  type t = var
  let equal = ( = )
  let hash = Hashtbl.hash
end)

(** Pseudo-object standing for ordered external effects (I/O, PRVG state);
    never aliases program memory but makes ordered calls conflict. *)
let ordered_obj = Oglob "<ordered-effects>"

type t = {
  pts : ObjSet.t VarMap.t;
  touched : (string, ObjSet.t * ObjSet.t) Hashtbl.t;
      (** per-function transitive (reads, writes), [Oextern] meaning unknown *)
  module_ : Irmod.t;
  degraded : bool;
      (** true when a step budget ran out and the result is the conservative
          top (every query declines, so the stack answers may-alias) *)
}

let pts_of (r : t) v = match VarMap.find_opt r.pts v with Some s -> s | None -> ObjSet.empty

(** Points-to set of a value occurring in function [f]. *)
let pts_of_value (r : t) (f : Func.t) (v : Instr.value) =
  match v with
  | Instr.Reg x -> pts_of r (Vreg (f.Func.fname, x))
  | Instr.Arg k -> pts_of r (Varg (f.Func.fname, k))
  | Instr.Glob g ->
    if Irmod.func_opt r.module_ g <> None then ObjSet.singleton (Ofun g)
    else ObjSet.singleton (Oglob g)
  | Instr.Null | Instr.Cint _ | Instr.Cfloat _ -> ObjSet.empty

(** Fully conservative result: no points-to facts, every function
    summarized as touching unknown memory.  This is what a step-budget
    exhaustion degrades to — the plug-in declines every query, so the
    stack defaults to may-alias and transformations refuse rather than
    miscompile. *)
let conservative (m : Irmod.t) : t =
  let touched = Hashtbl.create 16 in
  let top = ObjSet.singleton Oextern in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace touched f.Func.fname (top, top))
    (Irmod.functions m);
  { pts = VarMap.create 1; touched; module_ = m; degraded = true }

exception Budget_exhausted

(* constraint-extraction helpers shared by both solvers *)

let var_of f = function
  | Instr.Reg x -> Some (Vreg (f, x))
  | Instr.Arg k -> Some (Varg (f, k))
  | _ -> None

let const_objs m = function
  | Instr.Glob g ->
    if Irmod.func_opt m g <> None then ObjSet.singleton (Ofun g)
    else ObjSet.singleton (Oglob g)
  | _ -> ObjSet.empty

(** Mod/ref summary phase, shared by both solvers: per function, direct
    (reads, writes) object sets from the solved points-to facts, then a
    transitive closure over the static callee sets into [r.touched]. *)
let summarize (r : t) : unit =
  let m = r.module_ in
  let direct = Hashtbl.create 16 in
  let callees_of = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.fname in
      let reads = ref ObjSet.empty and writes = ref ObjSet.empty in
      let cs = ref SS.empty in
      Func.iter_insts
        (fun i ->
          match i.Instr.op with
          | Instr.Load p ->
            let s = pts_of_value r f p in
            reads := ObjSet.union !reads (if ObjSet.is_empty s then ObjSet.singleton Oextern else s)
          | Instr.Store (_, p) ->
            let s = pts_of_value r f p in
            writes := ObjSet.union !writes (if ObjSet.is_empty s then ObjSet.singleton Oextern else s)
          | Instr.Call (Instr.Glob g, _) ->
            if List.mem g Alias.ordered_builtins then begin
              (* ordered effects modelled as a pseudo-object so order
                 dependence propagates through defined callees *)
              reads := ObjSet.add ordered_obj !reads;
              writes := ObjSet.add ordered_obj !writes
            end
            else if Irmod.func_opt m g <> None
                    && not (List.mem g Alias.pure_builtins)
                    && g <> "malloc" && g <> "free"
            then cs := SS.add g !cs
            else if Irmod.func_opt m g = None then begin
              (* unknown external: conservative *)
              if not (List.mem g Alias.pure_builtins || g = "malloc" || g = "free") then begin
                reads := ObjSet.add Oextern !reads;
                writes := ObjSet.add Oextern !writes
              end
            end
          | Instr.Call (v, _) -> (
            match pts_of_value r f v with
            | s when ObjSet.is_empty s ->
              reads := ObjSet.add Oextern !reads;
              writes := ObjSet.add Oextern !writes
            | s ->
              ObjSet.iter
                (function
                  | Ofun g -> cs := SS.add g !cs
                  | _ ->
                    reads := ObjSet.add Oextern !reads;
                    writes := ObjSet.add Oextern !writes)
                s)
          | _ -> ())
        f;
      Hashtbl.replace direct fn (!reads, !writes);
      Hashtbl.replace callees_of fn !cs)
    (Irmod.defined_functions m);
  (* transitive closure over the (static) callee sets *)
  let summary = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace summary f.Func.fname (Hashtbl.find direct f.Func.fname))
    (Irmod.defined_functions m);
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fn cs ->
        let r0, w0 = Hashtbl.find summary fn in
        let r', w' =
          SS.fold
            (fun g (ra, wa) ->
              match Hashtbl.find_opt summary g with
              | Some (rg, wg) -> (ObjSet.union ra rg, ObjSet.union wa wg)
              | None -> (ObjSet.add Oextern ra, ObjSet.add Oextern wa))
            cs (r0, w0)
        in
        if not (ObjSet.equal r' r0 && ObjSet.equal w' w0) then begin
          Hashtbl.replace summary fn (r', w');
          changed := true
        end)
      callees_of
  done;
  Hashtbl.iter (fun k v -> Hashtbl.replace r.touched k v) summary

(* ------------------------------------------------------------------ *)
(* Naive solver (differential oracle)                                  *)
(* ------------------------------------------------------------------ *)

(** The original round-based fixpoint over [ObjSet]s.  Quadratic-ish in
    practice (every round re-walks every constraint with full sets); kept
    as the oracle the worklist solver is differentially tested against
    and as the "old path" of the scaling benchmark. *)
let solve_naive ?budget (m : Irmod.t) : t =
  let sp = Trace.begin_span ~cat:"analysis" "andersen.solve_naive" in
  let constraints = ref 0 in
  let rounds = ref 0 in
  let steps = ref 0 in
  let tick () =
    (* every constraint-graph mutation attempt is one solver step *)
    incr constraints;
    match budget with
    | Some b ->
      incr steps;
      if !steps > b then raise Budget_exhausted
    | None -> ()
  in
  let finish r =
    Trace.add "andersen.constraints" !constraints;
    Trace.add "andersen.rounds" !rounds;
    Trace.tag sp "constraints" (string_of_int !constraints);
    Trace.tag sp "rounds" (string_of_int !rounds);
    if r.degraded then begin
      Trace.incr_m "andersen.degraded";
      Trace.tag sp "degraded" "true"
    end;
    Trace.end_span sp;
    r
  in
  try
  let pts : ObjSet.t VarMap.t = VarMap.create 256 in
  let get v = match VarMap.find_opt pts v with Some s -> s | None -> ObjSet.empty in
  let changed = ref true in
  let add v s =
    tick ();
    if not (ObjSet.subset s (get v)) then begin
      VarMap.replace pts v (ObjSet.union s (get v));
      changed := true
    end
  in
  (* copy edges, load/store constraints, call sites *)
  let copies : (var * var, unit) Hashtbl.t = Hashtbl.create 256 in
  let add_copy src dst =
    tick ();
    if not (Hashtbl.mem copies (src, dst)) then begin
      Hashtbl.replace copies (src, dst) ();
      changed := true
    end
  in
  let loads = ref [] (* (ptr var, dst var) *) in
  let stores = ref [] (* (src var option, const objs, ptr var) *) in
  let calls = ref [] (* (caller fname, inst, callee value, args) *) in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.fname in
      Func.iter_insts
        (fun i ->
          let dst = Vreg (fn, i.Instr.id) in
          let flow v =
            (match var_of fn v with
            | Some src -> add_copy src dst
            | None -> ());
            add dst (const_objs m v)
          in
          match i.Instr.op with
          | Instr.Alloca _ -> add dst (ObjSet.singleton (Oalloca (fn, i.Instr.id)))
          | Instr.Gep (p, _) -> flow p
          | Instr.Cast (Instr.Inttoptr, _) -> add dst (ObjSet.singleton Oextern)
          | Instr.Cast (_, v) -> flow v
          | Instr.Phi incs -> List.iter (fun (_, v) -> flow v) incs
          | Instr.Select (_, a, b) -> flow a; flow b
          | Instr.Load p ->
            (match var_of fn p with
            | Some pv -> loads := (pv, dst) :: !loads
            | None -> ObjSet.iter (fun o -> add_copy (Vmem o) dst) (const_objs m p))
          | Instr.Store (v, p) ->
            let src = var_of fn v in
            let cobjs = const_objs m v in
            (match var_of fn p with
            | Some pv -> stores := (src, cobjs, `Var pv) :: !stores
            | None ->
              ObjSet.iter
                (fun o ->
                  (match src with Some s -> add_copy s (Vmem o) | None -> ());
                  add (Vmem o) cobjs)
                (const_objs m p))
          | Instr.Call (Instr.Glob "malloc", _) ->
            add dst (ObjSet.singleton (Omalloc (fn, i.Instr.id)))
          | Instr.Call (callee, args) -> calls := (fn, i, callee, args) :: !calls
          | Instr.Ret (Some v) ->
            (match var_of fn v with Some s -> add_copy s (Vret fn) | None -> ());
            add (Vret fn) (const_objs m v)
          | _ -> ())
        f)
    (Irmod.defined_functions m);
  (* wire a (resolved) call to a concrete callee *)
  let wired = Hashtbl.create 64 in
  let wire caller (i : Instr.inst) callee args =
    let key = (caller, i.Instr.id, callee) in
    if not (Hashtbl.mem wired key) then begin
      Hashtbl.replace wired key ();
      match Irmod.func_opt m callee with
      | Some g when not g.Func.is_declaration ->
        List.iteri
          (fun k v ->
            if k < Array.length g.Func.params then begin
              (match var_of caller v with
              | Some s -> add_copy s (Varg (callee, k))
              | None -> ());
              add (Varg (callee, k)) (const_objs m v)
            end)
          args;
        add_copy (Vret callee) (Vreg (caller, i.Instr.id))
      | _ ->
        (* builtin or declaration: result may point anywhere only if it is
           a pointer-producing unknown; our builtins never return pointers
           except malloc (handled above) *)
        ()
    end
  in
  (* fixpoint *)
  while !changed do
    changed := false;
    incr rounds;
    Hashtbl.iter (fun (src, dst) () -> add dst (get src)) copies;
    List.iter (fun (pv, dst) -> ObjSet.iter (fun o -> add_copy (Vmem o) dst) (get pv)) !loads;
    List.iter
      (fun (src, cobjs, tgt) ->
        match tgt with
        | `Var pv ->
          ObjSet.iter
            (fun o ->
              (match src with Some s -> add_copy s (Vmem o) | None -> ());
              add (Vmem o) cobjs)
            (get pv))
      !stores;
    List.iter
      (fun (caller, i, callee, args) ->
        match callee with
        | Instr.Glob g -> wire caller i g args
        | v -> (
          match var_of caller v with
          | Some cv ->
            ObjSet.iter
              (function Ofun g -> wire caller i g args | _ -> ())
              (get cv)
          | None -> ()))
      !calls
  done;
  let r = { pts; touched = Hashtbl.create 16; module_ = m; degraded = false } in
  summarize r;
  finish r
  with Budget_exhausted -> finish (conservative m)

(* ------------------------------------------------------------------ *)
(* Worklist solver (sparse engine, DESIGN.md §11)                      *)
(* ------------------------------------------------------------------ *)

(** Worklist solver with difference propagation: variables and abstract
    objects are interned to dense ints, each node carries a {!Bitset}
    points-to set plus a *delta* set of not-yet-propagated objects, and
    popping a node pushes only its delta along copy edges / dereference
    attachments.  When a propagation is a no-op between nodes with equal
    sets, lazy cycle detection walks the copy graph and collapses the
    cycle into one union-find representative.  Results are converted back
    to the shared [ObjSet] representation, so downstream consumers (and
    the differential tests against {!solve_naive}) see no difference. *)
let analyze ?budget (m : Irmod.t) : t =
  let sp = Trace.begin_span ~cat:"analysis" "andersen.analyze" in
  let constraints = ref 0 in
  let delta_props = ref 0 in
  let cycles = ref 0 in
  let steps = ref 0 in
  let tick () =
    incr constraints;
    match budget with
    | Some b ->
      incr steps;
      if !steps > b then raise Budget_exhausted
    | None -> ()
  in
  let finish r =
    Trace.touch "andersen.delta_props";
    Trace.touch "andersen.cycles_collapsed";
    Trace.add "andersen.constraints" !constraints;
    Trace.add "andersen.delta_props" !delta_props;
    Trace.add "andersen.cycles_collapsed" !cycles;
    Trace.tag sp "constraints" (string_of_int !constraints);
    Trace.tag sp "delta_props" (string_of_int !delta_props);
    Trace.tag sp "cycles_collapsed" (string_of_int !cycles);
    if r.degraded then begin
      Trace.incr_m "andersen.degraded";
      Trace.tag sp "degraded" "true"
    end;
    Trace.end_span sp;
    r
  in
  try
    (* -- object interning: obj <-> dense int -- *)
    let otab : (obj, int) Hashtbl.t = Hashtbl.create 256 in
    let obj_arr = ref (Array.make 64 Oextern) in
    let nobjs = ref 0 in
    let obj_id o =
      match Hashtbl.find_opt otab o with
      | Some i -> i
      | None ->
        let i = !nobjs in
        if i >= Array.length !obj_arr then begin
          let a = Array.make (2 * Array.length !obj_arr) Oextern in
          Array.blit !obj_arr 0 a 0 i;
          obj_arr := a
        end;
        !obj_arr.(i) <- o;
        Hashtbl.replace otab o i;
        incr nobjs;
        i
    in
    (* -- node state: growable parallel arrays indexed by interned var -- *)
    let cap = ref 256 in
    let pts = ref (Array.init !cap (fun _ -> Bitset.create ())) in
    let dif = ref (Array.init !cap (fun _ -> Bitset.create ())) in
    let csucc = ref (Array.make !cap ([] : int list)) in
    let loads_of = ref (Array.make !cap ([] : int list)) in
    let stores_of = ref (Array.make !cap ([] : (int option * Bitset.t) list)) in
    let calls_of =
      ref (Array.make !cap ([] : (string * Instr.inst * Instr.value list) list))
    in
    let parent = ref (Array.make !cap 0) in
    let inwork = ref (Array.make !cap false) in
    let nnodes = ref 0 in
    let grow () =
      let old = !cap in
      let cap' = 2 * old in
      let extend a mk =
        let b = Array.init cap' (fun i -> if i < old then a.(i) else mk i) in
        b
      in
      pts := extend !pts (fun _ -> Bitset.create ());
      dif := extend !dif (fun _ -> Bitset.create ());
      csucc := extend !csucc (fun _ -> []);
      loads_of := extend !loads_of (fun _ -> []);
      stores_of := extend !stores_of (fun _ -> []);
      calls_of := extend !calls_of (fun _ -> []);
      parent := extend !parent (fun i -> i);
      inwork := extend !inwork (fun _ -> false);
      cap := cap'
    in
    let vtab : int VarMap.t = VarMap.create 256 in
    let node_of (v : var) =
      match VarMap.find_opt vtab v with
      | Some n -> n
      | None ->
        let n = !nnodes in
        if n >= !cap then grow ();
        !parent.(n) <- n;
        VarMap.replace vtab v n;
        incr nnodes;
        n
    in
    let rec find n =
      let p = !parent.(n) in
      if p = n then n
      else begin
        let r = find p in
        !parent.(n) <- r;
        r
      end
    in
    let vmem_node o = node_of (Vmem !obj_arr.(o)) in
    let work : int Queue.t = Queue.create () in
    let push n =
      let n = find n in
      if not !inwork.(n) then begin
        !inwork.(n) <- true;
        Queue.add n work
      end
    in
    (* seed one object / a set of objects into a node's points-to set *)
    let add_obj n oid =
      tick ();
      let n = find n in
      if Bitset.add !pts.(n) oid then begin
        ignore (Bitset.add !dif.(n) oid);
        push n
      end
    in
    let add_objs n (s : Bitset.t) =
      if not (Bitset.is_empty s) then begin
        tick ();
        let n = find n in
        let added = Bitset.union_into ~track:!dif.(n) ~into:!pts.(n) s in
        if added > 0 then begin
          delta_props := !delta_props + added;
          push n
        end
      end
    in
    let bits_of_objset (s : ObjSet.t) =
      let b = Bitset.create () in
      ObjSet.iter (fun o -> ignore (Bitset.add b (obj_id o))) s;
      b
    in
    (* copy edge src -> dst: dedup'd on original node ids; on creation the
       source's *current* set flows immediately, future objects arrive via
       delta propagation *)
    let copies : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
    let add_copy src dst =
      tick ();
      if not (Hashtbl.mem copies (src, dst)) then begin
        Hashtbl.replace copies (src, dst) ();
        let s = find src and d = find dst in
        if s <> d then begin
          !csucc.(s) <- d :: !csucc.(s);
          let added = Bitset.union_into ~track:!dif.(d) ~into:!pts.(d) !pts.(s) in
          if added > 0 then begin
            delta_props := !delta_props + added;
            push d
          end
        end
      end
    in
    let add_objset n s = add_objs n (bits_of_objset s) in
    (* indirect/direct call wiring, dedup'd per (caller, site, callee) *)
    let wired = Hashtbl.create 64 in
    let wire caller (i : Instr.inst) callee args =
      let key = (caller, i.Instr.id, callee) in
      if not (Hashtbl.mem wired key) then begin
        Hashtbl.replace wired key ();
        match Irmod.func_opt m callee with
        | Some g when not g.Func.is_declaration ->
          List.iteri
            (fun k v ->
              if k < Array.length g.Func.params then begin
                let an = node_of (Varg (callee, k)) in
                (match var_of caller v with
                | Some s -> add_copy (node_of s) an
                | None -> ());
                add_objset an (const_objs m v)
              end)
            args;
          add_copy (node_of (Vret callee)) (node_of (Vreg (caller, i.Instr.id)))
        | _ -> ()
      end
    in
    (* collapse the copy cycle through [target] confirmed by a path
       [start] ->* [target]; every node on the path joins [target]'s
       union-find class, and the representative reprocesses its full set
       so absorbed attachments and successors see every object *)
    let merge_into target u =
      let u = find u and target = find target in
      if u <> target then begin
        !parent.(u) <- target;
        ignore (Bitset.union_into ~into:!pts.(target) !pts.(u));
        !csucc.(target) <- List.rev_append !csucc.(u) !csucc.(target);
        !loads_of.(target) <- List.rev_append !loads_of.(u) !loads_of.(target);
        !stores_of.(target) <- List.rev_append !stores_of.(u) !stores_of.(target);
        !calls_of.(target) <- List.rev_append !calls_of.(u) !calls_of.(target);
        incr cycles
      end
    in
    let collapse_cycle target start =
      let visited = Hashtbl.create 16 in
      let rec dfs cur acc =
        if Hashtbl.mem visited cur then None
        else begin
          Hashtbl.replace visited cur ();
          let rec try_succs = function
            | [] -> None
            | x :: rest -> (
              let x = find x in
              if x = target then Some (cur :: acc)
              else
                match dfs x (cur :: acc) with
                | Some p -> Some p
                | None -> try_succs rest)
          in
          try_succs !csucc.(cur)
        end
      in
      match dfs (find start) [] with
      | None -> ()
      | Some cycle_nodes ->
        List.iter (fun u -> merge_into target u) cycle_nodes;
        !dif.(target) <- Bitset.copy !pts.(target);
        push target
    in
    (* -- constraint extraction (direct calls wired eagerly; loads, stores
          and indirect calls attach to their pointer node and fire as
          objects reach it) -- *)
    List.iter
      (fun (f : Func.t) ->
        let fn = f.Func.fname in
        Func.iter_insts
          (fun i ->
            let dst = node_of (Vreg (fn, i.Instr.id)) in
            let flow v =
              (match var_of fn v with
              | Some src -> add_copy (node_of src) dst
              | None -> ());
              add_objset dst (const_objs m v)
            in
            match i.Instr.op with
            | Instr.Alloca _ -> add_obj dst (obj_id (Oalloca (fn, i.Instr.id)))
            | Instr.Gep (p, _) -> flow p
            | Instr.Cast (Instr.Inttoptr, _) -> add_obj dst (obj_id Oextern)
            | Instr.Cast (_, v) -> flow v
            | Instr.Phi incs -> List.iter (fun (_, v) -> flow v) incs
            | Instr.Select (_, a, b) ->
              flow a;
              flow b
            | Instr.Load p -> (
              match var_of fn p with
              | Some pv ->
                let pn = find (node_of pv) in
                !loads_of.(pn) <- dst :: !loads_of.(pn)
              | None ->
                ObjSet.iter
                  (fun o -> add_copy (vmem_node (obj_id o)) dst)
                  (const_objs m p))
            | Instr.Store (v, p) -> (
              let src = Option.map (fun s -> node_of s) (var_of fn v) in
              let cobjs = bits_of_objset (const_objs m v) in
              match var_of fn p with
              | Some pv ->
                let pn = find (node_of pv) in
                !stores_of.(pn) <- (src, cobjs) :: !stores_of.(pn)
              | None ->
                ObjSet.iter
                  (fun o ->
                    let mn = vmem_node (obj_id o) in
                    (match src with Some s -> add_copy s mn | None -> ());
                    add_objs mn cobjs)
                  (const_objs m p))
            | Instr.Call (Instr.Glob "malloc", _) ->
              add_obj dst (obj_id (Omalloc (fn, i.Instr.id)))
            | Instr.Call (Instr.Glob g, args) -> wire fn i g args
            | Instr.Call (v, args) -> (
              match var_of fn v with
              | Some cv ->
                let cn = find (node_of cv) in
                !calls_of.(cn) <- (fn, i, args) :: !calls_of.(cn)
              | None -> ())
            | Instr.Ret (Some v) ->
              let rn = node_of (Vret fn) in
              (match var_of fn v with
              | Some s -> add_copy (node_of s) rn
              | None -> ());
              add_objset rn (const_objs m v)
            | _ -> ())
          f)
      (Irmod.defined_functions m);
    (* -- worklist: pop a node, push its delta through attachments and
          copy successors -- *)
    let lcd_done : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    while not (Queue.is_empty work) do
      let n0 = Queue.pop work in
      let n = find n0 in
      if n <> n0 then !inwork.(n0) <- false
      else begin
        !inwork.(n) <- false;
        let d = !dif.(n) in
        if not (Bitset.is_empty d) then begin
          !dif.(n) <- Bitset.create ();
          (* dereference attachments on the new objects *)
          if !loads_of.(n) <> [] || !stores_of.(n) <> [] || !calls_of.(n) <> []
          then
            Bitset.iter
              (fun o ->
                List.iter (fun ldst -> add_copy (vmem_node o) ldst) !loads_of.(n);
                List.iter
                  (fun (src, cobjs) ->
                    let mn = vmem_node o in
                    (match src with Some s -> add_copy s mn | None -> ());
                    add_objs mn cobjs)
                  !stores_of.(n);
                match !obj_arr.(o) with
                | Ofun g ->
                  List.iter
                    (fun (caller, i, args) -> wire caller i g args)
                    !calls_of.(n)
                | _ -> ())
              d;
          (* difference propagation along copy successors, with lazy
             cycle detection on saturated edges *)
          List.iter
            (fun s0 ->
              let s = find s0 in
              if s <> n then begin
                tick ();
                let added = Bitset.union_into ~track:!dif.(s) ~into:!pts.(s) d in
                if added > 0 then begin
                  delta_props := !delta_props + added;
                  push s
                end
                else if
                  (not (Bitset.is_empty !pts.(n)))
                  && Bitset.equal !pts.(n) !pts.(s)
                  && not (Hashtbl.mem lcd_done (n, s))
                then begin
                  Hashtbl.replace lcd_done (n, s) ();
                  collapse_cycle n s
                end
              end)
            !csucc.(n)
        end
      end
    done;
    (* -- convert the dense solution back to the shared representation -- *)
    let ptsmap : ObjSet.t VarMap.t = VarMap.create 256 in
    VarMap.iter
      (fun v n ->
        let s = !pts.(find n) in
        if not (Bitset.is_empty s) then
          VarMap.replace ptsmap v
            (Bitset.fold (fun o acc -> ObjSet.add !obj_arr.(o) acc) s ObjSet.empty))
      vtab;
    let r = { pts = ptsmap; touched = Hashtbl.create 16; module_ = m; degraded = false } in
    summarize r;
    finish r
  with Budget_exhausted -> finish (conservative m)

(* ------------------------------------------------------------------ *)
(* Solution rendering and fingerprinting                               *)
(* ------------------------------------------------------------------ *)

(** The solution as sorted "var -> {objs}" lines (non-empty bindings
    only) — the canonical form the differential tests compare. *)
let dump_pts (r : t) : string list =
  VarMap.fold
    (fun v s acc ->
      if ObjSet.is_empty s then acc
      else (var_to_string v ^ " -> " ^ objset_to_string s) :: acc)
    r.pts []
  |> List.sort compare

(** Mod/ref summaries as sorted lines. *)
let dump_touched (r : t) : string list =
  Hashtbl.fold
    (fun fn (rd, wr) acc ->
      Printf.sprintf "%s reads %s writes %s" fn (objset_to_string rd)
        (objset_to_string wr)
      :: acc)
    r.touched []
  |> List.sort compare

(** Deterministic fingerprint of the whole solution (points-to bindings,
    mod/ref summaries, degradation flag) — the stamp the {!Noelle}
    manager keys incremental invalidation on: a cached PDG computed under
    an equal solution fingerprint is still exact. *)
let solution_fp (r : t) : string =
  let st = List.fold_left Fingerprint.feed Fingerprint.seed (dump_pts r) in
  let st = List.fold_left Fingerprint.feed st (dump_touched r) in
  let st = Fingerprint.feed st (if r.degraded then "degraded" else "ok") in
  Fingerprint.to_hex st

(* ------------------------------------------------------------------ *)
(* Alias-stack plug-in                                                 *)
(* ------------------------------------------------------------------ *)

(** Abstract objects a pointer value may point to, treating empty as "no
    information" and [Oextern] as "anything". *)
let objs_of (r : t) f v =
  let s = pts_of_value r f v in
  (* values derived through geps carry the base's set: walk up if empty *)
  if not (ObjSet.is_empty s) then s
  else
    match v with
    | Instr.Reg x -> (
      match Func.inst_opt f x with
      | Some { Instr.op = Instr.Gep (p, _); _ } -> pts_of_value r f p
      | _ -> s)
    | _ -> s

let mk_alias (r : t) : Irmod.t -> Func.t -> Instr.value -> Instr.value -> Alias.result option =
 fun _m f p1 p2 ->
  if r.degraded then None
  else
  let s1 = objs_of r f p1 and s2 = objs_of r f p2 in
  if ObjSet.is_empty s1 || ObjSet.is_empty s2 then None
  else if ObjSet.mem Oextern s1 || ObjSet.mem Oextern s2 then None
  else if ObjSet.is_empty (ObjSet.inter s1 s2) then Some Alias.No_alias
  else None

(** (reads, writes) object sets of a call instruction. *)
let call_touched (r : t) (f : Func.t) (call : Instr.inst) =
  match call.Instr.op with
  | Instr.Call (Instr.Glob g, _) -> (
    if List.mem g Alias.pure_builtins || g = "malloc" || g = "free" then
      Some (ObjSet.empty, ObjSet.empty)
    else if List.mem g Alias.ordered_builtins then
      Some (ObjSet.singleton ordered_obj, ObjSet.singleton ordered_obj)
    else
      match Hashtbl.find_opt r.touched g with
      | Some s -> Some s
      | None -> None)
  | Instr.Call (v, _) -> (
    let s = pts_of_value r f v in
    if ObjSet.is_empty s || ObjSet.mem Oextern s then None
    else
      ObjSet.fold
        (fun o acc ->
          match (o, acc) with
          | Ofun g, Some (ra, wa) -> (
            match Hashtbl.find_opt r.touched g with
            | Some (rg, wg) -> Some (ObjSet.union ra rg, ObjSet.union wa wg)
            | None -> None)
          | _ -> None)
        s
        (Some (ObjSet.empty, ObjSet.empty)))
  | _ -> None

let mk_call_may_touch (r : t) =
 fun _m f (call : Instr.inst) ptr ->
  if r.degraded then None
  else
  match call_touched r f call with
  | None -> None
  | Some (reads, writes) ->
    if ObjSet.mem Oextern reads || ObjSet.mem Oextern writes then None
    else
      let p = objs_of r f ptr in
      if ObjSet.is_empty p || ObjSet.mem Oextern p then None
      else
        Some
          (not
             (ObjSet.is_empty (ObjSet.inter p reads)
             && ObjSet.is_empty (ObjSet.inter p writes)))

let mk_calls_may_conflict (r : t) =
 fun _m f c1 c2 ->
  if r.degraded then None
  else
  match (call_touched r f c1, call_touched r f c2) with
  | Some (r1, w1), Some (r2, w2) ->
    if List.exists (ObjSet.mem Oextern) [ r1; w1; r2; w2 ] then None
    else
      let inter a b = not (ObjSet.is_empty (ObjSet.inter a b)) in
      Some (inter w1 r2 || inter w1 w2 || inter w2 r1)
  | _ -> None

(** Package the analysis for the {!Alias} stack. *)
let analysis (r : t) : Alias.analysis =
  {
    Alias.aname = "andersen";
    alias = mk_alias r;
    call_may_touch = mk_call_may_touch r;
    calls_may_conflict = mk_calls_may_conflict r;
  }

(** The full NOELLE alias stack for a module: baseline + Andersen. *)
let noelle_stack (m : Irmod.t) : Alias.stack = [ Alias.baseline; analysis (analyze m) ]

(** The LLVM-equivalent baseline stack. *)
let baseline_stack : Alias.stack = [ Alias.baseline ]
