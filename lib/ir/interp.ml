(** IR interpreter.

    Executes a module with a word-granularity memory model.  The interpreter
    is the substrate that replaces native execution in this reproduction:
    NOELLE's profilers ({!Noelle.Profiler} in [lib/core]) hook instruction /
    block / call / memory events; the parallel runtime ([lib/psim]) registers
    extra builtins (queues, signals, task spawning) and drives task functions
    as effect-based fibers with per-core virtual clocks; CARAT and COOS
    register their runtime entry points the same way.

    Addresses are plain integers (words).  Address 0 is the null pointer and
    never allocated.  Every allocation (global, alloca, malloc) is recorded
    in an allocation table so that guard runtimes can validate accesses. *)

type v = VI of int64 | VF of float | VP of int

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let v_to_string = function
  | VI n -> Int64.to_string n
  | VF f -> Printf.sprintf "%.6g" f
  | VP p -> Printf.sprintf "&%d" p

type alloc = { base : int; size : int; mutable alive : bool }

type hooks = {
  mutable on_block : (Func.t -> int -> unit) option;
      (** called when control enters a basic block *)
  mutable on_inst : (Func.t -> Instr.inst -> unit) option;
      (** called before each executed instruction *)
  mutable on_call : (caller:string -> callee:string -> unit) option;
      (** called for every direct/indirect/builtin call *)
  mutable on_mem : (Func.t -> Instr.inst -> addr:int -> write:bool -> unit) option;
      (** called for every load/store with its resolved address *)
  mutable on_builtin : (string -> v list -> unit) option;
      (** called before a builtin executes, with its evaluated arguments;
          the observable-event layer ({!Obs}) records external calls here *)
  mutable on_alloc : (base:int -> size:int -> unit) option;
      (** called after every allocation (global, alloca, malloc) *)
  mutable on_store : (Func.t -> Instr.inst -> addr:int -> value:v -> unit) option;
      (** called before a store commits, with the value being written *)
}

type state = {
  m : Irmod.t;
  mutable mem : v array;
  mutable brk : int;                       (** bump pointer: next free word *)
  allocs : (int, alloc) Hashtbl.t;         (** base address -> allocation *)
  global_addr : (string, int) Hashtbl.t;
  fun_addr : (string, int) Hashtbl.t;
  addr_fun : (int, string) Hashtbl.t;
  output : Buffer.t;                       (** text written by print builtins *)
  mutable steps : int;                     (** executed instructions (global) *)
  mutable fuel : int;                      (** remaining instruction budget *)
  mutable clock : int64;                   (** per-task virtual cycles (swappable) *)
  hooks : hooks;
  builtins : (string, builtin) Hashtbl.t;
  mutable rng : int64;                     (** state of the default rand() *)
  user : (string, int64) Hashtbl.t;        (** scratch counters for tool runtimes *)
}

and builtin = state -> v list -> v

(* function addresses live far above data so they can never collide *)
let fun_addr_base = 1 lsl 40

let ensure_capacity st n =
  let cap = Array.length st.mem in
  if n > cap then begin
    let ncap = max (2 * cap) (n + 1024) in
    let nm = Array.make ncap (VI 0L) in
    Array.blit st.mem 0 nm 0 cap;
    st.mem <- nm
  end

(** Allocate [size] words; returns the base address. *)
let allocate st size =
  if size < 0 then trap "negative allocation size %d" size;
  let base = st.brk in
  st.brk <- st.brk + max size 1;
  ensure_capacity st st.brk;
  Hashtbl.replace st.allocs base { base; size; alive = true };
  (match st.hooks.on_alloc with Some h -> h ~base ~size | None -> ());
  base

let load_word st addr =
  if addr <= 0 || addr >= st.brk then trap "load from invalid address %d" addr;
  st.mem.(addr)

let store_word st addr v =
  if addr <= 0 || addr >= st.brk then trap "store to invalid address %d" addr;
  st.mem.(addr) <- v

(** Does [addr] fall inside a live allocation?  Used by the CARAT runtime. *)
let addr_is_guarded_valid st addr =
  (* linear scan over allocations is fine at our scale; allocations are
     keyed by base so find the one covering addr *)
  Hashtbl.fold
    (fun _ a ok -> ok || (a.alive && addr >= a.base && addr < a.base + a.size))
    st.allocs false

let as_int = function
  | VI n -> n
  | VP p -> Int64.of_int p
  | VF f -> trap "expected integer, got float %g" f

let as_float = function
  | VF f -> f
  | VI n -> trap "expected float, got int %Ld" n
  | VP p -> trap "expected float, got pointer %d" p

let as_ptr = function
  | VP p -> p
  | VI n -> Int64.to_int n
  | VF f -> trap "expected pointer, got float %g" f

(* ------------------------------------------------------------------ *)
(* Default builtins                                                    *)
(* ------------------------------------------------------------------ *)

let default_builtins () : (string * builtin) list =
  let b1f name fn : string * builtin =
    (name, fun _ args ->
      match args with
      | [ a ] -> VF (fn (as_float a))
      | _ -> trap "%s: expected 1 argument" name)
  in
  [
    ("print",
     fun st args ->
       (match args with
       | [ a ] -> Buffer.add_string st.output (v_to_string a ^ "\n")
       | _ -> trap "print: expected 1 argument");
       VI 0L);
    ("print_float",
     fun st args ->
       (match args with
       | [ a ] -> Buffer.add_string st.output (Printf.sprintf "%.6f\n" (as_float a))
       | _ -> trap "print_float: expected 1 argument");
       VI 0L);
    ("malloc",
     fun st args ->
       match args with
       | [ n ] -> VP (allocate st (Int64.to_int (as_int n)))
       | _ -> trap "malloc: expected 1 argument");
    ("free",
     fun st args ->
       (match args with
       | [ p ] -> (
         let base = as_ptr p in
         match Hashtbl.find_opt st.allocs base with
         | Some a -> a.alive <- false
         | None -> trap "free: %d is not an allocation base" base)
       | _ -> trap "free: expected 1 argument");
       VI 0L);
    ("srand",
     fun st args ->
       (match args with
       | [ s ] -> st.rng <- as_int s
       | _ -> trap "srand: expected 1 argument");
       VI 0L);
    ("rand",
     fun st args ->
       (match args with [] -> () | _ -> trap "rand: expected no arguments");
       (* deterministic 64-bit LCG (MMIX constants), truncated to 31 bits *)
       st.rng <-
         Int64.add (Int64.mul st.rng 6364136223846793005L) 1442695040888963407L;
       VI (Int64.logand (Int64.shift_right_logical st.rng 33) 0x7fffffffL));
    ("clock",
     fun st args ->
       (match args with [] -> () | _ -> trap "clock: expected no arguments");
       VI (Int64.of_int st.steps));
    b1f "sqrt" sqrt;
    b1f "exp" exp;
    b1f "log" log;
    b1f "sin" sin;
    b1f "cos" cos;
    b1f "fabs" Float.abs;
    b1f "floor" Float.floor;
    ("pow",
     fun _ args ->
       match args with
       | [ a; b ] -> VF (Float.pow (as_float a) (as_float b))
       | _ -> trap "pow: expected 2 arguments");
    ("i64_min",
     fun _ args ->
       match args with
       | [ a; b ] -> VI (Int64.min (as_int a) (as_int b))
       | _ -> trap "i64_min: expected 2 arguments");
    ("i64_max",
     fun _ args ->
       match args with
       | [ a; b ] -> VI (Int64.max (as_int a) (as_int b))
       | _ -> trap "i64_max: expected 2 arguments");
  ]

(* ------------------------------------------------------------------ *)
(* State construction                                                  *)
(* ------------------------------------------------------------------ *)

(** Create an execution state for module [m]: allocates and initializes
    globals, assigns function addresses, installs default builtins. *)
let create (m : Irmod.t) : state =
  let st =
    {
      m;
      mem = Array.make 4096 (VI 0L);
      brk = 16;
      allocs = Hashtbl.create 64;
      global_addr = Hashtbl.create 16;
      fun_addr = Hashtbl.create 16;
      addr_fun = Hashtbl.create 16;
      output = Buffer.create 256;
      steps = 0;
      fuel = 200_000_000;
      clock = 0L;
      hooks =
        {
          on_block = None;
          on_inst = None;
          on_call = None;
          on_mem = None;
          on_builtin = None;
          on_alloc = None;
          on_store = None;
        };
      builtins = Hashtbl.create 16;
      rng = 88172645463325252L;
      user = Hashtbl.create 8;
    }
  in
  List.iter (fun (n, f) -> Hashtbl.replace st.builtins n f) (default_builtins ());
  List.iter
    (fun (g : Irmod.global) ->
      let base = allocate st g.size in
      Hashtbl.replace st.global_addr g.gname base;
      match g.init with
      | None -> ()
      | Some vs ->
        Array.iteri
          (fun i v ->
            if i < g.size then
              st.mem.(base + i) <-
                (match v with
                | Instr.Cint n -> VI n
                | Instr.Cfloat f -> VF f
                | Instr.Null -> VP 0
                | _ -> trap "global %s: non-constant initializer" g.gname))
          vs)
    (Irmod.globals m);
  List.iteri
    (fun i f ->
      let addr = fun_addr_base + i in
      Hashtbl.replace st.fun_addr f.Func.fname addr;
      Hashtbl.replace st.addr_fun addr f.Func.fname)
    (Irmod.functions m);
  st

let register_builtin st name fn = Hashtbl.replace st.builtins name fn

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let shift_mask n = Int64.to_int (Int64.logand n 63L)

let eval_bin op a b =
  let open Instr in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Sdiv -> if Int64.equal b 0L then trap "division by zero" else Int64.div a b
  | Srem -> if Int64.equal b 0L then trap "remainder by zero" else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (shift_mask b)
  | Ashr -> Int64.shift_right a (shift_mask b)

let eval_fbin op a b =
  let open Instr in
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

let eval_cmp (cmp : Instr.cmp) c =
  match cmp with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Slt -> c < 0
  | Sle -> c <= 0
  | Sgt -> c > 0
  | Sge -> c >= 0

(** Call the function named [fname] with [args].  Returns its return value
    ([VI 0L] for void).  Builtins, defined functions and declarations that
    resolve to builtins are all accepted. *)
let rec call (st : state) (fname : string) (args : v list) : v =
  match Hashtbl.find_opt st.builtins fname with
  | Some b ->
    (match st.hooks.on_builtin with Some h -> h fname args | None -> ());
    b st args
  | None -> (
    match Irmod.func_opt st.m fname with
    | Some f when not f.Func.is_declaration -> exec_func st f (Array.of_list args)
    | Some _ -> trap "call to declaration %s with no builtin" fname
    | None -> trap "call to unknown function %s" fname)

and exec_func (st : state) (f : Func.t) (args : v array) : v =
  if Array.length args <> Array.length f.Func.params then
    trap "%s: expected %d arguments, got %d" f.Func.fname
      (Array.length f.Func.params) (Array.length args);
  (* rollback reports need actionable traps: re-raise with the faulting
     function/block/instruction attached (calls excepted — the callee frame
     already annotated, and builtin messages keep their own prefix) *)
  let ctx_trap (i : Instr.inst) msg =
    let lbl =
      match Hashtbl.find_opt f.Func.blks i.Instr.parent with
      | Some b -> b.Func.label
      | None -> "?"
    in
    trap "%s/%s: inst %d: %s" f.Func.fname lbl i.Instr.id msg
  in
  let regs : (int, v) Hashtbl.t = Hashtbl.create 64 in
  let frame_allocs = ref [] in
  let eval = function
    | Instr.Cint n -> VI n
    | Instr.Cfloat x -> VF x
    | Instr.Null -> VP 0
    | Instr.Arg i -> args.(i)
    | Instr.Reg r -> (
      match Hashtbl.find_opt regs r with
      | Some v -> v
      | None -> trap "%s: register %%%d read before definition" f.Func.fname r)
    | Instr.Glob g -> (
      match Hashtbl.find_opt st.global_addr g with
      | Some a -> VP a
      | None -> (
        match Hashtbl.find_opt st.fun_addr g with
        | Some a -> VP a
        | None -> trap "%s: unknown global @%s" f.Func.fname g))
  in
  let result = ref (VI 0L) in
  let finished = ref false in
  let cur = ref (Func.entry f) in
  let prev = ref (-1) in
  while not !finished do
    (match st.hooks.on_block with Some h -> h f !cur | None -> ());
    let insts = Func.insts_of_block f !cur in
    (* phis evaluate atomically against the incoming edge *)
    let phis, rest =
      List.partition (fun i -> match i.Instr.op with Instr.Phi _ -> true | _ -> false) insts
    in
    let phi_vals =
      List.map
        (fun (i : Instr.inst) ->
          match i.Instr.op with
          | Instr.Phi incs -> (
            match List.assoc_opt !prev incs with
            | Some v -> (
              try (i.Instr.id, eval v) with Trap msg -> ctx_trap i msg)
            | None ->
              ctx_trap i
                (Printf.sprintf "phi %%%d has no incoming value for block %d"
                   i.Instr.id !prev))
          | _ -> assert false)
        phis
    in
    List.iter
      (fun (i : Instr.inst) ->
        st.steps <- st.steps + 1;
        st.clock <- Int64.add st.clock 1L;
        match st.hooks.on_inst with Some h -> h f i | None -> ())
      phis;
    List.iter (fun (id, v) -> Hashtbl.replace regs id v) phi_vals;
    let terminated = ref false in
    List.iter
      (fun (i : Instr.inst) ->
        if not !terminated then begin
          st.steps <- st.steps + 1;
          st.clock <- Int64.add st.clock 1L;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then ctx_trap i "out of fuel (infinite loop?)";
          (match st.hooks.on_inst with Some h -> h f i | None -> ());
          let exec () =
            match i.Instr.op with
          | Instr.Bin (op, a, b) ->
            Hashtbl.replace regs i.Instr.id (VI (eval_bin op (as_int (eval a)) (as_int (eval b))))
          | Instr.Fbin (op, a, b) ->
            Hashtbl.replace regs i.Instr.id
              (VF (eval_fbin op (as_float (eval a)) (as_float (eval b))))
          | Instr.Icmp (c, a, b) ->
            let x = as_int (eval a) and y = as_int (eval b) in
            Hashtbl.replace regs i.Instr.id
              (VI (if eval_cmp c (Int64.compare x y) then 1L else 0L))
          | Instr.Fcmp (c, a, b) ->
            let x = as_float (eval a) and y = as_float (eval b) in
            Hashtbl.replace regs i.Instr.id
              (VI (if eval_cmp c (Float.compare x y) then 1L else 0L))
          | Instr.Cast (k, a) ->
            let v = eval a in
            Hashtbl.replace regs i.Instr.id
              (match k with
              | Instr.Sitofp -> VF (Int64.to_float (as_int v))
              | Instr.Fptosi -> VI (Int64.of_float (as_float v))
              | Instr.Ptrtoint -> VI (Int64.of_int (as_ptr v))
              | Instr.Inttoptr -> VP (Int64.to_int (as_int v)))
          | Instr.Alloca n ->
            let base = allocate st (Int64.to_int (as_int (eval n))) in
            frame_allocs := base :: !frame_allocs;
            Hashtbl.replace regs i.Instr.id (VP base)
          | Instr.Load p ->
            let addr = as_ptr (eval p) in
            (match st.hooks.on_mem with Some h -> h f i ~addr ~write:false | None -> ());
            Hashtbl.replace regs i.Instr.id (load_word st addr)
          | Instr.Store (x, p) ->
            let addr = as_ptr (eval p) in
            (match st.hooks.on_mem with Some h -> h f i ~addr ~write:true | None -> ());
            let v = eval x in
            (match st.hooks.on_store with Some h -> h f i ~addr ~value:v | None -> ());
            store_word st addr v
          | Instr.Gep (p, idx) ->
            Hashtbl.replace regs i.Instr.id
              (VP (as_ptr (eval p) + Int64.to_int (as_int (eval idx))))
          | Instr.Call (callee, cargs) ->
            let name =
              match callee with
              | Instr.Glob g -> g
              | v -> (
                let addr = as_ptr (eval v) in
                match Hashtbl.find_opt st.addr_fun addr with
                | Some n -> n
                | None -> trap "%s: indirect call to non-function address %d" f.Func.fname addr)
            in
            (match st.hooks.on_call with
            | Some h -> h ~caller:f.Func.fname ~callee:name
            | None -> ());
            let r = call st name (List.map eval cargs) in
            if not (Ty.equal i.Instr.ty Ty.Void) then Hashtbl.replace regs i.Instr.id r
          | Instr.Phi _ -> ()  (* handled above *)
          | Instr.Select (c, a, b) ->
            Hashtbl.replace regs i.Instr.id
              (if Int64.equal (as_int (eval c)) 0L then eval b else eval a)
          | Instr.Br b ->
            prev := !cur; cur := b; terminated := true
          | Instr.Cbr (c, t, e) ->
            prev := !cur;
            cur := (if Int64.equal (as_int (eval c)) 0L then e else t);
            terminated := true
          | Instr.Ret vo ->
            result := (match vo with Some v -> eval v | None -> VI 0L);
            finished := true;
            terminated := true
            | Instr.Unreachable -> trap "reached unreachable"
          in
          match i.Instr.op with
          | Instr.Call _ -> exec ()
          | _ -> ( try exec () with Trap msg -> ctx_trap i msg)
        end)
      rest
  done;
  (* free frame allocas *)
  List.iter
    (fun base ->
      match Hashtbl.find_opt st.allocs base with
      | Some a -> a.alive <- false
      | None -> ())
    !frame_allocs;
  !result

(** Run [main] (or [entry]) with integer arguments; returns (exit value,
    program output). *)
let run ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) =
  let st = create m in
  (match fuel with Some f -> st.fuel <- f | None -> ());
  let r = call st entry (List.map (fun n -> VI (Int64.of_int n)) args) in
  Trace.incr_m "interp.runs";
  Trace.add "interp.steps" st.steps;
  (r, Buffer.contents st.output)

(** Like {!run} but returns the full state for inspection. *)
let run_state ?(entry = "main") ?(args = []) ?fuel ?(configure = fun (_ : state) -> ()) (m : Irmod.t) =
  let st = create m in
  (match fuel with Some f -> st.fuel <- f | None -> ());
  configure st;
  let r = call st entry (List.map (fun n -> VI (Int64.of_int n)) args) in
  Trace.incr_m "interp.runs";
  Trace.add "interp.steps" st.steps;
  (r, st)
