(** Scalar evolution (affine form relative to a loop phi).

    NOELLE ships its own scalar-evolution abstraction (§2.2 "Other
    abstractions") because LLVM's is tied to function-pass lifetimes.  We
    provide affine forms [base + scale*phi + offset] where [base] is a value
    invariant in the loop and [phi] is a chosen header phi (usually the
    governing induction variable).  The PDG loop refinement uses this to
    classify memory dependences as intra-iteration (distance 0) rather than
    loop-carried, which is what makes DOALL applicable to array kernels. *)

type affine = {
  base : Instr.value option;  (** invariant symbolic base ([None] = 0) *)
  scale : int64;              (** multiplier of the reference phi *)
  offset : int64;             (** constant addend *)
}

let const c = { base = None; scale = 0L; offset = c }

(** Is [v] invariant with respect to loop [l] in [f] (defined outside the
    loop, a constant, an argument, or a global address)? *)
let is_invariant_value (f : Func.t) (l : Loopnest.loop) (v : Instr.value) =
  match v with
  | Instr.Cint _ | Instr.Cfloat _ | Instr.Null | Instr.Arg _ | Instr.Glob _ -> true
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | Some i -> not (Loopnest.contains l i.Instr.parent)
    | None -> false)

(** Affine form of integer/pointer value [v] with respect to [iv_phi] (the
    id of a header phi of [l]).  [None] when not affine. *)
let rec affine_of_rec (f : Func.t) (l : Loopnest.loop) ~(iv_phi : int) (v : Instr.value) :
    affine option =
  match v with
  | Instr.Cint c -> Some (const c)
  | Instr.Null -> Some (const 0L)
  | _ when is_invariant_value f l v -> Some { base = Some v; scale = 0L; offset = 0L }
  | Instr.Reg r when r = iv_phi -> Some { base = None; scale = 1L; offset = 0L }
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | None -> None
    | Some i -> (
      let recur = affine_of_rec f l ~iv_phi in
      match i.Instr.op with
      | Instr.Bin (Instr.Add, a, b) -> (
        match (recur a, recur b) with
        | Some x, Some y when x.base = None || y.base = None ->
          Some
            {
              base = (if x.base = None then y.base else x.base);
              scale = Int64.add x.scale y.scale;
              offset = Int64.add x.offset y.offset;
            }
        | _ -> None)
      | Instr.Bin (Instr.Sub, a, b) -> (
        match (recur a, recur b) with
        | Some x, Some y when y.base = None ->
          Some
            {
              base = x.base;
              scale = Int64.sub x.scale y.scale;
              offset = Int64.sub x.offset y.offset;
            }
        | _ -> None)
      | Instr.Bin (Instr.Mul, a, b) -> (
        match (recur a, recur b) with
        | Some x, Some { base = None; scale = 0L; offset = c }
          when x.base = None ->
          Some { base = None; scale = Int64.mul x.scale c; offset = Int64.mul x.offset c }
        | Some { base = None; scale = 0L; offset = c }, Some y when y.base = None ->
          Some { base = None; scale = Int64.mul y.scale c; offset = Int64.mul y.offset c }
        | _ -> None)
      | Instr.Bin (Instr.Shl, a, Instr.Cint c) when c >= 0L && c < 62L -> (
        match recur a with
        | Some x when x.base = None ->
          let m = Int64.shift_left 1L (Int64.to_int c) in
          Some { base = None; scale = Int64.mul x.scale m; offset = Int64.mul x.offset m }
        | _ -> None)
      | Instr.Gep (p, idx) -> (
        match (recur p, recur idx) with
        | Some x, Some y when y.base = None ->
          Some
            {
              base = x.base;
              scale = Int64.add x.scale y.scale;
              offset = Int64.add x.offset y.offset;
            }
        | _ -> None)
      | _ -> None))
  | _ -> None

(* solver-loop telemetry: queries count top-level requests, not the
   recursion inside one *)
let affine_of f l ~iv_phi v =
  Trace.incr_m "scev.queries";
  affine_of_rec f l ~iv_phi v

(** Can two addresses with affine forms [a1], [a2] (w.r.t. the same phi)
    refer to the same location *within one iteration*?  Returns [Some false]
    when provably distinct in-iteration, [Some true] when provably equal,
    [None] when unknown. *)
let same_iteration_alias a1 a2 =
  let base_eq =
    match (a1.base, a2.base) with
    | None, None -> Some true
    | Some x, Some y -> if Instr.value_equal x y then Some true else None
    | _ -> None
  in
  match base_eq with
  | Some true ->
    if Int64.equal a1.scale a2.scale then
      Some (Int64.equal a1.offset a2.offset)
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Multivariate affine forms: base + Σ coeff_k * phi_k + offset        *)
(* ------------------------------------------------------------------ *)

(** Polynomial (multivariate affine) address form over a set of symbol
    phis.  Needed to disambiguate the outer loop of nested kernels:
    [c[i*N + j]] is not affine in [i] alone, but is affine in [{i, j}]
    with the inner phi [j]'s value span bounded by its trip count. *)
type poly = {
  pbase : (Instr.value * int64) list;
      (** linear combination of invariant symbolic values (e.g. a pointer
          argument plus 200 x a row index), kept sorted so equality is
          structural *)
  terms : (int * int64) list;    (** (phi id, coefficient), sorted by id *)
  poffset : int64;
}

let poly_const c = { pbase = []; terms = []; poffset = c }

(** Merge two base combinations, adding coefficients of equal values. *)
let merge_bases b1 b2 =
  List.sort compare (b1 @ b2)
  |> List.fold_left
       (fun acc (v, c) ->
         match acc with
         | (v0, c0) :: rest when Instr.value_equal v v0 -> (v0, Int64.add c0 c) :: rest
         | _ -> (v, c) :: acc)
       []
  |> List.filter (fun (_, c) -> not (Int64.equal c 0L))
  |> List.rev

let scale_bases b k = List.map (fun (v, c) -> (v, Int64.mul c k)) b

let merge_terms t1 t2 ~f =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.filter_map (fun (k, c) -> let c' = f 0L c in if Int64.equal c' 0L then None else Some (k, c')) rest
    | rest, [] -> List.filter_map (fun (k, c) -> let c' = f c 0L in if Int64.equal c' 0L then None else Some (k, c')) rest
    | (k1, c1) :: r1, (k2, c2) :: r2 ->
      if k1 = k2 then
        let c = f c1 c2 in
        if Int64.equal c 0L then go r1 r2 else (k1, c) :: go r1 r2
      else if k1 < k2 then
        let c = f c1 0L in
        if Int64.equal c 0L then go r1 b else (k1, c) :: go r1 b
      else
        let c = f 0L c2 in
        if Int64.equal c 0L then go a r2 else (k2, c) :: go a r2
  in
  go t1 t2

(** Polynomial form of [v] with respect to the symbol phis [symbols]
    (their ids).  [None] when not expressible. *)
let rec poly_of (f : Func.t) (l : Loopnest.loop) ~(symbols : int list)
    (v : Instr.value) : poly option =
  match v with
  | Instr.Cint c -> Some (poly_const c)
  | Instr.Null -> Some (poly_const 0L)
  | _ when is_invariant_value f l v ->
    Some { pbase = [ (v, 1L) ]; terms = []; poffset = 0L }
  | Instr.Reg r when List.mem r symbols ->
    Some { pbase = []; terms = [ (r, 1L) ]; poffset = 0L }
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | None -> None
    | Some i -> (
      let recur = poly_of f l ~symbols in
      let combine_add x y =
        Some
          {
            pbase = merge_bases x.pbase y.pbase;
            terms = merge_terms x.terms y.terms ~f:Int64.add;
            poffset = Int64.add x.poffset y.poffset;
          }
      in
      match i.Instr.op with
      | Instr.Bin (Instr.Add, a, b) -> (
        match (recur a, recur b) with
        | Some x, Some y -> combine_add x y
        | _ -> None)
      | Instr.Gep (p, idx) -> (
        match (recur p, recur idx) with
        | Some x, Some y -> combine_add x y
        | _ -> None)
      | Instr.Bin (Instr.Sub, a, b) -> (
        match (recur a, recur b) with
        | Some x, Some y ->
          Some
            {
              pbase = merge_bases x.pbase (scale_bases y.pbase (-1L));
              terms = merge_terms x.terms y.terms ~f:Int64.sub;
              poffset = Int64.sub x.poffset y.poffset;
            }
        | _ -> None)
      | Instr.Bin (Instr.Mul, a, b) -> (
        let scaled x c =
          Some
            {
              pbase = scale_bases x.pbase c;
              terms =
                List.filter_map
                  (fun (k, co) ->
                    let co = Int64.mul co c in
                    if Int64.equal co 0L then None else Some (k, co))
                  x.terms;
              poffset = Int64.mul x.poffset c;
            }
        in
        match (recur a, recur b) with
        | Some x, Some { pbase = []; terms = []; poffset = c } -> scaled x c
        | Some { pbase = []; terms = []; poffset = c }, Some y -> scaled y c
        | _ -> None)
      | Instr.Bin (Instr.Shl, a, Instr.Cint c) when c >= 0L && c < 62L -> (
        match recur a with
        | Some x ->
          let m = Int64.shift_left 1L (Int64.to_int c) in
          Some
            {
              pbase = scale_bases x.pbase m;
              terms = List.map (fun (k, co) -> (k, Int64.mul co m)) x.terms;
              poffset = Int64.mul x.poffset m;
            }
        | None -> None)
      | _ -> None))
  | _ -> None

(** Value span of a phi over a loop execution: [(trip-1) * |step|], when
    the phi is a simple counted recurrence with constant start/step and a
    constant exit bound in its own (sub)loop.  Used to bound how far an
    inner index can move addresses between outer iterations. *)
let phi_span (f : Func.t) (nest : Loopnest.t) (phi : Instr.inst) : int64 option =
  match Loopnest.loop_of_header nest phi.Instr.parent with
  | None -> None
  | Some sl -> (
    match phi.Instr.op with
    | Instr.Phi incs -> (
      let outside, inside =
        List.partition (fun (p, _) -> not (Loopnest.contains sl p)) incs
      in
      match (outside, inside) with
      | [ (_, Instr.Cint start) ], [ (_, Instr.Reg u) ] -> (
        match Func.inst_opt f u with
        | Some { Instr.op = Instr.Bin (Instr.Add, a, Instr.Cint step); _ }
          when Instr.value_equal a (Instr.Reg phi.Instr.id)
               && not (Int64.equal step 0L) -> (
          (* find a constant exit bound on phi or its update; remember
             whether the test is on the update (phi reaches one more value) *)
          let bound =
            List.concat_map
              (fun (b, _) ->
                match Func.terminator f b with
                | Some { Instr.op = Instr.Cbr (Instr.Reg c, _, _); _ } -> (
                  match Func.inst_opt f c with
                  | Some { Instr.op = Instr.Icmp (pred, x, Instr.Cint bnd); _ }
                    when Instr.value_equal x (Instr.Reg phi.Instr.id)
                         || Instr.value_equal x (Instr.Reg u) ->
                    [ (pred, bnd, Instr.value_equal x (Instr.Reg u)) ]
                  | _ -> [])
                | _ -> [])
              (Loopnest.exit_edges f sl)
          in
          match bound with
          | (pred, bnd, on_update) :: _ ->
            let adj =
              match pred with Instr.Sle -> 1L | Instr.Sge -> -1L | _ -> 0L
            in
            let sign = if step > 0L then 1L else -1L in
            let diff = Int64.add (Int64.sub bnd start) adj in
            let trips = Int64.div (Int64.add diff (Int64.sub step sign)) step in
            if trips <= 0L then Some 0L
            else
              let span = Int64.mul (Int64.sub trips 1L) (Int64.abs step) in
              Some (if on_update then Int64.add span (Int64.abs step) else span)
          | [] -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None)

(** Dependence classification of two polynomial addresses with respect to
    the outer symbol phi [outer].  [spans] bounds the value span of every
    other symbol.  Returns [`No_dep] (addresses never equal), [`Intra]
    (may only collide within an iteration of [outer]), or [`Unknown]. *)
let classify_pair ~(outer : int) ~(spans : (int * int64) list) (a : poly) (b : poly) =
  let bases_equal =
    List.length a.pbase = List.length b.pbase
    && List.for_all2
         (fun (v1, c1) (v2, c2) -> Instr.value_equal v1 v2 && Int64.equal c1 c2)
         a.pbase b.pbase
  in
  if not bases_equal then `Unknown
  else if a.terms <> b.terms then `Unknown
  else
    let s = try List.assoc outer a.terms with Not_found -> 0L in
    let d = Int64.sub a.poffset b.poffset in
    if Int64.equal s 0L then
      (* invariant address w.r.t. the outer loop: collides every iteration
         unless offsets always differ *)
      if Int64.equal d 0L then `Unknown
      else `Unknown (* conservatively: same base, different offsets, no outer term *)
    else begin
      let other_span =
        List.fold_left
          (fun acc (k, c) ->
            match acc with
            | None -> None
            | Some acc ->
              if k = outer then Some acc
              else
                match List.assoc_opt k spans with
                | Some sp -> Some (Int64.add acc (Int64.mul (Int64.abs c) sp))
                | None -> None)
          (Some 0L) a.terms
      in
      match other_span with
      | None -> `Unknown
      | Some other_span ->
      if Int64.add (Int64.abs d) other_span < Int64.abs s then
        if Int64.abs d > other_span then `No_dep else `Intra
      else `Unknown
    end

(** Value range [(lo, hi)] (inclusive) a counted header phi takes {e while
    the loop body executes}: the bound query behind out-of-bounds checking.
    Unlike {!phi_span} (an over-approximation that is conservative for
    dependence disproof), this must be exact — a bound query feeding a
    definite-error verdict cannot over-approximate — so it only answers for
    the canonical counted shape: single exit edge leaving from the phi's own
    header, whose branch tests an [icmp] of the phi against a constant, with
    a constant start and constant additive step. *)
let phi_range (f : Func.t) (nest : Loopnest.t) (phi : Instr.inst) :
    (int64 * int64) option =
  Trace.incr_m "scev.range_queries";
  match Loopnest.loop_of_header nest phi.Instr.parent with
  | None -> None
  | Some sl -> (
    match (Loopnest.exit_edges f sl, phi.Instr.op) with
    | [ (eb, edst) ], Instr.Phi incs when eb = phi.Instr.parent -> (
      let outside, inside =
        List.partition (fun (p, _) -> not (Loopnest.contains sl p)) incs
      in
      match (outside, inside) with
      | [ (_, Instr.Cint start) ], [ (_, Instr.Reg u) ] -> (
        match Func.inst_opt f u with
        | Some { Instr.op = Instr.Bin (Instr.Add, a, Instr.Cint step); _ }
          when Instr.value_equal a (Instr.Reg phi.Instr.id)
               && not (Int64.equal step 0L) -> (
          match Func.terminator f eb with
          | Some { Instr.op = Instr.Cbr (Instr.Reg c, tdst, fdst); _ }
            when tdst <> fdst -> (
            match Func.inst_opt f c with
            | Some { Instr.op = Instr.Icmp (pred, x, Instr.Cint bnd); _ }
              when Instr.value_equal x (Instr.Reg phi.Instr.id) -> (
              (* normalize to the predicate under which the body executes *)
              let negate = function
                | Instr.Slt -> Instr.Sge | Instr.Sge -> Instr.Slt
                | Instr.Sle -> Instr.Sgt | Instr.Sgt -> Instr.Sle
                | Instr.Eq -> Instr.Ne | Instr.Ne -> Instr.Eq
              in
              let cont = if fdst = edst then pred else negate pred in
              let last_below b =
                (* largest start + k*step <= b reachable with step > 0 *)
                if start > b then None
                else Some (Int64.add start (Int64.mul (Int64.div (Int64.sub b start) step) step))
              in
              let last_above b =
                (* smallest start + k*step >= b reachable with step < 0 *)
                if start < b then None
                else Some (Int64.add start (Int64.mul (Int64.div (Int64.sub b start) step) step))
              in
              match (cont, step > 0L) with
              | Instr.Slt, true ->
                Option.map (fun hi -> (start, hi)) (last_below (Int64.sub bnd 1L))
              | Instr.Sle, true ->
                Option.map (fun hi -> (start, hi)) (last_below bnd)
              | Instr.Sgt, false ->
                Option.map (fun lo -> (lo, start)) (last_above (Int64.add bnd 1L))
              | Instr.Sge, false ->
                Option.map (fun lo -> (lo, start)) (last_above bnd)
              | Instr.Ne, true ->
                (* terminates iff the lattice hits bnd exactly *)
                if bnd > start && Int64.equal (Int64.rem (Int64.sub bnd start) step) 0L
                then Some (start, Int64.sub bnd step)
                else None
              | Instr.Ne, false ->
                if bnd < start && Int64.equal (Int64.rem (Int64.sub bnd start) step) 0L
                then Some (Int64.sub bnd step, start)
                else None
              | Instr.Eq, _ ->
                if Int64.equal start bnd then Some (start, start) else None
              | _ -> None)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None)

(** Is the dependence between two affine accesses loop-carried?  With equal
    bases and equal scales, the accesses collide across iterations iff the
    offset difference is a nonzero multiple of the scale; distance 0 means
    intra-iteration only.  Returns [Some false] (not carried), [Some true]
    (carried with some distance), or [None] (unknown). *)
let loop_carried a1 a2 =
  let bases_equal =
    match (a1.base, a2.base) with
    | None, None -> true
    | Some x, Some y -> Instr.value_equal x y
    | _ -> false
  in
  if not bases_equal then None
  else if Int64.equal a1.scale a2.scale && not (Int64.equal a1.scale 0L) then begin
    let d = Int64.sub a1.offset a2.offset in
    if Int64.equal d 0L then Some false
    else if Int64.equal (Int64.rem d a1.scale) 0L then Some true
    else Some false (* offsets never coincide on the iteration lattice *)
  end
  else if Int64.equal a1.scale 0L && Int64.equal a2.scale 0L then
    (* both invariant addresses: carried iff they are the same address *)
    Some (Int64.equal a1.offset a2.offset)
  else None
