(** Compact growable bitsets over dense non-negative ints.

    The sparse analysis engine (DESIGN.md §11) keys abstract points-to
    objects to dense integers and stores each node's points-to set as one
    of these: an [int array] of machine words that grows on demand.  The
    operations the worklist solver leans on are [union_into] (which
    reports how many bits were *newly* set, and can mirror them into a
    delta set for difference propagation) and [is_empty_inter] (the
    disjointness test behind alias disprovals and PDG bucketing). *)

type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create () = { words = [||] }

(* grow so that word index [w] is addressable *)
let ensure (s : t) w =
  let n = Array.length s.words in
  if w >= n then begin
    let n' = max (w + 1) (max 4 (2 * n)) in
    let a = Array.make n' 0 in
    Array.blit s.words 0 a 0 n;
    s.words <- a
  end

let mem (s : t) i =
  let w = i / bits_per_word in
  w < Array.length s.words && (s.words.(w) lsr (i mod bits_per_word)) land 1 = 1

(** Set bit [i]; true iff it was not already set. *)
let add (s : t) i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  ensure s w;
  let old = s.words.(w) in
  let nw = old lor (1 lsl b) in
  if nw = old then false
  else begin
    s.words.(w) <- nw;
    true
  end

let is_empty (s : t) = Array.for_all (fun w -> w = 0) s.words

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal (s : t) = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

(** Union [src] into [into]; returns the number of bits newly set.  When
    [track] is given the fresh bits are also or-ed into it — this is the
    difference-propagation hook: [track] accumulates the delta a worklist
    node still has to push to its successors. *)
let union_into ?track ~(into : t) (src : t) =
  let n = Array.length src.words in
  if n > 0 then ensure into (n - 1);
  let added = ref 0 in
  for w = 0 to n - 1 do
    let sw = src.words.(w) in
    if sw <> 0 then begin
      let old = into.words.(w) in
      let nw = old lor sw in
      if nw <> old then begin
        into.words.(w) <- nw;
        let fresh = nw lxor old in
        added := !added + popcount fresh;
        match track with
        | Some t ->
          ensure t w;
          t.words.(w) <- t.words.(w) lor fresh
        | None -> ()
      end
    end
  done;
  !added

(** Do [a] and [b] share no bit?  (The alias-disproval test.) *)
let is_empty_inter (a : t) (b : t) =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go w = w >= n || (a.words.(w) land b.words.(w) = 0 && go (w + 1)) in
  go 0

let inter (a : t) (b : t) =
  let n = min (Array.length a.words) (Array.length b.words) in
  let words = Array.init n (fun w -> a.words.(w) land b.words.(w)) in
  { words }

let equal (a : t) (b : t) =
  let na = Array.length a.words and nb = Array.length b.words in
  let n = min na nb in
  let rec common w = w >= n || (a.words.(w) = b.words.(w) && common (w + 1)) in
  let rec zero (s : t) w = w >= Array.length s.words || (s.words.(w) = 0 && zero s (w + 1)) in
  common 0 && zero a n && zero b n

let copy (s : t) = { words = Array.copy s.words }

let iter f (s : t) =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if (w lsr b) land 1 = 1 then f ((wi * bits_per_word) + b)
        done)
    s.words

let fold f (s : t) init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements (s : t) = List.rev (fold (fun i acc -> i :: acc) s [])
