(** Observable-event traces: the semantic oracle behind every
    differential gate (DESIGN.md §12).

    Running a module under {!attach} produces a canonical event stream —
    external/builtin calls with their arguments, stores to *escaping*
    memory (objects reachable from globals or the entry's return value,
    per {!Andersen}), and a distinct terminal event (normal exit, trap,
    fuel exhaustion).  Two runs are then compared not by their flat text
    output but by trace equivalence modulo a {!license}: the commutations
    a transformation is entitled to make.  DOALL may permute whole
    independent iterations' event blocks, DSWP may buffer events across
    stages but must keep per-stage program order, Helix must keep its
    sequential segments in sequential order; cleanups get no license at
    all.  An unlicensed reorder yields a minimal event-diff witness.

    Values inside events are rendered abstractly: pointers are shown
    relative to the escaped object they fall in ([&heap#0+3], [&@g]) or
    as [&_] when they point at non-escaping memory, so traces stay
    comparable across modules whose allocation order differs. *)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type action =
  | Call of { callee : string; cargs : string list }
      (** observable builtin call with rendered arguments *)
  | Store of { sobj : string; soff : int; svalue : string }
      (** store into escaping memory: object name, word offset, value *)
  | Exit of string            (** normal termination with rendered result *)
  | Trapped of string         (** abnormal termination; compared by class *)
  | Out_of_fuel               (** fuel exhaustion is NOT a behaviour *)
  | Truncated                 (** recorder hit its event cap *)

type event = {
  etask : int;      (** Psim task id, [-1] for the sequential context *)
  esection : int;   (** Psim parallel-section ordinal, [-1] outside *)
  eseq : bool;      (** emitted inside a Helix sequential segment *)
  eact : action;
}

type trace = event list

(** Canonical comparison key.  Traps compare by class, not message —
    messages carry instruction ids that legitimately shift across
    transformations. *)
let action_key = function
  | Call { callee; cargs } ->
    Printf.sprintf "call %s(%s)" callee (String.concat ", " cargs)
  | Store { sobj; soff; svalue } ->
    Printf.sprintf "store %s[%d] = %s" sobj soff svalue
  | Exit v -> "exit " ^ v
  | Trapped _ -> "trap"
  | Out_of_fuel -> "out-of-fuel"
  | Truncated -> "truncated"

let action_display = function
  | Trapped msg -> "trap: " ^ msg
  | a -> action_key a

let event_display e =
  if e.etask < 0 then action_display e.eact
  else
    Printf.sprintf "[task %d%s] %s" e.etask
      (if e.eseq then " seq" else "")
      (action_display e.eact)

let trace_to_lines (t : trace) =
  List.mapi (fun i e -> Printf.sprintf "%4d  %s" i (event_display e)) t

(* ------------------------------------------------------------------ *)
(* Escape analysis: which allocation sites are observable?             *)
(* ------------------------------------------------------------------ *)

type sites = (string * int, unit) Hashtbl.t

(** Allocation sites (function name, inst id of the alloca/malloc) whose
    objects escape: transitively reachable from a global's memory or
    from the entry point's return value.  Globals themselves are always
    observable and are handled by name in {!attach}.  A degraded
    (budget-exhausted) points-to solution yields no sites, which only
    makes the trace coarser, never wrong-er than the legacy output
    compare. *)
let escape_sites ?(entry = "main") (m : Irmod.t) : sites =
  let a = Andersen.analyze m in
  let sites : sites = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  let push o =
    if not (Hashtbl.mem seen o) then begin
      Hashtbl.replace seen o ();
      Queue.add o q;
      match o with
      | Andersen.Oalloca (fn, id) | Andersen.Omalloc (fn, id) ->
        Hashtbl.replace sites (fn, id) ()
      | _ -> ()
    end
  in
  List.iter
    (fun (g : Irmod.global) ->
      Andersen.ObjSet.iter push
        (Andersen.pts_of a (Andersen.Vmem (Andersen.Oglob g.Irmod.gname))))
    (Irmod.globals m);
  Andersen.ObjSet.iter push (Andersen.pts_of a (Andersen.Vret entry));
  while not (Queue.is_empty q) do
    let o = Queue.pop q in
    Andersen.ObjSet.iter push (Andersen.pts_of a (Andersen.Vmem o))
  done;
  sites

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

type recorder = {
  mutable rev : event list;   (** newest first *)
  mutable count : int;
  mutable truncated : bool;
  cap : int;
  mutable task : int;         (** current context, set by the Psim runtime *)
  mutable section : int;
  seq_tasks : (int, unit) Hashtbl.t;
      (** tasks currently inside a Helix sequential segment *)
  escaped : (int, string * int) Hashtbl.t;  (** base -> (name, size) *)
  mutable heap_ordinal : int;
  observable : (string, unit) Hashtbl.t;    (** builtins that count as I/O *)
}

let default_observable = [ "print"; "print_float" ]

let emit r act =
  if r.count >= r.cap then begin
    if not r.truncated then begin
      r.truncated <- true;
      r.rev <-
        { etask = r.task; esection = r.section; eseq = false; eact = Truncated }
        :: r.rev;
      r.count <- r.count + 1
    end
  end
  else begin
    r.rev <-
      {
        etask = r.task;
        esection = r.section;
        eseq = Hashtbl.mem r.seq_tasks r.task;
        eact = act;
      }
      :: r.rev;
    r.count <- r.count + 1
  end

let covering r addr =
  Hashtbl.fold
    (fun base (name, size) acc ->
      match acc with
      | Some _ -> acc
      | None -> if addr >= base && addr < base + size then Some (base, name) else None)
    r.escaped None

(** Render a value for an event.  Pointers are object-relative so traces
    compare across modules with different allocation order. *)
let render r (v : Interp.v) =
  match v with
  | Interp.VI n -> Int64.to_string n
  | Interp.VF f -> Printf.sprintf "%.6g" f
  | Interp.VP 0 -> "null"
  | Interp.VP p -> (
    match covering r p with
    | Some (base, name) ->
      if p = base then "&" ^ name else Printf.sprintf "&%s+%d" name (p - base)
    | None -> "&_")

(** Hook a recorder into an interpreter state.  Existing hooks are
    chained, not replaced.  [sites] are the escaping allocation sites of
    the module being run ({!escape_sites}); globals are picked up from
    the state directly. *)
let attach ?(observable = default_observable) ?sites (st : Interp.state) :
    recorder =
  let r =
    {
      rev = [];
      count = 0;
      truncated = false;
      cap = 1_000_000;
      task = -1;
      section = -1;
      seq_tasks = Hashtbl.create 4;
      escaped = Hashtbl.create 16;
      heap_ordinal = 0;
      observable = Hashtbl.create 4;
    }
  in
  List.iter (fun n -> Hashtbl.replace r.observable n ()) observable;
  (* globals are always observable: name their allocations *)
  Hashtbl.iter
    (fun g base ->
      let size =
        match Hashtbl.find_opt st.Interp.allocs base with
        | Some (a : Interp.alloc) -> a.Interp.size
        | None -> 1
      in
      Hashtbl.replace r.escaped base ("@" ^ g, size))
    st.Interp.global_addr;
  let sites = match sites with Some s -> s | None -> (Hashtbl.create 1 : sites) in
  let h = st.Interp.hooks in
  (* attribute each allocation to the instruction that made it, so
     escaping heap objects get stable ordinal names *)
  let last_site = ref None in
  let prev_inst = h.Interp.on_inst in
  h.Interp.on_inst <-
    Some
      (fun f i ->
        (match prev_inst with Some g -> g f i | None -> ());
        match i.Instr.op with
        | Instr.Alloca _ | Instr.Call (Instr.Glob "malloc", _) ->
          last_site := Some (f.Func.fname, i.Instr.id)
        | _ -> ());
  let prev_alloc = h.Interp.on_alloc in
  h.Interp.on_alloc <-
    Some
      (fun ~base ~size ->
        (match prev_alloc with Some g -> g ~base ~size | None -> ());
        (match !last_site with
        | Some site when Hashtbl.mem sites site ->
          let name = Printf.sprintf "heap#%d" r.heap_ordinal in
          r.heap_ordinal <- r.heap_ordinal + 1;
          Hashtbl.replace r.escaped base (name, size)
        | _ -> ());
        last_site := None);
  let prev_store = h.Interp.on_store in
  h.Interp.on_store <-
    Some
      (fun f i ~addr ~value ->
        (match prev_store with Some g -> g f i ~addr ~value | None -> ());
        match covering r addr with
        | Some (base, name) ->
          emit r
            (Store { sobj = name; soff = addr - base; svalue = render r value })
        | None -> ());
  let prev_builtin = h.Interp.on_builtin in
  h.Interp.on_builtin <-
    Some
      (fun name args ->
        (match prev_builtin with Some g -> g name args | None -> ());
        if Hashtbl.mem r.observable name then
          emit r (Call { callee = name; cargs = List.map (render r) args }));
  Trace.touch "obs.events";
  r

let events r : trace = List.rev r.rev
let length r = r.count

(** Roll the recorder back to [k] events — the Psim runtime restores it
    together with memory when a section retries. *)
let truncate r k =
  while r.count > k do
    (match r.rev with
    | { eact = Truncated; _ } :: tl ->
      r.truncated <- false;
      r.rev <- tl
    | _ :: tl -> r.rev <- tl
    | [] -> ());
    r.count <- r.count - 1
  done

let has_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Classify a trap message into a terminal event. *)
let terminal_of_trap msg =
  if has_sub msg "out of fuel" then Out_of_fuel else Trapped msg

(** Append the terminal event (always from the sequential context) and
    flush the event count into telemetry. *)
let finish r (term : action) =
  r.task <- -1;
  r.section <- -1;
  emit r term;
  Trace.add "obs.events" r.count

(** Run [m] under a fresh recorder: result, text output, trace. *)
let run ?(entry = "main") ?(args = []) ?fuel ?sites (m : Irmod.t) :
    (Interp.v, string) result * string * trace =
  let sites = match sites with Some s -> s | None -> escape_sites ~entry m in
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let r = attach ~sites st in
  match
    Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args)
  with
  | v ->
    finish r (Exit (render r v));
    (Ok v, Buffer.contents st.Interp.output, events r)
  | exception Interp.Trap msg ->
    finish r (terminal_of_trap msg);
    (Error msg, Buffer.contents st.Interp.output, events r)

(* ------------------------------------------------------------------ *)
(* Commutation licenses                                                *)
(* ------------------------------------------------------------------ *)

type license =
  | Exact              (** cleanups: the trace must match event for event *)
  | Permute_iterations (** DOALL: whole iteration blocks may interleave *)
  | Buffer_stages      (** DSWP: stages may buffer; per-stage order holds *)
  | Seq_segments       (** Helix: sequential segments keep global order *)

let license_to_string = function
  | Exact -> "exact"
  | Permute_iterations -> "permute-iterations"
  | Buffer_stages -> "buffer-stages"
  | Seq_segments -> "seq-segments"

(** Least upper bound: the license a gate must grant once passes with
    [a] and [b] have both committed.  [Exact] is the identity; mixing
    two distinct concurrent licenses keeps only what they share — each
    task's stream stays in sequential order. *)
let join a b =
  if a = b then a
  else
    match (a, b) with
    | Exact, x | x, Exact -> x
    | _ -> Permute_iterations

(* ------------------------------------------------------------------ *)
(* Trace equivalence                                                   *)
(* ------------------------------------------------------------------ *)

(** A rejected comparison: one-line reason plus a minimal event-diff
    witness (indented display lines). *)
type mismatch = string * string list

let check_exact (reference : trace) (candidate : trace) :
    (unit, mismatch) result =
  let ra = Array.of_list reference and ca = Array.of_list candidate in
  let n = min (Array.length ra) (Array.length ca) in
  let rec first i =
    if i >= n then
      if Array.length ra = Array.length ca then None else Some n
    else if action_key ra.(i).eact = action_key ca.(i).eact then first (i + 1)
    else Some i
  in
  match first 0 with
  | None -> Ok ()
  | Some i ->
    let lines = ref [] in
    let addl s = lines := s :: !lines in
    for j = max 0 (i - 2) to i - 1 do
      addl (Printf.sprintf "  = [%d] %s" j (event_display ra.(j)))
    done;
    if i < Array.length ra then
      addl (Printf.sprintf "  - [%d] %s" i (event_display ra.(i)))
    else addl (Printf.sprintf "  - [%d] <end of reference trace>" i);
    if i < Array.length ca then
      addl (Printf.sprintf "  + [%d] %s" i (event_display ca.(i)))
    else addl (Printf.sprintf "  + [%d] <end of candidate trace>" i);
    Error
      (Printf.sprintf "trace diverges at event %d (license: exact)" i,
       List.rev !lines)

let multiset (t : trace) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = action_key e.eact in
      Hashtbl.replace tbl k (1 + (try Hashtbl.find tbl k with Not_found -> 0)))
    t;
  tbl

(** Concurrent core: the candidate must perform exactly the reference's
    multiset of actions, and each task's stream (plus, for Helix, the
    merged sequential-segment stream) must be a subsequence of the
    reference — i.e. only cross-task interleaving is licensed, never a
    reorder within one task. *)
let check_concurrent ~seq_order (reference : trace) (candidate : trace) :
    (unit, mismatch) result =
  let mr = multiset reference and mc = multiset candidate in
  let diff = ref [] in
  Hashtbl.iter
    (fun k n ->
      let m = try Hashtbl.find mc k with Not_found -> 0 in
      if m < n then
        diff :=
          Printf.sprintf "  - %s (x%d in reference, x%d in candidate)" k n m
          :: !diff)
    mr;
  Hashtbl.iter
    (fun k m ->
      let n = try Hashtbl.find mr k with Not_found -> 0 in
      if m > n then
        diff :=
          Printf.sprintf "  + %s (x%d in reference, x%d in candidate)" k n m
          :: !diff)
    mc;
  if !diff <> [] then Error ("event multisets differ", List.sort compare !diff)
  else begin
    let rkeys = Array.of_list (List.map (fun e -> action_key e.eact) reference) in
    let check_stream label (evs : event list) =
      let pos = ref 0 in
      let last = ref None in
      let bad = ref None in
      List.iter
        (fun e ->
          if !bad = None then begin
            let k = action_key e.eact in
            let p = ref !pos in
            while !p < Array.length rkeys && rkeys.(!p) <> k do
              incr p
            done;
            if !p >= Array.length rkeys then bad := Some (e, !last)
            else begin
              last := Some (k, !p);
              pos := !p + 1
            end
          end)
        evs;
      match !bad with
      | None -> Ok ()
      | Some (e, last) ->
        Error
          (Printf.sprintf "unlicensed reorder in %s" label,
           Printf.sprintf "  %s emits  %s" label (action_display e.eact)
           ::
           (match last with
           | Some (pk, pi) ->
             [
               Printf.sprintf "  after    %s (reference event %d)" pk pi;
               "  but the reference has no later occurrence of that action";
             ]
           | None ->
             [ "  but the reference never performs that action" ]))
    in
    (* group candidate events by task, preserving per-task order *)
    let order = ref [] in
    let byt = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if not (Hashtbl.mem byt e.etask) then order := e.etask :: !order;
        Hashtbl.replace byt e.etask
          (e :: (try Hashtbl.find byt e.etask with Not_found -> [])))
      candidate;
    let tasks = List.rev !order in
    let rec per_task = function
      | [] -> Ok ()
      | t :: tl -> (
        let label =
          if t < 0 then "the sequential context" else Printf.sprintf "task %d" t
        in
        match check_stream label (List.rev (Hashtbl.find byt t)) with
        | Ok () -> per_task tl
        | Error _ as e -> e)
    in
    match per_task tasks with
    | Error _ as e -> e
    | Ok () ->
      if not seq_order then Ok ()
      else
        (* Helix: the merged stream of sequential-segment events must
           itself stay in sequential order *)
        check_stream "the sequential segments"
          (List.filter (fun e -> e.eseq) candidate)
  end

(** Trace equivalence modulo [license].  [Ok ()] or a minimal witness. *)
let check ~license ~(reference : trace) ~(candidate : trace) :
    (unit, mismatch) result =
  Trace.incr_m "obs.trace_compares";
  let res =
    match license with
    | Exact -> check_exact reference candidate
    | Permute_iterations | Buffer_stages ->
      check_concurrent ~seq_order:false reference candidate
    | Seq_segments -> check_concurrent ~seq_order:true reference candidate
  in
  (match res with
  | Error _ -> Trace.incr_m "obs.reorders_rejected"
  | Ok () -> ());
  res
