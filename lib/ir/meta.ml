(** Module-level metadata.

    NOELLE's tools communicate by embedding analysis results (profiles, the
    PDG, compilation options) as metadata in the IR file.  We reproduce this
    with a string key/value table attached to each module; keys are
    namespaced ("prof.block.<fn>.<bid>", "pdg.edge.<n>", "option.<name>",
    ...) and survive printing/parsing round trips. *)

type t = (string, string) Hashtbl.t

let create () : t = Hashtbl.create 64

let set (t : t) k v = Hashtbl.replace t k v
let get (t : t) k = Hashtbl.find_opt t k
let get_int (t : t) k = Option.bind (get t k) int_of_string_opt
let get_float (t : t) k = Option.bind (get t k) float_of_string_opt
let set_int (t : t) k v = set t k (string_of_int v)
let set_float (t : t) k v = set t k (Printf.sprintf "%.17g" v)
let remove (t : t) k = Hashtbl.remove t k
let mem (t : t) k = Hashtbl.mem t k

let has_prefix ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

(** All keys with the given prefix, sorted for determinism. *)
let keys_with_prefix (t : t) prefix =
  Hashtbl.fold (fun k _ acc -> if has_prefix ~prefix k then k :: acc else acc) t []
  |> List.sort String.compare

(** Fold over key/value pairs with the given prefix, in hash-table order
    (unspecified) — for order-independent consumers that must not pay
    the sort of {!keys_with_prefix} on large payloads. *)
let fold_prefix (t : t) prefix fn acc =
  Hashtbl.fold (fun k v acc -> if has_prefix ~prefix k then fn k v acc else acc) t acc

(** Remove every key with the given prefix (e.g. "prof." for
    noelle-meta-clean). *)
let clear_prefix (t : t) prefix =
  List.iter (Hashtbl.remove t) (keys_with_prefix t prefix)

(** Move every key with [prefix] under [target ^ prefix] (quarantine:
    the payload is preserved for forensics but no longer discoverable
    under its live namespace). *)
let rename_prefix (t : t) ~prefix ~target =
  List.iter
    (fun k ->
      match Hashtbl.find_opt t k with
      | None -> ()
      | Some v ->
        Hashtbl.remove t k;
        Hashtbl.replace t (target ^ k) v)
    (keys_with_prefix t prefix)

let iter_sorted fn (t : t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, v) -> fn k v)

let cardinal (t : t) = Hashtbl.length t

let copy (t : t) : t = Hashtbl.copy t
