(** Textual form of the IR.

    The syntax is LLVM-flavoured but deliberately simpler: operand types are
    not annotated (they are recoverable), and instructions whose result type
    is ambiguous carry a [.i64]/[.f64]/[.ptr] suffix ([load.i64], [call.void],
    [phi.ptr], [select.f64]).  {!Parser} parses exactly what this module
    prints, preserving instruction ids and block labels so that embedded
    metadata remains valid across round trips. *)

open Instr

(** Render a float so that {!Parser} can tell it apart from an int. *)
let float_str x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let ty_tag = function
  | Ty.I64 -> "i64"
  | Ty.F64 -> "f64"
  | Ty.Ptr -> "ptr"
  | Ty.Void -> "void"
  | Ty.Fun _ -> "ptr"

let value_str (f : Func.t) = function
  | Cint n -> Int64.to_string n
  | Cfloat x -> float_str x
  | Null -> "null"
  | Arg i -> "%" ^ fst f.Func.params.(i)
  | Reg r -> "%" ^ string_of_int r
  | Glob g -> "@" ^ g

let inst_str (f : Func.t) (i : inst) =
  let v = value_str f in
  (* total, so diagnostics can print modules with dangling block refs *)
  let lbl bid =
    match Hashtbl.find_opt f.Func.blks bid with
    | Some b -> b.Func.label
    | None -> Printf.sprintf "?%d" bid
  in
  (* Every instruction carries its id, void results included: analysis
     artifacts embedded as metadata (PDG edges, branch profiles) reference
     instructions by id, so ids must survive print/parse round trips for
     stores and terminators too, not only for value-producing ops. *)
  let res body = Printf.sprintf "%%%d = %s" i.id body in
  match i.op with
  | Bin (o, a, b) -> res (Printf.sprintf "%s %s, %s" (bin_to_string o) (v a) (v b))
  | Fbin (o, a, b) -> res (Printf.sprintf "%s %s, %s" (fbin_to_string o) (v a) (v b))
  | Icmp (c, a, b) -> res (Printf.sprintf "icmp.%s %s, %s" (cmp_to_string c) (v a) (v b))
  | Fcmp (c, a, b) -> res (Printf.sprintf "fcmp.%s %s, %s" (cmp_to_string c) (v a) (v b))
  | Cast (k, a) -> res (Printf.sprintf "%s %s" (cast_to_string k) (v a))
  | Alloca n -> res (Printf.sprintf "alloca %s" (v n))
  | Load p -> res (Printf.sprintf "load.%s %s" (ty_tag i.ty) (v p))
  | Store (x, p) -> res (Printf.sprintf "store %s, %s" (v x) (v p))
  | Gep (p, idx) -> res (Printf.sprintf "gep %s, %s" (v p) (v idx))
  | Call (callee, args) ->
    res
      (Printf.sprintf "call.%s %s(%s)" (ty_tag i.ty) (v callee)
         (String.concat ", " (List.map v args)))
  | Phi incs ->
    res
      (Printf.sprintf "phi.%s %s" (ty_tag i.ty)
         (String.concat " "
            (List.map (fun (p, x) -> Printf.sprintf "[%s: %s]" (lbl p) (v x)) incs)))
  | Select (c, a, b) ->
    res (Printf.sprintf "select.%s %s, %s, %s" (ty_tag i.ty) (v c) (v a) (v b))
  | Br b -> res (Printf.sprintf "br %s" (lbl b))
  | Cbr (c, t, e) -> res (Printf.sprintf "cbr %s, %s, %s" (v c) (lbl t) (lbl e))
  | Ret None -> res "ret"
  | Ret (Some x) -> res (Printf.sprintf "ret %s" (v x))
  | Unreachable -> res "unreachable"

let func_str (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    Array.to_list f.Func.params
    |> List.map (fun (n, t) -> Printf.sprintf "%s %%%s" (ty_tag t) n)
    |> String.concat ", "
  in
  if f.Func.is_declaration then
    Buffer.add_string buf
      (Printf.sprintf "declare %s @%s(%s)\n" (ty_tag f.Func.ret) f.Func.fname params)
  else begin
    Buffer.add_string buf
      (Printf.sprintf "define %s @%s(%s) {\n" (ty_tag f.Func.ret) f.Func.fname params);
    Func.iter_blocks
      (fun b ->
        Buffer.add_string buf (Printf.sprintf "%s:\n" b.Func.label);
        List.iter
          (fun id ->
            Buffer.add_string buf ("  " ^ inst_str f (Func.inst f id) ^ "\n"))
          b.Func.insts)
      f;
    Buffer.add_string buf "}\n"
  end;
  Buffer.contents buf

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let module_str (m : Irmod.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "module \"%s\"\n" (escape m.Irmod.mname));
  Meta.iter_sorted
    (fun k v ->
      Buffer.add_string buf (Printf.sprintf "meta \"%s\" = \"%s\"\n" (escape k) (escape v)))
    m.Irmod.meta;
  List.iter
    (fun (g : Irmod.global) ->
      Buffer.add_string buf (Printf.sprintf "global @%s = %d" g.gname g.size);
      (match g.init with
      | None -> ()
      | Some vs ->
        let dummy = Func.create ~name:"" ~params:[] ~ret:Ty.Void in
        Buffer.add_string buf " [";
        Buffer.add_string buf
          (String.concat ", " (Array.to_list (Array.map (value_str dummy) vs)));
        Buffer.add_string buf "]");
      Buffer.add_char buf '\n')
    (Irmod.globals m);
  List.iter (fun f -> Buffer.add_string buf (func_str f)) (Irmod.functions m);
  Buffer.contents buf

(** Write a module to a file. *)
let to_file (m : Irmod.t) path =
  let oc = open_out path in
  output_string oc (module_str m);
  close_out oc
