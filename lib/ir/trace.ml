(** The telemetry spine's recording core (see DESIGN.md §10).

    One process-wide, *off-by-default* event buffer and metrics registry
    shared by every layer: the {!Noelle} manager's demand-driven entry
    points, the transactional pipeline, the checkers, the Andersen / DFE /
    SCEV solver loops and the Psim runtime all report through this module,
    and {!Noelle.Telemetry} (the public facade) turns the buffer into a
    Chrome trace-event JSON and the registry into a metrics dump.

    Overhead contract: when tracing is disabled (the default) every entry
    point is a single load-and-branch on {!on} — no allocation, no clock
    read, no table lookup — so instrumented hot loops cost nothing in
    ordinary runs, and [dune runtest] with [NOELLE_TRACE] unset leaves the
    buffer and the registry empty.  Enabling is explicit
    ({!enable} / [Telemetry.install]) or via the [NOELLE_TRACE]
    environment variable, read once at program start.

    Metric naming scheme: dot-separated [layer.object.verb] keys, e.g.
    [noelle.pdg.queries], [noelle.cache.hit], [andersen.constraints],
    [dfe.iterations], [psim.task.restarts].  Span categories name the
    layer: ["analysis"], ["pipeline"], ["check"], ["psim"]. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(** Wall-clock microseconds (absolute; event timestamps are relative to
    {!enable}). *)
let now_us () = Unix.gettimeofday () *. 1e6

(** Run [f] and return (result, elapsed wall milliseconds).  Always
    measures — this is the one timing mechanism shared by [--stats]-style
    reporting and the trace buffer. *)
let time_ms f =
  let t0 = now_us () in
  let r = f () in
  (r, (now_us () -. t0) /. 1000.)

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

let on = ref false

(** Is the telemetry sink recording?  The one branch every instrumentation
    site is guarded by. *)
let enabled () = !on

let t0 = ref 0.0

type phase = Complete | Instant

type event = {
  ename : string;
  ecat : string;
  eph : phase;
  ets : float;                       (** µs since {!enable} *)
  edur : float;                      (** µs; 0 for instants *)
  etid : int;                        (** virtual thread (0 = main, Psim tasks use 1+tid) *)
  edepth : int;                      (** span-stack depth at open *)
  eargs : (string * string) list;
}

(* newest first; reversed by {!events} *)
let buf : event list ref = ref []
let buf_len = ref 0

(** Cap on buffered events; past it events are dropped (and counted in the
    [trace.dropped] counter) rather than exhausting memory. *)
let max_events = ref 1_000_000

let cur_tid = ref 0
let depth = ref 0

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

type hist = {
  mutable hcount : int;
  mutable hsum : int64;
  hbuckets : int array;  (** log2 buckets: index i counts values in [2^i, 2^(i+1)) *)
}

type metric =
  | Counter of int64 ref   (** monotonic *)
  | Gauge of float ref
  | Histogram of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let reset () =
  buf := [];
  buf_len := 0;
  depth := 0;
  cur_tid := 0;
  Hashtbl.reset registry

(** Start recording (resetting the buffer and registry unless
    [keep] is set). *)
let enable ?(keep = false) () =
  if not keep then reset ();
  t0 := now_us ();
  on := true

let disable () = on := false

let record (e : event) =
  if !buf_len < !max_events then begin
    buf := e :: !buf;
    incr buf_len
  end
  else begin
    match Hashtbl.find_opt registry "trace.dropped" with
    | Some (Counter r) -> r := Int64.add !r 1L
    | _ -> Hashtbl.replace registry "trace.dropped" (Counter (ref 1L))
  end

(** Buffered events, chronological by close time. *)
let events () = List.rev !buf

let event_count () = !buf_len

(* -- counters -- *)

let counter_ref name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> r
  | Some _ -> invalid_arg (name ^ " is not a counter")
  | None ->
    let r = ref 0L in
    Hashtbl.replace registry name (Counter r);
    r

(** Register counter [name] (at 0) without incrementing it; no-op when
    disabled.  Instrumentation sites call this so that a counter whose
    value happens to be zero still appears in metric dumps — consumers
    (e.g. [noelle-trace --check]) can then tell "measured as zero" apart
    from "never instrumented". *)
let touch name = if !on then ignore (counter_ref name)

(** Add [n] (>= 0) to monotonic counter [name]; no-op when disabled. *)
let add name n =
  if !on && n > 0 then begin
    let r = counter_ref name in
    r := Int64.add !r (Int64.of_int n)
  end

let incr_m name = add name 1

(** Current value of counter [name] (0 when absent or not a counter). *)
let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> !r
  | _ -> 0L

(* -- gauges -- *)

let set_gauge name v =
  if !on then
    match Hashtbl.find_opt registry name with
    | Some (Gauge r) -> r := v
    | Some _ -> invalid_arg (name ^ " is not a gauge")
    | None -> Hashtbl.replace registry name (Gauge (ref v))

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge r) -> Some !r
  | _ -> None

(* -- histograms -- *)

let hist_ref name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (name ^ " is not a histogram")
  | None ->
    let h = { hcount = 0; hsum = 0L; hbuckets = Array.make 63 0 } in
    Hashtbl.replace registry name (Histogram h);
    h

let bucket_of (v : int64) =
  if Int64.compare v 2L < 0 then 0
  else begin
    let rec go i x = if Int64.compare x 1L <= 0 then i else go (i + 1) (Int64.shift_right_logical x 1) in
    min 62 (go 0 v)
  end

(** Record one observation of [v] (clamped at 0) into log-scale histogram
    [name]; no-op when disabled. *)
let observe name v =
  if !on then begin
    let v = if Int64.compare v 0L < 0 then 0L else v in
    let h = hist_ref name in
    h.hcount <- h.hcount + 1;
    h.hsum <- Int64.add h.hsum v;
    let b = bucket_of v in
    h.hbuckets.(b) <- h.hbuckets.(b) + 1
  end

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> Some h
  | _ -> None

(** All registered metrics, sorted by name. *)
let metrics () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Counter metrics only, sorted — the snapshot bench rows diff. *)
let counters () =
  List.filter_map
    (fun (k, m) -> match m with Counter r -> Some (k, !r) | _ -> None)
    (metrics ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sname : string;
  scat : string;
  stid : int;
  sstart : float;          (** absolute µs *)
  sdepth : int;
  mutable sargs : (string * string) list;
  slive : bool;            (** false for the disabled-path dummy *)
}

let null_span =
  { sname = ""; scat = ""; stid = 0; sstart = 0.0; sdepth = 0; sargs = []; slive = false }

let begin_span ?(cat = "") ?(args = []) name =
  if not !on then null_span
  else begin
    let s =
      { sname = name; scat = cat; stid = !cur_tid; sstart = now_us ();
        sdepth = !depth; sargs = args; slive = true }
    in
    incr depth;
    s
  end

(** Attach a tag to an open span (shown in the Chrome trace args). *)
let tag (s : span) k v = if s.slive then s.sargs <- s.sargs @ [ (k, v) ]

let end_span ?(args = []) (s : span) =
  if s.slive then begin
    depth := max 0 (!depth - 1);
    let close = now_us () in
    record
      {
        ename = s.sname;
        ecat = s.scat;
        eph = Complete;
        ets = s.sstart -. !t0;
        edur = close -. s.sstart;
        etid = s.stid;
        edepth = s.sdepth;
        eargs = s.sargs @ args;
      }
  end

(** Run [f] inside a span (exception-safe; the span closes either way,
    tagged [raised=exn] if [f] raised). *)
let span ?cat ?args name f =
  if not !on then f ()
  else begin
    let s = begin_span ?cat ?args name in
    match f () with
    | r ->
      end_span s;
      r
    | exception e ->
      tag s "raised" (Printexc.to_string e);
      end_span s;
      raise e
  end

(** {!time_ms} that also records the interval as a span when enabled:
    the single timing mechanism for [--stats]-style reports. *)
let timed_span ?cat ?args name f =
  if not !on then time_ms f
  else begin
    let s = begin_span ?cat ?args name in
    match time_ms f with
    | r, ms ->
      tag s "ms" (Printf.sprintf "%.3f" ms);
      end_span s;
      (r, ms)
    | exception e ->
      tag s "raised" (Printexc.to_string e);
      end_span s;
      raise e
  end

(** Record an instant event. *)
let instant ?(cat = "") ?(args = []) name =
  if !on then
    record
      { ename = name; ecat = cat; eph = Instant; ets = now_us () -. !t0;
        edur = 0.0; etid = !cur_tid; edepth = !depth; eargs = args }

(** Record a complete event whose opening time was captured earlier with
    {!now_us} (used by Psim for per-task swimlanes, where fibers
    interleave and a stack discipline does not hold). *)
let complete ?(cat = "") ?(args = []) ?tid ~start_us name =
  if !on then
    record
      {
        ename = name;
        ecat = cat;
        eph = Complete;
        ets = start_us -. !t0;
        edur = now_us () -. start_us;
        etid = (match tid with Some t -> t | None -> !cur_tid);
        edepth = !depth;
        eargs = args;
      }

(** Run [f] with events attributed to virtual thread [tid] (Chrome trace
    rows). *)
let with_tid tid f =
  if not !on then f ()
  else begin
    let old = !cur_tid in
    cur_tid := tid;
    Fun.protect ~finally:(fun () -> cur_tid := old) f
  end

(* ------------------------------------------------------------------ *)
(* JSON (emission and parsing)                                         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** A minimal JSON reader, used to round-trip-validate the Chrome trace
    and to parse metric dumps for [noelle-trace --compare]. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else error ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string";
        match s.[!pos] with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
          advance ();
          if !pos >= n then error "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then error "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error "bad \\u escape"
            in
            (* UTF-8 encode (we only ever emit < 0x80, but accept more) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            pos := !pos + 4
          | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then error "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> error "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          elems []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> error "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_list = function Arr l -> Some l | _ -> None
  let to_string = function Str s -> Some s | _ -> None
  let to_num = function Num f -> Some f | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let args_to_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args)
  ^ "}"

let event_to_json (e : event) =
  match e.eph with
  | Complete ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
       \"pid\":1,\"tid\":%d,\"args\":%s}"
      (json_escape e.ename)
      (json_escape (if e.ecat = "" then "default" else e.ecat))
      e.ets e.edur e.etid
      (args_to_json (("depth", string_of_int e.edepth) :: e.eargs))
  | Instant ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\
       \"pid\":1,\"tid\":%d,\"args\":%s}"
      (json_escape e.ename)
      (json_escape (if e.ecat = "" then "default" else e.ecat))
      e.ets e.etid (args_to_json e.eargs)

(** The whole buffer as Chrome trace-event JSON (object format: loadable
    in Perfetto / [chrome://tracing]). *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (event_to_json e))
    (events ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let hist_to_json (h : hist) =
  let buckets =
    Array.to_list h.hbuckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           Printf.sprintf "\"%Ld\":%d" (Int64.shift_left 1L i) c)
  in
  Printf.sprintf "{\"type\":\"histogram\",\"count\":%d,\"sum\":%Ld,\"buckets\":{%s}}"
    h.hcount h.hsum (String.concat "," buckets)

(** The metrics registry as a flat JSON object, sorted by key — the dump
    [noelle-trace --compare] diffs. *)
let metrics_to_json () =
  let entry (name, m) =
    let v =
      match m with
      | Counter r -> Printf.sprintf "{\"type\":\"counter\",\"value\":%Ld}" !r
      | Gauge r -> Printf.sprintf "{\"type\":\"gauge\",\"value\":%.6g}" !r
      | Histogram h -> hist_to_json h
    in
    Printf.sprintf "\"%s\":%s" (json_escape name) v
  in
  "{" ^ String.concat "," (List.map entry (metrics ())) ^ "}"

(** The metrics registry as aligned text. *)
let metrics_to_text () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter r -> Buffer.add_string b (Printf.sprintf "%-40s %12Ld\n" name !r)
      | Gauge r -> Buffer.add_string b (Printf.sprintf "%-40s %12.3f\n" name !r)
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "%-40s count %d sum %Ld\n" name h.hcount h.hsum))
    (metrics ());
  Buffer.contents b

(* read NOELLE_TRACE once at program start: any non-empty value other
   than "0" turns the sink on *)
let () =
  match Sys.getenv_opt "NOELLE_TRACE" with
  | Some "" | Some "0" | None -> ()
  | Some _ -> enable ()
