(** The telemetry spine's recording core (see DESIGN.md §10).

    One process-wide, *off-by-default* event buffer and metrics registry
    shared by every layer: the {!Noelle} manager's demand-driven entry
    points, the transactional pipeline, the checkers, the Andersen / DFE /
    SCEV solver loops and the Psim runtime all report through this module,
    and {!Noelle.Telemetry} (the public facade) turns the buffer into a
    Chrome trace-event JSON and the registry into a metrics dump.

    Overhead contract: when tracing is disabled (the default) every entry
    point is a single load-and-branch on {!on} — no allocation, no clock
    read, no table lookup — so instrumented hot loops cost nothing in
    ordinary runs, and [dune runtest] with [NOELLE_TRACE] unset leaves the
    buffer and the registry empty.  Enabling is explicit
    ({!enable} / [Telemetry.install]) or via the [NOELLE_TRACE]
    environment variable, read once at program start.

    Metric naming scheme: dot-separated [layer.object.verb] keys, e.g.
    [noelle.pdg.queries], [noelle.cache.hit], [andersen.constraints],
    [dfe.iterations], [psim.task.restarts].  Span categories name the
    layer: ["analysis"], ["pipeline"], ["check"], ["psim"]. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(** Wall-clock microseconds (absolute; event timestamps are relative to
    {!enable}). *)
let now_us () = Unix.gettimeofday () *. 1e6

(** Run [f] and return (result, elapsed wall milliseconds).  Always
    measures — this is the one timing mechanism shared by [--stats]-style
    reporting and the trace buffer. *)
let time_ms f =
  let t0 = now_us () in
  let r = f () in
  (r, (now_us () -. t0) /. 1000.)

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

let on = ref false

(** Is the telemetry sink recording?  The one branch every instrumentation
    site is guarded by. *)
let enabled () = !on

let t0 = ref 0.0

type phase = Complete | Instant

type event = {
  ename : string;
  ecat : string;
  eph : phase;
  ets : float;                       (** µs since {!enable} *)
  edur : float;                      (** µs; 0 for instants *)
  etid : int;                        (** virtual thread (0 = main, Psim tasks use 1+tid) *)
  edepth : int;                      (** span-stack depth at open *)
  eargs : (string * string) list;
}

(* newest first; reversed by {!events} *)
let buf : event list ref = ref []
let buf_len = ref 0

(** Cap on buffered events; past it events are dropped (and counted in the
    [trace.dropped] counter) rather than exhausting memory. *)
let max_events = ref 1_000_000

let cur_tid = ref 0
let depth = ref 0

(* ------------------------------------------------------------------ *)
(* Request context                                                     *)
(* ------------------------------------------------------------------ *)

(** Correlation id of the request currently being served, if any.  Set by
    {!with_request} (from [Serve.handle_request]); {!record} stamps it
    into the args of every event emitted underneath — manager demand
    entry points, Andersen / PDG / Bounds spans included — so a slow or
    crashed request's trace rows can be grepped out by id. *)
let cur_rid : string option ref = ref None

let current_request () = !cur_rid

(** Run [f] with [rid] as the ambient correlation id (exception-safe,
    restores the previous id; works whether or not tracing is on, since
    the flight recorder below is always-on). *)
let with_request rid f =
  let old = !cur_rid in
  cur_rid := Some rid;
  Fun.protect ~finally:(fun () -> cur_rid := old) f

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(** Always-on crash-forensics ring, independent of {!on} / [NOELLE_TRACE]:
    a few hundred recent waypoints (request starts, store kill points)
    kept in a fixed array so that when a serve process dies mid-write the
    survivor can say exactly which request and which kill point were in
    flight.  Cost when idle: one array store per waypoint, no allocation
    beyond the event record itself. *)

type flight_event = {
  fts : float;  (** absolute µs ({!now_us}) — flight events outlive {!t0} resets *)
  fname : string;
  frid : string option;  (** ambient correlation id at push time *)
  fargs : (string * string) list;
}

let flight_cap = 256
let flight_ring : flight_event option array = Array.make flight_cap None
let flight_head = ref 0  (* next slot to write *)
let flight_total = ref 0 (* pushes since reset; dropped = total - cap *)

(** Push a waypoint onto the flight ring (always records, even with
    tracing off; oldest entry overwritten past {!flight_cap}). *)
let flight ?(args = []) name =
  flight_ring.(!flight_head) <-
    Some { fts = now_us (); fname = name; frid = !cur_rid; fargs = args };
  flight_head := (!flight_head + 1) mod flight_cap;
  incr flight_total

let flight_reset () =
  Array.fill flight_ring 0 flight_cap None;
  flight_head := 0;
  flight_total := 0

(** Retained flight events, oldest first. *)
let flight_events () =
  let n = min !flight_total flight_cap in
  List.init n (fun i ->
      match flight_ring.((!flight_head - n + i + flight_cap * 2) mod flight_cap) with
      | Some e -> e
      | None -> assert false)

let flight_count () = !flight_total

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

(* HDR-style bucketing: log2 buckets subdivided into [sub_count] linear
   sub-buckets, so the relative width of any bucket is at most
   1/sub_count (12.5% with sub_count = 8) and a quantile estimated at a
   bucket midpoint is within half that of the true value.  Values below
   [sub_count] get exact unit buckets. *)
let sub_bits = 3
let sub_count = 1 lsl sub_bits (* 8 *)

(* one unit bucket per value < sub_count, then sub_count sub-buckets per
   log2 range up to 2^63 *)
let nbuckets = sub_count + ((63 - sub_bits) * sub_count)

type hist = {
  mutable hcount : int;
  mutable hsum : int64;
  hbuckets : int array;
      (** HDR buckets: values < [sub_count] are exact; above that, each
          power-of-two range splits into [sub_count] linear sub-buckets *)
}

type metric =
  | Counter of int64 ref   (** monotonic *)
  | Gauge of float ref
  | Histogram of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let reset () =
  buf := [];
  buf_len := 0;
  depth := 0;
  cur_tid := 0;
  Hashtbl.reset registry

(** Start recording (resetting the buffer and registry unless
    [keep] is set). *)
let enable ?(keep = false) () =
  if not keep then reset ();
  t0 := now_us ();
  on := true;
  (* register the drop counter up front so [noelle-trace --check] can
     tell "zero events dropped" apart from "truncation unobserved" *)
  match Hashtbl.find_opt registry "trace.dropped" with
  | Some _ -> ()
  | None -> Hashtbl.replace registry "trace.dropped" (Counter (ref 0L))

let disable () = on := false

let record (e : event) =
  (* stamp the ambient correlation id so every span/event emitted under
     [with_request] — at any depth — can be attributed to its request *)
  let e =
    match !cur_rid with
    | Some r when not (List.mem_assoc "rid" e.eargs) ->
      { e with eargs = ("rid", r) :: e.eargs }
    | _ -> e
  in
  if !buf_len < !max_events then begin
    buf := e :: !buf;
    incr buf_len
  end
  else begin
    match Hashtbl.find_opt registry "trace.dropped" with
    | Some (Counter r) -> r := Int64.add !r 1L
    | _ -> Hashtbl.replace registry "trace.dropped" (Counter (ref 1L))
  end

(** Buffered events, chronological by close time. *)
let events () = List.rev !buf

let event_count () = !buf_len

(* -- counters -- *)

let counter_ref name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> r
  | Some _ -> invalid_arg (name ^ " is not a counter")
  | None ->
    let r = ref 0L in
    Hashtbl.replace registry name (Counter r);
    r

(** Register counter [name] (at 0) without incrementing it; no-op when
    disabled.  Instrumentation sites call this so that a counter whose
    value happens to be zero still appears in metric dumps — consumers
    (e.g. [noelle-trace --check]) can then tell "measured as zero" apart
    from "never instrumented". *)
let touch name = if !on then ignore (counter_ref name)

(** Add [n] (>= 0) to monotonic counter [name]; no-op when disabled. *)
let add name n =
  if !on && n > 0 then begin
    let r = counter_ref name in
    r := Int64.add !r (Int64.of_int n)
  end

let incr_m name = add name 1

(** Current value of counter [name] (0 when absent or not a counter). *)
let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> !r
  | _ -> 0L

(* -- gauges -- *)

let set_gauge name v =
  if !on then
    match Hashtbl.find_opt registry name with
    | Some (Gauge r) -> r := v
    | Some _ -> invalid_arg (name ^ " is not a gauge")
    | None -> Hashtbl.replace registry name (Gauge (ref v))

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge r) -> Some !r
  | _ -> None

(* -- histograms -- *)

let hist_ref name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (name ^ " is not a histogram")
  | None ->
    let h = { hcount = 0; hsum = 0L; hbuckets = Array.make nbuckets 0 } in
    Hashtbl.replace registry name (Histogram h);
    h

let floor_log2 (v : int64) =
  let rec go i x =
    if Int64.compare x 1L <= 0 then i else go (i + 1) (Int64.shift_right_logical x 1)
  in
  go 0 v

(** Bucket index of value [v] (>= 0). *)
let bucket_of (v : int64) =
  if Int64.compare v (Int64.of_int sub_count) < 0 then Int64.to_int (max 0L v)
  else begin
    let m = min 62 (floor_log2 v) in
    (* linear position of the top [sub_bits] bits below the leading one *)
    let sub =
      Int64.to_int (Int64.shift_right_logical v (m - sub_bits)) - sub_count
    in
    ((m - sub_bits) * sub_count) + sub_count + sub
  end

(** Inclusive lower bound of bucket [i]. *)
let bucket_lower i =
  if i < sub_count then Int64.of_int i
  else begin
    let b = (i - sub_count) / sub_count in
    let sub = (i - sub_count) mod sub_count in
    Int64.shift_left (Int64.of_int (sub_count + sub)) b
  end

(** Width (number of distinct values) of bucket [i]. *)
let bucket_width i =
  if i < sub_count then 1L
  else Int64.shift_left 1L ((i - sub_count) / sub_count)

(** Representative midpoint of bucket [i] — the value quantile estimates
    report, within 1/(2*sub_count) relative error of anything in the
    bucket. *)
let bucket_mid i =
  let w = bucket_width i in
  Int64.add (bucket_lower i) (Int64.div (Int64.sub w 1L) 2L)

(** Record one observation of [v] (clamped at 0) into log-scale histogram
    [name]; no-op when disabled. *)
let observe name v =
  if !on then begin
    let v = if Int64.compare v 0L < 0 then 0L else v in
    let h = hist_ref name in
    h.hcount <- h.hcount + 1;
    h.hsum <- Int64.add h.hsum v;
    let b = bucket_of v in
    h.hbuckets.(b) <- h.hbuckets.(b) + 1
  end

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> Some h
  | _ -> None

(** Estimate the [q]-quantile (0 < q <= 1) of histogram [h] by cumulative
    bucket walk, reporting the midpoint of the bucket holding the target
    rank.  Relative error is bounded by half the bucket's relative width:
    <= 1/(2*sub_count) = 6.25%, well inside the 12.5% contract.  Returns
    0 for an empty histogram. *)
let quantile (h : hist) (q : float) : int64 =
  if h.hcount = 0 then 0L
  else begin
    let target =
      max 1 (min h.hcount (int_of_float (ceil (q *. float_of_int h.hcount))))
    in
    let rec walk i seen =
      if i >= nbuckets then bucket_mid (nbuckets - 1)
      else begin
        let seen = seen + h.hbuckets.(i) in
        if seen >= target then bucket_mid i else walk (i + 1) seen
      end
    in
    walk 0 0
  end

(** All registered metrics, sorted by name. *)
let metrics () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Counter metrics only, sorted — the snapshot bench rows diff. *)
let counters () =
  List.filter_map
    (fun (k, m) -> match m with Counter r -> Some (k, !r) | _ -> None)
    (metrics ())

(** Gauge metrics only, sorted — bench-derived rates and percentiles live
    here, out of the counter namespace diffed by [--compare]. *)
let gauges () =
  List.filter_map
    (fun (k, m) -> match m with Gauge r -> Some (k, !r) | _ -> None)
    (metrics ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sname : string;
  scat : string;
  stid : int;
  sstart : float;          (** absolute µs *)
  sdepth : int;
  mutable sargs : (string * string) list;
  slive : bool;            (** false for the disabled-path dummy *)
}

let null_span =
  { sname = ""; scat = ""; stid = 0; sstart = 0.0; sdepth = 0; sargs = []; slive = false }

let begin_span ?(cat = "") ?(args = []) name =
  if not !on then null_span
  else begin
    let s =
      { sname = name; scat = cat; stid = !cur_tid; sstart = now_us ();
        sdepth = !depth; sargs = args; slive = true }
    in
    incr depth;
    s
  end

(** Attach a tag to an open span (shown in the Chrome trace args). *)
let tag (s : span) k v = if s.slive then s.sargs <- s.sargs @ [ (k, v) ]

let end_span ?(args = []) (s : span) =
  if s.slive then begin
    depth := max 0 (!depth - 1);
    let close = now_us () in
    record
      {
        ename = s.sname;
        ecat = s.scat;
        eph = Complete;
        ets = s.sstart -. !t0;
        edur = close -. s.sstart;
        etid = s.stid;
        edepth = s.sdepth;
        eargs = s.sargs @ args;
      }
  end

(** Run [f] inside a span (exception-safe; the span closes either way,
    tagged [raised=exn] if [f] raised). *)
let span ?cat ?args name f =
  if not !on then f ()
  else begin
    let s = begin_span ?cat ?args name in
    match f () with
    | r ->
      end_span s;
      r
    | exception e ->
      tag s "raised" (Printexc.to_string e);
      end_span s;
      raise e
  end

(** {!time_ms} that also records the interval as a span when enabled:
    the single timing mechanism for [--stats]-style reports. *)
let timed_span ?cat ?args name f =
  if not !on then time_ms f
  else begin
    let s = begin_span ?cat ?args name in
    match time_ms f with
    | r, ms ->
      tag s "ms" (Printf.sprintf "%.3f" ms);
      end_span s;
      (r, ms)
    | exception e ->
      tag s "raised" (Printexc.to_string e);
      end_span s;
      raise e
  end

(** Record an instant event. *)
let instant ?(cat = "") ?(args = []) name =
  if !on then
    record
      { ename = name; ecat = cat; eph = Instant; ets = now_us () -. !t0;
        edur = 0.0; etid = !cur_tid; edepth = !depth; eargs = args }

(** Record a complete event whose opening time was captured earlier with
    {!now_us} (used by Psim for per-task swimlanes, where fibers
    interleave and a stack discipline does not hold). *)
let complete ?(cat = "") ?(args = []) ?tid ~start_us name =
  if !on then
    record
      {
        ename = name;
        ecat = cat;
        eph = Complete;
        ets = start_us -. !t0;
        edur = now_us () -. start_us;
        etid = (match tid with Some t -> t | None -> !cur_tid);
        edepth = !depth;
        eargs = args;
      }

(** Run [f] with events attributed to virtual thread [tid] (Chrome trace
    rows). *)
let with_tid tid f =
  if not !on then f ()
  else begin
    let old = !cur_tid in
    cur_tid := tid;
    Fun.protect ~finally:(fun () -> cur_tid := old) f
  end

(* ------------------------------------------------------------------ *)
(* JSON (emission and parsing)                                         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** A minimal JSON reader, used to round-trip-validate the Chrome trace
    and to parse metric dumps for [noelle-trace --compare]. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else error ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string";
        match s.[!pos] with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
          advance ();
          if !pos >= n then error "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then error "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error "bad \\u escape"
            in
            (* UTF-8 encode (we only ever emit < 0x80, but accept more) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            pos := !pos + 4
          | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then error "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> error "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          elems []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> error "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_list = function Arr l -> Some l | _ -> None
  let to_string = function Str s -> Some s | _ -> None
  let to_num = function Num f -> Some f | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let args_to_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args)
  ^ "}"

let event_to_json (e : event) =
  match e.eph with
  | Complete ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
       \"pid\":1,\"tid\":%d,\"args\":%s}"
      (json_escape e.ename)
      (json_escape (if e.ecat = "" then "default" else e.ecat))
      e.ets e.edur e.etid
      (args_to_json (("depth", string_of_int e.edepth) :: e.eargs))
  | Instant ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\
       \"pid\":1,\"tid\":%d,\"args\":%s}"
      (json_escape e.ename)
      (json_escape (if e.ecat = "" then "default" else e.ecat))
      e.ets e.etid (args_to_json e.eargs)

(** The whole buffer as Chrome trace-event JSON (object format: loadable
    in Perfetto / [chrome://tracing]). *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (event_to_json e))
    (events ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let hist_to_json (h : hist) =
  let buckets =
    Array.to_list h.hbuckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) -> Printf.sprintf "\"%Ld\":%d" (bucket_lower i) c)
  in
  let pcts =
    if h.hcount = 0 then ""
    else
      Printf.sprintf ",\"p50\":%Ld,\"p95\":%Ld,\"p99\":%Ld,\"p999\":%Ld"
        (quantile h 0.5) (quantile h 0.95) (quantile h 0.99) (quantile h 0.999)
  in
  Printf.sprintf
    "{\"type\":\"histogram\",\"count\":%d,\"sum\":%Ld%s,\"buckets\":{%s}}"
    h.hcount h.hsum pcts (String.concat "," buckets)

(** The flight ring as JSON — what [noelle-serve] dumps to
    [_serve/flight.json] on trap and crash recovery replays. *)
let flight_to_json () =
  let ev (e : flight_event) =
    let rid =
      match e.frid with
      | Some r -> Printf.sprintf ",\"rid\":\"%s\"" (json_escape r)
      | None -> ""
    in
    Printf.sprintf "{\"ts\":%.3f,\"name\":\"%s\"%s,\"args\":%s}" e.fts
      (json_escape e.fname) rid (args_to_json e.fargs)
  in
  Printf.sprintf "{\"flightEvents\":[%s],\"dropped\":%d}"
    (String.concat "," (List.map ev (flight_events ())))
    (max 0 (!flight_total - flight_cap))

(** The metrics registry as a flat JSON object, sorted by key — the dump
    [noelle-trace --compare] diffs. *)
let metrics_to_json () =
  let entry (name, m) =
    let v =
      match m with
      | Counter r -> Printf.sprintf "{\"type\":\"counter\",\"value\":%Ld}" !r
      | Gauge r -> Printf.sprintf "{\"type\":\"gauge\",\"value\":%.6g}" !r
      | Histogram h -> hist_to_json h
    in
    Printf.sprintf "\"%s\":%s" (json_escape name) v
  in
  "{" ^ String.concat "," (List.map entry (metrics ())) ^ "}"

(** The metrics registry as aligned text. *)
let metrics_to_text () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter r -> Buffer.add_string b (Printf.sprintf "%-40s %12Ld\n" name !r)
      | Gauge r -> Buffer.add_string b (Printf.sprintf "%-40s %12.3f\n" name !r)
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "%-40s count %d sum %Ld\n" name h.hcount h.hsum))
    (metrics ());
  Buffer.contents b

(* read NOELLE_TRACE once at program start: any non-empty value other
   than "0" turns the sink on *)
let () =
  match Sys.getenv_opt "NOELLE_TRACE" with
  | Some "" | Some "0" | None -> ()
  | Some _ -> enable ()
