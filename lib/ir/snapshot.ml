(** Module checkpoints for the transactional pass pipeline.

    A snapshot is a cheap deep copy of an {!Irmod.t}: fresh instruction and
    block records (generalizing {!Builder.clone_func}), fresh global
    initializers and a fresh metadata table, while the immutable payloads
    (operand values, labels, strings) stay shared.  {!restore} rolls a
    module back to a captured state in place, so every handle to the module
    (a {e Noelle} manager, a driver) keeps working across a rollback.
    {!diff} renders a compact structural diff between two modules for
    rollback diagnostics. *)

(** Deep-copy a function, keeping its name, ids and labels. *)
let copy_func (f : Func.t) : Func.t =
  let g =
    Func.create ~name:f.Func.fname
      ~params:(Array.to_list f.Func.params)
      ~ret:f.Func.ret
  in
  g.Func.next_id <- f.Func.next_id;
  g.Func.blocks <- f.Func.blocks;
  g.Func.is_declaration <- f.Func.is_declaration;
  Hashtbl.iter
    (fun id (i : Instr.inst) -> Hashtbl.replace g.Func.body id { i with Instr.op = i.Instr.op })
    f.Func.body;
  Hashtbl.iter
    (fun id (b : Func.block) -> Hashtbl.replace g.Func.blks id { b with Func.insts = b.Func.insts })
    f.Func.blks;
  g

let copy_global (g : Irmod.global) : Irmod.global =
  { g with Irmod.init = Option.map Array.copy g.Irmod.init }

(** Deep-copy a whole module. *)
let copy_module (m : Irmod.t) : Irmod.t =
  let c = Irmod.create ~name:m.Irmod.mname () in
  List.iter (fun g -> Irmod.add_global c (copy_global g)) (Irmod.globals m);
  List.iter (fun f -> Irmod.add_func c (copy_func f)) (Irmod.functions m);
  Hashtbl.iter (fun k v -> Meta.set c.Irmod.meta k v) m.Irmod.meta;
  c

type t = { smod : Irmod.t (** private deep copy; never handed out mutable *) }

(** Checkpoint the current state of [m]. *)
let capture (m : Irmod.t) : t = { smod = copy_module m }

(** Read-only view of the captured module (for diffing). *)
let view (s : t) : Irmod.t = s.smod

(** A fresh mutable module equal to the captured state (e.g. the pristine
    original kept around for sequential fallback). *)
let to_module (s : t) : Irmod.t = copy_module s.smod

(** Roll [m] back to the captured state, in place.  The snapshot remains
    valid and can be restored again. *)
let restore (s : t) (m : Irmod.t) =
  Hashtbl.reset m.Irmod.globals;
  Hashtbl.reset m.Irmod.funcs;
  m.Irmod.gorder <- [];
  m.Irmod.forder <- [];
  Hashtbl.reset m.Irmod.meta;
  List.iter (fun g -> Irmod.add_global m (copy_global g)) (Irmod.globals s.smod);
  List.iter (fun f -> Irmod.add_func m (copy_func f)) (Irmod.functions s.smod);
  Hashtbl.iter (fun k v -> Meta.set m.Irmod.meta k v) s.smod.Irmod.meta

(* ------------------------------------------------------------------ *)
(* Structural diff                                                     *)
(* ------------------------------------------------------------------ *)

let func_lines (f : Func.t) = String.split_on_char '\n' (Printer.func_str f)

(** Lines present in [xs] but not in [ys] (multiset difference, order of
    [xs] preserved). *)
let lines_minus xs ys =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    ys;
  List.filter
    (fun l ->
      match Hashtbl.find_opt counts l with
      | Some n when n > 0 ->
        Hashtbl.replace counts l (n - 1);
        false
      | _ -> l <> "")
    xs

(** Structural diff between module [a] (before) and [b] (after): function
    additions/removals and per-function line changes, capped at [limit]
    lines.  Returns [[]] when the modules print identically. *)
let diff ?(limit = 24) (a : Irmod.t) (b : Irmod.t) : string list =
  let out = ref [] and n = ref 0 in
  let emit line =
    if !n < limit then out := line :: !out;
    incr n
  in
  let anames = List.map (fun (f : Func.t) -> f.Func.fname) (Irmod.functions a) in
  let bnames = List.map (fun (f : Func.t) -> f.Func.fname) (Irmod.functions b) in
  List.iter
    (fun fn ->
      if not (List.mem fn bnames) then
        emit (Printf.sprintf "- function @%s removed (%d insts)" fn
                (Func.num_insts (Irmod.func a fn))))
    anames;
  List.iter
    (fun fn ->
      if not (List.mem fn anames) then
        emit (Printf.sprintf "+ function @%s added (%d insts)" fn
                (Func.num_insts (Irmod.func b fn))))
    bnames;
  List.iter
    (fun fn ->
      if List.mem fn bnames then begin
        let la = func_lines (Irmod.func a fn) in
        let lb = func_lines (Irmod.func b fn) in
        if la <> lb then begin
          emit (Printf.sprintf "@ function @%s changed:" fn);
          List.iter (fun l -> emit ("  - " ^ String.trim l)) (lines_minus la lb);
          List.iter (fun l -> emit ("  + " ^ String.trim l)) (lines_minus lb la)
        end
      end)
    anames;
  let ga = List.map (fun (g : Irmod.global) -> g.Irmod.gname) (Irmod.globals a) in
  let gb = List.map (fun (g : Irmod.global) -> g.Irmod.gname) (Irmod.globals b) in
  List.iter
    (fun g -> if not (List.mem g gb) then emit (Printf.sprintf "- global @%s removed" g))
    ga;
  List.iter
    (fun g -> if not (List.mem g ga) then emit (Printf.sprintf "+ global @%s added" g))
    gb;
  let shown = List.rev !out in
  if !n > limit then shown @ [ Printf.sprintf "... (%d more diff lines)" (!n - limit) ]
  else shown

(** [equal a b] is true when the two modules print identically (used by
    tests and by no-op detection). *)
let equal (a : Irmod.t) (b : Irmod.t) =
  String.equal (Printer.module_str a) (Printer.module_str b)
