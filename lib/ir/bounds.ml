(** Symbolic loop-bound and cost analysis — profile-free planning
    (DESIGN.md §13).

    [Bounds.analyze] computes, for every natural loop of a function and
    with no dynamic profile:

    - a {e trip bound}: how many times the loop header executes per loop
      invocation, as a symbolic affine expression over one loop-invariant
      symbol.  Exact for canonically counted loops (the {!Scev} shapes,
      generalized to symbolic invariant bounds and do-while tests); for
      everything else a Looper/Loopus-style difference-constraint
      abstraction derives per-iteration progress intervals
      ([x' <= x + c] joined over all paths through the body) and turns
      any exit test with guaranteed minimum progress into an upper bound.
      No SMT solver is involved: the local bounds come straight from
      instruction effects and the join is interval hull.
    - a {e cost polynomial}: straight-line instructions of the body times
      the trip bound, composed bottom-up over the loop forest so an inner
      symbolic bound multiplies into its parent's per-iteration cost.

    The lattice degrades conservatively, mirroring how Andersen budgets
    degrade: [Unbounded] is claimed only for structurally exitless loops,
    anything unproven is [Unknown], and either top poisons every cost that
    depends on it.  Trip bounds are the {e sound} artifact — the
    [noelle-bounds] sweep checks interpreter-measured header counts
    against them — while cost polynomials are planning estimates (the
    divisor of a symbolic trip may be dropped, over-approximating by at
    most that factor, and clamps are not representable in a monomial). *)

module IntSet = Loopnest.IntSet

(* ------------------------------------------------------------------ *)
(* The symbolic trip lattice                                           *)
(* ------------------------------------------------------------------ *)

(** Symbolic count: [max slo (ceil ((snum * sv + soff) / sden))], with
    [sv = None] meaning the count is the constant
    [max slo (ceil (soff / sden))].  [sden > 0] always. *)
type sym = {
  sv : Instr.value option;  (** loop-invariant symbol ([None] = constant) *)
  snum : int64;             (** coefficient of [sv] *)
  soff : int64;             (** constant addend *)
  sden : int64;             (** positive divisor *)
  slo : int64;              (** clamp floor (0, or 1 for do-while shapes) *)
}

type trip =
  | Exact of sym      (** header executions per invocation, exactly *)
  | Upper of sym      (** sound upper bound *)
  | Unknown           (** exits exist but no bound was proven *)
  | Unbounded         (** structurally exitless: the loop cannot terminate *)

(** Per-iteration monotony of a header phi, from its progress interval. *)
type mono = Increasing | Decreasing | Steady | Unordered

(* ------------------------------------------------------------------ *)
(* Cost polynomials                                                    *)
(* ------------------------------------------------------------------ *)

type term = {
  coef : int64;
  vars : Instr.value list;  (** sorted; the monomial's symbols *)
}

type cost = Poly of term list | Cunknown | Cunbounded

type origin = Affine | Diffcon | Structural

type loop_bound = {
  lkey : string;              (** {!Ids.loop_key} *)
  lheader : int;
  ldepth : int;
  liters : trip;              (** body iterations per invocation *)
  lheadx : trip;              (** header executions per invocation (validated) *)
  lcost : cost;               (** instructions per invocation, estimate *)
  lmono : (int * mono) list;  (** header phi id -> monotony *)
  lorigin : origin;
}

type summary = {
  floops : loop_bound list;   (** innermost-first *)
  fcost : cost;               (** instructions per function call, estimate *)
}

(* ------------------------------------------------------------------ *)
(* Arithmetic helpers                                                  *)
(* ------------------------------------------------------------------ *)

(** Ceiling division for [b > 0] (Int64.div truncates toward zero). *)
let cdiv a b =
  let q = Int64.div a b and r = Int64.rem a b in
  if Int64.compare r 0L > 0 then Int64.add q 1L else q

let sym_const c = { sv = None; snum = 0L; soff = c; sden = 1L; slo = 0L }

(** Constant value of a symbol-free [sym]. *)
let sym_value (s : sym) : int64 option =
  match s.sv with
  | Some _ -> None
  | None -> Some (Int64.max s.slo (cdiv s.soff s.sden))

(** Constant value of a trip bound, when it has one. *)
let trip_const = function
  | Exact s | Upper s -> sym_value s
  | Unknown | Unbounded -> None

let trip_is_exact = function Exact _ -> true | _ -> false

(** [max 0 q + 1]: shifting the clamp floor along with the numerator keeps
    the representation exact ([max 1 (q + 1) = max 0 q + 1]). *)
let plus_one s =
  { s with soff = Int64.add s.soff s.sden; slo = Int64.max 1L s.slo }

let clamp_one s = { s with slo = Int64.max 1L s.slo }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let value_to_string = function
  | Instr.Cint c -> Int64.to_string c
  | Instr.Cfloat x -> string_of_float x
  | Instr.Null -> "null"
  | Instr.Arg i -> Printf.sprintf "arg%d" i
  | Instr.Glob g -> "@" ^ g
  | Instr.Reg r -> Printf.sprintf "%%%d" r

let sym_to_string (s : sym) =
  match sym_value s with
  | Some c -> Int64.to_string c
  | None ->
    let v = match s.sv with Some v -> value_to_string v | None -> "?" in
    let core =
      if Int64.equal s.snum 1L then v
      else if Int64.equal s.snum (-1L) then "-" ^ v
      else Printf.sprintf "%Ld*%s" s.snum v
    in
    let num =
      if Int64.equal s.soff 0L then core
      else if Int64.compare s.soff 0L > 0 then Printf.sprintf "%s + %Ld" core s.soff
      else Printf.sprintf "%s - %Ld" core (Int64.neg s.soff)
    in
    let q =
      if Int64.equal s.sden 1L then num
      else Printf.sprintf "ceil((%s)/%Ld)" num s.sden
    in
    Printf.sprintf "max(%Ld, %s)" s.slo q

let trip_to_string = function
  | Exact s -> sym_to_string s
  | Upper s -> "<= " ^ sym_to_string s
  | Unknown -> "unknown"
  | Unbounded -> "unbounded"

let mono_to_string = function
  | Increasing -> "increasing"
  | Decreasing -> "decreasing"
  | Steady -> "steady"
  | Unordered -> "unordered"

(* ------------------------------------------------------------------ *)
(* Polynomial arithmetic                                               *)
(* ------------------------------------------------------------------ *)

let norm_terms ts =
  ts
  |> List.filter (fun t -> not (Int64.equal t.coef 0L))
  |> List.map (fun t -> { t with vars = List.sort compare t.vars })
  |> List.sort (fun a b -> compare a.vars b.vars)
  |> List.fold_left
       (fun acc t ->
         match acc with
         | t0 :: rest when t0.vars = t.vars ->
           { t0 with coef = Int64.add t0.coef t.coef } :: rest
         | _ -> t :: acc)
       []
  |> List.filter (fun t -> not (Int64.equal t.coef 0L))
  |> List.rev

let pconst c = Poly (norm_terms [ { coef = c; vars = [] } ])

let cost_add a b =
  match (a, b) with
  | Cunbounded, _ | _, Cunbounded -> Cunbounded
  | Cunknown, _ | _, Cunknown -> Cunknown
  | Poly x, Poly y -> Poly (norm_terms (x @ y))

(** Multiply a polynomial by a symbolic trip count.  When the divisor does
    not divide out it is dropped (over-approximates by at most [sden]);
    the clamp floor is likewise not representable — cost is an estimate. *)
let mul_sym ts (s : sym) =
  match s.sv with
  | None ->
    let k = Int64.max s.slo (cdiv s.soff s.sden) in
    norm_terms (List.map (fun t -> { t with coef = Int64.mul t.coef k }) ts)
  | Some v ->
    let num, off =
      if
        Int64.equal (Int64.rem s.snum s.sden) 0L
        && Int64.equal (Int64.rem s.soff s.sden) 0L
      then (Int64.div s.snum s.sden, Int64.div s.soff s.sden)
      else (s.snum, s.soff)
    in
    norm_terms
      (List.concat_map
         (fun t ->
           [
             { coef = Int64.mul t.coef num; vars = v :: t.vars };
             { coef = Int64.mul t.coef off; vars = t.vars };
           ])
         ts)

let cost_mul_trip c trip =
  match (c, trip) with
  | Cunbounded, _ | _, Unbounded -> Cunbounded
  | Cunknown, _ | _, Unknown -> Cunknown
  | Poly ts, (Exact s | Upper s) -> Poly (mul_sym ts s)

(** Degree of the cost polynomial, [None] at a lattice top. *)
let cost_degree = function
  | Poly ts -> Some (List.fold_left (fun d t -> max d (List.length t.vars)) 0 ts)
  | Cunknown | Cunbounded -> None

(** Constant value of a symbol-free cost polynomial. *)
let cost_const = function
  | Poly ts when List.for_all (fun t -> t.vars = []) ts ->
    Some (List.fold_left (fun acc t -> Int64.add acc t.coef) 0L ts)
  | _ -> None

let term_to_string t =
  match t.vars with
  | [] -> Int64.to_string t.coef
  | vs ->
    let m = String.concat "*" (List.map value_to_string vs) in
    if Int64.equal t.coef 1L then m else Printf.sprintf "%Ld*%s" t.coef m

let cost_to_string = function
  | Cunknown -> "unknown"
  | Cunbounded -> "unbounded"
  | Poly [] -> "0"
  | Poly ts -> String.concat " + " (List.map term_to_string ts)

(* ------------------------------------------------------------------ *)
(* Exact trip counts for counted loops                                 *)
(* ------------------------------------------------------------------ *)

let negate = function
  | Instr.Slt -> Instr.Sge
  | Instr.Sge -> Instr.Slt
  | Instr.Sle -> Instr.Sgt
  | Instr.Sgt -> Instr.Sle
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq

let header_phis (f : Func.t) (l : Loopnest.loop) =
  List.filter
    (fun (i : Instr.inst) ->
      match i.Instr.op with Instr.Phi _ -> true | _ -> false)
    (Func.insts_of_block f l.Loopnest.header)

(** A counted recurrence: start from outside, [phi + step] from inside. *)
type counted = {
  cphi : Instr.inst;
  cstart : Instr.value;
  cstep : int64;          (** nonzero *)
  cupdate : int;          (** register id of the update instruction *)
}

let counted_phi (f : Func.t) (l : Loopnest.loop) (phi : Instr.inst) :
    counted option =
  match phi.Instr.op with
  | Instr.Phi incs -> (
    let outside, inside =
      List.partition (fun (p, _) -> not (Loopnest.contains l p)) incs
    in
    match (outside, inside) with
    | [ (_, start) ], [ (_, Instr.Reg u) ] -> (
      match Func.inst_opt f u with
      | Some ui when Loopnest.contains l ui.Instr.parent -> (
        let self v = Instr.value_equal v (Instr.Reg phi.Instr.id) in
        let mk step =
          if Int64.equal step 0L then None
          else Some { cphi = phi; cstart = start; cstep = step; cupdate = u }
        in
        match ui.Instr.op with
        | Instr.Bin (Instr.Add, a, Instr.Cint c) when self a -> mk c
        | Instr.Bin (Instr.Add, Instr.Cint c, a) when self a -> mk c
        | Instr.Bin (Instr.Sub, a, Instr.Cint c) when self a -> mk (Int64.neg c)
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(** Number of [k >= 0] with [cont (start + k*step, bnd)], the continue
    region being a prefix in [k].  At most one of start/bound may be
    symbolic (the single-symbol restriction of {!sym}). *)
let count_sym (f : Func.t) (l : Loopnest.loop) ~(start : Instr.value)
    ~(step : int64) ~(cont : Instr.cmp) ~(bnd : Instr.value) : sym option =
  let invariant v =
    match v with
    | Instr.Cint _ -> false (* handled by the constant cases *)
    | v -> Scev.is_invariant_value f l v
  in
  let adj = match cont with Instr.Sle | Instr.Sge -> 1L | _ -> 0L in
  let up = Int64.compare step 0L > 0 in
  match (cont, up, start, bnd) with
  | (Instr.Slt | Instr.Sle), true, Instr.Cint s, Instr.Cint b ->
    Some { sv = None; snum = 0L; soff = Int64.add (Int64.sub b s) adj;
           sden = step; slo = 0L }
  | (Instr.Slt | Instr.Sle), true, Instr.Cint s, v when invariant v ->
    Some { sv = Some v; snum = 1L; soff = Int64.add (Int64.neg s) adj;
           sden = step; slo = 0L }
  | (Instr.Slt | Instr.Sle), true, v, Instr.Cint b when invariant v ->
    Some { sv = Some v; snum = -1L; soff = Int64.add b adj;
           sden = step; slo = 0L }
  | (Instr.Sgt | Instr.Sge), false, Instr.Cint s, Instr.Cint b ->
    Some { sv = None; snum = 0L; soff = Int64.add (Int64.sub s b) adj;
           sden = Int64.neg step; slo = 0L }
  | (Instr.Sgt | Instr.Sge), false, Instr.Cint s, v when invariant v ->
    Some { sv = Some v; snum = -1L; soff = Int64.add s adj;
           sden = Int64.neg step; slo = 0L }
  | (Instr.Sgt | Instr.Sge), false, v, Instr.Cint b when invariant v ->
    Some { sv = Some v; snum = 1L; soff = Int64.add (Int64.neg b) adj;
           sden = Int64.neg step; slo = 0L }
  | Instr.Ne, _, Instr.Cint s, Instr.Cint b ->
    (* terminates iff the iteration lattice hits the bound exactly *)
    let diff = if up then Int64.sub b s else Int64.sub s b in
    let st = Int64.abs step in
    if Int64.compare diff 0L >= 0 && Int64.equal (Int64.rem diff st) 0L then
      Some (sym_const (Int64.div diff st))
    else None
  | Instr.Eq, _, Instr.Cint s, Instr.Cint b ->
    (* continue while phi = bnd: one body at most (a nonzero step leaves) *)
    Some (sym_const (if Int64.equal s b then 1L else 0L))
  | _ -> None

(** Exact [(body iterations, header executions)] for canonically counted
    loops: a single exit edge leaving from the header or the unique latch,
    testing a counted header phi (or its update) against an invariant
    bound. *)
let exact_trips (f : Func.t) (l : Loopnest.loop) : (trip * trip) option =
  match Loopnest.exit_edges f l with
  | [ (eb, _) ]
    when eb = l.Loopnest.header || l.Loopnest.latches = [ eb ] -> (
    match Func.terminator f eb with
    | Some { Instr.op = Instr.Cbr (Instr.Reg c, tdst, fdst); _ }
      when tdst <> fdst -> (
      match Func.inst_opt f c with
      | Some { Instr.op = Instr.Icmp (pred, Instr.Reg x, bnd); _ }
        when Scev.is_invariant_value f l bnd -> (
        let cont =
          if Loopnest.contains l tdst then pred else negate pred
        in
        let cand =
          List.find_map
            (fun phi ->
              match counted_phi f l phi with
              | Some g when x = phi.Instr.id -> Some (g, `Phi)
              | Some g when x = g.cupdate -> Some (g, `Update)
              | _ -> None)
            (header_phis f l)
        in
        match cand with
        | None -> None
        | Some (g, tested) -> (
          match count_sym f l ~start:g.cstart ~step:g.cstep ~cont ~bnd with
          | None -> None
          | Some q -> (
            let latch_test = List.mem eb l.Loopnest.latches in
            match (latch_test, tested) with
            | false, `Phi ->
              (* while-shape: q bodies, q+1 header executions *)
              Some (Exact q, Exact (plus_one q))
            | true, `Phi ->
              (* do-while testing the pre-update value: q+1 bodies *)
              Some (Exact (plus_one q), Exact (plus_one q))
            | true, `Update ->
              (* do-while testing the updated value: max(1, q) bodies *)
              Some (Exact (clamp_one q), Exact (clamp_one q))
            | false, `Update ->
              (* rotated form: leave to the difference-constraint path *)
              None)))
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Difference-constraint upper bounds (Looper/Loopus style)            *)
(* ------------------------------------------------------------------ *)

let hull a b =
  match (a, b) with
  | Some (l1, h1), Some (l2, h2) -> Some (Int64.min l1 l2, Int64.max h1 h2)
  | _ -> None

(** Interval of [v - (value of header phi [pid] at iteration start)],
    tracking constant increments through adds/subs and joining at body
    phis and selects — the [x' <= x + c] local bounds of the abstraction.
    [None] is top (reset to an invariant, a cycle, or an unmodelled op). *)
let rec delta_of (f : Func.t) (l : Loopnest.loop) ~pid visited
    (v : Instr.value) : (int64 * int64) option =
  match v with
  | Instr.Reg r when r = pid -> Some (0L, 0L)
  | Instr.Reg r when not (IntSet.mem r visited) -> (
    match Func.inst_opt f r with
    | Some i when Loopnest.contains l i.Instr.parent -> (
      let visited = IntSet.add r visited in
      let recur = delta_of f l ~pid visited in
      let shift c d =
        Option.map (fun (lo, hi) -> (Int64.add lo c, Int64.add hi c)) d
      in
      match i.Instr.op with
      | Instr.Bin (Instr.Add, a, Instr.Cint c) -> shift c (recur a)
      | Instr.Bin (Instr.Add, Instr.Cint c, a) -> shift c (recur a)
      | Instr.Bin (Instr.Sub, a, Instr.Cint c) -> shift (Int64.neg c) (recur a)
      | Instr.Phi incs
        when List.for_all (fun (p, _) -> Loopnest.contains l p) incs -> (
        match incs with
        | [] -> None
        | (_, v0) :: rest ->
          List.fold_left
            (fun acc (_, vi) -> hull acc (recur vi))
            (recur v0) rest)
      | Instr.Select (_, a, b) -> hull (recur a) (recur b)
      | _ -> None)
    | _ -> None)
  | _ -> None

(** Per-iteration progress interval of header phi [phi]: the hull of the
    deltas its latch-incoming values carry relative to its own value at
    the top of the iteration. *)
let phi_delta (f : Func.t) (l : Loopnest.loop) (phi : Instr.inst) :
    (int64 * int64) option =
  match phi.Instr.op with
  | Instr.Phi incs -> (
    let inside =
      List.filter (fun (p, _) -> Loopnest.contains l p) incs
    in
    match inside with
    | [] -> None
    | (_, v0) :: rest ->
      let d0 = delta_of f l ~pid:phi.Instr.id IntSet.empty v0 in
      List.fold_left
        (fun acc (_, vi) ->
          hull acc (delta_of f l ~pid:phi.Instr.id IntSet.empty vi))
        d0 rest)
  | _ -> None

let mono_of = function
  | None -> Unordered
  | Some (lo, hi) ->
    if Int64.equal lo 0L && Int64.equal hi 0L then Steady
    else if Int64.compare lo 0L >= 0 then Increasing
    else if Int64.compare hi 0L <= 0 then Decreasing
    else Unordered

(** Sound upper bound on body iterations from one exit test: the tested
    value must be affine in a header phi with a guaranteed minimum
    progress toward the exit every iteration, and the exit block must
    dominate every latch (so the test runs once per completed
    iteration). *)
let diffcon_exit_bound (f : Func.t) (l : Loopnest.loop)
    ~(deltas : (Instr.inst * (int64 * int64) option) list) (dom : Dom.t)
    (eb : int) : sym option =
  if
    not
      (List.for_all (fun la -> Dom.dominates dom eb la) l.Loopnest.latches)
  then None
  else
    match Func.terminator f eb with
    | Some { Instr.op = Instr.Cbr (Instr.Reg c, tdst, fdst); _ }
      when tdst <> fdst -> (
      match Func.inst_opt f c with
      | Some { Instr.op = Instr.Icmp (pred, xv, bnd); _ }
        when Scev.is_invariant_value f l bnd ->
        let cont = if Loopnest.contains l tdst then pred else negate pred in
        List.find_map
          (fun ((phi : Instr.inst), delta) ->
            match delta with
            | None -> None
            | Some (dlo, dhi) -> (
              match Scev.affine_of f l ~iv_phi:phi.Instr.id xv with
              | Some { Scev.base = None; scale; offset }
                when not (Int64.equal scale 0L) -> (
                (* tested value y = scale*phi + offset; its per-iteration
                   progress interval is scale * [dlo, dhi] *)
                let ylo, yhi =
                  if Int64.compare scale 0L > 0 then
                    (Int64.mul scale dlo, Int64.mul scale dhi)
                  else (Int64.mul scale dhi, Int64.mul scale dlo)
                in
                (* start of phi (outside incoming) *)
                let start =
                  match phi.Instr.op with
                  | Instr.Phi incs ->
                    List.find_map
                      (fun (p, v) ->
                        if Loopnest.contains l p then None else Some v)
                      incs
                  | _ -> None
                in
                match start with
                | None -> None
                | Some start -> (
                  let adj =
                    match cont with
                    | Instr.Sle | Instr.Sge -> 1L
                    | _ -> 0L
                  in
                  let upward =
                    match cont with
                    | Instr.Slt | Instr.Sle -> true
                    | Instr.Sgt | Instr.Sge -> false
                    | _ -> raise Exit
                  in
                  let dmin =
                    if upward then ylo else Int64.neg yhi
                  in
                  if Int64.compare dmin 1L < 0 then None
                  else
                    (* continue holds at most
                       ceil((bnd + adj - y0) / dmin) times going up,
                       ceil((y0 - bnd + adj) / dmin) going down *)
                    match (start, bnd) with
                    | Instr.Cint s, Instr.Cint b ->
                      let y0 =
                        Int64.add (Int64.mul scale s) offset
                      in
                      let numer =
                        if upward then Int64.add (Int64.sub b y0) adj
                        else Int64.add (Int64.sub y0 b) adj
                      in
                      Some { sv = None; snum = 0L; soff = numer;
                             sden = dmin; slo = 0L }
                    | Instr.Cint s, v when Scev.is_invariant_value f l v ->
                      let y0 = Int64.add (Int64.mul scale s) offset in
                      if upward then
                        Some { sv = Some v; snum = 1L;
                               soff = Int64.add (Int64.neg y0) adj;
                               sden = dmin; slo = 0L }
                      else
                        Some { sv = Some v; snum = -1L;
                               soff = Int64.add y0 adj;
                               sden = dmin; slo = 0L }
                    | v, Instr.Cint b when Scev.is_invariant_value f l v ->
                      (* y0 = scale*v + offset *)
                      if upward then
                        Some { sv = Some v; snum = Int64.neg scale;
                               soff = Int64.add (Int64.sub b offset) adj;
                               sden = dmin; slo = 0L }
                      else
                        Some { sv = Some v; snum = scale;
                               soff = Int64.add (Int64.sub offset b) adj;
                               sden = dmin; slo = 0L }
                    | _ -> None))
              | _ -> None))
          deltas
      | _ -> None)
    | _ -> None

(** Difference-constraint upper bound over all exit edges: smallest
    constant candidate wins, else the first symbolic one. *)
let diffcon_trips (f : Func.t) (l : Loopnest.loop)
    ~(deltas : (Instr.inst * (int64 * int64) option) list) (dom : Dom.t) :
    (trip * trip) option =
  let exits = Loopnest.exit_edges f l |> List.map fst |> List.sort_uniq compare in
  let cands =
    List.filter_map
      (fun eb ->
        try diffcon_exit_bound f l ~deltas dom eb with Exit -> None)
      exits
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | None -> Some s
        | Some s0 -> (
          match (sym_value s0, sym_value s) with
          | Some a, Some b when Int64.compare b a < 0 -> Some s
          | None, Some _ -> Some s
          | _ -> acc))
      None cands
  in
  match best with
  | None -> None
  | Some u ->
    (* the test may run after the body (do-while) and the last, partial
       iteration still executes the header: body <= u+1, header <= u+2 *)
    Some (Upper (plus_one u), Upper (plus_one (plus_one u)))

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let counters =
  [
    "bounds.queries"; "bounds.loops"; "bounds.loops_exact";
    "bounds.loops_upper"; "bounds.loops_unknown"; "bounds.loops_unbounded";
    "bounds.diffcon_loops";
  ]

(** Analyze every loop of [f] bottom-up over the loop forest. *)
let analyze (f : Func.t) : summary =
  Trace.span ~cat:"analysis" ("bounds:" ^ f.Func.fname) @@ fun () ->
  List.iter Trace.touch counters;
  Trace.incr_m "bounds.queries";
  let nest = Loopnest.compute f in
  let dom = lazy (Dom.compute f) in
  let by_header : (int, loop_bound) Hashtbl.t = Hashtbl.create 8 in
  let loops = Loopnest.innermost_first nest in
  List.iter
    (fun (l : Loopnest.loop) ->
      Trace.incr_m "bounds.loops";
      let deltas =
        List.map (fun phi -> (phi, phi_delta f l phi)) (header_phis f l)
      in
      let liters, lheadx, lorigin =
        if Loopnest.exit_edges f l = [] then
          (Unbounded, Unbounded, Structural)
        else
          match exact_trips f l with
          | Some (it, hx) -> (it, hx, Affine)
          | None -> (
            Trace.incr_m "bounds.diffcon_loops";
            match diffcon_trips f l ~deltas (Lazy.force dom) with
            | Some (it, hx) -> (it, hx, Diffcon)
            | None -> (Unknown, Unknown, Diffcon))
      in
      (match lheadx with
      | Exact _ -> Trace.incr_m "bounds.loops_exact"
      | Upper _ -> Trace.incr_m "bounds.loops_upper"
      | Unknown -> Trace.incr_m "bounds.loops_unknown"
      | Unbounded -> Trace.incr_m "bounds.loops_unbounded");
      (* per-iteration cost: instructions exclusive to this loop plus the
         full cost of each direct child (entered at most once per
         iteration in a reducible CFG) *)
      let child_blocks =
        List.fold_left
          (fun acc (c : Loopnest.loop) -> IntSet.union acc c.Loopnest.blocks)
          IntSet.empty l.Loopnest.children
      in
      let own =
        IntSet.fold
          (fun b acc ->
            if IntSet.mem b child_blocks then acc
            else acc + List.length (Func.block f b).Func.insts)
          l.Loopnest.blocks 0
      in
      let itercost =
        List.fold_left
          (fun acc (c : Loopnest.loop) ->
            cost_add acc (Hashtbl.find by_header c.Loopnest.header).lcost)
          (pconst (Int64.of_int own))
          l.Loopnest.children
      in
      let lcost = cost_mul_trip itercost liters in
      Hashtbl.replace by_header l.Loopnest.header
        {
          lkey = Ids.loop_key f l;
          lheader = l.Loopnest.header;
          ldepth = l.Loopnest.depth;
          liters;
          lheadx;
          lcost;
          lmono =
            List.map (fun (phi, d) -> (phi.Instr.id, mono_of d)) deltas;
          lorigin;
        })
    loops;
  let straight =
    List.fold_left
      (fun acc b ->
        if Hashtbl.mem nest.Loopnest.block_loop b then acc
        else acc + List.length (Func.block f b).Func.insts)
      0 f.Func.blocks
  in
  let fcost =
    List.fold_left
      (fun acc (l : Loopnest.loop) ->
        cost_add acc (Hashtbl.find by_header l.Loopnest.header).lcost)
      (pconst (Int64.of_int straight))
      (List.filter (fun l -> l.Loopnest.parent = None) nest.Loopnest.loops)
  in
  {
    floops =
      List.map (fun l -> Hashtbl.find by_header l.Loopnest.header) loops;
    fcost;
  }

(** The bound of the loop headed at [header], if analyzed. *)
let find (s : summary) ~header =
  List.find_opt (fun lb -> lb.lheader = header) s.floops

let loop_bound_to_string (lb : loop_bound) =
  Printf.sprintf "%s: depth %d, trips %s, cost %s [%s]" lb.lkey lb.ldepth
    (trip_to_string lb.lheadx) (cost_to_string lb.lcost)
    (match lb.lorigin with
    | Affine -> "affine"
    | Diffcon -> "diffcon"
    | Structural -> "structural")

(** Canonical textual payload of a summary — the serialization the serve
    layer's artifact store persists (DESIGN.md §14).  One sorted line per
    loop (key, depth, body trips, header executions, cost, origin) plus a
    final function-cost line; byte-identical across recomputations of the
    same code. *)
let summary_payload (s : summary) : string =
  let lines =
    List.map
      (fun lb ->
        Printf.sprintf "loop %s %d %s | %s | %s [%s]" lb.lkey lb.ldepth
          (trip_to_string lb.liters) (trip_to_string lb.lheadx)
          (cost_to_string lb.lcost)
          (match lb.lorigin with
          | Affine -> "affine"
          | Diffcon -> "diffcon"
          | Structural -> "structural"))
      s.floops
    |> List.sort String.compare
  in
  String.concat "\n" (lines @ [ "fcost " ^ cost_to_string s.fcost ])
