(** Parallel-execution runtime and multicore simulator.

    This is the reproduction's stand-in for the paper's 12-core Xeon: it
    executes the task functions emitted by the parallelizing custom tools
    (DOALL / HELIX / DSWP) as deterministic fibers (OCaml effect handlers)
    over the IR interpreter, while accounting {e virtual time}:

    - every executed IR instruction costs one cycle on its virtual core;
    - queue pushes and signal sets stamp their data with the producer's
      clock plus the core-to-core latency from {!Noelle.Arch};
    - queue pops and signal waits advance the consumer's clock to the
      stamp (communication/stall cost);
    - task spawn and join pay fixed thread-pool overheads.

    The result is a discrete-event simulation whose sequential semantics
    are exact (the tests compare program outputs against the unparallelized
    original) and whose timing reproduces the cost trade-offs each
    technique makes, which is what Figure 5 measures. *)

open Ir

type _ Effect.t += Block : (unit -> bool) -> unit Effect.t

(** Cost model (cycles). *)
let spawn_cost = 400L
let join_cost = 400L

type task = {
  tid : int;
  fname : string;
  targs : Interp.v list;
  mutable clock : int64;
}

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(** A plan for injected task failures.  [death ~tid ~attempt] is [Some n]
    when task [tid] must die after executing [n] instructions on its
    [attempt]-th run of a parallel section (attempts count from 1).
    A deterministic plan makes every failure replayable. *)
type fault = {
  death : tid:int -> attempt:int -> int64 option;
  max_restarts : int; (** section restarts allowed before giving up *)
}

exception Task_failure of int
(** Raised inside a dying fiber, carrying its tid. *)

exception Parallel_failed of string
(** A parallel section exceeded its restart budget. *)

(** Transient failures drawn from [seed]: roughly one task in [rate] dies
    partway through its first attempt; re-execution always succeeds. *)
let seeded_fault ?(max_restarts = 2) ?(rate = 3) ~seed () : fault =
  {
    max_restarts;
    death =
      (fun ~tid ~attempt ->
        if attempt > 1 then None
        else begin
          let h =
            ref (Int64.add (Int64.mul (Int64.of_int (seed + 1)) 2654435761L)
                   (Int64.mul (Int64.of_int (tid + 1)) 40503L))
          in
          let draw () =
            h := Int64.add (Int64.mul !h 6364136223846793005L) 1442695040888963407L;
            Int64.to_int (Int64.shift_right_logical !h 33)
          in
          if draw () mod max 1 rate = 0 then Some (Int64.of_int (20 + (draw () mod 400)))
          else None
        end);
  }

(** A persistent fault: task [tid] dies early on {e every} attempt, forcing
    the restart budget to run out (exercises the sequential fallback). *)
let persistent_fault ?(max_restarts = 2) ~tid () : fault =
  { max_restarts; death = (fun ~tid:t ~attempt:_ -> if t = tid then Some 10L else None) }

(** Structured task dispositions: what happened to each task of a parallel
    section, per attempt.  These replace the old [(tid, attempt, string)]
    log — {!render_event} reproduces its text exactly, and the Chrome
    trace gets the same facts as span/instant tags. *)
type task_event =
  | Task_ok of { tid : int; attempt : int }
      (** the task ran to completion on this attempt *)
  | Task_died of { tid : int; attempt : int; cycle : int64 }
      (** an injected fault killed the task at the given virtual cycle *)
  | Section_abandoned of { reason : string }
      (** the whole section exhausted its restart budget *)

let event_tid = function
  | Task_ok { tid; _ } | Task_died { tid; _ } -> tid
  | Section_abandoned _ -> -1

let event_attempt = function
  | Task_ok { attempt; _ } | Task_died { attempt; _ } -> attempt
  | Section_abandoned _ -> 0

(** The old text form of one disposition, byte-compatible with the string
    log this type replaced. *)
let render_event = function
  | Task_ok { tid; attempt } -> Printf.sprintf "task %d attempt %d: ok" tid attempt
  | Task_died { tid; attempt; cycle } ->
    Printf.sprintf "task %d attempt %d: died at cycle %Ld" tid attempt cycle
  | Section_abandoned { reason } ->
    Printf.sprintf "task -1 attempt 0: section abandoned: %s" reason

type t = {
  st : Interp.state;
  mutable latency : int64;           (** core-to-core latency *)
  mutable pending : task list;       (** submitted, not yet run *)
  queues : (int, (int64 * Interp.v) Queue.t) Hashtbl.t;
  sigs : (int, int64 ref * int64 ref) Hashtbl.t;  (** value, availability stamp *)
  mutable next_handle : int;
  mutable next_tid : int;
  (* statistics *)
  mutable sections : int;            (** parallel sections executed *)
  mutable par_cycles : int64;        (** cycles spent inside parallel sections *)
  mutable tasks_executed : int;
  (* resilience *)
  mutable fault : fault option;
  mutable restarts : int;            (** section restarts performed *)
  mutable task_log : task_event list;  (** dispositions, most recent first *)
  (* observability *)
  mutable recorder : Obs.recorder option;
      (** when set, the scheduler tags every observable event with the
          running task / section, and {!sig_wait}/{!sig_set} bracket
          Helix sequential segments (DESIGN.md §12 replay protocol) *)
}

let stats_sections (t : t) = t.sections
let stats_par_cycles (t : t) = t.par_cycles
let stats_restarts (t : t) = t.restarts

(** Per-task disposition log in chronological order. *)
let dispositions (t : t) = List.rev t.task_log

let dispositions_to_string (log : task_event list) =
  String.concat "\n" (List.map render_event log)

(* ------------------------------------------------------------------ *)
(* Fiber scheduler                                                     *)
(* ------------------------------------------------------------------ *)

type status =
  | Done
  | Blocked of (unit -> bool) * (unit, status) Effect.Deep.continuation

(* A checkpoint of everything a parallel section can mutate, so a section
   whose task died can be re-executed from scratch (retry-with-re-execution
   needs a clean slate: DSWP queue pops are destructive). *)
type section_snap = {
  s_mem : Interp.v array;
  s_brk : int;
  s_allocs : (int, Interp.alloc) Hashtbl.t;
  s_out_len : int;
  s_steps : int;
  s_fuel : int;
  s_clock : int64;
  s_rng : int64;
  s_user : (string, int64) Hashtbl.t;
  s_queues : (int, (int64 * Interp.v) Queue.t) Hashtbl.t;
  s_sigs : (int, int64 * int64) Hashtbl.t;
  s_next_handle : int;
  s_next_tid : int;
  s_obs_len : int;  (** recorder length: retries roll events back too *)
}

let snapshot_section (r : t) : section_snap =
  let st = r.st in
  let allocs = Hashtbl.create (Hashtbl.length st.Interp.allocs) in
  Hashtbl.iter
    (fun k (a : Interp.alloc) -> Hashtbl.replace allocs k { a with Interp.alive = a.Interp.alive })
    st.Interp.allocs;
  let user = Hashtbl.copy st.Interp.user in
  let queues = Hashtbl.create (Hashtbl.length r.queues) in
  Hashtbl.iter (fun k q -> Hashtbl.replace queues k (Queue.copy q)) r.queues;
  let sigs = Hashtbl.create (Hashtbl.length r.sigs) in
  Hashtbl.iter (fun k (v, stamp) -> Hashtbl.replace sigs k (!v, !stamp)) r.sigs;
  {
    s_mem = Array.copy st.Interp.mem;
    s_brk = st.Interp.brk;
    s_allocs = allocs;
    s_out_len = Buffer.length st.Interp.output;
    s_steps = st.Interp.steps;
    s_fuel = st.Interp.fuel;
    s_clock = st.Interp.clock;
    s_rng = st.Interp.rng;
    s_user = user;
    s_queues = queues;
    s_sigs = sigs;
    s_next_handle = r.next_handle;
    s_next_tid = r.next_tid;
    s_obs_len = (match r.recorder with Some rc -> Obs.length rc | None -> 0);
  }

let restore_section (r : t) (s : section_snap) =
  let st = r.st in
  st.Interp.mem <- Array.copy s.s_mem;
  st.Interp.brk <- s.s_brk;
  Hashtbl.reset st.Interp.allocs;
  Hashtbl.iter
    (fun k (a : Interp.alloc) ->
      Hashtbl.replace st.Interp.allocs k { a with Interp.alive = a.Interp.alive })
    s.s_allocs;
  Buffer.truncate st.Interp.output s.s_out_len;
  st.Interp.steps <- s.s_steps;
  st.Interp.fuel <- s.s_fuel;
  st.Interp.clock <- s.s_clock;
  st.Interp.rng <- s.s_rng;
  Hashtbl.reset st.Interp.user;
  Hashtbl.iter (Hashtbl.replace st.Interp.user) s.s_user;
  Hashtbl.reset r.queues;
  Hashtbl.iter (fun k q -> Hashtbl.replace r.queues k (Queue.copy q)) s.s_queues;
  Hashtbl.reset r.sigs;
  Hashtbl.iter (fun k (v, stamp) -> Hashtbl.replace r.sigs k (ref v, ref stamp)) s.s_sigs;
  r.next_handle <- s.s_next_handle;
  r.next_tid <- s.s_next_tid;
  match r.recorder with
  | Some rc -> Obs.truncate rc s.s_obs_len
  | None -> ()

(** Run one parallel section to completion.  When [death] is given, a
    per-task instruction counter drives injected failures: the doomed
    fiber raises {!Task_failure} mid-flight. *)
let run_section (r : t) ?death ?(attempt = 1) (tasks : task list) =
  let caller_clock = r.st.Interp.clock in
  let sp =
    Trace.begin_span ~cat:"psim"
      ~args:
        [ ("tasks", string_of_int (List.length tasks)); ("attempt", string_of_int attempt) ]
      "psim.section"
  in
  (* per-task wall start and starting virtual clock, for Chrome complete
     events; fibers interleave so the span stack cannot express them *)
  let task_start : (int, float * int64) Hashtbl.t = Hashtbl.create 8 in
  (* seed task clocks: the pool pays a spawn cost per task *)
  List.iteri
    (fun i t -> t.clock <- Int64.add caller_clock (Int64.mul spawn_cost (Int64.of_int (i + 1))))
    tasks;
  let current = ref (-1) in
  (* tag observable events with the running task and this section's
     ordinal (stable across retries: completed sections only) *)
  let sec = r.sections in
  let set_ctx tid =
    current := tid;
    match r.recorder with
    | Some rc ->
      rc.Obs.task <- tid;
      rc.Obs.section <- (if tid < 0 then -1 else sec)
    | None -> ()
  in
  let old_inst = r.st.Interp.hooks.Interp.on_inst in
  let restore_hook () = r.st.Interp.hooks.Interp.on_inst <- old_inst in
  (match death with
  | None -> ()
  | Some death ->
    let counters = Hashtbl.create 8 in
    r.st.Interp.hooks.Interp.on_inst <-
      Some
        (fun f i ->
          (match old_inst with Some h -> h f i | None -> ());
          if !current >= 0 then begin
            let tid = !current in
            let c = Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt counters tid)) in
            Hashtbl.replace counters tid c;
            match death ~tid with
            | Some n when c >= n -> raise (Task_failure tid)
            | _ -> ()
          end));
  let start (t : task) : status =
    Effect.Deep.match_with
      (fun () ->
        ignore (Interp.call r.st t.fname t.targs);
        Done)
      ()
      {
        Effect.Deep.retc = (fun s -> s);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block cond ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  Blocked (cond, k))
            | _ -> None);
      }
  in
  (* round-robin over runnable fibers, swapping the interpreter's clock *)
  let states : (task * status option ref) list =
    List.map (fun t -> (t, ref None)) tasks
  in
  let unfinished () =
    List.exists (fun (_, s) -> match !s with Some Done -> false | _ -> true) states
  in
  try
    while unfinished () do
      let progressed = ref false in
      List.iter
        (fun ((t : task), s) ->
          match !s with
          | Some Done -> ()
          | None ->
            if Trace.enabled () then
              Hashtbl.replace task_start t.tid (Trace.now_us (), t.clock);
            r.st.Interp.clock <- t.clock;
            set_ctx t.tid;
            let st' = start t in
            set_ctx (-1);
            t.clock <- r.st.Interp.clock;
            s := Some st';
            progressed := true
          | Some (Blocked (cond, k)) ->
            if cond () then begin
              r.st.Interp.clock <- t.clock;
              set_ctx t.tid;
              let st' = Effect.Deep.continue k () in
              set_ctx (-1);
              t.clock <- r.st.Interp.clock;
              s := Some st';
              progressed := true
            end)
        states;
      if not !progressed then
        Interp.trap "parallel runtime deadlock: %d tasks blocked"
          (List.length (List.filter (fun (_, s) -> !s <> Some Done) states))
    done;
    restore_hook ();
    let finish =
      List.fold_left (fun acc (t : task) -> Int64.max acc t.clock) caller_clock tasks
    in
    r.st.Interp.clock <- Int64.add finish join_cost;
    r.sections <- r.sections + 1;
    r.par_cycles <- Int64.add r.par_cycles (Int64.sub r.st.Interp.clock caller_clock);
    r.tasks_executed <- r.tasks_executed + List.length tasks;
    (* task_start is only populated under tracing, so this is free when off *)
    List.iter
      (fun (t : task) ->
        match Hashtbl.find_opt task_start t.tid with
        | None -> ()
        | Some (start_us, clock0) ->
          let cycles = Int64.sub t.clock clock0 in
          Trace.add "psim.task.cycles" (Int64.to_int cycles);
          Trace.complete ~cat:"psim" ~tid:(1 + t.tid) ~start_us
            ~args:
              [ ("fname", t.fname);
                ("attempt", string_of_int attempt);
                ("cycles", Int64.to_string cycles);
              ]
            ("task:" ^ t.fname))
      tasks;
    Trace.incr_m "psim.sections";
    Trace.add "psim.tasks" (List.length tasks);
    Trace.end_span
      ~args:
        [ ("outcome", "ok");
          ("section_cycles", Int64.to_string (Int64.sub r.st.Interp.clock caller_clock));
        ]
      sp
  with Task_failure tid ->
    Trace.incr_m "psim.task.deaths";
    Trace.end_span ~args:[ ("outcome", "died"); ("task", string_of_int tid) ] sp;
    restore_hook ();
    set_ctx (-1);
    (* unwind every still-suspended fiber so its frames are discarded *)
    List.iter
      (fun (_, s) ->
        match !s with
        | Some (Blocked (_, k)) -> (
          try ignore (Effect.Deep.discontinue k (Task_failure (-1))) with _ -> ())
        | _ -> ())
      states;
    raise (Task_failure tid)

(** Run a section, retrying on injected task failures when a fault plan is
    armed: every retry re-executes the {e whole} section from a checkpoint
    (queue pops are destructive, so per-task restart would be unsound).
    After [max_restarts] restarts the section raises {!Parallel_failed}. *)
let run_tasks (r : t) (tasks : task list) =
  match r.fault with
  | None -> run_section r tasks
  | Some fault ->
    let snap = snapshot_section r in
    let rec go attempt =
      match run_section r ~death:(fun ~tid -> fault.death ~tid ~attempt) ~attempt tasks with
      | () ->
        List.iter
          (fun (t : task) -> r.task_log <- Task_ok { tid = t.tid; attempt } :: r.task_log)
          tasks
      | exception Task_failure tid ->
        r.task_log <-
          Task_died { tid; attempt; cycle = r.st.Interp.clock } :: r.task_log;
        restore_section r snap;
        if attempt >= 1 + fault.max_restarts then
          raise
            (Parallel_failed
               (Printf.sprintf "task %d still dying after %d attempts (%d restarts)" tid
                  attempt (attempt - 1)))
        else begin
          r.restarts <- r.restarts + 1;
          Trace.incr_m "psim.task.restarts";
          go (attempt + 1)
        end
    in
    go 1

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let install ?(arch : Noelle.Arch.t option) (st : Interp.state) : t =
  let latency =
    match arch with
    | Some a -> Int64.of_int (max 1 (Noelle.Arch.max_latency a))
    | None -> 60L
  in
  let r =
    {
      st;
      latency;
      pending = [];
      queues = Hashtbl.create 16;
      sigs = Hashtbl.create 16;
      next_handle = 1;
      next_tid = 0;
      sections = 0;
      par_cycles = 0L;
      tasks_executed = 0;
      fault = None;
      restarts = 0;
      task_log = [];
      recorder = None;
    }
  in
  Trace.touch "psim.replay_validated";
  let reg name fn = Interp.register_builtin st name fn in
  reg "task_submit" (fun st args ->
      match args with
      | [ fp; core; ncores; env ] ->
        let fname =
          match fp with
          | Interp.VP a -> (
            match Hashtbl.find_opt st.Interp.addr_fun a with
            | Some n -> n
            | None -> Interp.trap "task_submit: %d is not a function address" a)
          | _ -> Interp.trap "task_submit: expected function pointer"
        in
        let t =
          { tid = r.next_tid; fname; targs = [ core; ncores; env ]; clock = 0L }
        in
        r.next_tid <- r.next_tid + 1;
        r.pending <- r.pending @ [ t ];
        Interp.VI 0L
      | _ -> Interp.trap "task_submit: expected 4 arguments");
  reg "tasks_run" (fun _ args ->
      (match args with [] -> () | _ -> Interp.trap "tasks_run: no arguments expected");
      let ts = r.pending in
      r.pending <- [];
      if ts <> [] then run_tasks r ts;
      Interp.VI 0L);
  reg "q_new" (fun _ _ ->
      let h = r.next_handle in
      r.next_handle <- h + 1;
      Hashtbl.replace r.queues h (Queue.create ());
      Interp.VI (Int64.of_int h));
  let q_of v =
    let h = Int64.to_int (Interp.as_int v) in
    match Hashtbl.find_opt r.queues h with
    | Some q -> q
    | None -> Interp.trap "unknown queue %d" h
  in
  let push st args =
    match args with
    | [ q; v ] ->
      Queue.add (Int64.add st.Interp.clock r.latency, v) (q_of q);
      Interp.VI 0L
    | _ -> Interp.trap "q_push: expected 2 arguments"
  in
  let pop st args =
    match args with
    | [ qv ] ->
      let q = q_of qv in
      while Queue.is_empty q do
        Effect.perform (Block (fun () -> not (Queue.is_empty q)))
      done;
      let stamp, v = Queue.pop q in
      st.Interp.clock <- Int64.max st.Interp.clock stamp;
      v
    | _ -> Interp.trap "q_pop: expected 1 argument"
  in
  reg "q_push" push;
  reg "q_push_f" push;
  reg "q_pop" pop;
  reg "q_pop_f" pop;
  reg "sig_new" (fun _ _ ->
      let h = r.next_handle in
      r.next_handle <- h + 1;
      Hashtbl.replace r.sigs h (ref 0L, ref 0L);
      Interp.VI (Int64.of_int h));
  let sig_of v =
    let h = Int64.to_int (Interp.as_int v) in
    match Hashtbl.find_opt r.sigs h with
    | Some s -> s
    | None -> Interp.trap "unknown signal %d" h
  in
  reg "sig_wait" (fun st args ->
      match args with
      | [ sv; kv ] ->
        let value, stamp = sig_of sv in
        let k = Interp.as_int kv in
        while !value < k do
          Effect.perform (Block (fun () -> !value >= k))
        done;
        st.Interp.clock <- Int64.max st.Interp.clock !stamp;
        (* Helix brackets a sequential segment with sig_wait ... sig_set:
           events until the matching sig_set carry the seq tag *)
        (match r.recorder with
        | Some rc when rc.Obs.task >= 0 ->
          Hashtbl.replace rc.Obs.seq_tasks rc.Obs.task ()
        | _ -> ());
        Interp.VI 0L
      | _ -> Interp.trap "sig_wait: expected 2 arguments");
  reg "sig_set" (fun st args ->
      match args with
      | [ sv; kv ] ->
        let value, stamp = sig_of sv in
        let k = Interp.as_int kv in
        if k > !value then begin
          value := k;
          stamp := Int64.add st.Interp.clock r.latency
        end;
        (match r.recorder with
        | Some rc when rc.Obs.task >= 0 ->
          Hashtbl.remove rc.Obs.seq_tasks rc.Obs.task
        | _ -> ());
        Interp.VI 0L
      | _ -> Interp.trap "sig_set: expected 2 arguments");
  r

(* ------------------------------------------------------------------ *)
(* Measurement entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Run [m]'s entry under the parallel runtime.  Returns (exit value,
    output, simulated cycles, runtime stats). *)
let run ?(entry = "main") ?(args = []) ?fuel ?arch (m : Irmod.t) =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let r = install ?arch st in
  let v = Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args) in
  (v, Buffer.contents st.Interp.output, st.Interp.clock, r)

(** Run [m]'s entry under the parallel runtime with an observable-event
    recorder attached: every event is tagged with its task and parallel
    section.  Returns (result, output, trace, simulated cycles). *)
let run_traced ?(entry = "main") ?(args = []) ?fuel ?arch ?sites (m : Irmod.t) :
    (Interp.v, string) result * string * Obs.trace * int64 =
  let sites = match sites with Some s -> s | None -> Obs.escape_sites ~entry m in
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let r = install ?arch st in
  let rc = Obs.attach ~sites st in
  r.recorder <- Some rc;
  match
    Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args)
  with
  | v ->
    Obs.finish rc (Obs.Exit (Obs.render rc v));
    (Ok v, Buffer.contents st.Interp.output, Obs.events rc, st.Interp.clock)
  | exception Interp.Trap msg ->
    Obs.finish rc (Obs.terminal_of_trap msg);
    (Error msg, Buffer.contents st.Interp.output, Obs.events rc, st.Interp.clock)

(** Replay protocol (DESIGN.md §12): execute the parallelized module [m]
    under the runtime with a recorder, then validate its tagged schedule
    against the sequential trace of [original] under [license].  [Ok ()]
    counts into [psim.replay_validated]; a violation carries the minimal
    event-diff witness. *)
let replay_validate ?(entry = "main") ?(args = []) ?fuel ?arch
    ?(license = Obs.Permute_iterations) ~(original : Irmod.t) (m : Irmod.t) :
    (unit, Obs.mismatch) result =
  let _, _, reference = Obs.run ~entry ~args ?fuel original in
  let _, _, candidate, _ = run_traced ~entry ~args ?fuel ?arch m in
  let res = Obs.check ~license ~reference ~candidate in
  (match res with
  | Ok () -> Trace.incr_m "psim.replay_validated"
  | Error _ -> ());
  res

(** Sequential reference run: simulated cycles = dynamic instructions. *)
let run_sequential ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let v = Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args) in
  (v, Buffer.contents st.Interp.output, st.Interp.clock)

(* ------------------------------------------------------------------ *)
(* Degraded-mode execution                                             *)
(* ------------------------------------------------------------------ *)

type resilient_result = {
  rvalue : Interp.v;
  routput : string;
  rcycles : int64;
  rmode : [ `Parallel | `Sequential_fallback ];
  rtask_log : task_event list; (** chronological dispositions *)
  rrestarts : int;
}

let mode_to_string = function
  | `Parallel -> "parallel"
  | `Sequential_fallback -> "sequential-fallback"

(** Run the parallelized module [m] under an optional fault plan.  Injected
    task deaths are retried by whole-section re-execution; if a section
    exhausts its restart budget the run degrades gracefully: the pristine
    [original] module is executed sequentially instead, so the program
    always completes with correct output. *)
let run_resilient ?(entry = "main") ?(args = []) ?fuel ?arch ?fault ~(original : Irmod.t)
    (m : Irmod.t) : resilient_result =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let r = install ?arch st in
  r.fault <- fault;
  let vargs = List.map (fun n -> Interp.VI (Int64.of_int n)) args in
  match Interp.call st entry vargs with
  | v ->
    {
      rvalue = v;
      routput = Buffer.contents st.Interp.output;
      rcycles = st.Interp.clock;
      rmode = `Parallel;
      rtask_log = dispositions r;
      rrestarts = r.restarts;
    }
  | exception Parallel_failed msg ->
    let log = Section_abandoned { reason = msg } :: r.task_log in
    let v, out, cycles = run_sequential ~entry ~args ?fuel original in
    {
      rvalue = v;
      routput = out;
      rcycles = cycles;
      rmode = `Sequential_fallback;
      rtask_log = List.rev log;
      rrestarts = r.restarts;
    }
