(** Analytic performance models for the three parallelization strategies.

    The fiber simulator in {!Runtime} measures parallel time by execution;
    these closed-form models predict it from profile numbers alone.  The
    benchmark harness uses them as a cross-check (the ablation bench
    compares model vs simulation) and to reason about crossover points
    (e.g. minimum iterations for DOALL to win, maximum sequential-segment
    fraction for HELIX to scale). *)

type params = {
  cores : int;
  latency : float;        (** core-to-core latency, cycles *)
  spawn : float;          (** per-task spawn cost, cycles *)
  join : float;           (** join barrier cost, cycles *)
}

let default_params =
  { cores = 12; latency = 60.0; spawn = 400.0; join = 400.0 }

(** DOALL over [iters] iterations of [work] cycles each: iterations are
    split cyclically, no cross-core communication. *)
let doall_time (p : params) ~iters ~work =
  let per_core = ceil (iters /. float_of_int p.cores) in
  (per_core *. work) +. (p.spawn *. float_of_int p.cores) +. p.join

(** HELIX: each iteration has a sequential segment of [seq] cycles that
    must execute in iteration order across cores (paying a signal latency
    per hand-off) while the remaining [work - seq] cycles overlap. *)
let helix_time (p : params) ~iters ~work ~seq =
  let c = float_of_int p.cores in
  let par = work -. seq in
  (* the sequential chain serializes: one segment + hand-off per iteration;
     the parallel part is limited by cores *)
  let chain = iters *. (seq +. p.latency) in
  let overlap = iters *. par /. c in
  Float.max chain overlap +. (p.spawn *. c) +. p.join

(** DSWP with stage weights [stages] (cycles/iteration each): throughput
    is bounded by the heaviest stage; each cross-stage value pays queue
    latency once (pipelined, so it adds to the fill time not the steady
    state). *)
let dswp_time (p : params) ~iters ~stages =
  match stages with
  | [] -> p.join
  | _ ->
    let bottleneck = List.fold_left Float.max 0.0 stages in
    let fill =
      float_of_int (List.length stages - 1) *. (p.latency +. bottleneck)
    in
    (iters *. bottleneck) +. fill
    +. (p.spawn *. float_of_int (List.length stages))
    +. p.join

type vec_params = {
  width : int;            (** lane-group factor W (lanes per vector issue) *)
  vissue : float;         (** per-group issue overhead, cycles *)
  vgather : float;        (** per-strided-memory-op penalty per group, cycles *)
  vsetup : float;         (** one-time loop setup (niters/bound computation) *)
}

let default_vec_params = { width = 8; vissue = 2.0; vgather = 0.5; vsetup = 16.0 }

(** Vectorized loop over [iters] iterations of [work] cycles each with
    lane-group factor [p.width].

    [divergence] is the fraction of the body that executes under a
    predicate after if-conversion: masked-off lanes still occupy a lane
    slot, so the effective width shrinks to [W * (1 - divergence)]
    (floored at one lane — fully divergent bodies degenerate to scalar).

    [strided_mem_ops] memory operations whose SCEV stride (in elements)
    is [stride ≠ 1] cannot use contiguous vector loads/stores; each pays
    a gather/scatter penalty proportional to the stride (capped at 8 —
    beyond that every lane is its own cache line and it cannot get worse).

    The [iters mod W] leftover iterations run in the scalar epilogue at
    full scalar cost. *)
let vec_time (p : vec_params) ~iters ~work ~divergence ~strided_mem_ops ~stride =
  let w = float_of_int p.width in
  let groups = Float.trunc (iters /. w) in
  let rem = iters -. (groups *. w) in
  let weff = Float.max 1.0 (w *. (1.0 -. divergence)) in
  let gather =
    if strided_mem_ops <= 0 || stride <= 1 then 0.0
    else
      float_of_int strided_mem_ops
      *. float_of_int (min stride 8 - 1)
      *. p.vgather
  in
  let per_group = (w *. work /. weff) +. gather +. p.vissue in
  (groups *. per_group) +. (rem *. work) +. p.vsetup

(** Pick the lane-group factor: try candidate widths no wider than
    [max_width] (16 lanes for f32-narrowable float bodies on 512-bit
    vectors, 8 for 64-bit element bodies) and keep the one the model says
    is fastest for this trip count.  With an unknown trip count a large
    trip stands in, so the asymptotic (per-iteration) cost decides. *)
let best_vec_width (p : vec_params) ~max_width ~iters ~work ~divergence
    ~strided_mem_ops ~stride =
  let iters = match iters with Some n -> float_of_int n | None -> 1.0e6 in
  let candidates =
    List.filter (fun w -> w <= max_width) [ 16; 8; 4; 2 ]
  in
  let time w =
    vec_time { p with width = w } ~iters ~work ~divergence ~strided_mem_ops
      ~stride
  in
  List.fold_left
    (fun best w -> if time w < time best then w else best)
    (List.hd candidates) (List.tl candidates)

(** Speedup of a technique time vs the sequential time [iters * work]. *)
let speedup ~seq_time ~par_time = if par_time <= 0.0 then 1.0 else seq_time /. par_time

(** Minimum iteration count for DOALL to be profitable (speedup > 1). *)
let doall_min_iters (p : params) ~work =
  let overhead = (p.spawn *. float_of_int p.cores) +. p.join in
  let c = float_of_int p.cores in
  (* iters * work > iters * work / c + overhead *)
  overhead /. (work -. (work /. c)) |> ceil
