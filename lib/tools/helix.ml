(** HELIX parallelization (§3, [23, 24, 42]).

    Distributes loop iterations round-robin across cores; each iteration is
    sliced into sequential segments (one per Sequential SCC of the
    aSCCDAG) and a parallel remainder.  Different dynamic instances of the
    same sequential segment execute in iteration order across cores —
    enforced here with the runtime's counting signals, whose hand-off cost
    is the core-to-core latency measured by AR — while everything else
    overlaps.

    Sequential SCCs are supported when they are {e self-contained pure
    recurrences}: exactly one header phi, members' operands drawn from the
    SCC itself, loop invariants, induction variables, or constants, and
    all members side-effect free.  This covers the recurrences that matter
    for the paper's irregular benchmarks (PRVG state updates, linear
    recurrences); anything else is rejected and left to DSWP. *)

open Ir
open Noelle

type segment = {
  seq_phi : Instr.inst;            (** the carried header phi *)
  members : Instr.inst list;       (** non-phi members, in layout order *)
  final_update : Instr.inst;       (** value stored back to the slot *)
}

type plan = {
  c : Parutil.candidate;
  ivs : Indvars.t list;
  reds : Reduction.t list;
  segments : segment list;
  latch : int;
}

type stats = {
  loop_id : string;
  ncores : int;
  nsegments : int;
  nreductions : int;
}

let pure_op (i : Instr.inst) =
  match i.Instr.op with
  | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, _) -> false (* may trap if hoisted *)
  | Instr.Bin _ | Instr.Fbin _ | Instr.Icmp _ | Instr.Fcmp _ | Instr.Select _
  | Instr.Cast _ -> true
  | _ -> false

(** Build a segment from a Sequential SCC, or explain why it cannot be. *)
let segment_of (c : Parutil.candidate) (scc : Sccdag.scc) : (segment, string) result =
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  let members = List.map (Func.inst f) scc.Sccdag.members in
  let phis, rest =
    List.partition
      (fun (i : Instr.inst) -> match i.Instr.op with Instr.Phi _ -> true | _ -> false)
      members
  in
  match phis with
  | [ p ] when p.Instr.parent = ls.Loopstructure.header -> (
    if not (List.for_all pure_op rest) then
      Error "sequential SCC contains side-effecting or trapping instructions"
    else begin
      let in_scc id = List.mem id scc.Sccdag.members in
      let iv_ids =
        List.concat_map (fun (iv : Indvars.t) -> iv.Indvars.scc) c.Parutil.ascc.Ascc.ivs
      in
      let ok_operand v =
        match v with
        | Instr.Cint _ | Instr.Cfloat _ | Instr.Null | Instr.Glob _ -> true
        | _ when Scev.is_invariant_value f ls.Loopstructure.raw v -> true
        | Instr.Reg r -> in_scc r || List.mem r iv_ids
        | Instr.Arg _ -> true
      in
      if
        not
          (List.for_all
             (fun (i : Instr.inst) ->
               List.for_all ok_operand (Instr.operands i.Instr.op))
             rest)
      then Error "sequential SCC depends on per-iteration values outside itself"
      else begin
        (* all in-loop users of members must live strictly below the header *)
        let member_ids = scc.Sccdag.members in
        let bad_user =
          List.exists
            (fun id ->
              List.exists
                (fun (u : Instr.inst) ->
                  Loopstructure.contains_inst ls u
                  && u.Instr.parent = ls.Loopstructure.header
                  && not (List.mem u.Instr.id member_ids))
                (Func.users f id))
            member_ids
        in
        if bad_user then Error "sequential SCC feeds the loop header"
        else
          let final_update =
            match p.Instr.op with
            | Instr.Phi incs -> (
              match
                List.find_opt
                  (fun (pr, _) -> Loopstructure.contains ls pr)
                  incs
              with
              | Some (_, Instr.Reg r) -> Some (Func.inst f r)
              | _ -> None)
            | _ -> None
          in
          match final_update with
          | Some u when List.mem u.Instr.id member_ids ->
            let rest_ordered =
              List.filter
                (fun (i : Instr.inst) ->
                  List.mem i.Instr.id member_ids && i.Instr.id <> p.Instr.id)
                (Loopstructure.insts ls)
            in
            Ok { seq_phi = p; members = rest_ordered; final_update = u }
          | _ -> Error "sequential SCC has no recognizable carried update"
      end
    end)
  | _ -> Error "sequential SCC must have exactly one header phi"

let plan_of (c : Parutil.candidate) : (plan, string) result =
  match c.Parutil.ls.Loopstructure.latches with
  | [ latch ] -> (
    let ivs = c.Parutil.ascc.Ascc.ivs in
    let reds = ref [] and segs = ref [] and err = ref None in
    List.iter
      (fun (node : Ascc.node) ->
        match node.Ascc.attr with
        | Ascc.Independent | Ascc.Induction _ -> ()
        | Ascc.Reducible r -> reds := r :: !reds
        | Ascc.Sequential -> (
          match segment_of c node.Ascc.scc with
          | Ok s -> segs := s :: !segs
          | Error e -> if !err = None then err := Some e))
      c.Parutil.ascc.Ascc.nodes;
    match !err with
    | Some e -> Error e
    | None when Ascc.has_cross_carried c.Parutil.ascc ->
      Error "loop-carried dependences cross SCCs"
    | None ->
      let segs = List.rev !segs and reds = List.rev !reds in
      let ok_out r =
        List.exists (fun (iv : Indvars.t) -> iv.Indvars.phi.Instr.id = r) ivs
        || List.exists (fun (rd : Reduction.t) -> rd.Reduction.phi.Instr.id = r) reds
        || List.exists (fun s -> s.seq_phi.Instr.id = r) segs
      in
      (match List.find_opt (fun r -> not (ok_out r)) c.Parutil.live_out_regs with
      | Some r -> Error (Printf.sprintf "live-out %%%d not supported" r)
      | None -> Ok { c; ivs; reds; segments = segs; latch }))
  | _ -> Error "loop must have a single latch"

(** Apply the HELIX transformation. *)
let transform (n : Noelle.t) (m : Irmod.t) (plan : plan) ~(ncores : int) : stats =
  let { c; ivs; reds; segments; latch } = plan in
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  Noelle.loop_builder n;
  Noelle.environment n;
  Noelle.task n;
  Noelle.iv_stepper n;
  if reds <> [] then ignore (Noelle.reductions n c.Parutil.lp);
  ignore (Noelle.invariants n c.Parutil.lp);
  Noelle.dfe n;
  ignore (Noelle.scheduler n f);
  ignore (Noelle.arch n);
  let ph = Loopbuilder.ensure_preheader f ls.Loopstructure.raw in
  (* --- environment: live-ins, reduction partials, per-segment slot+signal --- *)
  let extra =
    List.concat
      (List.mapi
         (fun ri (rd : Reduction.t) ->
           List.init ncores (fun core ->
               (Printf.sprintf "red%d.c%d" ri core, Reduction.value_ty rd.Reduction.kind)))
         reds)
    @ List.concat
        (List.mapi
           (fun si s ->
             [ (Printf.sprintf "seg%d.slot" si, s.seq_phi.Instr.ty);
               (Printf.sprintf "seg%d.sig" si, Ty.I64) ])
           segments)
  in
  let env, live_slots, extra_slots = Parutil.build_env c ~extra in
  let red_base ri = snd (List.nth extra_slots (ri * ncores)) in
  let seg_slot si = snd (List.nth extra_slots (List.length reds * ncores + (si * 2))) in
  let seg_sig si = snd (List.nth extra_slots (List.length reds * ncores + (si * 2) + 1)) in
  (* --- task --- *)
  let tname =
    Printf.sprintf "%s.helix.%s" f.Func.fname
      (Func.block f ls.Loopstructure.header).Func.label
  in
  let task, entry = Task.create m ~name:tname ~env ~origin:("HELIX " ^ tname) in
  let tf = task.Task.tfunc in
  let env_ptr = Task.env_arg in
  let subst_pairs = Parutil.emit_live_in_loads f tf entry.Func.bid live_slots ~env_ptr in
  (* preload segment slot addresses and signal handles *)
  let seg_info =
    List.mapi
      (fun si s ->
        let addr =
          Builder.add tf entry.Func.bid
            (Instr.Gep (env_ptr, Instr.Cint (Int64.of_int (seg_slot si))))
            Ty.Ptr
        in
        let sigh =
          Env.emit_load tf entry.Func.bid ~env_ptr ~index:(seg_sig si) Ty.I64
        in
        (s, Instr.Reg addr.Instr.id, sigh))
      segments
  in
  let done_blk = Builder.add_block tf ~label:"done" in
  let bmap, imap =
    Loopbuilder.clone_blocks ~src:f ~blocks:ls.Loopstructure.blocks ~dst:tf
      ~map_value:(Parutil.subst_of subst_pairs)
      ~entry_from:entry.Func.bid
      ~exit_to:(fun _ -> done_blk.Func.bid)
  in
  let cheader = Hashtbl.find bmap ls.Loopstructure.header in
  let cbody = Hashtbl.find bmap c.Parutil.body_entry in
  let clatch = Hashtbl.find bmap latch in
  (* IVs: cyclic chunking, like DOALL *)
  List.iter
    (fun (iv : Indvars.t) ->
      let phi' = Hashtbl.find imap iv.Indvars.phi.Instr.id in
      let upd' = Hashtbl.find imap iv.Indvars.update.Instr.id in
      let step' = Parutil.subst_of subst_pairs iv.Indvars.step in
      let delta =
        Builder.add tf entry.Func.bid (Instr.Bin (Instr.Mul, Task.core_arg, step')) Ty.I64
      in
      Ivstepper.offset_start tf ~phi_id:phi' ~pred:entry.Func.bid
        ~delta:(Instr.Reg delta.Instr.id);
      Ivstepper.scale_step tf ~update_id:upd' ~phi_id:phi' ~factor:Task.ncores_arg)
    ivs;
  (* reductions: privatize *)
  List.iteri
    (fun ri (rd : Reduction.t) ->
      let phi' = Func.inst tf (Hashtbl.find imap rd.Reduction.phi.Instr.id) in
      (match phi'.Instr.op with
      | Instr.Phi incs ->
        phi'.Instr.op <-
          Instr.Phi
            (List.map
               (fun (p, v) ->
                 if p = entry.Func.bid then (p, Reduction.identity rd.Reduction.kind)
                 else (p, v))
               incs)
      | _ -> ());
      let base = red_base ri in
      let off =
        Builder.add tf done_blk.Func.bid
          (Instr.Bin (Instr.Add, Instr.Cint (Int64.of_int base), Task.core_arg))
          Ty.I64
      in
      let addr =
        Builder.add tf done_blk.Func.bid (Instr.Gep (env_ptr, Instr.Reg off.Instr.id)) Ty.Ptr
      in
      ignore
        (Builder.add tf done_blk.Func.bid
           (Instr.Store (Instr.Reg phi'.Instr.id, Instr.Reg addr.Instr.id))
           Ty.Void))
    reds;
  (* global iteration counter g: local counter n (phi in cloned header,
     init 0, +1 in latch) with g = n*ncores + core *)
  let nphi = Builder.insert_front tf cheader (Instr.Phi []) Ty.I64 in
  let nupd =
    match Func.terminator tf clatch with
    | Some t ->
      Builder.insert_before tf ~before:t.Instr.id
        (Instr.Bin (Instr.Add, Instr.Reg nphi.Instr.id, Instr.Cint 1L))
        Ty.I64
    | None -> assert false
  in
  nphi.Instr.op <-
    Instr.Phi [ (entry.Func.bid, Instr.Cint 0L); (clatch, Instr.Reg nupd.Instr.id) ];
  (* segments live in a dedicated block between the cloned header and the
     cloned body, so instruction moves cannot disturb block terminators *)
  let segb = Builder.add_block tf ~label:"helix.segments" in
  Builder.redirect tf cheader ~old_succ:cbody ~new_succ:segb.Func.bid;
  ignore (Builder.set_term tf segb.Func.bid (Instr.Br cbody));
  let addi op = Instr.Reg (Builder.add tf segb.Func.bid op Ty.I64).Instr.id in
  let gmul = addi (Instr.Bin (Instr.Mul, Instr.Reg nphi.Instr.id, Task.ncores_arg)) in
  let g = addi (Instr.Bin (Instr.Add, gmul, Task.core_arg)) in
  let gnext = addi (Instr.Bin (Instr.Add, g, Instr.Cint 1L)) in
  List.iter
    (fun (s, slot_addr, sigh) ->
      (* order: wait; load; members; store; set *)
      ignore
        (Builder.add tf segb.Func.bid
           (Instr.Call (Instr.Glob "sig_wait", [ sigh; g ]))
           Ty.Void);
      let cur =
        Builder.add tf segb.Func.bid (Instr.Load slot_addr) s.seq_phi.Instr.ty
      in
      List.iter
        (fun (mi : Instr.inst) ->
          let ci = Hashtbl.find imap mi.Instr.id in
          Builder.move_to_end tf ci ~bid:segb.Func.bid)
        s.members;
      let upd' = Hashtbl.find imap s.final_update.Instr.id in
      ignore
        (Builder.add tf segb.Func.bid
           (Instr.Store (Instr.Reg upd', slot_addr))
           Ty.Void);
      ignore
        (Builder.add tf segb.Func.bid
           (Instr.Call (Instr.Glob "sig_set", [ sigh; gnext ]))
           Ty.Void);
      (* the cloned seq phi is replaced by the loaded current value *)
      let phi' = Hashtbl.find imap s.seq_phi.Instr.id in
      Builder.replace_uses tf ~old:phi' ~by:(Instr.Reg cur.Instr.id);
      Builder.remove tf phi')
    seg_info;
  ignore (Builder.set_term tf entry.Func.bid (Instr.Br cheader));
  ignore (Builder.set_term tf done_blk.Func.bid (Instr.Ret None));
  (* --- main rewrite --- *)
  let start = c.Parutil.iv.Indvars.start in
  let bound = c.Parutil.gov.Indvars.bound in
  let niters = Parutil.emit_niters c f ph ~start ~bound in
  let env_ptr_main = Env.emit_alloc env f ph in
  List.iter
    (fun (v, idx) -> Env.emit_store f ph ~env_ptr:env_ptr_main ~index:idx v)
    live_slots;
  (* segment slots: initial values and fresh signals *)
  List.iteri
    (fun si s ->
      let init =
        match s.seq_phi.Instr.op with
        | Instr.Phi incs -> (
          match
            List.find_opt
              (fun (p, _) -> not (Loopstructure.contains ls p))
              incs
          with
          | Some (_, v) -> v
          | None -> Instr.Cint 0L)
        | _ -> Instr.Cint 0L
      in
      Env.emit_store f ph ~env_ptr:env_ptr_main ~index:(seg_slot si) init;
      let sg =
        Builder.add f ph (Instr.Call (Instr.Glob "sig_new", [])) Ty.I64
      in
      Env.emit_store f ph ~env_ptr:env_ptr_main ~index:(seg_sig si)
        (Instr.Reg sg.Instr.id))
    segments;
  for core = 0 to ncores - 1 do
    Task.emit_submit f ph task ~core:(Instr.Cint (Int64.of_int core))
      ~ncores:(Instr.Cint (Int64.of_int ncores)) ~env_ptr:env_ptr_main
  done;
  Task.emit_run_all f ph;
  let combined =
    List.mapi
      (fun ri (rd : Reduction.t) ->
        let base = red_base ri in
        let acc = ref rd.Reduction.init in
        for core = 0 to ncores - 1 do
          let part =
            Env.emit_load f ph ~env_ptr:env_ptr_main ~index:(base + core)
              (Reduction.value_ty rd.Reduction.kind)
          in
          acc := Reduction.emit_combine f ph rd.Reduction.kind !acc part
        done;
        (rd.Reduction.phi.Instr.id, !acc))
      reds
  in
  let seg_finals =
    List.mapi
      (fun si s ->
        let v =
          Env.emit_load f ph ~env_ptr:env_ptr_main ~index:(seg_slot si)
            s.seq_phi.Instr.ty
        in
        (s.seq_phi.Instr.id, v))
      segments
  in
  let iv_finals =
    List.map
      (fun (iv : Indvars.t) ->
        let extent = Builder.add f ph (Instr.Bin (Instr.Mul, niters, iv.Indvars.step)) Ty.I64 in
        let final =
          Builder.add f ph
            (Instr.Bin (Instr.Add, iv.Indvars.start, Instr.Reg extent.Instr.id))
            Ty.I64
        in
        (iv.Indvars.phi.Instr.id, Instr.Reg final.Instr.id))
      ivs
  in
  let map_live_out r =
    match List.assoc_opt r combined with
    | Some v -> v
    | None -> (
      match List.assoc_opt r seg_finals with
      | Some v -> v
      | None -> (
        match List.assoc_opt r iv_finals with
        | Some v -> v
        | None -> Instr.Cint 0L))
  in
  let join = Builder.add_block f ~label:"helix.join" in
  Parutil.replace_loop c ~ph ~join_bid:join.Func.bid ~map_live_out;
  Task.declare_runtime m;
  Noelle.invalidate n;
  {
    loop_id = tname;
    ncores;
    nsegments = List.length segments;
    nreductions = List.length reds;
  }

(** Run HELIX over the hottest eligible loops of the module. *)
let run (n : Noelle.t) (m : Irmod.t) ?(ncores = 12) ?(min_hotness = 0.05) ?(min_work = 20000.0)
    ?(profile_free = false) ?(skip = fun (_ : string) -> false) () :
    (string * (stats, string) result) list =
  Noelle.set_tool n "HELIX";
  let results = ref [] in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        if not (String.contains f.Func.fname '.') then begin
          Noelle.profiler n;
          let loops = Noelle.loops n f in
          let selected lp =
            if profile_free then
              Parutil.profitable_static n f (Loop.structure lp) ~min_work
            else Parutil.profitable m (Loop.structure lp) ~min_hotness ~min_work
          in
          let eligible =
            List.filter
              (fun lp ->
                (not (Hashtbl.mem attempted (Loop.id lp))) && selected lp)
              loops
            |> List.sort
                 (fun a b ->
                   compare
                     (Loop.structure a).Loopstructure.depth
                     (Loop.structure b).Loopstructure.depth)
          in
          let rec try_loops = function
            | [] -> ()
            | lp :: rest -> (
              let id = Loop.id lp in
              Hashtbl.replace attempted id ();
              if skip id then begin
                results := (id, Error "skipped: loop flagged by race detector") :: !results;
                try_loops rest
              end
              else
              match Parutil.candidate_of n f lp with
              | Error e ->
                results := (id, Error e) :: !results;
                try_loops rest
              | Ok c -> (
                match plan_of c with
                | Error e ->
                  results := (id, Error e) :: !results;
                  try_loops rest
                | Ok plan ->
                  let s = transform n m plan ~ncores in
                  results := (id, Ok s) :: !results;
                  progress := true))
          in
          try_loops eligible
        end)
      (Irmod.defined_functions m)
  done;
  List.rev !results
