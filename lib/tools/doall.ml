(** DOALL parallelization (§3).

    Parallelizes a loop with no loop-carried data dependences by
    distributing its iterations among cores [34].  Built entirely out of
    NOELLE abstractions: candidate loops come from L + aSCCDAG + IV
    (every SCC must be Independent, an induction variable, or a reduction),
    loop selection uses PRO hotness, the iteration space is re-chunked
    cyclically with IVS (start += core*step, step *= ncores), live values
    flow through ENV, and the per-core bodies are Tasks cloned with LB. *)

open Ir
open Noelle

type plan = {
  c : Parutil.candidate;
  ivs : Indvars.t list;         (** every induction variable, governing first *)
  reds : Reduction.t list;
  privatized : string list;
      (** globals cloned per task (memory-object cloning; used by
          Perspective's privatization, [] for plain DOALL) *)
}

type stats = {
  loop_id : string;
  ncores : int;
  nreductions : int;
  nlive_ins : int;
}

(** Check whether the candidate loop is DOALL-able and build the plan. *)
let plan_of (c : Parutil.candidate) : (plan, string) result =
  let ivs = c.Parutil.ascc.Ascc.ivs in
  let reds = ref [] in
  let bad = ref None in
  List.iter
    (fun (node : Ascc.node) ->
      match node.Ascc.attr with
      | Ascc.Independent -> ()
      | Ascc.Induction _ -> ()
      | Ascc.Reducible r -> reds := r :: !reds
      | Ascc.Sequential ->
        if !bad = None then
          bad := Some (Printf.sprintf "sequential SCC of %d instructions"
                         (Sccdag.size node.Ascc.scc)))
    c.Parutil.ascc.Ascc.nodes;
  match !bad with
  | Some msg -> Error msg
  | None when Ascc.has_cross_carried c.Parutil.ascc ->
    Error
      (Printf.sprintf "%d loop-carried dependences cross SCCs (e.g. a phi chain)"
         (List.length c.Parutil.ascc.Ascc.cross_carried))
  | None ->
    (* live-outs must be IV phis or reduction phis *)
    let ok_out r =
      List.exists (fun (iv : Indvars.t) -> iv.Indvars.phi.Instr.id = r) ivs
      || List.exists (fun (rd : Reduction.t) -> rd.Reduction.phi.Instr.id = r) !reds
    in
    (match List.find_opt (fun r -> not (ok_out r)) c.Parutil.live_out_regs with
    | Some r -> Error (Printf.sprintf "live-out %%%d is neither an IV nor a reduction" r)
    | None -> Ok { c; ivs = List.rev ivs; reds = List.rev !reds; privatized = [] })

(** Apply the transformation.  Returns statistics on success. *)
let transform (n : Noelle.t) (m : Irmod.t) (plan : plan) ~(ncores : int) :
    stats =
  let { c; ivs; reds; privatized } = plan in
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  Noelle.loop_builder n;
  Noelle.environment n;
  Noelle.task n;
  Noelle.iv_stepper n;
  if reds <> [] then ignore (Noelle.reductions n c.Parutil.lp);
  ignore (Noelle.invariants n c.Parutil.lp);
  let ph = Loopbuilder.ensure_preheader f ls.Loopstructure.raw in
  (* --- environment layout --- *)
  let red_slots = List.length reds * ncores in
  let extra =
    List.concat
      (List.mapi
         (fun ri (rd : Reduction.t) ->
           List.init ncores (fun core ->
               (Printf.sprintf "red%d.c%d" ri core, Reduction.value_ty rd.Reduction.kind)))
         reds)
  in
  ignore red_slots;
  let env, live_slots, extra_slots = Parutil.build_env c ~extra in
  let red_base ri = snd (List.nth extra_slots (ri * ncores)) in
  (* --- task function --- *)
  let tname = Printf.sprintf "%s.doall.%s" f.Func.fname
      (Func.block f ls.Loopstructure.header).Func.label in
  let task, entry = Task.create m ~name:tname ~env ~origin:(Printf.sprintf "DOALL %s" tname) in
  let tf = task.Task.tfunc in
  let env_ptr = Task.env_arg in
  let subst_pairs =
    Parutil.emit_live_in_loads f tf entry.Func.bid live_slots ~env_ptr
  in
  (* memory-object cloning: each task gets a private copy of privatized
     globals; the profile guarantees writes precede reads per iteration and
     the contents are dead after the loop, so no copy-in/copy-out *)
  let subst_pairs =
    subst_pairs
    @ List.map
        (fun g ->
          let size =
            match Irmod.global_opt m g with Some gl -> gl.Irmod.size | None -> 1
          in
          let a =
            Builder.add tf entry.Func.bid
              (Instr.Alloca (Instr.Cint (Int64.of_int size)))
              Ty.Ptr
          in
          (Instr.Glob g, Instr.Reg a.Instr.id))
        privatized
  in
  let done_blk = Builder.add_block tf ~label:"done" in
  let bmap, imap =
    Loopbuilder.clone_blocks ~src:f ~blocks:ls.Loopstructure.blocks ~dst:tf
      ~map_value:(Parutil.subst_of subst_pairs)
      ~entry_from:entry.Func.bid
      ~exit_to:(fun _ -> done_blk.Func.bid)
  in
  (* every IV: offset start by core*step, scale step by ncores *)
  List.iter
    (fun (iv : Indvars.t) ->
      let phi' = Hashtbl.find imap iv.Indvars.phi.Instr.id in
      let upd' = Hashtbl.find imap iv.Indvars.update.Instr.id in
      let step' = Parutil.subst_of subst_pairs iv.Indvars.step in
      let delta =
        Builder.add tf entry.Func.bid
          (Instr.Bin (Instr.Mul, Task.core_arg, step'))
          Ty.I64
      in
      Ivstepper.offset_start tf ~phi_id:phi' ~pred:entry.Func.bid
        ~delta:(Instr.Reg delta.Instr.id);
      Ivstepper.scale_step tf ~update_id:upd' ~phi_id:phi' ~factor:Task.ncores_arg)
    ivs;
  (* every reduction: privatize with the identity, store partials at exit *)
  List.iteri
    (fun ri (rd : Reduction.t) ->
      let phi' = Func.inst tf (Hashtbl.find imap rd.Reduction.phi.Instr.id) in
      (match phi'.Instr.op with
      | Instr.Phi incs ->
        phi'.Instr.op <-
          Instr.Phi
            (List.map
               (fun (p, v) ->
                 if p = entry.Func.bid then (p, Reduction.identity rd.Reduction.kind)
                 else (p, v))
               incs)
      | _ -> ());
      (* dynamic slot index = base + core *)
      let base = red_base ri in
      let off =
        Builder.add tf done_blk.Func.bid
          (Instr.Bin (Instr.Add, Instr.Cint (Int64.of_int base), Task.core_arg))
          Ty.I64
      in
      let addr =
        Builder.add tf done_blk.Func.bid
          (Instr.Gep (env_ptr, Instr.Reg off.Instr.id))
          Ty.Ptr
      in
      ignore
        (Builder.add tf done_blk.Func.bid
           (Instr.Store (Instr.Reg phi'.Instr.id, Instr.Reg addr.Instr.id))
           Ty.Void))
    reds;
  ignore (Builder.set_term tf entry.Func.bid (Instr.Br (Hashtbl.find bmap ls.Loopstructure.header)));
  ignore (Builder.set_term tf done_blk.Func.bid (Instr.Ret None));
  (* --- rewrite the original function --- *)
  let start = c.Parutil.iv.Indvars.start in
  let bound = c.Parutil.gov.Indvars.bound in
  let niters = Parutil.emit_niters c f ph ~start ~bound in
  let env_ptr_main = Env.emit_alloc env f ph in
  List.iter (fun (v, idx) -> Env.emit_store f ph ~env_ptr:env_ptr_main ~index:idx v) live_slots;
  for core = 0 to ncores - 1 do
    Task.emit_submit f ph task ~core:(Instr.Cint (Int64.of_int core))
      ~ncores:(Instr.Cint (Int64.of_int ncores)) ~env_ptr:env_ptr_main
  done;
  Task.emit_run_all f ph;
  (* combine reduction partials *)
  let combined =
    List.mapi
      (fun ri (rd : Reduction.t) ->
        let base = red_base ri in
        let acc = ref rd.Reduction.init in
        for core = 0 to ncores - 1 do
          let part =
            Env.emit_load f ph ~env_ptr:env_ptr_main ~index:(base + core)
              (Reduction.value_ty rd.Reduction.kind)
          in
          acc := Reduction.emit_combine f ph rd.Reduction.kind !acc part
        done;
        (rd.Reduction.phi.Instr.id, !acc))
      reds
  in
  (* closed-form IV finals *)
  let iv_finals =
    List.map
      (fun (iv : Indvars.t) ->
        let stepv = iv.Indvars.step in
        let extent =
          Builder.add f ph (Instr.Bin (Instr.Mul, niters, stepv)) Ty.I64
        in
        let final =
          Builder.add f ph
            (Instr.Bin (Instr.Add, iv.Indvars.start, Instr.Reg extent.Instr.id))
            Ty.I64
        in
        (iv.Indvars.phi.Instr.id, Instr.Reg final.Instr.id))
      ivs
  in
  let map_live_out r =
    match List.assoc_opt r combined with
    | Some v -> v
    | None -> (
      match List.assoc_opt r iv_finals with
      | Some v -> v
      | None -> Instr.Cint 0L (* unreachable: plan checked live-outs *))
  in
  let join = Builder.add_block f ~label:"doall.join" in
  Parutil.replace_loop c ~ph ~join_bid:join.Func.bid ~map_live_out;
  Task.declare_runtime m;
  Noelle.invalidate n;
  ignore privatized;
  {
    loop_id = tname;
    ncores;
    nreductions = List.length reds;
    nlive_ins = List.length live_slots;
  }

(** Try to DOALL-parallelize the hottest eligible loop of each function
    (skipping generated task functions).  Returns per-loop outcomes. *)
let run (n : Noelle.t) (m : Irmod.t) ?(ncores = 12) ?(min_hotness = 0.05) ?(min_work = 20000.0)
    ?(profile_free = false) ?(skip = fun (_ : string) -> false) () :
    (string * (stats, string) result) list =
  Noelle.set_tool n "DOALL";
  let results = ref [] in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Transforming a loop mutates its function, so analyses are recomputed
     after every success; loops already attempted (by stable id) are
     skipped.  Iterate until a full round makes no progress. *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        if not (String.contains f.Func.fname '.') then begin
          Noelle.profiler n;
          (* static bounds are queried unconditionally: planning telemetry
             stays observable even on the profile-driven path *)
          ignore (Noelle.bounds n f);
          let loops = Noelle.loops n f in
          let selected lp =
            if profile_free then
              Parutil.profitable_static n f (Loop.structure lp) ~min_work
            else Parutil.profitable m (Loop.structure lp) ~min_hotness ~min_work
          in
          let eligible =
            List.filter
              (fun lp ->
                (not (Hashtbl.mem attempted (Loop.id lp))) && selected lp)
              loops
          in
          (* prefer outermost hot loops *)
          let ordered =
            List.sort
              (fun a b ->
                compare
                  (Loop.structure a).Loopstructure.depth
                  (Loop.structure b).Loopstructure.depth)
              eligible
          in
          let rec try_loops = function
            | [] -> ()
            | lp :: rest -> (
              let id = Loop.id lp in
              Hashtbl.replace attempted id ();
              if skip id then begin
                results := (id, Error "skipped: loop flagged by race detector") :: !results;
                try_loops rest
              end
              else
              match Parutil.candidate_of n f lp with
              | Error e ->
                results := (id, Error e) :: !results;
                try_loops rest
              | Ok c -> (
                match plan_of c with
                | Error e ->
                  results := (id, Error e) :: !results;
                  try_loops rest
                | Ok plan ->
                  let loop_cores =
                    if profile_free then
                      Parutil.static_chunk n f (Loop.structure lp) ~ncores
                    else ncores
                  in
                  let s = transform n m plan ~ncores:loop_cores in
                  results := (id, Ok s) :: !results;
                  (* analyses for this function are stale: next round *)
                  progress := true))
          in
          try_loops ordered
        end)
      (Irmod.defined_functions m)
  done;
  List.rev !results
