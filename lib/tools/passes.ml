(** Standard pass stack for the transactional pipeline.

    Each constructor wraps one custom tool as a {!Noelle.Pipeline.pass}:
    a closure over a {!Noelle.t} manager that transforms the module in
    place and summarizes what it did.  {!config} wires the pipeline's
    [on_change] hook to {!Noelle.invalidate} so cached analyses never
    survive a mutation (commit {e or} rollback), and swaps the default
    sequential executor for a Psim-backed one, since committed passes may
    leave the module parallelized (calls to [task_submit] etc. only exist
    under the parallel runtime). *)

open Ir

(** Differential executor backed by the parallel runtime, under an
    observable-event recorder: events are tagged with their task/section
    so the trace gate can validate the parallel schedule against the
    sequential reference. *)
let psim_exec : Noelle.Pipeline.exec =
 fun m ~args ~fuel ->
  let res, out, tr, _cycles = Psim.Runtime.run_traced ~args ~fuel m in
  {
    Noelle.Pipeline.bresult =
      (match res with
      | Ok v -> Ok (Printf.sprintf "exit=%s\n%s" (Interp.v_to_string v) out)
      | Error msg -> Error msg);
    btrace = tr;
  }

let mk ?(license = Obs.Exact) name apply : Noelle.Pipeline.pass =
  { Noelle.Pipeline.pname = name; papply = apply; plicense = license }

let par_summary outcomes =
  let ok = List.length (List.filter (fun (_, r) -> Result.is_ok r) outcomes) in
  Printf.sprintf "parallelized %d loops (%d declined)" ok (List.length outcomes - ok)

let licm (n : Noelle.t) =
  mk "licm" (fun m ->
      let s = Licm.run n m in
      Printf.sprintf "hoisted %d insts from %d loops" s.Licm.hoisted s.Licm.loops_visited)

let dead (n : Noelle.t) =
  mk "dead" (fun m ->
      let s = Deadfunc.run n m () in
      Printf.sprintf "removed %d functions (%d -> %d insts)"
        (List.length s.Deadfunc.removed)
        s.Deadfunc.insts_before s.Deadfunc.insts_after)

(* The race gate is recomputed against the module as it stands when the
   parallelizer pass actually runs — earlier passes may have changed it. *)
let gate check_races m =
  if check_races then Lint.race_gate m else fun (_ : string) -> false

(* Commutation licenses (DESIGN.md §12): DOALL may permute independent
   iterations' event blocks across tasks; DSWP may buffer events between
   stages but each stage keeps program order; Helix additionally pins its
   sequential segments to sequential order.  The cleanups above get no
   license at all — their gates stay event-exact. *)

let doall ?(ncores = 4) ?(min_hotness = 0.0) ?(min_work = 0.0) ?(check_races = false)
    ?(no_profile = false) (n : Noelle.t) =
  mk ~license:Obs.Permute_iterations "doall" (fun m ->
      par_summary
        (Doall.run n m ~ncores ~min_hotness ~min_work ~profile_free:no_profile
           ~skip:(gate check_races m) ()))

let helix ?(ncores = 4) ?(min_hotness = 0.0) ?(min_work = 0.0) ?(check_races = false)
    ?(no_profile = false) (n : Noelle.t) =
  mk ~license:Obs.Seq_segments "helix" (fun m ->
      par_summary
        (Helix.run n m ~ncores ~min_hotness ~min_work ~profile_free:no_profile
           ~skip:(gate check_races m) ()))

let dswp ?(max_stages = 3) ?(min_hotness = 0.0) ?(min_work = 0.0) ?(check_races = false)
    ?(no_profile = false) (n : Noelle.t) =
  mk ~license:Obs.Buffer_stages "dswp" (fun m ->
      par_summary
        (Dswp.run n m ~max_stages ~min_hotness ~min_work ~profile_free:no_profile
           ~skip:(gate check_races m) ()))

(* Lane-group reorders are Permute_iterations-shaped: the widened loop
   interleaves W iterations' event blocks inside each group (the scalar
   epilogue stays exact, which the permute license subsumes). *)
let vec ?(ncores = 4) ?(min_work = 0.0) ?(check_races = false) (n : Noelle.t) =
  mk ~license:Obs.Permute_iterations "vec" (fun m ->
      let outcomes = Vec.run n m ~ncores ~min_work ~skip:(gate check_races m) () in
      let ok = List.length (List.filter (fun (_, r) -> Result.is_ok r) outcomes) in
      Printf.sprintf "vectorized %d loops (%d declined)" ok
        (List.length outcomes - ok))

(** The standard stack: cleanups first, then the parallelizers from the
    most to the least restrictive form (DOALL, HELIX, DSWP), each picking
    up loops its predecessors left sequential.  With [vec] set the
    vectorizer runs ahead of the parallelizers and claims the loops where
    the SIMD model beats the DOALL model ([noelle-pipeline --vec]); the
    rest fall through.  With [check_races] set, every loop the static
    race detector flags is refused up front
    ([noelle-pipeline --check-races]).  With [no_profile] set the
    parallelizers plan from static {!Bounds} instead of embedded profile
    metadata ([noelle-pipeline --no-profile]). *)
let standard ?ncores ?min_hotness ?min_work ?check_races ?no_profile
    ?vec:(enable_vec = false) (n : Noelle.t) : Noelle.Pipeline.pass list =
  let vec_passes =
    if enable_vec then [ vec ?ncores ?min_work ?check_races n ] else []
  in
  [ licm n; dead n ]
  @ vec_passes
  @ [
      doall ?ncores ?min_hotness ?min_work ?check_races ?no_profile n;
      helix ?ncores ?min_hotness ?min_work ?check_races ?no_profile n;
      dswp ?min_hotness ?min_work ?check_races ?no_profile n;
    ]

(** Pipeline configuration for this stack: Psim-backed differential runs
    and analysis-cache invalidation on every module change.  With
    [verify_meta] set, every commit also reconciles embedded analysis
    artifacts through the trust layer and the final module must audit
    clean ([noelle-pipeline --verify-meta]). *)
let config ?(inputs = [ [] ]) ?(fuel = 3_000_000) ?(verify_meta = false)
    ?(legacy_differential = false) (n : Noelle.t) : Noelle.Pipeline.config =
  {
    Noelle.Pipeline.default_config with
    Noelle.Pipeline.inputs;
    fuel;
    exec = psim_exec;
    verify_meta_gate = verify_meta;
    legacy_differential;
    on_change = (fun () -> Noelle.invalidate n);
  }

(** Convenience driver: run the standard stack transactionally over [m],
    optionally corrupting pass output from [inject_seed].  Returns the
    report; [m] holds the surviving (verified, behaviour-preserving)
    module. *)
let run_standard ?inputs ?fuel ?inject_seed ?ncores ?min_hotness ?min_work
    ?check_races ?no_profile ?vec ?analysis_budget ?(verify_meta = false)
    ?legacy_differential (m : Irmod.t) =
  Trace.span ~cat:"pipeline" "pipeline.standard" @@ fun () ->
  let n = Noelle.create ?analysis_budget m in
  let report =
    Noelle.Pipeline.run
      ~config:(config ?inputs ?fuel ~verify_meta ?legacy_differential n)
      ?inject:inject_seed m
      (standard ?ncores ?min_hotness ?min_work ?check_races ?no_profile ?vec n)
  in
  (* close the quarantine-and-recompute loop: artifacts the transaction
     commits invalidated get re-embedded fresh, so the module leaves the
     pipeline carrying trusted analysis again *)
  if verify_meta then
    List.iter
      (fun fn ->
        match Irmod.func_opt m fn with
        | Some f when not f.Func.is_declaration ->
          Noelle.Pdg.embed ~tool:"noelle-pipeline" (Noelle.pdg n f)
        | _ -> ())
      (Noelle.Trust.quarantined_pdg_functions m);
  report
