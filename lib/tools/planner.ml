(** Profile-free parallelization planning (DESIGN.md §13).

    The planner answers, per loop, the two questions the parallelizing
    stack otherwise answers with a dynamic profile: {e which technique}
    would transform this loop (DOALL, then HELIX, then DSWP — the same
    precedence the standard pass stack applies), and {e how many tasks}
    to spawn.  [decide_profiled] answers them the classic way, through
    {!Parutil.profitable} over embedded profile metadata;
    [decide_static] answers them from {!Bounds} symbolic trip counts and
    cost polynomials alone.  Running both over a pristine module is the
    head-to-head the bench harness and [noelle-bounds] report: the
    ISSUE's bar is agreement on at least 80% of corpus loops with a Psim
    speedup delta within 10% geomean. *)

open Ir
open Noelle

type technique =
  | Vec_t of int          (** vectorize with lane-group factor W *)
  | Doall_t
  | Helix_t
  | Dswp_t
  | Sequential of string  (** why no technique applies *)

type decision = {
  pd_loop : string;         (** {!Ids.loop_key} *)
  pd_tech : technique;
  pd_chunk : int;           (** tasks to spawn (DOALL width) *)
  pd_planned : bool;        (** did the selection gate admit the loop? *)
}

let technique_to_string = function
  | Vec_t w -> Printf.sprintf "VEC(W=%d)" w
  | Doall_t -> "DOALL"
  | Helix_t -> "HELIX"
  | Dswp_t -> "DSWP"
  | Sequential why -> "sequential (" ^ why ^ ")"

(** Which technique the standard stack would commit on [lp], ignoring
    profitability: the plan constructors are pure analyses, so probing
    them mutates nothing. *)
let technique_of (n : Noelle.t) (m : Irmod.t) (f : Func.t) (lp : Loop.t) :
    technique =
  match Parutil.candidate_of n f lp with
  | Error e -> Sequential e
  | Ok c -> (
    match Doall.plan_of c with
    | Ok _ -> Doall_t
    | Error _ -> (
      match Helix.plan_of c with
      | Ok _ -> Helix_t
      | Error _ -> (
        match Dswp.plan_of m c ~max_stages:3 with
        | Ok _ -> Dswp_t
        | Error e -> Sequential e)))

(** The profile-driven decision: technique from the plan constructors,
    gate from {!Parutil.profitable}, full [ncores] chunk. *)
let decide_profiled (n : Noelle.t) (m : Irmod.t) (f : Func.t) (lp : Loop.t)
    ~ncores ~min_hotness ~min_work : decision =
  let planned =
    Parutil.profitable m (Loop.structure lp) ~min_hotness ~min_work
  in
  {
    pd_loop = Loop.id lp;
    pd_tech =
      (if planned then technique_of n m f lp
       else Sequential "below profile thresholds");
    pd_chunk = ncores;
    pd_planned = planned;
  }

(** The vec arm of the profile-free decision: probe the vectorizer's
    legality plan, then let the {!Psim.Models} SIMD model (fed the
    {!Bounds} trip count) pick W and arbitrate vectorize-vs-parallelize.
    [None] means "leave it to the parallelizers". *)
let vec_probe (n : Noelle.t) (f : Func.t) (lp : Loop.t) ~ncores : int option =
  match Parutil.candidate_of n f lp with
  | Error _ -> None
  | Ok c -> (
    match Vec.plan_of c with
    | Error _ -> None
    | Ok plan ->
      let a = Vec.appraise n c plan ~ncores () in
      let too_small = match a.Vec.a_trip with Some t -> t < 4 | None -> false in
      let doall_beats =
        Result.is_ok (Doall.plan_of c) && a.Vec.a_doall_time < a.Vec.a_vec_time
      in
      if too_small || doall_beats then None else Some a.Vec.a_width)

(** The profile-free decision: gate from {!Parutil.profitable_static},
    DOALL chunk clamped by the static trip bound.  With [vec] set the
    vectorizer arm runs first, mirroring the [--vec] pass stack. *)
let decide_static ?(vec = false) (n : Noelle.t) (m : Irmod.t) (f : Func.t)
    (lp : Loop.t) ~ncores ~min_work : decision =
  let ls = Loop.structure lp in
  let planned = Parutil.profitable_static n f ls ~min_work in
  let tech =
    if not planned then Sequential "below static work bound"
    else
      match (if vec then vec_probe n f lp ~ncores else None) with
      | Some w -> Vec_t w
      | None -> technique_of n m f lp
  in
  {
    pd_loop = Loop.id lp;
    pd_tech = tech;
    pd_chunk =
      (match tech with
      | Doall_t -> Parutil.static_chunk n f ls ~ncores
      | Vec_t w -> w
      | _ -> ncores);
    pd_planned = planned;
  }

(** Do two decisions pick the same technique?  (Two [Sequential]s agree
    regardless of the stated reason.)  A DOALL chunk clamped below the
    profiled arm's width is not a disagreement — the static bound proves
    the extra tasks would be idle — so chunk deltas are reported
    separately by the consumers, not folded into this predicate. *)
let agree (a : decision) (b : decision) =
  match (a.pd_tech, b.pd_tech) with
  | Sequential _, Sequential _ -> true
  | ta, tb -> ta = tb

(** Both decisions for every loop of the pristine module, paired:
    [(loop id, profiled, static)].  The module is not mutated. *)
let head_to_head (n : Noelle.t) (m : Irmod.t) ~ncores ~min_hotness ~min_work :
    (string * decision * decision) list =
  Noelle.set_tool n "PLANNER";
  List.concat_map
    (fun (f : Func.t) ->
      if String.contains f.Func.fname '.' then []
      else
        List.map
          (fun lp ->
            ( Loop.id lp,
              decide_profiled n m f lp ~ncores ~min_hotness ~min_work,
              decide_static n m f lp ~ncores ~min_work ))
          (Noelle.loops n f))
    (Irmod.defined_functions m)
