(** Shared machinery of the parallelizing custom tools (DOALL / HELIX /
    DSWP).

    Everything here is a thin composition of NOELLE abstractions: candidate
    selection reads L / aSCCDAG / IV, live-ins come from the PDG, the task
    bodies are produced with LB's cloning, the iteration-space changes go
    through IVS, and value forwarding uses ENV + T.  The per-technique
    modules only add their scheduling policy, which is why they fit in a
    few hundred lines each (Table 3). *)

open Ir
open Noelle

type candidate = {
  f : Func.t;
  lp : Loop.t;
  ls : Loopstructure.t;
  ascc : Ascc.t;
  iv : Indvars.t;
  gov : Indvars.governing;
  step_const : int64;            (** constant step, nonzero *)
  pred : Instr.cmp;              (** normalized: loop continues while pred *)
  exit_dst : int;
  body_entry : int;              (** unique in-loop successor of the header *)
  live_in_values : Instr.value list;
  live_out_regs : int list;
}

let negate_pred = function
  | Instr.Slt -> Instr.Sge
  | Instr.Sle -> Instr.Sgt
  | Instr.Sgt -> Instr.Sle
  | Instr.Sge -> Instr.Slt
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq

(** Profile-driven loop selection shared by the parallelizers: the loop
    must be hot enough, and its work per invocation must dwarf the
    thread-pool spawn/join overhead or parallelization is a loss (this is
    how PRO powers loop selection in §3). *)
let profitable (m : Irmod.t) (ls : Loopstructure.t) ~min_hotness ~min_work =
  (not (Profiler.available m))
  || (Profiler.loop_hotness m ls >= min_hotness
     &&
     let inv = Int64.to_float (Int64.max 1L (Profiler.loop_invocations m ls)) in
     Int64.to_float (Profiler.loop_insts m ls) /. inv >= min_work)

(** Profile-free loop selection (DESIGN.md §13): the same work gate as
    {!profitable}, answered from {!Bounds} static cost polynomials instead
    of the interpreter profile.  A constant-evaluable cost estimate below
    [min_work] rejects the loop; symbolic or lattice-top costs are
    optimistic — exactly mirroring how {!profitable} accepts everything
    when no profile is available.  Hotness has no static analogue, so the
    static planner plans every structurally eligible loop the work gate
    admits. *)
let profitable_static (n : Noelle.t) (f : Func.t) (ls : Loopstructure.t)
    ~min_work =
  let s = Noelle.bounds n f in
  match Bounds.find s ~header:ls.Loopstructure.header with
  | None -> true
  | Some lb -> (
    match Bounds.cost_const lb.Bounds.lcost with
    | Some w -> Int64.to_float w >= min_work
    | None -> true)

(** Profile-free DOALL chunk choice: when the static trip bound proves the
    loop runs fewer iterations than there are cores, spawning the full
    complement only buys idle tasks — clamp to the bound. *)
let static_chunk (n : Noelle.t) (f : Func.t) (ls : Loopstructure.t) ~ncores =
  let s = Noelle.bounds n f in
  match Bounds.find s ~header:ls.Loopstructure.header with
  | Some lb -> (
    match Bounds.trip_const lb.Bounds.liters with
    | Some t
      when Int64.compare t 0L > 0
           && Int64.compare t (Int64.of_int ncores) < 0 ->
      Int64.to_int t
    | _ -> ncores)
  | None -> ncores

(** Structural requirements shared by all three parallelizers: while-shaped
    loop, unique exit edge leaving from the header, governing IV with a
    constant nonzero step consistent with the exit predicate. *)
let candidate_of (n : Noelle.t) (f : Func.t) (lp : Loop.t) : (candidate, string) result =
  let ls = Loop.structure lp in
  if Loopstructure.shape ls <> Loopstructure.While_shape then
    Error "loop is not while-shaped"
  else
    match ls.Loopstructure.exit_edges with
    | [ (src, dst) ] when src = ls.Loopstructure.header -> (
      let ascc = Noelle.aSCCDAG n lp in
      match Indvars.governing_iv (Noelle.induction_variables n lp) with
      | None -> Error "no governing induction variable"
      | Some iv -> (
        let gov = Option.get iv.Indvars.governing in
        match iv.Indvars.step with
        | Instr.Cint c when not (Int64.equal c 0L) -> (
          let pred =
            if gov.Indvars.exit_on_false then gov.Indvars.pred
            else negate_pred gov.Indvars.pred
          in
          let dir_ok =
            match pred with
            | Instr.Slt | Instr.Sle -> c > 0L
            | Instr.Sgt | Instr.Sge -> c < 0L
            | _ -> false
          in
          if not dir_ok then Error "exit predicate inconsistent with step direction"
          else
            match
              List.filter
                (fun s -> Loopstructure.contains ls s)
                (Func.successors f ls.Loopstructure.header)
            with
            | [ body_entry ] ->
              Ok
                {
                  f;
                  lp;
                  ls;
                  ascc;
                  iv;
                  gov;
                  step_const = c;
                  pred;
                  exit_dst = dst;
                  body_entry;
                  live_in_values = Loop.live_ins lp;
                  live_out_regs = Loop.live_outs lp;
                }
            | _ -> Error "header has multiple in-loop successors")
        | _ -> Error "step is not a nonzero constant"))
    | _ -> Error "loop must have a single exit edge leaving the header"

(** Emit, in block [bid] of [f], the trip count of the candidate:
    [max(0, ceil((bound - start + adj) / step))]. *)
let emit_niters (c : candidate) (f : Func.t) bid ~start ~bound : Instr.value =
  let stepc = c.step_const in
  let adj =
    match c.pred with
    | Instr.Sle -> 1L
    | Instr.Sge -> -1L
    | _ -> 0L
  in
  let sign = if stepc > 0L then 1L else -1L in
  let k = Int64.add adj (Int64.sub stepc sign) in
  let range = Builder.add f bid (Instr.Bin (Instr.Sub, bound, start)) Ty.I64 in
  let numer =
    if Int64.equal k 0L then Instr.Reg range.Instr.id
    else
      Instr.Reg
        (Builder.add f bid (Instr.Bin (Instr.Add, Instr.Reg range.Instr.id, Instr.Cint k)) Ty.I64)
          .Instr.id
  in
  let q = Builder.add f bid (Instr.Bin (Instr.Sdiv, numer, Instr.Cint stepc)) Ty.I64 in
  Instr.Reg
    (Builder.add f bid
       (Instr.Call (Instr.Glob "i64_max", [ Instr.Reg q.Instr.id; Instr.Cint 0L ]))
       Ty.I64)
      .Instr.id

(** Type of a live-in value. *)
let value_ty (f : Func.t) = function
  | Instr.Cint _ -> Ty.I64
  | Instr.Cfloat _ -> Ty.F64
  | Instr.Null | Instr.Glob _ -> Ty.Ptr
  | Instr.Arg i -> snd f.Func.params.(i)
  | Instr.Reg r -> (Func.inst f r).Instr.ty

(** Declare an entry to be looked up with {!Instr.value_equal}. *)
let assoc_value v l =
  List.find_map (fun (k, x) -> if Instr.value_equal k v then Some x else None) l

(** Build the environment layout for a candidate: one live-in slot per
    live-in value, then [extra] additional named slots.  Returns the env
    and the live-in slot assignment. *)
let build_env (c : candidate) ~(extra : (string * Ty.t) list) :
    Env.t * (Instr.value * int) list * (string * int) list =
  let env = Env.create () in
  let live_slots =
    List.mapi
      (fun i v ->
        let idx =
          Env.add env
            ~name:(Printf.sprintf "livein%d" i)
            ~ty:(value_ty c.f v) ~role:Env.Live_in
        in
        (v, idx))
      c.live_in_values
  in
  let extra_slots =
    List.map
      (fun (name, ty) -> (name, Env.add env ~name ~ty ~role:Env.Live_out))
      extra
  in
  (env, live_slots, extra_slots)

(** Live-in loader: emits loads in [entry] of [tf] using types
    from the original function [src_f]; returns the substitution map. *)
let emit_live_in_loads (src_f : Func.t) (tf : Func.t) entry
    (live_slots : (Instr.value * int) list) ~(env_ptr : Instr.value) :
    (Instr.value * Instr.value) list =
  List.map
    (fun (v, idx) ->
      let ty = value_ty src_f v in
      let loaded = Env.emit_load tf entry ~env_ptr ~index:idx ty in
      (v, loaded))
    live_slots

(** The substitution used when cloning a loop body into a task. *)
let subst_of (pairs : (Instr.value * Instr.value) list) : Instr.value -> Instr.value =
 fun v -> match assoc_value v pairs with Some x -> x | None -> v

(** Rewrite the original function: the preheader now runs [emit_replacement]
    (which must leave [ph] unterminated or terminated), then branches to a
    fresh join block that falls through to the loop's exit target; exit
    phis are retargeted with [map_live_out]; the old loop body becomes
    unreachable and is pruned. *)
let replace_loop (c : candidate) ~(ph : int) ~(join_bid : int)
    ~(map_live_out : int -> Instr.value) =
  let f = c.f in
  let header = c.ls.Loopstructure.header in
  (* exit phis: the incoming from the header now comes from the join block *)
  List.iter
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Phi incs ->
        i.Instr.op <-
          Instr.Phi
            (List.map
               (fun (p, v) ->
                 if p = header then
                   ( join_bid,
                     match v with
                     | Instr.Reg r when List.mem r c.live_out_regs -> map_live_out r
                     | v -> v )
                 else (p, v))
               incs)
      | _ -> ())
    (Func.insts_of_block f c.exit_dst);
  (* direct uses of live-outs outside the loop (exit phis already done) *)
  List.iter
    (fun r ->
      let by = map_live_out r in
      Func.iter_insts
        (fun (u : Instr.inst) ->
          let in_loop = Loopstructure.contains c.ls u.Instr.parent in
          let is_exit_phi =
            u.Instr.parent = c.exit_dst
            && match u.Instr.op with Instr.Phi _ -> true | _ -> false
          in
          if (not in_loop) && not is_exit_phi then
            u.Instr.op <-
              Instr.map_operands
                (function Instr.Reg x when x = r -> by | v -> v)
                u.Instr.op)
        f)
    c.live_out_regs;
  ignore (Builder.set_term f join_bid (Instr.Br c.exit_dst));
  Builder.redirect f ph ~old_succ:header ~new_succ:join_bid;
  ignore (Cfg.prune_unreachable f);
  ignore (Builder.simplify_phis f)
