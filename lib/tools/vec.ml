(** Predicated loop vectorization (ROADMAP item 2, DESIGN.md §16).

    A fourth technique lane next to DOALL/HELIX/DSWP: instead of
    distributing iterations across cores, execute them in lane groups of
    W.  Legality reuses the DOALL core — every aSCCDAG SCC must be
    Independent, an induction variable, or a reduction, with no
    cross-SCC loop-carried dependence — because a lane group is just W
    consecutive iterations with no intervening exit test.  Divergent
    bodies are first linearized by {!Ir.Ifconv} (select-chain
    predication with address-masked side effects), which is what lets
    control-divergent kernels vectorize at all.

    The emitted code is ordinary scalar IR shaped like vector code: a
    widened loop runs [trip / W] groups of W if-converted lane bodies
    (lane l's induction value is [start + (cnt+l)*step], computed
    up front as a vector of lane offsets), and the original loop is kept
    as the scalar epilogue for the [trip mod W] leftover.  Lanes execute
    in iteration order inside a group, so the transform is
    observable-trace *exact*: the {!Ir.Obs} gate validates it under any
    license, reductions stay bit-identical (no reassociation), and the
    interpreter needs no vector semantics.  The SIMD *speedup* is
    modeled by {!Psim.Models.vec_time} from the per-loop shape this
    module reports in {!stats} (width, divergence, strides, epilogue). *)

open Ir
open Noelle

type plan = {
  c : Parutil.candidate;
  ivs : Indvars.t list;         (** every induction variable, governing first *)
  reds : Reduction.t list;
  body_blocks : int list;       (** loop blocks minus the header *)
  needs_merge : bool;           (** body spans several blocks *)
  divergent : bool;             (** body contains a conditional branch *)
}

type stats = {
  loop_id : string;
  width : int;                  (** lane-group factor W *)
  if_converted : bool;          (** body was divergent and got predicated *)
  selects : int;                (** merge phis folded to selects *)
  masked : int;                 (** memory operands / divisors masked *)
  divergence : float;           (** fraction of body insts under a predicate *)
  trip : int option;            (** static trip count, when Bounds proves one *)
  body_cost : float;            (** instructions per iteration *)
  strided_mem_ops : int;        (** memory ops with non-unit SCEV stride *)
  stride : int;                 (** worst element stride among them *)
  header : int;                 (** original header block id *)
}

let counters =
  [ "vec.loops_considered"; "vec.vectorized"; "vec.if_converted";
    "vec.rejected" ]

(** Check whether the candidate loop is vectorizable and build the plan.
    Same legality core as {!Doall.plan_of}, plus: no inner loops, a
    single latch, every header phi accounted for by an IV or a
    reduction (lane cloning replaces them all), and a body that is
    either a single block or if-convertible per {!Ir.Ifconv.check}. *)
let plan_of (c : Parutil.candidate) : (plan, string) result =
  let f = c.Parutil.f and ls = c.Parutil.ls in
  let header = ls.Loopstructure.header in
  let ivs = c.Parutil.ascc.Ascc.ivs in
  let reds = ref [] in
  let bad = ref None in
  List.iter
    (fun (node : Ascc.node) ->
      match node.Ascc.attr with
      | Ascc.Independent -> ()
      | Ascc.Induction _ -> ()
      | Ascc.Reducible r -> reds := r :: !reds
      | Ascc.Sequential ->
        if !bad = None then
          bad := Some (Printf.sprintf "sequential SCC of %d instructions"
                         (Sccdag.size node.Ascc.scc)))
    c.Parutil.ascc.Ascc.nodes;
  let reds = List.rev !reds in
  match !bad with
  | Some msg -> Error msg
  | None when Ascc.has_cross_carried c.Parutil.ascc ->
    Error
      (Printf.sprintf "%d loop-carried dependences cross SCCs"
         (List.length c.Parutil.ascc.Ascc.cross_carried))
  | None when ls.Loopstructure.raw.Loopnest.children <> [] ->
    Error "loop contains an inner loop"
  | None -> (
    match ls.Loopstructure.latches with
    | [ _ ] -> (
      (* lane cloning rewrites every loop-carried phi to a lane value or
         a running accumulator, so each must be an IV or a reduction *)
      let known_phi (i : Instr.inst) =
        List.exists (fun (iv : Indvars.t) -> iv.Indvars.phi.Instr.id = i.Instr.id) ivs
        || List.exists
             (fun (rd : Reduction.t) -> rd.Reduction.phi.Instr.id = i.Instr.id)
             reds
      in
      match
        List.find_opt
          (fun (i : Instr.inst) -> not (known_phi i))
          (Loopstructure.header_phis ls)
      with
      | Some i ->
        Error (Printf.sprintf "header phi %%%d is neither an IV nor a reduction"
                 i.Instr.id)
      | None -> (
        let ok_out r =
          List.exists (fun (iv : Indvars.t) -> iv.Indvars.phi.Instr.id = r) ivs
          || List.exists
               (fun (rd : Reduction.t) -> rd.Reduction.phi.Instr.id = r)
               reds
        in
        match
          List.find_opt (fun r -> not (ok_out r)) c.Parutil.live_out_regs
        with
        | Some r ->
          Error (Printf.sprintf "live-out %%%d is neither an IV nor a reduction" r)
        | None -> (
          let body_blocks =
            List.filter (fun b -> b <> header) ls.Loopstructure.blocks
          in
          let divergent =
            List.exists
              (fun b ->
                match Func.terminator f b with
                | Some { Instr.op = Instr.Cbr _; _ } -> true
                | _ -> false)
              body_blocks
          in
          let needs_merge = List.length body_blocks > 1 in
          let plan =
            { c; ivs; reds; body_blocks; needs_merge; divergent }
          in
          if not needs_merge then Ok plan
          else
            match
              Ifconv.check f ~entry:c.Parutil.body_entry ~blocks:body_blocks
                ~exit_bid:header
            with
            | Ok _ -> Ok plan
            | Error e -> Error ("not if-convertible: " ^ e))))
    | latches ->
      Error (Printf.sprintf "loop has %d latches" (List.length latches)))

(** Memory-access shape for the cost model: how many loads/stores have a
    non-unit element stride w.r.t. the governing IV (gather/scatter
    candidates), and the worst such stride.  Unanalyzable addresses are
    charged as worst-case gathers. *)
let mem_profile (c : Parutil.candidate) =
  let f = c.Parutil.f in
  let raw = c.Parutil.ls.Loopstructure.raw in
  let ivp = c.Parutil.iv.Indvars.phi.Instr.id in
  let smo = ref 0 and stride = ref 1 in
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.inst) ->
          let addr =
            match i.Instr.op with
            | Instr.Load p -> Some p
            | Instr.Store (_, p) -> Some p
            | _ -> None
          in
          match addr with
          | None -> ()
          | Some p -> (
            match Scev.affine_of f raw ~iv_phi:ivp p with
            | Some a ->
              let sc = Int64.abs a.Scev.scale in
              if Int64.compare sc 1L > 0 then begin
                incr smo;
                stride := max !stride (Int64.to_int (Int64.min sc 64L))
              end
            | None ->
              incr smo;
              stride := max !stride 8))
        (Func.insts_of_block f b))
    c.Parutil.ls.Loopstructure.blocks;
  (!smo, !stride)

let body_has_float (c : Parutil.candidate) =
  List.exists
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Fbin _ | Instr.Fcmp _ -> true
      | _ -> false)
    (Loopstructure.insts c.Parutil.ls)

(** Apply the transformation.  The body is first linearized in place
    (shared with the epilogue), then W lane clones are chained serially
    inside a widened loop that runs [trip / W] groups; the original loop
    remains as the scalar epilogue.  Returns statistics on success. *)
let transform (n : Noelle.t) (m : Irmod.t) (plan : plan) ~(width : int)
    ~(trip : int option) ~(body_cost : float) ~(strided_mem_ops : int)
    ~(stride : int) : stats =
  let { c; ivs; reds; body_blocks; needs_merge; divergent = _ } = plan in
  let f = c.Parutil.f and ls = c.Parutil.ls in
  let header = ls.Loopstructure.header in
  Noelle.loop_builder n;
  Noelle.iv_stepper n;
  if reds <> [] then ignore (Noelle.reductions n c.Parutil.lp);
  ignore (Noelle.invariants n c.Parutil.lp);
  let ph = Loopbuilder.ensure_preheader f ls.Loopstructure.raw in
  (* if-convert the body in place first: the epilogue (the original
     loop, kept for [trip mod W]) shares the linearized body, so both
     the widened lanes and the leftover iterations run identical code *)
  let ifc =
    if not needs_merge then None
    else begin
      (* typed scratch slots for address-masked lanes; allocated once at
         function entry and never escaping, so masked-off stores stay
         invisible to the Obs oracle *)
      let fentry = Func.entry f in
      let si =
        Builder.add f fentry (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr
      in
      let sf =
        Builder.add f fentry (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr
      in
      ignore
        (Builder.add f fentry
           (Instr.Store (Instr.Cint 0L, Instr.Reg si.Instr.id)) Ty.Void);
      ignore
        (Builder.add f fentry
           (Instr.Store (Instr.Cfloat 0.0, Instr.Reg sf.Instr.id)) Ty.Void);
      match
        Ifconv.run f ~entry:c.Parutil.body_entry ~blocks:body_blocks
          ~exit_bid:header ~scratch_i:(Instr.Reg si.Instr.id)
          ~scratch_f:(Instr.Reg sf.Instr.id)
      with
      | Ok r -> Some r
      | Error e -> failwith ("Vec.transform: if-conversion failed: " ^ e)
    end
  in
  let body = c.Parutil.body_entry in
  (* widened trip counts, in the preheader *)
  let start = c.Parutil.iv.Indvars.start in
  let bound = c.Parutil.gov.Indvars.bound in
  let niters = Parutil.emit_niters c f ph ~start ~bound in
  let w64 = Int64.of_int width in
  let groups =
    Builder.add f ph (Instr.Bin (Instr.Sdiv, niters, Instr.Cint w64)) Ty.I64
  in
  let viters_i =
    Builder.add f ph
      (Instr.Bin (Instr.Mul, Instr.Reg groups.Instr.id, Instr.Cint w64))
      Ty.I64
  in
  let viters = Instr.Reg viters_i.Instr.id in
  (* closed-form IV values on entry to the epilogue: start + viters*step *)
  let iv_fin =
    List.map
      (fun (iv : Indvars.t) ->
        let ext =
          Builder.add f ph (Instr.Bin (Instr.Mul, viters, iv.Indvars.step))
            Ty.I64
        in
        let fin =
          Builder.add f ph
            (Instr.Bin (Instr.Add, iv.Indvars.start, Instr.Reg ext.Instr.id))
            Ty.I64
        in
        (iv.Indvars.phi.Instr.id, Instr.Reg fin.Instr.id))
      ivs
  in
  let hlabel = (Func.block f header).Func.label in
  let vheader =
    Builder.add_block f ~label:(Printf.sprintf "vec.%s.header" hlabel)
  in
  let glatch =
    Builder.add_block f ~label:(Printf.sprintf "vec.%s.latch" hlabel)
  in
  let vexit =
    Builder.add_block f ~label:(Printf.sprintf "vec.%s.exit" hlabel)
  in
  let cnt = Builder.insert_front f vheader.Func.bid (Instr.Phi []) Ty.I64 in
  let raccs =
    List.map
      (fun (rd : Reduction.t) ->
        ( rd,
          Builder.insert_front f vheader.Func.bid (Instr.Phi [])
            (Reduction.value_ty rd.Reduction.kind) ))
      reds
  in
  (* the lane-offset vector: per-lane IV values for the whole group,
     computed up front in the widened header *)
  let lane_iv =
    Array.init width (fun l ->
        let off =
          Builder.add f vheader.Func.bid
            (Instr.Bin
               (Instr.Add, Instr.Reg cnt.Instr.id, Instr.Cint (Int64.of_int l)))
            Ty.I64
        in
        List.map
          (fun (iv : Indvars.t) ->
            let s =
              Builder.add f vheader.Func.bid
                (Instr.Bin (Instr.Mul, Instr.Reg off.Instr.id, iv.Indvars.step))
                Ty.I64
            in
            let v =
              Builder.add f vheader.Func.bid
                (Instr.Bin (Instr.Add, iv.Indvars.start, Instr.Reg s.Instr.id))
                Ty.I64
            in
            (iv.Indvars.phi.Instr.id, Instr.Reg v.Instr.id))
          ivs)
  in
  let vcmp =
    Builder.add f vheader.Func.bid
      (Instr.Icmp (Instr.Slt, Instr.Reg cnt.Instr.id, viters))
      Ty.I64
  in
  (* the reduction phis' latch-incoming values, to be remapped per lane *)
  let red_next =
    List.map
      (fun (rd : Reduction.t) ->
        let inc =
          match rd.Reduction.phi.Instr.op with
          | Instr.Phi incs -> (
            match List.assoc_opt body incs with
            | Some v -> v
            | None -> Instr.Reg rd.Reduction.phi.Instr.id)
          | _ -> Instr.Reg rd.Reduction.phi.Instr.id
        in
        (rd.Reduction.phi.Instr.id, inc))
      reds
  in
  let loop_blocks = [ header; body ] in
  let lanes =
    Array.init width (fun _ ->
        Loopbuilder.clone_blocks ~src:f ~blocks:loop_blocks ~dst:f
          ~map_value:(fun v -> v)
          ~entry_from:vheader.Func.bid
          ~exit_to:(fun _ -> vexit.Func.bid))
  in
  let red_carry =
    ref
      (List.map
         (fun (rd, (racc : Instr.inst)) ->
           (rd.Reduction.phi.Instr.id, Instr.Reg racc.Instr.id))
         raccs)
  in
  Array.iteri
    (fun l (bmap, imap) ->
      let ch = Hashtbl.find bmap header and cb = Hashtbl.find bmap body in
      (* the group bound already proves every lane's governing test, so
         lanes are entered unconditionally; the dead test is DCE'd *)
      Builder.replace_term f ch (Instr.Br cb);
      (if l = 0 then
         Builder.set_term f vheader.Func.bid
           (Instr.Cbr (Instr.Reg vcmp.Instr.id, ch, vexit.Func.bid))
         |> ignore
       else
         let pb, _ = lanes.(l - 1) in
         Builder.replace_term f (Hashtbl.find pb body) (Instr.Br ch));
      (* IV phis become precomputed lane values *)
      List.iter
        (fun (phi_id, v) ->
          let cid = Hashtbl.find imap phi_id in
          Builder.replace_uses f ~old:cid ~by:v;
          Builder.remove f cid)
        lane_iv.(l);
      (* reduction phis chain lane-serially through the mapped updates:
         same association order as the scalar loop, so float
         accumulators stay bit-identical *)
      let carry' =
        List.map
          (fun (rd : Reduction.t) ->
            let phi_id = rd.Reduction.phi.Instr.id in
            let cid = Hashtbl.find imap phi_id in
            Builder.replace_uses f ~old:cid ~by:(List.assoc phi_id !red_carry);
            Builder.remove f cid;
            let next =
              match List.assoc phi_id red_next with
              | Instr.Reg r -> (
                match Hashtbl.find_opt imap r with
                | Some r' -> Instr.Reg r'
                | None -> Instr.Reg r)
              | v -> v
            in
            (phi_id, next))
          reds
      in
      red_carry := carry')
    lanes;
  let lb, _ = lanes.(width - 1) in
  Builder.replace_term f (Hashtbl.find lb body) (Instr.Br glatch.Func.bid);
  let cnt_next =
    Builder.add f glatch.Func.bid
      (Instr.Bin (Instr.Add, Instr.Reg cnt.Instr.id, Instr.Cint w64))
      Ty.I64
  in
  ignore (Builder.set_term f glatch.Func.bid (Instr.Br vheader.Func.bid));
  ignore (Builder.set_term f vexit.Func.bid (Instr.Br header));
  cnt.Instr.op <-
    Instr.Phi
      [ (ph, Instr.Cint 0L); (glatch.Func.bid, Instr.Reg cnt_next.Instr.id) ];
  List.iter
    (fun ((rd : Reduction.t), (racc : Instr.inst)) ->
      racc.Instr.op <-
        Instr.Phi
          [ (ph, rd.Reduction.init);
            (glatch.Func.bid, List.assoc rd.Reduction.phi.Instr.id !red_carry)
          ])
    raccs;
  (* route the preheader through the widened loop; the original loop
     becomes the epilogue, entered with post-widened IV and accumulator
     values *)
  Builder.redirect f ph ~old_succ:header ~new_succ:vheader.Func.bid;
  Builder.rewrite_phi_pred f header ~old_pred:ph ~new_pred:vexit.Func.bid;
  List.iter
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Phi incs -> (
        let repl =
          match List.assoc_opt i.Instr.id iv_fin with
          | Some v -> Some v
          | None -> (
            match
              List.find_opt
                (fun ((rd : Reduction.t), _) ->
                  rd.Reduction.phi.Instr.id = i.Instr.id)
                raccs
            with
            | Some (_, racc) -> Some (Instr.Reg racc.Instr.id)
            | None -> None)
        in
        match repl with
        | Some v ->
          i.Instr.op <-
            Instr.Phi
              (List.map
                 (fun (p, x) -> if p = vexit.Func.bid then (p, v) else (p, x))
                 incs)
        | None -> ())
      | _ -> ())
    (Func.insts_of_block f header);
  ignore (Builder.dce f);
  Task.declare_runtime m;
  Noelle.invalidate n;
  let selects, masked, divergence, if_converted =
    match ifc with
    | Some r -> (r.Ifconv.selects, r.Ifconv.masked, r.Ifconv.div_frac,
                 r.Ifconv.selects > 0 || r.Ifconv.masked > 0)
    | None -> (0, 0, 0.0, false)
  in
  {
    loop_id = Printf.sprintf "%s.vec.%s" f.Func.fname hlabel;
    width;
    if_converted;
    selects;
    masked;
    divergence;
    trip;
    body_cost;
    strided_mem_ops;
    stride;
    header;
  }

(** Model appraisal of a planned candidate: width picked from the static
    {!Bounds} trip count via {!Psim.Models.best_vec_width}, plus the
    modeled vec and DOALL times so callers can decide
    vectorize-vs-parallelize without a profile.  Shared by {!run} and the
    profile-free planner arm. *)
type appraisal = {
  a_width : int;
  a_trip : int option;
  a_body_cost : float;
  a_strided_mem_ops : int;
  a_stride : int;
  a_divergence : float;
  a_vec_time : float;
  a_doall_time : float;
}

let appraise (n : Noelle.t) (c : Parutil.candidate) (plan : plan)
    ?(ncores = 12) ?(params = Psim.Models.default_vec_params) () : appraisal =
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  let s = Noelle.bounds n f in
  let trip =
    match Bounds.find s ~header:ls.Loopstructure.header with
    | Some lb -> Option.map Int64.to_int (Bounds.trip_const lb.Bounds.liters)
    | None -> None
  in
  let body_cost = float_of_int (Loopstructure.size ls) in
  let strided_mem_ops, stride = mem_profile c in
  let divergence = if plan.divergent then 0.25 else 0.0 in
  (* f32-narrowable float bodies get twice the lanes of 64-bit element
     bodies on the modeled 512-bit unit *)
  let max_width = if body_has_float c then 16 else 8 in
  let width =
    Psim.Models.best_vec_width params ~max_width ~iters:trip ~work:body_cost
      ~divergence ~strided_mem_ops ~stride
  in
  let iters = float_of_int (Option.value trip ~default:100_000) in
  {
    a_width = width;
    a_trip = trip;
    a_body_cost = body_cost;
    a_strided_mem_ops = strided_mem_ops;
    a_stride = stride;
    a_divergence = divergence;
    a_vec_time =
      Psim.Models.vec_time { params with width } ~iters ~work:body_cost
        ~divergence ~strided_mem_ops ~stride;
    a_doall_time =
      Psim.Models.doall_time
        { Psim.Models.default_params with cores = ncores }
        ~iters ~work:body_cost;
  }

(** Try to vectorize every eligible loop of each function (skipping
    generated task functions and already-widened [vec.*] regions).
    [only_best] leaves a loop to DOALL when the models say core
    parallelism beats lane parallelism on it; the standalone gates and
    the bench's per-technique comparison pass [~only_best:false] to get
    a vec row for every vectorizable loop.  Returns per-loop outcomes. *)
let run (n : Noelle.t) (m : Irmod.t) ?(ncores = 12) ?(min_work = 512.0)
    ?(only_best = true) ?(params = Psim.Models.default_vec_params)
    ?(skip = fun (_ : string) -> false) () :
    (string * (stats, string) result) list =
  Noelle.set_tool n "VEC";
  List.iter Trace.touch counters;
  let results = ref [] in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let record id r =
    (match r with
    | Ok (s : stats) ->
      Trace.incr_m "vec.vectorized";
      if s.if_converted then Trace.incr_m "vec.if_converted"
    | Error _ -> Trace.incr_m "vec.rejected");
    results := (id, r) :: !results
  in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        if not (String.contains f.Func.fname '.') then begin
          ignore (Noelle.bounds n f);
          let loops = Noelle.loops n f in
          let preds = Func.preds f in
          (* never re-enter an already-widened region: both the widened
             loop and its epilogue are reached through vec.* blocks *)
          let in_vec_region (ls : Loopstructure.t) =
            let starts_vec b =
              let s = (Func.block f b).Func.label in
              String.length s >= 4 && String.equal (String.sub s 0 4) "vec."
            in
            starts_vec ls.Loopstructure.header
            || List.exists starts_vec
                 (try Hashtbl.find preds ls.Loopstructure.header
                  with Not_found -> [])
          in
          let eligible =
            List.filter
              (fun lp ->
                let ls = Loop.structure lp in
                (not (Hashtbl.mem attempted (Loop.id lp)))
                && (not (in_vec_region ls))
                && Parutil.profitable_static n f ls ~min_work)
              loops
          in
          (* innermost first: vectorization targets leaf loops *)
          let ordered =
            List.sort
              (fun a b ->
                compare
                  (Loop.structure b).Loopstructure.depth
                  (Loop.structure a).Loopstructure.depth)
              eligible
          in
          let rec try_loops = function
            | [] -> ()
            | lp :: rest -> (
              let id = Loop.id lp in
              Hashtbl.replace attempted id ();
              Trace.incr_m "vec.loops_considered";
              if skip id then begin
                record id (Error "skipped: loop flagged by race detector");
                try_loops rest
              end
              else
                match Parutil.candidate_of n f lp with
                | Error e ->
                  record id (Error e);
                  try_loops rest
                | Ok c -> (
                  match plan_of c with
                  | Error e ->
                    record id (Error e);
                    try_loops rest
                  | Ok plan ->
                    let a = appraise n c plan ~ncores ~params () in
                    let too_small =
                      match a.a_trip with Some t -> t < 4 | None -> false
                    in
                    let doall_preferred =
                      only_best
                      && Result.is_ok (Doall.plan_of c)
                      && a.a_doall_time < a.a_vec_time
                    in
                    if too_small then begin
                      record id (Error "trip count too small to vectorize");
                      try_loops rest
                    end
                    else if doall_preferred then begin
                      record id
                        (Error "DOALL preferred: core parallelism models faster");
                      try_loops rest
                    end
                    else begin
                      let st =
                        transform n m plan ~width:a.a_width ~trip:a.a_trip
                          ~body_cost:a.a_body_cost
                          ~strided_mem_ops:a.a_strided_mem_ops
                          ~stride:a.a_stride
                      in
                      record id (Ok st);
                      progress := true
                    end))
          in
          try_loops ordered
        end)
      (Irmod.defined_functions m)
  done;
  List.rev !results
