(** DSWP — Decoupled Software Pipelining (§3, [43]).

    Partitions the SCCs of the loop's aSCCDAG into pipeline stages; all
    dynamic instances of a given SCC execute on the same core, creating
    unidirectional core-to-core communication.  Each stage is a Task with
    a replicated loop skeleton (the induction-variable SCCs and the loop
    control are duplicated into every stage, as in the original DSWP);
    cross-stage register dependences become queue push/pop pairs; cross-
    stage memory dependences are ordered with token queues.

    Sequential SCCs — the recurrences DOALL cannot touch — stay intact
    inside one stage, which is DSWP's strength: no speculation, no
    reassociation, just decoupling. *)

open Ir
open Noelle

type stage = {
  index : int;
  sccs : Sccdag.scc list;
  weight : float;
}

type plan = {
  c : Parutil.candidate;
  ivs : Indvars.t list;
  stages : stage list;
  replicated : int list;        (** instruction ids cloned into every stage *)
}

type stats = {
  loop_id : string;
  nstages : int;
  nqueues : int;
}

(** The loop's in-loop CFG must be a linear chain (no in-loop branching
    besides the header's exit test): every non-header block has exactly
    one successor. *)
let linear_body (c : Parutil.candidate) =
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  List.for_all
    (fun b ->
      b = ls.Loopstructure.header
      ||
      match Func.successors f b with
      | [ _ ] -> true
      | _ -> false)
    ls.Loopstructure.blocks

(** Dynamic weight of an SCC: executed instructions per its blocks. *)
let scc_weight (m : Irmod.t) (f : Func.t) (s : Sccdag.scc) =
  List.fold_left
    (fun acc id ->
      let i = Func.inst f id in
      let blk = i.Instr.parent in
      acc
      +.
      if Profiler.available m then
        Int64.to_float (Profiler.block_count m f blk)
      else 1.0)
    0.0 s.Sccdag.members

let plan_of (m : Irmod.t) (c : Parutil.candidate) ~(max_stages : int) :
    (plan, string) result =
  if not (linear_body c) then Error "loop body is not a linear chain"
  else begin
    let f = c.Parutil.f in
    let ivs = c.Parutil.ascc.Ascc.ivs in
    let iv_insts = List.concat_map (fun (iv : Indvars.t) -> iv.Indvars.scc) ivs in
    (* replicated: IV SCCs + all terminators *)
    let terminators =
      List.filter_map
        (fun (i : Instr.inst) -> if Instr.is_terminator i then Some i.Instr.id else None)
        (Loopstructure.insts c.Parutil.ls)
    in
    let replicated = List.sort_uniq compare (iv_insts @ terminators) in
    let assignable =
      List.filter
        (fun (s : Sccdag.scc) ->
          not (List.for_all (fun id -> List.mem id replicated) s.Sccdag.members))
        (Sccdag.topological c.Parutil.ascc.Ascc.dag)
    in
    if List.length assignable < 2 then Error "fewer than two assignable SCCs"
    else begin
      let weights = List.map (fun s -> scc_weight m f s) assignable in
      let total = List.fold_left ( +. ) 0.0 weights in
      if total <= 0.0 then Error "no dynamic weight information"
      else begin
        (* greedy contiguous partition into k stages; pick the k with the
           lightest bottleneck stage *)
        let partition k =
          let target = total /. float_of_int k in
          let stages = ref [] and cur = ref [] and curw = ref 0.0 in
          List.iteri
            (fun i s ->
              let w = List.nth weights i in
              if !curw > 0.0 && !curw +. (w /. 2.0) > target
                 && List.length !stages < k - 1
              then begin
                stages := (List.rev !cur, !curw) :: !stages;
                cur := [ s ];
                curw := w
              end
              else begin
                cur := s :: !cur;
                curw := !curw +. w
              end)
            assignable;
          if !cur <> [] then stages := (List.rev !cur, !curw) :: !stages;
          List.rev !stages
        in
        let candidates =
          List.filter_map
            (fun k ->
              if k > List.length assignable then None
              else
                let p = partition k in
                if List.length p < 2 then None
                else
                  let bottleneck =
                    List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 p
                  in
                  Some (p, bottleneck))
            (List.init (max_stages - 1) (fun i -> i + 2))
        in
        match candidates with
        | [] -> Error "no viable stage partition"
        | _ ->
          let best, bw =
            List.fold_left
              (fun (bp, bw) (p, w) -> if w < bw then (p, w) else (bp, bw))
              (fst (List.hd candidates), snd (List.hd candidates))
              (List.tl candidates)
          in
          if bw > 0.85 *. total then
            Error "pipeline too imbalanced to be profitable"
          else begin
            (* account for the per-iteration queue traffic the partition
               would create: ~10 cycles per crossing value per iteration *)
            let owner = Hashtbl.create 64 in
            List.iteri
              (fun idx (sccs, _) ->
                List.iter
                  (fun (s : Sccdag.scc) ->
                    List.iter
                      (fun id ->
                        if not (List.mem id replicated) then
                          Hashtbl.replace owner id idx)
                      s.Sccdag.members)
                  sccs)
              best;
            let crossings = Hashtbl.create 16 in
            List.iter
              (fun (i : Instr.inst) ->
                match Hashtbl.find_opt owner i.Instr.id with
                | None -> ()
                | Some si ->
                  List.iter
                    (function
                      | Instr.Reg r -> (
                        match Hashtbl.find_opt owner r with
                        | Some sp when sp <> si -> Hashtbl.replace crossings (r, si) ()
                        | _ -> ())
                      | _ -> ())
                    (Instr.operands i.Instr.op))
              (Loopstructure.insts c.Parutil.ls);
            let iters =
              if Profiler.available m then
                Int64.to_float (Profiler.loop_iterations m c.Parutil.ls)
              else
                let static = List.length (Loopstructure.insts c.Parutil.ls) in
                total /. float_of_int (max 1 static)
            in
            let queue_overhead =
              3.0 *. float_of_int (Hashtbl.length crossings + 1) *. iters
            in
            if bw +. queue_overhead > total then
              Error "queue traffic would eat the pipeline gain"
            else
              Ok
                {
                  c;
                  ivs;
                  stages =
                    List.mapi
                      (fun index (sccs, weight) -> { index; sccs; weight })
                      best;
                  replicated;
                }
          end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Transformation                                                      *)
(* ------------------------------------------------------------------ *)

let transform (n : Noelle.t) (m : Irmod.t) (plan : plan) : stats =
  let { c; ivs; stages; replicated } = plan in
  let f = c.Parutil.f in
  let ls = c.Parutil.ls in
  Noelle.loop_builder n;
  Noelle.environment n;
  Noelle.task n;
  Noelle.iv_stepper n;
  ignore (Noelle.arch n);
  let nstages = List.length stages in
  let ph = Loopbuilder.ensure_preheader f ls.Loopstructure.raw in
  let header = ls.Loopstructure.header in
  let latch = List.hd ls.Loopstructure.latches in
  (* ownership map: inst id -> stage index (replicated insts absent) *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun st ->
      List.iter
        (fun (s : Sccdag.scc) ->
          List.iter (fun id -> Hashtbl.replace owner id st.index) s.Sccdag.members)
        st.sccs)
    stages;
  let stage_of id =
    if List.mem id replicated then None else Hashtbl.find_opt owner id
  in
  (* cross-stage register dependences: producer inst -> consumer stages *)
  let reg_cross : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (i : Instr.inst) ->
      match stage_of i.Instr.id with
      | None -> ()
      | Some si ->
        List.iter
          (function
            | Instr.Reg r -> (
              match stage_of r with
              | Some sp when sp <> si -> Hashtbl.replace reg_cross (r, si) ()
              | _ -> ())
            | _ -> ())
          (Instr.operands i.Instr.op))
    (Loopstructure.insts ls);
  let reg_queues =
    Hashtbl.fold (fun k () acc -> k :: acc) reg_cross [] |> List.sort compare
  in
  (* cross-stage memory orderings: SCCDAG edges of memory kind *)
  let mem_cross : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Depgraph.edge) ->
      match e.Depgraph.kind with
      | Depgraph.Memory _ -> (
        match (stage_of e.Depgraph.esrc, stage_of e.Depgraph.edst) with
        | Some a, Some b when a <> b ->
          let lo = min a b and hi = max a b in
          Hashtbl.replace mem_cross (lo, hi) ()
        | _ -> ())
      | _ -> ())
    (Depgraph.edges (Loop.dep_graph c.Parutil.lp).Pdg.ldg);
  let tok_queues =
    Hashtbl.fold (fun k () acc -> k :: acc) mem_cross [] |> List.sort compare
  in
  (* live-outs: IV phis are analytic; everything else is stored per
     iteration into an env slot by its owning stage *)
  let iv_phi_ids = List.map (fun (iv : Indvars.t) -> iv.Indvars.phi.Instr.id) ivs in
  let stored_outs =
    List.filter (fun r -> not (List.mem r iv_phi_ids)) c.Parutil.live_out_regs
  in
  (* env layout: live-ins ++ queue handles ++ token handles ++ out slots *)
  let extra =
    List.map (fun (p, s) -> (Printf.sprintf "q.%d.%d" p s, Ty.I64)) reg_queues
    @ List.map (fun (a, b) -> (Printf.sprintf "tok.%d.%d" a b, Ty.I64)) tok_queues
    @ List.map
        (fun r -> (Printf.sprintf "out.%d" r, (Func.inst f r).Instr.ty))
        stored_outs
  in
  let env, live_slots, extra_slots = Parutil.build_env c ~extra in
  let slot name = List.assoc name extra_slots in
  let tname_base =
    Printf.sprintf "%s.dswp.%s" f.Func.fname (Func.block f header).Func.label
  in
  (* --- per-stage task generation --- *)
  List.iter
    (fun st ->
      let tname = Printf.sprintf "%s.s%d" tname_base st.index in
      let task, entry =
        Task.create m ~name:tname ~env ~origin:(Printf.sprintf "DSWP stage %d" st.index)
      in
      let tf = task.Task.tfunc in
      let env_ptr = Task.env_arg in
      let subst_pairs =
        Parutil.emit_live_in_loads f tf entry.Func.bid live_slots ~env_ptr
      in
      (* load the queue handles this stage touches *)
      let qh : (int * int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (p, s) ->
          if s = st.index || stage_of p = Some st.index then
            qh |> fun t ->
            Hashtbl.replace t (p, s)
              (Env.emit_load tf entry.Func.bid ~env_ptr
                 ~index:(slot (Printf.sprintf "q.%d.%d" p s))
                 Ty.I64))
        reg_queues;
      let tokh : (int * int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (a, b) ->
          if a = st.index || b = st.index then
            Hashtbl.replace tokh (a, b)
              (Env.emit_load tf entry.Func.bid ~env_ptr
                 ~index:(slot (Printf.sprintf "tok.%d.%d" a b))
                 Ty.I64))
        tok_queues;
      let done_blk = Builder.add_block tf ~label:"done" in
      let bmap, imap =
        Loopbuilder.clone_blocks ~src:f ~blocks:ls.Loopstructure.blocks ~dst:tf
          ~map_value:(Parutil.subst_of subst_pairs)
          ~entry_from:entry.Func.bid
          ~exit_to:(fun _ -> done_blk.Func.bid)
      in
      let cbody = Hashtbl.find bmap c.Parutil.body_entry in
      let clatch = Hashtbl.find bmap latch in
      (* a dedicated comm block between header and body keeps insertion
         simple: pops happen there, in deterministic order *)
      let comm = Builder.add_block tf ~label:"dswp.pop" in
      Builder.redirect tf (Hashtbl.find bmap header) ~old_succ:cbody
        ~new_succ:comm.Func.bid;
      ignore (Builder.set_term tf comm.Func.bid (Instr.Br cbody));
      (* token pops: before the body *)
      List.iter
        (fun (a, b) ->
          if b = st.index then
            ignore
              (Builder.add tf comm.Func.bid
                 (Instr.Call (Instr.Glob "q_pop", [ Hashtbl.find tokh (a, b) ]))
                 Ty.I64))
        tok_queues;
      (* value pops *)
      let popped : (int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (p, s) ->
          if s = st.index then begin
            let ty = (Func.inst f p).Instr.ty in
            let fn = if Ty.equal ty Ty.F64 then "q_pop_f" else "q_pop" in
            let v =
              Builder.add tf comm.Func.bid
                (Instr.Call (Instr.Glob fn, [ Hashtbl.find qh (p, s) ]))
                ty
            in
            Hashtbl.replace popped p (Instr.Reg v.Instr.id)
          end)
        reg_queues;
      (* value pushes: at the end of the producing block *)
      List.iter
        (fun (p, s) ->
          if stage_of p = Some st.index then begin
            let ci = Hashtbl.find imap p in
            let cinst = Func.inst tf ci in
            let ty = cinst.Instr.ty in
            let fn = if Ty.equal ty Ty.F64 then "q_push_f" else "q_push" in
            (match Func.terminator tf cinst.Instr.parent with
            | Some t ->
              ignore
                (Builder.insert_before tf ~before:t.Instr.id
                   (Instr.Call (Instr.Glob fn, [ Hashtbl.find qh (p, s); Instr.Reg ci ]))
                   Ty.Void)
            | None -> ())
          end)
        reg_queues;
      (* token pushes: end of the latch *)
      List.iter
        (fun (a, b) ->
          if a = st.index then
            match Func.terminator tf clatch with
            | Some t ->
              ignore
                (Builder.insert_before tf ~before:t.Instr.id
                   (Instr.Call
                      (Instr.Glob "q_push", [ Hashtbl.find tokh (a, b); Instr.Cint 0L ]))
                   Ty.Void)
            | None -> ())
        tok_queues;
      (* per-iteration stores of this stage's live-outs *)
      List.iter
        (fun r ->
          if stage_of r = Some st.index then begin
            (* a header phi is stored as-is from the header: the header
               executes once more than the body, so the last store is
               exactly the phi's exit value; a body value is stored after
               each production, leaving the final iteration's value *)
            let ci = Hashtbl.find imap r in
            let cinst = Func.inst tf ci in
            match Func.terminator tf cinst.Instr.parent with
            | Some t ->
              let addr =
                Builder.insert_before tf ~before:t.Instr.id
                  (Instr.Gep
                     (env_ptr, Instr.Cint (Int64.of_int (slot (Printf.sprintf "out.%d" r)))))
                  Ty.Ptr
              in
              ignore
                (Builder.insert_before tf ~before:t.Instr.id
                   (Instr.Store (Instr.Reg ci, Instr.Reg addr.Instr.id))
                   Ty.Void)
            | None -> ()
          end)
        stored_outs;
      (* delete instructions owned by other stages *)
      let deleted = ref [] in
      List.iter
        (fun (i : Instr.inst) ->
          match stage_of i.Instr.id with
          | Some s when s <> st.index -> deleted := i.Instr.id :: !deleted
          | _ -> ())
        (Loopstructure.insts ls);
      (* first replace uses of deleted producers with popped values *)
      List.iter
        (fun p ->
          match Hashtbl.find_opt popped p with
          | Some v ->
            let ci = Hashtbl.find imap p in
            Builder.replace_uses tf ~old:ci ~by:v
          | None -> ())
        !deleted;
      (* clear operands to break mutual references, then remove *)
      List.iter
        (fun p ->
          let ci = Hashtbl.find imap p in
          (Func.inst tf ci).Instr.op <- Instr.Phi [])
        !deleted;
      List.iter (fun p -> Builder.remove tf (Hashtbl.find imap p)) !deleted;
      ignore (Builder.set_term tf entry.Func.bid (Instr.Br (Hashtbl.find bmap header)));
      ignore (Builder.set_term tf done_blk.Func.bid (Instr.Ret None)))
    stages;
  (* --- main rewrite --- *)
  let start = c.Parutil.iv.Indvars.start in
  let bound = c.Parutil.gov.Indvars.bound in
  let niters = Parutil.emit_niters c f ph ~start ~bound in
  let env_ptr_main = Env.emit_alloc env f ph in
  List.iter
    (fun (v, idx) -> Env.emit_store f ph ~env_ptr:env_ptr_main ~index:idx v)
    live_slots;
  List.iter
    (fun (name, idx) ->
      if String.length name > 1 && (name.[0] = 'q' || name.[0] = 't') then begin
        let q = Builder.add f ph (Instr.Call (Instr.Glob "q_new", [])) Ty.I64 in
        Env.emit_store f ph ~env_ptr:env_ptr_main ~index:idx (Instr.Reg q.Instr.id)
      end)
    extra_slots;
  List.iteri
    (fun k _ ->
      let tname = Printf.sprintf "%s.s%d" tname_base k in
      ignore tname;
      ignore
        (Builder.add f ph
           (Instr.Call
              (Instr.Glob "task_submit",
               [ Instr.Glob (Printf.sprintf "%s.s%d" tname_base k);
                 Instr.Cint (Int64.of_int k);
                 Instr.Cint (Int64.of_int nstages);
                 env_ptr_main ]))
           Ty.Void))
    stages;
  ignore (Builder.add f ph (Instr.Call (Instr.Glob "tasks_run", [])) Ty.Void);
  let out_finals =
    List.map
      (fun r ->
        let v =
          Env.emit_load f ph ~env_ptr:env_ptr_main
            ~index:(slot (Printf.sprintf "out.%d" r))
            (Func.inst f r).Instr.ty
        in
        (r, v))
      stored_outs
  in
  let iv_finals =
    List.map
      (fun (iv : Indvars.t) ->
        let extent =
          Builder.add f ph (Instr.Bin (Instr.Mul, niters, iv.Indvars.step)) Ty.I64
        in
        let final =
          Builder.add f ph
            (Instr.Bin (Instr.Add, iv.Indvars.start, Instr.Reg extent.Instr.id))
            Ty.I64
        in
        (iv.Indvars.phi.Instr.id, Instr.Reg final.Instr.id))
      ivs
  in
  let map_live_out r =
    match List.assoc_opt r out_finals with
    | Some v -> v
    | None -> (
      match List.assoc_opt r iv_finals with
      | Some v -> v
      | None -> Instr.Cint 0L)
  in
  let join = Builder.add_block f ~label:"dswp.join" in
  Parutil.replace_loop c ~ph ~join_bid:join.Func.bid ~map_live_out;
  Task.declare_runtime m;
  Noelle.invalidate n;
  {
    loop_id = tname_base;
    nstages;
    nqueues = List.length reg_queues + List.length tok_queues;
  }

(** Run DSWP over the hottest eligible loops. *)
let run (n : Noelle.t) (m : Irmod.t) ?(max_stages = 3) ?(min_hotness = 0.05)
    ?(min_work = 20000.0) ?(profile_free = false)
    ?(skip = fun (_ : string) -> false) () :
    (string * (stats, string) result) list =
  Noelle.set_tool n "DSWP";
  let results = ref [] in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        if not (String.contains f.Func.fname '.') then begin
          Noelle.profiler n;
          let selected lp =
            if profile_free then
              Parutil.profitable_static n f (Loop.structure lp) ~min_work
            else Parutil.profitable m (Loop.structure lp) ~min_hotness ~min_work
          in
          let eligible =
            List.filter
              (fun lp ->
                (not (Hashtbl.mem attempted (Loop.id lp))) && selected lp)
              (Noelle.loops n f)
            |> List.sort
                 (fun a b ->
                   compare
                     (Loop.structure a).Loopstructure.depth
                     (Loop.structure b).Loopstructure.depth)
          in
          let rec try_loops = function
            | [] -> ()
            | lp :: rest -> (
              let id = Loop.id lp in
              Hashtbl.replace attempted id ();
              if skip id then begin
                results := (id, Error "skipped: loop flagged by race detector") :: !results;
                try_loops rest
              end
              else
              match Parutil.candidate_of n f lp with
              | Error e ->
                results := (id, Error e) :: !results;
                try_loops rest
              | Ok c -> (
                match plan_of m c ~max_stages with
                | Error e ->
                  results := (id, Error e) :: !results;
                  try_loops rest
                | Ok plan ->
                  let s = transform n m plan in
                  results := (id, Ok s) :: !results;
                  progress := true))
          in
          try_loops eligible
        end)
      (Irmod.defined_functions m)
  done;
  List.rev !results
