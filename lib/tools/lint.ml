(** Driver layer for noelle-check.

    {!Noelle.Check} is the static side: diagnostics composed from the PDG,
    DFE, Andersen, and SCEV.  This module adds the dynamic side — a
    sanitizer oracle built on the interpreter's [on_mem] hook that observes
    which memory bugs actually happen at runtime — and the glue the CLI and
    the pipeline gate need.

    The dynamic oracle exists to keep the static checkers honest: the
    differential test plants a fault with {!Ir.Faultgen.sanitizer_kinds},
    asks {!Noelle.Check.run} to find it, and then executes the module under
    this oracle to prove the planted bug is real, not an artifact of the
    checker's imagination. *)

open Ir
module Check = Noelle.Check

(* ------------------------------------------------------------------ *)
(* Dynamic sanitizer: interpreter-level memory-state oracle            *)
(* ------------------------------------------------------------------ *)

type event_kind = Uninit_read | Use_after_free | Out_of_bounds

let event_kind_to_string = function
  | Uninit_read -> "uninit-read"
  | Use_after_free -> "use-after-free"
  | Out_of_bounds -> "out-of-bounds"

type event = {
  ekind : event_kind;
  efunc : string;
  einst : int;
  eaddr : int;
}

let event_to_string (e : event) =
  Printf.sprintf "%s at %s/inst %d (addr %d)" (event_kind_to_string e.ekind)
    e.efunc e.einst e.eaddr

(** Execute [m] under a word-granularity memory-state oracle and report
    every sanitizer-visible event: reads of never-written allocation words,
    accesses to freed allocations, and accesses outside every allocation.
    Execution continues past events (the interpreter's own trap ends it for
    genuinely wild addresses); a trap is reported alongside the events. *)
let sanitize ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) :
    event list * string option =
  let events = ref [] in
  let record ekind (f : Func.t) (i : Instr.inst) addr =
    events := { ekind; efunc = f.Func.fname; einst = i.Instr.id; eaddr = addr } :: !events
  in
  let trap_msg = ref None in
  (try
     ignore
       (Interp.run_state ~entry ~args ?fuel m ~configure:(fun st ->
            (* globals are initialized by [create]; mark their words *)
            let written = Hashtbl.create 256 in
            Hashtbl.iter
              (fun _ base ->
                match Hashtbl.find_opt st.Interp.allocs base with
                | Some a ->
                  for w = a.Interp.base to a.Interp.base + a.Interp.size - 1 do
                    Hashtbl.replace written w ()
                  done
                | None -> ())
              st.Interp.global_addr;
            let covering addr =
              Hashtbl.fold
                (fun _ (a : Interp.alloc) acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    if addr >= a.Interp.base && addr < a.Interp.base + a.Interp.size
                    then Some a
                    else None)
                st.Interp.allocs None
            in
            st.Interp.hooks.Interp.on_mem <-
              Some
                (fun f i ~addr ~write ->
                  (match covering addr with
                  | Some a when not a.Interp.alive -> record Use_after_free f i addr
                  | Some _ ->
                    if not write && not (Hashtbl.mem written addr) then
                      record Uninit_read f i addr
                  | None -> record Out_of_bounds f i addr);
                  if write then Hashtbl.replace written addr ())))
   with Interp.Trap msg -> trap_msg := Some msg);
  (List.rev !events, !trap_msg)

(** Does the dynamic oracle confirm a sanitizer-visible bug at instruction
    [inst] of [func]?  (A trap while executing that instruction counts: the
    wildest accesses die inside the interpreter itself.) *)
let confirms (events, trap) ~func ~inst =
  List.exists (fun e -> e.efunc = func && e.einst = inst) events
  || (match trap with
     | Some msg ->
       (* interpreter trap messages carry "fname/label: inst N:" context *)
       let contains needle =
         let nl = String.length needle and ml = String.length msg in
         let rec find k =
           k + nl <= ml && (String.sub msg k nl = needle || find (k + 1))
         in
         nl > 0 && find 0
       in
       contains (func ^ "/") && contains (Printf.sprintf "inst %d:" inst)
     | None -> false)

(* ------------------------------------------------------------------ *)
(* Pipeline race gate                                                  *)
(* ------------------------------------------------------------------ *)

(** Loop-skip predicate for the parallelizers: flag every loop the static
    race detector reports a loop-carried memory dependence for, so
    DOALL/HELIX/DSWP refuse it up front instead of relying on the
    transactional rollback to catch the damage. *)
let race_gate (m : Irmod.t) : string -> bool =
  let flagged = Check.race_flagged_loops m in
  fun loop_id -> Hashtbl.mem flagged loop_id
