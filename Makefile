.PHONY: check build test faultcheck lint

build:
	dune build

test:
	dune runtest

# one seeded fault-injection pipeline run: every injected corruption must be
# caught by the verify/differential gates (exit 0 = final module ok)
faultcheck: build
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --fault-seed 8 -q
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --task-fault-seed 5 --kill-task 0 -q

# static race detector + sanitizers over the pristine benchmark corpus and a
# sweep of fuzzer outputs: zero unsuppressed errors is the gate
lint: build
	dune exec bin/noelle_check.exe -- --kernels -q
	for s in 1 2 3 4 5; do \
	  dune exec bin/noelle_check.exe -- --fuzz-seed $$s -q || exit 1; \
	done

check: build test faultcheck lint
