.PHONY: check build test faultcheck lint verify-meta trace bench-json

build:
	dune build

test:
	dune runtest

# one seeded fault-injection pipeline run: every injected corruption must be
# caught by the verify/differential gates (exit 0 = final module ok)
faultcheck: build
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --fault-seed 8 -q
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --task-fault-seed 5 --kill-task 0 -q

# static race detector + sanitizers over the pristine benchmark corpus and a
# sweep of fuzzer outputs: zero unsuppressed errors is the gate
lint: build
	dune exec bin/noelle_check.exe -- --kernels -q
	for s in 1 2 3 4 5; do \
	  dune exec bin/noelle_check.exe -- --fuzz-seed $$s -q || exit 1; \
	done

# metadata trust gate: embed every analysis artifact over the pristine
# corpus, round-trip through the printer/parser, transform with the
# verify-meta pipeline gate on — zero stale/corrupt artifacts may survive
# and every pristine reload must take the verified fast path
verify-meta: build
	dune exec bin/noelle_meta_verify.exe -- --kernels --roundtrip --limit 10

# telemetry smoke: run the standard stack under tracing on a parallelizable
# kernel; the trace must round-trip through the repo's own JSON parser and
# carry spans from at least 3 layers (analyses, pipeline passes, psim tasks)
trace: build
	dune exec bin/noelle_trace.exe -- --kernel histogram --check -q

# machine-readable benchmark rows (wall ms + counter deltas per kernel)
bench-json: build
	dune exec bench/main.exe -- --json figure3

check: build test faultcheck lint verify-meta trace
