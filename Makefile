.PHONY: check build test faultcheck lint verify-meta trace validate bounds vec serve slo bench-json bench-gate bench-regress

build:
	dune build

test:
	dune runtest

# one seeded fault-injection pipeline run: every injected corruption must be
# caught by the verify/differential gates (exit 0 = final module ok)
faultcheck: build
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --fault-seed 8 -q
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --task-fault-seed 5 --kill-task 0 -q

# static race detector + sanitizers over the pristine benchmark corpus and a
# sweep of fuzzer outputs: zero unsuppressed errors is the gate
lint: build
	dune exec bin/noelle_check.exe -- --kernels -q
	for s in 1 2 3 4 5; do \
	  dune exec bin/noelle_check.exe -- --fuzz-seed $$s -q || exit 1; \
	done

# metadata trust gate: embed every analysis artifact over the pristine
# corpus, round-trip through the printer/parser, transform with the
# verify-meta pipeline gate on — zero stale/corrupt artifacts may survive
# and every pristine reload must take the verified fast path
verify-meta: build
	dune exec bin/noelle_meta_verify.exe -- --kernels --roundtrip --limit 10

# telemetry smoke: run the standard stack under tracing on a parallelizable
# kernel; the trace must round-trip through the repo's own JSON parser and
# carry spans from at least 3 layers (analyses, pipeline passes, psim tasks)
trace: build
	dune exec bin/noelle_trace.exe -- --kernel histogram --check \
	  --serve-metrics serve_metrics.json -q

# translation validation (DESIGN.md §12): the full pass stack must clear
# the trace-equivalence gate on every kernel with zero rollbacks, every
# parallel schedule must replay-validate against its sequential trace, and
# every planted effect reorder must be rejected with an event-diff witness
# that the legacy output-compare gate provably misses
validate: build
	dune exec bin/noelle_validate.exe -- --seeds 50 --vec -q

# profile-free planning gates (DESIGN.md §13): interpreter-measured trip
# counts must never exceed the static bounds (exactly equal on affine
# loops), profile-free technique/chunk decisions must agree with
# profile-driven ones on >= 80% of corpus loops, and the Psim speedup
# geomean of the two plans must stay within 10%
bounds: build
	dune exec bin/noelle_bounds.exe -- --seeds 50 -q

# vectorizer gate (DESIGN.md §16): corpus sweep where every widened kernel
# must verify, preserve interpreter output, and clear the observable-event
# trace gate with no new noelle-check errors; jpeg-dct, lbm and
# blackscholes must actually vectorize, and at least one divergent kernel
# must vectorize via if-conversion
vec: build
	dune exec bin/noelle_vec.exe -- -q

# analysis-as-a-service gates (DESIGN.md §14): workload replay must answer
# from the persistent store across a process restart; the 50-seed
# kill-and-recover soak must produce answers identical to cold runs with
# every corrupt artifact quarantined; overload must shed to conservative
# (never wrong) degraded answers.  The final run leaves serve_metrics.json
# for noelle-trace --check.
serve: build
	dune exec bin/noelle_serve.exe -- -q
	dune exec bin/noelle_serve.exe -- --overload --requests 200 -q
	dune exec bin/noelle_serve.exe -- --faults --seeds 50 -q

# SLO gate (DESIGN.md §15): serve a seeded workload under tracing, report
# p50/p95/p99/p999 request latency per kind, and fail on any violated
# budget from slo.json (plus max shed % and deadline misses).  The
# negative leg proves the gate can actually fail: a 1us budget must
# exit non-zero.  Leaves slo_report.txt and slo.prom for CI artifacts.
slo: build
	dune exec bin/noelle_slo.exe -- --report slo_report.txt --prom slo.prom
	! dune exec bin/noelle_slo.exe -- --p99-budget-us 1 -q 2>/dev/null

# machine-readable benchmark rows (wall ms, counter deltas, derived
# gauges per kernel), plus the synthetic scaling comparison of the sparse
# analysis engine against the naive solver/builder paths (DESIGN.md §11)
bench-json: build
	dune exec bench/main.exe -- --json figure3 figure5 scaling bounds serve slo

# bench-history regression gate: rerun the instrumented sections and diff
# them against the checked-in BENCH_*.json baselines — counter deltas must
# match exactly (they are deterministic functions of the seeded
# workloads), wall/gauges within a generous ratio.  The comparator
# self-checks by injecting a one-count counter regression that must be
# detected.  Runs BEFORE bench-gate, which regenerates the files.
bench-regress: build
	dune exec bench/main.exe -- --compare figure3 figure5 scaling bounds serve slo

# smoke gate over the freshly regenerated bench JSON: the sparse engine
# must actually have run (delta propagations and bucketing skips logged)
# and no PDG build or points-to solve may have fallen back to a degraded
# answer on the kernel corpus or the scaling modules
bench-gate: bench-json
	grep -q '"andersen.delta_props"' BENCH_figure3.json
	grep -q '"pdg.pairs_skipped_bucketing"' BENCH_figure3.json
	grep -q '"andersen.delta_props"' BENCH_scaling.json
	grep -q '"bounds.queries"' BENCH_bounds.json
	grep -q '"bounds.loops_exact"' BENCH_bounds.json
	! grep -q 'degraded' BENCH_figure3.json BENCH_scaling.json BENCH_bounds.json
	grep -q '"serve.queries"' BENCH_serve.json
	grep -q '"serve.store.hits"' BENCH_serve.json
	grep -q '"serve.shed"' BENCH_serve.json
	grep -q '"serve.quarantined"' BENCH_serve.json
	grep -q '"serve.bench.qps"' BENCH_serve.json
	grep -q '"serve.bench.recovery_us"' BENCH_serve.json
	grep -q 'p99_us"' BENCH_slo.json
	grep -q '"serve.bench.trace_overhead_pct"' BENCH_slo.json
	grep -q '"vec.loops_considered"' BENCH_figure5.json
	grep -q '"vec.vectorized"' BENCH_figure5.json
	grep -q '"vec.if_converted"' BENCH_figure5.json
	grep -q '"fig5.blackscholes.vec"' BENCH_figure5.json

check: build test faultcheck lint verify-meta serve trace validate bounds vec slo bench-regress bench-gate
