.PHONY: check build test faultcheck

build:
	dune build

test:
	dune runtest

# one seeded fault-injection pipeline run: every injected corruption must be
# caught by the verify/differential gates (exit 0 = final module ok)
faultcheck: build
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --fault-seed 8 -q
	dune exec bin/noelle_pipeline.exe -- --fuzz-seed 3 --task-fault-seed 5 --kill-task 0 -q

check: build test faultcheck
