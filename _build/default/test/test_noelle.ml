(** Tests of the NOELLE abstraction layer. *)

open Helpers
open Ir

let simple_loop_src =
  {|
int a[100];
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) {
    a[i] = i * 2;
    s += a[i];
  }
  print(s);
  return 0;
}
|}

let with_loop src f =
  let m = compile src in
  let n = Noelle.create m in
  let main = Irmod.func m "main" in
  match Noelle.loops n main with
  | lp :: _ -> f m n main lp
  | [] -> Alcotest.fail "expected a loop"

(* ------------------------------------------------------------------ *)
(* Dependence graph / PDG                                              *)
(* ------------------------------------------------------------------ *)

let test_depgraph_generic () =
  let g = Noelle.Depgraph.create () in
  Noelle.Depgraph.add_node g 1;
  Noelle.Depgraph.add_node g ~internal:false 2;
  ignore (Noelle.Depgraph.add_edge g ~kind:Noelle.Depgraph.Control 1 2);
  ignore (Noelle.Depgraph.add_edge g ~must:true ~kind:(Noelle.Depgraph.Register Noelle.Depgraph.RAW) 2 1);
  checki "nodes" 2 (Noelle.Depgraph.num_nodes g);
  checki "edges" 2 (Noelle.Depgraph.num_edges g);
  checki "internal nodes" 1 (List.length (Noelle.Depgraph.internal_nodes g));
  checki "external nodes" 1 (List.length (Noelle.Depgraph.external_nodes g));
  let sccs = Noelle.Depgraph.sccs g in
  checki "sccs over internals only" 1 (List.length sccs)

let test_depgraph_slice () =
  let g = Noelle.Depgraph.create () in
  List.iter (Noelle.Depgraph.add_node g) [ 1; 2; 3 ];
  ignore (Noelle.Depgraph.add_edge g ~kind:Noelle.Depgraph.Control 1 2);
  ignore (Noelle.Depgraph.add_edge g ~kind:Noelle.Depgraph.Control 2 3);
  let s = Noelle.Depgraph.slice g ~keep:(fun n -> n = 2) in
  checki "one internal" 1 (List.length (Noelle.Depgraph.internal_nodes s));
  (* 1 and 3 appear as externals: the live-in and live-out *)
  checki "two externals" 2 (List.length (Noelle.Depgraph.external_nodes s))

let test_pdg_register_deps () =
  with_loop simple_loop_src (fun _m n main _lp ->
      let pdg = Noelle.pdg n main in
      (* every register operand must have a matching must RAW edge *)
      Func.iter_insts
        (fun i ->
          List.iter
            (function
              | Instr.Reg r ->
                checkb "def-use edge present"
                  (List.exists
                     (fun (e : Noelle.Depgraph.edge) ->
                       e.Noelle.Depgraph.esrc = r
                       && e.Noelle.Depgraph.kind = Noelle.Depgraph.Register Noelle.Depgraph.RAW)
                     (Noelle.Depgraph.preds pdg.Noelle.Pdg.fdg i.Instr.id))
              | _ -> ())
            (Instr.operands i.Instr.op))
        main)

let test_pdg_control_deps () =
  let m =
    compile
      {|
int main() {
  int x = clock();
  if (x > 0) { print(1); } else { print(2); }
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let main = Irmod.func m "main" in
  let pdg = Noelle.pdg n main in
  (* both prints are control-dependent on the branch *)
  let branch =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Cbr _ -> Some i | _ -> acc)
      None main
    |> Option.get
  in
  let ctrl_succs =
    List.filter
      (fun (e : Noelle.Depgraph.edge) -> e.Noelle.Depgraph.kind = Noelle.Depgraph.Control)
      (Noelle.Depgraph.succs pdg.Noelle.Pdg.fdg branch.Instr.id)
  in
  checkb "branch controls several instructions" (List.length ctrl_succs >= 2)

let test_pdg_precision_gap () =
  (* the NOELLE stack must disprove at least as much as the baseline on
     every kernel — the Figure 3 property *)
  each_kernel (fun k m ->
      List.iter
        (fun f ->
          let base = Noelle.Pdg.build ~stack:Andersen.baseline_stack m f in
          let full = Noelle.Pdg.build ~stack:(Andersen.noelle_stack m) m f in
          checkb
            (Printf.sprintf "%s/%s: NOELLE >= LLVM disprovals" k.Bsuite.Kernels.kname
               f.Func.fname)
            (Noelle.Pdg.disproval_rate full >= Noelle.Pdg.disproval_rate base -. 1e-9))
        (Irmod.defined_functions m))

let test_pdg_embed_reload () =
  with_loop simple_loop_src (fun m n main _lp ->
      let pdg = Noelle.pdg n main in
      Noelle.Pdg.embed pdg;
      let m2 = Parser.parse_module (Printer.module_str m) in
      let main2 = Irmod.func m2 "main" in
      match Noelle.Pdg.of_embedded m2 main2 with
      | Some p2 ->
        checki "same edge count"
          (Noelle.Depgraph.num_edges pdg.Noelle.Pdg.fdg)
          (Noelle.Depgraph.num_edges p2.Noelle.Pdg.fdg)
      | None -> Alcotest.fail "embedded PDG should reload")

let test_live_ins_outs () =
  with_loop
    {|
int main() {
  int k = clock() + 3;
  int s = 0;
  for (int i = 0; i < 10; i++) { s += i * k; }
  print(s);
  return 0;
}
|}
    (fun _m _n _main lp ->
      let ins = Noelle.Loop.live_ins lp in
      let outs = Noelle.Loop.live_outs lp in
      checkb "k is a live-in" (List.length ins >= 1);
      checki "s is the only live-out" 1 (List.length outs))

(* ------------------------------------------------------------------ *)
(* Loop structure / shapes                                             *)
(* ------------------------------------------------------------------ *)

let test_loop_shapes () =
  let m =
    compile
      {|
int main() {
  int i = 0;
  int s = 0;
  while (i < 10) { s += i; i++; }
  int j = 0;
  do { s += j; j++; } while (j < 10);
  print(s);
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let shapes =
    List.map
      (fun lp -> Noelle.Loopstructure.shape (Noelle.Loop.structure lp))
      (Noelle.loops n (Irmod.func m "main"))
    |> List.sort compare
  in
  checkb "one while-shape and one do-while-shape"
    (shapes = List.sort compare [ Noelle.Loopstructure.While_shape; Noelle.Loopstructure.Do_while_shape ])

let test_loop_structure_fields () =
  with_loop simple_loop_src (fun _m _n main lp ->
      let ls = Noelle.Loop.structure lp in
      checkb "has latch" (ls.Noelle.Loopstructure.latches <> []);
      checki "single exit edge" 1 (List.length ls.Noelle.Loopstructure.exit_edges);
      checki "depth 1" 1 ls.Noelle.Loopstructure.depth;
      checkb "header in blocks"
        (List.mem ls.Noelle.Loopstructure.header ls.Noelle.Loopstructure.blocks);
      checkb "header phis exist" (Noelle.Loopstructure.header_phis ls <> []);
      ignore main)

(* ------------------------------------------------------------------ *)
(* aSCCDAG                                                             *)
(* ------------------------------------------------------------------ *)

let test_ascc_classification () =
  with_loop simple_loop_src (fun _m n _main lp ->
      let ascc = Noelle.aSCCDAG n lp in
      let kinds =
        List.map (fun (nd : Noelle.Ascc.node) -> nd.Noelle.Ascc.attr) ascc.Noelle.Ascc.nodes
      in
      checkb "has an induction SCC"
        (List.exists (function Noelle.Ascc.Induction _ -> true | _ -> false) kinds);
      checkb "has a reducible SCC (s +=)"
        (List.exists (function Noelle.Ascc.Reducible _ -> true | _ -> false) kinds);
      checkb "no sequential SCC"
        (not (List.exists (( = ) Noelle.Ascc.Sequential) kinds)))

let test_ascc_sequential () =
  with_loop
    {|
int main() {
  int x = 7;
  for (int i = 0; i < 10; i++) {
    x = (x * 31 + 1) & 1023;
  }
  print(x);
  return 0;
}
|}
    (fun _m n _main lp ->
      let ascc = Noelle.aSCCDAG n lp in
      checkb "recurrence is sequential" (Noelle.Ascc.has_sequential ascc))

let test_sccdag_topological () =
  with_loop simple_loop_src (fun _m n _main lp ->
      let dag = Noelle.scc_dag n lp in
      let order = Noelle.Sccdag.topological dag in
      (* producers must come before consumers *)
      let pos = Hashtbl.create 16 in
      List.iteri (fun i s -> Hashtbl.replace pos s.Noelle.Sccdag.sid i) order;
      List.iter
        (fun (s : Noelle.Sccdag.scc) ->
          List.iter
            (fun succ ->
              checkb "topological order respected"
                (Hashtbl.find pos s.Noelle.Sccdag.sid < Hashtbl.find pos succ))
            (Noelle.Sccdag.successors dag s.Noelle.Sccdag.sid))
        order)

(* ------------------------------------------------------------------ *)
(* Induction variables                                                 *)
(* ------------------------------------------------------------------ *)

let test_indvars_while_shape () =
  with_loop simple_loop_src (fun _m n _main lp ->
      let ivs = Noelle.induction_variables n lp in
      checkb "NOELLE finds the governing IV in a while loop"
        (Noelle.Indvars.governing_iv ivs <> None);
      let ls = Noelle.Loop.structure lp in
      checki "baseline finds none (while shape)" 0
        (Noelle.Indvars_llvm.governing_count ls))

let test_indvars_do_while () =
  with_loop
    {|
int main() {
  int i = 0;
  int s = 0;
  do { s += i; i++; } while (i < 20);
  print(s);
  return 0;
}
|}
    (fun _m n _main lp ->
      let ls = Noelle.Loop.structure lp in
      checkb "both find the IV in do-while shape"
        (Noelle.Indvars.governing_iv (Noelle.induction_variables n lp) <> None
        && Noelle.Indvars_llvm.governing_count ls = 1))

let test_trip_count () =
  let cases =
    [ ("i = 0; i < 10; i++", 10L); ("i = 0; i <= 10; i++", 11L);
      ("i = 3; i < 10; i += 2", 4L); ("i = 10; i > 0; i -= 3", 4L) ]
  in
  List.iter
    (fun (hdr, expected) ->
      with_loop
        (Printf.sprintf
           {| int main() { int s = 0; for (int %s) { s += 1; } print(s); return 0; } |}
           hdr)
        (fun m n _main lp ->
          match Noelle.Indvars.governing_iv (Noelle.induction_variables n lp) with
          | Some iv -> (
            match Noelle.Indvars.const_trip_count iv with
            | Some t ->
              checkb (Printf.sprintf "trip count of (%s) = %Ld" hdr expected)
                (Int64.equal t expected);
              (* and the dynamic count agrees *)
              checks "dynamic agrees" (Int64.to_string expected) (output m)
            | None -> Alcotest.failf "no const trip count for %s" hdr)
          | None -> Alcotest.failf "no governing IV for %s" hdr))
    cases

let test_derived_ivs () =
  with_loop
    {|
int a[400];
int main() {
  for (int i = 0; i < 100; i++) {
    a[3*i + 2] = i;
  }
  print(a[2]);
  return 0;
}
|}
    (fun _m n _main lp ->
      let ivs = Noelle.induction_variables n lp in
      let ls = Noelle.Loop.structure lp in
      let derived = Noelle.Indvars.derived ls ivs in
      checkb "3*i+2 address chain is derived" (List.length derived >= 1))

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let test_invariants_chain () =
  with_loop
    {|
int main() {
  int k = clock() + 1;
  int s = 0;
  for (int i = 0; i < 10; i++) {
    int a = k * k;      // invariant
    int b = a + 5;      // invariant chained through a
    s += i * b;
  }
  print(s);
  return 0;
}
|}
    (fun m n _main lp ->
      let inv = Noelle.invariants n lp in
      let ls = Noelle.Loop.structure lp in
      checkb "algorithm 2 finds the chain" (Noelle.Invariants.count inv >= 2);
      (* the baseline (algorithm 1) misses the chained one *)
      checkb "algorithm 1 finds strictly fewer"
        (Noelle.Invariants_llvm.count m ls < Noelle.Invariants.count inv))

let test_invariants_superset_property () =
  (* algorithm 2 must find >= algorithm 1 on every loop of every kernel *)
  each_kernel (fun k m ->
      let n = Noelle.create m in
      List.iter
        (fun f ->
          List.iter
            (fun lp ->
              let ls = Noelle.Loop.structure lp in
              let n2 = Noelle.Invariants.count (Noelle.invariants n lp) in
              let n1 = Noelle.Invariants_llvm.count m ls in
              checkb
                (Printf.sprintf "%s/%s: alg2 >= alg1" k.Bsuite.Kernels.kname
                   (Noelle.Loop.id lp))
                (n2 >= n1))
            (Noelle.loops n f))
        (Irmod.defined_functions m))

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)
(* ------------------------------------------------------------------ *)

let test_reduction_kinds () =
  let cases =
    [ ("s += i", "sum"); ("s *= (i | 1)", "prod"); ("s = s ^ i", "xor");
      ("s = i64_max(s, i % 37)", "max") ]
  in
  List.iter
    (fun (upd, kind) ->
      with_loop
        (Printf.sprintf
           {| int main() { int s = 1; for (int i = 0; i < 10; i++) { %s; } print(s); return 0; } |}
           upd)
        (fun _m n _main lp ->
          let reds = Noelle.reductions n lp in
          checki (upd ^ " detected") 1 (List.length reds);
          checks (upd ^ " kind")
            kind
            (Noelle.Reduction.kind_to_string (List.hd reds).Noelle.Reduction.kind)))
    cases

let test_reduction_rejects_leak () =
  (* accumulator used by other in-loop computation is not reducible *)
  with_loop
    {|
int a[100];
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) {
    a[i] = s;    // leak: partial sums observable
    s += i;
  }
  print(s);
  return 0;
}
|}
    (fun _m n _main lp ->
      checki "leaked accumulator not reducible" 0
        (List.length (Noelle.reductions n lp)))

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_callgraph () =
  let m =
    compile
      {|
int leaf(int x) { return x + 1; }
int middle(int x) { return leaf(x) * 2; }
int unused(int x) { return leaf(x) - 1; }
int main() { print(middle(3)); return 0; }
|}
  in
  let n = Noelle.create m in
  let cg = Noelle.callgraph n in
  let callee_names fn =
    List.map (fun (e : Noelle.Callgraph.edge) -> e.Noelle.Callgraph.callee)
      (Noelle.Callgraph.callees cg fn)
    |> List.sort compare
  in
  checkb "main calls middle" (List.mem "middle" (callee_names "main"));
  checkb "middle calls leaf" (List.mem "leaf" (callee_names "middle"));
  checkb "direct edges are must"
    (List.for_all
       (fun (e : Noelle.Callgraph.edge) -> e.Noelle.Callgraph.must)
       (Noelle.Callgraph.callees cg "main"));
  let reach = Noelle.Callgraph.reachable cg ~roots:[ "main" ] in
  checkb "unused not reachable" (not (Hashtbl.mem reach "unused"));
  checkb "leaf reachable" (Hashtbl.mem reach "leaf")

let test_islands () =
  let found =
    Noelle.Islands.find ~nodes:[ 1; 2; 3; 4; 5 ]
      ~neighbors:(function 1 -> [ 2 ] | 2 -> [ 1 ] | 3 -> [ 4 ] | 4 -> [ 3 ] | _ -> [])
  in
  checki "three islands" 3 (List.length found)

(* ------------------------------------------------------------------ *)
(* DFE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_liveness () =
  let m =
    compile
      {|
int main() {
  int a = clock();
  int b = a * 2;
  print(b);
  int c = a + 1;   // a live until here
  print(c);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let live = Noelle.Dfe.liveness f in
  (* at entry of the (single) block, nothing is live-in *)
  let entry = Func.entry f in
  checkb "entry live-in empty"
    (Noelle.Dfe.IntSet.is_empty (Hashtbl.find live.Noelle.Dfe.in_ entry))

let test_liveness_across_blocks () =
  let m =
    compile
      {|
int main() {
  int a = clock();
  if (a > 0) { print(a + 1); } else { print(a + 2); }
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let live = Noelle.Dfe.liveness f in
  (* the definition of a must be live-out of the entry block *)
  let a_def =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Call (Instr.Glob "clock", _) -> Some i.Instr.id | _ -> acc)
      None f
    |> Option.get
  in
  let entry = Func.entry f in
  checkb "a live-out of entry"
    (Noelle.Dfe.IntSet.mem a_def (Hashtbl.find live.Noelle.Dfe.out entry))

(* ------------------------------------------------------------------ *)
(* Forest                                                              *)
(* ------------------------------------------------------------------ *)

let test_forest_delete () =
  let t = Noelle.Forest.create () in
  let r = Noelle.Forest.add_root t "r" in
  let c1 = Noelle.Forest.add_child r "c1" in
  let g1 = Noelle.Forest.add_child c1 "g1" in
  let g2 = Noelle.Forest.add_child c1 "g2" in
  checki "size 4" 4 (Noelle.Forest.size t);
  Noelle.Forest.delete t c1;
  checki "size 3 after delete" 3 (Noelle.Forest.size t);
  (* grandchildren reattached to the root *)
  checkb "g1 reattached" (List.memq g1 r.Noelle.Forest.children);
  checkb "g2 reattached" (List.memq g2 r.Noelle.Forest.children);
  check Alcotest.(option string) "parent updated" (Some "r")
    (Option.map (fun n -> n.Noelle.Forest.value) g1.Noelle.Forest.parent)

let test_forest_postorder () =
  let m =
    compile
      {|
int main() {
  int s = 0;
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 3; j++)
      for (int k = 0; k < 3; k++)
        s += 1;
  print(s);
  return 0;
}
|}
  in
  let n = Noelle.create m in
  let forest = Noelle.loop_forest n (Irmod.func m "main") in
  let depths =
    List.map
      (fun nd -> nd.Noelle.Forest.value.Loopnest.depth)
      (Noelle.Forest.nodes_postorder forest)
  in
  check Alcotest.(list int) "innermost first" [ 3; 2; 1 ] depths

(* ------------------------------------------------------------------ *)
(* Loop builder                                                        *)
(* ------------------------------------------------------------------ *)

let test_ensure_preheader () =
  with_loop simple_loop_src (fun m n main lp ->
      let ls = Noelle.Loop.structure lp in
      let ph = Noelle.Loopbuilder.ensure_preheader main ls.Noelle.Loopstructure.raw in
      Verify.verify_func main;
      let preds = Func.preds main in
      let outside =
        (try Hashtbl.find preds ls.Noelle.Loopstructure.header with Not_found -> [])
        |> List.filter (fun p -> not (Noelle.Loopstructure.contains ls p))
      in
      check Alcotest.(list int) "preheader is the only outside pred" [ ph ] outside;
      ignore n;
      checks "still runs" "9900" (output m))

let test_rotate_semantics () =
  let srcs =
    [
      {| int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i * i; } print(s); print(s + 1); return 0; } |};
      {| int main() { int s = 0; int n = clock() % 3; for (int i = 0; i < n; i++) { s += i; } print(s); return 0; } |};
      {| int main() { int i = 0; while (i < 7) { i += 2; } print(i); return 0; } |};
    ]
  in
  List.iter
    (fun src ->
      preserves_output ~name:"rotate" src (fun m ->
          let f = Irmod.func m "main" in
          let nest = Loopnest.compute f in
          List.iter
            (fun l ->
              let ls = Noelle.Loopstructure.of_loop f l in
              ignore (Noelle.Loopbuilder.rotate f ls))
            nest.Loopnest.loops))
    srcs

let test_rotate_changes_shape () =
  let m = compile {| int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; print(s); return 0; } |} in
  let f = Irmod.func m "main" in
  let nest = Loopnest.compute f in
  let ls = Noelle.Loopstructure.of_loop f (List.hd nest.Loopnest.loops) in
  checkb "rotates" (Noelle.Loopbuilder.rotate f ls);
  let nest2 = Loopnest.compute f in
  let ls2 = Noelle.Loopstructure.of_loop f (List.hd nest2.Loopnest.loops) in
  checkb "now do-while shaped"
    (Noelle.Loopstructure.shape ls2 = Noelle.Loopstructure.Do_while_shape);
  checks "still computes 45" "45" (output m)

let test_peel_semantics () =
  let srcs =
    [
      {| int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i * 3; } print(s); return 0; } |};
      {| int a[20]; int main() { for (int i = 0; i < 20; i++) a[i] = i; int s = 0; for (int i = 0; i < 20; i++) s += a[i]; print(s); return 0; } |};
    ]
  in
  List.iter
    (fun src ->
      preserves_output ~name:"peel" src (fun m ->
          let f = Irmod.func m "main" in
          let nest = Loopnest.compute f in
          match nest.Loopnest.loops with
          | l :: _ ->
            let ls = Noelle.Loopstructure.of_loop f l in
            ignore (Noelle.Loopbuilder.peel_first f ls)
          | [] -> ()))
    srcs

let test_hoist () =
  preserves_output ~name:"hoist" simple_loop_src (fun m ->
      let n = Noelle.create m in
      ignore (Ntools.Licm.run n m))

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_block_preserves () =
  List.iter
    (fun (k : Bsuite.Kernels.kernel) ->
      let m = Bsuite.Kernels.compile k in
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      let n = Noelle.create m in
      List.iter
        (fun f ->
          let sched = Noelle.scheduler n f in
          List.iter
            (fun bid ->
              (* reverse priority: aggressively reorder *)
              Noelle.Scheduler.schedule_block sched bid ~priority:(fun i ->
                  -i.Instr.id))
            f.Func.blocks)
        (Irmod.defined_functions m);
      verifies ("schedule " ^ k.Bsuite.Kernels.kname) m;
      checks
        (k.Bsuite.Kernels.kname ^ ": scheduling preserves output")
        expected
        (output ~fuel:k.Bsuite.Kernels.fuel m))
    [ Bsuite.Kernels.sha_lite; Bsuite.Kernels.adpcm_lite; Bsuite.Kernels.dedup_lite ]

let test_shrink_header () =
  with_loop
    {|
int main() {
  int s = 0;
  int i = 0;
  while (i * 7 < 70) {   // i*7 must stay; body-only computation can sink
    int t = i * 100;
    s += t + 1;
    i++;
  }
  print(s);
  return 0;
}
|}
    (fun m n main lp ->
      let ls = Noelle.Loop.structure lp in
      let sched = Noelle.scheduler n main in
      let before = List.length (Func.block main ls.Noelle.Loopstructure.header).Func.insts in
      let moved = Noelle.Scheduler.shrink_header sched ls in
      let after = List.length (Func.block main ls.Noelle.Loopstructure.header).Func.insts in
      checkb "header did not grow" (after <= before);
      ignore moved;
      Verify.verify_func main;
      checks "still correct" "4510" (output m))

(* ------------------------------------------------------------------ *)
(* Env / Task / Arch / Profiler                                        *)
(* ------------------------------------------------------------------ *)

let test_env () =
  let env = Noelle.Env.create () in
  let i0 = Noelle.Env.add env ~name:"a" ~ty:Ty.I64 ~role:Noelle.Env.Live_in in
  let i1 = Noelle.Env.add env ~name:"b" ~ty:Ty.F64 ~role:Noelle.Env.Live_out in
  checki "indices sequential" 0 i0;
  checki "indices sequential 2" 1 i1;
  checki "live-ins" 1 (List.length (Noelle.Env.live_ins env));
  checki "live-outs" 1 (List.length (Noelle.Env.live_outs env));
  (* emit a store/load pair and execute it *)
  let m = Irmod.create () in
  let f = Func.create ~name:"main" ~params:[] ~ret:Ty.I64 in
  Irmod.add_func m f;
  let b = Builder.add_block f ~label:"entry" in
  let ptr = Noelle.Env.emit_alloc env f b.Func.bid in
  Noelle.Env.emit_store f b.Func.bid ~env_ptr:ptr ~index:1 (Instr.Cfloat 2.5);
  let v = Noelle.Env.emit_load f b.Func.bid ~env_ptr:ptr ~index:1 Ty.F64 in
  let trunc = Builder.add f b.Func.bid (Instr.Cast (Instr.Fptosi, v)) Ty.I64 in
  ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg trunc.Instr.id))));
  Verify.verify_module m;
  let r, _ = Interp.run m in
  checks "env round trip" "2" (Interp.v_to_string r)

let test_arch () =
  let a = Noelle.Arch.measure ~physical_cores:8 ~numa_nodes:2 () in
  checki "cores" 8 (Noelle.Arch.num_cores a);
  checki "self latency zero" 0 (Noelle.Arch.latency_between a 3 3);
  checkb "cross-numa costs more"
    (Noelle.Arch.latency_between a 0 7 > Noelle.Arch.latency_between a 0 1);
  let meta = Meta.create () in
  Noelle.Arch.to_meta a meta;
  match Noelle.Arch.of_meta meta with
  | Some a2 ->
    checki "meta round-trip cores" 8 a2.Noelle.Arch.physical_cores;
    checki "meta round-trip latency"
      (Noelle.Arch.latency_between a 0 7)
      (Noelle.Arch.latency_between a2 0 7)
  | None -> Alcotest.fail "arch meta reload"

let test_profiler_counts () =
  let m =
    compile
      {|
int work(int x) { return x * 2; }
int main() {
  int s = 0;
  for (int i = 0; i < 7; i++) { s += work(i); }
  print(s);
  return 0;
}
|}
  in
  let p, out = Noelle.Profiler.run m in
  checks "prof run output" "42" (String.trim out);
  Noelle.Profiler.embed p m;
  checkb "profile available" (Noelle.Profiler.available m);
  check (Alcotest.int64) "work invoked 7 times" 7L (Noelle.Profiler.fn_invocations m "work");
  let n = Noelle.create m in
  let lp = List.hd (Noelle.loops n (Irmod.func m "main")) in
  let ls = Noelle.Loop.structure lp in
  check (Alcotest.int64) "loop iterations = header execs" 8L
    (Noelle.Profiler.loop_iterations m ls);
  check (Alcotest.int64) "one invocation" 1L (Noelle.Profiler.loop_invocations m ls);
  checkb "loop is hot" (Noelle.Profiler.loop_hotness m ls > 0.5)

let test_branch_profile () =
  let m =
    compile
      {|
int main() {
  int taken = 0;
  for (int i = 0; i < 100; i++) {
    if (i % 4 == 0) taken++;
  }
  print(taken);
  return 0;
}
|}
  in
  let p, _ = Noelle.Profiler.run m in
  Noelle.Profiler.embed p m;
  let f = Irmod.func m "main" in
  (* find the if-branch (the one whose condition is an == compare) *)
  let br =
    Func.fold_insts
      (fun acc i ->
        match i.Instr.op with
        | Instr.Cbr (Instr.Reg c, _, _) -> (
          match (Func.inst f c).Instr.op with
          | Instr.Icmp (Instr.Eq, _, _) -> Some i
          | _ -> acc)
        | _ -> acc)
      None f
    |> Option.get
  in
  match br.Instr.op with
  | Instr.Cbr (_, t, _) ->
    let p = Noelle.Profiler.branch_probability m f br
        ~target_label:(Func.block f t).Func.label in
    checkb "if taken ~25%" (p > 0.2 && p < 0.3)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Demand-driven manager                                               *)
(* ------------------------------------------------------------------ *)

let test_usage_log () =
  let m = compile simple_loop_src in
  let n = Noelle.create m in
  Noelle.set_tool n "toolA";
  ignore (Noelle.pdg n (Irmod.func m "main"));
  Noelle.set_tool n "toolB";
  ignore (Noelle.loops n (Irmod.func m "main"));
  let pairs = Noelle.usage_pairs n in
  checkb "toolA requested PDG" (List.mem ("toolA", "PDG") pairs);
  checkb "toolB requested L" (List.mem ("toolB", "L") pairs);
  checkb "toolB did not request PDG directly... it did via loops"
    (List.mem ("toolB", "PDG") pairs)

let test_ivstepper () =
  preserves_output ~name:"ivs-identity"
    {| int main() { int s = 0; for (int i = 0; i < 12; i++) { s += i; } print(s); return 0; } |}
    (fun m ->
      (* rewriting the step to the same value must not change anything *)
      let f = Irmod.func m "main" in
      let n = Noelle.create m in
      let lp = List.hd (Noelle.loops n f) in
      let ivs = Noelle.induction_variables n lp in
      let iv = List.hd ivs in
      Noelle.Ivstepper.set_step f ~update_id:iv.Noelle.Indvars.update.Instr.id
        ~phi_id:iv.Noelle.Indvars.phi.Instr.id ~new_step:(Instr.Cint 1L))

let suite =
  [
    tc "depgraph generic" test_depgraph_generic;
    tc "depgraph slice" test_depgraph_slice;
    tc "pdg register deps" test_pdg_register_deps;
    tc "pdg control deps" test_pdg_control_deps;
    tc "pdg precision gap (fig 3)" test_pdg_precision_gap;
    tc "pdg embed/reload" test_pdg_embed_reload;
    tc "live-ins/outs" test_live_ins_outs;
    tc "loop shapes" test_loop_shapes;
    tc "loop structure" test_loop_structure_fields;
    tc "ascc classification" test_ascc_classification;
    tc "ascc sequential" test_ascc_sequential;
    tc "sccdag topological" test_sccdag_topological;
    tc "indvars while shape (4.3)" test_indvars_while_shape;
    tc "indvars do-while" test_indvars_do_while;
    tc "trip counts" test_trip_count;
    tc "derived ivs" test_derived_ivs;
    tc "invariants chain (fig 4)" test_invariants_chain;
    tc "invariants superset property" test_invariants_superset_property;
    tc "reduction kinds" test_reduction_kinds;
    tc "reduction rejects leak" test_reduction_rejects_leak;
    tc "callgraph" test_callgraph;
    tc "islands" test_islands;
    tc "dfe liveness" test_liveness;
    tc "dfe liveness cross-block" test_liveness_across_blocks;
    tc "forest delete" test_forest_delete;
    tc "forest postorder" test_forest_postorder;
    tc "loopbuilder preheader" test_ensure_preheader;
    tc "loopbuilder rotate semantics" test_rotate_semantics;
    tc "loopbuilder rotate shape" test_rotate_changes_shape;
    tc "loopbuilder peel" test_peel_semantics;
    tc "loopbuilder hoist" test_hoist;
    tc "scheduler block" test_schedule_block_preserves;
    tc "scheduler shrink header" test_shrink_header;
    tc "env" test_env;
    tc "arch" test_arch;
    tc "profiler counts" test_profiler_counts;
    tc "branch profile" test_branch_profile;
    tc "usage log (table 4)" test_usage_log;
    tc "iv stepper" test_ivstepper;
  ]

(* ------------------------------------------------------------------ *)
(* Regressions for fuzzer-found bugs and later additions               *)
(* ------------------------------------------------------------------ *)

(* appended: see suite_extra at the bottom *)

let test_downcounting_doall () =
  (* regression: IVS once flipped the sign of subtractive steps *)
  let src =
    {|
int a[100];
int main() {
  for (int i = 0; i < 100; i++) a[i] = 0;
  for (int i = 98; i > 3; i -= 3) { a[i] = i * 2; }
  int s = 0;
  for (int i = 0; i < 100; i++) s += a[i];
  print(s);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let n = Noelle.create m in
  let oks =
    List.filter (fun (_, r) -> Result.is_ok r)
      (Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 ())
  in
  checkb "down-counting loop parallelized" (List.length oks >= 2);
  let got, _ = run_parallel m in
  checks "down-counting result" expected got

let test_self_dependence_rejected () =
  (* regression: a store with an unanalyzable address conflicts with its
     own instances across iterations *)
  with_loop
    {|
int a[64];
int main() {
  for (int i = 0; i < 64; i++) a[i] = i;
  for (int i = 40; i > 0; i -= 2) {
    a[(i >> 3) & 63] = i;
  }
  print(a[0] + a[1] + a[5]);
  return 0;
}
|}
    (fun m n main lp ->
      ignore (m, main, lp);
      (* the shifted-index loop must be rejected by DOALL *)
      let results = Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 () in
      let shifted_rejected =
        List.exists
          (fun (id, r) -> Result.is_error r && id <> "main.for.header")
          results
      in
      checkb "self-conflicting store rejected" shifted_rejected)

let test_phi_chain_rejected () =
  (* regression: cross-SCC loop-carried phi chains (h1 = h0) *)
  let src =
    {|
int a[100];
int main() {
  for (int i = 0; i < 100; i++) a[i] = i * 3;
  int prev = 0;
  int prev2 = 0;
  int s = 0;
  for (int i = 0; i < 100; i++) {
    s += prev2;
    prev2 = prev;
    prev = a[i];
  }
  print(s);
  return 0;
}
|}
  in
  let m = compile src in
  let expected = output m in
  let n = Noelle.create m in
  let results = Ntools.Doall.run n m ~ncores:4 ~min_hotness:0.0 ~min_work:0.0 () in
  checkb "phi-chain loop rejected"
    (List.exists
       (fun (_, r) ->
         match r with
         | Error e ->
           String.length e > 10 && String.sub e 0 4 <> "no g"
           && (let has_sub s sub =
                 let n = String.length sub in
                 let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
                 go 0
               in
               has_sub e "cross SCCs")
         | Ok _ -> false)
       results);
  let got, _ = run_parallel m in
  checks "phi-chain program intact" expected got

let test_available_expressions () =
  let m =
    compile
      {|
int main() {
  int a = clock();
  int b = a * 7;     // computed in entry
  if (a > 0) { print(b + 1); } else { print(b + 2); }
  int c = a * 7;     // same expression: available in the merge block
  print(c);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let avail = Noelle.Dfe.available_expressions f in
  (* find the two a*7 multiplies *)
  let muls =
    Func.fold_insts
      (fun acc i ->
        match i.Instr.op with
        | Instr.Bin (Instr.Mul, _, Instr.Cint 7L) -> i :: acc
        | _ -> acc)
      [] f
  in
  match muls with
  | [ second; first ] ->
    checkb "same expression" (Noelle.Dfe.same_expression first second);
    let in_second = Hashtbl.find avail.Noelle.Dfe.in_ second.Instr.parent in
    checkb "first mul available at the second"
      (Noelle.Dfe.IntSet.mem first.Instr.id in_second)
  | _ -> Alcotest.fail "expected two multiplies"

let test_build_counted_loop () =
  (* LB can create loops: synthesize sum(0..9) from scratch *)
  let m = Irmod.create () in
  let f = Func.create ~name:"main" ~params:[] ~ret:Ty.I64 in
  Irmod.add_func m f;
  let g = { Irmod.gname = "acc"; size = 1; init = Some [| Instr.Cint 0L |] } in
  Irmod.add_global m g;
  let entry = Builder.add_block f ~label:"entry" in
  let exit, body, iv =
    Noelle.Loopbuilder.build_counted_loop f ~after:entry.Func.bid
      ~start:(Instr.Cint 0L) ~bound:(Instr.Cint 10L) ~step:1L
      ~fill:(fun ~body ~iv ->
        let cur = Builder.add f body.Func.bid (Instr.Load (Instr.Glob "acc")) Ty.I64 in
        let add =
          Builder.add f body.Func.bid
            (Instr.Bin (Instr.Add, Instr.Reg cur.Instr.id, iv))
            Ty.I64
        in
        ignore
          (Builder.add f body.Func.bid
             (Instr.Store (Instr.Reg add.Instr.id, Instr.Glob "acc"))
             Ty.Void))
  in
  ignore (body, iv);
  let final = Builder.add f exit.Func.bid (Instr.Load (Instr.Glob "acc")) Ty.I64 in
  ignore (Builder.set_term f exit.Func.bid (Instr.Ret (Some (Instr.Reg final.Instr.id))));
  Verify.verify_module m;
  let r, _ = Interp.run m in
  checks "synthesized loop sums 0..9" "45" (Interp.v_to_string r);
  (* and the created loop is recognized by the abstractions *)
  let n = Noelle.create m in
  let lp = List.hd (Noelle.loops n f) in
  checkb "created loop has a governing IV"
    (Noelle.Indvars.governing_iv (Noelle.induction_variables n lp) <> None)

let suite_extra =
  [
    tc "regression: down-counting DOALL" test_downcounting_doall;
    tc "regression: self dependences" test_self_dependence_rejected;
    tc "regression: phi chains" test_phi_chain_rejected;
    tc "dfe available expressions" test_available_expressions;
    tc "loopbuilder creates loops" test_build_counted_loop;
  ]
