test/helpers.ml: Alcotest Bsuite Ir List Minic Psim String
