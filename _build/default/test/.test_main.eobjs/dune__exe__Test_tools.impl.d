test/test_tools.ml: Alcotest Bsuite Helpers Int64 Interp Ir Irmod List Noelle Ntools Option Printf Psim Result String
