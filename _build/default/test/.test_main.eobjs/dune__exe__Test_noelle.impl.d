test/test_noelle.ml: Alcotest Andersen Bsuite Builder Func Hashtbl Helpers Instr Int64 Interp Ir Irmod List Loopnest Meta Noelle Ntools Option Parser Printer Printf Result String Ty Verify
