test/test_psim.ml: Alcotest Helpers Interp Ir Noelle Ntools Parser Psim String Verify
