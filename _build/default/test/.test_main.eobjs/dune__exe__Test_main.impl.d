test/test_main.ml: Alcotest Test_fuzz Test_ir Test_minic Test_noelle Test_psim Test_tools
