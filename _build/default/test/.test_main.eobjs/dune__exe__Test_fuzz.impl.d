test/test_fuzz.ml: Alcotest Bsuite Helpers Int64 Ir List Minic Noelle Ntools Printexc Printf String
