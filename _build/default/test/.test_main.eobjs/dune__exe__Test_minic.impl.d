test/test_minic.ml: Alcotest Array Helpers Int64 Minic Printf QCheck String
