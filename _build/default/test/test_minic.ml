(** Frontend tests: lexer, parser, lowering, and a differential qcheck
    property comparing compiled expression evaluation against a direct
    OCaml evaluator. *)

open Helpers

let test_lexer () =
  let toks = Minic.Lexer.tokenize "x+=1; /* c */ y <<= 2 // eol" in
  checki "token count" 8 (Array.length toks) (* x += 1 ; y <<= 2 EOF *)

let test_comments_and_ws () =
  checks "comments ignored" "5"
    (run_src "int main() { /* a */ int x = 5; // b\n print(x); return 0; }")

let test_precedence () =
  checks "mul before add" "7" (run_src "int main() { print(1 + 2 * 3); return 0; }");
  checks "parens" "9" (run_src "int main() { print((1 + 2) * 3); return 0; }");
  checks "cmp binds looser" "1" (run_src "int main() { print(1 + 1 == 2); return 0; }");
  checks "bitand vs eq" "1" (run_src "int main() { print(3 & 1 == 1); return 0; }");
  checks "unary minus" "-6" (run_src "int main() { print(-2 * 3); return 0; }");
  checks "not" "1" (run_src "int main() { print(!0); return 0; }");
  checks "bnot" "-8" (run_src "int main() { print(~7); return 0; }")

let test_control_flow () =
  checks "else-if chains" "2"
    (run_src
       {| int main() { int x = 15; if (x < 10) print(1); else if (x < 20) print(2); else print(3); return 0; } |});
  checks "do-while runs once" "1"
    (run_src {| int main() { int n = 0; do { n++; } while (n < 1); print(n); return 0; } |});
  checks "break" "5"
    (run_src
       {| int main() { int i = 0; while (1) { if (i == 5) break; i++; } print(i); return 0; } |});
  checks "continue" "25"
    (run_src
       {| int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } print(s); return 0; } |});
  checks "nested breaks bind innermost" "8"
    (run_src
       {| int main() { int c = 0; for (int i = 0; i < 2; i++) { for (int j = 0; j < 10; j++) { if (j == 3) break; c++; } c++; } print(c); return 0; } |})

let test_scoping () =
  checks "block shadows" "1 2 1"
    (let out =
       run_src
         {| int main() { int x = 1; print(x); { int x = 2; print(x); } print(x); return 0; } |}
     in
     String.concat " " (String.split_on_char '\n' out))

let test_functions () =
  checks "multiple args" "11"
    (run_src {| int add3(int a, int b, int c) { return a + b + c; } int main() { print(add3(1, 3, 7)); return 0; } |});
  checks "void function" "4"
    (run_src
       {| int g[1]; void set(int v) { g[0] = v; } int main() { set(4); print(g[0]); return 0; } |});
  checks "float params" "5"
    (run_src
       {| float half(float x) { return x / 2.0; } int main() { print((int)half(10.5)); return 0; } |});
  checks "prototype then definition elsewhere" "13"
    (run_src {| int f(int x); int main() { print(f(6)); return 0; } int f(int x) { return 2*x+1; } |})

let test_pointers () =
  checks "pointer arithmetic" "30"
    (run_src
       {| int a[10]; int main() { for (int i = 0; i < 10; i++) a[i] = i; int *p = a; p = p + 4; print(*p + p[1] + *(p+2) + a[9] + 6); return 0; } |});
  checks "swap via pointers" "2 1"
    (let out =
       run_src
         {| void swap(int *x, int *y) { int t = *x; *x = *y; *y = t; } int main() { int a = 1; int b = 2; swap(&a, &b); print(a); print(b); return 0; } |}
     in
     String.concat " " (String.split_on_char '\n' out))

let test_float_int_mixing () =
  checks "promotion in arith" "7" (run_src "int main() { print((int)(3.5 * 2)); return 0; }");
  checks "int div stays int" "2" (run_src "int main() { print(5 / 2); return 0; }");
  checks "float div" "2" (run_src "int main() { print((int)(5.0 / 2.0)); return 0; }")

let test_frontend_errors () =
  let expect_err src =
    match Minic.Lower.compile ~name:"e" src with
    | exception (Minic.Lower.Error _ | Minic.Parser.Error _ | Minic.Lexer.Error _) -> ()
    | _ -> Alcotest.failf "expected frontend error: %s" src
  in
  expect_err "int main() { return x; }";
  expect_err "int main() { unknown_fn(); return 0; }";
  expect_err "int main() { break; }";
  expect_err "int main() { int x = 1; x[0] = 2; return 0; }";
  expect_err "int main() { float f = 0.0; print(~f); return 0; }";
  expect_err "int main() { if (1) { return 0; }";
  expect_err "void x; int main() { return 0; }"

(* ------------------------------------------------------------------ *)
(* Differential testing: random expressions                            *)
(* ------------------------------------------------------------------ *)

type exp =
  | L of int64
  | V of int            (* one of 3 pre-seeded variables *)
  | Bin of string * exp * exp
  | Neg of exp
  | Tern of exp * exp * exp

let rec to_c = function
  | L n -> if n < 0L then Printf.sprintf "(0 - %Ld)" (Int64.neg n) else Int64.to_string n
  | V i -> Printf.sprintf "v%d" i
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_c a) op (to_c b)
  | Neg a -> Printf.sprintf "(-%s)" (to_c a)
  | Tern (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (to_c c) (to_c a) (to_c b)

let vars = [| 3L; -7L; 100L |]

let rec eval = function
  | L n -> n
  | V i -> vars.(i)
  | Neg a -> Int64.neg (eval a)
  | Tern (c, a, b) -> if not (Int64.equal (eval c) 0L) then eval a else eval b
  | Bin (op, a, b) -> (
    let x = eval a and y = eval b in
    let nz v = if Int64.equal v 0L then 1L else v in
    match op with
    | "+" -> Int64.add x y
    | "-" -> Int64.sub x y
    | "*" -> Int64.mul x y
    | "/" -> Int64.div x (nz y)
    | "%" -> Int64.rem x (nz y)
    | "&" -> Int64.logand x y
    | "|" -> Int64.logor x y
    | "^" -> Int64.logxor x y
    | "<" -> if x < y then 1L else 0L
    | "<=" -> if x <= y then 1L else 0L
    | ">" -> if x > y then 1L else 0L
    | ">=" -> if x >= y then 1L else 0L
    | "==" -> if Int64.equal x y then 1L else 0L
    | "!=" -> if Int64.equal x y then 0L else 1L
    | _ -> assert false)

(* division guarded the same way in the generated program *)
let rec guard_divs = function
  | Bin (("/" | "%") as op, a, b) ->
    Bin (op, guard_divs a, Tern (guard_divs b, guard_divs b, L 1L))
  | Bin (op, a, b) -> Bin (op, guard_divs a, guard_divs b)
  | Neg a -> Neg (guard_divs a)
  | Tern (c, a, b) -> Tern (guard_divs c, guard_divs a, guard_divs b)
  | e -> e

let exp_gen =
  let open QCheck.Gen in
  let ops = [ "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<"; "<="; ">"; ">="; "=="; "!=" ] in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ map (fun i -> L (Int64.of_int i)) (int_range (-50) 50);
                    map (fun i -> V i) (int_range 0 2) ]
          else
            frequency
              [ (3, map3 (fun op a b -> Bin (op, a, b))
                   (oneofl ops) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Neg a) (self (n - 1)));
                (1, map3 (fun c a b -> Tern (c, a, b)) (self (n / 3)) (self (n / 3)) (self (n / 3)));
                (1, map (fun i -> V i) (int_range 0 2)) ])
        (min n 8))

let test_differential_exprs () =
  let prop e =
    let e = guard_divs e in
    let src =
      Printf.sprintf
        "int main() { int v0 = 3; int v1 = -7; int v2 = 100; print(%s); return 0; }"
        (to_c e)
    in
    let expected = Int64.to_string (eval e) in
    match Minic.Lower.compile ~name:"diff" src with
    | m -> String.equal expected (output m)
    | exception _ -> false
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300
       ~name:"compiled expressions = reference evaluator" (QCheck.make exp_gen)
       prop)

let suite =
  [
    tc "lexer" test_lexer;
    tc "comments" test_comments_and_ws;
    tc "precedence" test_precedence;
    tc "control flow" test_control_flow;
    tc "scoping" test_scoping;
    tc "functions" test_functions;
    tc "pointers" test_pointers;
    tc "float/int mixing" test_float_int_mixing;
    tc "frontend errors" test_frontend_errors;
    tc "differential expressions" test_differential_exprs;
  ]
