(** Shared helpers for the test-suite. *)

let check = Alcotest.check
let checkb msg b = Alcotest.check Alcotest.bool msg true b
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(** Compile Mini-C and fail the test on a frontend error. *)
let compile ?(name = "t") src =
  try Minic.Lower.compile ~name src
  with
  | Minic.Lower.Error e -> Alcotest.failf "compile error: %s" e
  | Minic.Parser.Error e -> Alcotest.failf "parse error: %s" e
  | Minic.Lexer.Error e -> Alcotest.failf "lex error: %s" e

(** Run a module and return its printed output (trimmed). *)
let output ?fuel m =
  let _, out = Ir.Interp.run ?fuel m in
  String.trim out

(** Compile and run, returning output. *)
let run_src ?fuel src = output ?fuel (compile src)

(** Run a module under the parallel runtime; returns (output, cycles). *)
let run_parallel ?fuel m =
  let _, out, cycles, _ = Psim.Runtime.run ?fuel m in
  (String.trim out, cycles)

(** Assert the module verifies. *)
let verifies msg m =
  match Ir.Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: verifier: %s" msg e

(** Assert [transform] preserves the program output of [src]. *)
let preserves_output ?fuel ~name src transform =
  let m_ref = compile src in
  let expected = output ?fuel m_ref in
  let m = compile src in
  transform m;
  verifies name m;
  let got = output ?fuel m in
  checks (name ^ ": output preserved") expected got

let tc name f = Alcotest.test_case name `Quick f

(** Freshly compiled module for each kernel of the corpus. *)
let each_kernel f =
  List.iter
    (fun (k : Bsuite.Kernels.kernel) -> f k (Bsuite.Kernels.compile k))
    Bsuite.Kernels.all
