(** Tests of the IR substrate: types, instructions, builder, printer/parser
    round trips, verifier, CFG utilities, dominators, mem2reg, simplify,
    interpreter semantics, alias analyses, SCEV, linker. *)

open Helpers
open Ir

(* ------------------------------------------------------------------ *)
(* Types and instructions                                              *)
(* ------------------------------------------------------------------ *)

let test_ty () =
  checkb "i64 self-equal" (Ty.equal Ty.I64 Ty.I64);
  checkb "i64 <> f64" (not (Ty.equal Ty.I64 Ty.F64));
  checkb "fun types structural"
    (Ty.equal (Ty.Fun ([ Ty.I64 ], Ty.Ptr)) (Ty.Fun ([ Ty.I64 ], Ty.Ptr)));
  checkb "fun arity matters"
    (not (Ty.equal (Ty.Fun ([], Ty.I64)) (Ty.Fun ([ Ty.I64 ], Ty.I64))));
  checks "ptr prints" "ptr" (Ty.to_string Ty.Ptr);
  checkb "first-class" (Ty.is_first_class Ty.Ptr);
  checkb "void not first-class" (not (Ty.is_first_class Ty.Void))

let test_instr_operands () =
  let open Instr in
  checki "bin operands" 2 (List.length (operands (Bin (Add, Cint 1L, Cint 2L))));
  checki "call operands" 3
    (List.length (operands (Call (Glob "f", [ Cint 1L; Reg 5 ]))));
  checki "phi operands" 2
    (List.length (operands (Phi [ (0, Cint 1L); (1, Reg 2) ])));
  checki "ret none" 0 (List.length (operands (Ret None)));
  checkb "cbr is terminator" (is_terminator_op (Cbr (Cint 1L, 0, 1)));
  checkb "store is not" (not (is_terminator_op (Store (Cint 1L, Reg 0))));
  let mapped = map_operands (fun _ -> Cint 9L) (Bin (Add, Reg 1, Reg 2)) in
  (match mapped with
  | Bin (Add, Cint 9L, Cint 9L) -> ()
  | _ -> Alcotest.fail "map_operands");
  checkb "uses_reg" (uses_reg (Bin (Add, Reg 3, Cint 0L)) 3);
  checkb "not uses_reg" (not (uses_reg (Bin (Add, Reg 3, Cint 0L)) 4));
  checki "cbr same-target successors deduped" 1
    (List.length (successors (Cbr (Cint 0L, 7, 7))))

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_basic () =
  let f = Func.create ~name:"f" ~params:[ ("x", Ty.I64) ] ~ret:Ty.I64 in
  let b = Builder.add_block f ~label:"entry" in
  let a = Builder.add f b.Func.bid (Instr.Bin (Instr.Add, Instr.Arg 0, Instr.Cint 1L)) Ty.I64 in
  ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg a.Instr.id))));
  checki "one block" 1 (List.length f.Func.blocks);
  checki "two insts" 2 (Func.num_insts f);
  (* add after terminator goes before it *)
  let c = Builder.add f b.Func.bid (Instr.Bin (Instr.Mul, Instr.Arg 0, Instr.Cint 2L)) Ty.I64 in
  let ids = (Func.block f b.Func.bid).Func.insts in
  checki "inserted before terminator" 1
    (match ids with [ _; x; _ ] when x = c.Instr.id -> 1 | _ -> 0);
  Builder.replace_uses f ~old:a.Instr.id ~by:(Instr.Cint 7L);
  (match (Func.terminator f b.Func.bid) with
  | Some { Instr.op = Instr.Ret (Some (Instr.Cint 7L)); _ } -> ()
  | _ -> Alcotest.fail "replace_uses rewired ret");
  Builder.remove f a.Instr.id;
  checki "removed" 2 (Func.num_insts f)

let test_builder_split () =
  let f = Func.create ~name:"f" ~params:[] ~ret:Ty.I64 in
  let b = Builder.add_block f ~label:"entry" in
  let i1 = Builder.add f b.Func.bid (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L)) Ty.I64 in
  let i2 = Builder.add f b.Func.bid (Instr.Bin (Instr.Mul, Instr.Reg i1.Instr.id, Instr.Cint 3L)) Ty.I64 in
  ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg i2.Instr.id))));
  let nb = Builder.split_block f b.Func.bid ~at:i2.Instr.id ~label:"tail" in
  checki "two blocks now" 2 (List.length f.Func.blocks);
  (match Func.terminator f b.Func.bid with
  | Some { Instr.op = Instr.Br t; _ } -> checki "falls through" nb.Func.bid t
  | _ -> Alcotest.fail "no fallthrough");
  Verify.verify_func f

let test_dce_phis () =
  (* dead phi cycles rotating a value around nested loops get removed *)
  let m =
    compile
      {|
int main() {
  int acc = 0;
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 3; j++) { acc += 0; }
    int dead = i * 2;
    dead = dead + 1;
  }
  print(acc);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let phis =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Phi _ -> acc + 1 | _ -> acc)
      0 f
  in
  (* only the two IV phis survive: acc's phi chain is dead (acc += 0 folds) *)
  checkb "few phis remain" (phis <= 3);
  checks "runs" "0" (output m)

(* ------------------------------------------------------------------ *)
(* Printer / parser                                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_kernels () =
  each_kernel (fun k m ->
      let txt = Printer.module_str m in
      let m2 = Parser.parse_module txt in
      Verify.verify_module m2;
      let txt2 = Printer.module_str m2 in
      checks (k.Bsuite.Kernels.kname ^ " round-trips") txt txt2)

let test_roundtrip_preserves_semantics () =
  each_kernel (fun k m ->
      let expected = output ~fuel:k.Bsuite.Kernels.fuel m in
      let m2 = Parser.parse_module (Printer.module_str m) in
      checks (k.Bsuite.Kernels.kname ^ " reparse runs identically") expected
        (output ~fuel:k.Bsuite.Kernels.fuel m2))

let test_metadata_roundtrip () =
  let m = compile "int main() { print(1); return 0; }" in
  Meta.set m.Irmod.meta "key.with \"quotes\"" "value\nwith\nnewlines";
  Meta.set_int m.Irmod.meta "answer" 42;
  let m2 = Parser.parse_module (Printer.module_str m) in
  check
    Alcotest.(option string)
    "escaped value survives"
    (Some "value\nwith\nnewlines")
    (Meta.get m2.Irmod.meta "key.with \"quotes\"");
  check Alcotest.(option int) "int value" (Some 42) (Meta.get_int m2.Irmod.meta "answer")

let test_parser_errors () =
  let bad s =
    match Parser.parse_module s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  bad "define i64 @f( {";
  bad "define i64 @f() { entry: br nowhere }";
  bad "global @g = ";
  bad "meta \"unterminated";
  bad "define i64 @f() { entry: %1 = frobnicate 1, 2 }"

let test_float_literals () =
  let vals = [ 0.0; 1.5; -3.25; 1e100; 1.0000000000000002; 6.02e23 ] in
  List.iter
    (fun v ->
      let s = Printer.float_str v in
      let m = Parser.parse_module (Printf.sprintf {|
define f64 @f() {
entry:
  %%1 = fadd %s, 0.0
  ret %%1
}
|} s)
      in
      let f = Irmod.func m "f" in
      Func.iter_insts
        (fun i ->
          match i.Instr.op with
          | Instr.Fbin (Instr.Fadd, Instr.Cfloat x, _) ->
            checkb (Printf.sprintf "float %s preserved" s) (Float.equal x v)
          | _ -> ())
        f)
    vals

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let test_verifier_catches () =
  let expect_invalid msg build =
    let f = Func.create ~name:"f" ~params:[] ~ret:Ty.I64 in
    build f;
    match Verify.verify_func f with
    | exception Verify.Invalid _ -> ()
    | () -> Alcotest.failf "verifier should reject: %s" msg
  in
  expect_invalid "no blocks" (fun _ -> ());
  expect_invalid "missing terminator" (fun f ->
      let b = Builder.add_block f ~label:"entry" in
      ignore (Builder.add f b.Func.bid (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 2L)) Ty.I64));
  expect_invalid "undefined register" (fun f ->
      let b = Builder.add_block f ~label:"entry" in
      ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg 999)))));
  expect_invalid "bad argument index" (fun f ->
      let b = Builder.add_block f ~label:"entry" in
      ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Arg 3)))));
  expect_invalid "use before def in same block" (fun f ->
      let b = Builder.add_block f ~label:"entry" in
      let a = Builder.mk_inst f (Instr.Bin (Instr.Add, Instr.Reg 99, Instr.Cint 0L)) Ty.I64 in
      let d = Builder.mk_inst f (Instr.Bin (Instr.Add, Instr.Cint 1L, Instr.Cint 1L)) Ty.I64 in
      (* manually place use before def *)
      a.Instr.op <- Instr.Bin (Instr.Add, Instr.Reg d.Instr.id, Instr.Cint 0L);
      a.Instr.parent <- b.Func.bid;
      d.Instr.parent <- b.Func.bid;
      b.Func.insts <- [ a.Instr.id; d.Instr.id ];
      ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg a.Instr.id)))))

(* ------------------------------------------------------------------ *)
(* Dominators                                                          *)
(* ------------------------------------------------------------------ *)

(** Naive dominance: [a] dominates [b] iff removing [a] disconnects [b]
    from the entry (or a = b = reachable). *)
let naive_dominates ~succs ~entry a b =
  if a = b then true
  else begin
    let seen = Hashtbl.create 16 in
    let rec dfs n =
      if n <> a && not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        List.iter dfs (succs n)
      end
    in
    if entry = a then not (entry = b) |> fun _ -> b = a || not true
    else begin
      dfs entry;
      not (Hashtbl.mem seen b)
    end
  end

let test_dominators_random () =
  (* random small CFGs: CHK dominators match naive removal-based check *)
  let gen = QCheck.Gen.(pair (int_range 2 8) (list_size (int_range 1 20) (pair (int_range 0 7) (int_range 0 7)))) in
  let prop (n, edges) =
    let edges = List.filter (fun (a, b) -> a < n && b < n) edges in
    (* ensure connectivity shape: add a spine 0->1->...->n-1 *)
    let spine = List.init (n - 1) (fun i -> (i, i + 1)) in
    let all_edges = List.sort_uniq compare (spine @ edges) in
    let succs x = List.filter_map (fun (a, b) -> if a = x then Some b else None) all_edges in
    let dt = Dom.compute_generic ~succs ~entry:0 ~nodes:(List.init n (fun i -> i)) in
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            let fast = Dom.dominates dt a b in
            let slow =
              if a = b then true
              else if a = 0 then true
              else begin
                let seen = Hashtbl.create 16 in
                let rec dfs x =
                  if x <> a && not (Hashtbl.mem seen x) then begin
                    Hashtbl.replace seen x ();
                    List.iter dfs (succs x)
                  end
                in
                dfs 0;
                not (Hashtbl.mem seen b)
              end
            in
            fast = slow)
          (List.init n (fun i -> i)))
      (List.init n (fun i -> i))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"CHK dominators = naive dominators"
       (QCheck.make gen) prop)

let test_postdominators () =
  let m =
    compile
      {|
int main() {
  int x = 0;
  if (clock() > 0) { x = 1; } else { x = 2; }
  print(x);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let pdt = Dom.compute_post f in
  (* the merge block postdominates both branch arms and the entry *)
  let exits = Cfg.exit_blocks f in
  checki "one exit block" 1 (List.length exits);
  List.iter
    (fun b ->
      checkb "virtual exit postdominates everything"
        (Dom.dominates pdt Dom.virtual_exit b))
    f.Func.blocks

(* ------------------------------------------------------------------ *)
(* Mem2reg / Simplify                                                  *)
(* ------------------------------------------------------------------ *)

let test_mem2reg_semantics () =
  (* lowering without mem2reg must behave the same as with it *)
  let srcs =
    [
      {| int main() { int x = 1; int y = 2; if (x < y) { x = y * 3; } print(x); return 0; } |};
      {| int main() { int s = 0; for (int i = 0; i < 17; i++) { if (i % 3 == 0) s += i; } print(s); return 0; } |};
      {| int main() { int a = 5; int *p = &a; *p = 9; print(a); return 0; } |};
    ]
  in
  List.iter
    (fun src ->
      let prog = Minic.Parser.parse_program src in
      let raw = Minic.Lower.lower_program ~name:"raw" prog in
      let _, out_raw = Interp.run raw in
      let cooked = compile src in
      checks "mem2reg preserves semantics" (String.trim out_raw) (output cooked))
    srcs

let test_mem2reg_promotes () =
  let m = compile {| int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; print(s); return 0; } |} in
  let f = Irmod.func m "main" in
  let allocas =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Alloca _ -> acc + 1 | _ -> acc)
      0 f
  in
  checki "all scalars promoted" 0 allocas;
  checks "result" "36" (output m)

let test_address_taken_not_promoted () =
  let m = compile {| int main() { int a = 5; int *p = &a; *p = 9; print(a); return 0; } |} in
  let f = Irmod.func m "main" in
  let allocas =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Alloca _ -> acc + 1 | _ -> acc)
      0 f
  in
  checkb "address-taken alloca stays" (allocas >= 1);
  checks "result" "9" (output m)

let test_simplify () =
  let f = Func.create ~name:"f" ~params:[ ("x", Ty.I64) ] ~ret:Ty.I64 in
  let b = Builder.add_block f ~label:"entry" in
  let add = Builder.add f b.Func.bid (Instr.Bin (Instr.Add, Instr.Cint 2L, Instr.Cint 3L)) Ty.I64 in
  let a2 = Builder.add f b.Func.bid (Instr.Bin (Instr.Add, Instr.Reg add.Instr.id, Instr.Cint 0L)) Ty.I64 in
  let cmp = Builder.add f b.Func.bid (Instr.Icmp (Instr.Slt, Instr.Arg 0, Instr.Reg a2.Instr.id)) Ty.I64 in
  let dbl = Builder.add f b.Func.bid (Instr.Icmp (Instr.Ne, Instr.Reg cmp.Instr.id, Instr.Cint 0L)) Ty.I64 in
  ignore (Builder.set_term f b.Func.bid (Instr.Ret (Some (Instr.Reg dbl.Instr.id))));
  ignore (Simplify.run f);
  ignore (Builder.dce f);
  Verify.verify_func f;
  (* add 2,3 folds to 5; add x,0 folds away; double boolean collapses *)
  checki "only cmp and ret remain" 2 (Func.num_insts f)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_interp_arith () =
  checks "precedence" "14" (run_src "int main() { print(2 + 3 * 4); return 0; }");
  checks "negative division truncates" "-2"
    (run_src "int main() { print(-7 / 3); return 0; }");
  checks "remainder sign" "-1" (run_src "int main() { print(-7 % 3); return 0; }");
  checks "shifts" "40" (run_src "int main() { print((5 << 3) & 127); return 0; }");
  checks "float to int" "3" (run_src "int main() { print((int)3.99); return 0; }");
  checks "ternary" "7" (run_src "int main() { print(1 < 2 ? 7 : 8); return 0; }");
  checks "short-circuit and" "0"
    (run_src "int main() { int x = 0; int r = (x != 0) && (1 / x > 0); print(r); return 0; }");
  checks "short-circuit or" "1"
    (run_src "int main() { int x = 0; int r = (x == 0) || (1 / x > 0); print(r); return 0; }")

let test_interp_traps () =
  let expect_trap src =
    let m = compile src in
    match Interp.run m with
    | exception Interp.Trap _ -> ()
    | _ -> Alcotest.failf "expected trap: %s" src
  in
  expect_trap "int main() { int x = 0; print(1 / x); return 0; }";
  expect_trap "int main() { int *p = (int*)0; print(*p); return 0; }";
  expect_trap "int main() { while (1) { } return 0; }" (* fuel *)

let test_interp_memory () =
  checks "malloc/free" "55"
    (run_src
       {|
int main() {
  int *p = malloc(10);
  for (int i = 0; i < 10; i++) p[i] = i + 1;
  int s = 0;
  for (int i = 0; i < 10; i++) s += p[i];
  free(p);
  print(s);
  return 0;
}
|});
  checks "global init" "6"
    (run_src {|
int g[3] = {1, 2, 3};
int main() { print(g[0] + g[1] + g[2]); return 0; }
|});
  checks "function pointers" "30"
    (run_src
       {|
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int main() {
  int* fns[2];
  fns[0] = (int*)twice;
  fns[1] = (int*)thrice;
  int s = 0;
  for (int i = 0; i < 2; i++) { s += fns[i](6); }
  print(s);
  return 0;
}
|})

let test_interp_recursion () =
  checks "fib" "55"
    (run_src
       {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { print(fib(10)); return 0; }
|})

(* ------------------------------------------------------------------ *)
(* Alias analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_alias_baseline () =
  let m =
    compile
      {|
int g1[10];
int g2[10];
int main() {
  int a[4];
  int b[4];
  a[0] = 1; b[0] = 2; g1[0] = 3; g2[0] = 4;
  print(a[0] + b[0] + g1[0] + g2[0]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let stack = Andersen.baseline_stack in
  (* find the stored-to pointers *)
  let ptrs =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Store (_, p) -> p :: acc | _ -> acc)
      [] f
    |> List.rev
  in
  (match ptrs with
  | [ pa; pb; pg1; pg2 ] ->
    checkb "distinct allocas no-alias" (Alias.alias stack m f pa pb = Alias.No_alias);
    checkb "distinct globals no-alias" (Alias.alias stack m f pg1 pg2 = Alias.No_alias);
    checkb "alloca vs global no-alias" (Alias.alias stack m f pa pg1 = Alias.No_alias);
    checkb "same pointer must-alias" (Alias.alias stack m f pa pa = Alias.Must_alias)
  | _ -> Alcotest.fail "expected 4 stores")

let test_alias_structural_must () =
  let m =
    compile
      {|
int a[100];
int main() {
  for (int i = 0; i < 10; i++) {
    int x = a[i];
    int y = a[i];
    print(x + y);
  }
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let loads =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Load p -> p :: acc | _ -> acc)
      [] f
  in
  match loads with
  | [ p2; p1 ] ->
    checkb "same gep pattern must-alias"
      (Alias.alias Andersen.baseline_stack m f p1 p2 = Alias.Must_alias)
  | _ -> Alcotest.fail "expected 2 loads"

let test_andersen_resolves_indirect () =
  let m =
    compile
      {|
int f1(int x) { return x + 1; }
int f2(int x) { return x + 2; }
int main() {
  int* t[2];
  t[0] = (int*)f1;
  t[1] = (int*)f2;
  print(t[clock() & 1](1));
  return 0;
}
|}
  in
  let r = Andersen.analyze m in
  let cg = Noelle.Callgraph.build ~pts:r m in
  let callees =
    Noelle.Callgraph.callees cg "main"
    |> List.map (fun (e : Noelle.Callgraph.edge) -> e.Noelle.Callgraph.callee)
    |> List.sort compare
  in
  checkb "indirect call resolved to f1" (List.mem "f1" callees);
  checkb "indirect call resolved to f2" (List.mem "f2" callees);
  checkb "complete: no unresolved sites" (cg.Noelle.Callgraph.unresolved = [])

let test_andersen_disproves () =
  (* two disjoint malloc'd regions accessed through pointer copies: the
     baseline cannot see it, Andersen can *)
  let m =
    compile
      {|
int use(int *p, int *q) {
  *p = 1;
  return *q;
}
int main() {
  int *a = malloc(4);
  int *b = malloc(4);
  *b = 7;
  print(use(a, b));
  return 0;
}
|}
  in
  let f = Irmod.func m "use" in
  let stack_noelle = Andersen.noelle_stack m in
  let p = Instr.Arg 0 and q = Instr.Arg 1 in
  checkb "baseline cannot disprove arg aliasing"
    (Alias.alias Andersen.baseline_stack m f p q = Alias.May_alias);
  checkb "andersen disproves distinct malloc sites"
    (Alias.alias stack_noelle m f p q = Alias.No_alias)

let test_ordered_builtins_conflict () =
  let m = compile {| int main() { print(1); print(2); return 0; } |} in
  let f = Irmod.func m "main" in
  let calls =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Call _ -> i :: acc | _ -> acc)
      [] f
  in
  match calls with
  | [ c2; c1 ] ->
    checkb "two prints conflict (ordered I/O)"
      (Alias.may_conflict Andersen.baseline_stack m f c1 c2)
  | _ -> Alcotest.fail "expected 2 calls"

(* ------------------------------------------------------------------ *)
(* SCEV                                                                *)
(* ------------------------------------------------------------------ *)

let test_scev_affine () =
  let m =
    compile
      {|
int a[200];
int main() {
  for (int i = 0; i < 50; i++) {
    a[2*i + 3] = i;
  }
  print(a[5]);
  return 0;
}
|}
  in
  let f = Irmod.func m "main" in
  let nest = Loopnest.compute f in
  let l = List.hd nest.Loopnest.loops in
  let phi =
    List.find
      (fun (i : Instr.inst) -> match i.Instr.op with Instr.Phi _ -> true | _ -> false)
      (Func.insts_of_block f l.Loopnest.header)
  in
  let store_ptr =
    Func.fold_insts
      (fun acc i -> match i.Instr.op with Instr.Store (_, p) -> Some p | _ -> acc)
      None f
    |> Option.get
  in
  match Scev.affine_of f l ~iv_phi:phi.Instr.id store_ptr with
  | Some a ->
    checkb "scale 2" (Int64.equal a.Scev.scale 2L);
    checkb "offset 3" (Int64.equal a.Scev.offset 3L);
    (match a.Scev.base with
    | Some (Instr.Glob "a") -> ()
    | _ -> Alcotest.fail "base should be @a")
  | None -> Alcotest.fail "address should be affine"

let test_scev_classify_random () =
  (* classify_pair's No_dep/Intra verdicts checked against brute force *)
  let gen =
    QCheck.Gen.(
      tup4 (int_range 1 6) (int_range 0 20) (int_range 0 20) (int_range 1 5))
  in
  let prop (s, o1, o2, span) =
    let a = { Scev.pbase = []; terms = [ (0, Int64.of_int s); (1, 1L) ]; poffset = Int64.of_int o1 } in
    let b = { Scev.pbase = []; terms = [ (0, Int64.of_int s); (1, 1L) ]; poffset = Int64.of_int o2 } in
    let verdict = Scev.classify_pair ~outer:0 ~spans:[ (1, Int64.of_int span) ] a b in
    (* brute force over iteration pairs and inner values *)
    let collide_cross = ref false and collide_same = ref false in
    for i1 = 0 to 6 do
      for i2 = 0 to 6 do
        for j1 = 0 to span do
          for j2 = 0 to span do
            let a1 = (s * i1) + j1 + o1 and a2 = (s * i2) + j2 + o2 in
            if a1 = a2 then
              if i1 = i2 then collide_same := true else collide_cross := true
          done
        done
      done
    done;
    match verdict with
    | `No_dep -> (not !collide_cross) && not !collide_same
    | `Intra -> not !collide_cross
    | `Unknown -> true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"classify_pair sound vs brute force"
       (QCheck.make gen) prop)

(* ------------------------------------------------------------------ *)
(* Linker                                                              *)
(* ------------------------------------------------------------------ *)

let test_linker () =
  let m1 = compile ~name:"u1" {|
int helper(int x);
int main() { print(helper(5)); return 0; }
|} in
  let m2 = compile ~name:"u2" {|
int helper(int x) { return x * x; }
|} in
  let whole = Linker.link [ m1; m2 ] in
  Verify.verify_module whole;
  checks "cross-unit call works" "25" (output whole);
  (* duplicate definitions are an error *)
  (match Linker.link [ m2; m2 ] with
  | exception Linker.Link_error _ -> ()
  | _ -> Alcotest.fail "duplicate definition should fail")

let suite =
  [
    tc "ty" test_ty;
    tc "instr operands" test_instr_operands;
    tc "builder basics" test_builder_basic;
    tc "builder split" test_builder_split;
    tc "dead phi cycles" test_dce_phis;
    tc "round-trip all kernels" test_roundtrip_kernels;
    tc "reparse preserves semantics" test_roundtrip_preserves_semantics;
    tc "metadata round-trip" test_metadata_roundtrip;
    tc "parser errors" test_parser_errors;
    tc "float literals" test_float_literals;
    tc "verifier catches" test_verifier_catches;
    tc "dominators random" test_dominators_random;
    tc "postdominators" test_postdominators;
    tc "mem2reg semantics" test_mem2reg_semantics;
    tc "mem2reg promotes" test_mem2reg_promotes;
    tc "address-taken stays" test_address_taken_not_promoted;
    tc "simplify" test_simplify;
    tc "interp arith" test_interp_arith;
    tc "interp traps" test_interp_traps;
    tc "interp memory" test_interp_memory;
    tc "interp recursion" test_interp_recursion;
    tc "alias baseline" test_alias_baseline;
    tc "alias structural must" test_alias_structural_must;
    tc "andersen indirect calls" test_andersen_resolves_indirect;
    tc "andersen disproves" test_andersen_disproves;
    tc "ordered builtins" test_ordered_builtins_conflict;
    tc "scev affine" test_scev_affine;
    tc "scev classify random" test_scev_classify_random;
    tc "linker" test_linker;
  ]
