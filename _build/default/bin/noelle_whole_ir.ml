(** noelle-whole-IR — merge compilation units into a single whole-program
    IR file (Table 2; based on gllvm in the paper).

    Accepts any mix of [.mc] sources (compiled on the fly) and [.ir]
    modules, links them, verifies the result, and records the requested
    link options as metadata — the options [noelle-bin] later honours. *)

open Cmdliner

let run inputs output opts =
  let modules =
    List.map
      (fun path ->
        if Filename.check_suffix path ".mc" then begin
          let ic = open_in path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Minic.Lower.compile
            ~name:(Filename.remove_extension (Filename.basename path))
            src
        end
        else Ir.Parser.parse_file path)
      inputs
  in
  match Ir.Linker.link ~name:"whole" modules with
  | whole ->
    List.iteri
      (fun i o -> Ir.Meta.set whole.Ir.Irmod.meta (Printf.sprintf "option.%d" i) o)
      opts;
    Ir.Verify.verify_module whole;
    Ir.Printer.to_file whole output;
    Printf.printf "noelle-whole-ir: %d modules -> %s (%d instructions)\n"
      (List.length modules) output (Ir.Irmod.total_insts whole);
    0
  | exception Ir.Linker.Link_error e ->
    Printf.eprintf "noelle-whole-ir: %s\n" e;
    1

let inputs = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES")
let output = Arg.(value & opt string "whole.ir" & info [ "o" ] ~docv:"OUT.ir")
let opts = Arg.(value & opt_all string [] & info [ "option" ] ~docv:"OPT")

let cmd =
  Cmd.v
    (Cmd.info "noelle-whole-ir" ~doc:"Link units into a whole-program IR file")
    Term.(const run $ inputs $ output $ opts)

let () = exit (Cmd.eval' cmd)
