(** noelle-fuzz — generate micro test programs (§2.4).

    The paper's testing infrastructure lets users "surgically generate
    tests that stress a specific aspect of a specific code transformation";
    this tool exposes the deterministic program generator: pick a seed and
    the pattern knobs, get a Mini-C file (or its compiled IR), optionally
    run a named tool over it and check the output is preserved. *)

open Cmdliner

let run seed count out_dir emit_ir check_tool knobs =
  let cfg =
    List.fold_left
      (fun (c : Bsuite.Generator.cfg) k ->
        match k with
        | "no-ifs" -> { c with allow_ifs = false }
        | "no-recurrences" -> { c with allow_recurrences = false }
        | "no-helpers" -> { c with allow_helpers = false }
        | "no-indirect" -> { c with allow_indirect = false }
        | "deep" -> { c with max_depth = 3; iters = 8 }
        | k ->
          Printf.eprintf "unknown knob %s\n" k;
          c)
      Bsuite.Generator.default_cfg knobs
  in
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let failures = ref 0 in
  for s = seed to seed + count - 1 do
    let src = Bsuite.Generator.program ~cfg s in
    let path = Filename.concat out_dir (Printf.sprintf "fuzz%04d.mc" s) in
    let oc = open_out path in
    output_string oc src;
    close_out oc;
    let m = Minic.Lower.compile ~name:(Printf.sprintf "fuzz%04d" s) src in
    if emit_ir then
      Ir.Printer.to_file m (Filename.concat out_dir (Printf.sprintf "fuzz%04d.ir" s));
    match check_tool with
    | None -> ()
    | Some tool -> (
      let _, expected = Ir.Interp.run ~fuel:3_000_000 m in
      let m2 = Minic.Lower.compile ~name:"check" src in
      let p, _ = Noelle.Profiler.run ~fuel:3_000_000 m2 in
      Noelle.Profiler.embed p m2;
      let n = Noelle.create m2 in
      (match tool with
      | "licm" -> ignore (Ntools.Licm.run n m2)
      | "doall" -> ignore (Ntools.Doall.run n m2 ~min_hotness:0.0 ~min_work:0.0 ())
      | "helix" -> ignore (Ntools.Helix.run n m2 ~min_hotness:0.0 ~min_work:0.0 ())
      | "dswp" -> ignore (Ntools.Dswp.run n m2 ~min_hotness:0.0 ~min_work:0.0 ())
      | "time" -> ignore (Ntools.Timesqueezer.run n m2)
      | t -> Printf.eprintf "unknown tool %s\n" t);
      match Ir.Verify.check m2 with
      | Error e ->
        incr failures;
        Printf.printf "seed %d: VERIFIER: %s\n" s e
      | Ok () ->
        let _, got, _, _ = Psim.Runtime.run ~fuel:12_000_000 m2 in
        if not (String.equal expected got) then begin
          incr failures;
          Printf.printf "seed %d: OUTPUT CHANGED\n" s
        end)
  done;
  Printf.printf "noelle-fuzz: wrote %d programs to %s%s\n" count out_dir
    (match check_tool with
    | Some t -> Printf.sprintf "; checked %s: %d failures" t !failures
    | None -> "");
  if !failures > 0 then 1 else 0

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N")
let count = Arg.(value & opt int 10 & info [ "count"; "n" ] ~docv:"N")
let out_dir = Arg.(value & opt string "fuzz-out" & info [ "o" ] ~docv:"DIR")
let emit_ir = Arg.(value & flag & info [ "ir" ] ~doc:"also emit compiled IR")
let check_tool =
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"TOOL"
         ~doc:"differentially check a tool (licm|doall|helix|dswp|time)")
let knobs =
  Arg.(value & opt_all string [] & info [ "knob" ] ~docv:"K"
         ~doc:"pattern knobs: no-ifs no-recurrences no-helpers no-indirect deep")

let cmd =
  Cmd.v
    (Cmd.info "noelle-fuzz" ~doc:"Generate micro test programs (testing infrastructure)")
    Term.(const run $ seed $ count $ out_dir $ emit_ir $ check_tool $ knobs)

let () = exit (Cmd.eval' cmd)
