(** noelle-arch — describe the underlying architecture and its measured
    core-to-core latencies/bandwidths (Table 2; hwloc + micro-benchmarks
    in the paper, a deterministic model of the evaluation platform here). *)

open Cmdliner

let run input output cores numa =
  let arch = Noelle.Arch.measure ~physical_cores:cores ~numa_nodes:numa () in
  (match input with
  | Some path ->
    let m = Ir.Parser.parse_file path in
    Noelle.Arch.to_meta arch m.Ir.Irmod.meta;
    let out = match output with Some o -> o | None -> path in
    Ir.Printer.to_file m out;
    Printf.printf "noelle-arch: embedded into %s\n" out
  | None ->
    Printf.printf "cores=%d smt=%d numa=%d\n" arch.Noelle.Arch.physical_cores
      arch.Noelle.Arch.logical_per_physical arch.Noelle.Arch.numa_nodes;
    Printf.printf "max core-to-core latency: %d cycles\n" (Noelle.Arch.max_latency arch);
    Printf.printf "avg core-to-core latency: %.1f cycles\n" (Noelle.Arch.avg_latency arch));
  0

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let cores = Arg.(value & opt int 12 & info [ "cores" ] ~docv:"N")
let numa = Arg.(value & opt int 1 & info [ "numa" ] ~docv:"N")

let cmd =
  Cmd.v
    (Cmd.info "noelle-arch" ~doc:"Measure and embed the architecture description")
    Term.(const run $ input $ output $ cores $ numa)

let () = exit (Cmd.eval' cmd)
