(** noelle-meta-pdg-embed — compute the PDG of every function with the
    full (expensive) alias stack and embed it as metadata, so later tool
    invocations reconstruct abstractions without re-running the analyses
    (Table 2). *)

open Cmdliner

let run input output baseline =
  let m = Ir.Parser.parse_file input in
  let n = Noelle.create ~use_noelle_aa:(not baseline) m in
  Noelle.set_tool n "noelle-meta-pdg-embed";
  List.iter
    (fun f ->
      let pdg = Noelle.pdg n f in
      Noelle.Pdg.embed pdg)
    (Ir.Irmod.defined_functions m);
  let out = match output with Some o -> o | None -> input in
  Ir.Printer.to_file m out;
  Printf.printf "noelle-meta-pdg-embed: %s -> %s\n" input out;
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let baseline =
  Arg.(value & flag & info [ "baseline-aa" ] ~doc:"use only the baseline alias analysis")

let cmd =
  Cmd.v
    (Cmd.info "noelle-meta-pdg-embed" ~doc:"Compute and embed the PDG")
    Term.(const run $ input $ output $ baseline)

let () = exit (Cmd.eval' cmd)
