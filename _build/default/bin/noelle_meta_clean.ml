(** noelle-meta-clean — strip NOELLE-generated metadata from an IR file
    (§2.1's compilation-flow step between transformation rounds). *)

open Cmdliner

let run input output prefixes =
  let m = Ir.Parser.parse_file input in
  let prefixes = if prefixes = [] then [ "prof."; "pdg."; "arch."; "memprof." ] else prefixes in
  List.iter (Ir.Meta.clear_prefix m.Ir.Irmod.meta) prefixes;
  let out = match output with Some o -> o | None -> input in
  Ir.Printer.to_file m out;
  Printf.printf "noelle-meta-clean: %s -> %s (cleared %s)\n" input out
    (String.concat " " prefixes);
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let prefixes = Arg.(value & opt_all string [] & info [ "prefix" ] ~docv:"P")

let cmd =
  Cmd.v
    (Cmd.info "noelle-meta-clean" ~doc:"Strip NOELLE metadata from an IR file")
    Term.(const run $ input $ output $ prefixes)

let () = exit (Cmd.eval' cmd)
