(** noelle-load — load the NOELLE layer in memory and run custom tools
    over an IR file (Table 2; the replacement for LLVM's [opt]). *)

open Cmdliner

let available =
  [ "licm"; "licm-llvm"; "dead"; "doall"; "helix"; "dswp"; "carat"; "coos";
    "time"; "prvj"; "pers"; "autopar-baseline" ]

let run_tool (n : Noelle.t) m tool =
  match tool with
  | "licm" ->
    let s = Ntools.Licm.run n m in
    Printf.printf "LICM: hoisted %d invariants across %d loops\n"
      s.Ntools.Licm.hoisted s.Ntools.Licm.loops_visited
  | "licm-llvm" ->
    let s = Ntools.Licm_llvm.run m in
    Printf.printf "LICM(llvm-baseline): hoisted %d across %d loops\n"
      s.Ntools.Licm_llvm.hoisted s.Ntools.Licm_llvm.loops_visited
  | "dead" ->
    let s = Ntools.Deadfunc.run n m () in
    Printf.printf "DEAD: removed %d functions (%d -> %d instructions, -%.1f%%)\n"
      (List.length s.Ntools.Deadfunc.removed)
      s.Ntools.Deadfunc.insts_before s.Ntools.Deadfunc.insts_after
      (Ntools.Deadfunc.reduction s)
  | "doall" ->
    List.iter
      (fun (id, r) ->
        match r with
        | Ok (_ : Ntools.Doall.stats) -> Printf.printf "DOALL %s: parallelized\n" id
        | Error e -> Printf.printf "DOALL %s: %s\n" id e)
      (Ntools.Doall.run n m ())
  | "helix" ->
    List.iter
      (fun (id, r) ->
        match r with
        | Ok (s : Ntools.Helix.stats) ->
          Printf.printf "HELIX %s: parallelized (%d segments)\n" id s.Ntools.Helix.nsegments
        | Error e -> Printf.printf "HELIX %s: %s\n" id e)
      (Ntools.Helix.run n m ())
  | "dswp" ->
    List.iter
      (fun (id, r) ->
        match r with
        | Ok (s : Ntools.Dswp.stats) ->
          Printf.printf "DSWP %s: %d stages, %d queues\n" id s.Ntools.Dswp.nstages
            s.Ntools.Dswp.nqueues
        | Error e -> Printf.printf "DSWP %s: %s\n" id e)
      (Ntools.Dswp.run n m ())
  | "carat" ->
    let s = Ntools.Carat.run n m in
    Printf.printf
      "CARAT: %d accesses; %d guards, %d range guards, %d proven safe, %d redundant\n"
      s.Ntools.Carat.mem_insts s.Ntools.Carat.guards_inserted
      s.Ntools.Carat.range_guards s.Ntools.Carat.proven_safe
      s.Ntools.Carat.redundant_skipped
  | "coos" ->
    let s = Ntools.Coos.run n m () in
    Printf.printf "COOS: inserted %d callbacks in %d functions\n"
      s.Ntools.Coos.callbacks_inserted s.Ntools.Coos.functions_instrumented
  | "time" ->
    let s = Ntools.Timesqueezer.run n m in
    Printf.printf
      "TIME: swapped %d compares; switches %d -> %d; est cycles %.0f -> %.0f\n"
      s.Ntools.Timesqueezer.cmps_swapped s.Ntools.Timesqueezer.switches_before
      s.Ntools.Timesqueezer.switches_after s.Ntools.Timesqueezer.est_cycles_before
      s.Ntools.Timesqueezer.est_cycles_after
  | "prvj" ->
    let s = Ntools.Prvjeeves.run n m () in
    Printf.printf "PRVJ: %d sites, %d generators changed\n"
      (List.length s.Ntools.Prvjeeves.sites) s.Ntools.Prvjeeves.changed
  | "pers" ->
    Ntools.Perspective.profile_conflicts m;
    List.iter
      (fun (id, r) ->
        match r with
        | Ok (s : Ntools.Perspective.stats) ->
          Printf.printf "PERS %s: parallelized speculating %d edges\n" id
            s.Ntools.Perspective.speculated_edges
        | Error e -> Printf.printf "PERS %s: %s\n" id e)
      (Ntools.Perspective.run n m ())
  | "autopar-baseline" ->
    let vs = Ntools.Autopar_baseline.run m in
    Printf.printf "autopar-baseline: %d/%d loops parallelizable\n"
      (Ntools.Autopar_baseline.parallelized vs)
      (List.length vs)
  | t -> Printf.eprintf "unknown tool %s (available: %s)\n" t (String.concat " " available)

let run input tools output usage =
  let m = Ir.Parser.parse_file input in
  let n = Noelle.create m in
  List.iter (run_tool n m) tools;
  Ir.Verify.verify_module m;
  (match output with Some o -> Ir.Printer.to_file m o | None -> ());
  if usage then begin
    Printf.printf "abstractions requested (tool, abstraction):\n";
    List.iter (fun (t, a) -> Printf.printf "  %s %s\n" t a) (Noelle.usage_pairs n)
  end;
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let tools =
  Arg.(value & opt_all string [] & info [ "tool"; "t" ] ~docv:"TOOL"
         ~doc:(Printf.sprintf "custom tool to run (%s)" (String.concat ", " available)))
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let usage = Arg.(value & flag & info [ "usage" ] ~doc:"print the abstraction-usage log")

let cmd =
  Cmd.v
    (Cmd.info "noelle-load" ~doc:"Run NOELLE custom tools over an IR file")
    Term.(const run $ input $ tools $ output $ usage)

let () = exit (Cmd.eval' cmd)
