(** noelle-prof-coverage — run the instruction/branch/loop profilers over
    an IR file with a training input (Table 2). Writes a profile file that
    [noelle-meta-prof-embed] merges into the IR. *)

open Cmdliner

let run input args output =
  let m = Ir.Parser.parse_file input in
  let p, _out = Noelle.Profiler.run ~args m in
  (* write through a scratch module's metadata, in printable form *)
  let scratch = Ir.Irmod.create () in
  Noelle.Profiler.embed p scratch;
  let oc = open_out output in
  Ir.Meta.iter_sorted
    (fun k v -> Printf.fprintf oc "%s=%s\n" k v)
    scratch.Ir.Irmod.meta;
  close_out oc;
  Printf.printf
    "noelle-prof-coverage: %s -> %s (%Ld dynamic instructions)\n" input output
    (Ir.Meta.get scratch.Ir.Irmod.meta "prof.total"
    |> Option.map Int64.of_string |> Option.value ~default:0L);
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let args =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"program argument")
let output = Arg.(value & opt string "prof.out" & info [ "o" ] ~docv:"PROFILE")

let cmd =
  Cmd.v
    (Cmd.info "noelle-prof-coverage" ~doc:"Profile an IR file")
    Term.(const run $ input $ args $ output)

let () = exit (Cmd.eval' cmd)
