(** noelle-linker — link IR files while preserving the semantics of
    NOELLE-generated metadata (Table 2). *)

open Cmdliner

let run inputs output =
  match Ir.Linker.link ~name:"linked" (List.map Ir.Parser.parse_file inputs) with
  | m ->
    Ir.Verify.verify_module m;
    Ir.Printer.to_file m output;
    Printf.printf "noelle-linker: %d files -> %s\n" (List.length inputs) output;
    0
  | exception Ir.Linker.Link_error e ->
    Printf.eprintf "noelle-linker: %s\n" e;
    1

let inputs = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES")
let output = Arg.(value & opt string "linked.ir" & info [ "o" ] ~docv:"OUT.ir")

let cmd =
  Cmd.v
    (Cmd.info "noelle-linker" ~doc:"Link IR files preserving metadata")
    Term.(const run $ inputs $ output)

let () = exit (Cmd.eval' cmd)
