(** noelle-bin — produce and run the final program (Table 2).

    The paper's noelle-bin hands the IR to the LLVM backend; this
    reproduction's "binary" is execution on the IR interpreter with the
    parallel runtime and the tool runtimes installed, reporting program
    output and the simulated cycle count. *)

open Cmdliner

let run input args fuel cores =
  let m = Ir.Parser.parse_file input in
  let arch = Noelle.Arch.measure ~physical_cores:cores () in
  let st = Ir.Interp.create m in
  (match fuel with Some f -> st.Ir.Interp.fuel <- f | None -> ());
  let _r = Psim.Runtime.install ~arch st in
  let _trt = Ntools.Toolrt.install st in
  match
    Ir.Interp.call st "main" (List.map (fun x -> Ir.Interp.VI (Int64.of_int x)) args)
  with
  | v ->
    print_string (Buffer.contents st.Ir.Interp.output);
    Printf.printf "[noelle-bin] exit=%s cycles=%Ld\n" (Ir.Interp.v_to_string v)
      st.Ir.Interp.clock;
    0
  | exception Ir.Interp.Trap e ->
    print_string (Buffer.contents st.Ir.Interp.output);
    Printf.eprintf "[noelle-bin] trap: %s\n" e;
    1

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let args = Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N")
let fuel = Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N")
let cores = Arg.(value & opt int 12 & info [ "cores" ] ~docv:"N")

let cmd =
  Cmd.v
    (Cmd.info "noelle-bin" ~doc:"Run an IR program (the simulated binary)")
    Term.(const run $ input $ args $ fuel $ cores)

let () = exit (Cmd.eval' cmd)
