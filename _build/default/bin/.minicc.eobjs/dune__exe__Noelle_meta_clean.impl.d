bin/noelle_meta_clean.ml: Arg Cmd Cmdliner Ir List Printf String Term
