bin/minicc.ml: Arg Cmd Cmdliner Filename Ir List Minic Printf Term
