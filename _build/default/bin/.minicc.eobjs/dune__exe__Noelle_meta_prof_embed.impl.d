bin/noelle_meta_prof_embed.ml: Arg Cmd Cmdliner Ir Printf String Term
