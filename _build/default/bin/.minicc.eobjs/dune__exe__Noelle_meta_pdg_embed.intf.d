bin/noelle_meta_pdg_embed.mli:
