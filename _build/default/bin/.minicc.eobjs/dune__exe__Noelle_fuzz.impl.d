bin/noelle_fuzz.ml: Arg Bsuite Cmd Cmdliner Filename Ir List Minic Noelle Ntools Printf Psim String Term Unix
