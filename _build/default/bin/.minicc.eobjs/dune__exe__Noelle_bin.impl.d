bin/noelle_bin.ml: Arg Buffer Cmd Cmdliner Int64 Ir List Noelle Ntools Printf Psim Term
