bin/noelle_bin.mli:
