bin/noelle_arch.ml: Arg Cmd Cmdliner Ir Noelle Printf Term
