bin/noelle_fuzz.mli:
