bin/noelle_whole_ir.mli:
