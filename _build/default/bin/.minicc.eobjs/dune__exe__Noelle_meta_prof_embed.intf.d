bin/noelle_meta_prof_embed.mli:
