bin/noelle_rm_lc_deps.mli:
