bin/noelle_meta_clean.mli:
