bin/noelle_prof_coverage.mli:
