bin/noelle_prof_coverage.ml: Arg Cmd Cmdliner Int64 Ir Noelle Option Printf Term
