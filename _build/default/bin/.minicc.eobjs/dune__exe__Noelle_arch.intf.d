bin/noelle_arch.mli:
