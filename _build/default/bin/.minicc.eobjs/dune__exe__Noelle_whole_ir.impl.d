bin/noelle_whole_ir.ml: Arg Cmd Cmdliner Filename Ir List Minic Printf Term
