bin/noelle_linker.ml: Arg Cmd Cmdliner Ir List Printf Term
