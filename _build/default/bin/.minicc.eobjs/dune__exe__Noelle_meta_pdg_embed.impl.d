bin/noelle_meta_pdg_embed.ml: Arg Cmd Cmdliner Ir List Noelle Printf Term
