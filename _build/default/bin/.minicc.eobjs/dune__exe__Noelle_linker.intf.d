bin/noelle_linker.mli:
