bin/noelle_rm_lc_deps.ml: Arg Cmd Cmdliner Ir List Noelle Ntools Printf Term
