bin/noelle_load.mli:
