bin/noelle_load.ml: Arg Cmd Cmdliner Ir List Noelle Ntools Printf String Term
