bin/minicc.mli:
