(** minicc — compile Mini-C source files to textual IR.

    The front half of [noelle-whole-IR]'s job: each [.mc] file becomes a
    verified SSA [.ir] module. *)

open Cmdliner

let compile input output =
  let ic = open_in input in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename input) in
  match Minic.Lower.compile ~name src with
  | m ->
    let out =
      match output with Some o -> o | None -> Filename.remove_extension input ^ ".ir"
    in
    Ir.Printer.to_file m out;
    Printf.printf "minicc: %s -> %s (%d functions, %d instructions)\n" input out
      (List.length (Ir.Irmod.defined_functions m))
      (Ir.Irmod.total_insts m);
    0
  | exception Minic.Lower.Error e | exception Minic.Parser.Error e ->
    Printf.eprintf "minicc: %s: %s\n" input e;
    1

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")

let cmd =
  Cmd.v
    (Cmd.info "minicc" ~doc:"Compile Mini-C to NOELLE IR")
    Term.(const compile $ input $ output)

let () = exit (Cmd.eval' cmd)
