(** noelle-rm-lc-dependences — transform loops to remove as many
    loop-carried data dependences as possible (Table 2), making the IR
    more amenable to loop-centric parallelization.

    Implemented with LB + INV: hoisting invariant computation (including
    provably-stable loads) removes the false carried dependences they
    induce, and first-iteration peeling breaks dependences that only occur
    on iteration zero. *)

open Cmdliner

let carried_edges (n : Noelle.t) (m : Ir.Irmod.t) =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc lp ->
          let ldg = Noelle.Loop.dep_graph lp in
          acc
          + List.length
              (List.filter
                 (fun (e : Noelle.Depgraph.edge) -> e.Noelle.Depgraph.loop_carried)
                 (Noelle.Depgraph.edges ldg.Noelle.Pdg.ldg)))
        acc (Noelle.loops n f))
    0
    (Ir.Irmod.defined_functions m)

let run input output peel =
  let m = Ir.Parser.parse_file input in
  let n = Noelle.create m in
  Noelle.set_tool n "noelle-rm-lc-dependences";
  let before = carried_edges n m in
  let licm = Ntools.Licm.run n m in
  if peel then
    List.iter
      (fun f ->
        List.iter
          (fun lp ->
            let ls = Noelle.Loop.structure lp in
            if Noelle.Loopstructure.shape ls = Noelle.Loopstructure.Do_while_shape
            then ignore (Noelle.Loopbuilder.peel_first f ls))
          (Noelle.loops n f);
        Noelle.invalidate n)
      (Ir.Irmod.defined_functions m);
  Ir.Verify.verify_module m;
  let after = carried_edges n m in
  let out = match output with Some o -> o | None -> input in
  Ir.Printer.to_file m out;
  Printf.printf
    "noelle-rm-lc-dependences: %s -> %s (hoisted %d; carried deps %d -> %d)\n"
    input out licm.Ntools.Licm.hoisted before after;
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT.ir")
let peel = Arg.(value & flag & info [ "peel" ] ~doc:"also peel first iterations")

let cmd =
  Cmd.v
    (Cmd.info "noelle-rm-lc-dependences"
       ~doc:"Reduce loop-carried data dependences")
    Term.(const run $ input $ output $ peel)

let () = exit (Cmd.eval' cmd)
