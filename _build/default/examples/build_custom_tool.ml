(** Build a brand-new custom tool in ~40 lines — the paper's core pitch.

    The tool: a {e redundant-load eliminator}.  A load is redundant when a
    previous load in the same block reads a must-aliasing address with no
    intervening may-writing instruction.  With NOELLE this is a walk over
    blocks consulting the PDG's alias stack; without it you would be
    re-implementing alias queries and memory SSA.

    Run with: [dune exec examples/build_custom_tool.exe] *)

let source =
  {|
int a[100];
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) a[i] = i * 2;
  for (int i = 1; i < 99; i++) {
    int x = a[i];
    int y = a[i];        // redundant: same address, no store between
    a[i+1] = x + y;
    int z = a[i];        // NOT redundant: the store above may alias
    s += z;
  }
  print(s);
  return 0;
}
|}

(* --- the whole custom tool ----------------------------------------- *)

let redundant_load_elim (n : Noelle.t) (m : Ir.Irmod.t) : int =
  Noelle.set_tool n "RLE";
  let removed = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let pdg = Noelle.pdg n f in
      let stack = pdg.Noelle.Pdg.stack in
      Ir.Func.iter_blocks
        (fun b ->
          (* available loads in this block: (address value, loaded value) *)
          let avail = ref [] in
          List.iter
            (fun id ->
              let i = Ir.Func.inst f id in
              match i.Ir.Instr.op with
              | Ir.Instr.Load p -> (
                match
                  List.find_opt
                    (fun (q, _) ->
                      Ir.Alias.alias stack m f p q = Ir.Alias.Must_alias)
                    !avail
                with
                | Some (_, v) ->
                  Ir.Builder.replace_uses f ~old:id ~by:v;
                  Ir.Builder.remove f id;
                  incr removed
                | None -> avail := (p, Ir.Instr.Reg id) :: !avail)
              | Ir.Instr.Store (_, p) ->
                (* kill loads the store may overwrite *)
                avail :=
                  List.filter
                    (fun (q, _) ->
                      Ir.Alias.alias stack m f p q = Ir.Alias.No_alias)
                    !avail
              | Ir.Instr.Call _ -> avail := []
              | _ -> ())
            b.Ir.Func.insts)
        f)
    (Ir.Irmod.defined_functions m);
  Noelle.invalidate n;
  !removed

(* --- driver --------------------------------------------------------- *)

let () =
  let m = Minic.Lower.compile ~name:"custom" source in
  let _, out_before = Ir.Interp.run m in
  let before = Ir.Irmod.total_insts m in
  let n = Noelle.create m in
  let removed = redundant_load_elim n m in
  Ir.Verify.verify_module m;
  let _, out_after = Ir.Interp.run m in
  Printf.printf "removed %d redundant loads (%d -> %d instructions)\n" removed
    before (Ir.Irmod.total_insts m);
  Printf.printf "outputs identical: %b (%s)" (out_before = out_after)
    (String.trim out_after)
