examples/quickstart.ml: Ir List Minic Noelle Ntools Printf
