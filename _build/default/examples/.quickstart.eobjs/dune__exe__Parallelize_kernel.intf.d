examples/parallelize_kernel.mli:
