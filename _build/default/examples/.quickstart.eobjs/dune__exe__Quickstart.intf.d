examples/quickstart.mli:
