examples/build_custom_tool.mli:
