examples/whole_pipeline.ml: Int64 Ir List Minic Noelle Ntools Printf Psim String
