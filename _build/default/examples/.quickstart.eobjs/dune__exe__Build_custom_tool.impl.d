examples/build_custom_tool.ml: Ir List Minic Noelle Printf String
