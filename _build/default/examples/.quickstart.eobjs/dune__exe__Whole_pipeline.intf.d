examples/whole_pipeline.mli:
