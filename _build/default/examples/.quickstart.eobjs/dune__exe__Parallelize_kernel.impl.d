examples/parallelize_kernel.ml: Bsuite Int64 Ir List Noelle Ntools Option Printf Psim String
