(** Quickstart: compile a program, ask NOELLE for abstractions, run a
    custom tool, execute.

    Run with: [dune exec examples/quickstart.exe] *)

let source =
  {|
int data[1000];
int scale_of(int x) { return (x % 5) + 2; }
int main() {
  int n = 1000;
  int scale = scale_of(n);
  int sum = 0;
  for (int i = 0; i < n; i++) {
    int k = scale * scale + 7;   // loop invariant: LICM will hoist it
    data[i] = i * k;
    sum += data[i];
  }
  print(sum);
  return 0;
}
|}

let () =
  (* 1. compile Mini-C to verified SSA IR *)
  let m = Minic.Lower.compile ~name:"quickstart" source in
  Printf.printf "compiled: %d instructions\n" (Ir.Irmod.total_insts m);

  (* 2. create the demand-driven NOELLE layer and request abstractions *)
  let n = Noelle.create m in
  Noelle.set_tool n "quickstart";
  let main = Ir.Irmod.func m "main" in
  let pdg = Noelle.pdg n main in
  Printf.printf "PDG: %d nodes, %d edges (%.0f%% of potential memory deps disproved)\n"
    (Noelle.Depgraph.num_nodes pdg.Noelle.Pdg.fdg)
    (Noelle.Depgraph.num_edges pdg.Noelle.Pdg.fdg)
    (100.0 *. Noelle.Pdg.disproval_rate pdg);

  List.iter
    (fun lp ->
      let ls = Noelle.Loop.structure lp in
      let ascc = Noelle.aSCCDAG n lp in
      Printf.printf "loop %s: %d blocks, %d SCCs (%d IVs, %d reductions), %d invariants\n"
        (Noelle.Loop.id lp)
        (List.length ls.Noelle.Loopstructure.blocks)
        (List.length ascc.Noelle.Ascc.nodes)
        (List.length ascc.Noelle.Ascc.ivs)
        (List.length ascc.Noelle.Ascc.reductions)
        (Noelle.Invariants.count (Noelle.invariants n lp)))
    (Noelle.loops n main);

  (* 3. run a custom tool built on those abstractions *)
  let licm = Ntools.Licm.run n m in
  Printf.printf "LICM hoisted %d invariant instructions\n" licm.Ntools.Licm.hoisted;
  Ir.Verify.verify_module m;

  (* 4. execute the transformed program *)
  let _, output = Ir.Interp.run m in
  Printf.printf "program output: %s" output
