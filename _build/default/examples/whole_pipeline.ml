(** The full compilation flow of Figure 1, in-process: separate units ->
    whole-IR link -> profile -> embed -> rm-lc-dependences (LICM) ->
    re-profile -> PDG embed -> arch -> HELIX -> run on the simulator.

    Run with: [dune exec examples/whole_pipeline.exe] *)

let unit1 =
  {|
int work(int seed) {
  int s = seed;
  float acc = 0.0;
  for (int i = 0; i < 30000; i++) {
    s = s * 1103515245 + 12345;
    int u = (s >> 16) & 16383;
    float x = (float)u;
    float v = 0.0;
    for (int k = 0; k < 10; k++) {
      v = v * 0.5 + x * 0.001 + sqrt(x + (float)k);
    }
    acc += floor(v);
  }
  print((int)acc);
  return s;
}
|}

let unit2 =
  {|
int work(int seed);
int main() {
  int r = work(20061204);
  print(r & 65535);
  return 0;
}
|}

let compile_unit name src = Minic.Lower.compile ~name src

let () =
  (* noelle-whole-IR *)
  let m1 = compile_unit "unit1" unit1 in
  let m2 = compile_unit "unit2" unit2 in
  let whole = Ir.Linker.link ~name:"whole" [ m1; m2 ] in
  Ir.Verify.verify_module whole;
  Printf.printf "whole-IR: %d instructions\n" (Ir.Irmod.total_insts whole);

  (* noelle-prof-coverage + noelle-meta-prof-embed *)
  let p, _ = Noelle.Profiler.run whole in
  Noelle.Profiler.embed p whole;
  Printf.printf "profiled: %Ld dynamic instructions\n" (Noelle.Profiler.total_insts whole);

  (* noelle-rm-lc-dependences (LICM pass reduces false carried deps) *)
  let n = Noelle.create whole in
  let licm = Ntools.Licm.run n whole in
  Printf.printf "rm-lc-dependences: hoisted %d\n" licm.Ntools.Licm.hoisted;

  (* noelle-meta-clean + re-profile (transformed code shifted the counts) *)
  Ir.Meta.clear_prefix whole.Ir.Irmod.meta "prof.";
  let p, _ = Noelle.Profiler.run whole in
  Noelle.Profiler.embed p whole;

  (* noelle-meta-pdg-embed *)
  List.iter
    (fun f -> Noelle.Pdg.embed (Noelle.pdg n f))
    (Ir.Irmod.defined_functions whole);

  (* noelle-arch *)
  let arch = Noelle.Arch.measure () in
  Noelle.Arch.to_meta arch whole.Ir.Irmod.meta;

  (* noelle-load + HELIX transformation *)
  let seq_m = Ir.Parser.parse_module (Ir.Printer.module_str whole) in
  let _, seq_out, seq_cycles = Psim.Runtime.run_sequential seq_m in
  List.iter
    (fun (id, r) ->
      match r with
      | Ok (s : Ntools.Helix.stats) ->
        Printf.printf "HELIX %s: %d sequential segments, %d reductions\n" id
          s.Ntools.Helix.nsegments s.Ntools.Helix.nreductions
      | Error e -> Printf.printf "HELIX %s: skipped (%s)\n" id e)
    (Ntools.Helix.run n whole ~ncores:12 ());
  Ir.Verify.verify_module whole;

  (* noelle-bin: run on the simulated 12-core machine *)
  let _, out, cycles, _ = Psim.Runtime.run ~arch whole in
  Printf.printf "sequential: %Ld cycles; parallel: %Ld cycles (%.2fx); outputs equal: %b\n"
    seq_cycles cycles
    (Int64.to_float seq_cycles /. Int64.to_float cycles)
    (String.equal seq_out out)
