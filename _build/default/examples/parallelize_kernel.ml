(** Parallelize a PARSEC-style kernel with all three techniques and
    simulate the speedups on a 12-core machine.

    Run with: [dune exec examples/parallelize_kernel.exe] *)

let techniques =
  [
    ("DOALL",
     fun n m ->
       List.filter_map
         (fun (id, r) -> match r with Ok _ -> Some id | Error _ -> None)
         (Ntools.Doall.run n m ~ncores:12 ()));
    ("HELIX",
     fun n m ->
       List.filter_map
         (fun (id, r) -> match r with Ok _ -> Some id | Error _ -> None)
         (Ntools.Helix.run n m ~ncores:12 ()));
    ("DSWP",
     fun n m ->
       List.filter_map
         (fun (id, r) -> match r with Ok _ -> Some id | Error _ -> None)
         (Ntools.Dswp.run n m ()));
  ]

let () =
  let kernels = [ "blackscholes"; "swaptions"; "ferret"; "crc32" ] in
  List.iter
    (fun kname ->
      let k = Option.get (Bsuite.Kernels.find kname) in
      Printf.printf "== %s (%s)\n" k.Bsuite.Kernels.kname
        (Bsuite.Kernels.suite_name k.Bsuite.Kernels.suite);
      (* sequential reference *)
      let ref_m = Bsuite.Kernels.compile k in
      let _, ref_out, seq_cycles =
        Psim.Runtime.run_sequential ~fuel:k.Bsuite.Kernels.fuel ref_m
      in
      Printf.printf "  sequential: %Ld cycles\n" seq_cycles;
      List.iter
        (fun (name, apply) ->
          let m = Bsuite.Kernels.compile k in
          let p, _ = Noelle.Profiler.run ~fuel:k.Bsuite.Kernels.fuel m in
          Noelle.Profiler.embed p m;
          let n = Noelle.create m in
          let done_ = apply n m in
          if done_ = [] then Printf.printf "  %-6s no eligible loop\n" name
          else begin
            Ir.Verify.verify_module m;
            let _, out, cycles, _ =
              Psim.Runtime.run ~fuel:k.Bsuite.Kernels.fuel m
            in
            Printf.printf "  %-6s %d loops -> %Ld cycles (%.2fx)%s\n" name
              (List.length done_) cycles
              (Int64.to_float seq_cycles /. Int64.to_float cycles)
              (if String.equal out ref_out then "" else "  [OUTPUT MISMATCH]")
          end)
        techniques)
    kernels
