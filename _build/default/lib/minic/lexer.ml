(** Lexer for Mini-C. *)

exception Error of string

type tok =
  | TID of string
  | TINT of int64
  | TFLOAT of float
  | TPUNCT of string   (** operators and punctuation, longest match *)
  | TEOF

let tok_str = function
  | TID s -> s
  | TINT n -> Int64.to_string n
  | TFLOAT f -> string_of_float f
  | TPUNCT s -> s
  | TEOF -> "<eof>"

let puncts =
  (* ordered longest-first for maximal munch *)
  [ "<<="; ">>="; "&&"; "||"; "=="; "!="; "<="; ">="; "<<"; ">>"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "->";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "?"; ":" ]

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize [src]; returns tokens paired with line numbers. *)
let tokenize (src : string) : (tok * int) array =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = out := (t, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then raise (Error (Printf.sprintf "line %d: unterminated comment" !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then (fin := true; i := !i + 2)
        else incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let isfloat = ref false in
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        isfloat := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        isfloat := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let s = String.sub src start (!i - start) in
      if !isfloat then push (TFLOAT (float_of_string s))
      else push (TINT (Int64.of_string s))
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do incr i done;
      push (TID (String.sub src start (!i - start)))
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let lp = String.length p in
            !i + lp <= n && String.sub src !i lp = p)
          puncts
      in
      match matched with
      | Some p ->
        push (TPUNCT p);
        i := !i + String.length p
      | None ->
        raise (Error (Printf.sprintf "line %d: unexpected character %C" !line c))
    end
  done;
  push TEOF;
  Array.of_list (List.rev !out)
