(** Recursive-descent parser for Mini-C. *)

open Ast

exception Error of string

type st = { toks : (Lexer.tok * int) array; mutable pos : int }

let fail st msg =
  let i = min st.pos (Array.length st.toks - 1) in
  raise (Error (Printf.sprintf "line %d: %s" (snd st.toks.(i)) msg))

let peek st = fst st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.TEOF
let next st = let t = peek st in st.pos <- st.pos + 1; t

let accept st p = if peek st = Lexer.TPUNCT p then (st.pos <- st.pos + 1; true) else false

let expect st p =
  if not (accept st p) then
    fail st (Printf.sprintf "expected %s, got %s" p (Lexer.tok_str (peek st)))

let expect_id st =
  match next st with
  | Lexer.TID s -> s
  | t -> fail st (Printf.sprintf "expected identifier, got %s" (Lexer.tok_str t))

let is_type_kw = function "int" | "float" | "void" -> true | _ -> false

(** Parse a type: (int|float|void) '*'* *)
let parse_ty st =
  let base =
    match next st with
    | Lexer.TID "int" -> Tint
    | Lexer.TID "float" -> Tfloat
    | Lexer.TID "void" -> Tvoid
    | t -> fail st (Printf.sprintf "expected type, got %s" (Lexer.tok_str t))
  in
  let t = ref base in
  while accept st "*" do t := Tptr !t done;
  !t

let starts_type st =
  match peek st with Lexer.TID s -> is_type_kw s | _ -> false

(* precedence table: higher binds tighter *)
let prec = function
  | "||" -> 1 | "&&" -> 2 | "|" -> 3 | "^" -> 4 | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | "<=" | ">" | ">=" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> -1

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binary st 1 in
  if accept st "?" then begin
    let a = parse_expr st in
    expect st ":";
    let b = parse_ternary st in
    Eternary (c, a, b)
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.TPUNCT p when prec p >= min_prec ->
      ignore (next st);
      let rhs = parse_binary st (prec p + 1) in
      lhs := Ebin (p, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.TPUNCT "-" -> ignore (next st); Eun (Neg, parse_unary st)
  | Lexer.TPUNCT "!" -> ignore (next st); Eun (Not, parse_unary st)
  | Lexer.TPUNCT "~" -> ignore (next st); Eun (Bnot, parse_unary st)
  | Lexer.TPUNCT "*" -> ignore (next st); Ederef (parse_unary st)
  | Lexer.TPUNCT "&" -> ignore (next st); Eaddr (parse_unary st)
  | Lexer.TPUNCT "(" when (match peek2 st with Lexer.TID s -> is_type_kw s | _ -> false) ->
    ignore (next st);
    let ty = parse_ty st in
    expect st ")";
    Ecast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st "[" then begin
      let idx = parse_expr st in
      expect st "]";
      e := Eidx (!e, idx)
    end
    else if peek st = Lexer.TPUNCT "(" then begin
      ignore (next st);
      let args = ref [] in
      if peek st <> Lexer.TPUNCT ")" then begin
        let rec loop () =
          args := parse_expr st :: !args;
          if accept st "," then loop ()
        in
        loop ()
      end;
      expect st ")";
      (match !e with
      | Evar f -> e := Ecall (f, List.rev !args)
      | other -> e := Ecallptr (other, List.rev !args))
    end
    else continue_ := false
  done;
  !e

and parse_primary st =
  match next st with
  | Lexer.TINT n -> Eint n
  | Lexer.TFLOAT f -> Efloat f
  | Lexer.TID name -> Evar name
  | Lexer.TPUNCT "(" ->
    let e = parse_expr st in
    expect st ")";
    e
  | t -> fail st (Printf.sprintf "unexpected %s in expression" (Lexer.tok_str t))

(** Simple statement without trailing ';': declaration, assignment,
    op-assignment, increment, or bare expression. *)
let rec parse_simple st : stmt =
  if starts_type st then begin
    let ty = parse_ty st in
    let name = expect_id st in
    let arr =
      if accept st "[" then begin
        let n =
          match next st with
          | Lexer.TINT n -> Int64.to_int n
          | t -> fail st (Printf.sprintf "expected array size, got %s" (Lexer.tok_str t))
        in
        expect st "]";
        Some n
      end
      else None
    in
    let init = if accept st "=" then Some (parse_expr st) else None in
    Sdecl (ty, name, arr, init)
  end
  else begin
    let lhs = parse_expr st in
    match peek st with
    | Lexer.TPUNCT "=" -> ignore (next st); Sassign (lhs, parse_expr st)
    | Lexer.TPUNCT ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") ->
      let p = (match next st with Lexer.TPUNCT p -> p | _ -> assert false) in
      let op = String.sub p 0 (String.length p - 1) in
      Sopassign (op, lhs, parse_expr st)
    | Lexer.TPUNCT "++" -> ignore (next st); Sopassign ("+", lhs, Eint 1L)
    | Lexer.TPUNCT "--" -> ignore (next st); Sopassign ("-", lhs, Eint 1L)
    | _ -> Sexpr lhs
  end

and parse_stmt st : stmt =
  match peek st with
  | Lexer.TPUNCT "{" -> Sblock (parse_block st)
  | Lexer.TPUNCT ";" -> ignore (next st); Sblock []
  | Lexer.TID "if" ->
    ignore (next st);
    expect st "(";
    let c = parse_expr st in
    expect st ")";
    let then_ = parse_stmt_as_list st in
    let else_ =
      if peek st = Lexer.TID "else" then (ignore (next st); parse_stmt_as_list st)
      else []
    in
    Sif (c, then_, else_)
  | Lexer.TID "while" ->
    ignore (next st);
    expect st "(";
    let c = parse_expr st in
    expect st ")";
    Swhile (c, parse_stmt_as_list st)
  | Lexer.TID "do" ->
    ignore (next st);
    let body = parse_stmt_as_list st in
    (match next st with
    | Lexer.TID "while" -> ()
    | t -> fail st (Printf.sprintf "expected while, got %s" (Lexer.tok_str t)));
    expect st "(";
    let c = parse_expr st in
    expect st ")";
    expect st ";";
    Sdo (body, c)
  | Lexer.TID "for" ->
    ignore (next st);
    expect st "(";
    let init = if peek st = Lexer.TPUNCT ";" then None else Some (parse_simple st) in
    expect st ";";
    let cond = if peek st = Lexer.TPUNCT ";" then None else Some (parse_expr st) in
    expect st ";";
    let step = if peek st = Lexer.TPUNCT ")" then None else Some (parse_simple st) in
    expect st ")";
    Sfor (init, cond, step, parse_stmt_as_list st)
  | Lexer.TID "return" ->
    ignore (next st);
    let e = if peek st = Lexer.TPUNCT ";" then None else Some (parse_expr st) in
    expect st ";";
    Sreturn e
  | Lexer.TID "break" -> ignore (next st); expect st ";"; Sbreak
  | Lexer.TID "continue" -> ignore (next st); expect st ";"; Scontinue
  | _ ->
    let s = parse_simple st in
    expect st ";";
    s

and parse_stmt_as_list st : stmt list =
  match parse_stmt st with Sblock ss -> ss | s -> [ s ]

and parse_block st : stmt list =
  expect st "{";
  let stmts = ref [] in
  while peek st <> Lexer.TPUNCT "}" do
    stmts := parse_stmt st :: !stmts
  done;
  expect st "}";
  List.rev !stmts

(** Parse a whole translation unit. *)
let parse_program (src : string) : program =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let decls = ref [] in
  while peek st <> Lexer.TEOF do
    let ty = parse_ty st in
    let name = expect_id st in
    if peek st = Lexer.TPUNCT "(" then begin
      (* function *)
      ignore (next st);
      let params = ref [] in
      if peek st <> Lexer.TPUNCT ")" then begin
        let rec loop () =
          let pty = parse_ty st in
          let pname = expect_id st in
          params := (pty, pname) :: !params;
          if accept st "," then loop ()
        in
        loop ()
      end;
      expect st ")";
      if accept st ";" then
        decls := Gproto (ty, name, List.rev !params) :: !decls
      else begin
        let body = parse_block st in
        decls := Gfun (ty, name, List.rev !params, body) :: !decls
      end
    end
    else begin
      (* global variable *)
      let arr =
        if accept st "[" then begin
          let n =
            match next st with
            | Lexer.TINT n -> Int64.to_int n
            | t -> fail st (Printf.sprintf "expected array size, got %s" (Lexer.tok_str t))
          in
          expect st "]";
          Some n
        end
        else None
      in
      let init =
        if accept st "=" then
          if accept st "{" then begin
            let vs = ref [] in
            if peek st <> Lexer.TPUNCT "}" then begin
              let rec loop () =
                vs := parse_expr st :: !vs;
                if accept st "," then loop ()
              in
              loop ()
            end;
            expect st "}";
            Some (List.rev !vs)
          end
          else Some [ parse_expr st ]
        else None
      in
      expect st ";";
      decls := Gvar (ty, name, arr, init) :: !decls
    end
  done;
  List.rev !decls
